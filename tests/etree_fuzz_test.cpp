// Model-based fuzz test for the etree B-tree store: random sequences of
// put / overwrite / erase / get are mirrored against a std::map reference
// model, with periodic full-scan and reopen consistency checks. This is the
// kind of storage-engine test that guards the out-of-core meshing pipeline.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "quake/octree/etree_store.hpp"
#include "quake/octree/linear_octree.hpp"
#include "quake/util/rng.hpp"

namespace {

using namespace quake::octree;

struct KeyLess {
  bool operator()(const Octant& a, const Octant& b) const {
    return OctantLess{}(a, b);
  }
};

class EtreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EtreeFuzz, MatchesReferenceModel) {
  const std::string path = testing::TempDir() + "/fuzz_" +
                           std::to_string(GetParam()) + ".etree";
  quake::util::Rng rng(GetParam());

  // Key universe: all octants of a few levels (collisions with existing
  // keys are then frequent, exercising overwrite and erase paths).
  std::vector<Octant> universe;
  for (const Octant& o :
       build_octree([](const Octant& q) { return q.level < 3; }, 3)
           .leaves()) {
    universe.push_back(o);
    universe.push_back(o.parent());
  }

  std::map<Octant, double, KeyLess> ref;
  auto store = std::make_unique<EtreeStore>(path, sizeof(double), 8,
                                            /*create=*/true);

  auto check_scan = [&] {
    std::size_t idx = 0;
    std::vector<std::pair<Octant, double>> expected(ref.begin(), ref.end());
    store->scan([&](const Octant& o, std::span<const std::byte> v) {
      ASSERT_LT(idx, expected.size());
      EXPECT_EQ(o, expected[idx].first);
      double d;
      std::memcpy(&d, v.data(), sizeof d);
      EXPECT_DOUBLE_EQ(d, expected[idx].second);
      ++idx;
    });
    EXPECT_EQ(idx, expected.size());
    EXPECT_EQ(store->count(), ref.size());
  };

  for (int op = 0; op < 4000; ++op) {
    const Octant key = universe[static_cast<std::size_t>(
        rng.next_u64() % universe.size())];
    const double roll = rng.uniform();
    if (roll < 0.55) {
      const double v = rng.uniform(-1e6, 1e6);
      store->put(key, std::as_bytes(std::span<const double, 1>(&v, 1)));
      ref[key] = v;
    } else if (roll < 0.75) {
      EXPECT_EQ(store->erase(key), ref.erase(key) > 0);
    } else {
      double got = 0.0;
      const bool found = store->get(
          key, std::as_writable_bytes(std::span<double, 1>(&got, 1)));
      auto it = ref.find(key);
      EXPECT_EQ(found, it != ref.end());
      if (found && it != ref.end()) EXPECT_DOUBLE_EQ(got, it->second);
    }
    if (op % 500 == 499) check_scan();
    if (op == 2000) {
      // Close and reopen mid-sequence: durability across sessions.
      store->flush();
      store.reset();
      store = std::make_unique<EtreeStore>(path, sizeof(double), 8,
                                           /*create=*/false);
      check_scan();
    }
  }
  check_scan();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EtreeFuzz,
                         ::testing::Values(1u, 42u, 2026u, 777u));

}  // namespace
