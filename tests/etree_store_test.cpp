// Tests for the disk-backed etree B-tree store: CRUD, ordering, persistence
// across close/reopen, buffer-pool behavior, and bulk loads that force many
// page splits.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "quake/octree/etree_store.hpp"
#include "quake/octree/linear_octree.hpp"
#include "quake/util/rng.hpp"

namespace {

using namespace quake::octree;

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name + ".etree";
}

std::span<const std::byte> bytes_of(const double& v) {
  return std::as_bytes(std::span<const double, 1>(&v, 1));
}

TEST(EtreeStore, PutGetSingle) {
  EtreeStore store(temp_path("single"), sizeof(double), 16, /*create=*/true);
  const Octant o = Octant{}.child(3).child(5);
  const double v = 3.25;
  store.put(o, bytes_of(v));
  double out = 0.0;
  ASSERT_TRUE(store.get(o, std::as_writable_bytes(std::span<double, 1>(&out, 1))));
  EXPECT_DOUBLE_EQ(out, 3.25);
  EXPECT_EQ(store.count(), 1u);
}

TEST(EtreeStore, GetMissingReturnsFalse) {
  EtreeStore store(temp_path("missing"), sizeof(double), 16, true);
  double out;
  EXPECT_FALSE(
      store.get(Octant{}.child(1), std::as_writable_bytes(std::span<double, 1>(&out, 1))));
}

TEST(EtreeStore, OverwriteDoesNotGrowCount) {
  EtreeStore store(temp_path("overwrite"), sizeof(double), 16, true);
  const Octant o = Octant{}.child(0);
  store.put(o, bytes_of(1.0));
  store.put(o, bytes_of(2.0));
  EXPECT_EQ(store.count(), 1u);
  double out;
  ASSERT_TRUE(store.get(o, std::as_writable_bytes(std::span<double, 1>(&out, 1))));
  EXPECT_DOUBLE_EQ(out, 2.0);
}

TEST(EtreeStore, EraseRemoves) {
  EtreeStore store(temp_path("erase"), sizeof(double), 16, true);
  const Octant o = Octant{}.child(2);
  store.put(o, bytes_of(1.0));
  EXPECT_TRUE(store.erase(o));
  EXPECT_EQ(store.count(), 0u);
  double out;
  EXPECT_FALSE(store.get(o, std::as_writable_bytes(std::span<double, 1>(&out, 1))));
  EXPECT_FALSE(store.erase(o));
}

TEST(EtreeStore, WrongValueSizeThrows) {
  EtreeStore store(temp_path("valsize"), sizeof(double), 16, true);
  float f = 0.0f;
  EXPECT_THROW(
      store.put(Octant{}, std::as_bytes(std::span<const float, 1>(&f, 1))),
      std::invalid_argument);
}

TEST(EtreeStore, BulkLoadManySplitsAndScanInOrder) {
  // Enough records to force leaf and internal splits (leaf holds ~200
  // 20-byte entries per 4 KiB page).
  const std::string path = temp_path("bulk");
  const LinearOctree tree =
      build_octree([](const Octant& o) { return o.level < 4; }, 4);
  ASSERT_EQ(tree.size(), 4096u);
  {
    EtreeStore store(path, sizeof(double), 16, true);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const double v = static_cast<double>(i);
      store.put(tree[i], bytes_of(v));
    }
    EXPECT_EQ(store.count(), tree.size());
    // Scan returns records in space-filling-curve order.
    std::size_t idx = 0;
    store.scan([&](const Octant& o, std::span<const std::byte> val) {
      EXPECT_EQ(o, tree[idx]);
      double v;
      std::memcpy(&v, val.data(), sizeof v);
      EXPECT_DOUBLE_EQ(v, static_cast<double>(idx));
      ++idx;
    });
    EXPECT_EQ(idx, tree.size());
    store.flush();
  }
  // Reopen: everything persisted.
  {
    EtreeStore store(path, sizeof(double), 16, /*create=*/false);
    EXPECT_EQ(store.count(), tree.size());
    double out;
    ASSERT_TRUE(store.get(tree[1234],
                          std::as_writable_bytes(std::span<double, 1>(&out, 1))));
    EXPECT_DOUBLE_EQ(out, 1234.0);
  }
}

TEST(EtreeStore, RandomInsertionOrderScansSorted) {
  const LinearOctree tree =
      build_octree([](const Octant& o) { return o.level < 3; }, 3);
  std::vector<Octant> shuffled(tree.leaves().begin(), tree.leaves().end());
  quake::util::Rng rng(5);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(rng.next_u64() % i)]);
  }
  EtreeStore store(temp_path("random"), sizeof(double), 8, true);
  for (const Octant& o : shuffled) store.put(o, bytes_of(1.0));
  std::size_t idx = 0;
  OctantLess less;
  Octant prev{};
  store.scan([&](const Octant& o, std::span<const std::byte>) {
    if (idx > 0) EXPECT_TRUE(less(prev, o));
    prev = o;
    ++idx;
  });
  EXPECT_EQ(idx, tree.size());
}

TEST(EtreeStore, SmallPoolForcesEvictionsButStaysCorrect) {
  // A 4-page pool on a multi-hundred-page tree: correctness must not depend
  // on cache capacity.
  EtreeStore store(temp_path("evict"), sizeof(double), 4, true);
  const LinearOctree tree =
      build_octree([](const Octant& o) { return o.level < 4; }, 4);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const double v = static_cast<double>(i * 7);
    store.put(tree[i], bytes_of(v));
  }
  quake::util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::size_t k = rng.next_u64() % tree.size();
    double out;
    ASSERT_TRUE(store.get(tree[k],
                          std::as_writable_bytes(std::span<double, 1>(&out, 1))));
    EXPECT_DOUBLE_EQ(out, static_cast<double>(k * 7));
  }
  const auto st = store.stats();
  EXPECT_GT(st.page_reads, 0u);   // evictions forced re-reads
  EXPECT_GT(st.cache_hits, 0u);
}

TEST(EtreeStore, DistinguishesLevelsAtSameAnchor) {
  // An octant and its first child share the anchor; keys must differ.
  EtreeStore store(temp_path("levels"), sizeof(double), 8, true);
  const Octant parent = Octant{}.child(0);
  const Octant child = parent.child(0);
  store.put(parent, bytes_of(1.0));
  store.put(child, bytes_of(2.0));
  EXPECT_EQ(store.count(), 2u);
  double a, b;
  ASSERT_TRUE(store.get(parent, std::as_writable_bytes(std::span<double, 1>(&a, 1))));
  ASSERT_TRUE(store.get(child, std::as_writable_bytes(std::span<double, 1>(&b, 1))));
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 2.0);
}

}  // namespace
