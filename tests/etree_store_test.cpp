// Tests for the disk-backed etree B-tree store: CRUD, ordering, persistence
// across close/reopen, buffer-pool behavior, and bulk loads that force many
// page splits.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "quake/obs/obs.hpp"
#include "quake/octree/etree_store.hpp"
#include "quake/octree/linear_octree.hpp"
#include "quake/util/checkpoint.hpp"
#include "quake/util/rng.hpp"

namespace {

using namespace quake::octree;

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name + ".etree";
}

std::span<const std::byte> bytes_of(const double& v) {
  return std::as_bytes(std::span<const double, 1>(&v, 1));
}

TEST(EtreeStore, PutGetSingle) {
  EtreeStore store(temp_path("single"), sizeof(double), 16, /*create=*/true);
  const Octant o = Octant{}.child(3).child(5);
  const double v = 3.25;
  store.put(o, bytes_of(v));
  double out = 0.0;
  ASSERT_TRUE(store.get(o, std::as_writable_bytes(std::span<double, 1>(&out, 1))));
  EXPECT_DOUBLE_EQ(out, 3.25);
  EXPECT_EQ(store.count(), 1u);
}

TEST(EtreeStore, GetMissingReturnsFalse) {
  EtreeStore store(temp_path("missing"), sizeof(double), 16, true);
  double out;
  EXPECT_FALSE(
      store.get(Octant{}.child(1), std::as_writable_bytes(std::span<double, 1>(&out, 1))));
}

TEST(EtreeStore, OverwriteDoesNotGrowCount) {
  EtreeStore store(temp_path("overwrite"), sizeof(double), 16, true);
  const Octant o = Octant{}.child(0);
  store.put(o, bytes_of(1.0));
  store.put(o, bytes_of(2.0));
  EXPECT_EQ(store.count(), 1u);
  double out;
  ASSERT_TRUE(store.get(o, std::as_writable_bytes(std::span<double, 1>(&out, 1))));
  EXPECT_DOUBLE_EQ(out, 2.0);
}

TEST(EtreeStore, EraseRemoves) {
  EtreeStore store(temp_path("erase"), sizeof(double), 16, true);
  const Octant o = Octant{}.child(2);
  store.put(o, bytes_of(1.0));
  EXPECT_TRUE(store.erase(o));
  EXPECT_EQ(store.count(), 0u);
  double out;
  EXPECT_FALSE(store.get(o, std::as_writable_bytes(std::span<double, 1>(&out, 1))));
  EXPECT_FALSE(store.erase(o));
}

TEST(EtreeStore, WrongValueSizeThrows) {
  EtreeStore store(temp_path("valsize"), sizeof(double), 16, true);
  float f = 0.0f;
  EXPECT_THROW(
      store.put(Octant{}, std::as_bytes(std::span<const float, 1>(&f, 1))),
      std::invalid_argument);
}

TEST(EtreeStore, BulkLoadManySplitsAndScanInOrder) {
  // Enough records to force leaf and internal splits (leaf holds ~200
  // 20-byte entries per 4 KiB page).
  const std::string path = temp_path("bulk");
  const LinearOctree tree =
      build_octree([](const Octant& o) { return o.level < 4; }, 4);
  ASSERT_EQ(tree.size(), 4096u);
  {
    EtreeStore store(path, sizeof(double), 16, true);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const double v = static_cast<double>(i);
      store.put(tree[i], bytes_of(v));
    }
    EXPECT_EQ(store.count(), tree.size());
    // Scan returns records in space-filling-curve order.
    std::size_t idx = 0;
    store.scan([&](const Octant& o, std::span<const std::byte> val) {
      EXPECT_EQ(o, tree[idx]);
      double v;
      std::memcpy(&v, val.data(), sizeof v);
      EXPECT_DOUBLE_EQ(v, static_cast<double>(idx));
      ++idx;
    });
    EXPECT_EQ(idx, tree.size());
    store.flush();
  }
  // Reopen: everything persisted.
  {
    EtreeStore store(path, sizeof(double), 16, /*create=*/false);
    EXPECT_EQ(store.count(), tree.size());
    double out;
    ASSERT_TRUE(store.get(tree[1234],
                          std::as_writable_bytes(std::span<double, 1>(&out, 1))));
    EXPECT_DOUBLE_EQ(out, 1234.0);
  }
}

TEST(EtreeStore, RandomInsertionOrderScansSorted) {
  const LinearOctree tree =
      build_octree([](const Octant& o) { return o.level < 3; }, 3);
  std::vector<Octant> shuffled(tree.leaves().begin(), tree.leaves().end());
  quake::util::Rng rng(5);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(rng.next_u64() % i)]);
  }
  EtreeStore store(temp_path("random"), sizeof(double), 8, true);
  for (const Octant& o : shuffled) store.put(o, bytes_of(1.0));
  std::size_t idx = 0;
  OctantLess less;
  Octant prev{};
  store.scan([&](const Octant& o, std::span<const std::byte>) {
    if (idx > 0) EXPECT_TRUE(less(prev, o));
    prev = o;
    ++idx;
  });
  EXPECT_EQ(idx, tree.size());
}

TEST(EtreeStore, SmallPoolForcesEvictionsButStaysCorrect) {
  // A 4-page pool on a multi-hundred-page tree: correctness must not depend
  // on cache capacity.
  EtreeStore store(temp_path("evict"), sizeof(double), 4, true);
  const LinearOctree tree =
      build_octree([](const Octant& o) { return o.level < 4; }, 4);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const double v = static_cast<double>(i * 7);
    store.put(tree[i], bytes_of(v));
  }
  quake::util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::size_t k = rng.next_u64() % tree.size();
    double out;
    ASSERT_TRUE(store.get(tree[k],
                          std::as_writable_bytes(std::span<double, 1>(&out, 1))));
    EXPECT_DOUBLE_EQ(out, static_cast<double>(k * 7));
  }
  const auto st = store.stats();
  EXPECT_GT(st.page_reads, 0u);   // evictions forced re-reads
  EXPECT_GT(st.cache_hits, 0u);
}

TEST(EtreeStore, PoolHitRateGaugePublished) {
  // Every pool access updates the etree/pool_hit_rate gauge:
  // cache_hits / (cache_hits + page_reads), consistent with stats().
  quake::obs::set_enabled(true);
  quake::obs::Registry reg;
  {
    const quake::obs::ScopedRegistry install(reg);
    EtreeStore store(temp_path("hitrate"), sizeof(double), 4, true);
    const LinearOctree tree =
        build_octree([](const Octant& o) { return o.level < 4; }, 4);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const double v = static_cast<double>(i);
      store.put(tree[i], bytes_of(v));
    }
    quake::util::Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      double out;
      ASSERT_TRUE(store.get(
          tree[rng.next_u64() % tree.size()],
          std::as_writable_bytes(std::span<double, 1>(&out, 1))));
    }
    const auto st = store.stats();
    ASSERT_GT(st.cache_hits + st.page_reads, 0u);
    const auto it = reg.gauges.find("etree/pool_hit_rate");
    ASSERT_NE(it, reg.gauges.end());
    EXPECT_DOUBLE_EQ(it->second,
                     static_cast<double>(st.cache_hits) /
                         static_cast<double>(st.cache_hits + st.page_reads));
    EXPECT_GE(it->second, 0.0);
    EXPECT_LE(it->second, 1.0);
  }
  quake::obs::set_enabled(false);
}

// ---- page integrity (v2 format: trailing per-page CRC32) ------------------

TEST(EtreeStore, VerifiedPageReadsCounted) {
  const std::string path = temp_path("verify_counts");
  {
    EtreeStore store(path, sizeof(double), 8, /*create=*/true);
    for (int i = 0; i < 200; ++i) {
      store.put(Octant{}.child(i % 8).child((i / 8) % 8), bytes_of(1.0 * i));
    }
    store.flush();
  }
  // Reopen and scan: every page comes back from disk through the checksum.
  EtreeStore store(path, sizeof(double), 8, /*create=*/false);
  std::size_t seen = 0;
  store.scan([&](const Octant&, std::span<const std::byte>) { ++seen; });
  EXPECT_GT(seen, 0u);
  const auto st = store.stats();
  EXPECT_GT(st.page_reads, 0u);
  EXPECT_GT(st.pages_verified, 0u);
  EXPECT_EQ(st.page_verify_failures, 0u);
}

TEST(EtreeStore, CorruptedPageRaisesDescriptiveError) {
  const std::string path = temp_path("corrupt");
  {
    EtreeStore store(path, sizeof(double), 8, /*create=*/true);
    for (int i = 0; i < 500; ++i) {
      store.put(Octant{}.child(i % 8).child((i / 8) % 8).child((i / 64) % 8),
                bytes_of(1.0 * i));
    }
    store.flush();
  }
  // Flip one byte in the middle of page 1 (the first tree page).
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 4096 + 100, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 4096 + 100, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  // A pool too small to hold the whole tree forces real disk reads; the
  // poisoned page must surface as a checksum error naming page and file,
  // not as garbage records.
  EtreeStore store(path, sizeof(double), 4, /*create=*/false);
  try {
    store.scan([](const Octant&, std::span<const std::byte>) {});
    FAIL() << "scan over a corrupted page must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(EtreeStore, TruncatedPageRaisesDescriptiveError) {
  const std::string path = temp_path("truncated");
  {
    EtreeStore store(path, sizeof(double), 8, /*create=*/true);
    for (int i = 0; i < 500; ++i) {
      store.put(Octant{}.child(i % 8).child((i / 8) % 8).child((i / 64) % 8),
                bytes_of(1.0 * i));
    }
    store.flush();
  }
  // Chop the file mid-page: the partial page must be reported as truncated
  // (a fully missing page past EOF would be a legitimate fresh page).
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 4096u + 2048u);
  std::filesystem::resize_file(path, size - 2048);
  EtreeStore store(path, sizeof(double), 4, /*create=*/false);
  try {
    store.scan([](const Octant&, std::span<const std::byte>) {});
    FAIL() << "scan over a truncated page must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated page"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST(EtreeStore, PreChecksumFormatRejectedWithVersionError) {
  const std::string path = temp_path("old_format");
  {
    EtreeStore store(path, sizeof(double), 8, /*create=*/true);
    store.put(Octant{}.child(1), bytes_of(1.0));
    store.flush();
  }
  // Stamp an old version number into the header and refresh the header
  // page's CRC so the version check (not the checksum) is what fires.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::vector<unsigned char> page(4096);
    ASSERT_EQ(std::fread(page.data(), 1, page.size(), f), page.size());
    const std::uint32_t old_version = 1;
    std::memcpy(page.data() + 4, &old_version, 4);  // after the magic
    const std::uint32_t crc = quake::util::crc32({page.data(), 4092});
    std::memcpy(page.data() + 4092, &crc, 4);
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fwrite(page.data(), 1, page.size(), f), page.size());
    std::fclose(f);
  }
  try {
    EtreeStore store(path, sizeof(double), 8, /*create=*/false);
    FAIL() << "opening a pre-v2 file must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
  }
}

TEST(EtreeStore, DistinguishesLevelsAtSameAnchor) {
  // An octant and its first child share the anchor; keys must differ.
  EtreeStore store(temp_path("levels"), sizeof(double), 8, true);
  const Octant parent = Octant{}.child(0);
  const Octant child = parent.child(0);
  store.put(parent, bytes_of(1.0));
  store.put(child, bytes_of(2.0));
  EXPECT_EQ(store.count(), 2u);
  double a, b;
  ASSERT_TRUE(store.get(parent, std::as_writable_bytes(std::span<double, 1>(&a, 1))));
  ASSERT_TRUE(store.get(child, std::as_writable_bytes(std::span<double, 1>(&b, 1))));
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 2.0);
}

}  // namespace
