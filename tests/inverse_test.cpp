// Tests for the inverse machinery: exact discrete adjoint gradients
// (validated against finite differences), Gauss-Newton operator properties,
// material parameterization, regularizers, checkpointing, and end-to-end
// material and source inversions on small problems.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quake/inverse/band.hpp"
#include "quake/inverse/checkpoint.hpp"
#include "quake/inverse/joint_inversion.hpp"
#include "quake/inverse/material_inversion.hpp"
#include "quake/inverse/material_param.hpp"
#include "quake/inverse/problem.hpp"
#include "quake/inverse/regularization.hpp"
#include "quake/inverse/source_inversion.hpp"
#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake;
using namespace quake::inverse;
using wave2d::Fault2d;
using wave2d::ShGrid;
using wave2d::ShModel;
using wave2d::SourceParams2d;

constexpr double kRho = 2000.0;

// A small but nontrivial inversion testbed: a 2.4 km x 1.6 km section,
// fault in the middle, receivers along the free surface.
struct TestBed {
  ShGrid grid{24, 16, 100.0};
  Fault2d fault{12, 4, 12};
  std::vector<double> mu_true;
  SourceParams2d src_true;
  InversionSetup setup;

  explicit TestBed(int nt = 220) {
    const std::size_t ne = static_cast<std::size_t>(grid.n_elems());
    // Background plus a soft inclusion (the "basin").
    mu_true.assign(ne, 2.0e9);
    for (int k = 0; k < 6; ++k) {
      for (int i = 6; i < 18; ++i) {
        mu_true[static_cast<std::size_t>(grid.elem(i, k))] = 8.0e8;
      }
    }
    src_true = wave2d::make_rupture_params(grid, fault, 1.2, 0.7, 8, 2500.0);

    const ShModel model(grid, std::vector<double>(mu_true), kRho);
    setup.grid = grid;
    setup.rho = kRho;
    setup.fault = fault;
    setup.source = src_true;
    for (int i = 1; i < grid.nx; i += 2) {
      setup.receiver_nodes.push_back(grid.node(i, 0));
    }
    setup.dt = model.stable_dt(0.4);
    setup.nt = nt;

    // Synthesize observations from the true model.
    InversionSetup tmp = setup;
    tmp.observations = {};
    const InversionProblem gen(tmp);
    auto fwd = gen.forward(model, src_true, false);
    setup.observations = fwd.march.records;
  }
};

TEST(MaterialGrid, InterpolatesBilinearFieldsExactly) {
  const ShGrid g{20, 10, 50.0};
  const MaterialGrid mg(g, 4, 2);
  // m(x, z) = 2 + 3x + 5z is reproduced exactly by bilinear interpolation.
  std::vector<double> m(mg.n_params());
  for (int k = 0; k <= mg.gz(); ++k) {
    for (int i = 0; i <= mg.gx(); ++i) {
      const double x = i * mg.cell_dx(), z = k * mg.cell_dz();
      m[static_cast<std::size_t>(mg.node(i, k))] = 2.0 + 3.0 * x + 5.0 * z;
    }
  }
  std::vector<double> mu(static_cast<std::size_t>(g.n_elems()));
  mg.apply(m, mu);
  for (int e = 0; e < g.n_elems(); ++e) {
    const int i = e % g.nx, k = e / g.nx;
    const double x = (i + 0.5) * g.h, z = (k + 0.5) * g.h;
    EXPECT_NEAR(mu[static_cast<std::size_t>(e)], 2.0 + 3.0 * x + 5.0 * z, 1e-9);
  }
}

TEST(MaterialGrid, TransposeIsAdjoint) {
  const ShGrid g{20, 10, 50.0};
  const MaterialGrid mg(g, 5, 3);
  util::Rng rng(1);
  std::vector<double> m(mg.n_params()), ge(static_cast<std::size_t>(g.n_elems()));
  for (double& v : m) v = rng.uniform(-1.0, 1.0);
  for (double& v : ge) v = rng.uniform(-1.0, 1.0);
  std::vector<double> pm(ge.size());
  mg.apply(m, pm);
  std::vector<double> ptg(m.size(), 0.0);
  mg.apply_transpose(ge, ptg);
  EXPECT_NEAR(util::dot(pm, ge), util::dot(m, ptg), 1e-9);
}

TEST(MaterialGrid, ProlongationPreservesLinearFields) {
  const ShGrid g{20, 10, 50.0};
  const MaterialGrid coarse(g, 2, 1), fine(g, 8, 4);
  std::vector<double> m(coarse.n_params());
  for (int k = 0; k <= coarse.gz(); ++k) {
    for (int i = 0; i <= coarse.gx(); ++i) {
      m[static_cast<std::size_t>(coarse.node(i, k))] =
          1.0 + 2.0 * i * coarse.cell_dx() - 0.5 * k * coarse.cell_dz();
    }
  }
  const auto mf = coarse.prolongate(m, fine);
  for (int k = 0; k <= fine.gz(); ++k) {
    for (int i = 0; i <= fine.gx(); ++i) {
      const double expect =
          1.0 + 2.0 * i * fine.cell_dx() - 0.5 * k * fine.cell_dz();
      EXPECT_NEAR(mf[static_cast<std::size_t>(fine.node(i, k))], expect, 1e-9);
    }
  }
}

TEST(Regularization, TvGradientMatchesFiniteDifference) {
  const ShGrid g{20, 10, 50.0};
  const MaterialGrid mg(g, 5, 3);
  const TotalVariation tv(mg, 3.0, 0.1);
  util::Rng rng(2);
  std::vector<double> m(mg.n_params()), d(mg.n_params());
  for (double& v : m) v = rng.uniform(0.5, 2.0);
  for (double& v : d) v = rng.uniform(-1.0, 1.0);
  std::vector<double> grad(m.size(), 0.0);
  tv.add_gradient(m, grad);
  const double eps = 1e-6;
  std::vector<double> mp(m), mm(m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    mp[i] += eps * d[i];
    mm[i] -= eps * d[i];
  }
  const double fd = (tv.value(mp) - tv.value(mm)) / (2 * eps);
  EXPECT_NEAR(util::dot(grad, d), fd, 1e-5 * (std::abs(fd) + 1.0));
}

TEST(Regularization, TvGradientZeroForConstant) {
  const ShGrid g{20, 10, 50.0};
  const MaterialGrid mg(g, 4, 4);
  const TotalVariation tv(mg, 2.0, 0.5);
  std::vector<double> m(mg.n_params(), 7.0), grad(mg.n_params(), 0.0);
  tv.add_gradient(m, grad);
  EXPECT_NEAR(util::norm_max(grad), 0.0, 1e-14);
}

TEST(Regularization, TvHessianSymmetricPsd) {
  const ShGrid g{20, 10, 50.0};
  const MaterialGrid mg(g, 4, 3);
  const TotalVariation tv(mg, 2.0, 0.3);
  util::Rng rng(3);
  std::vector<double> m(mg.n_params()), v(mg.n_params()), w(mg.n_params());
  for (double& x : m) x = rng.uniform(0.5, 2.0);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  for (double& x : w) x = rng.uniform(-1.0, 1.0);
  std::vector<double> hv(v.size(), 0.0), hw(w.size(), 0.0);
  tv.add_hessian_vec(m, v, hv);
  tv.add_hessian_vec(m, w, hw);
  EXPECT_NEAR(util::dot(hv, w), util::dot(hw, v), 1e-9);
  EXPECT_GE(util::dot(hv, v), -1e-12);
}

TEST(Regularization, TikhonovAndBarrierFiniteDifference) {
  const Tikhonov1d tik(2.5, 0.1);
  const LogBarrier bar(0.3, 1.0);
  util::Rng rng(4);
  std::vector<double> p(9), d(9);
  for (double& v : p) v = rng.uniform(2.0, 3.0);
  for (double& v : d) v = rng.uniform(-1.0, 1.0);
  std::vector<double> g(9, 0.0);
  tik.add_gradient(p, g);
  bar.add_gradient(p, g);
  const double eps = 1e-7;
  std::vector<double> pp(p), pm(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    pp[i] += eps * d[i];
    pm[i] -= eps * d[i];
  }
  const double fd =
      (tik.value(pp) + bar.value(pp) - tik.value(pm) - bar.value(pm)) /
      (2 * eps);
  EXPECT_NEAR(util::dot(g, d), fd, 1e-5 * (std::abs(fd) + 1.0));
}

TEST(AdjointGradient, MaterialMatchesFiniteDifference) {
  const TestBed tb(160);
  const InversionProblem prob(tb.setup);
  const std::size_t ne = static_cast<std::size_t>(tb.grid.n_elems());

  // Evaluate around a model that differs from the truth (nonzero residual).
  std::vector<double> mu(ne, 1.6e9);
  const ShModel model(tb.grid, std::vector<double>(mu), kRho);
  const auto fwd = prob.forward(model, tb.src_true, /*history=*/true);
  ASSERT_GT(fwd.misfit, 0.0);
  const History nu = prob.adjoint(model, fwd.residuals);
  std::vector<double> ge(ne, 0.0);
  prob.assemble_material_gradient(model, tb.src_true, fwd.march.history, nu,
                                  ge);

  util::Rng rng(11);
  std::vector<double> dmu(ne);
  for (double& v : dmu) v = rng.uniform(-1.0, 1.0) * 1e8;
  auto j_of = [&](double s) {
    std::vector<double> mu_t(ne);
    for (std::size_t e = 0; e < ne; ++e) mu_t[e] = mu[e] + s * dmu[e];
    const ShModel mt(tb.grid, std::move(mu_t), kRho);
    return prob.forward(mt, tb.src_true, false).misfit;
  };
  const double eps = 1e-5;
  const double fd = (j_of(eps) - j_of(-eps)) / (2 * eps);
  const double lin = util::dot(ge, dmu);
  EXPECT_NEAR(lin, fd, 2e-4 * std::abs(fd));
}

TEST(AdjointGradient, SourceMatchesFiniteDifference) {
  const TestBed tb(160);
  const InversionProblem prob(tb.setup);
  const ShModel model(tb.grid, std::vector<double>(tb.mu_true), kRho);

  // Perturbed source (nonzero residual).
  SourceParams2d p = tb.src_true;
  for (auto& v : p.u0) v *= 0.8;
  for (auto& v : p.t0) v *= 1.25;
  for (auto& v : p.T) v += 0.15;

  const auto fwd = prob.forward(model, p, false);
  ASSERT_GT(fwd.misfit, 0.0);
  const History nu = prob.adjoint(model, fwd.residuals);
  const std::size_t np = p.u0.size();
  std::vector<double> g(3 * np, 0.0);
  prob.assemble_source_gradient(model, p, nu, {g.data(), np},
                                {g.data() + np, np}, {g.data() + 2 * np, np});

  util::Rng rng(13);
  std::vector<double> d(3 * np);
  for (double& v : d) v = rng.uniform(-1.0, 1.0);
  auto j_of = [&](double s) {
    SourceParams2d q = p;
    for (std::size_t j = 0; j < np; ++j) {
      q.u0[j] += s * d[j];
      q.t0[j] += s * d[np + j];
      q.T[j] += s * d[2 * np + j];
    }
    return prob.forward(model, q, false).misfit;
  };
  const double eps = 1e-6;
  const double fd = (j_of(eps) - j_of(-eps)) / (2 * eps);
  EXPECT_NEAR(util::dot(g, d), fd, 5e-4 * std::abs(fd));
}

TEST(GaussNewton, MaterialOperatorSymmetricPsd) {
  const TestBed tb(120);
  const InversionProblem prob(tb.setup);
  const std::size_t ne = static_cast<std::size_t>(tb.grid.n_elems());
  std::vector<double> mu(ne, 1.6e9);
  const ShModel model(tb.grid, std::vector<double>(mu), kRho);
  const auto fwd = prob.forward(model, tb.src_true, true);

  util::Rng rng(17);
  std::vector<double> v(ne), w(ne), hv(ne, 0.0), hw(ne, 0.0);
  for (double& x : v) x = rng.uniform(-1.0, 1.0) * 1e8;
  for (double& x : w) x = rng.uniform(-1.0, 1.0) * 1e8;
  prob.gauss_newton_material(model, tb.src_true, fwd.march.history, v, hv);
  prob.gauss_newton_material(model, tb.src_true, fwd.march.history, w, hw);
  const double vhw = util::dot(v, hw);
  const double whv = util::dot(w, hv);
  EXPECT_NEAR(vhw, whv, 1e-6 * (std::abs(vhw) + std::abs(whv)) + 1e-12);
  EXPECT_GE(util::dot(v, hv), -1e-10 * util::norm_l2(v) * util::norm_l2(hv));
}

TEST(Checkpoint, GradientMatchesStoredHistory) {
  const TestBed tb(150);
  const InversionProblem prob(tb.setup);
  const std::size_t ne = static_cast<std::size_t>(tb.grid.n_elems());
  std::vector<double> mu(ne, 1.5e9);
  const ShModel model(tb.grid, std::vector<double>(mu), kRho);
  const auto fwd = prob.forward(model, tb.src_true, true);
  const History nu = prob.adjoint(model, fwd.residuals);
  std::vector<double> g_ref(ne, 0.0);
  prob.assemble_material_gradient(model, tb.src_true, fwd.march.history, nu,
                                  g_ref);

  for (int stride : {0, 7, 40, 150, 1}) {
    std::vector<double> g_cp(ne, 0.0);
    const auto stats = checkpointed_material_gradient(
        prob, model, tb.src_true, fwd.residuals, stride, g_cp);
    EXPECT_LT(util::diff_l2(g_cp, g_ref), 1e-11 * (1.0 + util::norm_l2(g_ref)))
        << "stride=" << stride;
    EXPECT_GT(stats.checkpoints_stored, 0);
  }
}

TEST(Checkpoint, StoresFarFewerStatesThanFullHistory) {
  const TestBed tb(150);
  const InversionProblem prob(tb.setup);
  const std::size_t ne = static_cast<std::size_t>(tb.grid.n_elems());
  std::vector<double> mu(ne, 1.5e9);
  const ShModel model(tb.grid, std::vector<double>(mu), kRho);
  const auto fwd = prob.forward(model, tb.src_true, false);
  std::vector<double> g(ne, 0.0);
  const auto stats = checkpointed_material_gradient(prob, model, tb.src_true,
                                                    fwd.residuals, 0, g);
  EXPECT_LT(stats.peak_states_held, 60u);  // vs 150 stored states
  EXPECT_GT(stats.states_recomputed, 0);
}

TEST(MaterialInversion, RecoversSoftInclusion) {
  const TestBed tb(200);
  const InversionProblem prob(tb.setup);

  MaterialInversionOptions mo;
  mo.stages = {{1, 1}, {3, 2}, {6, 4}};
  mo.max_newton = 12;
  mo.cg = {15, 1e-1};
  // mu is O(1e9) Pa: the TV weight must be scaled so the regularizer is a
  // small fraction of the data misfit.
  mo.beta_tv = 3e-15;
  mo.tv_eps = 1e7;
  mo.mu_min = 1e8;
  mo.initial_mu = 1.6e9;
  mo.grad_tol = 1e-2;
  mo.frankel_sweeps = 0;

  const auto res = invert_material(prob, mo, tb.mu_true);
  ASSERT_EQ(res.stages.size(), 3u);
  // Misfit must drop substantially within and across stages.
  EXPECT_LT(res.stages.back().misfit_final,
            0.1 * res.stages.front().misfit_initial);
  // Model error small by the finest stage (the 1x1 stage can only fit a
  // homogeneous model, so it carries a large error).
  EXPECT_LT(res.stages.back().model_error, 0.3);
  EXPECT_LT(res.stages.back().model_error, res.stages.front().model_error + 0.08);
  EXPECT_GT(res.total_cg, 0);
}

TEST(MaterialInversion, PreconditionerDoesNotBreakConvergence) {
  const TestBed tb(160);
  const InversionProblem prob(tb.setup);
  MaterialInversionOptions mo;
  mo.stages = {{2, 2}};
  mo.max_newton = 5;
  mo.cg = {10, 1e-1};
  mo.beta_tv = 1e-16;
  mo.tv_eps = 1e7;
  mo.mu_min = 1e8;
  mo.initial_mu = 1.6e9;
  mo.precondition = true;
  mo.frankel_sweeps = 2;
  const auto res = invert_material(prob, mo, tb.mu_true);
  EXPECT_LT(res.stages[0].misfit_final, res.stages[0].misfit_initial);
}

TEST(SourceInversion, RecoversRuptureParameters) {
  const TestBed tb(200);
  const InversionProblem prob(tb.setup);
  const ShModel model(tb.grid, std::vector<double>(tb.mu_true), kRho);

  SourceInversionOptions so;
  so.max_newton = 15;
  so.cg = {15, 1e-1};
  so.beta_u0 = so.beta_t0 = so.beta_T = 1e-3;
  so.u0_init = 1.0;
  so.t0_init = 0.9;
  so.T_init = 0.2;
  so.grad_tol = 1e-4;

  const auto res = invert_source(prob, model, so);
  ASSERT_GE(res.iterates.size(), 2u);
  EXPECT_LT(res.misfit_final, 0.01 * res.iterates.front().misfit);
  // Recovered fields close to the truth (interior nodes).
  const std::size_t np = tb.src_true.u0.size();
  for (std::size_t j = 1; j + 1 < np; ++j) {
    EXPECT_NEAR(res.params.u0[j], tb.src_true.u0[j], 0.25);
    EXPECT_NEAR(res.params.t0[j], tb.src_true.t0[j], 0.25);
    EXPECT_NEAR(res.params.T[j], tb.src_true.T[j], 0.25);
  }
}

TEST(Problem, MisfitZeroAtTruth) {
  const TestBed tb(120);
  const InversionProblem prob(tb.setup);
  const ShModel model(tb.grid, std::vector<double>(tb.mu_true), kRho);
  const auto fwd = prob.forward(model, tb.src_true, false);
  EXPECT_NEAR(fwd.misfit, 0.0, 1e-20);
}

TEST(Band, SymmetricOperatorIsFiltfiltAndSelfAdjoint) {
  const ResidualFilter rf(2.0, 50.0);
  util::Rng rng(21);
  std::vector<double> x(256), y(256);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  for (double& v : y) v = rng.uniform(-1.0, 1.0);
  // <F x, y> == <x, F y> (F = B^T B is symmetric).
  const auto fx = rf.symmetric(x);
  const auto fy = rf.symmetric(y);
  EXPECT_NEAR(util::dot(fx, y), util::dot(x, fy), 1e-10);
  // x^T F x == ||B x||^2 >= 0.
  const auto bx = rf.causal(x);
  EXPECT_NEAR(util::dot(fx, x), util::dot(bx, bx), 1e-10);
  // F equals the library filtfilt.
  const auto ff = util::lowpass_zero_phase(x, 2.0, 50.0);
  EXPECT_LT(util::diff_l2(fx, ff), 1e-12);
}

TEST(Band, FilteredMisfitGradientMatchesFiniteDifference) {
  // The frequency-continuation gradient: J = 1/2 dt sum ||B r||^2, adjoint
  // driven by B^T B r — must match finite differences exactly, like the
  // unfiltered one.
  const TestBed tb(160);
  const InversionProblem prob(tb.setup);
  const std::size_t ne = static_cast<std::size_t>(tb.grid.n_elems());
  const ResidualFilter rf(1.0, 1.0 / tb.setup.dt);

  std::vector<double> mu(ne, 1.6e9);
  const ShModel model(tb.grid, std::vector<double>(mu), kRho);
  const auto fwd = prob.forward(model, tb.src_true, true);
  const History nu = prob.adjoint(model, rf.apply_symmetric(fwd.residuals));
  std::vector<double> ge(ne, 0.0);
  prob.assemble_material_gradient(model, tb.src_true, fwd.march.history, nu,
                                  ge);

  util::Rng rng(23);
  std::vector<double> dmu(ne);
  for (double& v : dmu) v = rng.uniform(-1.0, 1.0) * 1e8;
  auto j_of = [&](double s) {
    std::vector<double> mu_t(ne);
    for (std::size_t e = 0; e < ne; ++e) mu_t[e] = mu[e] + s * dmu[e];
    const ShModel mt(tb.grid, std::move(mu_t), kRho);
    const auto f = prob.forward(mt, tb.src_true, false);
    return 0.5 * tb.setup.dt * rf.filtered_norm2(f.residuals);
  };
  const double eps = 1e-5;
  const double fd = (j_of(eps) - j_of(-eps)) / (2 * eps);
  EXPECT_NEAR(util::dot(ge, dmu), fd, 3e-4 * std::abs(fd));
}

TEST(Band, FrequencyContinuationRunsAndConverges) {
  const TestBed tb(200);
  const InversionProblem prob(tb.setup);
  MaterialInversionOptions mo;
  mo.stages = {{2, 2}, {4, 3}, {6, 4}};
  // Low band first, full band last.
  mo.stage_f_cut = {0.6, 1.2, 0.0};
  mo.max_newton = 8;
  mo.cg = {12, 1e-1};
  mo.beta_tv = 3e-15;
  mo.tv_eps = 1e7;
  mo.mu_min = 1e8;
  mo.initial_mu = 1.6e9;
  mo.grad_tol = 1e-2;
  const auto res = invert_material(prob, mo, tb.mu_true);
  ASSERT_EQ(res.stages.size(), 3u);
  // Full-band misfit at the final stage is far below the initial full-band
  // misfit (computed in the first unfiltered stage... use final stage).
  EXPECT_LT(res.stages.back().misfit_final,
            res.stages.back().misfit_initial);
  EXPECT_LT(res.stages.back().model_error, 0.35);
}

TEST(Joint, BlindDeconvolutionRecoversBoth) {
  // The "blind deconvolution" extension: neither material nor source known.
  const TestBed tb(220);
  const InversionProblem prob(tb.setup);

  JointInversionOptions jo;
  jo.gx = 4;
  jo.gz = 3;
  jo.max_newton = 18;
  jo.cg = {20, 1e-1};
  jo.beta_tv = 3e-15;
  jo.tv_eps = 1e7;
  jo.beta_u0 = jo.beta_t0 = jo.beta_T = 1e-3;
  jo.mu_min = 1e8;
  jo.initial_mu = 1.6e9;
  jo.u0_init = 1.0;
  jo.t0_init = 0.9;
  jo.T_init = 0.2;
  jo.grad_tol = 1e-4;

  const auto res = invert_joint(prob, jo, tb.mu_true, &tb.src_true);
  EXPECT_LT(res.misfit_final, 0.05 * res.misfit_initial);
  // Both unknowns move decisively toward their targets.
  EXPECT_LT(res.material_error, 0.35);
  EXPECT_LT(res.source_error, 0.35);
  EXPECT_GT(res.newton_iters, 2);
}

TEST(Joint, StackedGradientMatchesFiniteDifference) {
  // The joint gradient [P^T g_mu + TV'; g_u0 + reg'; g_t0 + reg';
  // g_T + reg'] assembled from ONE adjoint must match finite differences of
  // the full objective in a random stacked direction.
  const TestBed tb(140);
  const InversionProblem prob(tb.setup);
  const std::size_t ne = static_cast<std::size_t>(tb.grid.n_elems());
  const std::size_t nps = static_cast<std::size_t>(tb.fault.n_points());

  const MaterialGrid mg(tb.setup.grid, 3, 2);
  const std::size_t npm = mg.n_params();
  std::vector<double> m(npm, 1.5e9);
  SourceParams2d p = tb.src_true;
  for (auto& v : p.u0) v *= 0.85;
  for (auto& v : p.T) v += 0.1;

  std::vector<double> mu(ne);
  mg.apply(m, mu);
  const ShModel model(tb.grid, std::vector<double>(mu), kRho);
  const auto fwd = prob.forward(model, p, true);
  const History nu = prob.adjoint(model, fwd.residuals);
  std::vector<double> ge(ne, 0.0);
  prob.assemble_material_gradient(model, p, fwd.march.history, nu, ge);
  std::vector<double> g(npm + 3 * nps, 0.0);
  mg.apply_transpose(ge, {g.data(), npm});
  prob.assemble_source_gradient(model, p, nu, {g.data() + npm, nps},
                                {g.data() + npm + nps, nps},
                                {g.data() + npm + 2 * nps, nps});

  util::Rng rng(31);
  std::vector<double> d(npm + 3 * nps);
  for (std::size_t i = 0; i < d.size(); ++i) {
    d[i] = rng.uniform(-1.0, 1.0) * (i < npm ? 1e8 : 1.0);
  }
  auto j_of = [&](double s) {
    std::vector<double> mt(npm);
    for (std::size_t i = 0; i < npm; ++i) mt[i] = m[i] + s * d[i];
    SourceParams2d q = p;
    for (std::size_t i = 0; i < nps; ++i) {
      q.u0[i] += s * d[npm + i];
      q.t0[i] += s * d[npm + nps + i];
      q.T[i] += s * d[npm + 2 * nps + i];
    }
    std::vector<double> mu_t(ne);
    mg.apply(mt, mu_t);
    const ShModel mm(tb.grid, std::move(mu_t), kRho);
    return prob.forward(mm, q, false).misfit;
  };
  const double eps = 1e-6;
  const double fd = (j_of(eps) - j_of(-eps)) / (2 * eps);
  EXPECT_NEAR(util::dot(g, d), fd, 5e-4 * std::abs(fd));
}

}  // namespace
