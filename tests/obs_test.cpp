// Tests for the quake::obs telemetry layer: scope nesting, counter/gauge/
// series recording, report encode/decode, the across-rank merge through the
// real quake::par communicator, JSON round-trips, and the disabled-mode
// zero-allocation guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#include "quake/obs/json.hpp"
#include "quake/obs/obs.hpp"
#include "quake/obs/report.hpp"
#include "quake/obs/sink.hpp"
#include "quake/par/communicator.hpp"

namespace {

using namespace quake;

// Global operator new/delete override counting allocations, to verify the
// disabled hot path allocates nothing. Counting is toggled so gtest's own
// bookkeeping does not pollute the measurement.
std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    reg_.clear();
  }
  void TearDown() override { obs::set_enabled(false); }
  obs::Registry reg_;
};

TEST_F(ObsTest, NestedScopeAccumulation) {
  const obs::ScopedRegistry install(reg_);
  for (int i = 0; i < 3; ++i) {
    QUAKE_OBS_SCOPE("outer");
    {
      QUAKE_OBS_SCOPE("inner");
    }
    {
      QUAKE_OBS_SCOPE("inner");
    }
  }
  ASSERT_EQ(reg_.scopes.count("outer"), 1u);
  ASSERT_EQ(reg_.scopes.count("outer/inner"), 1u);
  EXPECT_EQ(reg_.scopes["outer"].calls, 3u);
  EXPECT_EQ(reg_.scopes["outer/inner"].calls, 6u);
  // Inclusive timing: the outer scope covers its nested scopes.
  EXPECT_GE(reg_.scopes["outer"].seconds, reg_.scopes["outer/inner"].seconds);
}

TEST_F(ObsTest, SlashInScopeNameJoinsPath) {
  const obs::ScopedRegistry install(reg_);
  {
    QUAKE_OBS_SCOPE("step/exchange");
    QUAKE_OBS_SCOPE("send");
  }
  EXPECT_EQ(reg_.scopes.count("step/exchange/send"), 1u);
}

TEST_F(ObsTest, CountersGaugesSeries) {
  const obs::ScopedRegistry install(reg_);
  obs::counter_add("n", 2);
  obs::counter_add("n", 3);
  obs::gauge_set("g", 1.5);
  obs::gauge_set("g", 2.5);  // last write wins
  obs::series_append("s", 1.0);
  obs::series_append("s", 4.0);
  EXPECT_EQ(reg_.counters["n"], 5);
  EXPECT_DOUBLE_EQ(reg_.gauges["g"], 2.5);
  ASSERT_EQ(reg_.series["s"].size(), 2u);
  EXPECT_DOUBLE_EQ(reg_.series["s"][1], 4.0);
}

TEST_F(ObsTest, DisabledCallsRecordNothing) {
  obs::set_enabled(false);
  const obs::ScopedRegistry install(reg_);
  {
    QUAKE_OBS_SCOPE("x");
    obs::counter_add("n", 1);
    obs::gauge_set("g", 1.0);
    obs::series_append("s", 1.0);
  }
  EXPECT_TRUE(reg_.empty());
}

TEST_F(ObsTest, DisabledHotPathAllocatesNothing) {
  obs::set_enabled(false);
  const obs::ScopedRegistry install(reg_);
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 1000; ++i) {
    QUAKE_OBS_SCOPE("kernel");
    obs::counter_add("elements", 64);
    obs::series_append("trace", static_cast<double>(i));
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

TEST_F(ObsTest, ScopedRegistryRestoresPrevious) {
  const obs::ScopedRegistry outer(reg_);
  obs::Registry inner_reg;
  {
    const obs::ScopedRegistry inner(inner_reg);
    obs::counter_add("k", 1);
  }
  obs::counter_add("k", 10);
  EXPECT_EQ(inner_reg.counters["k"], 1);
  EXPECT_EQ(reg_.counters["k"], 10);
}

TEST_F(ObsTest, MergeFromAccumulates) {
  obs::Registry a, b;
  a.scopes["s"] = {2, 1.0};
  a.counters["c"] = 5;
  a.series["t"] = {1.0};
  b.scopes["s"] = {3, 2.0};
  b.counters["c"] = 7;
  b.gauges["g"] = 9.0;
  b.series["t"] = {2.0, 3.0};
  a.merge_from(b);
  EXPECT_EQ(a.scopes["s"].calls, 5u);
  EXPECT_DOUBLE_EQ(a.scopes["s"].seconds, 3.0);
  EXPECT_EQ(a.counters["c"], 12);
  EXPECT_DOUBLE_EQ(a.gauges["g"], 9.0);
  EXPECT_EQ(a.series["t"].size(), 3u);
}

TEST_F(ObsTest, EncodeDecodeRoundTrip) {
  obs::RankReport r;
  r.rank = 3;
  r.metrics.scopes["step/compute"] = {41, 0.125};
  r.metrics.scopes["step/exchange/recv"] = {41, 0.5};
  r.metrics.counters["comm/bytes_sent"] = (1ll << 53);
  r.metrics.counters["neg"] = -7;
  r.metrics.gauges["par/n_elems"] = 1234.0;
  r.metrics.series["gn/misfit"] = {3.0, 2.0, 1.5};

  const std::vector<double> enc = obs::encode_report(r);
  const obs::RankReport d = obs::decode_report(enc);
  EXPECT_EQ(d.rank, 3);
  EXPECT_EQ(d.metrics.scopes.at("step/compute").calls, 41u);
  EXPECT_DOUBLE_EQ(d.metrics.scopes.at("step/exchange/recv").seconds, 0.5);
  EXPECT_EQ(d.metrics.counters.at("comm/bytes_sent"), 1ll << 53);
  EXPECT_EQ(d.metrics.counters.at("neg"), -7);
  EXPECT_DOUBLE_EQ(d.metrics.gauges.at("par/n_elems"), 1234.0);
  ASSERT_EQ(d.metrics.series.at("gn/misfit").size(), 3u);
  EXPECT_DOUBLE_EQ(d.metrics.series.at("gn/misfit")[2], 1.5);
}

TEST_F(ObsTest, DecodeRejectsTruncatedBuffer) {
  obs::RankReport r;
  r.rank = 0;
  r.metrics.counters["c"] = 1;
  std::vector<double> enc = obs::encode_report(r);
  enc.pop_back();
  EXPECT_THROW(obs::decode_report(enc), std::runtime_error);
  EXPECT_THROW(obs::decode_report(std::vector<double>{}), std::runtime_error);
}

TEST_F(ObsTest, MergeReportsMinMeanMaxAndMissingKeysAsZero) {
  std::vector<obs::RankReport> reports(3);
  for (int i = 0; i < 3; ++i) reports[static_cast<std::size_t>(i)].rank = i;
  reports[0].metrics.counters["c"] = 2;
  reports[1].metrics.counters["c"] = 4;
  reports[2].metrics.counters["c"] = 6;
  // "only01" missing on rank 2: contributes 0 (all-ranks reduce).
  reports[0].metrics.counters["only01"] = 3;
  reports[1].metrics.counters["only01"] = 3;
  reports[0].metrics.scopes["s"] = {1, 1.0};
  reports[1].metrics.scopes["s"] = {1, 3.0};
  reports[2].metrics.scopes["s"] = {2, 2.0};

  const obs::MergedReport m = obs::merge_reports(reports);
  EXPECT_EQ(m.n_ranks, 3);
  EXPECT_DOUBLE_EQ(m.counters.at("c").min, 2.0);
  EXPECT_DOUBLE_EQ(m.counters.at("c").mean, 4.0);
  EXPECT_DOUBLE_EQ(m.counters.at("c").max, 6.0);
  EXPECT_DOUBLE_EQ(m.counters.at("c").sum, 12.0);
  EXPECT_DOUBLE_EQ(m.counters.at("only01").min, 0.0);
  EXPECT_DOUBLE_EQ(m.counters.at("only01").mean, 2.0);
  EXPECT_EQ(m.scopes.at("s").calls_total, 4u);
  EXPECT_DOUBLE_EQ(m.scopes.at("s").seconds.max, 3.0);
}

// The tentpole integration check: per-rank registries recorded on real SPMD
// threads, shipped through the communicator as encoded reports, merged at
// rank 0 — the transport run_parallel uses.
TEST_F(ObsTest, CounterMergeAcrossRanksViaCommunicator) {
  constexpr int kRanks = 4;
  std::vector<obs::Registry> regs(kRanks);
  par::Communicator comm(kRanks);
  obs::MergedReport merged;
  comm.run([&](par::Rank& rank) {
    const obs::ScopedRegistry install(
        regs[static_cast<std::size_t>(rank.id())]);
    {
      QUAKE_OBS_SCOPE("work");
      obs::counter_add("items", 10 * (rank.id() + 1));
    }
    if (rank.id() == 0) {
      std::vector<obs::RankReport> reports;
      reports.push_back({0, regs[0]});
      for (int s = 1; s < kRanks; ++s) {
        reports.push_back(obs::decode_report(rank.recv(s, /*tag=*/5)));
      }
      merged = obs::merge_reports(reports);
    } else {
      rank.send(0, /*tag=*/5,
                obs::encode_report(
                    {rank.id(), regs[static_cast<std::size_t>(rank.id())]}));
    }
  });
  EXPECT_EQ(merged.n_ranks, kRanks);
  EXPECT_DOUBLE_EQ(merged.counters.at("items").min, 10.0);
  EXPECT_DOUBLE_EQ(merged.counters.at("items").max, 40.0);
  EXPECT_DOUBLE_EQ(merged.counters.at("items").mean, 25.0);
  EXPECT_DOUBLE_EQ(merged.counters.at("items").sum, 100.0);
  EXPECT_EQ(merged.scopes.at("work").calls_total, 4u);
  // The per-rank traffic counters recorded by Rank::send/recv stayed in
  // each rank's own registry.
  EXPECT_EQ(regs[0].counters.count("comm/bytes_sent"), 0u);
  EXPECT_GT(regs[1].counters.at("comm/bytes_sent"), 0);
}

TEST_F(ObsTest, JsonRoundTrip) {
  obs::Json root = obs::Json::object();
  root.set("name", "bench \"x\"\n\t\\");
  root.set("count", 42);
  root.set("pi", 3.141592653589793);
  root.set("tiny", 1.25e-17);
  root.set("flag", true);
  root.set("nothing", obs::Json());
  obs::Json arr = obs::Json::array();
  arr.push_back(1.0);
  arr.push_back(-2.5);
  root.set("vals", std::move(arr));
  obs::Json nested = obs::Json::object();
  nested.set("k", "v");
  root.set("obj", std::move(nested));

  const std::string text = root.dump();
  obs::Json parsed;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.find("name")->as_string(), "bench \"x\"\n\t\\");
  EXPECT_DOUBLE_EQ(parsed.find("count")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parsed.find("pi")->as_number(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(parsed.find("tiny")->as_number(), 1.25e-17);
  EXPECT_TRUE(parsed.find("flag")->as_bool());
  EXPECT_EQ(parsed.find("nothing")->type(), obs::Json::Type::kNull);
  ASSERT_EQ(parsed.find("vals")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.find("vals")->items()[1].as_number(), -2.5);
  EXPECT_EQ(parsed.find("obj")->find("k")->as_string(), "v");
  // Dump of the parse matches the original dump (stable member order).
  EXPECT_EQ(parsed.dump(), text);
}

TEST_F(ObsTest, JsonParseErrors) {
  obs::Json v;
  std::string err;
  EXPECT_FALSE(obs::Json::parse("{\"a\": }", &v, &err));
  EXPECT_FALSE(obs::Json::parse("[1, 2", &v, &err));
  EXPECT_FALSE(obs::Json::parse("\"unterminated", &v, &err));
  EXPECT_FALSE(obs::Json::parse("12abc", &v, &err));
  EXPECT_FALSE(obs::Json::parse("{} trailing", &v, &err));
  EXPECT_TRUE(obs::Json::parse("  null  ", &v, &err));
}

TEST_F(ObsTest, SinkEnvelopeRoundTrip) {
  obs::MetricsSink sink("unit");
  obs::Json& row = sink.new_row();
  row.set("params", obs::Json::object().set("n", 4));
  row.set("metrics", obs::Json::object().set("t", 0.5));
  const std::string text = sink.envelope().dump();
  obs::Json parsed;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.find("schema")->as_string(), "quake.bench/1");
  EXPECT_EQ(parsed.find("bench")->as_string(), "unit");
  ASSERT_EQ(parsed.find("rows")->items().size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.find("rows")
                       ->items()[0]
                       .find("metrics")
                       ->find("t")
                       ->as_number(),
                   0.5);
}

}  // namespace
