// Tests for the SPMD substrate: communicator semantics, SFC partitioning,
// and serial/parallel equivalence of the explicit solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <string>
#include <thread>

#include "quake/fem/hex_element.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/obs/obs.hpp"
#include "quake/par/communicator.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/par/partition.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake;
using namespace quake::par;

TEST(Communicator, PingPong) {
  Communicator comm(2);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      std::vector<double> msg = {1.0, 2.0, 3.0};
      r.send(1, 7, msg);
      const auto reply = r.recv(1, 7);
      ASSERT_EQ(reply.size(), 1u);
      EXPECT_DOUBLE_EQ(reply[0], 6.0);
    } else {
      const auto msg = r.recv(0, 7);
      ASSERT_EQ(msg.size(), 3u);
      std::vector<double> reply = {msg[0] + msg[1] + msg[2]};
      r.send(0, 7, reply);
    }
  });
}

TEST(Communicator, RecvIntoFillsCallerBuffer) {
  Communicator comm(2);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> msg = {1.5, -2.0, 3.25};
      r.send(1, /*tag=*/7, msg);
    } else {
      std::vector<double> buf(3, 0.0);
      r.recv_into(0, /*tag=*/7, buf);
      EXPECT_DOUBLE_EQ(buf[0], 1.5);
      EXPECT_DOUBLE_EQ(buf[1], -2.0);
      EXPECT_DOUBLE_EQ(buf[2], 3.25);
    }
  });
}

TEST(Communicator, RecvIntoSizeMismatchThrows) {
  // A preplanned exchange must deliver exactly the agreed size; anything
  // else is a program error, not a message to silently truncate or pad.
  Communicator comm(2);
  std::atomic<bool> threw{false};
  try {
    comm.run([&](Rank& r) {
      if (r.id() == 0) {
        const std::vector<double> msg = {1.0, 2.0};
        r.send(1, 0, msg);
      } else {
        std::vector<double> buf(5, 0.0);
        try {
          r.recv_into(0, 0, buf);
        } catch (const CommError&) {
          threw = true;
          throw;
        }
      }
    });
  } catch (const RankFailedError&) {
  }
  EXPECT_TRUE(threw);
}

TEST(Communicator, MessagesArriveInOrder) {
  Communicator comm(2);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      for (int i = 0; i < 50; ++i) {
        std::vector<double> msg = {static_cast<double>(i)};
        r.send(1, 0, msg);
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        const auto msg = r.recv(0, 0);
        EXPECT_DOUBLE_EQ(msg[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Communicator, AllReduce) {
  Communicator comm(4);
  comm.run([](Rank& r) {
    const double s = r.allreduce_sum(static_cast<double>(r.id() + 1));
    EXPECT_DOUBLE_EQ(s, 10.0);
    const double m = r.allreduce_max(static_cast<double>(r.id()));
    EXPECT_DOUBLE_EQ(m, 3.0);
    // Second round: generation counters must reset correctly.
    const double s2 = r.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(s2, 4.0);
  });
}

TEST(Communicator, BarrierSynchronizes) {
  Communicator comm(4);
  std::atomic<int> before{0}, after{0};
  comm.run([&](Rank& r) {
    before.fetch_add(1);
    r.barrier();
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
    r.barrier();
    EXPECT_EQ(after.load(), 4);
  });
}

TEST(Communicator, ExceptionPropagates) {
  Communicator comm(2);
  EXPECT_THROW(comm.run([](Rank& r) {
    if (r.id() == 1) throw std::runtime_error("rank fault");
    // Rank 0 must not deadlock waiting; it simply finishes.
  }),
               std::runtime_error);
}

// Regression: before communicator poisoning, a throwing rank left every
// peer blocked inside recv/barrier forever and run() never returned.
TEST(Communicator, PeerFailureWakesBlockedRecv) {
  Communicator comm(3);
  try {
    comm.run([](Rank& r) {
      if (r.id() == 2) throw std::runtime_error("rank 2 died");
      if (r.id() == 0) r.recv(2, 0);  // would hang: rank 2 never sends
      if (r.id() == 1) r.barrier();   // would hang: never completed
    });
    FAIL() << "run() must throw after a rank failure";
  } catch (const RankFailedError& e) {
    ASSERT_EQ(e.failed_ranks().size(), 1u);
    EXPECT_EQ(e.failed_ranks()[0], 2);
    EXPECT_NE(std::string(e.what()).find("rank 2 died"), std::string::npos);
  }
}

TEST(Communicator, RunAggregatesAllRankErrors) {
  Communicator comm(4);
  try {
    comm.run([](Rank& r) {
      if (r.id() == 1) throw std::runtime_error("fault A");
      if (r.id() == 3) throw std::runtime_error("fault B");
    });
    FAIL() << "run() must throw";
  } catch (const RankFailedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault A"), std::string::npos);
    EXPECT_NE(what.find("fault B"), std::string::npos);
    ASSERT_EQ(e.failed_ranks().size(), 2u);
  }
}

TEST(Communicator, DeadlockDetectedOnMismatchedTags) {
  // Classic mismatched exchange: each rank waits on a tag the other never
  // sends. Must throw DeadlockError naming both blocked operations, not
  // hang forever.
  Communicator comm(2);
  try {
    comm.run([](Rank& r) {
      if (r.id() == 0) {
        r.recv(1, /*tag=*/1);
      } else {
        r.recv(0, /*tag=*/2);
      }
    });
    FAIL() << "run() must diagnose the deadlock";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0: recv(src=1, tag=1)"), std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 1: recv(src=0, tag=2)"), std::string::npos)
        << what;
  }
}

TEST(Communicator, DeadlockDetectedWhenPeerExitsBeforeBarrier) {
  Communicator comm(2);
  try {
    comm.run([](Rank& r) {
      if (r.id() == 0) r.barrier();  // rank 1 returns without reaching it
    });
    FAIL() << "run() must diagnose the deadlock";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 0: barrier"),
              std::string::npos);
  }
}

TEST(Communicator, DeadlockNotDeclaredWhileMessagePending) {
  // A message posted just before the sender finishes satisfies the blocked
  // receiver: no deadlock, clean completion.
  Communicator comm(2);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> msg = {1.0};
      r.send(1, 0, msg);
    } else {
      EXPECT_DOUBLE_EQ(r.recv(0, 0)[0], 1.0);
    }
  });
}

TEST(Communicator, RecvTimeoutThrows) {
  Communicator comm(2);
  std::atomic<bool> timed_out{false};
  comm.run([&](Rank& r) {
    if (r.id() == 0) {
      try {
        r.recv(1, 0, /*timeout_sec=*/0.02);
        FAIL() << "recv must time out";
      } catch (const TimeoutError& e) {
        timed_out.store(true);
        const std::string what = e.what();
        EXPECT_NE(what.find("src=1"), std::string::npos);
        EXPECT_NE(what.find("tag=0"), std::string::npos);
      }
      r.recv(1, 0);  // now wait for the real (late) message
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      const std::vector<double> msg = {2.0};
      r.send(0, 0, msg);
    }
  });
  EXPECT_TRUE(timed_out.load());
}

TEST(Communicator, ReusableAfterFailedRun) {
  Communicator comm(2);
  EXPECT_THROW(comm.run([](Rank& r) {
    if (r.id() == 1) throw std::runtime_error("boom");
    r.recv(1, 0);
  }),
               RankFailedError);
  // The same communicator must support a clean run afterwards.
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> msg = {4.0};
      r.send(1, 0, msg);
    } else {
      EXPECT_DOUBLE_EQ(r.recv(0, 0)[0], 4.0);
    }
    r.barrier();
    EXPECT_DOUBLE_EQ(r.allreduce_sum(1.0), 2.0);
  });
}

TEST(FaultInjection, KillRankAtStepThrowsAggregatedError) {
  Communicator comm(3);
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, /*step=*/5});
  comm.install_fault_plan(plan);
  try {
    comm.run([](Rank& r) {
      for (int k = 0; k < 10; ++k) {
        r.fault_point(k);
        r.barrier();
      }
    });
    FAIL() << "injected kill must surface";
  } catch (const RankFailedError& e) {
    ASSERT_EQ(e.failed_ranks().size(), 1u);
    EXPECT_EQ(e.failed_ranks()[0], 1);
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos);
  }
  // One-shot: a retry on the same communicator passes the kill step.
  comm.run([](Rank& r) {
    for (int k = 0; k < 10; ++k) {
      r.fault_point(k);
      r.barrier();
    }
  });
}

TEST(FaultInjection, DroppedMessageDiagnosedAsDeadlock) {
  Communicator comm(2);
  FaultPlan plan;
  plan.msg_faults.push_back(
      {/*src=*/0, /*dst=*/1, /*tag=*/0, /*occurrence=*/0,
       FaultPlan::MsgAction::kDrop});
  comm.install_fault_plan(plan);
  EXPECT_THROW(comm.run([](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> msg = {1.0};
      r.send(1, 0, msg);
    } else {
      r.recv(0, 0);  // the message was dropped; sender has finished
    }
  }),
               DeadlockError);
}

TEST(FaultInjection, DuplicatedMessageArrivesTwice) {
  Communicator comm(2);
  FaultPlan plan;
  plan.msg_faults.push_back(
      {0, 1, 0, 0, FaultPlan::MsgAction::kDuplicate});
  comm.install_fault_plan(plan);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> msg = {7.0};
      r.send(1, 0, msg);
    } else {
      EXPECT_DOUBLE_EQ(r.recv(0, 0)[0], 7.0);
      EXPECT_DOUBLE_EQ(r.recv(0, 0)[0], 7.0);  // the duplicate
    }
  });
}

TEST(FaultInjection, CorruptedMessageDiffersFromSent) {
  Communicator comm(2);
  FaultPlan plan;
  plan.seed = 42;
  plan.msg_faults.push_back({0, 1, 0, 0, FaultPlan::MsgAction::kCorrupt});
  comm.install_fault_plan(plan);
  comm.run([](Rank& r) {
    const std::vector<double> original = {1.0, 2.0, 3.0, 4.0};
    if (r.id() == 0) {
      r.send(1, 0, original);
    } else {
      const auto got = r.recv(0, 0);
      ASSERT_EQ(got.size(), original.size());
      int n_diff = 0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] != original[i]) ++n_diff;
      }
      EXPECT_EQ(n_diff, 1);  // exactly one element bit-flipped
    }
  });
}

TEST(FaultInjection, DelayedMessageReordersEdge) {
  Communicator comm(2);
  FaultPlan plan;
  plan.msg_faults.push_back({0, 1, 0, 0, FaultPlan::MsgAction::kDelay});
  comm.install_fault_plan(plan);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> a = {1.0}, b = {2.0};
      r.send(1, 0, a);
      r.send(1, 0, b);
    } else {
      // First send was held back until the second: order inverted.
      EXPECT_DOUBLE_EQ(r.recv(0, 0)[0], 2.0);
      EXPECT_DOUBLE_EQ(r.recv(0, 0)[0], 1.0);
    }
  });
}

TEST(FaultInjection, DelayedMessageFlushedInsteadOfDeadlock) {
  // The delayed message is the only one on its edge; when the receiver
  // blocks and nothing else can make progress, the deadlock checker must
  // flush it rather than declare a (false) deadlock.
  Communicator comm(2);
  FaultPlan plan;
  plan.msg_faults.push_back({0, 1, 0, 0, FaultPlan::MsgAction::kDelay});
  comm.install_fault_plan(plan);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> msg = {3.0};
      r.send(1, 0, msg);
    } else {
      EXPECT_DOUBLE_EQ(r.recv(0, 0)[0], 3.0);
    }
  });
}

TEST(Communicator, TryRecvIntoNonBlocking) {
  Communicator comm(2);
  comm.run([](Rank& r) {
    if (r.id() == 0) {
      std::vector<double> buf(2, 0.0);
      // Nothing posted yet: must return false immediately, not block.
      EXPECT_FALSE(r.try_recv_into(1, /*tag=*/5, buf));
      r.barrier();  // rank 1 posts before this barrier completes
      EXPECT_TRUE(r.try_recv_into(1, /*tag=*/5, buf));
      EXPECT_DOUBLE_EQ(buf[0], 4.0);
      EXPECT_DOUBLE_EQ(buf[1], -1.5);
      // Edge drained: polling again is false again.
      EXPECT_FALSE(r.try_recv_into(1, /*tag=*/5, buf));
    } else {
      const std::vector<double> msg = {4.0, -1.5};
      r.send(0, /*tag=*/5, msg);
      r.barrier();
    }
  });
}

TEST(Communicator, TryRecvIntoSizeMismatchThrows) {
  Communicator comm(2);
  std::atomic<bool> threw{false};
  try {
    comm.run([&](Rank& r) {
      if (r.id() == 0) {
        const std::vector<double> msg = {1.0, 2.0};
        r.send(1, 0, msg);
        r.barrier();
      } else {
        r.barrier();  // ensure the message is posted
        std::vector<double> buf(5, 0.0);
        try {
          (void)r.try_recv_into(0, 0, buf);
        } catch (const CommError&) {
          threw = true;
          throw;
        }
      }
    });
  } catch (const RankFailedError&) {
  }
  EXPECT_TRUE(threw);
}

// The solver's arrival-order drain protocol, distilled: every rank sends a
// deterministic partial to every peer, parks payloads in whatever order
// they arrive (polling with try_recv_into, falling back to a blocking
// recv_into on the lowest pending edge when a pass makes no progress), and
// only then accumulates in ascending rank order. The resulting sums must be
// bitwise identical to a strict ascending-rank blocking drain — regardless
// of arrival order, including a seeded delay fault that makes the lowest
// rank's payload arrive last.
class ArrivalOrderDrain : public ::testing::TestWithParam<int> {};

namespace drain_protocol {

constexpr int kWidth = 7;  // doubles per edge payload

double payload(int src, int dst, int i) {
  // Non-symmetric, magnitude-varied values so accumulation order shows up
  // in the low bits if the protocol got it wrong.
  return std::sin(1.0 + 13.0 * src + 31.0 * dst + 7.0 * i) *
         std::pow(10.0, (src + i) % 5);
}

// Reference: ascending-rank accumulation, computed without any exchange.
std::vector<double> expected_sums_for(int dst, int R) {
  std::vector<double> sums(kWidth, 0.0);
  for (int src = 0; src < R; ++src) {
    for (int i = 0; i < kWidth; ++i) {
      sums[static_cast<std::size_t>(i)] += payload(src, dst, i);
    }
  }
  return sums;
}

// One exchange round with the solver's wait-then-accumulate protocol.
// Returns the order in which the R-1 peer payloads were parked (peer rank
// ids), for asserting who arrived last. With sync_before_drain, ranks
// handshake on tag 1 after posting payloads, so every non-delayed payload
// is already queued when the poll loop starts — that makes the arrival
// position of a delayed edge deterministic instead of scheduler-dependent.
std::vector<int> drain_round(Rank& r, std::vector<double>& sums,
                             bool sync_before_drain = false) {
  const int R = r.size();
  std::vector<double> mine(kWidth);
  for (int i = 0; i < kWidth; ++i) {
    mine[static_cast<std::size_t>(i)] = payload(r.id(), r.id(), i);
  }
  for (int dst = 0; dst < R; ++dst) {
    if (dst == r.id()) continue;
    std::vector<double> msg(kWidth);
    for (int i = 0; i < kWidth; ++i) {
      msg[static_cast<std::size_t>(i)] = payload(r.id(), dst, i);
    }
    r.send(dst, /*tag=*/0, msg);
  }
  if (sync_before_drain) {
    const std::vector<double> ready = {1.0};
    for (int dst = 0; dst < R; ++dst) {
      if (dst != r.id()) r.send(dst, /*tag=*/1, ready);
    }
    std::vector<double> ack(1);
    for (int s = 0; s < R; ++s) {
      if (s != r.id()) r.recv_into(s, /*tag=*/1, ack);
    }
  }
  std::vector<std::vector<double>> parked(static_cast<std::size_t>(R),
                                          std::vector<double>(kWidth, 0.0));
  std::vector<std::uint8_t> arrived(static_cast<std::size_t>(R), 0);
  std::vector<int> order;
  constexpr int kIdlePassLimit = 64;
  int n_pending = R - 1;
  int idle_passes = 0;
  while (n_pending > 0) {
    int progressed = 0;
    int first_pending = -1;
    for (int s = 0; s < R; ++s) {
      if (s == r.id() || arrived[static_cast<std::size_t>(s)] != 0) continue;
      if (r.try_recv_into(s, /*tag=*/0,
                          parked[static_cast<std::size_t>(s)])) {
        arrived[static_cast<std::size_t>(s)] = 1;
        order.push_back(s);
        --n_pending;
        ++progressed;
      } else if (first_pending < 0) {
        first_pending = s;
      }
    }
    if (n_pending == 0 || progressed > 0) {
      idle_passes = 0;
    } else if (++idle_passes < kIdlePassLimit) {
      std::this_thread::yield();
    } else {
      r.recv_into(first_pending, /*tag=*/0,
                  parked[static_cast<std::size_t>(first_pending)]);
      arrived[static_cast<std::size_t>(first_pending)] = 1;
      order.push_back(first_pending);
      --n_pending;
      idle_passes = 0;
    }
  }
  // Deferred ascending-rank accumulation, own partial at own position.
  sums.assign(kWidth, 0.0);
  for (int s = 0; s < R; ++s) {
    const std::vector<double>& src =
        s == r.id() ? mine : parked[static_cast<std::size_t>(s)];
    for (int i = 0; i < kWidth; ++i) {
      sums[static_cast<std::size_t>(i)] += src[static_cast<std::size_t>(i)];
    }
  }
  return order;
}

}  // namespace drain_protocol

TEST_P(ArrivalOrderDrain, BitwiseMatchesRankOrderedSums) {
  const int R = GetParam();
  Communicator comm(R);
  comm.run([R](Rank& r) {
    std::vector<double> sums;
    (void)drain_protocol::drain_round(r, sums);
    const std::vector<double> want =
        drain_protocol::expected_sums_for(r.id(), R);
    for (int i = 0; i < drain_protocol::kWidth; ++i) {
      EXPECT_EQ(sums[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)])
          << "rank " << r.id() << " i=" << i;
    }
    r.barrier();
  });
}

TEST_P(ArrivalOrderDrain, DelayedLowRankArrivesLastSameSums) {
  const int R = GetParam();
  Communicator comm(R);
  // Hold back rank 0's payload to rank R-1: every other edge lands first,
  // and the delayed one is only flushed once the receiver has parked all
  // other peers and blocked on rank 0 (all live ranks blocked). The
  // deferred rank-ordered accumulation must erase the arrival order from
  // the result.
  FaultPlan plan;
  plan.seed = 99;
  plan.msg_faults.push_back(
      {/*src=*/0, /*dst=*/R - 1, /*tag=*/0, /*occurrence=*/0,
       FaultPlan::MsgAction::kDelay});
  comm.install_fault_plan(plan);
  comm.run([R](Rank& r) {
    std::vector<double> sums;
    const std::vector<int> order =
        drain_protocol::drain_round(r, sums, /*sync_before_drain=*/true);
    const std::vector<double> want =
        drain_protocol::expected_sums_for(r.id(), R);
    for (int i = 0; i < drain_protocol::kWidth; ++i) {
      EXPECT_EQ(sums[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)])
          << "rank " << r.id() << " i=" << i;
    }
    if (r.id() == R - 1) {
      // The delayed low-rank edge really was the last to arrive.
      ASSERT_EQ(order.size(), static_cast<std::size_t>(R - 1));
      EXPECT_EQ(order.back(), 0);
    }
    // Keep every rank alive until the delayed message has been flushed:
    // the flush fires only while all live ranks are blocked.
    r.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, ArrivalOrderDrain,
                         ::testing::Values(2, 4, 8));

mesh::HexMesh small_basin_mesh() {
  const vel::BasinModel basin = vel::BasinModel::demo(20000.0);
  mesh::MeshOptions opt;
  opt.domain_size = 20000.0;
  opt.f_max = 0.04;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 4;
  return mesh::generate_mesh(basin, opt);
}

TEST(Partition, CoversAllElementsContiguously) {
  const auto mesh = small_basin_mesh();
  const Partition p = partition_sfc(mesh, 4);
  std::size_t total = 0;
  int prev_rank = 0;
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    EXPECT_GE(p.elem_rank[e], prev_rank);  // contiguous chunks along SFC
    prev_rank = p.elem_rank[e];
    ++total;
  }
  EXPECT_EQ(total, mesh.n_elements());
  std::size_t sum = 0;
  for (const auto& re : p.rank_elems) sum += re.size();
  EXPECT_EQ(sum, mesh.n_elements());
  EXPECT_LT(p.imbalance(), 1.1);
}

TEST(Partition, NodeOwnershipValid) {
  const auto mesh = small_basin_mesh();
  const Partition p = partition_sfc(mesh, 4);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    EXPECT_GE(p.node_owner[n], 0);
    EXPECT_LT(p.node_owner[n], 4);
  }
}

TEST(Partition, SharedNodesShrinkRelativeToVolume) {
  // Surface-to-volume: shared fraction should be well below 1 for modest
  // rank counts on a 3D mesh.
  const auto mesh = small_basin_mesh();
  const Partition p = partition_sfc(mesh, 4);
  for (const auto& s : p.stats) {
    EXPECT_GT(s.n_nodes, 0u);
    EXPECT_LT(static_cast<double>(s.n_shared_nodes),
              0.6 * static_cast<double>(s.n_nodes));
  }
}

TEST(Partition, SingleRankHasNoSharing) {
  const auto mesh = small_basin_mesh();
  const Partition p = partition_sfc(mesh, 1);
  EXPECT_EQ(p.stats[0].n_shared_nodes, 0u);
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);
}

// A node touched by no element used to keep the out-of-range sentinel
// n_ranks in node_owner, which poisoned any downstream locals[owner]
// indexing; it must now be clamped to a valid rank and counted.
TEST(Partition, OrphanNodeClampedAndCounted) {
  auto mesh = small_basin_mesh();
  mesh.node_coords.push_back({123.0, 456.0, 789.0});
  mesh.node_hanging.push_back(0);

  const Partition p = partition_sfc(mesh, 4);
  EXPECT_EQ(p.n_orphan_nodes, 1u);
  ASSERT_EQ(p.node_owner.size(), mesh.n_nodes());
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    EXPECT_GE(p.node_owner[n], 0);
    EXPECT_LT(p.node_owner[n], 4);
  }
  EXPECT_EQ(p.node_owner[mesh.n_nodes() - 1], 0);  // the orphan

  // The solver runs normally on a mesh with orphan nodes (they carry no
  // dynamics; their u_final entries stay zero)...
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.2;
  const ParallelResult pr = run_parallel(mesh, p, oo, so, {}, {});
  const std::size_t base = 3 * (mesh.n_nodes() - 1);
  EXPECT_DOUBLE_EQ(pr.u_final[base], 0.0);
  EXPECT_DOUBLE_EQ(pr.u_final[base + 1], 0.0);
  EXPECT_DOUBLE_EQ(pr.u_final[base + 2], 0.0);

  // ...but a receiver snapping to the orphan is rejected with a diagnosis
  // instead of undefined behavior.
  const std::array<double, 3> rxs[] = {{123.0, 456.0, 789.0}};
  EXPECT_THROW(run_parallel(mesh, p, oo, so, {}, rxs),
               std::invalid_argument);
}

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalence, MatchesSerialSolver) {
  const int n_ranks = GetParam();
  const auto mesh = small_basin_mesh();
  ASSERT_GT(mesh.n_hanging(), 0u);  // exercise constraint ghosting

  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 4.0;
  so.cfl_fraction = 0.4;

  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const std::array<double, 3> rx = {14000.0, 9000.0, 0.0};

  // Serial reference.
  const solver::ElasticOperator op(mesh, oo);
  solver::ExplicitSolver serial(op, so);
  serial.add_source(&src);
  serial.add_receiver(rx);
  serial.run();

  // Parallel run.
  const Partition part = partition_sfc(mesh, n_ranks);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {rx};
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs);

  EXPECT_EQ(pr.n_steps, serial.n_steps());
  ASSERT_EQ(pr.u_final.size(), serial.displacement().size());
  const double unorm = quake::util::norm_l2(serial.displacement());
  EXPECT_LT(quake::util::diff_l2(pr.u_final, serial.displacement()),
            1e-9 * (1.0 + unorm));

  ASSERT_EQ(pr.receiver_histories.size(), 1u);
  ASSERT_EQ(pr.receiver_histories[0].size(), serial.receivers()[0].u.size());
  double max_err = 0.0;
  for (std::size_t k = 0; k < pr.receiver_histories[0].size(); ++k) {
    for (int c = 0; c < 3; ++c) {
      max_err = std::max(
          max_err,
          std::abs(pr.receiver_histories[0][k][static_cast<std::size_t>(c)] -
                   serial.receivers()[0].u[k][static_cast<std::size_t>(c)]));
    }
  }
  EXPECT_LT(max_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParallelEquivalence,
                         ::testing::Values(1, 2, 4, 7));

// End-to-end acceptance: a run whose rank 2 is killed mid-flight recovers
// from the last checkpoint and produces results bit-identical to the
// fault-free run.
TEST(ParallelCheckpoint, KillAndRestartBitIdenticalToFaultFreeRun) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 2.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const std::array<double, 3> rx = {14000.0, 9000.0, 0.0};
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {rx};
  const Partition part = partition_sfc(mesh, 4);

  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  ASSERT_GT(ref.n_steps, 8);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_ckpt_kill_test";
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/2, /*step=*/2 * ref.n_steps / 3});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = std::max(1, ref.n_steps / 5);
  ft.max_retries = 2;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  EXPECT_EQ(pr.n_steps, ref.n_steps);
  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.receiver_histories[0].data(),
                        ref.receiver_histories[0].data(),
                        ref.receiver_histories[0].size() * sizeof(double) * 3),
            0);
  // Per-rank flop counters cover only the final (successful) attempt; a
  // genuine checkpoint resume re-runs strictly fewer steps than the whole
  // simulation, so this fails if the retry silently restarted from scratch.
  EXPECT_LT(pr.rank_stats[0].flops, ref.rank_stats[0].flops);
  std::filesystem::remove_all(dir);
}

// Rank-ordered accumulation makes a run at a fixed rank count exactly
// repeatable: two identical runs must agree to the last bit even though
// the overlapped exchange interleaves compute and message traffic
// differently every time.
TEST(ParallelDeterminism, RepeatedRunsBitIdentical) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 2.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  const Partition part = partition_sfc(mesh, 4);

  const ParallelResult a = run_parallel(mesh, part, oo, so, sources, rxs);
  const ParallelResult b = run_parallel(mesh, part, oo, so, sources, rxs);
  ASSERT_EQ(a.u_final.size(), b.u_final.size());
  EXPECT_EQ(std::memcmp(a.u_final.data(), b.u_final.data(),
                        a.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(a.receiver_histories[0].size(), b.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(a.receiver_histories[0].data(),
                        b.receiver_histories[0].data(),
                        a.receiver_histories[0].size() * sizeof(double) * 3),
            0);
}

// The full solver's arrival-order drain must be as deterministic as the old
// strict ascending-rank drain: repeated runs at each rank count are bitwise
// identical even though thread scheduling shuffles arrival order per step.
TEST(ParallelDeterminism, ArrivalOrderDrainRepeatedRunsBitIdenticalPerRankCount) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 1.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};

  for (const int R : {2, 4, 8}) {
    SCOPED_TRACE("ranks=" + std::to_string(R));
    const Partition part = partition_sfc(mesh, R);
    const ParallelResult a = run_parallel(mesh, part, oo, so, sources, rxs);
    const ParallelResult b = run_parallel(mesh, part, oo, so, sources, rxs);
    ASSERT_EQ(a.u_final.size(), b.u_final.size());
    EXPECT_EQ(std::memcmp(a.u_final.data(), b.u_final.data(),
                          a.u_final.size() * sizeof(double)),
              0);
    ASSERT_EQ(a.receiver_histories[0].size(), b.receiver_histories[0].size());
    EXPECT_EQ(std::memcmp(a.receiver_histories[0].data(),
                          b.receiver_histories[0].data(),
                          a.receiver_histories[0].size() * sizeof(double) * 3),
              0);
  }
}

// Across rank counts the element contributions regroup (each rank pre-folds
// its own partials before the exchange), so bitwise identity to the 1-rank
// run is not achievable — but the drift is pure rounding, orders of
// magnitude below the serial-equivalence tolerance.
TEST(ParallelDeterminism, MultiRankMatchesSingleRankTightly) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 2.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};

  const Partition p1 = partition_sfc(mesh, 1);
  const ParallelResult r1 = run_parallel(mesh, p1, oo, so, sources, rxs);
  for (int R : {2, 4}) {
    const Partition pR = partition_sfc(mesh, R);
    const ParallelResult rR = run_parallel(mesh, pR, oo, so, sources, rxs);
    const double unorm = quake::util::norm_l2(r1.u_final);
    EXPECT_LT(quake::util::diff_l2(rR.u_final, r1.u_final),
              1e-12 * (1.0 + unorm))
        << "R=" << R;
  }
}

// A rank killed between posting its ghost messages and draining its
// neighbors' — the window the overlapped exchange opens — must recover
// from the last checkpoint bit-identically, exactly like a kill at a step
// boundary. FaultPlan step -(k+1) targets run_parallel's mid-exchange
// fault point at step k.
TEST(ParallelCheckpoint, MidExchangeKillRestoresBitIdentically) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 2.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  const solver::SourceModel* sources[] = {&src};
  const Partition part = partition_sfc(mesh, 4);

  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  ASSERT_GT(ref.n_steps, 8);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_ckpt_midexchange_test";
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, /*step=*/-(2 * ref.n_steps / 3 + 1)});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = std::max(1, ref.n_steps / 5);
  ft.max_retries = 2;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  EXPECT_EQ(pr.n_steps, ref.n_steps);
  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.receiver_histories[0].data(),
                        ref.receiver_histories[0].data(),
                        ref.receiver_histories[0].size() * sizeof(double) * 3),
            0);
  EXPECT_LT(pr.rank_stats[0].flops, ref.rank_stats[0].flops);
  std::filesystem::remove_all(dir);
}

// Without a checkpoint directory, a supervised retry restarts from scratch
// (receiver histories from the failed attempt must not leak into the
// result).
TEST(ParallelCheckpoint, RetryWithoutCheckpointsRestartsFromScratch) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 1.0;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const std::array<double, 3> rx = {14000.0, 9000.0, 0.0};
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {rx};
  const Partition part = partition_sfc(mesh, 3);

  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);

  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, /*step=*/ref.n_steps / 2});
  FaultToleranceOptions ft;
  ft.max_retries = 1;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
}

// Retries exhausted: the aggregated error surfaces.
TEST(ParallelCheckpoint, ExhaustedRetriesSurfaceAggregatedError) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.5;
  const Partition part = partition_sfc(mesh, 2);

  FaultPlan plan;
  plan.kills.push_back({0, 1});
  plan.kills.push_back({0, 1});  // second kill defeats the single retry
  FaultToleranceOptions ft;
  ft.max_retries = 1;
  ft.fault_plan = &plan;
  try {
    run_parallel(mesh, part, oo, so, {}, {}, ft);
    FAIL() << "must throw after retries are exhausted";
  } catch (const RankFailedError& e) {
    ASSERT_EQ(e.failed_ranks().size(), 1u);
    EXPECT_EQ(e.failed_ranks()[0], 0);
  }
}

// ---- in-place recovery ----------------------------------------------------

// Substrate-level epoch fencing: a message posted before a rank failure is
// a pre-failure straggler; after revive() the first receive on that edge
// must discard it and deliver the post-recovery message instead.
TEST(Recovery, ReviveDiscardsPreFailureStragglers) {
  Communicator comm(3);
  comm.set_recovery({/*enabled=*/true, /*max_revives=*/1});
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/2, /*step=*/0});
  comm.install_fault_plan(plan);
  std::atomic<int> revived_runs{0};
  comm.run([&](Rank& r) {
    if (r.id() == 0) {
      const std::vector<double> stale = {1.0};
      r.send(1, 5, stale);  // still queued when rank 2 dies: epoch-0 message
      const std::vector<double> go = {0.0};
      r.send(2, 6, go);  // hands rank 2 the go-ahead to die
      try {
        (void)r.recv(2, 7);
        FAIL() << "rank 2 must die before replying";
      } catch (const RankFailedError&) {
        ASSERT_TRUE(r.await_recovery());
      }
      const std::vector<double> fresh = {2.0};
      r.send(1, 5, fresh);  // epoch-1 message
      EXPECT_EQ(r.epoch(), 1u);
    } else if (r.id() == 1) {
      try {
        (void)r.recv(2, 7);
        FAIL() << "rank 2 must die before replying";
      } catch (const RankFailedError&) {
        ASSERT_TRUE(r.await_recovery());
      }
      // The stale {1.0} is still at the head of the (0 -> 1, tag 5) queue;
      // the epoch fence must drop it.
      const auto m = r.recv(0, 5);
      ASSERT_EQ(m.size(), 1u);
      EXPECT_DOUBLE_EQ(m[0], 2.0);
    } else {
      if (r.revived()) {
        revived_runs.fetch_add(1);
        return;  // second life: nothing left to do
      }
      (void)r.recv(0, 6);
      r.fault_point(0);  // planned death
    }
  });
  EXPECT_EQ(revived_runs.load(), 1);
  EXPECT_EQ(comm.epoch(), 1u);
}

// A Kill with times > 1 re-fires after the revival replays the same step:
// the same rank dies twice and is revived twice within one run().
TEST(Recovery, PlannedKillRefiresAcrossEpochs) {
  Communicator comm(2);
  comm.set_recovery({/*enabled=*/true, /*max_revives=*/3});
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, /*step=*/3, /*times=*/2});
  comm.install_fault_plan(plan);
  std::atomic<int> deaths{0};
  comm.run([&](Rank& r) {
    if (r.id() == 0) {
      for (;;) {
        try {
          const auto m = r.recv(1, 9);
          ASSERT_EQ(m.size(), 1u);
          EXPECT_DOUBLE_EQ(m[0], 42.0);
          break;
        } catch (const RankFailedError&) {
          ASSERT_TRUE(r.await_recovery());
        }
      }
    } else {
      if (r.revived()) deaths.fetch_add(1);
      for (int k = 0; k < 6; ++k) r.fault_point(k);
      const std::vector<double> done = {42.0};
      r.send(0, 9, done);
    }
  });
  EXPECT_EQ(deaths.load(), 2);
  EXPECT_EQ(comm.epoch(), 2u);
}

// Telemetry-observing recovery tests run with obs enabled.
class ParallelRecovery : public ::testing::Test {
 protected:
  void SetUp() override { quake::obs::set_enabled(true); }
  void TearDown() override { quake::obs::set_enabled(false); }
};

// Tentpole acceptance: a seeded single-rank kill at 8 ranks is repaired in
// place — survivors keep their partition, ghost plans, and exchange buffers
// (their body runs exactly once), only the dead rank is respawned, and the
// recovered run is bit-identical to the fault-free one.
TEST_F(ParallelRecovery, InPlaceRecoveryBitIdenticalWithoutSurvivorReSetup) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  solver::SolverOptions so;
  so.t_end = 2.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  const Partition part = partition_sfc(mesh, 8);

  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  ASSERT_GT(ref.n_steps, 8);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_inplace_recovery_test";
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/5, /*step=*/2 * ref.n_steps / 3});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = std::max(1, ref.n_steps / 4);
  ft.max_retries = 1;  // fallback stays armed but must not be needed
  ft.max_revives = 2;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  EXPECT_EQ(pr.n_steps, ref.n_steps);
  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.receiver_histories[0].data(),
                        ref.receiver_histories[0].data(),
                        ref.receiver_histories[0].size() * sizeof(double) * 3),
            0);

  // Exactly one recovery round: the revived rank re-entered its body once,
  // every survivor ran its body exactly once (a full restart would bump
  // every rank's ft/attempts to 2).
  ASSERT_EQ(pr.obs_reports.size(), 8u);
  for (const auto& rep : pr.obs_reports) {
    const auto it = rep.metrics.counters.find("ft/attempts");
    ASSERT_NE(it, rep.metrics.counters.end());
    if (rep.rank == 5) {
      EXPECT_EQ(it->second, 2) << "revived rank re-enters its body once";
      EXPECT_EQ(rep.metrics.counters.at("par/ranks_revived"), 1);
    } else {
      EXPECT_EQ(it->second, 1)
          << "survivor rank " << rep.rank << " must not re-run setup";
      EXPECT_EQ(rep.metrics.counters.at("par/recoveries"), 1);
    }
  }
  ASSERT_TRUE(pr.obs_summary.counters.count("par/ranks_revived"));
  EXPECT_EQ(pr.obs_summary.counters.at("par/ranks_revived").sum, 1.0);
  ASSERT_TRUE(pr.obs_summary.counters.count("par/steps_rolled_back"));
  ASSERT_TRUE(pr.obs_summary.gauges.count("par/epoch"));
  EXPECT_EQ(pr.obs_summary.gauges.at("par/epoch").max, 1.0);
  for (const char* scope :
       {"recover", "recover/agree", "recover/restore", "recover/resume"}) {
    ASSERT_TRUE(pr.obs_summary.scopes.count(scope)) << scope;
    EXPECT_GT(pr.obs_summary.scopes.at(scope).calls_total, 0u) << scope;
  }
  std::filesystem::remove_all(dir);
}

// Seeded fault-sweep soak: across rank counts, recovery survives a kill at
// a step boundary, a kill inside the overlapped exchange window, a kill
// during the recovery protocol itself, and the same rank killed twice —
// each trial bit-identical to the fault-free run at that rank count.
TEST_F(ParallelRecovery, SeededFaultSweepAcrossRankCounts) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  solver::SolverOptions so;
  so.t_end = 1.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  constexpr int kDuringRecovery = std::numeric_limits<int>::min() + 1;

  for (const int R : {2, 4, 8}) {
    const Partition part = partition_sfc(mesh, R);
    const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
    ASSERT_GT(ref.n_steps, 8);
    const int n = ref.n_steps;
    const int victim = R - 1;

    struct Trial {
      const char* name;
      std::vector<FaultPlan::Kill> kills;
    };
    const Trial trials[] = {
        {"kill_at_step", {{victim, 2 * n / 3}}},
        {"kill_mid_exchange", {{victim, -(2 * n / 3 + 1)}}},
        {"kill_during_recovery", {{victim, 2 * n / 3}, {0, kDuringRecovery}}},
        {"kill_twice", {{victim, 2 * n / 3, /*times=*/2}}},
    };
    for (const Trial& trial : trials) {
      SCOPED_TRACE(std::string(trial.name) + " R=" + std::to_string(R));
      const std::filesystem::path dir =
          std::filesystem::temp_directory_path() /
          ("quake_fault_sweep_" + std::to_string(R) + "_" + trial.name);
      std::filesystem::remove_all(dir);
      FaultPlan plan;
      plan.kills = trial.kills;
      FaultToleranceOptions ft;
      ft.checkpoint_dir = dir.string();
      ft.checkpoint_every = std::max(1, n / 4);
      ft.max_retries = 1;
      ft.max_revives = 4;
      ft.fault_plan = &plan;
      const ParallelResult pr =
          run_parallel(mesh, part, oo, so, sources, rxs, ft);

      EXPECT_EQ(pr.n_steps, ref.n_steps);
      ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
      EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                            ref.u_final.size() * sizeof(double)),
                0);
      ASSERT_EQ(pr.receiver_histories[0].size(),
                ref.receiver_histories[0].size());
      EXPECT_EQ(
          std::memcmp(pr.receiver_histories[0].data(),
                      ref.receiver_histories[0].data(),
                      ref.receiver_histories[0].size() * sizeof(double) * 3),
          0);
      ASSERT_TRUE(pr.obs_summary.counters.count("par/recoveries"));
      EXPECT_GE(pr.obs_summary.counters.at("par/recoveries").sum, 1.0);
      std::filesystem::remove_all(dir);
    }
  }
}

// With no usable checkpoint (the rank dies before the first snapshot), the
// in-place path must refuse — an in-place from-scratch "resume" would
// silently discard survivors' progress — and hand the failure to the
// full-restart supervisor, which still produces a bit-identical result.
TEST_F(ParallelRecovery, FallsBackToFullRestartWithoutUsableCheckpoint) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 1.0;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  const Partition part = partition_sfc(mesh, 3);

  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  ASSERT_GT(ref.n_steps, 4);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_recovery_fallback_test";
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, /*step=*/2});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = ref.n_steps;  // cadence never fires: no snapshots
  ft.max_retries = 1;
  ft.max_revives = 2;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.receiver_histories[0].data(),
                        ref.receiver_histories[0].data(),
                        ref.receiver_histories[0].size() * sizeof(double) * 3),
            0);
  // Every rank's body ran twice (the full restart), plus once more on the
  // revived rank for the in-place attempt that was refused.
  ASSERT_EQ(pr.obs_reports.size(), 3u);
  for (const auto& rep : pr.obs_reports) {
    const auto it = rep.metrics.counters.find("ft/attempts");
    ASSERT_NE(it, rep.metrics.counters.end());
    EXPECT_EQ(it->second, rep.rank == 1 ? 3 : 2) << "rank " << rep.rank;
  }
  std::filesystem::remove_all(dir);
}

double counter_sum(const ParallelResult& pr, const std::string& key) {
  const auto it = pr.obs_summary.counters.find(key);
  return it == pr.obs_summary.counters.end() ? 0.0 : it->second.sum;
}

// Three-tier recovery sweep (tentpole acceptance): at 4 and 8 ranks, every
// tier produces a result bit-identical to the undisturbed run —
//  * replay_donation: tier 1 with the buddy-donated snapshot; survivors
//    roll back ZERO steps and the victim replays on logged messages;
//  * replay_disk: tier 1 with donation disabled — the victim restores its
//    newest disk generation and still replays with zero survivor rollback;
//  * ring_overflow_rollback: a one-step message log cannot cover the replay
//    span, so recovery falls back to tier-2 rollback (the donated snapshot
//    still spares the victim the disk read);
//  * kill_donor_during_recovery: the victim's donor dies during the first
//    recovery round, leaving two state-less ranks — one restores by
//    donation from ITS buddy, the other from disk, both then replay.
TEST_F(ParallelRecovery, ThreeTierKillSweepBitIdenticalAcrossRankCounts) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  solver::SolverOptions so;
  so.t_end = 1.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  constexpr int kDuringRecovery = std::numeric_limits<int>::min() + 1;

  for (const int R : {4, 8}) {
    const Partition part = partition_sfc(mesh, R);
    const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
    ASSERT_GT(ref.n_steps, 11);
    const int n = ref.n_steps;
    const int every = std::max(2, n / 4);
    const int victim = R - 1;
    const int donor = (victim + 1) % R;  // the buddy holding victim's state
    // Kill strictly between checkpoints so the replay span is non-empty
    // (a kill exactly at a checkpoint step would replay zero steps).
    int kill_at = 2 * n / 3;
    if (kill_at % every == 0) ++kill_at;
    ASSERT_LT(kill_at, n);
    ASSERT_GT(kill_at, every);

    struct Scenario {
      const char* name;
      bool donation;
      int log_steps;  // FaultToleranceOptions::message_log_steps
      std::vector<FaultPlan::Kill> kills;
      bool zero_rollback;        // par/steps_rolled_back must sum to 0
      double donation_restores;  // exact expected sum
      bool fallback;             // tier-2: par/replay_fallbacks on all ranks
    };
    const Scenario scenarios[] = {
        {"replay_donation", true, -1, {{victim, kill_at}}, true, 1.0, false},
        {"replay_disk", false, -1, {{victim, kill_at}}, true, 0.0, false},
        {"ring_overflow_rollback",
         true,
         1,
         {{victim, kill_at}},
         false,
         1.0,
         true},
        {"kill_donor_during_recovery",
         true,
         -1,
         {{victim, kill_at}, {donor, kDuringRecovery}},
         true,
         1.0,
         false},
    };
    for (const Scenario& sc : scenarios) {
      SCOPED_TRACE(std::string(sc.name) + " R=" + std::to_string(R));
      const std::filesystem::path dir =
          std::filesystem::temp_directory_path() /
          ("quake_three_tier_" + std::to_string(R) + "_" + sc.name);
      std::filesystem::remove_all(dir);
      FaultPlan plan;
      plan.kills = sc.kills;
      FaultToleranceOptions ft;
      ft.checkpoint_dir = dir.string();
      ft.checkpoint_every = every;
      ft.max_retries = 1;
      ft.max_revives = 4;
      ft.fault_plan = &plan;
      ft.state_donation = sc.donation;
      ft.message_log_steps = sc.log_steps;
      const ParallelResult pr =
          run_parallel(mesh, part, oo, so, sources, rxs, ft);

      EXPECT_EQ(pr.n_steps, ref.n_steps);
      ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
      EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                            ref.u_final.size() * sizeof(double)),
                0);
      ASSERT_EQ(pr.receiver_histories[0].size(),
                ref.receiver_histories[0].size());
      EXPECT_EQ(
          std::memcmp(pr.receiver_histories[0].data(),
                      ref.receiver_histories[0].data(),
                      ref.receiver_histories[0].size() * sizeof(double) * 3),
          0);

      EXPECT_GE(counter_sum(pr, "par/recoveries"), 1.0);
      EXPECT_EQ(counter_sum(pr, "par/donation_restores"),
                sc.donation_restores);
      if (sc.zero_rollback) {
        EXPECT_EQ(counter_sum(pr, "par/steps_rolled_back"), 0.0);
        EXPECT_GE(counter_sum(pr, "par/steps_replayed"), 1.0);
        ASSERT_TRUE(pr.obs_summary.scopes.count("recover/replay"));
      }
      if (sc.fallback) {
        // Every rank counts the tier-2 downgrade once, and the rollback
        // really rewinds the survivors.
        EXPECT_EQ(counter_sum(pr, "par/replay_fallbacks"),
                  static_cast<double>(R));
        EXPECT_GE(counter_sum(pr, "par/steps_rolled_back"), 1.0);
      } else {
        EXPECT_EQ(counter_sum(pr, "par/replay_fallbacks"), 0.0);
      }
      if (sc.donation && !sc.fallback &&
          std::string(sc.name) == "replay_donation") {
        EXPECT_EQ(counter_sum(pr, "par/donations_served"), 1.0);
      }
      std::filesystem::remove_all(dir);
    }
  }
}

// Satellite: a CRC-corrupt newest checkpoint generation must not poison the
// restore agreement — the next-older intact generation serves instead, the
// fallback is counted, and the resumed run stays bit-identical.
TEST_F(ParallelRecovery, CorruptNewestGenerationFallsBackToOlder) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 1.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  constexpr int R = 4;
  const Partition part = partition_sfc(mesh, R);

  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  ASSERT_GT(ref.n_steps, 10);
  const int n = ref.n_steps;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_gen_fallback_test";
  std::filesystem::remove_all(dir);

  // Phase 1: die with no recovery budget after at least two checkpoint
  // generations are on disk; the snapshots survive the failed run.
  FaultPlan plan;
  plan.kills.push_back({/*rank=*/1, /*step=*/n - 1});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = std::max(1, n / 5);
  ft.max_retries = 0;
  ft.fault_plan = &plan;
  EXPECT_THROW(run_parallel(mesh, part, oo, so, sources, rxs, ft),
               RankFailedError);

  // Seeded corruption: flip one byte in the middle of every rank's newest
  // generation so its CRC verification fails.
  for (int r = 0; r < R; ++r) {
    const std::filesystem::path p =
        dir / ("rank" + std::to_string(r) + ".ckpt");
    ASSERT_TRUE(std::filesystem::exists(p)) << p;
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    const auto size = std::filesystem::file_size(p);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }

  // Phase 2: resume without faults. The agreement must skip the corrupt
  // newest generation on every rank, restore the older intact one, and
  // still finish bit-identically.
  FaultToleranceOptions ft2;
  ft2.checkpoint_dir = dir.string();
  ft2.checkpoint_every = std::max(1, n / 5);
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft2);

  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.receiver_histories[0].data(),
                        ref.receiver_histories[0].data(),
                        ref.receiver_histories[0].size() * sizeof(double) * 3),
            0);
  EXPECT_EQ(counter_sum(pr, "checkpoint/generation_fallbacks"),
            static_cast<double>(R));
  EXPECT_EQ(counter_sum(pr, "ckpt/restores"), static_cast<double>(R));
  std::filesystem::remove_all(dir);
}

// Victim sets for multi-victim recovery tests: pairwise non-adjacent in the
// ghost graph (so every victim-victim span is survivor-served) and
// non-consecutive in the buddy ring (so every victim's donor survives).
// Backtracking search — greedy first-fit misses sets on dense adjacency.
bool extend_disjoint_victims(const std::vector<std::vector<int>>& adj, int R,
                             int want, std::vector<int>& picked) {
  if (static_cast<int>(picked.size()) == want) return true;
  const int from = picked.empty() ? 0 : picked.back() + 1;
  for (int c = from; c < R; ++c) {
    bool ok = true;
    for (const int v : picked) {
      if ((v + 1) % R == c || (c + 1) % R == v) ok = false;
      if (std::find(adj[static_cast<std::size_t>(v)].begin(),
                    adj[static_cast<std::size_t>(v)].end(),
                    c) != adj[static_cast<std::size_t>(v)].end()) {
        ok = false;
      }
    }
    if (!ok) continue;
    picked.push_back(c);
    if (extend_disjoint_victims(adj, R, want, picked)) return true;
    picked.pop_back();
  }
  return false;
}

std::vector<int> pick_disjoint_victims(
    const std::vector<std::vector<int>>& adj, int R, int want) {
  std::vector<int> picked;
  extend_disjoint_victims(adj, R, want, picked);
  return picked;
}

void expect_bit_identical(const ParallelResult& pr, const ParallelResult& ref) {
  ASSERT_EQ(pr.n_steps, ref.n_steps);
  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.receiver_histories[0].data(),
                        ref.receiver_histories[0].data(),
                        ref.receiver_histories[0].size() * sizeof(double) * 3),
            0);
}

// Tentpole acceptance: several ranks killed at the SAME step, with disjoint
// ghost edges and live buddies, all restore from their donated snapshots
// and replay concurrently — one tier-1 pass, zero survivor rollback, bit-
// identical result.
TEST_F(ParallelRecovery, SimultaneousDisjointVictimsReplayConcurrently) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  solver::SolverOptions so;
  so.t_end = 1.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};

  // Two victims fit disjointly at 8 ranks; this mesh's 8-rank partition is
  // too coupled for three (ranks 4-7 form a ghost clique), so the triple
  // runs at 12 ranks where {0, 4, 10}-style sets exist.
  const std::pair<int, int> cases[] = {{2, 8}, {3, 12}};
  for (const auto& [n_victims, R] : cases) {
    SCOPED_TRACE("n_victims=" + std::to_string(n_victims) +
                 " R=" + std::to_string(R));
    const Partition part = partition_sfc(mesh, R);
    const ParallelSetup setup(mesh, part, oo, so);
    const auto adj = setup.neighbor_ranks();

    const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
    const int n = ref.n_steps;
    const int every = std::max(2, n / 4);
    // The kills must be SIMULTANEOUS to land in one recovery epoch: once a
    // victim dies, any comm call observes it, so a second victim only
    // reaches its own fault point first if nothing sits between them. The
    // step right after a checkpoint barrier is exactly that point — every
    // rank leaves the barrier and hits fault_point(k) before any other
    // comm, so pin the kill to a checkpoint-multiple step.
    const int kill_at = (2 * n / 3) / every * every;
    ASSERT_GE(kill_at, every);
    ASSERT_LT(kill_at, n);

    const std::vector<int> victims = pick_disjoint_victims(adj, R, n_victims);
    ASSERT_EQ(static_cast<int>(victims.size()), n_victims)
        << "partition too coupled to pick a disjoint victim set";
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("quake_multi_victim_" + std::to_string(n_victims));
    std::filesystem::remove_all(dir);
    FaultPlan plan;
    for (const int v : victims) plan.kills.push_back({v, kill_at});
    FaultToleranceOptions ft;
    ft.checkpoint_dir = dir.string();
    ft.checkpoint_every = every;
    ft.max_retries = 1;
    ft.max_revives = 4;
    ft.fault_plan = &plan;
    const ParallelResult pr =
        run_parallel(mesh, part, oo, so, sources, rxs, ft);

    expect_bit_identical(pr, ref);
    // One recovery epoch: every parked survivor counts once (victims enter
    // the epoch via revival, not the survivor catch path).
    EXPECT_EQ(counter_sum(pr, "par/recoveries"),
              static_cast<double>(R - n_victims));
    EXPECT_EQ(counter_sum(pr, "par/ranks_revived"),
              static_cast<double>(n_victims));
    EXPECT_EQ(counter_sum(pr, "par/steps_rolled_back"), 0.0);
    EXPECT_EQ(counter_sum(pr, "par/replay_fallbacks"), 0.0);
    EXPECT_EQ(counter_sum(pr, "par/donation_restores"),
              static_cast<double>(n_victims));
    EXPECT_EQ(counter_sum(pr, "par/donations_served"),
              static_cast<double>(n_victims));
    EXPECT_EQ(counter_sum(pr, "par/multi_victim_replays"), 1.0);
    // Aligned kill: every rank resumes at the donated cut, so the replay
    // span is empty — tier-1 with nothing to re-serve, and no rollback.
    EXPECT_EQ(counter_sum(pr, "par/steps_replayed"), 0.0);
    std::filesystem::remove_all(dir);
  }
}

// A donation silently lost in flight (dropped message at the second cut)
// leaves the buddy holding the PREVIOUS generation; the doubled, delta-
// compressed log ring still spans that older resume point, so recovery
// stays tier-1 — the victim just replays a longer span.
TEST_F(ParallelRecovery, StaleDonationGenerationStillRepairsTier1) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  solver::SolverOptions so;
  so.t_end = 1.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  constexpr int R = 4;
  const Partition part = partition_sfc(mesh, R);
  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  const int n = ref.n_steps;
  const int every = std::max(2, n / 4);
  int kill_at = 2 * n / 3;
  if (kill_at % every == 0) ++kill_at;
  ASSERT_GT(kill_at, 2 * every) << "need two checkpoint cuts before the kill";
  ASSERT_LT(kill_at, n);
  const int victim = R - 1;
  const int buddy = (victim + 1) % R;
  const int last_cut_index = kill_at / every;  // 1-based cut ordinal

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_stale_donation";
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kills.push_back({victim, kill_at});
  // Drop the victim's donation at the LAST cut before the kill: the buddy
  // keeps advertising the generation before it.
  plan.msg_faults.push_back({victim, buddy, /*tag=*/10,
                             /*occurrence=*/last_cut_index - 1,
                             FaultPlan::MsgAction::kDrop});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = every;
  ft.max_retries = 1;
  ft.max_revives = 2;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  expect_bit_identical(pr, ref);
  EXPECT_EQ(counter_sum(pr, "par/steps_rolled_back"), 0.0);
  EXPECT_EQ(counter_sum(pr, "par/replay_fallbacks"), 0.0);
  EXPECT_EQ(counter_sum(pr, "par/donation_restores"), 1.0);
  // The replay span crosses a full checkpoint interval — longer than any
  // single-interval ring could serve.
  EXPECT_GE(counter_sum(pr, "par/steps_replayed"),
            static_cast<double>(every + 1));
  std::filesystem::remove_all(dir);
}

// Overlapping victims at DIFFERENT resume steps (one holds a stale donated
// generation) share a ghost edge whose span no fresh thread's empty log
// can serve: the three-round agreement votes tier-1 down and the whole
// job degrades to donation-aware rollback — still bit-identical.
TEST_F(ParallelRecovery, OverlappingVictimsDegradeToTier2) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  solver::SolverOptions so;
  so.t_end = 1.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  constexpr int R = 8;
  const Partition part = partition_sfc(mesh, R);
  const ParallelSetup setup(mesh, part, oo, so);
  const auto adj = setup.neighbor_ranks();
  // An adjacent victim pair that is still non-consecutive in the buddy
  // ring, so both donors survive and the overlap is the only obstacle.
  int va = -1, vb = -1;
  for (int v = 0; v < R && va < 0; ++v) {
    for (const int w : adj[static_cast<std::size_t>(v)]) {
      if ((v + 1) % R != w && (w + 1) % R != v) {
        va = v;
        vb = w;
        break;
      }
    }
  }
  ASSERT_GE(va, 0) << "no non-consecutive adjacent pair in this partition";

  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  const int n = ref.n_steps;
  const int every = std::max(2, n / 4);
  int kill_at = 2 * n / 3;
  if (kill_at % every == 0) ++kill_at;
  ASSERT_GT(kill_at, 2 * every);
  ASSERT_LT(kill_at, n);
  const int last_cut_index = kill_at / every;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_overlap_victims";
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kills.push_back({va, kill_at});
  plan.kills.push_back({vb, kill_at});
  // Skew va's resume point one generation behind vb's.
  plan.msg_faults.push_back({va, (va + 1) % R, /*tag=*/10,
                             /*occurrence=*/last_cut_index - 1,
                             FaultPlan::MsgAction::kDrop});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = every;
  ft.max_retries = 1;
  ft.max_revives = 2;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  expect_bit_identical(pr, ref);
  EXPECT_EQ(counter_sum(pr, "par/replay_fallbacks"), static_cast<double>(R));
  EXPECT_GE(counter_sum(pr, "par/steps_rolled_back"), 1.0);
  EXPECT_EQ(counter_sum(pr, "par/multi_victim_replays"), 0.0);
  std::filesystem::remove_all(dir);
}

// Regression for the donation-restore wait: a donor whose tier-1 stream
// never arrives (dropped in flight) must NOT hang the victim — the polled
// deadline expires, the restore is voted down, and recovery completes on
// the tier-2 rollback path.
TEST_F(ParallelRecovery, DroppedDonorStreamTimesOutIntoTier2) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  solver::SolverOptions so;
  so.t_end = 1.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  constexpr int R = 4;
  const Partition part = partition_sfc(mesh, R);
  const ParallelResult ref = run_parallel(mesh, part, oo, so, sources, rxs);
  const int n = ref.n_steps;
  const int every = std::max(2, n / 4);
  int kill_at = 2 * n / 3;
  if (kill_at % every == 0) ++kill_at;
  ASSERT_LT(kill_at, n);
  const int victim = R - 1;
  const int buddy = (victim + 1) % R;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_dropped_stream";
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kills.push_back({victim, kill_at});
  // The ONLY kDonationTag traffic on the buddy->victim edge is the
  // recovery stream itself; occurrence 0 kills exactly that.
  plan.msg_faults.push_back({buddy, victim, /*tag=*/10, /*occurrence=*/0,
                             FaultPlan::MsgAction::kDrop});
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = every;
  ft.max_retries = 1;
  ft.max_revives = 2;
  ft.fault_plan = &plan;
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);

  expect_bit_identical(pr, ref);
  // The stream was served (and lost); the victim's timed-out wait is
  // visible under the absolute recover/donate/wait scope.
  EXPECT_EQ(counter_sum(pr, "par/donations_served"), 1.0);
  EXPECT_EQ(counter_sum(pr, "par/donation_restores"), 0.0);
  EXPECT_EQ(counter_sum(pr, "par/replay_fallbacks"), static_cast<double>(R));
  EXPECT_GE(counter_sum(pr, "par/steps_rolled_back"), 1.0);
  const auto it = pr.obs_summary.scopes.find("recover/donate/wait");
  ASSERT_NE(it, pr.obs_summary.scopes.end());
  EXPECT_GE(it->second.seconds.max, 1.0);  // the 2 s deadline actually ran
  std::filesystem::remove_all(dir);
}

// Delta-compressed rings carry their claimed span at a fraction of the raw
// footprint while the wavefront has not yet lit every ghost node: the
// stored/raw gauges prove >= 2x headroom in the quiet regime the doubled
// capacity is funded by.
TEST_F(ParallelRecovery, CompressedLogRingsReportCompression) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.2;  // short run: most ghost nodes still exactly zero
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  const Partition part = partition_sfc(mesh, 8);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "quake_log_compression";
  std::filesystem::remove_all(dir);
  FaultToleranceOptions ft;
  ft.checkpoint_dir = dir.string();
  ft.checkpoint_every = 4;
  ft.max_revives = 2;  // arms in-place recovery: donation + log rings on
  const ParallelResult pr = run_parallel(mesh, part, oo, so, sources, rxs, ft);
  double stored = 0.0, raw = 0.0;
  for (const auto& rep : pr.obs_reports) {
    const auto s = rep.metrics.gauges.find("par/log_bytes");
    const auto r = rep.metrics.gauges.find("par/log_raw_bytes");
    ASSERT_NE(s, rep.metrics.gauges.end());
    ASSERT_NE(r, rep.metrics.gauges.end());
    stored += s->second;
    raw += r->second;
  }
  EXPECT_GT(raw, 0.0);
  EXPECT_LE(stored * 2.0, raw)
      << "compression ratio " << raw / std::max(stored, 1.0);
  std::filesystem::remove_all(dir);
}

TEST(ParallelStats, CommunicationVolumeReported) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.5;
  const Partition part = partition_sfc(mesh, 4);
  const ParallelResult pr = run_parallel(mesh, part, oo, so, {}, {});
  std::size_t total_sent = 0;
  for (const auto& s : pr.rank_stats) {
    EXPECT_GT(s.n_elems, 0u);
    EXPECT_GT(s.flops, 0u);
    total_sent += s.doubles_sent_per_step;
  }
  EXPECT_GT(total_sent, 0u);
  const double eff = modeled_efficiency(pr, MachineModel{});
  EXPECT_GT(eff, 0.3);
  EXPECT_LE(eff, 1.0 + 1e-9);
}

TEST(ParallelStats, BoundaryInteriorSplitReported) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.5;
  const Partition part = partition_sfc(mesh, 4);
  const ParallelResult pr = run_parallel(mesh, part, oo, so, {}, {});
  for (const auto& s : pr.rank_stats) {
    EXPECT_EQ(s.n_boundary_elems + s.n_interior_elems, s.n_elems);
    // Multi-rank partitions of a 3D mesh have both kinds: a surface of
    // boundary elements and a bulk of interior ones to hide the messages
    // behind.
    EXPECT_GT(s.n_boundary_elems, 0u);
    EXPECT_GT(s.n_interior_elems, 0u);
    EXPECT_GE(s.overlap_fraction, 0.0);
    EXPECT_LE(s.overlap_fraction, 1.0);
  }

  // A single rank has nothing to exchange, hence nothing to overlap.
  const Partition p1 = partition_sfc(mesh, 1);
  const ParallelResult r1 = run_parallel(mesh, p1, oo, so, {}, {});
  EXPECT_EQ(r1.rank_stats[0].n_boundary_elems, 0u);
  EXPECT_EQ(r1.rank_stats[0].n_interior_elems, r1.rank_stats[0].n_elems);
  EXPECT_DOUBLE_EQ(r1.rank_stats[0].overlap_fraction, 0.0);
}

// ---- scenario-batched solves (run_batch, docs/BATCHING.md) ----------------

// The batching guarantee: S scenarios advanced in lockstep through one
// element sweep and one exchange round per step produce results BITWISE
// identical to running each scenario alone on the same setup. Parameterized
// over the batch width; Stacey + Rayleigh are on so the batched dku
// exchange path is exercised too.
class ParallelBatch : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBatch, BatchMatchesSequentialBitwise) {
  const int S = GetParam();
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 1.0;
  so.cfl_fraction = 0.4;
  const Partition part = partition_sfc(mesh, 2);
  ParallelSetup setup(mesh, part, oo, so);

  std::vector<solver::PointSource> srcs;
  srcs.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    srcs.emplace_back(mesh,
                      std::array<double, 3>{6000.0 + 2000.0 * s,
                                            14000.0 - 1500.0 * s, 3000.0},
                      std::array<double, 3>{1.0, 0.5 * s, 0.2}, 1e12,
                      0.03 + 0.002 * s, 40.0 - 2.0 * s);
  }
  const std::vector<std::array<double, 3>> rxs = {{14000.0, 9000.0, 0.0},
                                                  {6000.0, 11000.0, 0.0}};

  std::vector<ParallelResult> sequential;
  std::vector<BatchScenario> scenarios;
  for (int s = 0; s < S; ++s) {
    const solver::SourceModel* one[] = {&srcs[static_cast<std::size_t>(s)]};
    sequential.push_back(setup.run(so.t_end, one, rxs));
    scenarios.push_back({{&srcs[static_cast<std::size_t>(s)]}, rxs});
  }

  const std::vector<ParallelResult> batched =
      setup.run_batch(so.t_end, scenarios);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    const ParallelResult& a = sequential[static_cast<std::size_t>(s)];
    const ParallelResult& b = batched[static_cast<std::size_t>(s)];
    EXPECT_FALSE(b.cancelled);
    EXPECT_EQ(b.n_steps, a.n_steps);
    ASSERT_EQ(b.u_final.size(), a.u_final.size());
    EXPECT_EQ(std::memcmp(b.u_final.data(), a.u_final.data(),
                          a.u_final.size() * sizeof(double)),
              0);
    ASSERT_EQ(b.receiver_histories.size(), a.receiver_histories.size());
    for (std::size_t r = 0; r < a.receiver_histories.size(); ++r) {
      ASSERT_EQ(b.receiver_histories[r].size(),
                a.receiver_histories[r].size());
      EXPECT_EQ(std::memcmp(b.receiver_histories[r].data(),
                            a.receiver_histories[r].data(),
                            a.receiver_histories[r].size() * 3 *
                                sizeof(double)),
                0);
    }
  }

  // The batch reports the widened communication volume: every per-neighbor
  // message carries all S right-hand-sides.
  const ParallelResult solo = setup.run(
      so.t_end,
      std::span<const solver::SourceModel* const>{},
      std::span<const std::array<double, 3>>{});
  for (std::size_t r = 0; r < batched[0].rank_stats.size(); ++r) {
    EXPECT_EQ(batched[0].rank_stats[r].doubles_sent_per_step,
              solo.rank_stats[r].doubles_sent_per_step *
                  static_cast<std::size_t>(S));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ParallelBatch, ::testing::Values(2, 4));

TEST(ParallelBatchControl, WidthValidated) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.5;
  const Partition part = partition_sfc(mesh, 2);
  ParallelSetup setup(mesh, part, oo, so);
  EXPECT_THROW(setup.run_batch(so.t_end, {}), std::invalid_argument);
  const std::vector<BatchScenario> too_many(
      static_cast<std::size_t>(fem::kMaxBatchLanes) + 1);
  EXPECT_THROW(setup.run_batch(so.t_end, too_many), std::invalid_argument);
}

// RunControl applies batch-wide: a cancelled batch stops every scenario at
// the SAME step, and the setup stays reusable — the next solo run on it is
// bit-identical to an undisturbed one.
TEST(ParallelBatchControl, CancelStopsAllScenariosTogether) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 2.0;
  so.cfl_fraction = 0.4;
  const Partition part = partition_sfc(mesh, 2);
  ParallelSetup setup(mesh, part, oo, so);

  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const std::vector<std::array<double, 3>> rxs = {{14000.0, 9000.0, 0.0}};
  const std::vector<BatchScenario> scenarios(2,
                                             BatchScenario{{&src}, rxs});

  std::atomic<bool> cancel{true};  // pre-set: stops at the first agreement
  RunControl ctl;
  ctl.cancel = &cancel;
  const std::vector<ParallelResult> stopped =
      setup.run_batch(so.t_end, scenarios, ctl);
  ASSERT_EQ(stopped.size(), 2u);
  EXPECT_TRUE(stopped[0].cancelled);
  EXPECT_TRUE(stopped[1].cancelled);
  EXPECT_EQ(stopped[0].steps_completed, stopped[1].steps_completed);
  EXPECT_LT(stopped[0].steps_completed, stopped[0].n_steps);

  const solver::SourceModel* one[] = {&src};
  const ParallelResult after = setup.run(so.t_end, one, rxs);
  const ParallelResult cold = run_parallel(mesh, part, oo, so, one, rxs);
  ASSERT_EQ(after.u_final.size(), cold.u_final.size());
  EXPECT_EQ(std::memcmp(after.u_final.data(), cold.u_final.data(),
                        cold.u_final.size() * sizeof(double)),
            0);
}

}  // namespace
