// Tests for the etree transform step: element/node extraction, hanging-node
// constraints, boundary faces, and the out-of-core pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "quake/mesh/meshgen.hpp"

namespace {

using namespace quake::mesh;
using quake::octree::BalanceScope;
using quake::octree::LinearOctree;
using quake::octree::Octant;
using quake::vel::HomogeneousModel;
using quake::vel::Material;

HomogeneousModel rock() {
  return HomogeneousModel(Material::from_velocities(5000.0, 2900.0, 2600.0));
}

MeshOptions uniform_opts(int level, double size = 1000.0) {
  MeshOptions o;
  o.domain_size = size;
  o.f_max = 1e-9;  // no wavelength-driven refinement
  o.min_level = level;
  o.max_level = level;
  return o;
}

TEST(Transform, UniformMeshCounts) {
  const auto model = rock();
  for (int level = 1; level <= 3; ++level) {
    const HexMesh mesh = generate_mesh(model, uniform_opts(level));
    const std::size_t n = static_cast<std::size_t>(1) << level;
    EXPECT_EQ(mesh.n_elements(), n * n * n);
    EXPECT_EQ(mesh.n_nodes(), (n + 1) * (n + 1) * (n + 1));
    EXPECT_EQ(mesh.n_hanging(), 0u);
  }
}

TEST(Transform, UniformMeshBoundaryFaces) {
  const auto model = rock();
  const HexMesh mesh = generate_mesh(model, uniform_opts(2));
  // 4x4x4 elements: each of the 6 cube sides exposes 16 faces.
  EXPECT_EQ(mesh.boundary_faces.size(), 6u * 16u);
}

TEST(Transform, NodeCoordinatesSpanDomain) {
  const auto model = rock();
  const HexMesh mesh = generate_mesh(model, uniform_opts(2, 800.0));
  double lo = 1e300, hi = -1e300;
  for (const auto& c : mesh.node_coords) {
    for (double v : c) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 800.0);
}

TEST(Transform, ElementNodesAreDistinctAndOriented) {
  const auto model = rock();
  const HexMesh mesh = generate_mesh(model, uniform_opts(2));
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const auto& conn = mesh.elem_nodes[e];
    std::set<NodeId> uniq(conn.begin(), conn.end());
    EXPECT_EQ(uniq.size(), 8u);
    // Tensor ordering: node 1 is +x of node 0, node 2 is +y, node 4 is +z.
    const auto& c0 = mesh.node_coords[static_cast<std::size_t>(conn[0])];
    const auto& c1 = mesh.node_coords[static_cast<std::size_t>(conn[1])];
    const auto& c2 = mesh.node_coords[static_cast<std::size_t>(conn[2])];
    const auto& c4 = mesh.node_coords[static_cast<std::size_t>(conn[4])];
    const double h = mesh.elem_size[e];
    EXPECT_NEAR(c1[0] - c0[0], h, 1e-9);
    EXPECT_NEAR(c2[1] - c0[1], h, 1e-9);
    EXPECT_NEAR(c4[2] - c0[2], h, 1e-9);
  }
}

// A two-level mesh: half the domain refined once. Produces hanging nodes.
HexMesh refined_half_mesh() {
  const auto model = rock();
  MeshOptions opt;
  opt.domain_size = 1000.0;
  opt.f_max = 1e-9;
  opt.min_level = 1;
  opt.max_level = 2;
  auto policy = [](const Octant& o) {
    if (o.level < 1) return true;
    return o.level < 2 && o.x == 0;  // refine the x-lower half
  };
  LinearOctree tree = quake::octree::build_octree(policy, opt.max_level);
  tree = quake::octree::balance(tree, BalanceScope::kAll);
  return transform(tree, model, opt);
}

TEST(Hanging, DetectedOnRefinementInterface) {
  const HexMesh mesh = refined_half_mesh();
  EXPECT_GT(mesh.n_hanging(), 0u);
  EXPECT_EQ(mesh.n_independent() + mesh.n_hanging(), mesh.n_nodes());
}

TEST(Hanging, WeightsArePartitionOfUnity) {
  const HexMesh mesh = refined_half_mesh();
  for (const Constraint& c : mesh.constraints) {
    double sum = 0.0;
    for (int m = 0; m < c.n_masters; ++m) {
      sum += c.weights[static_cast<std::size_t>(m)];
      // Masters must be independent nodes.
      EXPECT_EQ(mesh.node_hanging[static_cast<std::size_t>(
                    c.masters[static_cast<std::size_t>(m)])],
                0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Hanging, GeometricInterpolationIsExact) {
  // The constrained node's coordinates equal the weighted master average —
  // i.e. the constraint interpolates linear fields exactly.
  const HexMesh mesh = refined_half_mesh();
  for (const Constraint& c : mesh.constraints) {
    const auto& xc = mesh.node_coords[static_cast<std::size_t>(c.node)];
    for (int axis = 0; axis < 3; ++axis) {
      double interp = 0.0;
      for (int m = 0; m < c.n_masters; ++m) {
        interp += c.weights[static_cast<std::size_t>(m)] *
                  mesh.node_coords[static_cast<std::size_t>(
                      c.masters[static_cast<std::size_t>(m)])]
                                  [static_cast<std::size_t>(axis)];
      }
      EXPECT_NEAR(interp, xc[static_cast<std::size_t>(axis)], 1e-9);
    }
  }
}

TEST(Meshgen, WavelengthAdaptivityRefinesBasin) {
  // A soft basin atop rock must produce finer elements near the surface
  // inside the basin than at depth.
  const quake::vel::BasinModel basin = quake::vel::BasinModel::demo(20000.0);
  MeshOptions opt;
  opt.domain_size = 20000.0;
  opt.f_max = 0.05;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 5;
  const HexMesh mesh = generate_mesh(basin, opt);
  const auto stats = compute_stats(mesh, basin, opt);
  EXPECT_GT(stats.max_level, stats.min_level);
  // Multiresolution saving vs a uniform mesh at the finest wavelength.
  EXPECT_GT(stats.uniform_equivalent_points,
            static_cast<double>(stats.n_nodes));
}

TEST(Meshgen, MeshIsBalancedByConstruction) {
  const quake::vel::BasinModel basin = quake::vel::BasinModel::demo(20000.0);
  MeshOptions opt;
  opt.domain_size = 20000.0;
  opt.f_max = 0.05;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 5;
  const LinearOctree tree = build_balanced_octree(basin, opt);
  EXPECT_TRUE(is_balanced(tree, BalanceScope::kAll));
  EXPECT_TRUE(tree.validate(true));
}

TEST(Meshgen, OutOfCorePipelineMatchesInCore) {
  const quake::vel::BasinModel basin = quake::vel::BasinModel::demo(20000.0);
  MeshOptions opt;
  opt.domain_size = 20000.0;
  opt.f_max = 0.04;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 4;
  const HexMesh a = generate_mesh(basin, opt);
  const HexMesh b = generate_mesh_out_of_core(
      basin, opt, testing::TempDir() + "/ooc_mesh.etree");
  ASSERT_EQ(a.n_elements(), b.n_elements());
  ASSERT_EQ(a.n_nodes(), b.n_nodes());
  EXPECT_EQ(a.n_hanging(), b.n_hanging());
  for (std::size_t e = 0; e < a.n_elements(); ++e) {
    EXPECT_EQ(a.elem_nodes[e], b.elem_nodes[e]);
    EXPECT_DOUBLE_EQ(a.elem_size[e], b.elem_size[e]);
  }
}

TEST(Stats, HangingFractionReported) {
  const HexMesh mesh = refined_half_mesh();
  const auto model = rock();
  MeshOptions opt = uniform_opts(2);
  const MeshStats s = compute_stats(mesh, model, opt);
  EXPECT_EQ(s.n_hanging, mesh.n_hanging());
  EXPECT_EQ(s.n_elements, mesh.n_elements());
}

}  // namespace
