// Tests for the velocity models and the wavelength->element-size rule.

#include <gtest/gtest.h>

#include <cmath>

#include "quake/vel/model.hpp"

namespace {

using namespace quake::vel;

TEST(Material, FromVelocitiesRoundTrip) {
  const Material m = Material::from_velocities(2000.0, 1000.0, 2200.0);
  EXPECT_NEAR(m.vp(), 2000.0, 1e-9);
  EXPECT_NEAR(m.vs(), 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.rho, 2200.0);
  EXPECT_GT(m.mu, 0.0);
  EXPECT_GT(m.lambda, 0.0);
}

TEST(Layered, PicksCorrectLayer) {
  const Material soft = Material::from_velocities(600.0, 300.0, 1800.0);
  const Material hard = Material::from_velocities(5000.0, 2900.0, 2600.0);
  LayeredModel model({{100.0, soft}, {0.0, hard}});
  EXPECT_NEAR(model.at(0, 0, 50.0).vs(), 300.0, 1e-9);
  EXPECT_NEAR(model.at(0, 0, 150.0).vs(), 2900.0, 1e-9);
  EXPECT_NEAR(model.min_vs(), 300.0, 1e-9);
}

TEST(Layered, EmptyThrows) {
  EXPECT_THROW(LayeredModel({}), std::invalid_argument);
}

TEST(Basin, SurfaceInsideBasinIsSoft) {
  const BasinModel m = BasinModel::demo(40000.0);
  // Center of the deepest depression: near-surface sediments are soft
  // (within a couple of hundred m/s of the 100 m/s floor, far below rock).
  const auto& dep = m.params().depressions[1];
  EXPECT_LT(m.at(dep.cx, dep.cy, 1.0).vs(), 300.0);
}

TEST(Basin, RockOutsideBasin) {
  const BasinModel m = BasinModel::demo(40000.0);
  // Far corner: no depression reaches there meaningfully.
  const double vs = m.at(100.0, 39000.0, 100.0).vs();
  EXPECT_GT(vs, 2000.0);
}

TEST(Basin, VsIncreasesWithDepthInsideBasin) {
  const BasinModel m = BasinModel::demo(40000.0);
  const auto& dep = m.params().depressions[1];
  double prev = 0.0;
  for (double z = 10.0; z < dep.depth; z += dep.depth / 16.0) {
    const double vs = m.at(dep.cx, dep.cy, z).vs();
    EXPECT_GE(vs, prev);
    prev = vs;
  }
}

TEST(Basin, StrongVelocityContrastExists) {
  // The property that makes octree meshes pay off: >= 20x vs contrast.
  const BasinModel m = BasinModel::demo(40000.0);
  const double soft = m.min_vs();
  const double hard = m.at(100.0, 100.0, 35000.0).vs();
  EXPECT_GE(hard / soft, 20.0);
}

TEST(Basin, BasementDepthMaxAtCenters) {
  const BasinModel m = BasinModel::demo(40000.0);
  for (const auto& dep : m.params().depressions) {
    EXPECT_NEAR(m.basement_depth(dep.cx, dep.cy), dep.depth, 0.35 * dep.depth);
    // Far from this depression only other (small) overlaps contribute.
    EXPECT_LT(m.basement_depth(dep.cx + 5 * dep.radius, dep.cy),
              0.05 * dep.depth);
  }
}

TEST(ElementSize, WavelengthRule) {
  // h = vs / (n_lambda * f_max): 10 points per wavelength at 1 Hz and
  // 100 m/s gives 10 m elements.
  EXPECT_DOUBLE_EQ(element_size_for(100.0, 1.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(element_size_for(3000.0, 2.0, 10.0), 150.0);
  EXPECT_THROW(element_size_for(0.0, 1.0, 10.0), std::invalid_argument);
}

TEST(Material, PhysicalPoissonRatio) {
  // Every sampled basin material must have lambda >= 0 (vp/vs >= sqrt(2)).
  const BasinModel m = BasinModel::demo(40000.0);
  for (double x = 1000.0; x < 40000.0; x += 7777.0) {
    for (double z = 1.0; z < 30000.0; z += 2000.0) {
      const Material mat = m.at(x, 0.5 * x, z);
      EXPECT_GE(mat.lambda, 0.0) << "at x=" << x << " z=" << z;
      EXPECT_GT(mat.mu, 0.0);
      EXPECT_GT(mat.rho, 1000.0);
    }
  }
}

}  // namespace
