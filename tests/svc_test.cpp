// Tests for the simulation service layer: setup reuse determinism, the
// bounded admission queue (load shedding, priority, cancellation,
// deadlines), and per-request failure isolation.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/par/communicator.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/par/partition.hpp"
#include "quake/svc/simulation_service.hpp"

namespace {

using namespace quake;

mesh::HexMesh small_basin_mesh() {
  const vel::BasinModel basin = vel::BasinModel::demo(20000.0);
  mesh::MeshOptions opt;
  opt.domain_size = 20000.0;
  opt.f_max = 0.04;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 4;
  return mesh::generate_mesh(basin, opt);
}

using History = std::vector<std::vector<std::array<double, 3>>>;

bool bitwise_equal(const History& a, const History& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) return false;
    for (std::size_t k = 0; k < a[r].size(); ++k) {
      if (std::memcmp(a[r][k].data(), b[r][k].data(), 3 * sizeof(double)) !=
          0) {
        return false;
      }
    }
  }
  return true;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct Fixture {
  mesh::HexMesh mesh = small_basin_mesh();
  par::Partition part;
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  solver::PointSource src_a;
  solver::PointSource src_b;
  std::vector<std::array<double, 3>> rxs{{14000.0, 9000.0, 0.0},
                                         {6000.0, 11000.0, 0.0}};

  explicit Fixture(int n_ranks = 2)
      : part(par::partition_sfc(mesh, n_ranks)),
        src_a(mesh, {10000.0, 10000.0, 4000.0}, {1.0, 0.5, 0.2}, 1e12, 0.03,
              40.0),
        src_b(mesh, {6000.0, 14000.0, 2000.0}, {0.0, 1.0, 0.0}, 5e11, 0.025,
              30.0) {
    so.t_end = 2.0;
    so.cfl_fraction = 0.4;
  }

  par::ParallelResult cold(const solver::PointSource& src) const {
    const solver::SourceModel* sources[] = {&src};
    solver::SolverOptions run = so;
    return par::run_parallel(mesh, part, oo, run, sources, rxs);
  }

  svc::ScenarioRequest request(const solver::PointSource& src) const {
    svc::ScenarioRequest req;
    svc::PointSourceSpec spec;
    const bool is_a = &src == &src_a;
    spec.position = is_a ? std::array<double, 3>{10000.0, 10000.0, 4000.0}
                         : std::array<double, 3>{6000.0, 14000.0, 2000.0};
    spec.direction = is_a ? std::array<double, 3>{1.0, 0.5, 0.2}
                          : std::array<double, 3>{0.0, 1.0, 0.0};
    spec.amplitude = is_a ? 1e12 : 5e11;
    spec.fp = is_a ? 0.03 : 0.025;
    spec.tc = is_a ? 40.0 : 30.0;
    req.point_sources = {spec};
    req.receivers = rxs;
    req.t_end = so.t_end;
    return req;
  }
};

// Two sequential scenarios through ONE ParallelSetup must match two cold
// run_parallel runs bitwise: nothing from scenario A (state vectors,
// receiver histories, exchange buffers, fault bookkeeping) may leak into
// scenario B.
TEST(ParallelSetup, SequentialReuseMatchesColdRunsBitwise) {
  const Fixture f;
  const par::ParallelResult cold_a = f.cold(f.src_a);
  const par::ParallelResult cold_b = f.cold(f.src_b);

  par::ParallelSetup setup(f.mesh, f.part, f.oo, f.so);
  const solver::SourceModel* sa[] = {&f.src_a};
  const solver::SourceModel* sb[] = {&f.src_b};
  const par::ParallelResult warm_a = setup.run(f.so.t_end, sa, f.rxs);
  const par::ParallelResult warm_b = setup.run(f.so.t_end, sb, f.rxs);

  EXPECT_TRUE(bitwise_equal(warm_a.u_final, cold_a.u_final));
  EXPECT_TRUE(bitwise_equal(warm_b.u_final, cold_b.u_final));
  EXPECT_TRUE(bitwise_equal(warm_a.receiver_histories,
                            cold_a.receiver_histories));
  EXPECT_TRUE(bitwise_equal(warm_b.receiver_histories,
                            cold_b.receiver_histories));
  EXPECT_FALSE(bitwise_equal(warm_a.receiver_histories,
                             warm_b.receiver_histories));  // distinct physics
}

// A run cancelled mid-solve must not poison the setup: the next run on the
// same setup is bit-identical to a cold run.
TEST(ParallelSetup, ReuseAfterCancelledRunMatchesCold) {
  const Fixture f;
  const par::ParallelResult cold_b = f.cold(f.src_b);

  par::ParallelSetup setup(f.mesh, f.part, f.oo, f.so);
  std::atomic<bool> cancel{true};  // pre-set: stops at the first check
  par::RunControl ctl;
  ctl.cancel = &cancel;
  const solver::SourceModel* sa[] = {&f.src_a};
  const par::ParallelResult partial =
      setup.run(f.so.t_end, sa, f.rxs, {}, ctl);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_LT(partial.steps_completed, partial.n_steps);

  const solver::SourceModel* sb[] = {&f.src_b};
  const par::ParallelResult warm_b = setup.run(f.so.t_end, sb, f.rxs);
  EXPECT_FALSE(warm_b.cancelled);
  EXPECT_TRUE(bitwise_equal(warm_b.u_final, cold_b.u_final));
  EXPECT_TRUE(bitwise_equal(warm_b.receiver_histories,
                            cold_b.receiver_histories));
}

TEST(SimulationService, WarmRequestsMatchColdRunsBitwise) {
  const Fixture f;
  const par::ParallelResult cold_a = f.cold(f.src_a);
  const par::ParallelResult cold_b = f.cold(f.src_b);

  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);
  auto ta = service.submit(f.request(f.src_a));
  auto tb = service.submit(f.request(f.src_b));
  const svc::ScenarioResult ra = ta.result.get();
  const svc::ScenarioResult rb = tb.result.get();

  ASSERT_EQ(ra.status, svc::RequestStatus::kCompleted);
  ASSERT_EQ(rb.status, svc::RequestStatus::kCompleted);
  EXPECT_TRUE(bitwise_equal(ra.solve.receiver_histories,
                            cold_a.receiver_histories));
  EXPECT_TRUE(bitwise_equal(rb.solve.receiver_histories,
                            cold_b.receiver_histories));
  EXPECT_TRUE(bitwise_equal(ra.solve.u_final, cold_a.u_final));
  EXPECT_TRUE(bitwise_equal(rb.solve.u_final, cold_b.u_final));

  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/requests_admitted"), 2);
  EXPECT_EQ(m.counters.at("svc/requests_completed"), 2);
  EXPECT_EQ(m.counters.at("svc/requests_failed"), 0);
  ASSERT_EQ(m.series.at("svc/latency_seconds").size(), 2u);
  EXPECT_GT(ra.total_seconds, 0.0);
  EXPECT_GE(ra.total_seconds, ra.solve_seconds);
}

TEST(SimulationService, QueueBoundShedsLoadWithTypedError) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.queue_bound = 2;
  opt.start_paused = true;  // nothing drains: the bound is deterministic
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  auto t1 = service.submit(f.request(f.src_a));
  auto t2 = service.submit(f.request(f.src_b));
  EXPECT_EQ(service.queue_depth(), 2u);
  EXPECT_THROW(service.submit(f.request(f.src_a)), svc::QueueFullError);
  EXPECT_THROW(service.submit(f.request(f.src_b)), svc::QueueFullError);

  obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/requests_admitted"), 2);
  EXPECT_EQ(m.counters.at("svc/requests_rejected"), 2);
  EXPECT_DOUBLE_EQ(m.gauges.at("svc/queue_depth"), 2.0);

  service.resume();
  EXPECT_EQ(t1.result.get().status, svc::RequestStatus::kCompleted);
  EXPECT_EQ(t2.result.get().status, svc::RequestStatus::kCompleted);
  service.wait_idle();
  m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/requests_completed"), 2);
  EXPECT_DOUBLE_EQ(m.gauges.at("svc/queue_depth"), 0.0);
}

TEST(SimulationService, PriorityDrainsBeforeFifo) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  svc::ScenarioRequest low = f.request(f.src_a);
  low.priority = 0;
  svc::ScenarioRequest hi1 = f.request(f.src_b);
  hi1.priority = 5;
  svc::ScenarioRequest hi2 = f.request(f.src_a);
  hi2.priority = 5;
  auto t_low = service.submit(low);    // admitted first...
  auto t_hi1 = service.submit(hi1);
  auto t_hi2 = service.submit(hi2);
  service.resume();

  const svc::ScenarioResult r_low = t_low.result.get();
  const svc::ScenarioResult r_hi1 = t_hi1.result.get();
  const svc::ScenarioResult r_hi2 = t_hi2.result.get();
  EXPECT_EQ(r_hi1.exec_index, 1u);  // ...but priority drains first,
  EXPECT_EQ(r_hi2.exec_index, 2u);  // FIFO within a priority level,
  EXPECT_EQ(r_low.exec_index, 3u);  // the low-priority request last
}

TEST(SimulationService, CancelWhileQueued) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  auto t1 = service.submit(f.request(f.src_a));
  auto t2 = service.submit(f.request(f.src_b));
  EXPECT_TRUE(service.cancel(t2.id));
  EXPECT_FALSE(service.cancel(t2.id));      // already finished
  EXPECT_FALSE(service.cancel(99999));      // unknown id

  const svc::ScenarioResult r2 = t2.result.get();  // resolved immediately
  EXPECT_EQ(r2.status, svc::RequestStatus::kCancelled);
  EXPECT_EQ(r2.exec_index, 0u);  // never reached the worker
  EXPECT_TRUE(r2.solve.receiver_histories.empty());

  service.resume();
  EXPECT_EQ(t1.result.get().status, svc::RequestStatus::kCompleted);
  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/requests_cancelled"), 1);
  EXPECT_EQ(m.counters.at("svc/requests_completed"), 1);
}

TEST(SimulationService, CancelMidSolveStopsAtStepBoundary) {
  const Fixture f;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);

  // A long request (many steps) so cancellation lands mid-solve.
  svc::ScenarioRequest req = f.request(f.src_a);
  req.t_end = 400.0 * service.dt();
  auto t = service.submit(req);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(service.cancel(t.id));

  const svc::ScenarioResult r = t.result.get();
  EXPECT_EQ(r.status, svc::RequestStatus::kCancelled);
  if (r.exec_index != 0) {  // raced into the worker: partial solve
    EXPECT_TRUE(r.solve.cancelled);
    EXPECT_LT(r.solve.steps_completed, r.solve.n_steps);
  }
}

TEST(SimulationService, DeadlineExceededMidSolve) {
  const Fixture f;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);

  svc::ScenarioRequest req = f.request(f.src_a);
  req.t_end = 4000.0 * service.dt();  // far more work than the budget allows
  req.deadline_seconds = 0.05;
  auto t = service.submit(req);
  const svc::ScenarioResult r = t.result.get();

  EXPECT_EQ(r.status, svc::RequestStatus::kDeadlineExceeded);
  ASSERT_NE(r.exec_index, 0u);
  EXPECT_TRUE(r.solve.cancelled);
  EXPECT_GT(r.solve.n_steps, 0);
  EXPECT_LT(r.solve.steps_completed, r.solve.n_steps);

  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/requests_deadline_exceeded"), 1);
}

TEST(SimulationService, DeadlineBlownWhileQueued) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  svc::ScenarioRequest req = f.request(f.src_a);
  req.deadline_seconds = 0.01;
  auto t = service.submit(req);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.resume();

  const svc::ScenarioResult r = t.result.get();
  EXPECT_EQ(r.status, svc::RequestStatus::kDeadlineExceeded);
  EXPECT_TRUE(r.solve.receiver_histories.empty());  // never ran
  EXPECT_EQ(r.solve.steps_completed, 0);
}

// The kill-one-request soak: a request whose injected FaultPlan kills a
// rank (no recovery budget) fails ALONE — requests before and after it on
// the same service complete bit-identically to a clean service, and the
// service's shared setup keeps serving.
TEST(SimulationService, KilledRequestFailsAloneBitwise) {
  const Fixture f;
  par::FaultPlan plan;
  plan.kills.push_back({1, 5});  // kill rank 1 at step 5, once

  // Clean reference service.
  svc::SimulationService clean(f.mesh, f.part, f.oo, f.so);
  auto ca = clean.submit(f.request(f.src_a));
  auto cb = clean.submit(f.request(f.src_b));
  const svc::ScenarioResult clean_a = ca.result.get();
  const svc::ScenarioResult clean_b = cb.result.get();
  ASSERT_EQ(clean_a.status, svc::RequestStatus::kCompleted);
  ASSERT_EQ(clean_b.status, svc::RequestStatus::kCompleted);

  // Service under fault: victim sandwiched between two healthy requests.
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);
  auto t1 = service.submit(f.request(f.src_a));
  svc::ScenarioRequest doomed = f.request(f.src_a);
  doomed.ft.fault_plan = &plan;
  auto t2 = service.submit(doomed);
  auto t3 = service.submit(f.request(f.src_b));

  const svc::ScenarioResult r1 = t1.result.get();
  const svc::ScenarioResult r2 = t2.result.get();
  const svc::ScenarioResult r3 = t3.result.get();

  EXPECT_EQ(r2.status, svc::RequestStatus::kFailed);
  EXPECT_FALSE(r2.error.empty());
  ASSERT_EQ(r1.status, svc::RequestStatus::kCompleted);
  ASSERT_EQ(r3.status, svc::RequestStatus::kCompleted);
  EXPECT_TRUE(bitwise_equal(r1.solve.receiver_histories,
                            clean_a.solve.receiver_histories));
  EXPECT_TRUE(bitwise_equal(r3.solve.receiver_histories,
                            clean_b.solve.receiver_histories));
  EXPECT_TRUE(bitwise_equal(r1.solve.u_final, clean_a.solve.u_final));
  EXPECT_TRUE(bitwise_equal(r3.solve.u_final, clean_b.solve.u_final));

  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/requests_failed"), 1);
  EXPECT_EQ(m.counters.at("svc/requests_completed"), 2);
}

// A killed request with a recovery budget heals in place and completes —
// per-request fault tolerance composes with the shared setup.
TEST(SimulationService, KilledRequestWithRevivalBudgetCompletes) {
  const Fixture f;
  const par::ParallelResult cold_a = f.cold(f.src_a);
  par::FaultPlan plan;
  plan.kills.push_back({1, 5});

  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);
  svc::ScenarioRequest req = f.request(f.src_a);
  req.ft.fault_plan = &plan;
  req.ft.max_revives = 1;
  req.ft.checkpoint_every = 2;
  req.ft.checkpoint_dir = ::testing::TempDir() + "svc_revive_ckpt";
  auto t = service.submit(req);
  const svc::ScenarioResult r = t.result.get();
  // Completing bit-identically is the proof of recovery: the same kill with
  // no revival budget fails the request (KilledRequestFailsAloneBitwise).
  ASSERT_EQ(r.status, svc::RequestStatus::kCompleted);
  EXPECT_TRUE(bitwise_equal(r.solve.receiver_histories,
                            cold_a.receiver_histories));
}

// Service-level degradation: when the in-run recovery budget is spent, the
// worker retries the whole request with backoff, counts each retry, and
// flags the service degraded; a later clean request clears the flag.
TEST(SimulationService, RetriesRecoverableFaultsAndClearsDegraded) {
  const Fixture f;
  par::FaultPlan plan;
  plan.kills.push_back({1, 5});  // refires on every attempt: plan reinstalls

  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);
  svc::ScenarioRequest doomed = f.request(f.src_a);
  doomed.ft.fault_plan = &plan;
  doomed.max_attempts = 3;
  auto t = service.submit(doomed);
  const svc::ScenarioResult r = t.result.get();

  EXPECT_EQ(r.status, svc::RequestStatus::kFailed);
  EXPECT_EQ(r.attempts, 3);
  {
    const obs::Registry m = service.metrics();
    EXPECT_EQ(m.counters.at("svc/retries"), 2);
    EXPECT_EQ(m.gauges.at("svc/degraded"), 1.0);
    const svc::ServiceHealth h = service.health();
    EXPECT_TRUE(h.degraded);
    EXPECT_EQ(h.retries_total, 2);
    EXPECT_EQ(h.failed_total, 1);
    EXPECT_EQ(h.last_id, t.id);
    EXPECT_EQ(h.last_attempts, 3);
  }

  // A clean first-attempt completion ends the degraded state.
  auto ok = service.submit(f.request(f.src_b));
  ASSERT_EQ(ok.result.get().status, svc::RequestStatus::kCompleted);
  {
    const obs::Registry m = service.metrics();
    EXPECT_EQ(m.gauges.at("svc/degraded"), 0.0);
    const svc::ServiceHealth h = service.health();
    EXPECT_FALSE(h.degraded);
    EXPECT_EQ(h.last_attempts, 1);
    EXPECT_EQ(h.retries_total, 2);  // history, not state
  }
}

// Deadlocks are deterministic program errors: no service-level retry.
TEST(SimulationService, DeadlocksAreNotRetried) {
  const Fixture f;
  par::FaultPlan plan;
  plan.msg_faults.push_back({0, 1, 0, 0, par::FaultPlan::MsgAction::kDrop});

  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);
  svc::ScenarioRequest doomed = f.request(f.src_a);
  doomed.ft.fault_plan = &plan;
  doomed.max_attempts = 3;
  const svc::ScenarioResult r = service.submit(doomed).result.get();

  EXPECT_EQ(r.status, svc::RequestStatus::kFailed);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(service.metrics().counters.at("svc/retries"), 0);
}

// health() exposes the last request's recovery footprint: a kill absorbed
// by the revival budget completes on the first service-level attempt (not
// degraded) and reports the budget consumed — and with tier-1 replay the
// survivors rolled back zero steps.
TEST(SimulationService, HealthReportsRevivalFootprint) {
  obs::set_enabled(true);
  const Fixture f;
  par::FaultPlan plan;
  plan.kills.push_back({1, 5});

  svc::SimulationService service(f.mesh, f.part, f.oo, f.so);
  svc::ScenarioRequest req = f.request(f.src_a);
  req.ft.fault_plan = &plan;
  req.ft.max_revives = 2;
  req.ft.checkpoint_every = 2;
  req.ft.checkpoint_dir = ::testing::TempDir() + "svc_health_ckpt";
  auto t = service.submit(req);
  const svc::ScenarioResult r = t.result.get();
  service.wait_idle();  // the worker clears in-flight after the promise
  obs::set_enabled(false);

  ASSERT_EQ(r.status, svc::RequestStatus::kCompleted);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.solve.revives_used, 1);
  const svc::ServiceHealth h = service.health();
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.last_id, t.id);
  EXPECT_EQ(h.last_attempts, 1);
  EXPECT_EQ(h.last_revives_used, 1);
  EXPECT_EQ(h.last_revives_budget, 2);
  EXPECT_EQ(h.last_revives_remaining, 1);
  EXPECT_GE(h.last_recoveries, 1.0);
  EXPECT_EQ(h.last_steps_rolled_back, 0.0);
  EXPECT_GE(h.last_steps_replayed, 1.0);
  EXPECT_FALSE(h.in_flight);
  EXPECT_EQ(h.queue_depth, 0u);
}

TEST(SimulationService, ShutdownResolvesQueuedAsCancelled) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.start_paused = true;
  std::future<svc::ScenarioResult> orphan;
  {
    svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);
    orphan = service.submit(f.request(f.src_a)).result;
  }
  const svc::ScenarioResult r = orphan.get();
  EXPECT_EQ(r.status, svc::RequestStatus::kCancelled);
}

// ---- multi-lane serving (sharded queues, one worker per lane) -------------

// Two lanes draining concurrently must produce exactly the single-lane
// (cold) results: each lane's ParallelSetup replica is a full, independent
// copy of the shared discretization.
TEST(MultiLane, ResultsMatchSingleLaneBitwise) {
  const Fixture f;
  const par::ParallelResult cold_a = f.cold(f.src_a);
  const par::ParallelResult cold_b = f.cold(f.src_b);

  svc::ServiceOptions opt;
  opt.lanes = 2;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);
  EXPECT_EQ(service.lanes(), 2);

  std::vector<svc::SimulationService::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(
        service.submit(f.request(i % 2 == 0 ? f.src_a : f.src_b)));
  }
  for (int i = 0; i < 4; ++i) {
    const svc::ScenarioResult r = tickets[static_cast<std::size_t>(i)]
                                      .result.get();
    ASSERT_EQ(r.status, svc::RequestStatus::kCompleted);
    const par::ParallelResult& cold = i % 2 == 0 ? cold_a : cold_b;
    EXPECT_TRUE(bitwise_equal(r.solve.receiver_histories,
                              cold.receiver_histories));
    EXPECT_TRUE(bitwise_equal(r.solve.u_final, cold.u_final));
  }
  service.wait_idle();

  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.gauges.at("svc/lanes"), 2.0);
  EXPECT_EQ(m.counters.at("svc/requests_completed"), 4);
  // Per-lane accounting covers every request exactly once.
  EXPECT_EQ(m.counters.at("svc/lane0/requests") +
                m.counters.at("svc/lane1/requests"),
            4);
}

// Admission routes to the shallowest shard and sheds per shard: with a
// bound of 1 and two paused lanes, the first two requests land one per
// shard, and every further submit is rejected against the shallowest
// (lowest-index) full shard — counted on THAT shard, not globally smeared.
TEST(MultiLane, PerShardBoundAndRejectionAccounting) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.lanes = 2;
  opt.queue_bound = 1;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  auto t1 = service.submit(f.request(f.src_a));
  auto t2 = service.submit(f.request(f.src_b));
  EXPECT_EQ(service.queue_depth(), 2u);
  EXPECT_THROW(service.submit(f.request(f.src_a)), svc::QueueFullError);
  EXPECT_THROW(service.submit(f.request(f.src_b)), svc::QueueFullError);

  {
    const obs::Registry m = service.metrics();
    EXPECT_EQ(m.gauges.at("svc/lane0/queue_depth"), 1.0);
    EXPECT_EQ(m.gauges.at("svc/lane1/queue_depth"), 1.0);
    EXPECT_EQ(m.gauges.at("svc/queue_depth"), 2.0);
    EXPECT_EQ(m.counters.at("svc/requests_rejected"), 2);
    // Both rejections hit the tie-broken shallowest shard: lane 0.
    EXPECT_EQ(m.counters.at("svc/lane0/rejected"), 2);
    EXPECT_EQ(m.counters.at("svc/lane1/rejected"), 0);
  }

  service.resume();
  EXPECT_EQ(t1.result.get().status, svc::RequestStatus::kCompleted);
  EXPECT_EQ(t2.result.get().status, svc::RequestStatus::kCompleted);
  service.wait_idle();
  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.gauges.at("svc/queue_depth"), 0.0);
  EXPECT_EQ(m.counters.at("svc/lane0/requests"), 1);
  EXPECT_EQ(m.counters.at("svc/lane1/requests"), 1);
}

// Destroying a multi-lane service with queued and possibly in-flight work
// resolves every future (queued -> kCancelled, running -> cooperative
// cancel); nothing hangs and nothing leaks. Exercised under TSan in CI.
TEST(MultiLane, ShutdownResolvesAllLanes) {
  const Fixture f;
  std::vector<std::future<svc::ScenarioResult>> futures;
  {
    svc::ServiceOptions opt;
    opt.lanes = 2;
    svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);
    for (int i = 0; i < 6; ++i) {
      svc::ScenarioRequest req = f.request(f.src_a);
      req.t_end = 400.0 * service.dt();  // long enough to still be busy
      futures.push_back(service.submit(std::move(req)).result);
    }
    // Destructor races the two workers mid-drain.
  }
  for (auto& fut : futures) {
    const svc::ScenarioResult r = fut.get();
    EXPECT_TRUE(r.status == svc::RequestStatus::kCancelled ||
                r.status == svc::RequestStatus::kCompleted);
  }
}

// Cancellation and deadlines keep working when two lanes race: cancelled
// requests stop at a step boundary on whichever lane picked them up, and
// a blown deadline on one lane never disturbs the other lane's solve.
TEST(MultiLane, CancelAndDeadlineRaceAcrossLanes) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.lanes = 2;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  svc::ScenarioRequest doomed = f.request(f.src_a);
  doomed.t_end = 4000.0 * service.dt();
  doomed.deadline_seconds = 0.05;
  auto t_dead = service.submit(doomed);

  svc::ScenarioRequest slow = f.request(f.src_b);
  slow.t_end = 400.0 * service.dt();
  auto t_cancel = service.submit(slow);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.cancel(t_cancel.id);

  auto t_ok = service.submit(f.request(f.src_b));

  EXPECT_EQ(t_dead.result.get().status,
            svc::RequestStatus::kDeadlineExceeded);
  const svc::ScenarioResult rc = t_cancel.result.get();
  EXPECT_TRUE(rc.status == svc::RequestStatus::kCancelled ||
              rc.status == svc::RequestStatus::kCompleted);
  EXPECT_EQ(t_ok.result.get().status, svc::RequestStatus::kCompleted);
}

// ---- scenario batching (run_batch coalescing, docs/BATCHING.md) -----------

// A paused shard filled with batchable requests drains as coalesced
// run_batch solves — counted as such, and bitwise identical to the cold
// one-at-a-time baseline.
TEST(ScenarioBatching, BatchedResultsMatchColdBitwise) {
  const Fixture f;
  const par::ParallelResult cold_a = f.cold(f.src_a);
  const par::ParallelResult cold_b = f.cold(f.src_b);

  svc::ServiceOptions opt;
  opt.max_batch = 2;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  std::vector<svc::SimulationService::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(
        service.submit(f.request(i % 2 == 0 ? f.src_a : f.src_b)));
  }
  service.resume();
  for (int i = 0; i < 4; ++i) {
    const svc::ScenarioResult r = tickets[static_cast<std::size_t>(i)]
                                      .result.get();
    ASSERT_EQ(r.status, svc::RequestStatus::kCompleted);
    const par::ParallelResult& cold = i % 2 == 0 ? cold_a : cold_b;
    EXPECT_TRUE(bitwise_equal(r.solve.receiver_histories,
                              cold.receiver_histories));
    EXPECT_TRUE(bitwise_equal(r.solve.u_final, cold.u_final));
  }
  service.wait_idle();

  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/batches"), 2);          // two width-2 solves
  EXPECT_EQ(m.counters.at("svc/batched_requests"), 4);
  EXPECT_EQ(m.gauges.at("svc/batch_size"), 2.0);       // last solve's width
  EXPECT_EQ(m.counters.at("svc/requests_completed"), 4);
}

// Batch members get consecutive pickup order: the coalesced requests share
// one worker dequeue.
TEST(ScenarioBatching, BatchMembersGetConsecutiveExecIndices) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.max_batch = 2;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);
  auto t1 = service.submit(f.request(f.src_a));
  auto t2 = service.submit(f.request(f.src_b));
  service.resume();
  const svc::ScenarioResult r1 = t1.result.get();
  const svc::ScenarioResult r2 = t2.result.get();
  EXPECT_EQ(r1.exec_index, 1u);
  EXPECT_EQ(r2.exec_index, 2u);
}

// The batchability contract: requests carrying a deadline, a retry budget,
// or any fault-tolerance options never join a batch (their per-request
// control could not apply batch-wide), and partners must share t_end.
TEST(ScenarioBatching, NonBatchableRequestsRunSolo) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.max_batch = 4;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  svc::ScenarioRequest with_deadline = f.request(f.src_a);
  with_deadline.deadline_seconds = 60.0;  // generous: completes normally
  svc::ScenarioRequest with_retries = f.request(f.src_b);
  with_retries.max_attempts = 2;
  svc::ScenarioRequest other_t_end = f.request(f.src_a);
  other_t_end.t_end = 0.5 * f.so.t_end;  // batchable, but no matching partner
  svc::ScenarioRequest plain = f.request(f.src_b);

  auto t1 = service.submit(std::move(with_deadline));
  auto t2 = service.submit(std::move(with_retries));
  auto t3 = service.submit(std::move(other_t_end));
  auto t4 = service.submit(std::move(plain));
  service.resume();

  EXPECT_EQ(t1.result.get().status, svc::RequestStatus::kCompleted);
  EXPECT_EQ(t2.result.get().status, svc::RequestStatus::kCompleted);
  EXPECT_EQ(t3.result.get().status, svc::RequestStatus::kCompleted);
  EXPECT_EQ(t4.result.get().status, svc::RequestStatus::kCompleted);
  service.wait_idle();

  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/batches"), 0);
  EXPECT_EQ(m.counters.at("svc/batched_requests"), 0);
  EXPECT_EQ(m.counters.at("svc/requests_completed"), 4);
}

// The aggregation window holds an underfull batch open: a second batchable
// request arriving within the window joins the first one's solve.
TEST(ScenarioBatching, AggregationWindowCoalescesLateArrival) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.max_batch = 2;
  opt.batch_window_seconds = 5.0;  // generous; closes early once full
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  auto t1 = service.submit(f.request(f.src_a));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto t2 = service.submit(f.request(f.src_b));

  EXPECT_EQ(t1.result.get().status, svc::RequestStatus::kCompleted);
  EXPECT_EQ(t2.result.get().status, svc::RequestStatus::kCompleted);
  service.wait_idle();

  const obs::Registry m = service.metrics();
  EXPECT_EQ(m.counters.at("svc/batches"), 1);
  EXPECT_EQ(m.counters.at("svc/batched_requests"), 2);
}

// Cancelling EVERY member of a running batch stops the whole batched solve
// at one step boundary; all members come back kCancelled with the same
// partial step count.
TEST(ScenarioBatching, CancellingAllMembersStopsBatch) {
  const Fixture f;
  svc::ServiceOptions opt;
  opt.max_batch = 2;
  opt.start_paused = true;
  svc::SimulationService service(f.mesh, f.part, f.oo, f.so, opt);

  svc::ScenarioRequest a = f.request(f.src_a);
  a.t_end = 800.0 * service.dt();
  svc::ScenarioRequest b = f.request(f.src_b);
  b.t_end = 800.0 * service.dt();
  auto t1 = service.submit(std::move(a));
  auto t2 = service.submit(std::move(b));
  service.resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.cancel(t1.id);
  service.cancel(t2.id);

  const svc::ScenarioResult r1 = t1.result.get();
  const svc::ScenarioResult r2 = t2.result.get();
  EXPECT_EQ(r1.status, svc::RequestStatus::kCancelled);
  EXPECT_EQ(r2.status, svc::RequestStatus::kCancelled);
  if (r1.exec_index != 0 && r2.exec_index != 0) {
    EXPECT_EQ(r1.solve.steps_completed, r2.solve.steps_completed);
    EXPECT_LT(r1.solve.steps_completed, r1.solve.n_steps);
  }
}

}  // namespace
