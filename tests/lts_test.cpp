// Tests for the local-time-stepping subsystem (src/lts, docs/LTS.md):
// the clustering pass (per-element stable dt, power-of-two binning, +-1
// adjacency normalization through hanging-node constraint groups), the
// serial LtsSolver (bitwise-identical to ExplicitSolver with one class,
// tolerance-equivalent to global dt with several), and the parallel
// ParallelSetup::run_lts path (global-dt forwarding, single-class bitwise
// anchor, multi-rate equivalence, and bitwise determinism across repeats).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "quake/lts/clustering.hpp"
#include "quake/lts/lts_solver.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/par/partition.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/stats.hpp"
#include "quake/vel/model.hpp"

namespace {

using namespace quake;

// Uniform single-level mesh: one material, one octree level, so the
// clustering must collapse to a single class and LTS must degenerate to
// the global scheme bit for bit.
mesh::HexMesh uniform_mesh() {
  const vel::HomogeneousModel model(
      vel::Material::from_velocities(4000.0, 2300.0, 2600.0));
  mesh::MeshOptions opt;
  opt.domain_size = 8000.0;
  opt.f_max = 1e-9;
  opt.min_level = 3;
  opt.max_level = 3;
  return mesh::generate_mesh(model, opt);
}

// Soft layer with a saturated-sediment P velocity (vp/vs = 4) over a stiff
// halfspace: wavelength refinement sizes h to vs while the stable step
// follows h / vp, so the two octree levels carry genuinely different rates
// and the level transition has hanging nodes.
mesh::HexMesh two_rate_mesh() {
  const vel::LayeredModel model(
      {{150.0, vel::Material::from_velocities(3200.0, 800.0, 2000.0)},
       {0.0, vel::Material::from_velocities(1.732 * 1600.0, 1600.0, 2400.0)}});
  mesh::MeshOptions opt;
  opt.domain_size = 800.0;
  opt.f_max = 2.0;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 5;
  return mesh::generate_mesh(model, opt);
}

// The small multi-level basin from par_test: three stability bins, hanging
// nodes, and enough structure for multi-rank runs.
mesh::HexMesh small_basin_mesh() {
  const vel::BasinModel basin = vel::BasinModel::demo(20000.0);
  mesh::MeshOptions opt;
  opt.domain_size = 20000.0;
  opt.f_max = 0.04;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 4;
  return mesh::generate_mesh(basin, opt);
}

// Element adjacency as the clustering defines it: two elements are
// adjacent when they share a node directly, or when one touches a hanging
// node whose constraint group (dependent + masters) the other touches.
std::vector<std::set<mesh::ElemId>> node_to_elems(const mesh::HexMesh& mesh) {
  std::vector<std::set<mesh::ElemId>> of_node(mesh.n_nodes());
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    for (const mesh::NodeId n : mesh.elem_nodes[e]) {
      of_node[static_cast<std::size_t>(n)].insert(
          static_cast<mesh::ElemId>(e));
    }
  }
  return of_node;
}

}  // namespace

TEST(LtsClustering, ElementStableDtMatchesFormula) {
  const auto mesh = uniform_mesh();
  const double cfl = 0.4;
  const std::vector<double> dts = lts::element_stable_dt(mesh, cfl);
  ASSERT_EQ(dts.size(), mesh.n_elements());
  double mn = dts[0];
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const double want = cfl * mesh.elem_size[e] / mesh.elem_mat[e].vp();
    EXPECT_NEAR(dts[e], want, 1e-12 * want);
    mn = std::min(mn, dts[e]);
  }
  const solver::ElasticOperator op(mesh, {});
  EXPECT_NEAR(mn, op.stable_dt(cfl), 1e-12 * mn);
}

TEST(LtsClustering, PowerOfTwoBinsAndHistograms) {
  const auto mesh = two_rate_mesh();
  ASSERT_GT(mesh.n_hanging(), 0u);
  const double cfl = 0.35;
  const std::vector<double> dts = lts::element_stable_dt(mesh, cfl);
  const double base_dt = *std::min_element(dts.begin(), dts.end());
  const lts::Clustering cl = lts::cluster_elements(mesh, base_dt, cfl, 32);

  EXPECT_GE(cl.n_classes, 2);
  EXPECT_EQ(cl.base_dt, base_dt);
  ASSERT_EQ(cl.elem_rate_log2.size(), mesh.n_elements());
  ASSERT_EQ(cl.elem_class_log2.size(), mesh.n_elements());
  ASSERT_EQ(cl.node_rate_log2.size(), mesh.n_nodes());
  std::size_t rate_total = 0, class_total = 0;
  ASSERT_EQ(cl.rate_histogram.size(), static_cast<std::size_t>(cl.n_classes));
  for (int c = 0; c < cl.n_classes; ++c) {
    rate_total += cl.rate_histogram[static_cast<std::size_t>(c)];
    class_total += cl.class_histogram[static_cast<std::size_t>(c)];
  }
  EXPECT_EQ(rate_total, mesh.n_elements());
  EXPECT_EQ(class_total, mesh.n_elements());
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const int rate = 1 << cl.elem_rate_log2[e];
    EXPECT_LE(rate, 32);
    // Stability: each element's cadence keeps its own CFL bound.
    EXPECT_LE(rate * base_dt, dts[e] * (1.0 + 1e-12));
    // The compute cadence never exceeds the stability cadence.
    EXPECT_LE(cl.elem_class_log2[e], cl.elem_rate_log2[e]);
  }
  EXPECT_GT(cl.predicted_updates_saved(), 1.0);
  EXPECT_NEAR(cl.predicted_update_fraction() * cl.predicted_updates_saved(),
              1.0, 1e-12);
}

TEST(LtsClustering, AdjacentRatesDifferByAtMostOneThroughHangingNodes) {
  for (const auto& mesh : {two_rate_mesh(), small_basin_mesh()}) {
    ASSERT_GT(mesh.n_hanging(), 0u);
    const double cfl = 0.4;
    const std::vector<double> dts = lts::element_stable_dt(mesh, cfl);
    const double base_dt = *std::min_element(dts.begin(), dts.end());
    const lts::Clustering cl = lts::cluster_elements(mesh, base_dt, cfl, 32);
    ASSERT_GE(cl.n_classes, 2);

    // A hanging node and its masters share one cadence.
    for (const mesh::Constraint& c : mesh.constraints) {
      for (int m = 0; m < c.n_masters; ++m) {
        EXPECT_EQ(cl.node_rate_log2[static_cast<std::size_t>(c.node)],
                  cl.node_rate_log2[static_cast<std::size_t>(c.masters[m])]);
      }
    }

    // Adjacency including constraint-group coupling: elements touching any
    // node of the same group are mutually adjacent for the +-1 rule.
    auto of_node = node_to_elems(mesh);
    for (const mesh::Constraint& c : mesh.constraints) {
      std::set<mesh::ElemId> group = of_node[static_cast<std::size_t>(c.node)];
      for (int m = 0; m < c.n_masters; ++m) {
        const auto& more = of_node[static_cast<std::size_t>(c.masters[m])];
        group.insert(more.begin(), more.end());
      }
      of_node[static_cast<std::size_t>(c.node)] = group;
      for (int m = 0; m < c.n_masters; ++m) {
        of_node[static_cast<std::size_t>(c.masters[m])] = group;
      }
    }
    for (const auto& elems : of_node) {
      int lo = 127, hi = 0;
      for (const mesh::ElemId e : elems) {
        lo = std::min<int>(lo, cl.elem_rate_log2[static_cast<std::size_t>(e)]);
        hi = std::max<int>(hi, cl.elem_rate_log2[static_cast<std::size_t>(e)]);
      }
      if (!elems.empty()) EXPECT_LE(hi - lo, 1);
    }

    // Node cadence = min rate over touching elements (folded above);
    // element class = min node cadence over its nodes.
    for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
      if (of_node[n].empty()) continue;
      int want = 127;
      for (const mesh::ElemId e : of_node[n]) {
        want = std::min<int>(want,
                             cl.elem_rate_log2[static_cast<std::size_t>(e)]);
      }
      EXPECT_EQ(cl.node_rate_log2[n], want);
    }
    for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
      int want = 127;
      for (const mesh::NodeId n : mesh.elem_nodes[e]) {
        want = std::min<int>(want,
                             cl.node_rate_log2[static_cast<std::size_t>(n)]);
      }
      EXPECT_EQ(cl.elem_class_log2[e], want);
    }
  }
}

TEST(LtsClustering, MaxRateOneDegeneratesToGlobal) {
  const auto mesh = two_rate_mesh();
  const std::vector<double> dts = lts::element_stable_dt(mesh, 0.4);
  const double base_dt = *std::min_element(dts.begin(), dts.end());
  const lts::Clustering cl = lts::cluster_elements(mesh, base_dt, 0.4, 1);
  EXPECT_EQ(cl.n_classes, 1);
  EXPECT_EQ(cl.max_rate(), 1);
  EXPECT_DOUBLE_EQ(cl.predicted_updates_saved(), 1.0);
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    EXPECT_EQ(cl.elem_rate_log2[e], 0);
    EXPECT_EQ(cl.elem_class_log2[e], 0);
  }
}

TEST(LtsClustering, RejectsBadArguments) {
  const auto mesh = uniform_mesh();
  EXPECT_THROW(lts::cluster_elements(mesh, 0.0, 0.4, 32),
               std::invalid_argument);
  EXPECT_THROW(lts::cluster_elements(mesh, -1.0, 0.4, 32),
               std::invalid_argument);
  EXPECT_THROW(lts::cluster_elements(mesh, 0.01, 0.4, 0),
               std::invalid_argument);
}

TEST(LtsSerial, SingleClassBitwiseMatchesExplicitSolver) {
  const auto mesh = uniform_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.5;
  so.cfl_fraction = 0.4;
  const solver::ElasticOperator op(mesh, oo);
  const solver::PointSource src(mesh, {4000.0, 4000.0, 3000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 10.0);
  const std::array<double, 3> rx = {6000.0, 3000.0, 0.0};

  solver::ExplicitSolver ref(op, so);
  ref.add_source(&src);
  ref.add_receiver(rx);
  ref.run();

  lts::LtsOptions lo;
  lo.enabled = true;
  lo.max_rate = 32;
  lts::LtsSolver sol(op, so, lo);
  sol.add_source(&src);
  sol.add_receiver(rx);
  sol.run();

  EXPECT_EQ(sol.clustering().n_classes, 1);
  EXPECT_EQ(sol.n_steps(), ref.n_steps());
  EXPECT_DOUBLE_EQ(sol.updates_saved_ratio(), 1.0);
  ASSERT_EQ(sol.displacement().size(), ref.displacement().size());
  EXPECT_EQ(std::memcmp(sol.displacement().data(), ref.displacement().data(),
                        ref.displacement().size() * sizeof(double)),
            0);
  ASSERT_EQ(sol.receivers()[0].u.size(), ref.receivers()[0].u.size());
  EXPECT_EQ(std::memcmp(sol.receivers()[0].u.data(), ref.receivers()[0].u.data(),
                        ref.receivers()[0].u.size() * sizeof(double) * 3),
            0);
}

TEST(LtsSerial, TwoRateMatchesGlobalWithinTolerance) {
  const auto mesh = two_rate_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.6;
  so.cfl_fraction = 0.35;
  const solver::ElasticOperator op(mesh, oo);

  // SH-style initial pulse in the halfspace (see bench_table2_1 --lts-sweep).
  const double zc = 500.0, sigma = 120.0, vs2 = 1600.0;
  std::vector<double> u0(op.n_dofs(), 0.0), v0(op.n_dofs(), 0.0);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    const double z = mesh.node_coords[n][2];
    const double p = std::exp(-std::pow((z - zc) / sigma, 2));
    u0[3 * n + 1] = p;
    v0[3 * n + 1] = vs2 * (-2.0 * (z - zc) / (sigma * sigma)) * p;
  }
  const std::array<double, 3> rx = {400.0, 400.0, 0.0};

  solver::ExplicitSolver ref(op, so);
  ref.set_fixed_components({true, false, true});
  ref.set_initial_conditions(u0, v0);
  ref.add_receiver(rx);
  ref.run();

  lts::LtsOptions lo;
  lo.enabled = true;
  lo.max_rate = 32;
  lts::LtsSolver sol(op, so, lo);
  sol.set_fixed_components({true, false, true});
  sol.set_initial_conditions(u0, v0);
  sol.add_receiver(rx);
  sol.run();

  ASSERT_GE(sol.clustering().n_classes, 2);
  EXPECT_GT(sol.updates_saved_ratio(), 1.0);
  ASSERT_EQ(sol.displacement().size(), ref.displacement().size());
  const double unorm = util::norm_l2(ref.displacement());
  EXPECT_LT(util::diff_l2(sol.displacement(), ref.displacement()),
            0.02 * (1.0 + unorm));
  const auto rec_ref = ref.receiver_component(0, 1);
  const auto rec_lts = sol.receiver_component(0, 1);
  ASSERT_EQ(rec_ref.size(), rec_lts.size());
  EXPECT_LT(util::rel_l2(rec_lts, rec_ref), 0.02);
}

TEST(LtsSerial, ElementUpdatesFollowTheSchedule) {
  const auto mesh = two_rate_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.3;
  so.cfl_fraction = 0.35;
  const solver::ElasticOperator op(mesh, oo);
  lts::LtsOptions lo;
  lo.enabled = true;
  lo.max_rate = 32;
  lts::LtsSolver sol(op, so, lo);
  sol.run();

  // Class c runs at fine steps k in [0, n_steps) with 2^c | k.
  const lts::Clustering& cl = sol.clustering();
  std::uint64_t want = 0;
  for (int c = 0; c < cl.n_classes; ++c) {
    const std::uint64_t active =
        static_cast<std::uint64_t>((sol.n_steps() - 1) >> c) + 1;
    want += active * cl.class_histogram[static_cast<std::size_t>(c)];
  }
  EXPECT_EQ(sol.element_updates(), want);
  EXPECT_LT(sol.element_updates(), sol.global_element_updates());
}

TEST(LtsSerial, RayleighDampingRejected) {
  const auto mesh = uniform_mesh();
  solver::OperatorOptions oo;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  const solver::ElasticOperator op(mesh, oo);
  solver::SolverOptions so;
  so.t_end = 0.1;
  lts::LtsOptions lo;
  lo.enabled = true;
  EXPECT_THROW(lts::LtsSolver(op, so, lo), std::invalid_argument);
}

TEST(LtsParallel, DisabledForwardsToGlobalRun) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 1.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  const par::Partition part = par::partition_sfc(mesh, 4);

  const par::ParallelResult ref =
      par::run_parallel(mesh, part, oo, so, sources, rxs);
  par::ParallelSetup setup(mesh, part, oo, so);
  const par::ParallelResult pr =
      setup.run_lts(so.t_end, sources, rxs, lts::LtsOptions{});

  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  std::uint64_t updates = 0;
  for (const auto& s : pr.rank_stats) updates += s.element_updates;
  EXPECT_EQ(updates, static_cast<std::uint64_t>(pr.n_steps) *
                         mesh.n_elements());
}

TEST(LtsParallel, SingleClassBitwiseMatchesGlobalRun) {
  const auto mesh = uniform_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 0.5;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {4000.0, 4000.0, 3000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 10.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{6000.0, 3000.0, 0.0}};
  const par::Partition part = par::partition_sfc(mesh, 4);

  const par::ParallelResult ref =
      par::run_parallel(mesh, part, oo, so, sources, rxs);
  par::ParallelSetup setup(mesh, part, oo, so);
  lts::LtsOptions lo;
  lo.enabled = true;
  lo.max_rate = 32;
  const par::ParallelResult pr = setup.run_lts(so.t_end, sources, rxs, lo);

  EXPECT_EQ(pr.n_steps, ref.n_steps);
  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  EXPECT_EQ(std::memcmp(pr.u_final.data(), ref.u_final.data(),
                        ref.u_final.size() * sizeof(double)),
            0);
  ASSERT_EQ(pr.receiver_histories[0].size(), ref.receiver_histories[0].size());
  EXPECT_EQ(std::memcmp(pr.receiver_histories[0].data(),
                        ref.receiver_histories[0].data(),
                        ref.receiver_histories[0].size() * sizeof(double) * 3),
            0);
}

TEST(LtsParallel, MultiRateMatchesGlobalWithinTolerance) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 2.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  const par::Partition part = par::partition_sfc(mesh, 4);
  par::ParallelSetup setup(mesh, part, oo, so);

  lts::LtsOptions off;
  const par::ParallelResult ref = setup.run_lts(so.t_end, sources, rxs, off);
  lts::LtsOptions on;
  on.enabled = true;
  on.max_rate = 32;
  const par::ParallelResult pr = setup.run_lts(so.t_end, sources, rxs, on);

  EXPECT_EQ(pr.n_steps, ref.n_steps);
  std::uint64_t updates = 0;
  for (const auto& s : pr.rank_stats) updates += s.element_updates;
  EXPECT_LT(updates, static_cast<std::uint64_t>(pr.n_steps) *
                         mesh.n_elements());  // actually saved work
  ASSERT_EQ(pr.u_final.size(), ref.u_final.size());
  const double unorm = util::norm_l2(ref.u_final);
  EXPECT_LT(util::diff_l2(pr.u_final, ref.u_final), 0.05 * (1.0 + unorm));
}

TEST(LtsParallel, RepeatedMultiRankRunsBitIdentical) {
  const auto mesh = small_basin_mesh();
  solver::OperatorOptions oo;
  solver::SolverOptions so;
  so.t_end = 1.0;
  so.cfl_fraction = 0.4;
  const solver::PointSource src(mesh, {10000.0, 10000.0, 4000.0},
                                {1.0, 0.5, 0.2}, 1e12, 0.03, 40.0);
  const solver::SourceModel* sources[] = {&src};
  const std::array<double, 3> rxs[] = {{14000.0, 9000.0, 0.0}};
  lts::LtsOptions on;
  on.enabled = true;
  on.max_rate = 32;

  for (const int R : {2, 4}) {
    SCOPED_TRACE("ranks=" + std::to_string(R));
    const par::Partition part = par::partition_sfc(mesh, R);
    par::ParallelSetup setup(mesh, part, oo, so);
    const par::ParallelResult a = setup.run_lts(so.t_end, sources, rxs, on);
    const par::ParallelResult b = setup.run_lts(so.t_end, sources, rxs, on);
    ASSERT_EQ(a.u_final.size(), b.u_final.size());
    EXPECT_EQ(std::memcmp(a.u_final.data(), b.u_final.data(),
                          a.u_final.size() * sizeof(double)),
              0);
    ASSERT_EQ(a.receiver_histories[0].size(), b.receiver_histories[0].size());
    EXPECT_EQ(std::memcmp(a.receiver_histories[0].data(),
                          b.receiver_histories[0].data(),
                          a.receiver_histories[0].size() * sizeof(double) * 3),
              0);
  }
}

TEST(LtsParallel, RayleighDampingRejected) {
  const auto mesh = uniform_mesh();
  solver::OperatorOptions oo;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  solver::SolverOptions so;
  so.t_end = 0.2;
  const par::Partition part = par::partition_sfc(mesh, 2);
  par::ParallelSetup setup(mesh, part, oo, so);
  lts::LtsOptions on;
  on.enabled = true;
  EXPECT_THROW(setup.run_lts(so.t_end, {}, {}, on), std::invalid_argument);
}
