// Tests for the 3D scalar-wave inversion substrate (the Table 3.1 setting):
// model kernels, marching, adjoint gradients vs finite differences,
// Gauss-Newton operator properties, and a small end-to-end inversion.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"
#include "quake/wave3d/inversion3d.hpp"
#include "quake/wave3d/scalar_model.hpp"

namespace {

using namespace quake;
using namespace quake::wave3d;

constexpr double kRho = 2200.0;

Setup3d make_setup(int n, int nt) {
  Setup3d s;
  // h = 100 m with ~2 Hz sources: the wavelength (~400-500 m) is both
  // resolvable on the grid (4-5 points per wavelength) and comparable to
  // the heterogeneity size, so the data actually constrains the model.
  s.grid = ScalarGrid3d{n, n, n, 100.0};
  s.rho = kRho;
  // Buried Ricker sources at varied positions and depths.
  s.sources.push_back(
      {s.grid.node(n / 2, n / 2, 2 * n / 3), 1e10, 1.3, 1.0});
  s.sources.push_back({s.grid.node(n / 4, n / 2, n / 2), 6e9, 1.5, 1.2});
  s.sources.push_back(
      {s.grid.node(3 * n / 4, n / 4, n / 3), 8e9, 1.2, 1.4});
  s.sources.push_back(
      {s.grid.node(n / 4, 3 * n / 4, 5 * n / 6), 9e9, 1.4, 1.6});
  for (int j = 1; j < n; ++j) {
    for (int i = 1; i < n; ++i) {
      s.receiver_nodes.push_back(s.grid.node(i, j, 0));
    }
  }
  std::vector<double> mu(static_cast<std::size_t>(s.grid.n_elems()), 2.0e9);
  const ScalarModel3d m(s.grid, std::move(mu), kRho);
  s.dt = m.stable_dt(0.4);
  s.nt = nt;
  return s;
}

// A -20% smooth anomaly in the upper center: a moderate contrast inside
// the Gauss-Newton basin of attraction. (Larger contrasts at these
// wavelengths hit the local minima of §3.1 — the multiscale/frequency
// continuation motivation — demonstrated by bench_ablation_continuation.)
std::vector<double> target_mu(const ScalarGrid3d& g) {
  std::vector<double> mu(static_cast<std::size_t>(g.n_elems()));
  const int n = g.nx;
  for (int e = 0; e < g.n_elems(); ++e) {
    const int i = e % n, j = (e / n) % n, k = e / (n * n);
    const double dx = (i + 0.5 - 0.5 * n) / n;
    const double dy = (j + 0.5 - 0.5 * n) / n;
    const double dz = (k + 0.5 - 0.25 * n) / n;
    mu[static_cast<std::size_t>(e)] =
        1.6e9 *
        (1.0 - 0.20 * std::exp(-8.0 * (dx * dx + dy * dy + dz * dz)));
  }
  return mu;
}

TEST(Grid3d, NodeElementIndexing) {
  ScalarGrid3d g{3, 4, 5, 100.0};
  EXPECT_EQ(g.n_nodes(), 4 * 5 * 6);
  EXPECT_EQ(g.n_elems(), 60);
  int conn[8];
  g.elem_nodes(g.elem(1, 2, 3), conn);
  EXPECT_EQ(conn[0], g.node(1, 2, 3));
  EXPECT_EQ(conn[1], g.node(2, 2, 3));
  EXPECT_EQ(conn[2], g.node(1, 3, 3));
  EXPECT_EQ(conn[4], g.node(1, 2, 4));
  EXPECT_EQ(conn[7], g.node(2, 3, 4));
}

TEST(Model3d, MassConserved) {
  ScalarGrid3d g{4, 4, 4, 100.0};
  const ScalarModel3d m(
      g, std::vector<double>(static_cast<std::size_t>(g.n_elems()), 1e9),
      kRho);
  double total = 0.0;
  for (double v : m.mass()) total += v;
  EXPECT_NEAR(total, kRho * std::pow(400.0, 3), 1e-3);
}

TEST(Model3d, FreeSurfaceUndamped) {
  ScalarGrid3d g{4, 4, 4, 100.0};
  const ScalarModel3d m(
      g, std::vector<double>(static_cast<std::size_t>(g.n_elems()), 1e9),
      kRho);
  EXPECT_DOUBLE_EQ(m.damping()[static_cast<std::size_t>(g.node(2, 2, 0))],
                   0.0);
  EXPECT_GT(m.damping()[static_cast<std::size_t>(g.node(2, 2, 4))], 0.0);
}

TEST(Model3d, KFormIsBilinearValue) {
  ScalarGrid3d g{3, 3, 3, 150.0};
  util::Rng rng(3);
  std::vector<double> mu(static_cast<std::size_t>(g.n_elems()));
  for (double& v : mu) v = rng.uniform(1e9, 3e9);
  const ScalarModel3d m(g, std::vector<double>(mu), kRho);
  std::vector<double> u(static_cast<std::size_t>(g.n_nodes())),
      lam(u.size());
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (double& v : lam) v = rng.uniform(-1.0, 1.0);
  std::vector<double> ge(mu.size(), 0.0), ku(u.size(), 0.0);
  m.accumulate_k_form(lam, u, ge);
  m.apply_k(u, ku);
  double lhs = 0.0;
  for (std::size_t e = 0; e < mu.size(); ++e) lhs += mu[e] * ge[e];
  EXPECT_NEAR(lhs, util::dot(lam, ku), 1e-6 * std::abs(lhs) + 1e-9);
}

TEST(Model3d, WavesAbsorbed) {
  ScalarGrid3d g{8, 8, 8, 100.0};
  const ScalarModel3d m(
      g, std::vector<double>(static_cast<std::size_t>(g.n_elems()), 2e9),
      kRho);
  const double dt = m.stable_dt(0.4);
  auto out = time_march3d(
      m, dt, 600,
      [&](int k, double, std::span<double> f) {
        if (k < 10) f[static_cast<std::size_t>(g.node(4, 4, 4))] = 1e10;
      },
      {}, true);
  double peak = 0.0;
  for (const auto& u : out.history) peak = std::max(peak, util::norm_max(u));
  EXPECT_GT(peak, 0.0);
  // 3D waves satisfy Huygens: the coda dies out quickly.
  EXPECT_LT(util::norm_max(out.history.back()), 0.05 * peak);
}

TEST(Adjoint3d, GradientMatchesFiniteDifference) {
  Setup3d setup = make_setup(8, 90);
  // Observations from a heterogeneous target.
  const std::vector<double> mu_t = target_mu(setup.grid);
  {
    const ScalarModel3d truth(setup.grid, std::vector<double>(mu_t), kRho);
    const ScalarInversion3d gen(setup);
    setup.observations = gen.forward(truth, false).march.records;
  }
  const ScalarInversion3d prob(setup);

  const std::size_t ne = static_cast<std::size_t>(setup.grid.n_elems());
  std::vector<double> mu(ne, 1.6e9);
  const ScalarModel3d model(setup.grid, std::vector<double>(mu), kRho);
  const auto fwd = prob.forward(model, true);
  ASSERT_GT(fwd.misfit, 0.0);
  const auto nu = prob.adjoint(model, fwd.residuals);
  std::vector<double> ge(ne, 0.0);
  prob.assemble_gradient(model, fwd.march.history, nu, ge);

  util::Rng rng(5);
  std::vector<double> dmu(ne);
  for (double& v : dmu) v = rng.uniform(-1.0, 1.0) * 1e8;
  auto j_of = [&](double s) {
    std::vector<double> mu_s(ne);
    for (std::size_t e = 0; e < ne; ++e) mu_s[e] = mu[e] + s * dmu[e];
    const ScalarModel3d ms(setup.grid, std::move(mu_s), kRho);
    return prob.forward(ms, false).misfit;
  };
  const double eps = 1e-5;
  const double fd = (j_of(eps) - j_of(-eps)) / (2 * eps);
  EXPECT_NEAR(util::dot(ge, dmu), fd, 2e-4 * std::abs(fd));
}

TEST(GaussNewton3d, SymmetricPsd) {
  Setup3d setup = make_setup(6, 70);
  {
    const ScalarModel3d truth(setup.grid, target_mu(setup.grid), kRho);
    const ScalarInversion3d gen(setup);
    setup.observations = gen.forward(truth, false).march.records;
  }
  const ScalarInversion3d prob(setup);
  const std::size_t ne = static_cast<std::size_t>(setup.grid.n_elems());
  const ScalarModel3d model(setup.grid, std::vector<double>(ne, 1.6e9), kRho);
  const auto fwd = prob.forward(model, true);

  util::Rng rng(9);
  std::vector<double> v(ne), w(ne), hv(ne, 0.0), hw(ne, 0.0);
  for (double& x : v) x = rng.uniform(-1.0, 1.0) * 1e8;
  for (double& x : w) x = rng.uniform(-1.0, 1.0) * 1e8;
  prob.gauss_newton(model, fwd.march.history, v, hv);
  prob.gauss_newton(model, fwd.march.history, w, hw);
  const double vhw = util::dot(v, hw), whv = util::dot(w, hv);
  EXPECT_NEAR(vhw, whv, 1e-6 * (std::abs(vhw) + std::abs(whv)) + 1e-12);
  EXPECT_GE(util::dot(v, hv), -1e-10 * util::norm_l2(v) * util::norm_l2(hv));
}

TEST(MaterialGrid3d, TransposeIsAdjoint) {
  ScalarGrid3d g{6, 6, 6, 100.0};
  const MaterialGrid3d mg(g, 3, 2, 2);
  util::Rng rng(11);
  std::vector<double> m(mg.n_params()),
      ge(static_cast<std::size_t>(g.n_elems()));
  for (double& v : m) v = rng.uniform(-1.0, 1.0);
  for (double& v : ge) v = rng.uniform(-1.0, 1.0);
  std::vector<double> pm(ge.size());
  mg.apply(m, pm);
  std::vector<double> ptg(m.size(), 0.0);
  mg.apply_transpose(ge, ptg);
  EXPECT_NEAR(util::dot(pm, ge), util::dot(m, ptg), 1e-9);
}

TEST(MaterialGrid3d, ReproducesTrilinearField) {
  ScalarGrid3d g{8, 8, 8, 100.0};
  const MaterialGrid3d mg(g, 2, 2, 2);
  // m(x,y,z) = 1 + x + 2y + 3z on the coarse grid (in cell units).
  std::vector<double> m(mg.n_params());
  for (int k = 0; k <= 2; ++k) {
    for (int j = 0; j <= 2; ++j) {
      for (int i = 0; i <= 2; ++i) {
        m[static_cast<std::size_t>((k * 3 + j) * 3 + i)] =
            1.0 + i + 2.0 * j + 3.0 * k;
      }
    }
  }
  std::vector<double> mu(static_cast<std::size_t>(g.n_elems()));
  mg.apply(m, mu);
  // Element center (3.5, 3.5, 3.5)/8 of the domain -> (0.875, 0.875, 0.875)
  // cell coordinates in the coarse grid.
  const int e = g.elem(3, 3, 3);
  const double c = 0.875;
  EXPECT_NEAR(mu[static_cast<std::size_t>(e)], 1.0 + c + 2.0 * c + 3.0 * c,
              1e-12);
}

TEST(Inversion3d, RecoversSmoothAnomaly) {
  Setup3d setup = make_setup(10, 170);
  const std::vector<double> mu_t = target_mu(setup.grid);
  {
    const ScalarModel3d truth(setup.grid, std::vector<double>(mu_t), kRho);
    const ScalarInversion3d gen(setup);
    setup.observations = gen.forward(truth, false).march.records;
  }
  const ScalarInversion3d prob(setup);
  Inversion3dOptions opt;
  opt.gx = opt.gy = opt.gz = 3;
  opt.max_newton = 10;
  opt.cg = {200, 0.01};
  opt.mu_min = 1e8;
  opt.initial_mu = 1.6e9;
  opt.beta_h1_rel = 0.03;
  opt.grad_tol = 1e-3;
  const auto rep = invert_material3d(prob, opt, mu_t);
  // Essentially exact recovery within the Newton basin.
  EXPECT_LT(rep.misfit_final, 0.01 * rep.misfit_initial);
  EXPECT_LT(rep.model_error, 0.05);
  EXPECT_GT(rep.cg_iters, 0);
}

}  // namespace
