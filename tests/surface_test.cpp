// Tests for the surface raster extraction used by the snapshot figures.

#include <gtest/gtest.h>

#include <cmath>

#include "quake/mesh/meshgen.hpp"
#include "quake/solver/surface.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake;

mesh::HexMesh uniform(int level, double size) {
  mesh::MeshOptions o;
  o.domain_size = size;
  o.f_max = 1e-9;
  o.min_level = level;
  o.max_level = level;
  const vel::HomogeneousModel m(
      vel::Material::from_velocities(2000.0, 1000.0, 2000.0));
  return mesh::generate_mesh(m, o);
}

TEST(SurfaceRaster, ExtractsSurfaceFieldExactlyAtNodes) {
  const auto mesh = uniform(3, 800.0);  // 9x9 surface nodes
  const solver::SurfaceRaster raster(mesh, 8);
  // Field: u_x = x + 2y at the surface, 0 elsewhere.
  std::vector<double> u(3 * mesh.n_nodes(), 0.0);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    const auto& c = mesh.node_coords[n];
    if (c[2] < 1.0) u[3 * n] = c[0] + 2.0 * c[1];
  }
  const auto img = raster.component(u, 0);
  ASSERT_EQ(img.size(), 64u);
  // Each pixel carries the nearest surface node's value; with 8 pixels over
  // 8 elements the pixel centers are within half an element of a node, so
  // values are within the field's variation over that distance.
  for (int iy = 0; iy < 8; ++iy) {
    for (int ix = 0; ix < 8; ++ix) {
      const double px = (ix + 0.5) * 100.0, py = (iy + 0.5) * 100.0;
      const double expect = px + 2.0 * py;
      EXPECT_NEAR(img[static_cast<std::size_t>(iy) * 8 + ix], expect, 150.0);
    }
  }
}

TEST(SurfaceRaster, VelocityMagnitudeAndPeak) {
  const auto mesh = uniform(2, 400.0);
  solver::SurfaceRaster raster(mesh, 4);
  std::vector<double> v(3 * mesh.n_nodes(), 0.0);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    v[3 * n] = 3.0;
    v[3 * n + 1] = 4.0;
  }
  const auto mag = raster.velocity_magnitude(v);
  for (double m : mag) EXPECT_NEAR(m, 5.0, 1e-12);
  raster.update_peak(mag);
  std::vector<double> half(mag.size(), 1.0);
  raster.update_peak(half);  // lower values must not reduce the peak
  for (double p : raster.peak()) EXPECT_NEAR(p, 5.0, 1e-12);
}

TEST(SurfaceRaster, RejectsBadSize) {
  const auto mesh = uniform(2, 400.0);
  EXPECT_THROW(solver::SurfaceRaster(mesh, 0), std::invalid_argument);
}

}  // namespace
