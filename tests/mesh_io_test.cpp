// Tests for the element/node database pair (the transform step's output,
// §2.3) and the etree-backed velocity model (the "CVM etree" component).

#include <gtest/gtest.h>

#include <cmath>

#include "quake/mesh/mesh_io.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/stats.hpp"
#include "quake/vel/etree_model.hpp"

namespace {

using namespace quake;

mesh::HexMesh demo_mesh() {
  const vel::BasinModel basin = vel::BasinModel::demo(16000.0);
  mesh::MeshOptions opt;
  opt.domain_size = 16000.0;
  opt.f_max = 0.05;
  opt.n_lambda = 8.0;
  opt.min_level = 2;
  opt.max_level = 4;
  return mesh::generate_mesh(basin, opt);
}

TEST(MeshIo, RoundTripPreservesEverything) {
  const mesh::HexMesh a = demo_mesh();
  ASSERT_GT(a.n_hanging(), 0u);
  const std::string path = testing::TempDir() + "/meshdb";
  const auto stats = mesh::save_mesh(a, path);
  EXPECT_EQ(stats.element_records, a.n_elements());
  EXPECT_EQ(stats.node_records, a.n_nodes());

  const mesh::HexMesh b = mesh::load_mesh(path);
  ASSERT_EQ(b.n_elements(), a.n_elements());
  ASSERT_EQ(b.n_nodes(), a.n_nodes());
  ASSERT_EQ(b.n_hanging(), a.n_hanging());
  EXPECT_DOUBLE_EQ(b.domain.size, a.domain.size);
  for (std::size_t e = 0; e < a.n_elements(); ++e) {
    EXPECT_EQ(b.elem_nodes[e], a.elem_nodes[e]);
    EXPECT_DOUBLE_EQ(b.elem_size[e], a.elem_size[e]);
    EXPECT_EQ(b.elem_level[e], a.elem_level[e]);
    EXPECT_DOUBLE_EQ(b.elem_mat[e].mu, a.elem_mat[e].mu);
  }
  for (std::size_t n = 0; n < a.n_nodes(); ++n) {
    EXPECT_EQ(b.node_coords[n], a.node_coords[n]);
    EXPECT_EQ(b.node_hanging[n], a.node_hanging[n]);
  }
  ASSERT_EQ(b.constraints.size(), a.constraints.size());
  for (std::size_t c = 0; c < a.constraints.size(); ++c) {
    EXPECT_EQ(b.constraints[c].node, a.constraints[c].node);
    EXPECT_EQ(b.constraints[c].n_masters, a.constraints[c].n_masters);
    for (int m = 0; m < a.constraints[c].n_masters; ++m) {
      EXPECT_EQ(b.constraints[c].masters[static_cast<std::size_t>(m)],
                a.constraints[c].masters[static_cast<std::size_t>(m)]);
      EXPECT_DOUBLE_EQ(b.constraints[c].weights[static_cast<std::size_t>(m)],
                       a.constraints[c].weights[static_cast<std::size_t>(m)]);
    }
  }
  EXPECT_EQ(b.boundary_faces.size(), a.boundary_faces.size());
}

TEST(MeshIo, LoadedMeshRunsIdentically) {
  const mesh::HexMesh a = demo_mesh();
  const std::string path = testing::TempDir() + "/meshdb_run";
  mesh::save_mesh(a, path);
  const mesh::HexMesh b = mesh::load_mesh(path);

  auto run = [](const mesh::HexMesh& mesh) {
    solver::OperatorOptions oo;
    const solver::ElasticOperator op(mesh, oo);
    solver::SolverOptions so;
    so.t_end = 2.0;
    so.cfl_fraction = 0.4;
    solver::ExplicitSolver solver(op, so);
    const solver::PointSource src(mesh, {8000.0, 8000.0, 3000.0},
                                  {1.0, 0.0, 0.0}, 1e13, 0.05, 10.0);
    solver.add_source(&src);
    solver.add_receiver({5000.0, 8000.0, 0.0});
    solver.run();
    return solver.receiver_component(0, 0);
  };
  const auto ra = run(a);
  const auto rb = run(b);
  EXPECT_LT(util::diff_l2(ra, rb), 1e-14 * (1.0 + util::norm_l2(ra)));
}

TEST(MeshIo, LoadMissingThrows) {
  EXPECT_THROW(mesh::load_mesh(testing::TempDir() + "/does_not_exist"),
               std::runtime_error);
}

TEST(EtreeModel, MatchesSourceModelAtSamplingResolution) {
  const vel::BasinModel basin = vel::BasinModel::demo(8000.0);
  vel::EtreeModelOptions opt;
  opt.domain_size = 8000.0;
  opt.level = 4;
  const std::string path = testing::TempDir() + "/cvm.etree";
  const std::size_t n = vel::build_etree_model(basin, opt, path);
  EXPECT_EQ(n, 4096u);  // 8^4

  const vel::EtreeVelocityModel db(path, opt);
  // At octant centers the database reproduces the source model exactly.
  const double h = 8000.0 / 16.0;
  for (double x : {0.5 * h, 7.5 * h, 13.5 * h}) {
    for (double z : {0.5 * h, 3.5 * h, 11.5 * h}) {
      const auto a = basin.at(x, 4000.0 + 0.5 * h - 4000.0 + 3.5 * h, z);
      (void)a;
      const double qx = x, qy = 3.5 * h, qz = z;
      const auto exact = basin.at((std::floor(qx / h) + 0.5) * h,
                                  (std::floor(qy / h) + 0.5) * h,
                                  (std::floor(qz / h) + 0.5) * h);
      const auto got = db.at(qx, qy, qz);
      EXPECT_NEAR(got.mu, exact.mu, 1e-6 * exact.mu);
      EXPECT_NEAR(got.rho, exact.rho, 1e-9 * exact.rho);
    }
  }
  // min_vs is the floor over the octant-center samples: positive, and no
  // larger than rock velocity (the piecewise-constant sampling cannot see
  // shallower than the first center plane, so it exceeds the analytic
  // surface minimum).
  EXPECT_GT(db.min_vs(), 0.0);
  EXPECT_LT(db.min_vs(), 3200.0);
  EXPECT_GE(db.min_vs(), basin.min_vs());
}

TEST(EtreeModel, MeshableLikeTheSourceModel) {
  // Meshing through the database yields a mesh of the same scale as meshing
  // the analytic model (piecewise-constant sampling shifts a few elements).
  const vel::BasinModel basin = vel::BasinModel::demo(8000.0);
  vel::EtreeModelOptions eopt;
  eopt.domain_size = 8000.0;
  eopt.level = 5;
  const std::string path = testing::TempDir() + "/cvm_mesh.etree";
  vel::build_etree_model(basin, eopt, path);
  const vel::EtreeVelocityModel db(path, eopt);

  // Pick the target frequency from the DATABASE's velocity floor so the
  // wavelength rule actually drives refinement inside the basin.
  mesh::MeshOptions mopt;
  mopt.domain_size = 8000.0;
  mopt.f_max = db.min_vs() / (8.0 * 200.0);  // finest h ~ 200 m
  mopt.n_lambda = 8.0;
  mopt.min_level = 2;
  mopt.max_level = 5;
  const auto m_db = mesh::generate_mesh(db, mopt);
  // Wavelength adaptivity engaged: multiple levels present.
  const auto stats = mesh::compute_stats(m_db, db, mopt);
  EXPECT_GT(stats.max_level, stats.min_level);
  EXPECT_GT(m_db.n_elements(), 500u);
  // The database was actually exercised.
  EXPECT_GT(db.stats().cache_hits + db.stats().page_reads, 1000u);
}

TEST(EtreeModel, MissingQueryThrows) {
  const vel::HomogeneousModel homo(
      vel::Material::from_velocities(2000.0, 1000.0, 2000.0));
  vel::EtreeModelOptions opt;
  opt.domain_size = 1000.0;
  opt.level = 2;
  const std::string path = testing::TempDir() + "/tiny.etree";
  vel::build_etree_model(homo, opt, path);
  vel::EtreeModelOptions wrong = opt;
  wrong.level = 3;  // querying at the wrong level misses every record
  const vel::EtreeVelocityModel db(path, wrong);
  EXPECT_THROW(db.at(500.0, 500.0, 500.0), std::runtime_error);
}

}  // namespace
