// Tests for the 2D antiplane substrate: grid/element kernels, time marching,
// source time function derivatives, and the fault dipole.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"
#include "quake/wave2d/fault.hpp"
#include "quake/wave2d/march.hpp"
#include "quake/wave2d/sh_model.hpp"
#include "quake/wave2d/stf.hpp"

namespace {

using namespace quake;
using namespace quake::wave2d;

ShGrid grid24() { return ShGrid{24, 16, 100.0}; }

ShModel homogeneous(const ShGrid& g, double mu = 2e9, double rho = 2000.0) {
  return ShModel(g, std::vector<double>(static_cast<std::size_t>(g.n_elems()), mu), rho);
}

TEST(QuadLaplacian, KnownEntries) {
  const auto& k = quad_laplacian_reference();
  // Classic bilinear square Laplacian: diag 2/3, edge -1/6, diagonal -1/3.
  EXPECT_NEAR(k[0], 2.0 / 3.0, 1e-13);
  EXPECT_NEAR(k[1], -1.0 / 6.0, 1e-13);
  EXPECT_NEAR(k[3], -1.0 / 3.0, 1e-13);
  // Row sums vanish.
  for (int i = 0; i < 4; ++i) {
    double s = 0.0;
    for (int j = 0; j < 4; ++j) s += k[static_cast<std::size_t>(i * 4 + j)];
    EXPECT_NEAR(s, 0.0, 1e-13);
  }
}

TEST(ShModel, MassConserved) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  double total = 0.0;
  for (double v : m.mass()) total += v;
  EXPECT_NEAR(total, 2000.0 * g.width() * g.depth(), 1e-3);
}

TEST(ShModel, FreeSurfaceHasNoDamping) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  // Interior surface nodes (k = 0) must carry no dashpot.
  for (int i = 1; i < g.nx; ++i) {
    EXPECT_DOUBLE_EQ(m.damping()[static_cast<std::size_t>(g.node(i, 0))], 0.0);
  }
  // Bottom nodes do.
  EXPECT_GT(m.damping()[static_cast<std::size_t>(g.node(g.nx / 2, g.nz))], 0.0);
}

TEST(ShModel, ApplyKMatchesDeltaForm) {
  const ShGrid g = grid24();
  const std::size_t ne = static_cast<std::size_t>(g.n_elems());
  util::Rng rng(2);
  std::vector<double> mu(ne);
  for (double& v : mu) v = rng.uniform(1e9, 4e9);
  const ShModel m(g, std::vector<double>(mu), 2000.0);
  std::vector<double> u(static_cast<std::size_t>(g.n_nodes()));
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  std::vector<double> y1(u.size(), 0.0), y2(u.size(), 0.0);
  m.apply_k(u, y1);
  m.apply_k_delta(mu, u, y2);  // K'(mu applied as direction) == K(mu)
  EXPECT_LT(util::diff_l2(y1, y2), 1e-9 * util::norm_l2(y1));
}

TEST(ShModel, KFormIsBilinearValue) {
  // accumulate_k_form summed against mu equals lambda^T K u.
  const ShGrid g = grid24();
  const std::size_t ne = static_cast<std::size_t>(g.n_elems());
  util::Rng rng(5);
  std::vector<double> mu(ne);
  for (double& v : mu) v = rng.uniform(1e9, 4e9);
  const ShModel m(g, std::vector<double>(mu), 2000.0);
  std::vector<double> u(static_cast<std::size_t>(g.n_nodes())), lam(u.size());
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (double& v : lam) v = rng.uniform(-1.0, 1.0);
  std::vector<double> ge(ne, 0.0), ku(u.size(), 0.0);
  m.accumulate_k_form(lam, u, ge);
  m.apply_k(u, ku);
  double lhs = 0.0;
  for (std::size_t e = 0; e < ne; ++e) lhs += mu[e] * ge[e];
  EXPECT_NEAR(lhs, util::dot(lam, ku), 1e-6 * std::abs(lhs) + 1e-9);
}

TEST(March, EnergyBoundedAndDecays) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  const double dt = m.stable_dt(0.5);
  const int nt = 1200;
  // Point-load burst in the interior.
  const int src_node = g.node(12, 8);
  MarchResult out = time_march(
      m, {dt, nt},
      [&](int k, double, std::span<double> f) {
        if (k < 20) f[static_cast<std::size_t>(src_node)] = 1e9;
      },
      std::vector<int>{g.node(6, 0)}, /*store_history=*/true);
  // Field bounded, and late-time amplitude far below peak (waves absorbed).
  double peak = 0.0;
  for (const auto& u : out.history) peak = std::max(peak, util::norm_max(u));
  EXPECT_GT(peak, 0.0);
  // 2D waves leave slow 1/sqrt(t) coda (no Huygens principle in 2D), so
  // the late field is small but not tiny.
  EXPECT_LT(util::norm_max(out.history.back()), 0.25 * peak);
}

TEST(March, RecordsMatchHistory) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  const double dt = m.stable_dt(0.5);
  const int rx = g.node(5, 0);
  MarchResult out = time_march(
      m, {dt, 100},
      [&](int k, double, std::span<double> f) {
        if (k == 0) f[static_cast<std::size_t>(g.node(12, 8))] = 1e9;
      },
      std::vector<int>{rx}, true);
  for (int k = 0; k < 100; ++k) {
    EXPECT_DOUBLE_EQ(out.records[0][static_cast<std::size_t>(k)],
                     out.history[static_cast<std::size_t>(k)][static_cast<std::size_t>(rx)]);
  }
}

TEST(Stepper, MatchesMarch) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  const double dt = m.stable_dt(0.5);
  const RhsFn rhs = [&](int k, double, std::span<double> f) {
    if (k < 5) f[static_cast<std::size_t>(g.node(10, 5))] = 1e8;
  };
  MarchResult out = time_march(m, {dt, 50}, rhs, {}, true);
  ShStepper st(m, dt);
  for (int k = 0; k < 50; ++k) {
    st.step(k, rhs);
    EXPECT_LT(util::diff_l2(st.u(), out.history[static_cast<std::size_t>(k)]), 1e-14);
  }
}

TEST(Stepper, RestartFromStoredStateIsExact) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  const double dt = m.stable_dt(0.5);
  const RhsFn rhs = [&](int k, double, std::span<double> f) {
    if (k < 5) f[static_cast<std::size_t>(g.node(10, 5))] = 1e8;
  };
  ShStepper a(m, dt);
  for (int k = 0; k < 20; ++k) a.step(k, rhs);
  const std::vector<double> u20 = a.u(), u19 = a.u_prev();
  for (int k = 20; k < 40; ++k) a.step(k, rhs);

  ShStepper b(m, dt);
  b.set_state(u20, u19);
  for (int k = 20; k < 40; ++k) b.step(k, rhs);
  EXPECT_LT(util::diff_l2(a.u(), b.u()), 1e-15);
}

TEST(Stf, DerivativesMatchFiniteDifferences) {
  const double t0 = 1.3;
  const double eps = 1e-6;
  for (double t : {0.2, 0.55, 0.9, 1.1}) {
    const double fd_t = (ramp_g(t + eps, t0) - ramp_g(t - eps, t0)) / (2 * eps);
    EXPECT_NEAR(ramp_g_dot(t, t0), fd_t, 1e-6);
    const double fd_t0 =
        (ramp_g(t, t0 + eps) - ramp_g(t, t0 - eps)) / (2 * eps);
    EXPECT_NEAR(ramp_g_dt0(t, t0), fd_t0, 1e-6);
  }
}

TEST(Fault, RuptureParamsDelayGrowsFromHypocenter) {
  const ShGrid g = grid24();
  const Fault2d fault{12, 4, 12};
  const auto p = make_rupture_params(g, fault, 1.0, 0.8, 8, 2000.0);
  EXPECT_DOUBLE_EQ(p.T[4], 0.0);  // hypocenter (k = 8 is index 4)
  EXPECT_GT(p.T[0], 0.0);
  EXPECT_GT(p.T[8], 0.0);
  EXPECT_NEAR(p.T[0], 4 * 100.0 / 2000.0, 1e-12);
}

TEST(Fault, ForcesAreEquilibratedCouples) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  const Fault2d fault{12, 4, 12};
  const FaultSource2d src(g, fault);
  const auto p = make_rupture_params(g, fault, 1.5, 0.8, 8, 2000.0);
  std::vector<double> f(static_cast<std::size_t>(g.n_nodes()), 0.0);
  src.add_forces(m, p, 0.6, f);
  double sum = 0.0, amax = 0.0;
  for (double v : f) {
    sum += v;
    amax = std::max(amax, std::abs(v));
  }
  EXPECT_GT(amax, 0.0);
  EXPECT_NEAR(sum, 0.0, 1e-9 * amax);
}

TEST(Fault, DeltaParamsMatchesFiniteDifference) {
  const ShGrid g = grid24();
  const ShModel m = homogeneous(g);
  const Fault2d fault{12, 4, 12};
  const FaultSource2d src(g, fault);
  auto p = make_rupture_params(g, fault, 1.5, 0.8, 8, 2000.0);
  const std::size_t np = p.u0.size();
  const std::size_t nn = static_cast<std::size_t>(g.n_nodes());
  util::Rng rng(7);
  std::vector<double> du0(np), dt0(np), dT(np);
  for (auto* v : {&du0, &dt0, &dT}) {
    for (double& x : *v) x = rng.uniform(-1.0, 1.0);
  }
  const double t = 0.63, eps = 1e-7;
  std::vector<double> f_lin(nn, 0.0);
  src.add_forces_delta_params(m, p, du0, dt0, dT, t, f_lin);

  auto eval = [&](double sgn) {
    SourceParams2d q = p;
    for (std::size_t j = 0; j < np; ++j) {
      q.u0[j] += sgn * eps * du0[j];
      q.t0[j] += sgn * eps * dt0[j];
      q.T[j] += sgn * eps * dT[j];
    }
    std::vector<double> f(nn, 0.0);
    src.add_forces(m, q, t, f);
    return f;
  };
  const auto fp = eval(+1.0), fm = eval(-1.0);
  std::vector<double> fd(nn);
  for (std::size_t i = 0; i < nn; ++i) fd[i] = (fp[i] - fm[i]) / (2 * eps);
  EXPECT_LT(util::diff_l2(f_lin, fd), 1e-4 * (1.0 + util::norm_l2(fd)));
}

TEST(Fault, DeltaMuMatchesFiniteDifference) {
  const ShGrid g = grid24();
  const std::size_t ne = static_cast<std::size_t>(g.n_elems());
  const std::size_t nn = static_cast<std::size_t>(g.n_nodes());
  util::Rng rng(9);
  std::vector<double> mu(ne);
  for (double& v : mu) v = rng.uniform(1e9, 3e9);
  std::vector<double> dmu(ne);
  for (double& v : dmu) v = rng.uniform(-1e8, 1e8);

  const Fault2d fault{12, 4, 12};
  const FaultSource2d src(g, fault);
  SourceParams2d p = make_rupture_params(g, fault, 1.5, 0.8, 8, 2000.0);
  const double t = 0.63, eps = 1e-6;

  const ShModel m0(g, std::vector<double>(mu), 2000.0);
  std::vector<double> f_lin(nn, 0.0);
  src.add_forces_delta_mu(m0, p, dmu, t, f_lin);

  auto eval = [&](double sgn) {
    std::vector<double> mu_p(ne);
    for (std::size_t e = 0; e < ne; ++e) mu_p[e] = mu[e] + sgn * eps * dmu[e];
    const ShModel mm(g, std::move(mu_p), 2000.0);
    std::vector<double> f(nn, 0.0);
    src.add_forces(mm, p, t, f);
    return f;
  };
  const auto fp = eval(+1.0), fm = eval(-1.0);
  std::vector<double> fd(nn);
  for (std::size_t i = 0; i < nn; ++i) fd[i] = (fp[i] - fm[i]) / (2 * eps);
  EXPECT_LT(util::diff_l2(f_lin, fd), 1e-5 * (1.0 + util::norm_l2(fd)));
}

TEST(Fault, RejectsOutOfGridPlacement) {
  const ShGrid g = grid24();
  EXPECT_THROW(FaultSource2d(g, Fault2d{0, 2, 5}), std::invalid_argument);
  EXPECT_THROW(FaultSource2d(g, Fault2d{12, 5, 2}), std::invalid_argument);
}

}  // namespace
