// Parameterized property sweeps across modules: octant algebra invariants,
// balancing over random trees and scopes, filter frequency response,
// communicator oversubscription, and wavelength-rule monotonicity.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "quake/mesh/meshgen.hpp"
#include "quake/octree/linear_octree.hpp"
#include "quake/par/communicator.hpp"
#include "quake/util/filter.hpp"
#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake;
using namespace quake::octree;

// -- octant algebra -----------------------------------------------------

class OctantLevel : public ::testing::TestWithParam<int> {};

TEST_P(OctantLevel, ChildContainmentAndParentInverse) {
  const int level = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(level) + 1);
  for (int trial = 0; trial < 200; ++trial) {
    // Random octant at `level` by descending random children.
    Octant o{};
    for (int l = 0; l < level; ++l) {
      o = o.child(static_cast<int>(rng.next_u64() % 8));
    }
    EXPECT_EQ(o.level, level);
    for (int c = 0; c < 8; ++c) {
      const Octant ch = o.child(c);
      EXPECT_TRUE(o.contains(ch));
      EXPECT_EQ(ch.parent(), o);
      EXPECT_EQ(ch.ancestor_at(o.level), o);
    }
    // Neighbor relation is symmetric: o.neighbor(d).neighbor(-d) == o.
    for (const auto& d : kNeighborDirs) {
      const auto n = o.neighbor(d[0], d[1], d[2]);
      if (!n) continue;
      const auto back = n->neighbor(-d[0], -d[1], -d[2]);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, o);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, OctantLevel, ::testing::Values(1, 3, 7, 15));

TEST(OctantProperty, MortonOrderEqualsPreorderOfLeaves) {
  // Leaves of any tree are emitted in strictly increasing Morton order, and
  // the Morton ranges are exactly contiguous (covering <-> no gaps).
  util::Rng rng(17);
  auto policy = [&rng](const Octant& o) {
    return o.level < 2 || (o.level < 5 && rng.uniform() < 0.4);
  };
  const LinearOctree t = build_octree(policy, 5);
  ASSERT_TRUE(t.validate(true));
  std::uint64_t next = 0;
  for (const Octant& o : t.leaves()) {
    EXPECT_EQ(o.morton(), next);
    next = o.morton() +
           (std::uint64_t{1} << (3 * (kMaxLevel - o.level)));
  }
}

class BalanceRandom
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, BalanceScope>> {
};

TEST_P(BalanceRandom, BalancedClosureIsMinimalAndIdempotent) {
  const auto [seed, scope] = GetParam();
  util::Rng rng(seed);
  auto policy = [&rng](const Octant& o) {
    return rng.uniform() < 1.2 / (1 + o.level);
  };
  const LinearOctree t = build_octree(policy, 6);
  const LinearOctree b = balance(t, scope);
  EXPECT_TRUE(is_balanced(b, scope));
  EXPECT_TRUE(b.validate(true));
  // Idempotent: balancing a balanced tree changes nothing.
  const LinearOctree b2 = balance(b, scope);
  EXPECT_EQ(b2.size(), b.size());
  // Refinement-only: every original leaf is present or refined.
  for (const Octant& o : t.leaves()) {
    const auto idx = b.find_containing(o.x, o.y, o.z);
    ASSERT_TRUE(idx.has_value());
    EXPECT_GE(b[*idx].level, o.level);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BalanceRandom,
    ::testing::Combine(::testing::Values(3u, 1234u, 999u),
                       ::testing::Values(BalanceScope::kFaces,
                                         BalanceScope::kAll)));

// -- filter frequency response ------------------------------------------

class FilterResponse : public ::testing::TestWithParam<double> {};

TEST_P(FilterResponse, GainNearUnityInPassbandAndSmallInStopband) {
  const double fc = GetParam();
  const double fs = 100.0;
  auto gain_at = [&](double f) {
    const int n = 6000;
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] =
          std::sin(2.0 * std::numbers::pi * f * i / fs);
    }
    const auto y = util::lowpass_zero_phase(x, fc, fs);
    // Interior RMS ratio.
    double sx = 0.0, sy = 0.0;
    for (int i = 1000; i < 5000; ++i) {
      sx += x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
      sy += y[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
    }
    return std::sqrt(sy / sx);
  };
  EXPECT_NEAR(gain_at(fc / 8.0), 1.0, 0.02);
  // Zero-phase doubling of the 2nd-order rolloff: ~1/2 at cutoff.
  EXPECT_NEAR(gain_at(fc), 0.5, 0.06);
  EXPECT_LT(gain_at(4.0 * fc), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, FilterResponse,
                         ::testing::Values(1.0, 2.5, 6.0));

// -- communicator stress --------------------------------------------------

class CommRanks : public ::testing::TestWithParam<int> {};

TEST_P(CommRanks, RingPassAndReductionsOversubscribed) {
  const int r = GetParam();
  par::Communicator comm(r);
  comm.run([&](par::Rank& rank) {
    // Ring: pass a growing token around twice.
    const int next = (rank.id() + 1) % rank.size();
    const int prev = (rank.id() + rank.size() - 1) % rank.size();
    double token = 0.0;
    if (rank.id() == 0) {
      std::vector<double> t = {1.0};
      rank.send(next, 0, t);
    }
    for (int lap = 0; lap < 2; ++lap) {
      const auto msg = rank.recv(prev, 0);
      token = msg[0] + 1.0;
      if (!(lap == 1 && rank.id() == 0)) {
        std::vector<double> t = {token};
        rank.send(next, 0, t);
      }
    }
    if (rank.id() == 0) {
      EXPECT_DOUBLE_EQ(token, 2.0 * rank.size() + 1.0);  // 1 + one increment per recv
    }
    // Interleaved reductions still agree.
    for (int round = 0; round < 3; ++round) {
      const double s = rank.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, rank.size());
      rank.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommRanks, ::testing::Values(2, 5, 16, 32));

// -- wavelength rule monotonicity -----------------------------------------

TEST(MeshProperty, HigherFrequencyNeverCoarsensTheMesh) {
  const vel::BasinModel basin = vel::BasinModel::demo(16000.0);
  std::size_t prev = 0;
  for (double f : {0.02, 0.04, 0.08, 0.16}) {
    mesh::MeshOptions opt;
    opt.domain_size = 16000.0;
    opt.f_max = f;
    opt.n_lambda = 8.0;
    opt.min_level = 2;
    opt.max_level = 6;
    const auto m = mesh::generate_mesh(basin, opt);
    EXPECT_GE(m.n_elements(), prev);
    prev = m.n_elements();
  }
}

TEST(MeshProperty, MorePointsPerWavelengthRefines) {
  const vel::BasinModel basin = vel::BasinModel::demo(16000.0);
  std::size_t prev = 0;
  for (double nl : {4.0, 8.0, 16.0}) {
    mesh::MeshOptions opt;
    opt.domain_size = 16000.0;
    opt.f_max = 0.05;
    opt.n_lambda = nl;
    opt.min_level = 2;
    opt.max_level = 6;
    const auto m = mesh::generate_mesh(basin, opt);
    EXPECT_GE(m.n_elements(), prev);
    prev = m.n_elements();
  }
}

}  // namespace
