// Cross-module integration tests: the full forward pipeline (model -> mesh
// -> operator -> solver), multiresolution accuracy, attenuation behavior,
// and out-of-core meshing feeding the solver.

#include <gtest/gtest.h>

#include <cmath>

#include "quake/mesh/meshgen.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake;

// A small two-layer model with moderate contrast: the adaptive mesher puts
// fine elements in the soft layer and coarse ones below.
vel::LayeredModel two_layer() {
  return vel::LayeredModel(
      {{400.0, vel::Material::from_velocities(1200.0, 600.0, 2000.0)},
       {0.0, vel::Material::from_velocities(3460.0, 2000.0, 2400.0)}});
}

std::vector<double> run_scenario(const mesh::HexMesh& mesh, double t_end,
                                 double dt) {
  solver::OperatorOptions oo;
  const solver::ElasticOperator op(mesh, oo);
  solver::SolverOptions so;
  so.t_end = t_end;
  so.dt = dt;
  solver::ExplicitSolver solver(op, so);
  const double L = mesh.domain.size;
  // Source inside the soft layer, where both meshes are equally fine; the
  // rock (coarse in the adaptive mesh) only carries the fast long waves.
  const solver::PointSource src(mesh, {0.5 * L, 0.5 * L, 200.0},
                                {1.0, 0.0, 0.5}, 1e13, 1.2, 1.2);
  solver.add_source(&src);
  solver.add_receiver({0.3 * L, 0.5 * L, 0.0});
  solver.run();
  return solver.receiver_component(0, 0);
}

TEST(Pipeline, AdaptiveMeshMatchesUniformFineMesh) {
  // The multiresolution mesh must reproduce the uniform-fine-mesh solution:
  // the whole point of wavelength-adaptive octrees (§2).
  const auto model = two_layer();
  const double L = 3200.0;

  mesh::MeshOptions fine;
  fine.domain_size = L;
  fine.f_max = 1e-9;
  fine.min_level = 5;
  fine.max_level = 5;  // uniform h = 100 m
  const auto mesh_fine = mesh::generate_mesh(model, fine);

  mesh::MeshOptions adapt;
  adapt.domain_size = L;
  adapt.f_max = 0.75;  // resolves the soft layer at h=100, rock coarser
  adapt.n_lambda = 8.0;
  adapt.min_level = 3;
  adapt.max_level = 5;
  const auto mesh_adapt = mesh::generate_mesh(model, adapt);

  ASSERT_LT(mesh_adapt.n_elements(), mesh_fine.n_elements() / 2);
  ASSERT_GT(mesh_adapt.n_hanging(), 0u);

  const double dt = 0.008;
  const auto rec_fine = run_scenario(mesh_fine, 3.0, dt);
  const auto rec_adapt = run_scenario(mesh_adapt, 3.0, dt);
  ASSERT_EQ(rec_fine.size(), rec_adapt.size());
  EXPECT_GT(util::norm_max(rec_fine), 0.0);
  EXPECT_GT(util::correlation(rec_fine, rec_adapt), 0.97);
  EXPECT_LT(util::rel_l2(rec_adapt, rec_fine), 0.25);
}

TEST(Pipeline, OutOfCoreMeshRunsIdentically) {
  const auto model = two_layer();
  mesh::MeshOptions opt;
  opt.domain_size = 3200.0;
  opt.f_max = 0.5;
  opt.n_lambda = 8.0;
  opt.min_level = 3;
  opt.max_level = 4;
  const auto m1 = mesh::generate_mesh(model, opt);
  const auto m2 = mesh::generate_mesh_out_of_core(
      model, opt, testing::TempDir() + "/integration.etree");
  const auto r1 = run_scenario(m1, 1.5, 0.01);
  const auto r2 = run_scenario(m2, 1.5, 0.01);
  ASSERT_EQ(r1.size(), r2.size());
  EXPECT_LT(util::diff_l2(r1, r2), 1e-12 * (1.0 + util::norm_l2(r1)));
}

TEST(Pipeline, RayleighDampingAttenuates) {
  const auto model = two_layer();
  mesh::MeshOptions opt;
  opt.domain_size = 3200.0;
  opt.f_max = 0.6;
  opt.n_lambda = 8.0;
  opt.min_level = 3;
  opt.max_level = 5;
  const auto mesh = mesh::generate_mesh(model, opt);

  auto run = [&](bool damped) {
    solver::OperatorOptions oo;
    oo.rayleigh = damped;
    oo.damping_f_min = 0.1;
    oo.damping_f_max = 1.0;
    const solver::ElasticOperator op(mesh, oo);
    solver::SolverOptions so;
    so.t_end = 3.0;
    so.dt = 0.008;
    solver::ExplicitSolver solver(op, so);
    const solver::PointSource src(mesh, {1600.0, 1600.0, 1800.0},
                                  {1.0, 0.0, 0.0}, 1e13, 1.0, 1.2);
    solver.add_source(&src);
    solver.add_receiver({800.0, 1600.0, 0.0});
    solver.run();
    return util::norm_max(solver.receiver_component(0, 0));
  };
  const double peak_undamped = run(false);
  const double peak_damped = run(true);
  EXPECT_GT(peak_undamped, 0.0);
  EXPECT_LT(peak_damped, peak_undamped);
  EXPECT_GT(peak_damped, 0.3 * peak_undamped);  // a few % damping, not a wall
}

TEST(Pipeline, FaultRuptureProducesDirectivity) {
  // Unilateral rupture focuses motion ahead of the rupture front (Fig 2.5).
  const vel::BasinModel basin = vel::BasinModel::demo(12800.0);
  mesh::MeshOptions opt;
  opt.domain_size = 12800.0;
  opt.f_max = 0.15;
  opt.n_lambda = 8.0;
  opt.min_level = 3;
  opt.max_level = 5;
  const auto mesh = mesh::generate_mesh(basin, opt);

  solver::FaultSource::Spec fs;
  fs.y = 6400.0;
  fs.x0 = 3500.0;
  fs.x1 = 7500.0;
  fs.z_top = 1000.0;
  fs.z_bot = 4000.0;
  fs.hypocenter = {3700.0, 3000.0};  // -x end: rupture runs toward +x
  fs.rupture_velocity = 2800.0;
  fs.rise_time = 1.5;
  fs.slip = 1.0;
  const solver::FaultSource src(mesh, fs);

  solver::OperatorOptions oo;
  const solver::ElasticOperator op(mesh, oo);
  solver::SolverOptions so;
  so.t_end = 8.0;
  so.cfl_fraction = 0.4;
  solver::ExplicitSolver solver(op, so);
  solver.add_source(&src);
  const std::size_t fwd = solver.add_receiver({9500.0, 6400.0, 0.0});
  const std::size_t bwd = solver.add_receiver({1700.0, 6400.0, 0.0});
  solver.run();
  const double peak_fwd = util::norm_max(solver.receiver_component(fwd, 0));
  const double peak_bwd = util::norm_max(solver.receiver_component(bwd, 0));
  EXPECT_GT(peak_fwd, 1.3 * peak_bwd);
}

TEST(Pipeline, StaceyAndLysmerAgreeInInterior) {
  // The two ABC variants differ only in boundary terms; interior records of
  // the early wavefield must be close.
  const auto model = two_layer();
  mesh::MeshOptions opt;
  opt.domain_size = 3200.0;
  opt.f_max = 0.5;
  opt.n_lambda = 8.0;
  opt.min_level = 3;
  opt.max_level = 5;
  const auto mesh = mesh::generate_mesh(model, opt);

  auto run = [&](fem::AbcType abc) {
    solver::OperatorOptions oo;
    oo.abc = abc;
    const solver::ElasticOperator op(mesh, oo);
    solver::SolverOptions so;
    so.t_end = 2.5;
    so.dt = 0.008;
    solver::ExplicitSolver solver(op, so);
    const solver::PointSource src(mesh, {1600.0, 1600.0, 1500.0},
                                  {0.7, 0.7, 0.0}, 1e13, 1.0, 1.0);
    solver.add_source(&src);
    solver.add_receiver({1400.0, 1700.0, 0.0});
    solver.run();
    return solver.receiver_component(0, 0);
  };
  const auto a = run(fem::AbcType::kStacey);
  const auto b = run(fem::AbcType::kLysmer);
  EXPECT_GT(util::correlation(a, b), 0.99);
}

}  // namespace
