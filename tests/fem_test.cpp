// Tests for the hexahedral element kernels, absorbing-boundary face
// matrices, and the Rayleigh damping fit.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "quake/fem/abc.hpp"
#include "quake/fem/hex_element.hpp"
#include "quake/fem/rayleigh.hpp"
#include "quake/util/rng.hpp"

namespace {

using namespace quake::fem;

std::array<double, 3> corner(int i) {
  return {static_cast<double>(i & 1), static_cast<double>((i >> 1) & 1),
          static_cast<double>((i >> 2) & 1)};
}

TEST(HexReference, MatricesAreSymmetric) {
  const HexReference& ref = HexReference::get();
  for (int r = 0; r < kHexDofs; ++r) {
    for (int c = 0; c < kHexDofs; ++c) {
      const std::size_t rc = static_cast<std::size_t>(r * kHexDofs + c);
      const std::size_t cr = static_cast<std::size_t>(c * kHexDofs + r);
      EXPECT_NEAR(ref.k_lambda[rc], ref.k_lambda[cr], 1e-14);
      EXPECT_NEAR(ref.k_mu[rc], ref.k_mu[cr], 1e-14);
    }
  }
}

TEST(HexReference, TranslationsInNullSpace) {
  const HexReference& ref = HexReference::get();
  for (int axis = 0; axis < 3; ++axis) {
    std::array<double, kHexDofs> u{}, y{};
    for (int i = 0; i < 8; ++i) u[static_cast<std::size_t>(3 * i + axis)] = 1.0;
    hex_apply(ref, u.data(), 1.0, 1.0, y.data(), 0.0, nullptr);
    for (double v : y) EXPECT_NEAR(v, 0.0, 1e-13);
  }
}

TEST(HexReference, RigidRotationsInNullSpace) {
  const HexReference& ref = HexReference::get();
  // u = omega x (x - x0): linear field, zero strain.
  const std::array<double, 3> omega = {0.3, -0.7, 1.1};
  std::array<double, kHexDofs> u{}, y{};
  for (int i = 0; i < 8; ++i) {
    const auto x = corner(i);
    u[static_cast<std::size_t>(3 * i + 0)] = omega[1] * x[2] - omega[2] * x[1];
    u[static_cast<std::size_t>(3 * i + 1)] = omega[2] * x[0] - omega[0] * x[2];
    u[static_cast<std::size_t>(3 * i + 2)] = omega[0] * x[1] - omega[1] * x[0];
  }
  hex_apply(ref, u.data(), 1.3, 2.7, y.data(), 0.0, nullptr);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(HexReference, PositiveSemiDefinite) {
  const HexReference& ref = HexReference::get();
  quake::util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<double, kHexDofs> u{}, y{};
    for (double& v : u) v = rng.uniform(-1.0, 1.0);
    hex_apply(ref, u.data(), 1.0, 1.0, y.data(), 0.0, nullptr);
    double quad = 0.0;
    for (int d = 0; d < kHexDofs; ++d) {
      quad += u[static_cast<std::size_t>(d)] * y[static_cast<std::size_t>(d)];
    }
    EXPECT_GE(quad, -1e-12);
  }
}

TEST(HexReference, ScalarLaplacianKnownDiagonal) {
  // Trilinear Poisson element on the unit cube: diagonal entries are 1/3.
  const HexReference& ref = HexReference::get();
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(ref.k_scalar[static_cast<std::size_t>(i * 8 + i)], 1.0 / 3.0,
                1e-12);
  }
  // Row sums vanish (constants in the null space).
  for (int i = 0; i < 8; ++i) {
    double s = 0.0;
    for (int j = 0; j < 8; ++j) {
      s += ref.k_scalar[static_cast<std::size_t>(i * 8 + j)];
    }
    EXPECT_NEAR(s, 0.0, 1e-13);
  }
}

TEST(HexReference, UniaxialPatchEnergy) {
  // u_x = x (unit uniaxial strain): energy density = (lambda/2 + mu), so
  // u^T K u = 2 * (lambda/2 + mu) * volume = lambda + 2 mu on the unit cube.
  const HexReference& ref = HexReference::get();
  const double lambda = 1.7, mu = 0.9;
  std::array<double, kHexDofs> u{}, y{};
  for (int i = 0; i < 8; ++i) {
    u[static_cast<std::size_t>(3 * i)] = corner(i)[0];
  }
  hex_apply(ref, u.data(), lambda, mu, y.data(), 0.0, nullptr);
  double quad = 0.0;
  for (int d = 0; d < kHexDofs; ++d) {
    quad += u[static_cast<std::size_t>(d)] * y[static_cast<std::size_t>(d)];
  }
  EXPECT_NEAR(quad, lambda + 2.0 * mu, 1e-12);
}

TEST(HexApply, MatchesDiagonalExtraction) {
  const HexReference& ref = HexReference::get();
  std::array<double, kHexDofs> diag;
  hex_diagonal(ref, 2.0, 3.0, diag);
  for (int d = 0; d < kHexDofs; ++d) {
    std::array<double, kHexDofs> u{}, y{};
    u[static_cast<std::size_t>(d)] = 1.0;
    hex_apply(ref, u.data(), 2.0, 3.0, y.data(), 0.0, nullptr);
    EXPECT_NEAR(y[static_cast<std::size_t>(d)], diag[static_cast<std::size_t>(d)],
                1e-14);
  }
}

TEST(HexApply, DampingAccumulatorIsScaledCopy) {
  const HexReference& ref = HexReference::get();
  quake::util::Rng rng(8);
  std::array<double, kHexDofs> u{}, y{}, d{};
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  const double beta = 0.037;
  hex_apply(ref, u.data(), 1.1, 0.6, y.data(), beta, d.data());
  for (int i = 0; i < kHexDofs; ++i) {
    EXPECT_NEAR(d[static_cast<std::size_t>(i)],
                beta * y[static_cast<std::size_t>(i)], 1e-13);
  }
}

TEST(HexReference, TransposedMatricesAreExactCopies) {
  // The blocked hex_apply reads k_lambda_t / k_mu_t; they must be bitwise
  // transposes of the row-major originals or the kernel multiplies
  // different values than the reference.
  const HexReference& ref = HexReference::get();
  for (int r = 0; r < kHexDofs; ++r) {
    for (int c = 0; c < kHexDofs; ++c) {
      const std::size_t rc = static_cast<std::size_t>(r * kHexDofs + c);
      const std::size_t cr = static_cast<std::size_t>(c * kHexDofs + r);
      EXPECT_EQ(ref.k_lambda[rc], ref.k_lambda_t[cr]);
      EXPECT_EQ(ref.k_mu[rc], ref.k_mu_t[cr]);
    }
  }
}

TEST(HexApplyVectorized, BitwiseMatchesReference) {
  // The blocked kernel must be bitwise identical to the straight-line
  // reference — every downstream contract (warm-vs-cold, batch-vs-solo,
  // recovery-vs-undisturbed) assumes the element apply is deterministic to
  // the last bit. Randomized inputs, damping on and off, nonzero initial
  // accumulators (the kernel adds into y).
  const HexReference& ref = HexReference::get();
  quake::util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<double, kHexDofs> u{}, y_a{}, y_b{}, d_a{}, d_b{};
    for (double& v : u) v = rng.uniform(-1.0, 1.0);
    for (int i = 0; i < kHexDofs; ++i) {
      y_a[static_cast<std::size_t>(i)] = y_b[static_cast<std::size_t>(i)] =
          rng.uniform(-1.0, 1.0);
      d_a[static_cast<std::size_t>(i)] = d_b[static_cast<std::size_t>(i)] =
          rng.uniform(-1.0, 1.0);
    }
    const double sl = rng.uniform(0.1, 4.0);
    const double sm = rng.uniform(0.1, 4.0);
    const bool damp = (trial % 2) == 0;
    const double beta = damp ? rng.uniform(0.0, 0.1) : 0.0;
    hex_apply(ref, u.data(), sl, sm, y_a.data(), beta,
              damp ? d_a.data() : nullptr);
    hex_apply_ref(ref, u.data(), sl, sm, y_b.data(), beta,
                  damp ? d_b.data() : nullptr);
    for (int i = 0; i < kHexDofs; ++i) {
      EXPECT_EQ(y_a[static_cast<std::size_t>(i)],
                y_b[static_cast<std::size_t>(i)]);
      EXPECT_EQ(d_a[static_cast<std::size_t>(i)],
                d_b[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(HexApplyVectorized, BatchBitwiseMatchesReferenceAllLanes) {
  // Every lane width 1..kMaxBatchLanes (covering both the fixed-width
  // dispatch cases and the generic fallback), damping on/off: the
  // dispatched batch kernel must match hex_apply_batch_ref bitwise, and
  // each lane must match a solo hex_apply_ref on its deinterleaved data.
  const HexReference& ref = HexReference::get();
  quake::util::Rng rng(23);
  for (int lanes = 1; lanes <= kMaxBatchLanes; ++lanes) {
    const std::size_t n = static_cast<std::size_t>(kHexDofs * lanes);
    for (int rep = 0; rep < 4; ++rep) {
      const bool damp = (rep % 2) == 0;
      std::vector<double> u(n), y0(n), d0(n);
      for (double& v : u) v = rng.uniform(-1.0, 1.0);
      for (std::size_t i = 0; i < n; ++i) {
        y0[i] = rng.uniform(-1.0, 1.0);
        d0[i] = rng.uniform(-1.0, 1.0);
      }
      const double sl = rng.uniform(0.1, 4.0);
      const double sm = rng.uniform(0.1, 4.0);
      const double beta = damp ? rng.uniform(0.0, 0.1) : 0.0;
      std::vector<double> y_a = y0, y_b = y0, d_a = d0, d_b = d0;
      hex_apply_batch(ref, u.data(), lanes, sl, sm, y_a.data(), beta,
                      damp ? d_a.data() : nullptr);
      hex_apply_batch_ref(ref, u.data(), lanes, sl, sm, y_b.data(), beta,
                          damp ? d_b.data() : nullptr);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(y_a[i], y_b[i]) << "lanes=" << lanes << " i=" << i;
        EXPECT_EQ(d_a[i], d_b[i]) << "lanes=" << lanes << " i=" << i;
      }
      // Per-lane identity against the solo reference kernel on the same
      // initial accumulators, deinterleaved.
      for (int s = 0; s < lanes; ++s) {
        std::array<double, kHexDofs> us{}, ys{}, ds{};
        for (int dof = 0; dof < kHexDofs; ++dof) {
          const std::size_t bi = static_cast<std::size_t>(dof * lanes + s);
          us[static_cast<std::size_t>(dof)] = u[bi];
          ys[static_cast<std::size_t>(dof)] = y0[bi];
          ds[static_cast<std::size_t>(dof)] = d0[bi];
        }
        hex_apply_ref(ref, us.data(), sl, sm, ys.data(), beta,
                      damp ? ds.data() : nullptr);
        for (int dof = 0; dof < kHexDofs; ++dof) {
          const std::size_t bi = static_cast<std::size_t>(dof * lanes + s);
          EXPECT_EQ(y_a[bi], ys[static_cast<std::size_t>(dof)])
              << "lanes=" << lanes << " lane=" << s << " dof=" << dof;
          EXPECT_EQ(d_a[bi], ds[static_cast<std::size_t>(dof)])
              << "lanes=" << lanes << " lane=" << s << " dof=" << dof;
        }
      }
    }
  }
}

TEST(HexApplyBatch, RejectsBadLaneCount) {
  // Regression: this used to be only an assert, so release callers with an
  // oversized width silently overflowed the kernel's stack accumulators.
  const HexReference& ref = HexReference::get();
  std::vector<double> u(static_cast<std::size_t>(kHexDofs) *
                            (kMaxBatchLanes + 1),
                        0.0);
  std::vector<double> y = u;
  EXPECT_THROW(hex_apply_batch(ref, u.data(), 0, 1.0, 1.0, y.data(), 0.0,
                               nullptr),
               std::invalid_argument);
  EXPECT_THROW(hex_apply_batch(ref, u.data(), -3, 1.0, 1.0, y.data(), 0.0,
                               nullptr),
               std::invalid_argument);
  EXPECT_THROW(hex_apply_batch(ref, u.data(), kMaxBatchLanes + 1, 1.0, 1.0,
                               y.data(), 0.0, nullptr),
               std::invalid_argument);
  EXPECT_THROW(hex_apply_batch_ref(ref, u.data(), kMaxBatchLanes + 1, 1.0,
                                   1.0, y.data(), 0.0, nullptr),
               std::invalid_argument);
}

TEST(HexApplyElems, MatchesElementAtATimeBitwise) {
  // The element-batch entry point must be a pure restructure: each packed
  // element sees exactly the solo hex_apply sequence.
  const HexReference& ref = HexReference::get();
  quake::util::Rng rng(31);
  constexpr int kN = 11;  // odd, so a non-multiple of any pack width
  std::vector<double> u(static_cast<std::size_t>(kN) * kHexDofs);
  std::vector<double> y_a(u.size(), 0.0), y_b(u.size(), 0.0);
  std::vector<double> d_a(u.size(), 0.0), d_b(u.size(), 0.0);
  std::array<double, kN> sl, sm, beta;
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (int e = 0; e < kN; ++e) {
    sl[static_cast<std::size_t>(e)] = rng.uniform(0.1, 4.0);
    sm[static_cast<std::size_t>(e)] = rng.uniform(0.1, 4.0);
    beta[static_cast<std::size_t>(e)] = rng.uniform(0.0, 0.1);
  }
  hex_apply_elems(ref, u.data(), kN, sl.data(), sm.data(), y_a.data(),
                  beta.data(), d_a.data());
  for (int e = 0; e < kN; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * kHexDofs;
    hex_apply(ref, u.data() + off, sl[static_cast<std::size_t>(e)],
              sm[static_cast<std::size_t>(e)], y_b.data() + off,
              beta[static_cast<std::size_t>(e)], d_b.data() + off);
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_EQ(y_a[i], y_b[i]);
    EXPECT_EQ(d_a[i], d_b[i]);
  }
}

TEST(FaceReference, RowSumsVanish) {
  const FaceReference& ref = FaceReference::get();
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < 4; ++i) {
      double s = 0.0;
      for (int j = 0; j < 4; ++j) {
        s += ref.d[static_cast<std::size_t>(t)][static_cast<std::size_t>(i * 4 + j)];
      }
      EXPECT_NEAR(s, 0.0, 1e-14);
    }
  }
}

TEST(FaceReference, ColumnSumsAreHalf) {
  // sum_i integral(N_i dN_j/dxi) = integral(dN_j/dxi) = +/- 1/2.
  const FaceReference& ref = FaceReference::get();
  for (int t = 0; t < 2; ++t) {
    for (int j = 0; j < 4; ++j) {
      double s = 0.0;
      for (int i = 0; i < 4; ++i) {
        s += ref.d[static_cast<std::size_t>(t)][static_cast<std::size_t>(i * 4 + j)];
      }
      EXPECT_NEAR(std::abs(s), 0.5, 1e-13);
    }
  }
}

TEST(Abc, DashpotImpedances) {
  const auto m = quake::vel::Material::from_velocities(2000.0, 1000.0, 2000.0);
  const double h = 10.0;
  const auto c = face_dashpot_coeffs(m, h, quake::mesh::BoundarySide::kXMax);
  // Normal (x) component carries rho*vp, tangentials rho*vs; area h^2/4.
  EXPECT_NEAR(c[0], 2000.0 * 2000.0 * 25.0, 1e-6);
  EXPECT_NEAR(c[1], 2000.0 * 1000.0 * 25.0, 1e-6);
  EXPECT_NEAR(c[2], 2000.0 * 1000.0 * 25.0, 1e-6);
}

TEST(Abc, StaceyVanishesForUniformField) {
  // Constant displacement has zero tangential derivatives: no K^AB force.
  const auto m = quake::vel::Material::from_velocities(2000.0, 1000.0, 2000.0);
  double u[12], y[12] = {0.0};
  for (int i = 0; i < 12; ++i) u[i] = (i % 3 == 0) ? 0.7 : -0.2;
  face_stacey_apply(m, 5.0, quake::mesh::BoundarySide::kZMax, u, y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-13);
}

TEST(Abc, StaceySignFlipsWithFaceOrientation) {
  const auto m = quake::vel::Material::from_velocities(2000.0, 1000.0, 2000.0);
  quake::util::Rng rng(4);
  double u[12], y_min[12] = {0.0}, y_max[12] = {0.0};
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  face_stacey_apply(m, 5.0, quake::mesh::BoundarySide::kXMin, u, y_min);
  face_stacey_apply(m, 5.0, quake::mesh::BoundarySide::kXMax, u, y_max);
  for (int i = 0; i < 12; ++i) EXPECT_NEAR(y_min[i], -y_max[i], 1e-12);
}

TEST(Rayleigh, FitApproximatesTargetInBand) {
  const double xi = 0.02;
  const RayleighCoeffs c = fit_rayleigh(xi, 0.1, 1.0);
  EXPECT_GE(c.alpha, 0.0);
  EXPECT_GE(c.beta, 0.0);
  for (double f = 0.15; f <= 0.8; f += 0.1) {
    EXPECT_NEAR(damping_ratio_at(c, f), xi, 0.5 * xi);
  }
}

TEST(Rayleigh, OverdampsOutsideBand) {
  // "very low and very high frequencies are overdamped" (paper, section 2.2).
  const RayleighCoeffs c = fit_rayleigh(0.02, 0.1, 1.0);
  EXPECT_GT(damping_ratio_at(c, 0.001), 0.02);
  EXPECT_GT(damping_ratio_at(c, 100.0), 0.02);
}

TEST(Rayleigh, TargetRatioSoilRule) {
  // Softer soils dissipate more; values clamped to [0.001, 0.05].
  EXPECT_GT(target_damping_ratio(150.0), target_damping_ratio(1500.0));
  EXPECT_LE(target_damping_ratio(1.0), 0.05);
  EXPECT_GE(target_damping_ratio(1e9), 0.001);
}

TEST(Rayleigh, BadBandThrows) {
  EXPECT_THROW(fit_rayleigh(0.02, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(fit_rayleigh(-0.1, 0.1, 1.0), std::invalid_argument);
}

}  // namespace
