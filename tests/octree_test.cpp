// Tests for the linear-octree substrate: Morton codes, octant algebra,
// auto-navigation construction, and the three 2-to-1 balancing algorithms.

#include <gtest/gtest.h>

#include <set>

#include "quake/octree/linear_octree.hpp"
#include "quake/octree/morton.hpp"
#include "quake/octree/octant.hpp"
#include "quake/util/rng.hpp"

namespace {

using namespace quake::octree;

TEST(Morton, RoundTripSmall) {
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      for (std::uint32_t z = 0; z < 8; ++z) {
        const auto p = morton_decode(morton_encode(x, y, z));
        EXPECT_EQ(p.x, x);
        EXPECT_EQ(p.y, y);
        EXPECT_EQ(p.z, z);
      }
    }
  }
}

TEST(Morton, RoundTripRandom21Bit) {
  quake::util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next_u64() & 0x1fffff);
    const auto y = static_cast<std::uint32_t>(rng.next_u64() & 0x1fffff);
    const auto z = static_cast<std::uint32_t>(rng.next_u64() & 0x1fffff);
    const auto p = morton_decode(morton_encode(x, y, z));
    EXPECT_EQ(p.x, x);
    EXPECT_EQ(p.y, y);
    EXPECT_EQ(p.z, z);
  }
}

TEST(Morton, BitInterleavingOrder) {
  // x occupies bit 0, y bit 1, z bit 2.
  EXPECT_EQ(morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(0, 0, 1), 4u);
}

TEST(Octant, ChildParentRoundTrip) {
  const Octant root{};
  for (int c = 0; c < 8; ++c) {
    const Octant ch = root.child(c);
    EXPECT_EQ(ch.level, 1);
    EXPECT_EQ(ch.parent(), root);
    EXPECT_TRUE(root.contains(ch));
    EXPECT_FALSE(ch.contains(root));
  }
}

TEST(Octant, ChildrenAreMortonOrdered) {
  const Octant o = Octant{}.child(3).child(5);
  OctantLess less;
  for (int c = 0; c + 1 < 8; ++c) {
    EXPECT_TRUE(less(o.child(c), o.child(c + 1)));
  }
}

TEST(Octant, NeighborInsideAndOutside) {
  const Octant o = Octant{}.child(0);  // lower corner, level 1
  EXPECT_FALSE(o.neighbor(-1, 0, 0).has_value());
  const auto n = o.neighbor(1, 0, 0);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->x, o.size());
  EXPECT_EQ(n->level, o.level);
  // Far corner child: positive neighbor leaves the domain.
  const Octant far = Octant{}.child(7);
  EXPECT_FALSE(far.neighbor(1, 0, 0).has_value());
  EXPECT_FALSE(far.neighbor(0, 1, 0).has_value());
  EXPECT_TRUE(far.neighbor(-1, 0, 0).has_value());
}

TEST(Octant, AncestorAt) {
  const Octant o = Octant{}.child(7).child(3).child(1);
  EXPECT_EQ(o.ancestor_at(0), Octant{});
  EXPECT_EQ(o.ancestor_at(1), Octant{}.child(7));
  EXPECT_EQ(o.ancestor_at(2), Octant{}.child(7).child(3));
  EXPECT_EQ(o.ancestor_at(3), o);
}

// Uniform refinement to a fixed level.
LinearOctree uniform_tree(int level) {
  return build_octree([](const Octant&) { return true; }, level);
}

TEST(Build, UniformCounts) {
  for (int l = 0; l <= 3; ++l) {
    const LinearOctree t = uniform_tree(l);
    EXPECT_EQ(t.size(), static_cast<std::size_t>(1) << (3 * l));
    EXPECT_TRUE(t.validate(/*require_cover=*/true));
  }
}

TEST(Build, LeavesAreSorted) {
  const LinearOctree t = uniform_tree(3);
  OctantLess less;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    EXPECT_TRUE(less(t[i], t[i + 1]));
  }
}

TEST(Build, FindContaining) {
  const LinearOctree t = uniform_tree(2);
  // The point in the middle of the first leaf.
  const std::uint32_t s = 1u << (kMaxLevel - 2);
  auto idx = t.find_containing(s / 2, s / 2, s / 2);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  auto idx2 = t.find_containing(kTicks - 1, kTicks - 1, kTicks - 1);
  ASSERT_TRUE(idx2.has_value());
  EXPECT_EQ(*idx2, t.size() - 1);
}

// A point-refined tree: refine only octants containing the domain center.
// The refinement chain hugs the center planes, so fine leaves abut the
// coarse level-1 siblings directly — maximal imbalance.
LinearOctree corner_tree(int depth) {
  const Octant center{kTicks / 2, kTicks / 2, kTicks / 2, kMaxLevel};
  return build_octree(
      [center](const Octant& o) { return o.contains(center); }, depth);
}

TEST(Balance, CornerTreeUnbalancedThenBalanced) {
  const LinearOctree t = corner_tree(6);
  EXPECT_FALSE(is_balanced(t, BalanceScope::kFaces));
  const LinearOctree b = balance(t, BalanceScope::kFaces);
  EXPECT_TRUE(is_balanced(b, BalanceScope::kFaces));
  EXPECT_TRUE(b.validate(/*require_cover=*/true));
  EXPECT_GT(b.size(), t.size());
}

TEST(Balance, PreservesExistingLeavesOrRefines) {
  // Balancing may only split leaves, never merge: every original leaf is
  // either present or covered by finer leaves.
  const LinearOctree t = corner_tree(5);
  const LinearOctree b = balance(t, BalanceScope::kAll);
  for (const Octant& o : t.leaves()) {
    const auto idx = b.find_containing(o.x, o.y, o.z);
    ASSERT_TRUE(idx.has_value());
    EXPECT_GE(b[*idx].level, o.level);
  }
}

TEST(Balance, AlreadyBalancedIsIdentity) {
  const LinearOctree t = uniform_tree(3);
  const LinearOctree b = balance(t, BalanceScope::kAll);
  EXPECT_EQ(b.size(), t.size());
}

class BalanceScopeTest : public ::testing::TestWithParam<BalanceScope> {};

TEST_P(BalanceScopeTest, AllAlgorithmsAgree) {
  const BalanceScope scope = GetParam();
  const LinearOctree t = corner_tree(6);
  const LinearOctree b1 = balance(t, scope);
  const LinearOctree b2 = balance_global_sweeps(t, scope);
  const LinearOctree b3 = balance_local(t, scope, /*block_level=*/2);
  ASSERT_EQ(b1.size(), b2.size());
  ASSERT_EQ(b1.size(), b3.size());
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1[i], b2[i]);
    EXPECT_EQ(b1[i], b3[i]);
  }
  EXPECT_TRUE(is_balanced(b1, scope));
}

INSTANTIATE_TEST_SUITE_P(Scopes, BalanceScopeTest,
                         ::testing::Values(BalanceScope::kFaces,
                                           BalanceScope::kFacesEdges,
                                           BalanceScope::kAll));

TEST(Balance, RandomTreesStayCoveringAndBalanced) {
  quake::util::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    // Random refinement: refine with probability decreasing in level.
    auto policy = [&rng](const Octant& o) {
      return rng.uniform() < 0.9 / (1 + o.level);
    };
    const LinearOctree t = build_octree(policy, 6);
    ASSERT_TRUE(t.validate(true));
    const LinearOctree b = balance(t, BalanceScope::kAll);
    EXPECT_TRUE(b.validate(true));
    EXPECT_TRUE(is_balanced(b, BalanceScope::kAll));
    EXPECT_GE(b.size(), t.size());
  }
}

TEST(Balance, ScopeMonotonicity) {
  // Wider scopes can only require more refinement.
  const LinearOctree t = corner_tree(6);
  const auto faces = balance(t, BalanceScope::kFaces).size();
  const auto edges = balance(t, BalanceScope::kFacesEdges).size();
  const auto all = balance(t, BalanceScope::kAll).size();
  EXPECT_LE(faces, edges);
  EXPECT_LE(edges, all);
}

TEST(LevelHistogram, SumsToSize) {
  const LinearOctree t = corner_tree(5);
  const auto h = t.level_histogram();
  std::size_t sum = 0;
  for (std::size_t c : h) sum += c;
  EXPECT_EQ(sum, t.size());
}

}  // namespace
