// Tests for the optimization kernels: CG, L-BFGS, Frankel two-step, Armijo.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quake/opt/cg.hpp"
#include "quake/opt/frankel.hpp"
#include "quake/opt/lbfgs.hpp"
#include "quake/opt/linesearch.hpp"
#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake::opt;

// SPD tridiagonal test operator: A = diag(2 + i/n) with -1 off-diagonals.
LinOp tridiag_op(std::size_t n) {
  return [n](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < n; ++i) {
      double v = (2.5 + static_cast<double>(i) / static_cast<double>(n)) * x[i];
      if (i > 0) v -= x[i - 1];
      if (i + 1 < n) v -= x[i + 1];
      y[i] += v;
    }
  };
}

TEST(Cg, SolvesSpdSystem) {
  const std::size_t n = 50;
  const LinOp a = tridiag_op(n);
  quake::util::Rng rng(1);
  std::vector<double> x_true(n), b(n, 0.0), x(n, 0.0);
  for (double& v : x_true) v = rng.uniform(-1.0, 1.0);
  a(x_true, b);
  CgOptions opts;
  opts.max_iterations = 200;
  opts.rel_tolerance = 1e-10;
  const CgResult res = conjugate_gradient(a, b, x, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(quake::util::rel_l2(x, x_true), 1e-8);
}

TEST(Cg, RespectsIterationCap) {
  const std::size_t n = 200;
  const LinOp a = tridiag_op(n);
  std::vector<double> b(n, 1.0), x(n, 0.0);
  CgOptions opts;
  opts.max_iterations = 3;
  opts.rel_tolerance = 1e-14;
  const CgResult res = conjugate_gradient(a, b, x, opts);
  EXPECT_EQ(res.iterations, 3);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.final_residual, res.initial_residual);
}

TEST(Cg, DetectsNegativeCurvature) {
  const std::size_t n = 4;
  const LinOp a = [](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += -x[i];  // A = -I
  };
  std::vector<double> b(n, 1.0), x(n, 0.0);
  const CgResult res = conjugate_gradient(a, b, x, CgOptions{});
  EXPECT_TRUE(res.hit_negative_curvature);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
  const std::size_t n = 10;
  const LinOp a = tridiag_op(n);
  std::vector<double> b(n, 0.0), x(n, 0.0);
  const CgResult res = conjugate_gradient(a, b, x, CgOptions{});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Cg, CollectorReceivesValidPairs) {
  const std::size_t n = 30;
  const LinOp a = tridiag_op(n);
  std::vector<double> b(n, 1.0), x(n, 0.0);
  int pairs = 0;
  PairCollector collect = [&](std::span<const double> s,
                              std::span<const double> y) {
    // s^T y = alpha^2 p^T A p > 0 for SPD A.
    EXPECT_GT(quake::util::dot(s, y), 0.0);
    ++pairs;
  };
  CgOptions opts;
  opts.max_iterations = 10;
  opts.rel_tolerance = 1e-14;
  const CgResult res = conjugate_gradient(a, b, x, opts, nullptr, &collect);
  EXPECT_EQ(pairs, res.iterations);
  EXPECT_GT(pairs, 0);
}

TEST(Lbfgs, ApproximatesInverseOnQuadratic) {
  // Feed exact (s, As) pairs; the two-loop recursion should then solve
  // A z = v well within the spanned subspace.
  const std::size_t n = 20;
  const LinOp a = tridiag_op(n);
  LbfgsOperator lbfgs(n, 20);
  quake::util::Rng rng(3);
  for (int p = 0; p < 20; ++p) {
    std::vector<double> s(n), y(n, 0.0);
    for (double& v : s) v = rng.uniform(-1.0, 1.0);
    a(s, y);
    lbfgs.add_pair(s, y);
  }
  std::vector<double> v(n), z(n, 0.0), az(n, 0.0);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  lbfgs.apply(v, z);
  a(z, az);
  EXPECT_LT(quake::util::rel_l2(az, v), 0.5);
}

TEST(Lbfgs, RejectsNonPositiveCurvature) {
  LbfgsOperator lbfgs(3);
  std::vector<double> s = {1.0, 0.0, 0.0};
  std::vector<double> y = {-1.0, 0.0, 0.0};
  lbfgs.add_pair(s, y);
  EXPECT_EQ(lbfgs.n_pairs(), 0u);
}

TEST(Lbfgs, EmptyIsScaledIdentity) {
  LbfgsOperator lbfgs(3);
  std::vector<double> v = {1.0, -2.0, 0.5}, out(3, 0.0);
  lbfgs.apply(v, out);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)]);
}

TEST(Frankel, ReducesResidual) {
  const std::size_t n = 40;
  const LinOp a = tridiag_op(n);
  std::vector<double> b(n, 1.0), x(n, 0.0);
  FrankelOptions fo;
  fo.sweeps = 25;
  frankel_two_step(a, b, x, fo, nullptr);
  std::vector<double> ax(n, 0.0);
  a(x, ax);
  EXPECT_LT(quake::util::diff_l2(ax, b), 0.5 * quake::util::norm_l2(b));
}

TEST(Frankel, SeedsLbfgsPairs) {
  const std::size_t n = 40;
  const LinOp a = tridiag_op(n);
  std::vector<double> b(n, 1.0), x(n, 0.0);
  LbfgsOperator lbfgs(n);
  FrankelOptions fo;
  fo.sweeps = 5;
  frankel_two_step(a, b, x, fo, &lbfgs);
  EXPECT_EQ(lbfgs.n_pairs(), 5u);
}

TEST(PreconditionedCg, FewerIterationsWithLbfgs) {
  // Ill-conditioned diagonal operator; L-BFGS built from Frankel sweeps
  // must cut the CG iteration count.
  const std::size_t n = 120;
  const LinOp a = [n](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += (1.0 + 500.0 * static_cast<double>(i) / static_cast<double>(n)) * x[i];
    }
  };
  std::vector<double> b(n, 1.0);
  CgOptions opts;
  opts.max_iterations = 400;
  opts.rel_tolerance = 1e-8;

  std::vector<double> x1(n, 0.0);
  const CgResult plain = conjugate_gradient(a, b, x1, opts);

  LbfgsOperator lbfgs(n, 30);
  std::vector<double> warm(n, 0.0);
  FrankelOptions fo;
  fo.sweeps = 25;
  frankel_two_step(a, b, warm, fo, &lbfgs);
  LinOp precond = [&](std::span<const double> v, std::span<double> out) {
    lbfgs.apply(v, out);
  };
  std::vector<double> x2(n, 0.0);
  const CgResult pre = conjugate_gradient(a, b, x2, opts, &precond);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(Armijo, AcceptsFullStepOnEasyQuadratic) {
  // phi(a) = (a - 1)^2: from phi(0) = 1, dphi(0) = -2, alpha = 1 is optimal.
  const auto res = armijo_backtracking(
      [](double a) { return (a - 1.0) * (a - 1.0); }, 1.0, -2.0,
      ArmijoOptions{});
  EXPECT_TRUE(res.success);
  EXPECT_DOUBLE_EQ(res.alpha, 1.0);
}

TEST(Armijo, BacktracksOnOvershoot) {
  // Steep quartic: full step increases phi; must shrink.
  const auto res = armijo_backtracking(
      [](double a) { return std::pow(10.0 * a - 1.0, 4) / 10000.0 - 0.1 * a + 0.0001; },
      0.0001, -0.104, ArmijoOptions{});
  EXPECT_TRUE(res.success);
  EXPECT_LT(res.alpha, 1.0);
  EXPECT_GT(res.evaluations, 1);
}

TEST(Armijo, RejectsAscentDirection) {
  EXPECT_THROW(armijo_backtracking([](double) { return 0.0; }, 0.0, 1.0,
                                   ArmijoOptions{}),
               std::invalid_argument);
}

}  // namespace
