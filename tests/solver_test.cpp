// Tests for the explicit elastodynamic solver: engine equivalence, energy
// behavior, absorbing boundaries, sources, and 1D-column verification
// against the SH closed form.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "quake/fem/hex_element.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/sh1d.hpp"
#include "quake/solver/source.hpp"
#include "quake/solver/sparse_engine.hpp"
#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake;
using namespace quake::solver;

vel::HomogeneousModel rock() {
  return vel::HomogeneousModel(
      vel::Material::from_velocities(1732.0, 1000.0, 2000.0));
}

mesh::HexMesh uniform_mesh(int level, double size) {
  mesh::MeshOptions o;
  o.domain_size = size;
  o.f_max = 1e-9;
  o.min_level = level;
  o.max_level = level;
  const auto model = rock();
  return mesh::generate_mesh(model, o);
}

mesh::HexMesh hanging_mesh(double size) {
  mesh::MeshOptions o;
  o.domain_size = size;
  o.f_max = 1e-9;
  o.min_level = 1;
  o.max_level = 2;
  auto policy = [](const octree::Octant& oct) {
    if (oct.level < 1) return true;
    return oct.level < 2 && oct.x == 0 && oct.y == 0;
  };
  auto tree = octree::balance(octree::build_octree(policy, 2),
                              octree::BalanceScope::kAll);
  const auto model = rock();
  return mesh::transform(tree, model, o);
}

TEST(Engines, ElementMatchesSparseOnUniformMesh) {
  const auto mesh = uniform_mesh(2, 100.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const ElasticOperator op(mesh, oo);
  const SparseStiffness sparse(mesh);
  util::Rng rng(1);
  std::vector<double> u(op.n_dofs()), y1(op.n_dofs(), 0.0), y2(op.n_dofs(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  op.apply_stiffness(u, y1, {});
  sparse.apply(u, y2);
  EXPECT_LT(util::diff_l2(y1, y2), 1e-9 * (1.0 + util::norm_l2(y2)));
}

TEST(Engines, ElementMatchesSparseOnHangingMesh) {
  const auto mesh = hanging_mesh(100.0);
  ASSERT_GT(mesh.n_hanging(), 0u);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const ElasticOperator op(mesh, oo);
  const SparseStiffness sparse(mesh);
  util::Rng rng(2);
  std::vector<double> u(op.n_dofs()), y1(op.n_dofs(), 0.0), y2(op.n_dofs(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  op.expand_constraints(u);  // same constrained input to both engines
  op.apply_stiffness(u, y1, {});
  sparse.apply(u, y2);
  EXPECT_LT(util::diff_l2(y1, y2), 1e-9 * (1.0 + util::norm_l2(y2)));
}

TEST(Operator, ConstraintExpansionAccumulationAdjoint) {
  // <B u, y> == <u, B^T y> for the constraint projection operators.
  const auto mesh = hanging_mesh(100.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const ElasticOperator op(mesh, oo);
  util::Rng rng(3);
  std::vector<double> u(op.n_dofs(), 0.0), y(op.n_dofs());
  // u: independent dofs random, hanging zero; expand fills hanging.
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    if (mesh.node_hanging[n] != 0) continue;
    for (int c = 0; c < 3; ++c) u[3 * n + static_cast<std::size_t>(c)] = rng.uniform(-1, 1);
  }
  for (double& v : y) v = rng.uniform(-1.0, 1.0);

  std::vector<double> bu = u;
  op.expand_constraints(bu);
  const double lhs = util::dot(bu, y);
  std::vector<double> bty = y;
  op.accumulate_constraints(bty);
  const double rhs = util::dot(u, bty);
  EXPECT_NEAR(lhs, rhs, 1e-9 * (std::abs(lhs) + 1.0));
}

TEST(Operator, ProjectedMassConservesTotalMass)
{
  const auto mesh = hanging_mesh(100.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const ElasticOperator op(mesh, oo);
  double total = 0.0;
  const auto mass = op.lumped_mass();
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) total += mass[3 * n];
  double expected = 0.0;
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const double h = mesh.elem_size[e];
    expected += mesh.elem_mat[e].rho * h * h * h;
  }
  EXPECT_NEAR(total, expected, 1e-6 * expected);
  // Hanging dofs carry no mass after projection.
  for (const auto& c : mesh.constraints) {
    EXPECT_EQ(mass[3 * static_cast<std::size_t>(c.node)], 0.0);
  }
}

TEST(Solver, EnergyConservedWithoutDampingOrAbc) {
  const auto mesh = uniform_mesh(3, 1000.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.3;
  so.cfl_fraction = 0.3;
  ExplicitSolver solver(op, so);
  // Initial displacement bump in the interior, zero velocity.
  std::vector<double> u0(op.n_dofs(), 0.0), v0(op.n_dofs(), 0.0);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    const auto& c = mesh.node_coords[n];
    const double r2 = std::pow(c[0] - 500.0, 2) + std::pow(c[1] - 500.0, 2) +
                      std::pow(c[2] - 500.0, 2);
    u0[3 * n] = std::exp(-r2 / (150.0 * 150.0));
  }
  solver.set_initial_conditions(u0, v0);
  std::vector<double> energies;
  solver.run(
      [&](int, double, std::span<const double>, std::span<const double>) {
        energies.push_back(solver.energy());
      },
      2);
  ASSERT_GE(energies.size(), 3u);
  for (double e : energies) {
    EXPECT_NEAR(e, energies.front(), 0.02 * energies.front());
  }
}

TEST(Solver, ResetThenRerunIsBitIdentical) {
  // reset() must return the solver to its just-constructed state: a second
  // run after reset matches a fresh solver bitwise (state vectors, receiver
  // histories, timing/flop accounting all cleared; registrations kept).
  const auto mesh = uniform_mesh(3, 1000.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.3;
  so.cfl_fraction = 0.3;
  const PointSource src(mesh, {500.0, 500.0, 400.0}, {1.0, 0.0, 0.5}, 1e9,
                        20.0, 0.05);
  const std::array<double, 3> rx = {700.0, 500.0, 0.0};

  ExplicitSolver fresh(op, so);
  fresh.add_source(&src);
  fresh.add_receiver(rx);
  fresh.run();

  ExplicitSolver reused(op, so);
  reused.add_source(&src);
  reused.add_receiver(rx);
  reused.run();
  // Dirty state everywhere: displacement, histories, elapsed time, flops.
  ASSERT_FALSE(reused.receivers()[0].u.empty());
  reused.reset();
  EXPECT_TRUE(reused.receivers()[0].u.empty());
  for (double v : reused.displacement()) EXPECT_EQ(v, 0.0);
  reused.run();

  ASSERT_EQ(reused.displacement().size(), fresh.displacement().size());
  EXPECT_EQ(std::memcmp(reused.displacement().data(),
                        fresh.displacement().data(),
                        fresh.displacement().size() * sizeof(double)),
            0);
  ASSERT_EQ(reused.receivers()[0].u.size(), fresh.receivers()[0].u.size());
  EXPECT_EQ(std::memcmp(reused.receivers()[0].u.data(),
                        fresh.receivers()[0].u.data(),
                        fresh.receivers()[0].u.size() * 3 * sizeof(double)),
            0);
}

TEST(Solver, EnergyDecaysWithAbsorbingBoundaries) {
  const auto mesh = uniform_mesh(3, 1000.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kLysmer;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 2.5;  // several crossing times
  so.cfl_fraction = 0.3;
  ExplicitSolver solver(op, so);
  // Kinetic initial condition: all energy radiates as body waves (a static
  // displacement bump would leave a slowly-relaxing near field the
  // dashpots cannot absorb).
  std::vector<double> u0(op.n_dofs(), 0.0), v0(op.n_dofs(), 0.0);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    const auto& c = mesh.node_coords[n];
    const double r2 = std::pow(c[0] - 500.0, 2) + std::pow(c[1] - 500.0, 2) +
                      std::pow(c[2] - 500.0, 2);
    v0[3 * n] = std::exp(-r2 / (150.0 * 150.0));
  }
  solver.set_initial_conditions(u0, v0);
  const double e0 = solver.energy();
  solver.run();
  EXPECT_LT(solver.energy(), 0.1 * e0);
}

TEST(Solver, StaceyAlsoAbsorbs) {
  const auto mesh = uniform_mesh(3, 1000.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 2.5;
  so.cfl_fraction = 0.3;
  ExplicitSolver solver(op, so);
  // Kinetic initial condition: all energy radiates as body waves (a static
  // displacement bump would leave a slowly-relaxing near field the
  // dashpots cannot absorb).
  std::vector<double> u0(op.n_dofs(), 0.0), v0(op.n_dofs(), 0.0);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    const auto& c = mesh.node_coords[n];
    const double r2 = std::pow(c[0] - 500.0, 2) + std::pow(c[1] - 500.0, 2) +
                      std::pow(c[2] - 500.0, 2);
    v0[3 * n] = std::exp(-r2 / (150.0 * 150.0));
  }
  solver.set_initial_conditions(u0, v0);
  const double e0 = solver.energy();
  solver.run();
  EXPECT_LT(solver.energy(), 0.1 * e0);
}

TEST(Solver, SecondOrderInTime) {
  // Fixed mesh, shrinking dt: the difference from a fine-dt reference
  // contracts ~4x per halving.
  const auto mesh = uniform_mesh(2, 1000.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const ElasticOperator op(mesh, oo);

  auto run_with_dt = [&](double dt) {
    SolverOptions so;
    so.dt = dt;
    so.t_end = 0.2;
    ExplicitSolver solver(op, so);
    std::vector<double> u0(op.n_dofs(), 0.0), v0(op.n_dofs(), 0.0);
    for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
      const auto& c = mesh.node_coords[n];
      u0[3 * n] = std::sin(c[0] / 1000.0 * 3.14159) *
                  std::sin(c[2] / 1000.0 * 3.14159);
    }
    solver.set_initial_conditions(u0, v0);
    solver.run();
    return std::vector<double>(solver.displacement().begin(),
                               solver.displacement().end());
  };

  const double dt0 = 0.2 / 32.0;
  const auto ref = run_with_dt(dt0 / 8.0);
  const auto c1 = run_with_dt(dt0);
  const auto c2 = run_with_dt(dt0 / 2.0);
  const double e1 = util::diff_l2(c1, ref);
  const double e2 = util::diff_l2(c2, ref);
  EXPECT_GT(e1 / e2, 3.0);
  EXPECT_LT(e1 / e2, 5.5);
}

TEST(Solver, ShColumnMatchesHalfspaceClosedForm) {
  // Vertically propagating SH pulse in a homogeneous halfspace: with the x
  // and z components fixed, the 3D hex solver reduces exactly to the 1D
  // column problem, and the surface response must be twice the incident
  // pulse (free-surface doubling).
  const double L = 1000.0, vs = 1000.0;
  const auto mesh = uniform_mesh(5, L);  // h = 31.25 m
  OperatorOptions oo;
  oo.abc = fem::AbcType::kLysmer;
  // Column problem: absorb only at the bottom; the lateral faces are
  // traction-free, which the component mask makes exact.
  oo.absorbing_sides = {false, false, false, false, false, true};
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.9;
  so.cfl_fraction = 0.4;
  ExplicitSolver solver(op, so);
  solver.set_fixed_components({true, false, true});

  const double zc = 550.0, sigma = 120.0, amp = 1.0;
  auto pulse = [&](double z) {
    return amp * std::exp(-std::pow((z - zc) / sigma, 2));
  };
  std::vector<double> u0(op.n_dofs(), 0.0), v0(op.n_dofs(), 0.0);
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    const double z = mesh.node_coords[n][2];
    u0[3 * n + 1] = pulse(z);
    // Upgoing wave u(z, t) = f(z + vs t): v0 = vs * f'(z).
    v0[3 * n + 1] =
        vs * (-2.0 * (z - zc) / (sigma * sigma)) * pulse(z);
  }
  solver.set_initial_conditions(u0, v0);
  solver.add_receiver({L / 2.0, L / 2.0, 0.0});
  solver.run();

  const auto rec = solver.receiver_component(0, 1);
  const double dt = solver.dt();
  std::vector<double> exact(rec.size());
  for (std::size_t k = 0; k < exact.size(); ++k) {
    const double t = (static_cast<double>(k) + 1.0) * dt;
    // Incident wave u = f(z + vs t) evaluated at the surface z = 0,
    // doubled by the free-surface reflection.
    exact[k] = 2.0 * pulse(vs * t);
  }
  EXPECT_LT(util::rel_l2(rec, exact), 0.08);
  // Peak amplitude doubles.
  EXPECT_NEAR(util::norm_max(rec), 2.0 * amp, 0.1);
}

TEST(Source, RampProperties) {
  const double t0 = 1.4;
  EXPECT_DOUBLE_EQ(ramp_g(-0.1, t0), 0.0);
  EXPECT_DOUBLE_EQ(ramp_g(t0 + 0.1, t0), 1.0);
  EXPECT_NEAR(ramp_g(t0 / 2.0, t0), 0.5, 1e-12);
  // dg/dt is a triangle of unit area and peak 2/t0.
  EXPECT_NEAR(ramp_g_dot(t0 / 2.0, t0), 2.0 / t0, 1e-12);
  double area = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) area += ramp_g_dot((i + 0.5) * t0 / n, t0) * t0 / n;
  EXPECT_NEAR(area, 1.0, 1e-6);
  // g is the integral of g_dot: monotone.
  double prev = 0.0;
  for (int i = 0; i <= 20; ++i) {
    const double g = ramp_g(i * t0 / 20.0, t0);
    EXPECT_GE(g, prev - 1e-15);
    prev = g;
  }
}

TEST(Source, RickerPeakAtCenter) {
  EXPECT_DOUBLE_EQ(ricker(1.0, 2.0, 1.0), 1.0);
  EXPECT_LT(std::abs(ricker(3.0, 2.0, 1.0)), 1e-6);
}

TEST(Source, FaultForcesAreSelfEquilibrating) {
  const auto mesh = uniform_mesh(3, 8000.0);
  FaultSource::Spec spec;
  spec.y = 4000.0;
  spec.x0 = 2000.0;
  spec.x1 = 6000.0;
  spec.z_top = 2000.0;
  spec.z_bot = 5000.0;
  spec.hypocenter = {4000.0, 3500.0};
  spec.rupture_velocity = 2800.0;
  spec.rise_time = 0.7;
  spec.slip = 1.0;
  const FaultSource src(mesh, spec);
  EXPECT_GT(src.n_patches(), 4u);
  std::vector<double> f(3 * mesh.n_nodes(), 0.0);
  src.add_forces(1.0, f);  // mid-rupture
  double fx = 0.0, fy = 0.0, fz = 0.0, fmax = 0.0;
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    fx += f[3 * n];
    fy += f[3 * n + 1];
    fz += f[3 * n + 2];
    fmax = std::max({fmax, std::abs(f[3 * n]), std::abs(f[3 * n + 1])});
  }
  EXPECT_GT(fmax, 0.0);
  EXPECT_NEAR(fx, 0.0, 1e-9 * fmax);
  EXPECT_NEAR(fy, 0.0, 1e-9 * fmax);
  EXPECT_NEAR(fz, 0.0, 1e-9 * fmax);
}

TEST(Source, PointSourceInjectsAtNearestNode) {
  const auto mesh = uniform_mesh(2, 100.0);
  PointSource src(mesh, {50.0, 50.0, 50.0}, {0.0, 0.0, 1.0}, 2.0, 5.0, 0.2);
  std::vector<double> f(3 * mesh.n_nodes(), 0.0);
  src.add_forces(0.2, f);  // ricker peak: amplitude * 1
  const std::size_t dof = 3 * static_cast<std::size_t>(src.node()) + 2;
  EXPECT_DOUBLE_EQ(f[dof], 2.0);
}

TEST(Sh1d, EqualImpedanceReducesToTransmission) {
  ShLayerParams p{100.0, 2000.0, 1000.0, 2000.0, 1000.0};
  auto inc = [](double t) { return std::exp(-std::pow((t - 0.5) / 0.05, 2)); };
  const auto u = sh_layer_surface_response(p, inc, 1000, 0.001);
  // Z1 == Z2: single arrival, amplitude 2, delayed by H/vs1 = 0.1 s.
  std::vector<double> expected(1000);
  for (int k = 0; k < 1000; ++k) expected[static_cast<std::size_t>(k)] = 2.0 * inc(k * 0.001 - 0.1);
  EXPECT_LT(quake::util::rel_l2(u, expected), 1e-12);
}

TEST(Sh1d, SoftLayerAmplifies) {
  // Soft layer over stiff halfspace: surface peak exceeds the halfspace
  // doubling because of impedance-contrast amplification.
  ShLayerParams p{100.0, 1700.0, 300.0, 2500.0, 2000.0};
  auto inc = [](double t) { return std::exp(-std::pow((t - 1.0) / 0.15, 2)); };
  const auto u = sh_layer_surface_response(p, inc, 4000, 0.001);
  EXPECT_GT(quake::util::norm_max(u), 2.2);
}

TEST(Solver, FlopAccountingPositive) {
  const auto mesh = uniform_mesh(2, 100.0);
  OperatorOptions oo;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.01;
  ExplicitSolver solver(op, so);
  solver.run();
  EXPECT_GT(solver.total_flops(), 0u);
  EXPECT_GT(op.flops_per_apply(), 0u);
}

// Checkpoint/restart of the serial time-stepper: a run that resumes from a
// mid-flight CRC32-verified snapshot reproduces the uninterrupted run
// bit-for-bit (state, receiver histories).
TEST(Solver, CheckpointResumeBitIdentical) {
  const auto mesh = hanging_mesh(100.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 1.0;
  oo.damping_f_max = 20.0;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.05;
  const PointSource src(mesh, {50.0, 50.0, 50.0}, {1.0, 0.5, 0.2}, 2.0, 40.0,
                        0.01);

  // Uninterrupted reference.
  ExplicitSolver ref(op, so);
  ref.add_source(&src);
  ref.add_receiver({80.0, 20.0, 0.0});
  ref.run();
  ASSERT_GT(ref.n_steps(), 4);

  const std::string path =
      (std::filesystem::temp_directory_path() / "quake_solver_test.ckpt")
          .string();
  std::remove(path.c_str());

  // First run writes periodic snapshots; the last lands before the end.
  {
    ExplicitSolver first(op, so);
    first.add_source(&src);
    first.add_receiver({80.0, 20.0, 0.0});
    first.set_checkpoint(path, std::max(1, ref.n_steps() / 3));
    first.run();
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // Second run resumes from the snapshot mid-flight and finishes.
  ExplicitSolver resumed(op, so);
  resumed.add_source(&src);
  resumed.add_receiver({80.0, 20.0, 0.0});
  resumed.set_checkpoint(path, 0);  // resume only, no further writes
  resumed.run();

  ASSERT_EQ(resumed.displacement().size(), ref.displacement().size());
  EXPECT_EQ(std::memcmp(resumed.displacement().data(),
                        ref.displacement().data(),
                        ref.displacement().size() * sizeof(double)),
            0);
  ASSERT_EQ(resumed.receivers()[0].u.size(), ref.receivers()[0].u.size());
  EXPECT_EQ(std::memcmp(resumed.receivers()[0].u.data(),
                        ref.receivers()[0].u.data(),
                        ref.receivers()[0].u.size() * sizeof(double) * 3),
            0);
  std::remove(path.c_str());
}

// A corrupted snapshot must be rejected (CRC) and the run must start over
// from step zero rather than integrate garbage.
TEST(Solver, CorruptedCheckpointIgnored) {
  const auto mesh = uniform_mesh(2, 100.0);
  OperatorOptions oo;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.02;

  ExplicitSolver ref(op, so);
  ref.run();

  const std::string path =
      (std::filesystem::temp_directory_path() / "quake_solver_bad.ckpt")
          .string();
  {
    ExplicitSolver first(op, so);
    first.set_checkpoint(path, std::max(1, ref.n_steps() / 2));
    first.run();
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  // Flip one byte in the middle of the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 64, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  ExplicitSolver resumed(op, so);
  resumed.set_checkpoint(path, 0);
  resumed.run();  // restore rejected -> full run from scratch
  EXPECT_EQ(std::memcmp(resumed.displacement().data(),
                        ref.displacement().data(),
                        ref.displacement().size() * sizeof(double)),
            0);
  std::remove(path.c_str());
}

// ---- scenario-batched stepping (docs/BATCHING.md) -------------------------

// The batched operator sweep must reproduce the scalar sweep bit for bit on
// every lane: the lane loop is innermost everywhere, so lane s's
// floating-point op sequence is exactly the scalar one. Run on the hanging
// mesh so constraint folding is exercised too.
TEST(Operator, ApplyStiffnessBatchMatchesScalarBitwise) {
  const auto mesh = hanging_mesh(100.0);
  ASSERT_GT(mesh.n_hanging(), 0u);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  const ElasticOperator op(mesh, oo);
  const std::size_t nd = op.n_dofs();
  const int S = 3;

  util::Rng rng(7);
  std::vector<std::vector<double>> u_s(static_cast<std::size_t>(S));
  std::vector<double> ub(nd * static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    auto& u = u_s[static_cast<std::size_t>(s)];
    u.resize(nd);
    for (double& v : u) v = rng.uniform(-1.0, 1.0);
    op.expand_constraints(u);
    for (std::size_t d = 0; d < nd; ++d) {
      ub[d * static_cast<std::size_t>(S) + static_cast<std::size_t>(s)] = u[d];
    }
  }

  std::vector<double> yb(nd * static_cast<std::size_t>(S), 0.0);
  std::vector<double> db(nd * static_cast<std::size_t>(S), 0.0);
  op.apply_stiffness_batch(ub, S, yb, db);

  for (int s = 0; s < S; ++s) {
    std::vector<double> y(nd, 0.0), d(nd, 0.0);
    op.apply_stiffness(u_s[static_cast<std::size_t>(s)], y, d);
    for (std::size_t i = 0; i < nd; ++i) {
      const std::size_t b = i * static_cast<std::size_t>(S) +
                            static_cast<std::size_t>(s);
      ASSERT_EQ(yb[b], y[i]) << "lane " << s << " dof " << i;
      ASSERT_EQ(db[b], d[i]) << "lane " << s << " dof " << i;
    }
  }
}

// An S-lane ExplicitSolver advances S independent scenarios per step; each
// lane's seismograms and final field must be bitwise identical to a scalar
// solver run on that scenario alone.
TEST(BatchSolver, LanesMatchScalarSolversBitwise) {
  const auto mesh = hanging_mesh(100.0);
  OperatorOptions oo;
  oo.abc = fem::AbcType::kStacey;
  oo.rayleigh = true;
  oo.damping_f_min = 0.01;
  oo.damping_f_max = 0.05;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.05;
  so.cfl_fraction = 0.4;

  const int S = 2;
  std::vector<PointSource> srcs;
  srcs.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    srcs.emplace_back(mesh, std::array<double, 3>{30.0 + 40.0 * s, 50.0, 20.0},
                      std::array<double, 3>{1.0, 0.0, 0.5 * s}, 1e9,
                      50.0 + 10.0 * s, 0.01);
  }
  const std::array<double, 3> rx = {70.0, 30.0, 0.0};

  ExplicitSolver batched(op, so, S);
  for (int s = 0; s < S; ++s) {
    batched.add_source(&srcs[static_cast<std::size_t>(s)], s);
  }
  batched.add_receiver(rx);
  batched.run();
  ASSERT_EQ(batched.n_lanes(), S);

  for (int s = 0; s < S; ++s) {
    ExplicitSolver scalar(op, so);
    scalar.add_source(&srcs[static_cast<std::size_t>(s)]);
    scalar.add_receiver(rx);
    scalar.run();

    const std::vector<double> lane = batched.displacement_lane(s);
    ASSERT_EQ(lane.size(), scalar.displacement().size());
    EXPECT_EQ(std::memcmp(lane.data(), scalar.displacement().data(),
                          lane.size() * sizeof(double)),
              0)
        << "lane " << s;
    for (int c = 0; c < 3; ++c) {
      const std::vector<double> got = batched.receiver_component(0, c, s);
      const std::vector<double> want = scalar.receiver_component(0, c);
      ASSERT_EQ(got.size(), want.size());
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            want.size() * sizeof(double)),
                0)
          << "lane " << s << " comp " << c;
    }
  }
}

// Batch-mode guard rails: the lane count is validated against
// fem::kMaxBatchLanes, and the scalar-only features (checkpointing, initial
// conditions, energy accounting) refuse a multi-lane solver instead of
// silently misbehaving.
TEST(BatchSolver, GuardRails) {
  const auto mesh = uniform_mesh(2, 100.0);
  OperatorOptions oo;
  const ElasticOperator op(mesh, oo);
  SolverOptions so;
  so.t_end = 0.05;

  EXPECT_THROW(ExplicitSolver(op, so, 0), std::invalid_argument);
  EXPECT_THROW(ExplicitSolver(op, so, fem::kMaxBatchLanes + 1),
               std::invalid_argument);

  ExplicitSolver batched(op, so, 2);
  EXPECT_THROW(batched.set_checkpoint("/tmp/nope", 2), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(batched.energy()), std::logic_error);
}

}  // namespace
