// Unit tests for quake::util — filters, statistics, RNG, IO.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <numbers>

#include "quake/util/checkpoint.hpp"
#include "quake/util/delta_codec.hpp"
#include "quake/util/filter.hpp"
#include "quake/util/io.hpp"
#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"
#include "quake/util/timer.hpp"

namespace {

using namespace quake::util;

std::vector<double> sine(double f, double fs, int n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        std::sin(2.0 * std::numbers::pi * f * i / fs);
  }
  return x;
}

TEST(Filter, PassesLowFrequency) {
  const double fs = 100.0;
  auto x = sine(0.5, fs, 4000);
  auto y = lowpass_zero_phase(x, 5.0, fs);
  // Interior samples nearly unchanged.
  double max_err = 0.0;
  for (int i = 500; i < 3500; ++i) {
    max_err = std::max(max_err, std::abs(y[static_cast<std::size_t>(i)] -
                                         x[static_cast<std::size_t>(i)]));
  }
  EXPECT_LT(max_err, 0.01);
}

TEST(Filter, AttenuatesHighFrequency) {
  const double fs = 100.0;
  auto x = sine(25.0, fs, 4000);
  auto y = lowpass_zero_phase(x, 2.0, fs);
  EXPECT_LT(norm_max(std::span<const double>(y).subspan(500, 3000)), 1e-3);
}

TEST(Filter, ZeroPhasePreservesPeakLocation) {
  const double fs = 200.0;
  std::vector<double> x(2000, 0.0);
  // Gaussian pulse centered at sample 1000.
  for (int i = 0; i < 2000; ++i) {
    x[static_cast<std::size_t>(i)] = std::exp(-0.5 * std::pow((i - 1000) / 40.0, 2));
  }
  auto y = lowpass_zero_phase(x, 3.0, fs);
  int peak = 0;
  for (int i = 1; i < 2000; ++i) {
    if (y[static_cast<std::size_t>(i)] > y[static_cast<std::size_t>(peak)]) peak = i;
  }
  EXPECT_NEAR(peak, 1000, 2);
}

TEST(Filter, RejectsBadCutoff) {
  EXPECT_THROW(butterworth_lowpass(60.0, 100.0), std::invalid_argument);
  EXPECT_THROW(butterworth_lowpass(0.0, 100.0), std::invalid_argument);
}

TEST(Stats, Norms) {
  std::vector<double> x = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm_l2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_max(x), 4.0);
}

TEST(Stats, RelL2AndCorrelation) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {2.0, 4.0, 6.0};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-15);
  EXPECT_NEAR(rel_l2(x, x), 0.0, 1e-15);
  std::vector<double> z = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(correlation(x, z), 0.0);
}

TEST(Stats, SizeMismatchThrows) {
  std::vector<double> x = {1.0};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(diff_l2(x, y), std::invalid_argument);
  EXPECT_THROW(dot(x, y), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(123);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Io, CsvRoundTripShape) {
  const std::string path = testing::TempDir() + "/quake_test.csv";
  std::vector<std::string> names = {"t", "u"};
  std::vector<std::vector<double>> cols = {{0.0, 0.1}, {1.0, 2.0}};
  write_csv(path, names, cols);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "t,u\n");
  std::fclose(f);
}

TEST(Io, CsvRejectsRagged) {
  std::vector<std::string> names = {"a", "b"};
  std::vector<std::vector<double>> cols = {{0.0, 0.1}, {1.0}};
  EXPECT_THROW(write_csv("/tmp/x.csv", names, cols), std::invalid_argument);
}

TEST(Io, PgmWritesHeader) {
  const std::string path = testing::TempDir() + "/quake_test.pgm";
  std::vector<double> v(16, 0.5);
  write_pgm(path, v, 4, 4, 0.0, 1.0);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_STREQ(magic, "P5");
  std::fclose(f);
}

TEST(Io, PgmRejectsBadDims) {
  std::vector<double> v(10, 0.0);
  EXPECT_THROW(write_pgm("/tmp/x.pgm", v, 4, 4, 0.0, 1.0),
               std::invalid_argument);
}

TEST(Io, WritersSurfaceDiskFullAsError) {
  // /dev/full accepts the open but fails every flushed write — the classic
  // silent-truncation trap the writers must surface as an exception.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  const std::vector<std::string> names = {"a"};
  const std::vector<std::vector<double>> cols = {{1.0, 2.0, 3.0}};
  EXPECT_THROW(write_csv("/dev/full", names, cols), std::runtime_error);
  std::vector<double> v(64 * 64, 0.5);
  EXPECT_THROW(write_pgm("/dev/full", v, 64, 64, 0.0, 1.0),
               std::runtime_error);
}

TEST(StopWatch, UnmatchedStopIsNoOp) {
  // Regression: stop() without a pending start() used to add whatever time
  // happened to elapse since construction (garbage into the total).
  StopWatch w;
  w.stop();
  EXPECT_DOUBLE_EQ(w.total_seconds(), 0.0);
  EXPECT_FALSE(w.running());
}

TEST(StopWatch, DoubleStopAddsNothing) {
  StopWatch w;
  w.start();
  EXPECT_TRUE(w.running());
  w.stop();
  const double t = w.total_seconds();
  EXPECT_GE(t, 0.0);
  w.stop();  // second stop with no start in between: no-op
  EXPECT_DOUBLE_EQ(w.total_seconds(), t);
}

TEST(StopWatch, ClearResetsRunningState) {
  StopWatch w;
  w.start();
  w.clear();
  EXPECT_FALSE(w.running());
  w.stop();  // must still be a no-op after clear()
  EXPECT_DOUBLE_EQ(w.total_seconds(), 0.0);
}

TEST(StopWatch, AccumulatesAcrossIntervals) {
  StopWatch w;
  w.start();
  w.stop();
  const double t1 = w.total_seconds();
  w.start();
  w.stop();
  EXPECT_GE(w.total_seconds(), t1);
}

TEST(Io, TextFileRoundTrip) {
  const std::string path = "/tmp/quake_util_text_test.txt";
  const std::string content = "line1\nline2 \xE2\x82\xAC\n";
  write_text_file(path, content);
  EXPECT_EQ(read_text_file(path), content);
  std::remove(path.c_str());
  EXPECT_THROW(read_text_file(path), std::runtime_error);
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.txt", "y"),
               std::runtime_error);
}

TEST(Crc32, KnownAnswer) {
  // IEEE 802.3 check value for the ASCII string "123456789".
  const unsigned char msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32({msg, sizeof(msg)}), 0xCBF43926u);
  // Streaming in two chunks matches one-shot.
  const std::uint32_t part = crc32({msg, 4});
  EXPECT_EQ(crc32({msg + 4, 5}, part), 0xCBF43926u);
  EXPECT_EQ(crc32({msg, 0u}), 0u);
}

TEST(Checkpoint, SnapshotRoundTrip) {
  const std::string path = testing::TempDir() + "/quake_snap_test.ckpt";
  Snapshot snap;
  snap.step = 1234;
  snap.add("u", {1.0, -2.5, 3.25});
  snap.add("hist", {});
  snap.add("v", {0.125});
  save_snapshot(path, snap);

  Snapshot loaded;
  ASSERT_TRUE(load_snapshot(path, &loaded));
  EXPECT_EQ(loaded.step, 1234);
  ASSERT_EQ(loaded.fields.size(), 3u);
  const auto u = loaded.field("u");
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[0], 1.0);
  EXPECT_EQ(u[1], -2.5);
  EXPECT_EQ(u[2], 3.25);
  EXPECT_EQ(loaded.field("hist").size(), 0u);
  EXPECT_EQ(loaded.field("v").size(), 1u);
  EXPECT_EQ(loaded.field("absent").size(), 0u);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptionAndTruncationRejected) {
  const std::string path = testing::TempDir() + "/quake_snap_bad.ckpt";
  Snapshot snap;
  snap.step = 7;
  snap.add("u", {1.0, 2.0, 3.0, 4.0});
  save_snapshot(path, snap);

  // Flip one payload byte: CRC must reject.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 24, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  Snapshot out;
  EXPECT_FALSE(load_snapshot(path, &out));

  // Truncation must reject too.
  save_snapshot(path, snap);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_FALSE(load_snapshot(path, &out));

  // Missing file: plain false, no throw.
  std::remove(path.c_str());
  EXPECT_FALSE(load_snapshot(path, &out));
}

TEST(Checkpoint, LoadStatusSplitsMissingFromCorrupt) {
  const std::string path = testing::TempDir() + "/quake_snap_status.ckpt";
  std::remove(path.c_str());
  Snapshot out;

  // No file at all: kMissing — nothing was ever written here.
  EXPECT_EQ(load_snapshot_status(path, &out), SnapshotLoadStatus::kMissing);

  Snapshot snap;
  snap.step = 42;
  snap.add("u", {1.0, 2.0, 3.0});
  save_snapshot(path, snap);
  EXPECT_EQ(load_snapshot_status(path, &out), SnapshotLoadStatus::kOk);
  EXPECT_EQ(out.step, 42);

  // A flipped byte fails CRC: kCorrupt, not kMissing.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 20, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  EXPECT_EQ(load_snapshot_status(path, &out), SnapshotLoadStatus::kCorrupt);

  // Truncation is corruption too — the file exists but cannot be decoded.
  save_snapshot(path, snap);
  std::filesystem::resize_file(path, 3);
  EXPECT_EQ(load_snapshot_status(path, &out), SnapshotLoadStatus::kCorrupt);
  std::remove(path.c_str());
}

TEST(Checkpoint, RotatingSaveKeepsLastKGenerations) {
  const std::string path = testing::TempDir() + "/quake_snap_rot.ckpt";
  for (int gen = 0; gen <= 4; ++gen) {
    std::remove(snapshot_generation_path(path, gen).c_str());
  }
  const int keep = 3;
  for (int step = 1; step <= 5; ++step) {
    Snapshot snap;
    snap.step = step;
    snap.add("u", {static_cast<double>(step)});
    ASSERT_TRUE(save_snapshot_rotating(path, snap, keep));
  }
  // Newest three survive (steps 5, 4, 3), older generations are pruned.
  for (int gen = 0; gen < keep; ++gen) {
    Snapshot out;
    ASSERT_TRUE(load_snapshot(snapshot_generation_path(path, gen), &out))
        << "generation " << gen;
    EXPECT_EQ(out.step, 5 - gen);
  }
  Snapshot out;
  EXPECT_FALSE(load_snapshot(snapshot_generation_path(path, keep), &out));
  for (int gen = 0; gen < keep; ++gen) {
    std::remove(snapshot_generation_path(path, gen).c_str());
  }
}

TEST(Checkpoint, RotatingSaveFailureLeavesPreviousChainIntact) {
  const std::string dir = testing::TempDir() + "/quake_snap_rot_fail";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/state.ckpt";
  Snapshot snap;
  snap.step = 11;
  snap.add("u", {1.0, 2.0});
  ASSERT_TRUE(save_snapshot_rotating(path, snap, 2));

  // Squat on the temp-file name with a directory so the next write fails
  // (EISDIR) the way a full disk would; the existing generation must stay
  // loadable. (Permission tricks don't work here: tests may run as root.)
  std::filesystem::create_directories(path + ".tmp");
  snap.step = 12;
  std::string error;
  EXPECT_FALSE(save_snapshot_rotating(path, snap, 2, &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove_all(path + ".tmp");
  Snapshot out;
  ASSERT_TRUE(load_snapshot(path, &out));
  EXPECT_EQ(out.step, 11);  // the failed save cost nothing
  std::filesystem::remove_all(dir);
}

TEST(DeltaCodec, RoundTripIsBitExact) {
  Rng rng(42);
  std::vector<double> prev(257), cur(257);
  for (auto& v : prev) v = rng.normal();
  // Mix of smooth drift (small mantissa deltas), identical entries (zero
  // XOR words), sign flips, and specials — everything a ghost payload
  // stepping through time can produce.
  for (std::size_t i = 0; i < cur.size(); ++i) {
    switch (i % 5) {
      case 0: cur[i] = prev[i]; break;
      case 1: cur[i] = prev[i] * (1.0 + 1e-15); break;
      case 2: cur[i] = -prev[i]; break;
      case 3: cur[i] = rng.normal() * 1e12; break;
      default: cur[i] = 0.0; break;
    }
  }
  cur[7] = std::numeric_limits<double>::infinity();
  cur[11] = -0.0;
  std::vector<std::uint8_t> code;
  delta_encode(prev, cur, code);
  std::vector<double> rt = prev;
  delta_decode_inplace(rt, code);
  EXPECT_EQ(std::memcmp(rt.data(), cur.data(), cur.size() * sizeof(double)),
            0);
  // Identical payloads collapse to a single zero-run token.
  delta_encode(cur, cur, code);
  EXPECT_LE(code.size(), 3u);
  rt = cur;
  delta_decode_inplace(rt, code);
  EXPECT_EQ(std::memcmp(rt.data(), cur.data(), cur.size() * sizeof(double)),
            0);
}

TEST(DeltaCodec, DecodeRejectsMalformedStreams) {
  const std::vector<double> base = {1.0, 2.0, 3.0};
  const std::vector<double> next = {1.5, 2.0, 3.0};
  std::vector<std::uint8_t> code;
  delta_encode(base, next, code);
  std::vector<double> buf = base;
  // Truncation mid-token.
  std::vector<std::uint8_t> cut(code.begin(), code.end() - 1);
  EXPECT_THROW(delta_decode_inplace(buf, cut), std::runtime_error);
  // Zero-run overrunning the payload.
  buf = base;
  const std::vector<std::uint8_t> overrun = {0x00, 0x04};
  EXPECT_THROW(delta_decode_inplace(buf, overrun), std::runtime_error);
  // Trailing garbage past the last word.
  std::vector<std::uint8_t> fat = code;
  fat.insert(fat.end(), {0x00, 0x01});
  buf = base;
  EXPECT_THROW(delta_decode_inplace(buf, fat), std::runtime_error);
}

TEST(DeltaRing, EvictionReanchorsAndForEachDecodes) {
  constexpr std::size_t kN = 32;
  Rng rng(7);
  DeltaRing ring(kN, /*capacity=*/4);
  std::vector<std::vector<double>> truth;
  std::vector<double> pay(kN, 0.0);
  for (int k = 0; k < 10; ++k) {
    // Wavefront-like evolution: most entries hold their value step to
    // step (zero XOR words), a few change — the regime the ring's delta
    // encoding is built for.
    for (std::size_t i = 0; i < 3; ++i) {
      pay[(static_cast<std::size_t>(k) * 3 + i) % kN] = rng.normal();
    }
    truth.push_back(pay);
    ring.push(k, pay);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.front_step(), 6);
  EXPECT_TRUE(ring.contains(6));
  EXPECT_TRUE(ring.contains(9));
  EXPECT_FALSE(ring.contains(5));
  EXPECT_FALSE(ring.contains(10));
  int seen = 0;
  ring.for_each(7, 10, [&](int step, std::span<const double> p) {
    ASSERT_GE(step, 7);
    ASSERT_LT(step, 10);
    const auto& want = truth[static_cast<std::size_t>(step)];
    EXPECT_EQ(std::memcmp(p.data(), want.data(), kN * sizeof(double)), 0);
    ++seen;
  });
  EXPECT_EQ(seen, 3);
  // Deltas of a smoothly evolving payload must beat raw storage.
  EXPECT_LT(ring.stored_bytes(), ring.raw_bytes());
  // A non-contiguous step resets the ring rather than storing a bogus
  // delta chain.
  ring.push(20, pay);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.front_step(), 20);
  EXPECT_FALSE(ring.contains(9));
}

}  // namespace
