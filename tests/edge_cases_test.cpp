// Argument-validation and edge-case coverage across the public API: bad
// options must throw rather than corrupt state, degenerate inputs must be
// handled, and documented preconditions are enforced.

#include <gtest/gtest.h>

#include <cmath>

#include "quake/fem/hex_element.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/octree/linear_octree.hpp"
#include "quake/opt/frankel.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/sh1d.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/stats.hpp"
#include "quake/wave2d/march.hpp"
#include "quake/wave2d/sh_model.hpp"
#include "quake/wave3d/scalar_model.hpp"

namespace {

using namespace quake;

TEST(EdgeCases, BuildOctreeRejectsBadLevels) {
  EXPECT_THROW(octree::build_octree([](const octree::Octant&) { return false; },
                                    -1),
               std::invalid_argument);
  EXPECT_THROW(octree::build_octree([](const octree::Octant&) { return false; },
                                    octree::kMaxLevel + 1),
               std::invalid_argument);
}

TEST(EdgeCases, EmptyRefinementGivesRootOnly) {
  const auto t =
      octree::build_octree([](const octree::Octant&) { return false; }, 5);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], octree::Octant{});
  EXPECT_TRUE(t.validate(true));
  EXPECT_TRUE(octree::is_balanced(t, octree::BalanceScope::kAll));
}

TEST(EdgeCases, MeshOptionsValidation) {
  const vel::HomogeneousModel m(
      vel::Material::from_velocities(2000.0, 1000.0, 2000.0));
  mesh::MeshOptions bad;
  bad.domain_size = 0.0;
  EXPECT_THROW(mesh::generate_mesh(m, bad), std::invalid_argument);
}

TEST(EdgeCases, SolverRejectsBadTimeSetup) {
  const vel::HomogeneousModel m(
      vel::Material::from_velocities(2000.0, 1000.0, 2000.0));
  mesh::MeshOptions opt;
  opt.domain_size = 100.0;
  opt.f_max = 1e-9;
  opt.min_level = 1;
  opt.max_level = 1;
  const auto mesh = mesh::generate_mesh(m, opt);
  const solver::ElasticOperator op(mesh, {});
  solver::SolverOptions so;
  so.t_end = -1.0;
  EXPECT_THROW(solver::ExplicitSolver(op, so), std::invalid_argument);
}

TEST(EdgeCases, PointSourceRejectsZeroDirection) {
  const vel::HomogeneousModel m(
      vel::Material::from_velocities(2000.0, 1000.0, 2000.0));
  mesh::MeshOptions opt;
  opt.domain_size = 100.0;
  opt.f_max = 1e-9;
  opt.min_level = 1;
  opt.max_level = 1;
  const auto mesh = mesh::generate_mesh(m, opt);
  EXPECT_THROW(solver::PointSource(mesh, {50, 50, 50}, {0, 0, 0}, 1.0, 1.0, 1.0),
               std::invalid_argument);
}

TEST(EdgeCases, FaultSourceRejectsDegeneratePlane) {
  const vel::HomogeneousModel m(
      vel::Material::from_velocities(2000.0, 1000.0, 2000.0));
  mesh::MeshOptions opt;
  opt.domain_size = 100.0;
  opt.f_max = 1e-9;
  opt.min_level = 1;
  opt.max_level = 1;
  const auto mesh = mesh::generate_mesh(m, opt);
  solver::FaultSource::Spec fs;
  fs.x0 = 60.0;
  fs.x1 = 40.0;  // inverted extent
  EXPECT_THROW(solver::FaultSource(mesh, fs), std::invalid_argument);
}

TEST(EdgeCases, Sh1dRejectsBadLayer) {
  solver::ShLayerParams p{0.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(
      solver::sh_layer_surface_response(p, [](double) { return 0.0; }, 10, 0.1),
      std::invalid_argument);
}

TEST(EdgeCases, ShModelValidation) {
  wave2d::ShGrid g{4, 4, 10.0};
  EXPECT_THROW(
      wave2d::ShModel(g, std::vector<double>(3, 1e9), 1000.0),  // wrong size
      std::invalid_argument);
  EXPECT_THROW(wave2d::ShModel(
                   g, std::vector<double>(static_cast<std::size_t>(g.n_elems()),
                                          -1.0),
                   1000.0),
               std::invalid_argument);
  EXPECT_THROW(wave2d::ShModel(
                   g, std::vector<double>(static_cast<std::size_t>(g.n_elems()),
                                          1e9),
                   0.0),
               std::invalid_argument);
}

TEST(EdgeCases, MarchValidation) {
  wave2d::ShGrid g{4, 4, 10.0};
  const wave2d::ShModel m(
      g, std::vector<double>(static_cast<std::size_t>(g.n_elems()), 1e9),
      1000.0);
  EXPECT_THROW(wave2d::time_march(m, {0.0, 10},
                                  [](int, double, std::span<double>) {}, {},
                                  false),
               std::invalid_argument);
  EXPECT_THROW(wave2d::time_march(m, {0.01, 0},
                                  [](int, double, std::span<double>) {}, {},
                                  false),
               std::invalid_argument);
}

TEST(EdgeCases, Grid3dValidation) {
  wave3d::ScalarGrid3d bad{0, 4, 4, 10.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  wave3d::ScalarGrid3d g{2, 2, 2, 10.0};
  EXPECT_THROW(wave3d::ScalarModel3d(g, std::vector<double>(7, 1e9), 1000.0),
               std::invalid_argument);
}

TEST(EdgeCases, FrankelHandlesZeroOperator) {
  // A zero operator has lambda_max = 0; the sweep must bail out cleanly.
  opt::LinOp zero = [](std::span<const double>, std::span<double>) {};
  std::vector<double> b(4, 1.0), x(4, 0.0);
  opt::FrankelOptions fo;
  fo.sweeps = 3;
  opt::frankel_two_step(zero, b, x, fo, nullptr);
  EXPECT_DOUBLE_EQ(util::norm_l2(x), 0.0);
}

TEST(EdgeCases, HexApplyFlopsAccounting) {
  EXPECT_GT(fem::hex_apply_flops(true), fem::hex_apply_flops(false));
  EXPECT_GT(fem::hex_apply_flops(false), 1000u);
}

TEST(EdgeCases, InitialConditionSizeChecked) {
  const vel::HomogeneousModel m(
      vel::Material::from_velocities(2000.0, 1000.0, 2000.0));
  mesh::MeshOptions opt;
  opt.domain_size = 100.0;
  opt.f_max = 1e-9;
  opt.min_level = 1;
  opt.max_level = 1;
  const auto mesh = mesh::generate_mesh(m, opt);
  const solver::ElasticOperator op(mesh, {});
  solver::SolverOptions so;
  so.t_end = 0.01;
  solver::ExplicitSolver solver(op, so);
  std::vector<double> wrong(5, 0.0);
  EXPECT_THROW(solver.set_initial_conditions(wrong, wrong),
               std::invalid_argument);
}

}  // namespace
