// check_bench_schema — validates a "quake.bench/1" report produced by
// MetricsSink (see docs/OBSERVABILITY.md for the schema). Used by CI to
// catch silently malformed bench output:
//
//   check_bench_schema FILE [--require PATH]...
//
// Checks the envelope (schema tag, bench name, non-empty rows), the shape
// of every row (params/metrics objects; optional "ranks" merged-report with
// ordered min <= mean <= max summaries; optional "series" of numeric
// arrays), and that every --require dotted path (e.g. "ranks" or
// "series.gn/cg_iters" — metric names use '/', so '.' is a safe separator)
// is present in every row. Bench-specific contracts keyed on the bench
// name pin evidence obligations: "throughput" (warm A/B numbers, zero
// failed requests in the clean trial, a lane sweep at >= 2 lane counts
// with bitwise-checked requests/sec, batch rows bitwise identical to
// unbatched with at least one coalesced solve, bitwise kill isolation),
// "fig2_1"
// (per-phase store statistics with sane pool hit rates), and "table2_1"
// (fault-sweep rows carry all four recovery policies with the
// recover/agree|restore|replay|resume breakdown, a zero-rollback replay
// row, and a rolled-back rollback row; ladder rows carry the global-dt
// element-update accounting, and --lts-sweep rows carry the off/on LTS
// evidence — see check_table2_1_lts_contract). Exits 0 on success, 1 with
// a diagnostic on the first violation.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "quake/obs/json.hpp"
#include "quake/util/io.hpp"

namespace {

using quake::obs::Json;

std::string g_context;

bool fail(const std::string& what) {
  std::fprintf(stderr, "check_bench_schema: %s: %s\n", g_context.c_str(),
               what.c_str());
  return false;
}

bool is_number(const Json* j) {
  return j != nullptr && j->type() == Json::Type::kNumber;
}

bool check_summary(const Json& s, const std::string& name) {
  if (!s.is_object()) return fail(name + ": summary is not an object");
  const Json* mn = s.find("min");
  const Json* me = s.find("mean");
  const Json* mx = s.find("max");
  const Json* su = s.find("sum");
  if (!is_number(mn) || !is_number(me) || !is_number(mx) || !is_number(su)) {
    return fail(name + ": summary needs numeric min/mean/max/sum");
  }
  if (!(mn->as_number() <= me->as_number() &&
        me->as_number() <= mx->as_number())) {
    return fail(name + ": summary violates min <= mean <= max");
  }
  return true;
}

bool check_ranks(const Json& ranks) {
  if (!ranks.is_object()) return fail("\"ranks\" is not an object");
  if (!is_number(ranks.find("n_ranks"))) {
    return fail("\"ranks\" needs numeric n_ranks");
  }
  const Json* scopes = ranks.find("scopes");
  if (scopes == nullptr || !scopes->is_object()) {
    return fail("\"ranks\" needs a scopes object");
  }
  for (const auto& [path, sc] : scopes->members()) {
    if (!sc.is_object() || !is_number(sc.find("calls")) ||
        sc.find("seconds") == nullptr) {
      return fail("scope \"" + path + "\" needs calls and seconds");
    }
    if (!check_summary(*sc.find("seconds"), "scope \"" + path + "\"")) {
      return false;
    }
  }
  for (const char* section : {"counters", "gauges"}) {
    const Json* obj = ranks.find(section);
    if (obj == nullptr || !obj->is_object()) {
      return fail(std::string("\"ranks\" needs a ") + section + " object");
    }
    for (const auto& [name, s] : obj->members()) {
      if (!check_summary(s, std::string(section) + " \"" + name + "\"")) {
        return false;
      }
    }
  }
  // A report that times the ghost exchange must also carry the overlap
  // instrumentation: the post/drain sub-scopes (including the drain's wait
  // phase, which separates blocked-on-neighbors time from the rank-ordered
  // accumulation), the hidden-fraction gauge, and byte-level send
  // accounting. This pins the exchange telemetry contract so a refactor
  // cannot silently drop it.
  const Json* exchange = scopes->find("step/exchange");
  if (exchange != nullptr) {
    for (const char* sub : {"step/exchange/post", "step/exchange/drain",
                            "step/exchange/drain/wait"}) {
      if (scopes->find(sub) == nullptr) {
        return fail(std::string("scopes has step/exchange but no \"") + sub +
                    "\"");
      }
    }
    if (ranks.find("gauges")->find("par/overlap_fraction") == nullptr) {
      return fail(
          "scopes has step/exchange but gauges lack \"par/overlap_fraction\"");
    }
    if (ranks.find("counters")->find("comm/bytes_sent") == nullptr) {
      return fail(
          "scopes has step/exchange but counters lack \"comm/bytes_sent\"");
    }
  }
  return true;
}

// A row whose metrics report recoveries > 0 claims a fault was survived
// in place; such a row must carry the recovery telemetry that proves it —
// the recover scope tree (agreement, restore, resume), the recovery
// counters, and the epoch gauge. This pins the recovery-observability
// contract so a refactor cannot report recoveries without evidence.
bool check_recovery_contract(const Json& row) {
  const Json* metrics = row.find("metrics");
  const Json* recoveries =
      metrics == nullptr ? nullptr : metrics->find("recoveries");
  if (!is_number(recoveries) || recoveries->as_number() <= 0.0) return true;
  const Json* ranks = row.find("ranks");
  if (ranks == nullptr) {
    return fail("metrics.recoveries > 0 but row has no \"ranks\" report");
  }
  const Json* scopes = ranks->find("scopes");
  for (const char* sc :
       {"recover", "recover/agree", "recover/restore", "recover/resume"}) {
    if (scopes == nullptr || scopes->find(sc) == nullptr) {
      return fail(std::string("metrics.recoveries > 0 but scopes lack \"") +
                  sc + "\"");
    }
  }
  const Json* counters = ranks->find("counters");
  for (const char* c :
       {"par/recoveries", "par/ranks_revived", "par/steps_rolled_back"}) {
    if (counters == nullptr || counters->find(c) == nullptr) {
      return fail(std::string("metrics.recoveries > 0 but counters lack \"") +
                  c + "\"");
    }
  }
  const Json* gauges = ranks->find("gauges");
  if (gauges == nullptr || gauges->find("par/epoch") == nullptr) {
    return fail("metrics.recoveries > 0 but gauges lack \"par/epoch\"");
  }
  return true;
}

const Json* row_param(const Json& row, const char* key) {
  const Json* params = row.find("params");
  return params == nullptr ? nullptr : params->find(key);
}

bool param_is(const Json& row, const char* key, const char* want) {
  const Json* p = row_param(row, key);
  return p != nullptr && p->type() == Json::Type::kString &&
         p->as_string() == want;
}

// The throughput bench (bench_throughput, docs/SERVICE.md and
// docs/BATCHING.md) claims setup amortization, lane/batch scaling, and
// failure isolation; its report must carry the evidence. The warm row
// needs the A/B numbers and a clean service (zero failed requests); the
// lane sweep needs >= 2 distinct lane counts, each with a requests/sec
// figure and a bitwise match against the single-lane baseline; every batch
// row must prove the batched results are bitwise identical to unbatched,
// and at least one must have actually batched (batch_size > 1); the kill
// row must prove bitwise isolation of the surviving requests. This pins
// the serving contract so a service regression cannot ship a green-looking
// report.
bool check_throughput_contract(const Json& rows) {
  const Json* warm = nullptr;
  const Json* kill = nullptr;
  std::vector<const Json*> lane_rows;
  std::vector<const Json*> batch_rows;
  for (const Json& row : rows.items()) {
    if (param_is(row, "mode", "warm")) warm = &row;
    if (param_is(row, "mode", "kill")) kill = &row;
    if (param_is(row, "mode", "lanes")) lane_rows.push_back(&row);
    if (param_is(row, "mode", "batch")) batch_rows.push_back(&row);
  }
  g_context += " (throughput contract)";
  if (warm == nullptr) return fail("no row with params.mode == \"warm\"");
  if (kill == nullptr) return fail("no row with params.mode == \"kill\"");
  const Json* wm = warm->find("metrics");
  for (const char* key :
       {"requests_completed", "warm_wall_seconds", "cold_wall_seconds",
        "svc_requests_failed"}) {
    if (wm == nullptr || !is_number(wm->find(key))) {
      return fail(std::string("warm row needs numeric metrics.") + key);
    }
  }
  if (wm->find("requests_completed")->as_number() <= 0.0) {
    return fail("warm row completed zero requests");
  }
  if (wm->find("svc_requests_failed")->as_number() != 0.0) {
    return fail("clean warm trial reports svc_requests_failed != 0");
  }
  const Json* km = kill->find("metrics");
  const Json* iso = km == nullptr ? nullptr : km->find("kill_isolation_bitwise");
  if (!is_number(iso)) {
    return fail("kill row needs numeric metrics.kill_isolation_bitwise");
  }
  if (iso->as_number() != 1.0) {
    return fail("kill row reports kill_isolation_bitwise != 1");
  }

  // Lane sweep: >= 2 distinct lane counts, each bitwise-clean with a
  // throughput figure (the ISSUE's requests/sec-vs-lanes evidence).
  std::vector<double> lane_counts;
  for (const Json* row : lane_rows) {
    const Json* lanes = row_param(*row, "lanes");
    if (!is_number(lanes)) return fail("lanes row needs numeric params.lanes");
    const double L = lanes->as_number();
    bool seen = false;
    for (const double v : lane_counts) seen = seen || v == L;
    if (!seen) lane_counts.push_back(L);
    const Json* m = row->find("metrics");
    for (const char* key : {"requests_per_second", "requests_completed",
                            "matches_single_lane_bitwise",
                            "svc_requests_failed"}) {
      if (m == nullptr || !is_number(m->find(key))) {
        return fail(std::string("lanes row needs numeric metrics.") + key);
      }
    }
    if (m->find("requests_completed")->as_number() <= 0.0) {
      return fail("lanes row completed zero requests");
    }
    if (m->find("matches_single_lane_bitwise")->as_number() != 1.0) {
      return fail("lanes row reports matches_single_lane_bitwise != 1");
    }
    if (m->find("svc_requests_failed")->as_number() != 0.0) {
      return fail("lanes row reports svc_requests_failed != 0");
    }
  }
  if (lane_counts.size() < 2) {
    return fail("need rows with params.mode == \"lanes\" at >= 2 distinct "
                "lane counts");
  }

  // Batch sweep: every row bitwise-identical to unbatched; at least one row
  // must have actually coalesced (batch_size > 1 with batches > 0).
  if (batch_rows.empty()) {
    return fail("no row with params.mode == \"batch\"");
  }
  bool any_batched = false;
  for (const Json* row : batch_rows) {
    const Json* size = row_param(*row, "batch_size");
    if (!is_number(size)) {
      return fail("batch row needs numeric params.batch_size");
    }
    const Json* m = row->find("metrics");
    for (const char* key :
         {"requests_per_second", "requests_completed", "batches",
          "batched_requests", "batch_matches_unbatched_bitwise",
          "svc_requests_failed"}) {
      if (m == nullptr || !is_number(m->find(key))) {
        return fail(std::string("batch row needs numeric metrics.") + key);
      }
    }
    if (m->find("batch_matches_unbatched_bitwise")->as_number() != 1.0) {
      return fail("batch row reports batch_matches_unbatched_bitwise != 1");
    }
    if (m->find("svc_requests_failed")->as_number() != 0.0) {
      return fail("batch row reports svc_requests_failed != 0");
    }
    if (size->as_number() > 1.0 && m->find("batches")->as_number() > 0.0) {
      any_batched = true;
    }
  }
  if (!any_batched) {
    return fail("no batch row with params.batch_size > 1 and metrics.batches "
                "> 0 (batching never exercised)");
  }
  return true;
}

// The table2_1 --fault-sweep rows claim a recovery-latency comparison
// across the three tiers (see DESIGN.md "Localized recovery"); when any
// row carries a params.mode, all seven policies must be present and each
// must carry the wall-clock numbers, the recover/agree|restore|replay
// |resume latency breakdown, the donation-wait split, and the compressed
// log-ring accounting. The replay row must prove zero survivor rollback
// (steps_rolled_back == 0, steps_replayed > 0 with the recover/replay
// scope) and a live, compressing message log; the rollback row must
// prove it actually rolled back; the donation_sync/donation_async pair
// are fault-free controls (no recoveries, sync shows a nonzero blocking
// wait); the multi_victim row must prove both victims restored from
// donations in one concurrent tier-1 pass. Plain table rows (no
// params.mode) are exempt, so the contract is inert for runs without
// --fault-sweep.
bool check_table2_1_contract(const Json& rows) {
  constexpr int kModes = 7;
  const Json* sweep[kModes] = {};
  const char* names[kModes] = {"clean",         "recovery",
                               "rollback",      "full_restart",
                               "donation_sync", "donation_async",
                               "multi_victim"};
  bool any_mode = false;
  for (const Json& row : rows.items()) {
    if (row_param(row, "mode") == nullptr) continue;
    any_mode = true;
    for (int m = 0; m < kModes; ++m) {
      if (param_is(row, "mode", names[m])) sweep[m] = &row;
    }
  }
  if (!any_mode) return true;
  g_context += " (table2_1 fault-sweep contract)";
  for (int m = 0; m < kModes; ++m) {
    if (sweep[m] == nullptr) {
      return fail(std::string("no row with params.mode == \"") + names[m] +
                  "\"");
    }
    const Json* mm = sweep[m]->find("metrics");
    for (const char* key :
         {"wall_seconds_min", "wall_seconds_mean", "excess_over_clean_seconds",
          "steps_rolled_back", "steps_replayed", "recover_agree_seconds",
          "recover_restore_seconds", "recover_replay_seconds",
          "recover_resume_seconds", "donate_wait_mean_seconds",
          "donate_wait_max_seconds", "donation_restores", "donations_served",
          "multi_victim_replays", "log_bytes", "log_raw_bytes",
          "log_compression_ratio"}) {
      if (mm == nullptr || !is_number(mm->find(key))) {
        return fail(std::string(names[m]) + " row needs numeric metrics." +
                    key);
      }
    }
  }
  const Json* rm = sweep[1]->find("metrics");
  if (rm->find("steps_rolled_back")->as_number() != 0.0) {
    return fail("recovery (replay) row reports steps_rolled_back != 0");
  }
  if (rm->find("steps_replayed")->as_number() <= 0.0) {
    return fail("recovery (replay) row reports steps_replayed <= 0");
  }
  if (rm->find("log_bytes")->as_number() <= 0.0) {
    return fail("recovery (replay) row reports no message-log memory");
  }
  if (rm->find("log_compression_ratio")->as_number() < 1.0) {
    return fail("recovery (replay) row log_compression_ratio < 1");
  }
  const Json* rranks = sweep[1]->find("ranks");
  const Json* rscopes = rranks == nullptr ? nullptr : rranks->find("scopes");
  if (rscopes == nullptr || rscopes->find("recover/replay") == nullptr) {
    return fail("recovery (replay) row lacks the recover/replay scope");
  }
  const Json* bm = sweep[2]->find("metrics");
  if (bm->find("steps_rolled_back")->as_number() <= 0.0) {
    return fail("rollback row reports steps_rolled_back <= 0");
  }
  const Json* sm = sweep[4]->find("metrics");
  const Json* am = sweep[5]->find("metrics");
  if (sm->find("recoveries")->as_number() != 0.0 ||
      am->find("recoveries")->as_number() != 0.0) {
    return fail("donation A/B rows must be fault-free (recoveries == 0)");
  }
  if (sm->find("donate_wait_max_seconds")->as_number() <= 0.0) {
    return fail("donation_sync row reports no blocking donation wait");
  }
  const Json* vm = sweep[6]->find("metrics");
  if (vm->find("steps_rolled_back")->as_number() != 0.0) {
    return fail("multi_victim row reports steps_rolled_back != 0");
  }
  if (vm->find("ranks_revived")->as_number() < 2.0) {
    return fail("multi_victim row revived fewer than 2 ranks");
  }
  if (vm->find("multi_victim_replays")->as_number() < 1.0) {
    return fail("multi_victim row reports no concurrent multi-victim replay");
  }
  if (vm->find("donation_restores")->as_number() < 2.0) {
    return fail("multi_victim row reports fewer than 2 donation restores");
  }
  return true;
}

// Table2_1 element-update accounting. The plain ladder rows (params.ranks
// with no mode/drain_mode/lts) run the global-dt solver, so they must
// report exactly one element-kernel application per element per step —
// metrics.updates_saved_ratio == 1 — with the par/element_updates counter
// present in the gathered telemetry, the overlapped-exchange scope
// breakdown (post/drain/wait), the par/overlap_fraction gauge, and the
// comm/bytes_sent counter (these used to be CI-level --require paths, but
// the serial LTS rows legitimately carry no rank telemetry, so the pins
// live here keyed by row type). The --lts-sweep rows (params.lts =
// off|on, params.scheme = serial|par) pin the LTS evidence: each scheme
// carries an interleaved off/on pair; every off row reports ratio 1; the
// serial on row must come from a multi-level, multi-class mesh, actually
// save updates, and keep the Fig 2.2 closed-form error at the off row's
// level; the parallel on row must save updates while its final field and
// surface seismogram stay near the global-dt run's. Absent --lts-sweep the
// LTS half is inert, matching the other sweeps.

// True when row.ranks.<section>.<key> exists (section is "scopes",
// "counters", or "gauges" in the merged telemetry report).
bool row_ranks_has(const Json& row, const char* section, const char* key) {
  const Json* ranks = row.find("ranks");
  const Json* sec = ranks == nullptr ? nullptr : ranks->find(section);
  return sec != nullptr && sec->find(key) != nullptr;
}

// Every table2_1 row that runs the parallel solver must carry the
// overlapped-exchange breakdown in its gathered telemetry.
bool pin_exchange_telemetry(const Json& row, const std::string& what) {
  for (const char* scope : {"step/exchange/post", "step/exchange/drain",
                            "step/exchange/drain/wait"}) {
    if (!row_ranks_has(row, "scopes", scope)) {
      return fail(what + " row telemetry lacks the " + scope + " scope");
    }
  }
  if (!row_ranks_has(row, "gauges", "par/overlap_fraction") ||
      !row_ranks_has(row, "counters", "comm/bytes_sent")) {
    return fail(what + " row telemetry lacks par/overlap_fraction or "
                "comm/bytes_sent");
  }
  return true;
}

bool check_table2_1_lts_contract(const Json& rows) {
  g_context += " (table2_1 element-updates contract)";
  const Json* pair[2][2] = {};  // [scheme: 0 serial, 1 par][lts: 0 off, 1 on]
  for (const Json& row : rows.items()) {
    if (row_param(row, "mode") != nullptr ||
        row_param(row, "drain_mode") != nullptr) {
      if (!pin_exchange_telemetry(row, "sweep")) return false;
      continue;
    }
    if (row_param(row, "lts") == nullptr) {
      // Ladder row: global-dt accounting must be present and trivial.
      const Json* m = row.find("metrics");
      const Json* ratio = m == nullptr ? nullptr : m->find("updates_saved_ratio");
      const Json* updates = m == nullptr ? nullptr : m->find("element_updates");
      if (!is_number(ratio) || !is_number(updates)) {
        return fail("ladder row needs numeric metrics.updates_saved_ratio "
                    "and metrics.element_updates");
      }
      if (ratio->as_number() != 1.0) {
        return fail("global-dt ladder row reports updates_saved_ratio != 1");
      }
      if (updates->as_number() <= 0.0) {
        return fail("ladder row reports element_updates <= 0");
      }
      const Json* ranks = row.find("ranks");
      const Json* counters = ranks == nullptr ? nullptr : ranks->find("counters");
      if (counters == nullptr ||
          counters->find("par/element_updates") == nullptr) {
        return fail("ladder row telemetry lacks the par/element_updates "
                    "counter");
      }
      if (!pin_exchange_telemetry(row, "ladder")) return false;
      if (!is_number(m->find("overlap_fraction"))) {
        return fail("ladder row needs numeric metrics.overlap_fraction");
      }
      continue;
    }
    const int s = param_is(row, "scheme", "serial") ? 0
                  : param_is(row, "scheme", "par")  ? 1
                                                    : -1;
    const int l = param_is(row, "lts", "off")  ? 0
                  : param_is(row, "lts", "on") ? 1
                                               : -1;
    if (s < 0 || l < 0) {
      return fail("lts row needs params.scheme in {serial, par} and "
                  "params.lts in {off, on}");
    }
    pair[s][l] = &row;
  }
  if (pair[0][0] == nullptr && pair[0][1] == nullptr &&
      pair[1][0] == nullptr && pair[1][1] == nullptr) {
    return true;  // no --lts-sweep in this report
  }
  const char* scheme_names[2] = {"serial", "par"};
  for (int s = 0; s < 2; ++s) {
    for (int l = 0; l < 2; ++l) {
      if (pair[s][l] == nullptr) {
        return fail(std::string("lts sweep lacks the ") + scheme_names[s] +
                    " lts=" + (l != 0 ? "on" : "off") + " row");
      }
      const Json* m = pair[s][l]->find("metrics");
      for (const char* key :
           {"updates_saved_ratio", "element_updates", "n_classes",
            "octree_levels", "n_steps"}) {
        if (m == nullptr || !is_number(m->find(key))) {
          return fail(std::string(scheme_names[s]) + " lts row needs numeric "
                      "metrics." + key);
        }
      }
      if (l == 0 && m->find("updates_saved_ratio")->as_number() != 1.0) {
        return fail(std::string(scheme_names[s]) +
                    " lts=off row reports updates_saved_ratio != 1");
      }
      if (l == 1) {
        if (m->find("updates_saved_ratio")->as_number() <= 1.0) {
          return fail(std::string(scheme_names[s]) +
                      " lts=on row saved no updates (ratio <= 1)");
        }
        if (m->find("n_classes")->as_number() < 2.0) {
          return fail(std::string(scheme_names[s]) +
                      " lts=on row clustered into < 2 rate classes");
        }
        if (m->find("octree_levels")->as_number() < 2.0) {
          return fail(std::string(scheme_names[s]) +
                      " lts=on mesh spans < 2 octree levels");
        }
      }
    }
  }
  // Serial pair: the closed-form verification error must not move.
  const Json* so = pair[0][0]->find("metrics");
  const Json* sn = pair[0][1]->find("metrics");
  if (!is_number(so->find("rel_l2_err")) || !is_number(sn->find("rel_l2_err"))) {
    return fail("serial lts rows need numeric metrics.rel_l2_err");
  }
  const double err_off = so->find("rel_l2_err")->as_number();
  const double err_on = sn->find("rel_l2_err")->as_number();
  if (!(err_off < 0.5)) {
    return fail("serial lts=off closed-form verification failed "
                "(rel_l2_err >= 0.5)");
  }
  if (!(err_on <= 1.25 * err_off)) {
    return fail("serial lts=on degrades the closed-form error by > 25% over "
                "the global-dt run");
  }
  // Parallel pair: bounded drift from the global-dt run, with the
  // element-update counter in both rows' telemetry.
  const Json* pn = pair[1][1]->find("metrics");
  const Json* ud = pn->find("u_final_rel_diff_vs_global");
  const Json* sd = pn->find("seis_rel_diff_vs_global");
  if (!is_number(ud) || !is_number(sd)) {
    return fail("par lts=on row needs numeric u_final/seis rel-diff metrics");
  }
  if (!(ud->as_number() < 0.15)) {
    return fail("par lts=on final field drifted >= 15% from global dt");
  }
  if (!(sd->as_number() < 0.3)) {
    return fail("par lts=on seismogram drifted >= 30% from global dt");
  }
  for (int l = 0; l < 2; ++l) {
    const Json& row = *pair[1][l];
    if (!row_ranks_has(row, "counters", "par/element_updates")) {
      return fail("par lts row telemetry lacks the par/element_updates "
                  "counter");
    }
    if (!pin_exchange_telemetry(row, "par lts")) return false;
  }
  return true;
}

// The fig2_1 bench surfaces per-phase etree buffer-pool statistics; every
// store-phase row must carry the page accounting and a sane hit rate, and
// checksum verification must have seen no failures.
bool check_fig2_1_contract(const Json& rows) {
  g_context += " (fig2_1 contract)";
  std::size_t store_rows = 0;
  for (const Json& row : rows.items()) {
    if (!param_is(row, "section", "store")) continue;
    ++store_rows;
    const Json* m = row.find("metrics");
    for (const char* key :
         {"page_reads", "page_writes", "cache_hits", "pool_hit_rate",
          "page_verify_failures"}) {
      if (m == nullptr || !is_number(m->find(key))) {
        return fail(std::string("store row needs numeric metrics.") + key);
      }
    }
    const double rate = m->find("pool_hit_rate")->as_number();
    if (rate < 0.0 || rate > 1.0) {
      return fail("store row pool_hit_rate outside [0, 1]");
    }
    if (m->find("page_verify_failures")->as_number() != 0.0) {
      return fail("store row reports page checksum failures");
    }
  }
  if (store_rows == 0) {
    return fail("no row with params.section == \"store\"");
  }
  return true;
}

bool check_series(const Json& series) {
  if (!series.is_object()) return fail("\"series\" is not an object");
  for (const auto& [name, arr] : series.members()) {
    if (!arr.is_array()) {
      return fail("series \"" + name + "\" is not an array");
    }
    for (const Json& v : arr.items()) {
      if (v.type() != Json::Type::kNumber) {
        return fail("series \"" + name + "\" has a non-numeric sample");
      }
    }
  }
  return true;
}

// Navigates a dotted path ("series.gn/cg_iters") through one row.
bool has_path(const Json& row, const std::string& path) {
  const Json* cur = &row;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (!cur->is_object()) return false;
    cur = cur->find(key);
    if (cur == nullptr) return false;
    if (dot == std::string::npos) return true;
    start = dot + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::vector<std::string> required;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--require") == 0 && a + 1 < argc) {
      required.emplace_back(argv[++a]);
    } else if (file.empty() && argv[a][0] != '-') {
      file = argv[a];
    } else {
      std::fprintf(stderr, "usage: %s FILE [--require PATH]...\n", argv[0]);
      return 2;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr, "usage: %s FILE [--require PATH]...\n", argv[0]);
    return 2;
  }

  g_context = file;
  std::string text;
  try {
    text = quake::util::read_text_file(file);
  } catch (const std::exception& e) {
    fail(e.what());
    return 1;
  }

  Json root;
  std::string err;
  if (!Json::parse(text, &root, &err)) {
    fail("JSON parse error: " + err);
    return 1;
  }
  if (!root.is_object()) {
    fail("top level is not an object");
    return 1;
  }
  const Json* schema = root.find("schema");
  if (schema == nullptr || schema->type() != Json::Type::kString ||
      schema->as_string() != "quake.bench/1") {
    fail("missing or unknown schema tag (want \"quake.bench/1\")");
    return 1;
  }
  const Json* bench = root.find("bench");
  if (bench == nullptr || bench->type() != Json::Type::kString ||
      bench->as_string().empty()) {
    fail("missing bench name");
    return 1;
  }
  const Json* rows = root.find("rows");
  if (rows == nullptr || !rows->is_array() || rows->items().empty()) {
    fail("rows missing or empty");
    return 1;
  }

  std::size_t i = 0;
  for (const Json& row : rows->items()) {
    g_context = file + " row " + std::to_string(i++);
    if (!row.is_object()) {
      fail("row is not an object");
      return 1;
    }
    for (const char* section : {"params", "metrics"}) {
      const Json* obj = row.find(section);
      if (obj == nullptr || !obj->is_object()) {
        fail(std::string("missing ") + section + " object");
        return 1;
      }
    }
    const Json* ranks = row.find("ranks");
    if (ranks != nullptr && !check_ranks(*ranks)) return 1;
    const Json* series = row.find("series");
    if (series != nullptr && !check_series(*series)) return 1;
    if (!check_recovery_contract(row)) return 1;
    for (const std::string& path : required) {
      if (!has_path(row, path)) {
        fail("required path \"" + path + "\" missing");
        return 1;
      }
    }
  }

  g_context = file;
  if (bench->as_string() == "throughput" &&
      !check_throughput_contract(*rows)) {
    return 1;
  }
  g_context = file;
  if (bench->as_string() == "fig2_1" && !check_fig2_1_contract(*rows)) {
    return 1;
  }
  g_context = file;
  if (bench->as_string() == "table2_1" && !check_table2_1_contract(*rows)) {
    return 1;
  }
  g_context = file;
  if (bench->as_string() == "table2_1" &&
      !check_table2_1_lts_contract(*rows)) {
    return 1;
  }

  std::printf("%s: OK (%s, %zu rows)\n", file.c_str(),
              bench->as_string().c_str(), rows->items().size());
  return 0;
}
