// mesh_level_histogram: octree level census + LTS updates-saved bounds.
//
// Generates a mesh for one of the stock velocity models, prints the octree
// level histogram of its elements, and reports two updates-saved numbers:
//   - the level-only upper bound (uniform-material assumption: rate doubles
//     per level of coarsening), from lts::level_updates_saved_bound;
//   - the material-aware prediction from the actual clustering pass
//     (per-element stable dt, power-of-two bins, +-1 normalization),
//     from lts::cluster_elements(...).predicted_updates_saved().
// The gap between the two is the price of material contrast: the mesh
// coarsens where vs is high, but the stable step follows h / vp, so level
// and rate decouple wherever vp / vs varies.
//
// Usage:
//   mesh_level_histogram [--model basin|layered] [--extent M] [--f-max HZ]
//                        [--n-lambda N] [--min-level L] [--max-level L]
//                        [--cfl F] [--max-rate R]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "quake/lts/clustering.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/vel/model.hpp"

namespace {

double arg_double(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  return fallback;
}

int arg_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* flag,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return fallback;
}

// The Fig 2.2-style soft-layer-over-halfspace column used by the LTS bench
// rows: a slow surface layer over stiff rock, guaranteeing several octree
// levels and a genuine rate contrast.
std::unique_ptr<quake::vel::VelocityModel> layered_column() {
  using quake::vel::Material;
  std::vector<quake::vel::LayeredModel::Layer> layers;
  layers.push_back({100.0, Material::from_velocities(1500.0, 200.0, 2000.0)});
  layers.push_back(
      {1.0, Material::from_velocities(1.732 * 1600.0, 1600.0, 2400.0)});
  return std::make_unique<quake::vel::LayeredModel>(std::move(layers));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = arg_str(argc, argv, "--model", "basin");
  const double extent = arg_double(argc, argv, "--extent",
                                   model_name == "layered" ? 400.0 : 25600.0);

  quake::mesh::MeshOptions opt;
  opt.domain_size = extent;
  opt.f_max = arg_double(argc, argv, "--f-max", model_name == "layered" ? 2.0 : 0.2);
  opt.n_lambda = arg_double(argc, argv, "--n-lambda", 8.0);
  opt.min_level = arg_int(argc, argv, "--min-level", 3);
  opt.max_level = arg_int(argc, argv, "--max-level", 6);
  const double cfl = arg_double(argc, argv, "--cfl", 0.35);
  const int max_rate = arg_int(argc, argv, "--max-rate", 32);

  std::unique_ptr<quake::vel::VelocityModel> model;
  if (model_name == "basin") {
    model = std::make_unique<quake::vel::BasinModel>(
        quake::vel::BasinModel::demo(extent));
  } else if (model_name == "layered") {
    model = layered_column();
  } else {
    std::fprintf(stderr, "unknown --model '%s' (basin|layered)\n",
                 model_name.c_str());
    return 2;
  }

  const quake::mesh::HexMesh mesh = quake::mesh::generate_mesh(*model, opt);

  std::map<int, std::size_t> by_level;
  for (std::uint8_t lv : mesh.elem_level) ++by_level[lv];

  std::printf("model=%s extent=%g f_max=%g n_lambda=%g levels=[%d,%d]\n",
              model_name.c_str(), extent, opt.f_max, opt.n_lambda,
              opt.min_level, opt.max_level);
  std::printf("elements=%zu nodes=%zu hanging=%zu\n", mesh.n_elements(),
              mesh.n_nodes(), mesh.n_hanging());
  std::printf("\noctree level histogram:\n");
  std::printf("  %-6s %-12s %-10s %s\n", "level", "h [m]", "elements", "share");
  for (const auto& [lv, count] : by_level) {
    const double h = extent / static_cast<double>(1 << lv);
    std::printf("  %-6d %-12.4g %-10zu %5.1f%%\n", lv, h, count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(mesh.n_elements()));
  }

  const std::vector<double> dts = quake::lts::element_stable_dt(mesh, cfl);
  double base_dt = dts.empty() ? 0.0 : dts[0];
  for (double d : dts) base_dt = std::min(base_dt, d);

  const double bound = quake::lts::level_updates_saved_bound(mesh, max_rate);
  const quake::lts::Clustering cl =
      quake::lts::cluster_elements(mesh, base_dt, cfl, max_rate);

  std::printf("\nglobal stable dt = %.6g s (cfl %g)\n", base_dt, cfl);
  std::printf("rate histogram (stability bins, after +-1 normalization):\n");
  for (int c = 0; c < cl.n_classes; ++c)
    std::printf("  rate %-4d %-10zu elements\n", 1 << c, cl.rate_histogram[c]);
  std::printf("class histogram (compute cadences):\n");
  for (int c = 0; c < cl.n_classes; ++c)
    std::printf("  every %-3d steps: %-10zu elements\n", 1 << c,
                cl.class_histogram[c]);

  std::printf("\nupdates-saved, level-only upper bound : %.4f\n", bound);
  std::printf("updates-saved, clustering prediction  : %.4f\n",
              cl.predicted_updates_saved());
  return 0;
}
