// Fig 3.2 — multiscale material inversion of a basin cross-section, and the
// effect of receiver density.
//
// (a) Stages of the multiscale inversion: starting from a homogeneous
//     guess, the shear-velocity section is recovered through a ladder of
//     inversion grids; the model error must shrink monotonically down the
//     ladder.
// (b) 64 vs 16 receivers: the denser array resolves the model better, and
//     the inverted model's synthetics at a NON-receiver location move from
//     the initial guess onto the target waveform.
// 5% random noise is added to the observations, as in the paper.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/inverse/material_inversion.hpp"
#include "quake/util/io.hpp"
#include "quake/util/rng.hpp"
#include "quake/util/stats.hpp"
#include "quake/vel/model.hpp"

namespace {

using namespace quake;

std::vector<double> target_mu(const wave2d::ShGrid& g, double rho) {
  const vel::BasinModel basin = vel::BasinModel::demo(g.width());
  std::vector<double> mu(static_cast<std::size_t>(g.n_elems()));
  for (int e = 0; e < g.n_elems(); ++e) {
    const int i = e % g.nx, k = e / g.nx;
    const double vs = std::clamp(
        basin.at((i + 0.5) * g.h, 0.55 * g.width(), (k + 0.5) * g.h).vs(),
        800.0, 3200.0);
    mu[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  return mu;
}

}  // namespace

int main() {
  const double rho = 2200.0;
  const wave2d::ShGrid grid{64, 36, 550.0};  // ~35 km x 20 km section

  const std::vector<double> mu_true = target_mu(grid, rho);
  const wave2d::ShModel truth(grid, std::vector<double>(mu_true), rho);
  {
    std::vector<double> vs(mu_true.size());
    for (std::size_t e = 0; e < vs.size(); ++e) vs[e] = std::sqrt(mu_true[e] / rho);
    util::write_pgm("/tmp/fig3_2_target_vs.pgm", vs, grid.nx, grid.nz, 700.0,
                    3300.0);
  }

  inverse::InversionSetup base;
  base.grid = grid;
  base.rho = rho;
  base.fault = {grid.nx / 2, 8, 26};
  base.source =
      wave2d::make_rupture_params(grid, base.fault, 1.5, 1.3, 17, 2800.0);
  base.dt = truth.stable_dt(0.4);
  base.nt = 420;

  // Non-receiver verification location (between receiver positions).
  const int verif_node = grid.node(3 * grid.nx / 8 + 1, 0);

  for (int n_receivers : {64, 16}) {
    inverse::InversionSetup setup = base;
    for (int r = 0; r < n_receivers; ++r) {
      const int i = 1 + r * (grid.nx - 2) / std::max(1, n_receivers - 1);
      setup.receiver_nodes.push_back(grid.node(std::min(i, grid.nx - 1), 0));
    }
    // Synthesize observations (and the target verification waveform).
    std::vector<double> target_verif;
    {
      inverse::InversionSetup gen = setup;
      gen.receiver_nodes.push_back(verif_node);
      const inverse::InversionProblem p0(gen);
      auto fwd = p0.forward(truth, setup.source, false);
      target_verif = fwd.march.records.back();
      fwd.march.records.pop_back();
      setup.observations = fwd.march.records;
    }
    // 5% noise.
    util::Rng rng(7);
    double rms = 0.0;
    std::size_t cnt = 0;
    for (const auto& rec : setup.observations) {
      for (double v : rec) {
        rms += v * v;
        ++cnt;
      }
    }
    rms = std::sqrt(rms / static_cast<double>(cnt));
    for (auto& rec : setup.observations) {
      for (double& v : rec) v += 0.05 * rms * rng.normal();
    }

    const inverse::InversionProblem prob(setup);
    inverse::MaterialInversionOptions mo;
    mo.stages = {{1, 1}, {2, 2}, {4, 3}, {8, 5}, {16, 9}, {32, 18}};
    mo.max_newton = 12;
    mo.cg = {15, 1e-1};
    mo.beta_tv = 1e-14;
    mo.tv_eps = 5e7;
    mo.mu_min = 5e8;
    mo.initial_mu = rho * 1800.0 * 1800.0;
    mo.grad_tol = 5e-3;
    mo.frankel_sweeps = 2;
    // Frequency continuation: low band first (§3.1).
    mo.stage_f_cut = {0.15, 0.2, 0.3, 0.45, 0.7, 0.0};

    std::printf("\nFig 3.2 analogue, %d receivers (5%% noise):\n",
                n_receivers);
    std::printf("%8s %8s %8s %8s %12s %11s\n", "stage", "params", "newton",
                "cg", "misfit", "model err");
    const auto res = inverse::invert_material(prob, mo, mu_true);
    for (const auto& s : res.stages) {
      std::printf("%4dx%-3d %8zu %8d %8d %12.4e %10.1f%%\n", s.gx, s.gz,
                  s.n_params, s.newton_iters, s.cg_iters, s.misfit_final,
                  100.0 * s.model_error);
    }
    // Error restricted to the well-illuminated upper third of the section
    // (the deep rock corners are barely sampled by surface records — the
    // paper's images show the same depth fading).
    {
      std::vector<double> a, b;
      for (int e = 0; e < grid.n_elems(); ++e) {
        if (e / grid.nx < grid.nz / 3) {
          a.push_back(res.mu[static_cast<std::size_t>(e)]);
          b.push_back(mu_true[static_cast<std::size_t>(e)]);
        }
      }
      std::printf("  model error in the upper (illuminated) third: %.1f%%\n",
                  100.0 * util::rel_l2(a, b));
    }

    // Verification waveform at the non-receiver location: initial guess vs
    // inverted model vs target.
    inverse::InversionSetup ver = base;
    ver.receiver_nodes = {verif_node};
    const inverse::InversionProblem pv(ver);
    const wave2d::ShModel inverted(grid, std::vector<double>(res.mu), rho);
    const wave2d::ShModel initial(
        grid,
        std::vector<double>(static_cast<std::size_t>(grid.n_elems()),
                            mo.initial_mu),
        rho);
    const auto rec_inv =
        pv.forward(inverted, base.source, false).march.records[0];
    const auto rec_init =
        pv.forward(initial, base.source, false).march.records[0];
    std::printf("  waveform at NON-receiver node: rel L2 error vs target — "
                "initial guess %.3f, inverted %.3f\n",
                util::rel_l2(rec_init, target_verif),
                util::rel_l2(rec_inv, target_verif));

    std::vector<double> vs(res.mu.size());
    for (std::size_t e = 0; e < vs.size(); ++e) vs[e] = std::sqrt(res.mu[e] / rho);
    char name[64];
    std::snprintf(name, sizeof name, "/tmp/fig3_2_inverted_%drx.pgm",
                  n_receivers);
    util::write_pgm(name, vs, grid.nx, grid.nz, 700.0, 3300.0);
    std::printf("  wrote %s\n", name);
  }
  std::printf("\n(paper: sharper recovery with 64 receivers than 16, both "
              "close to the target; synthetics at a non-receiver location "
              "match after inversion)\n");
  return 0;
}
