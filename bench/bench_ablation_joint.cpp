// Extension bench — the blind deconvolution problem ("when both are
// unknown ... this problem is even more challenging", §3.2): compare
// material inversion with the source (a) known exactly, (b) fixed to a
// wrong guess, and (c) inverted jointly with the material.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/inverse/joint_inversion.hpp"
#include "quake/inverse/material_inversion.hpp"
#include "quake/vel/model.hpp"

namespace {
using namespace quake;
}

int main() {
  const double rho = 2200.0;
  const wave2d::ShGrid grid{40, 24, 500.0};

  const vel::BasinModel basin = vel::BasinModel::demo(grid.width());
  std::vector<double> mu_true(static_cast<std::size_t>(grid.n_elems()));
  for (int e = 0; e < grid.n_elems(); ++e) {
    const int i = e % grid.nx, k = e / grid.nx;
    const double vs = std::clamp(
        basin.at((i + 0.5) * grid.h, 0.55 * grid.width(), (k + 0.5) * grid.h)
            .vs(),
        1000.0, 2400.0);
    mu_true[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  const wave2d::ShModel truth(grid, std::vector<double>(mu_true), rho);

  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 5, 17};
  setup.source =
      wave2d::make_rupture_params(grid, setup.fault, 1.2, 1.0, 11, 2600.0);
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  setup.dt = truth.stable_dt(0.4);
  setup.nt = 360;
  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(truth, setup.source, false).march.records;
  }
  const wave2d::SourceParams2d src_true = setup.source;

  std::printf("Blind-deconvolution ablation (material unknown everywhere):\n");
  std::printf("%-34s %12s %12s %12s\n", "configuration", "misfit",
              "material err", "source err");

  auto material_opts = [&]() {
    inverse::MaterialInversionOptions mo;
    mo.stages = {{2, 2}, {4, 3}, {8, 5}};
    mo.max_newton = 8;
    mo.cg = {12, 1e-1};
    mo.beta_tv = 1e-14;
    mo.tv_eps = 5e7;
    mo.mu_min = 5e8;
    mo.initial_mu = rho * 1600.0 * 1600.0;
    mo.grad_tol = 5e-3;
    mo.stage_f_cut = {0.3, 0.5, 0.0};
    return mo;
  };

  {  // (a) source known exactly.
    const inverse::InversionProblem prob(setup);
    const auto r = inverse::invert_material(prob, material_opts(), mu_true);
    std::printf("%-34s %12.4e %11.1f%% %12s\n", "a. source known",
                r.stages.back().misfit_final,
                100.0 * r.stages.back().model_error, "-");
  }
  {  // (b) source fixed to a wrong guess (biases the material).
    inverse::InversionSetup bad = setup;
    for (auto& v : bad.source.u0) v *= 0.7;
    for (auto& v : bad.source.T) v += 0.25;
    const inverse::InversionProblem prob(bad);
    const auto r = inverse::invert_material(prob, material_opts(), mu_true);
    std::printf("%-34s %12.4e %11.1f%% %12s\n", "b. source fixed (wrong)",
                r.stages.back().misfit_final,
                100.0 * r.stages.back().model_error, "-");
  }
  {  // (c) joint inversion of both.
    const inverse::InversionProblem prob(setup);
    inverse::JointInversionOptions jo;
    jo.gx = 8;
    jo.gz = 5;
    jo.max_newton = 40;
    jo.cg = {25, 1e-1};
    jo.beta_tv = 1e-14;
    jo.tv_eps = 5e7;
    jo.beta_u0 = jo.beta_t0 = jo.beta_T = 1e-3;
    jo.mu_min = 5e8;
    jo.initial_mu = rho * 1600.0 * 1600.0;
    jo.u0_init = 1.0;
    jo.t0_init = 1.0;
    jo.T_init = 0.2;
    jo.grad_tol = 1e-4;
    const auto r = inverse::invert_joint(prob, jo, mu_true, &src_true);
    std::printf("%-34s %12.4e %11.1f%% %11.1f%%\n",
                "c. joint (blind deconvolution)", r.misfit_final,
                100.0 * r.material_error, 100.0 * r.source_error);
  }
  std::printf("\n(a wrong fixed source biases the recovered material; the "
              "joint inversion fits the data comparably while also "
              "estimating the source, but its non-uniqueness — material/"
              "source trade-off — is why the paper calls blind "
              "deconvolution 'even more challenging')\n");
  return 0;
}
