// Ablation — the reduced-Hessian preconditioner (§3.1): "we use the reduced
// Hessian preconditioner ... based on a limited memory BFGS update that has
// been initialized with several Frankel two-step stationary iterations."
// Since every CG iteration costs one forward and one adjoint wave solve, the
// preconditioner's iteration savings translate directly into wall-clock.
//
// Same inversion, three configurations: no preconditioner; L-BFGS fed by CG
// pairs only; L-BFGS seeded with Frankel sweeps as in the paper.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/inverse/material_inversion.hpp"
#include "quake/util/timer.hpp"
#include "quake/vel/model.hpp"

namespace {
using namespace quake;
}

int main() {
  const double rho = 2200.0;
  const wave2d::ShGrid grid{48, 28, 625.0};

  const vel::BasinModel basin = vel::BasinModel::demo(grid.width());
  std::vector<double> mu_true(static_cast<std::size_t>(grid.n_elems()));
  for (int e = 0; e < grid.n_elems(); ++e) {
    const int i = e % grid.nx, k = e / grid.nx;
    const double vs = std::clamp(
        basin.at((i + 0.5) * grid.h, 0.55 * grid.width(), (k + 0.5) * grid.h)
            .vs(),
        800.0, 3200.0);
    mu_true[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  const wave2d::ShModel truth(grid, std::vector<double>(mu_true), rho);

  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 6, 20};
  setup.source =
      wave2d::make_rupture_params(grid, setup.fault, 1.5, 1.5, 13, 2800.0);
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  setup.dt = truth.stable_dt(0.4);
  setup.nt = 320;
  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(truth, setup.source, false).march.records;
  }
  const inverse::InversionProblem prob(setup);

  struct Config {
    const char* name;
    bool precond;
    int frankel;
  };
  const Config configs[] = {
      {"no preconditioner", false, 0},
      {"L-BFGS (CG pairs)", true, 0},
      {"L-BFGS + Frankel seed", true, 3},
  };

  std::printf("Preconditioner ablation (single 12x7 stage, CG to 3%% "
              "residual per Newton step):\n");
  std::printf("%-24s %8s %10s %12s %12s %10s\n", "configuration", "newton",
              "total cg", "misfit", "|g|/|g0|", "seconds");
  for (const auto& cfg : configs) {
    inverse::MaterialInversionOptions mo;
    mo.stages = {{12, 7}};
    mo.max_newton = 10;
    mo.cg = {80, 0.03};  // tight inner solves expose conditioning
    mo.beta_tv = 1e-14;
    mo.tv_eps = 5e7;
    mo.mu_min = 5e8;
    mo.initial_mu = rho * 1800.0 * 1800.0;
    mo.grad_tol = 1e-12;  // run the full budget
    mo.precondition = cfg.precond;
    mo.frankel_sweeps = cfg.frankel;
    util::Timer t;
    const auto r = inverse::invert_material(prob, mo, mu_true);
    std::printf("%-24s %8d %10d %12.4e %12.1e %9.1fs\n", cfg.name,
                r.total_newton, r.total_cg, r.stages[0].misfit_final,
                r.stages[0].grad_reduction, t.seconds());
  }
  std::printf("\n(each CG iteration = one incremental forward + one adjoint "
              "solve; fewer CG iterations at equal misfit is the paper's "
              "preconditioner payoff)\n");
  return 0;
}
