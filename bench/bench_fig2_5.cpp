// Fig 2.5 — snapshots of propagating waves from the Northridge-style
// simulation: surface velocity magnitude at a series of times, plus the
// rupture-directivity statistic the paper's caption calls out ("notice the
// directivity of the ground motion along strike from the epicenter").

#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/solver/surface.hpp"
#include "quake/util/io.hpp"

int main() {
  using namespace quake;
  const double extent = 25600.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);

  mesh::MeshOptions mopt;
  mopt.domain_size = extent;
  mopt.f_max = 0.2;
  mopt.n_lambda = 8.0;
  mopt.min_level = 3;
  mopt.max_level = 6;
  const mesh::HexMesh mesh = mesh::generate_mesh(model, mopt);
  std::printf("Fig 2.5 analogue: Northridge-style rupture, %zu elements\n",
              mesh.n_elements());

  // Unilateral rupture: hypocenter at the -x end of the fault so directivity
  // focuses toward +x.
  solver::FaultSource::Spec fs;
  fs.y = 0.50 * extent;
  fs.x0 = 0.30 * extent;
  fs.x1 = 0.62 * extent;
  fs.z_top = 1500.0;
  fs.z_bot = 6000.0;
  fs.hypocenter = {0.32 * extent, 5000.0};
  fs.rupture_velocity = 2800.0;
  fs.rise_time = 1.2;
  fs.slip = 2.0;
  const solver::FaultSource source(mesh, fs);

  solver::OperatorOptions oopt;
  oopt.rayleigh = true;
  oopt.damping_f_min = 0.02;
  oopt.damping_f_max = 0.2;
  const solver::ElasticOperator op(mesh, oopt);
  solver::SolverOptions sopt;
  sopt.t_end = 16.0;
  sopt.cfl_fraction = 0.4;
  solver::ExplicitSolver solver(op, sopt);
  solver.add_source(&source);

  // Surface raster and along/back-strike peak-velocity tracking.
  const int img = 160;
  solver::SurfaceRaster raster(mesh, img);
  int snap = 0;
  auto hook = [&](int, double t, std::span<const double>,
                  std::span<const double> v) {
    const auto mag = raster.velocity_magnitude(v);
    raster.update_peak(mag);
    char name[64];
    std::snprintf(name, sizeof name, "/tmp/fig2_5_snap_%02d_t%04.1fs.pgm",
                  snap++, t);
    raster.write_pgm(name, mag, 0.0, 0.5);
    std::printf("  t = %5.1f s: wrote %s\n", t, name);
  };
  solver.run(hook, std::max(1, solver.n_steps() / 8));
  raster.write_pgm("/tmp/fig2_5_peak_velocity.pgm", raster.peak(), 0.0, 1.0);

  // Directivity: peak surface velocity ahead of the rupture (along +x of
  // the hypocenter, past the fault end) vs behind it.
  const auto peak = raster.peak();
  auto region_peak = [&](double x0, double x1) {
    double m = 0.0;
    for (int iy = 0; iy < img; ++iy) {
      for (int ix = 0; ix < img; ++ix) {
        const double x = (ix + 0.5) * extent / img;
        const double y = (iy + 0.5) * extent / img;
        if (x >= x0 && x < x1 && std::abs(y - fs.y) < 0.2 * extent) {
          m = std::max(m, peak[static_cast<std::size_t>(iy) * img + ix]);
        }
      }
    }
    return m;
  };
  const double fwd = region_peak(fs.x1, fs.x1 + 0.25 * extent);
  const double bwd = region_peak(fs.x0 - 0.25 * extent, fs.x0);
  std::printf("directivity: peak velocity forward of rupture %.3f m/s vs "
              "backward %.3f m/s (ratio %.2f; paper: motion concentrates "
              "along strike from the epicenter)\n",
              fwd, bwd, fwd / std::max(bwd, 1e-12));
  return 0;
}
