// Fig 2.2 — verification of the hexahedral forward solver against a
// closed-form solution: vertically incident SH pulse into a soft layer over
// a stiff halfspace. The paper's visualization shows wave propagation in a
// layer-over-halfspace due to an idealized source and reports excellent
// agreement between the finite element simulation and the Green's function
// solution; here the 3D hex code runs the problem as a 1D column (component
// mask + layered model, see tests) and the surface seismogram is compared
// against the exact ray-series response.

#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/sh1d.hpp"
#include "quake/util/io.hpp"
#include "quake/util/stats.hpp"

int main() {
  using namespace quake;
  const double L = 1600.0;       // domain depth [m]
  const double H = 300.0;        // layer thickness
  // Moderate contrast: the transmitted wavelength shrinks by vs1/vs2, so
  // the layer must stay resolvable on the coarsest ladder level.
  const double vs1 = 800.0, rho1 = 2000.0;   // soft layer
  const double vs2 = 1600.0, rho2 = 2400.0;  // halfspace
  const vel::LayeredModel model(
      {{H, vel::Material::from_velocities(1.9 * vs1, vs1, rho1)},
       {0.0, vel::Material::from_velocities(1.732 * vs2, vs2, rho2)}});

  std::printf("Fig 2.2 analogue: layer over halfspace vs closed form\n");
  std::printf("layer: vs=%.0f m/s H=%.0f m; halfspace vs=%.0f m/s; "
              "impedance contrast %.1f\n",
              vs1, H, vs2, (rho2 * vs2) / (rho1 * vs1));

  std::printf("%8s %10s %12s %12s\n", "level", "h (m)", "rel L2 err",
              "correlation");
  double prev_err = -1.0;
  for (int level : {4, 5, 6}) {
    mesh::MeshOptions mopt;
    mopt.domain_size = L;
    mopt.f_max = 1e-9;
    mopt.min_level = level;
    mopt.max_level = level;
    const mesh::HexMesh mesh = mesh::generate_mesh(model, mopt);

    solver::OperatorOptions oopt;
    oopt.abc = fem::AbcType::kLysmer;
    oopt.absorbing_sides = {false, false, false, false, false, true};
    const solver::ElasticOperator op(mesh, oopt);
    solver::SolverOptions sopt;
    sopt.t_end = 2.5;
    sopt.cfl_fraction = 0.35;
    solver::ExplicitSolver solver(op, sopt);
    solver.set_fixed_components({true, false, true});

    // Upgoing displacement pulse in the halfspace.
    const double zc = 900.0, sigma = 250.0;
    auto pulse = [&](double z) {
      return std::exp(-std::pow((z - zc) / sigma, 2));
    };
    std::vector<double> u0(op.n_dofs(), 0.0), v0(op.n_dofs(), 0.0);
    for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
      const double z = mesh.node_coords[n][2];
      u0[3 * n + 1] = pulse(z);
      v0[3 * n + 1] = vs2 * (-2.0 * (z - zc) / (sigma * sigma)) * pulse(z);
    }
    solver.set_initial_conditions(u0, v0);
    solver.add_receiver({L / 2, L / 2, 0.0});
    solver.run();

    // Closed form: incident history at the interface depth H.
    const auto rec = solver.receiver_component(0, 1);
    const double dt = solver.dt();
    solver::ShLayerParams p{H, rho1, vs1, rho2, vs2};
    // Incident displacement at the interface depth: u(H, t) = f(H + vs2 t)
    // for the upgoing wave u(z, t) = f(z + vs2 t).
    auto incident = [&](double t) { return pulse(H + vs2 * t); };
    // The solver records u^{k+1} at t = (k+1) dt; sample the closed form on
    // the same staggered instants.
    std::vector<double> exact_all = sh_layer_surface_response(
        p, incident, static_cast<int>(rec.size()) + 1, dt);
    std::vector<double> exact(exact_all.begin() + 1, exact_all.end());

    const double err = util::rel_l2(rec, exact);
    const double corr = util::correlation(rec, exact);
    std::printf("%8d %10.1f %12.4f %12.6f\n", level, L / (1 << level), err,
                corr);
    if (level == 6) {
      std::vector<std::string> names = {"t", "fem", "exact"};
      std::vector<std::vector<double>> cols(3);
      for (std::size_t k = 0; k < rec.size(); ++k) {
        cols[0].push_back((static_cast<double>(k) + 1.0) * dt);
        cols[1].push_back(rec[k]);
        cols[2].push_back(exact[k]);
      }
      util::write_csv("/tmp/fig2_2_seismogram.csv", names, cols);
      std::printf("wrote /tmp/fig2_2_seismogram.csv\n");
    }
    if (prev_err > 0.0) {
      std::printf("   convergence ratio vs previous level: %.2f "
                  "(2nd order => ~4)\n",
                  prev_err / err);
    }
    prev_err = err;
  }
  std::printf("(paper: \"agreement between the finite element simulation and "
              "the Green's function solution is excellent\")\n");
  return 0;
}
