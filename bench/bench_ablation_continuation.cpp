// Ablation — why the paper uses multiscale grid and frequency continuation
// (§3.1): "the nonlinear optimization formulation ... has numerous local
// minima, possessing a radius of Newton convergence proportional to the
// wavelength of propagating waves. The algorithm ... is prone to entrapment
// in local minima ... here we appeal to multiscale grid and frequency
// continuation."
//
// Three inversions of the same high-contrast basin section from the same
// homogeneous initial guess and the same iteration budget:
//   A. direct: finest material grid immediately, full band;
//   B. grid continuation: coarse-to-fine ladder, full band;
//   C. grid + frequency continuation: ladder with low-pass-first misfits.
// The continuation runs must reach a lower misfit/model error than the
// direct run.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/inverse/material_inversion.hpp"
#include "quake/util/stats.hpp"
#include "quake/vel/model.hpp"

namespace {
using namespace quake;
}

int main() {
  const double rho = 2200.0;
  const wave2d::ShGrid grid{48, 28, 625.0};

  const vel::BasinModel basin = vel::BasinModel::demo(grid.width());
  std::vector<double> mu_true(static_cast<std::size_t>(grid.n_elems()));
  for (int e = 0; e < grid.n_elems(); ++e) {
    const int i = e % grid.nx, k = e / grid.nx;
    const double vs = std::clamp(
        basin.at((i + 0.5) * grid.h, 0.55 * grid.width(), (k + 0.5) * grid.h)
            .vs(),
        700.0, 3200.0);
    mu_true[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  const wave2d::ShModel truth(grid, std::vector<double>(mu_true), rho);

  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 6, 20};
  // Shorter rise time -> higher-frequency data -> smaller Newton basin
  // (radius ~ wavelength), making the continuation's advantage visible.
  setup.source =
      wave2d::make_rupture_params(grid, setup.fault, 1.5, 0.8, 13, 2800.0);
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  setup.dt = truth.stable_dt(0.4);
  setup.nt = 340;
  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(truth, setup.source, false).march.records;
  }
  const inverse::InversionProblem prob(setup);

  auto base_options = [&]() {
    inverse::MaterialInversionOptions mo;
    mo.max_newton = 10;
    mo.cg = {15, 1e-1};
    mo.beta_tv = 1e-14;
    mo.tv_eps = 5e7;
    mo.mu_min = 5e8;
    mo.initial_mu = rho * 1800.0 * 1800.0;
    mo.grad_tol = 5e-3;
    mo.frankel_sweeps = 2;
    return mo;
  };

  struct Row {
    const char* name;
    double misfit;
    double error;
    int newton, cg;
  };
  std::vector<Row> rows;

  {
    auto mo = base_options();
    // Same total Newton budget as the ladders (5 stages x 10).
    mo.stages = {{24, 14}};
    mo.max_newton = 50;
    const auto r = inverse::invert_material(prob, mo, mu_true);
    rows.push_back({"A. direct fine grid", r.stages.back().misfit_final,
                    r.stages.back().model_error, r.total_newton, r.total_cg});
  }
  {
    auto mo = base_options();
    mo.stages = {{1, 1}, {3, 2}, {6, 4}, {12, 7}, {24, 14}};
    const auto r = inverse::invert_material(prob, mo, mu_true);
    rows.push_back({"B. grid continuation", r.stages.back().misfit_final,
                    r.stages.back().model_error, r.total_newton, r.total_cg});
  }
  {
    auto mo = base_options();
    mo.stages = {{1, 1}, {3, 2}, {6, 4}, {12, 7}, {24, 14}};
    mo.stage_f_cut = {0.3, 0.45, 0.7, 1.0, 0.0};
    const auto r = inverse::invert_material(prob, mo, mu_true);
    rows.push_back({"C. grid + frequency", r.stages.back().misfit_final,
                    r.stages.back().model_error, r.total_newton, r.total_cg});
  }

  std::printf("Continuation ablation (high-contrast section, same initial "
              "guess and budget):\n");
  std::printf("%-24s %12s %11s %8s %8s\n", "strategy", "final misfit",
              "model err", "newton", "cg");
  for (const auto& r : rows) {
    std::printf("%-24s %12.4e %10.1f%% %8d %8d\n", r.name, r.misfit,
                100.0 * r.error, r.newton, r.cg);
  }
  std::printf("\n(the direct run stalls in a local minimum; the ladders — "
              "especially with frequency continuation — descend further, the "
              "paper's rationale for continuation)\n");
  return 0;
}
