// Fig 2.3 — the LA Basin model artifacts: (a) plan view and cross-section
// of the shear-wave velocity distribution, (b) the wavelength-adaptive
// hexahedral mesh (level histogram + hanging-node census), (d) the
// 64-processor element partition (per-rank sizes and shared surfaces).
// Rasters are written as PGM images; the mesh structure is reported as the
// per-level census the figure visualizes.

#include <cstdio>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/par/partition.hpp"
#include "quake/util/io.hpp"

int main() {
  using namespace quake;
  const double extent = 25600.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);

  // (a) velocity rasters.
  const int img = 200;
  std::vector<double> plan(static_cast<std::size_t>(img) * img);
  std::vector<double> section(static_cast<std::size_t>(img) * img);
  for (int j = 0; j < img; ++j) {
    for (int i = 0; i < img; ++i) {
      const double x = (i + 0.5) * extent / img;
      const double y = (j + 0.5) * extent / img;
      plan[static_cast<std::size_t>(j) * img + i] = model.at(x, y, 30.0).vs();
      const double z = (j + 0.5) * (0.4 * extent) / img;
      section[static_cast<std::size_t>(j) * img + i] =
          model.at(x, 0.55 * extent, z).vs();
    }
  }
  util::write_pgm("/tmp/fig2_3a_plan_vs.pgm", plan, img, img, 100.0, 4500.0);
  util::write_pgm("/tmp/fig2_3a_section_vs.pgm", section, img, img, 100.0,
                  4500.0);
  std::printf("Fig 2.3 analogue\n(a) wrote /tmp/fig2_3a_{plan,section}_vs.pgm "
              "(vs 100..4500 m/s)\n");

  // (b,c) the mesh at 0.2 Hz, as in the paper's illustration.
  mesh::MeshOptions opt;
  opt.domain_size = extent;
  opt.f_max = 0.2;
  opt.n_lambda = 8.0;
  opt.min_level = 3;
  opt.max_level = 8;
  const mesh::HexMesh mesh = mesh::generate_mesh(model, opt);
  const auto stats = mesh::compute_stats(mesh, model, opt);
  std::printf("(b) mesh at %.1f Hz: %zu elements, %zu nodes, %zu hanging "
              "(%.1f%%), levels %d..%d\n",
              opt.f_max, stats.n_elements, stats.n_nodes, stats.n_hanging,
              100.0 * static_cast<double>(stats.n_hanging) /
                  static_cast<double>(stats.n_nodes),
              stats.min_level, stats.max_level);
  std::vector<std::size_t> by_level(16, 0);
  for (auto l : mesh.elem_level) ++by_level[l];
  for (std::size_t l = 0; l < by_level.size(); ++l) {
    if (by_level[l] > 0) {
      std::printf("    level %2zu (h = %6.0f m): %8zu elements\n", l,
                  extent / (1 << l), by_level[l]);
    }
  }

  // (d) 64-rank SFC partition.
  const par::Partition part = par::partition_sfc(mesh, 64);
  std::size_t min_e = SIZE_MAX, max_e = 0, sh = 0, tot = 0;
  for (const auto& s : part.stats) {
    min_e = std::min(min_e, s.n_elems);
    max_e = std::max(max_e, s.n_elems);
    sh += s.n_shared_nodes;
    tot += s.n_nodes;
  }
  std::printf("(d) 64-rank partition: %zu..%zu elements/rank, imbalance "
              "%.3f, shared-node fraction %.1f%%\n",
              min_e, max_e, part.imbalance(),
              100.0 * static_cast<double>(sh) / static_cast<double>(tot));

  // Partition raster: rank of the element owning each surface pixel
  // (painted element-by-element; each surface element covers a pixel rect).
  std::vector<double> ranks(static_cast<std::size_t>(img) * img, 0.0);
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const auto& a =
        mesh.node_coords[static_cast<std::size_t>(mesh.elem_nodes[e][0])];
    if (a[2] > 1.0) continue;  // surface elements only
    const double h = mesh.elem_size[e];
    const int i0 = std::max(0, static_cast<int>(a[0] / extent * img));
    const int i1 = std::min(img, static_cast<int>((a[0] + h) / extent * img));
    const int j0 = std::max(0, static_cast<int>(a[1] / extent * img));
    const int j1 = std::min(img, static_cast<int>((a[1] + h) / extent * img));
    for (int j = j0; j < j1; ++j) {
      for (int i = i0; i < i1; ++i) {
        ranks[static_cast<std::size_t>(j) * img + i] = part.elem_rank[e];
      }
    }
  }
  util::write_pgm("/tmp/fig2_3d_partition.pgm", ranks, img, img, 0.0, 63.0);
  std::printf("    wrote /tmp/fig2_3d_partition.pgm\n");
  return 0;
}
