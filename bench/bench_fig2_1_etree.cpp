// Fig 2.1 / §2.3 — the etree mesh-generation pipeline: construct, balance,
// transform, with database statistics and the local-balancing speedup the
// paper reports (8x-28x over global balancing; our in-memory analogue
// compares the work-queue/local algorithms against naive full-sweep global
// balancing).

#include <cstdio>
#include <string>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/octree/etree_store.hpp"
#include "quake/util/timer.hpp"

int main() {
  using namespace quake;
  const double extent = 25600.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);

  std::printf("Fig 2.1 analogue: etree pipeline at growing resolution\n");
  std::printf("%6s %10s %10s %10s %10s %9s %9s %9s\n", "f_max", "octants",
              "balanced", "nodes", "hanging", "t_cons", "t_bal", "t_xform");

  for (double f_max : {0.05, 0.1, 0.2, 0.3}) {
    mesh::MeshOptions opt;
    opt.domain_size = extent;
    opt.f_max = f_max;
    opt.n_lambda = 8.0;
    opt.min_level = 3;
    opt.max_level = 9;

    util::Timer t;
    const octree::LinearOctree built =
        octree::build_octree(mesh::wavelength_policy(model, opt), opt.max_level);
    const double t_cons = t.seconds();
    t.reset();
    const octree::LinearOctree balanced =
        octree::balance(built, octree::BalanceScope::kAll);
    const double t_bal = t.seconds();
    t.reset();
    const mesh::HexMesh mesh = mesh::transform(balanced, model, opt);
    const double t_xform = t.seconds();
    std::printf("%6.2f %10zu %10zu %10zu %10zu %8.3fs %8.3fs %8.3fs\n", f_max,
                built.size(), balanced.size(), mesh.n_nodes(),
                mesh.n_hanging(), t_cons, t_bal, t_xform);
  }

  // Local vs global balancing speedup on an adversarial tree: a refinement
  // sheet (every octant cut by the z = L/2 plane refined to level 7) abuts
  // coarse level-3 leaves, so balancing must grade a large interface.
  std::printf("\nbalancing algorithms (sheet-refined tree, levels 3..9):\n");
  const std::uint32_t mid = octree::kTicks / 2;
  const octree::LinearOctree stress = octree::build_octree(
      [&](const octree::Octant& o) {
        if (o.level < 3) return true;
        return o.z <= mid && mid < o.z + o.size() && o.level < 9;
      },
      9);
  util::Timer t;
  const auto b_sweeps =
      octree::balance_global_sweeps(stress, octree::BalanceScope::kAll);
  const double t_sweeps = t.seconds();
  t.reset();
  const auto b_queue = octree::balance(stress, octree::BalanceScope::kAll);
  const double t_queue = t.seconds();
  t.reset();
  const auto b_local =
      octree::balance_local(stress, octree::BalanceScope::kAll, 2);
  const double t_local = t.seconds();
  std::printf("  global sweeps: %.4f s  (%zu -> %zu leaves)\n", t_sweeps,
              stress.size(), b_sweeps.size());
  std::printf("  work queue:    %.4f s  (speedup %.1fx)\n", t_queue,
              t_sweeps / t_queue);
  std::printf("  local blocks:  %.4f s  (speedup %.1fx; paper reports 8-28x "
              "for its out-of-core setting)\n",
              t_local, t_sweeps / t_local);
  std::printf("  identical results: %s\n",
              (b_sweeps.size() == b_queue.size() &&
               b_queue.size() == b_local.size())
                  ? "yes"
                  : "NO (bug!)");

  // Out-of-core store statistics under a small buffer pool.
  const std::string path = "/tmp/bench_etree.store";
  {
    octree::EtreeStore store(path, sizeof(double), /*pool_pages=*/32,
                             /*create=*/true);
    t.reset();
    for (std::size_t i = 0; i < b_queue.size(); ++i) {
      const double v = static_cast<double>(i);
      store.put(b_queue[i], std::as_bytes(std::span<const double, 1>(&v, 1)));
    }
    store.flush();
    const auto st = store.stats();
    std::printf("\netree store: %zu records inserted in %.3f s; %llu page "
                "writes, %llu page reads, %llu cache hits (32-page pool)\n",
                b_queue.size(), t.seconds(),
                static_cast<unsigned long long>(st.page_writes),
                static_cast<unsigned long long>(st.page_reads),
                static_cast<unsigned long long>(st.cache_hits));
  }
  return 0;
}
