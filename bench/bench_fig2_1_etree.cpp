// Fig 2.1 / §2.3 — the etree mesh-generation pipeline: construct, balance,
// transform, with database statistics and the local-balancing speedup the
// paper reports (8x-28x over global balancing; our in-memory analogue
// compares the work-queue/local algorithms against naive full-sweep global
// balancing). The store section drives the out-of-core pipeline phase by
// phase (construct->store, scan+balance, re-persist) and surfaces
// EtreeStore::stats() plus the etree/pool_hit_rate gauge after each phase,
// so buffer-pool behavior per phase is visible instead of one end-of-run
// aggregate.
//
//   bench_fig2_1_etree [--quick] [--json PATH] [--csv PATH]
//
// Emits a "quake.bench/1" report (default BENCH_fig2_1.json) with rows
// params.section = ladder | balancing | store (store rows carry
// params.phase); tools/check_bench_schema pins the fig2_1 store contract.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/obs/obs.hpp"
#include "quake/obs/sink.hpp"
#include "quake/octree/etree_store.hpp"
#include "quake/util/timer.hpp"

namespace {

using namespace quake;

double pool_hit_rate(const octree::EtreeStore::Stats& s) {
  const double denom = static_cast<double>(s.cache_hits + s.page_reads);
  return denom > 0.0 ? static_cast<double>(s.cache_hits) / denom : 0.0;
}

obs::Json stats_metrics(const octree::EtreeStore::Stats& s, double seconds,
                        std::size_t records) {
  return obs::Json::object()
      .set("seconds", seconds)
      .set("records", static_cast<double>(records))
      .set("page_reads", static_cast<double>(s.page_reads))
      .set("page_writes", static_cast<double>(s.page_writes))
      .set("cache_hits", static_cast<double>(s.cache_hits))
      .set("pages_verified", static_cast<double>(s.pages_verified))
      .set("page_verify_failures",
           static_cast<double>(s.page_verify_failures))
      .set("pool_hit_rate", pool_hit_rate(s));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_fig2_1.json";
  std::string csv_path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (std::strcmp(argv[a], "--csv") == 0 && a + 1 < argc) {
      csv_path = argv[++a];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH] [--csv PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::set_enabled(true);
  obs::MetricsSink sink("fig2_1");

  const double extent = 25600.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);
  const int top_level = quick ? 8 : 9;

  std::printf("Fig 2.1 analogue: etree pipeline at growing resolution\n");
  std::printf("%6s %10s %10s %10s %10s %9s %9s %9s\n", "f_max", "octants",
              "balanced", "nodes", "hanging", "t_cons", "t_bal", "t_xform");

  const std::vector<double> ladder =
      quick ? std::vector<double>{0.05, 0.1} : std::vector<double>{0.05, 0.1,
                                                                   0.2, 0.3};
  for (double f_max : ladder) {
    mesh::MeshOptions opt;
    opt.domain_size = extent;
    opt.f_max = f_max;
    opt.n_lambda = 8.0;
    opt.min_level = 3;
    opt.max_level = top_level;

    util::Timer t;
    const octree::LinearOctree built =
        octree::build_octree(mesh::wavelength_policy(model, opt), opt.max_level);
    const double t_cons = t.seconds();
    t.reset();
    const octree::LinearOctree balanced =
        octree::balance(built, octree::BalanceScope::kAll);
    const double t_bal = t.seconds();
    t.reset();
    const mesh::HexMesh mesh = mesh::transform(balanced, model, opt);
    const double t_xform = t.seconds();
    std::printf("%6.2f %10zu %10zu %10zu %10zu %8.3fs %8.3fs %8.3fs\n", f_max,
                built.size(), balanced.size(), mesh.n_nodes(),
                mesh.n_hanging(), t_cons, t_bal, t_xform);

    obs::Json& row = sink.new_row();
    row.set("params", obs::Json::object()
                          .set("section", "ladder")
                          .set("f_max", f_max)
                          .set("max_level", top_level));
    row.set("metrics",
            obs::Json::object()
                .set("octants", static_cast<double>(built.size()))
                .set("balanced", static_cast<double>(balanced.size()))
                .set("nodes", static_cast<double>(mesh.n_nodes()))
                .set("hanging", static_cast<double>(mesh.n_hanging()))
                .set("t_construct", t_cons)
                .set("t_balance", t_bal)
                .set("t_transform", t_xform));
  }

  // Local vs global balancing speedup on an adversarial tree: a refinement
  // sheet (every octant cut by the z = L/2 plane refined to the top level)
  // abuts coarse level-3 leaves, so balancing must grade a large interface.
  std::printf("\nbalancing algorithms (sheet-refined tree, levels 3..%d):\n",
              top_level);
  const std::uint32_t mid = octree::kTicks / 2;
  const octree::LinearOctree stress = octree::build_octree(
      [&](const octree::Octant& o) {
        if (o.level < 3) return true;
        return o.z <= mid && mid < o.z + o.size() && o.level < top_level;
      },
      top_level);
  util::Timer t;
  const auto b_sweeps =
      octree::balance_global_sweeps(stress, octree::BalanceScope::kAll);
  const double t_sweeps = t.seconds();
  t.reset();
  const auto b_queue = octree::balance(stress, octree::BalanceScope::kAll);
  const double t_queue = t.seconds();
  t.reset();
  const auto b_local =
      octree::balance_local(stress, octree::BalanceScope::kAll, 2);
  const double t_local = t.seconds();
  const bool identical = b_sweeps.size() == b_queue.size() &&
                         b_queue.size() == b_local.size();
  std::printf("  global sweeps: %.4f s  (%zu -> %zu leaves)\n", t_sweeps,
              stress.size(), b_sweeps.size());
  std::printf("  work queue:    %.4f s  (speedup %.1fx)\n", t_queue,
              t_sweeps / t_queue);
  std::printf("  local blocks:  %.4f s  (speedup %.1fx; paper reports 8-28x "
              "for its out-of-core setting)\n",
              t_local, t_sweeps / t_local);
  std::printf("  identical results: %s\n", identical ? "yes" : "NO (bug!)");

  obs::Json& brow = sink.new_row();
  brow.set("params", obs::Json::object()
                         .set("section", "balancing")
                         .set("top_level", top_level)
                         .set("leaves", static_cast<double>(stress.size())));
  brow.set("metrics",
           obs::Json::object()
               .set("t_global_sweeps", t_sweeps)
               .set("t_work_queue", t_queue)
               .set("t_local_blocks", t_local)
               .set("speedup_work_queue", t_sweeps / t_queue)
               .set("speedup_local_blocks", t_sweeps / t_local)
               .set("identical", identical ? 1 : 0));

  // The out-of-core pipeline phase by phase under a deliberately small
  // buffer pool, mirroring generate_mesh_out_of_core: (1) construct and
  // insert the unbalanced tree, (2) scan it back and balance in memory,
  // (3) re-persist the balanced tree. Each phase reports the store's
  // stats() delta and the etree/pool_hit_rate gauge the store publishes;
  // inserts in SFC order should stay pool-resident (high hit rate) even
  // when the tree far exceeds the pool.
  const std::size_t pool_pages = 32;
  const std::string path = "/tmp/bench_etree.store";
  obs::Registry reg;
  std::printf("\netree store pipeline (%zu-page pool):\n", pool_pages);
  std::printf("  %-10s %8s %8s %9s %9s %9s %9s\n", "phase", "records",
              "seconds", "p_reads", "p_writes", "hits", "hit_rate");

  const auto emit_phase = [&](const char* phase,
                              const octree::EtreeStore::Stats& st,
                              double seconds, std::size_t records) {
    double gauge = 0.0;
    const auto it = reg.gauges.find("etree/pool_hit_rate");
    if (it != reg.gauges.end()) gauge = it->second;
    std::printf("  %-10s %8zu %7.3fs %9llu %9llu %9llu %8.1f%%\n", phase,
                records, seconds,
                static_cast<unsigned long long>(st.page_reads),
                static_cast<unsigned long long>(st.page_writes),
                static_cast<unsigned long long>(st.cache_hits),
                100.0 * pool_hit_rate(st));
    obs::Json& row = sink.new_row();
    row.set("params", obs::Json::object()
                          .set("section", "store")
                          .set("phase", phase)
                          .set("pool_pages", static_cast<double>(pool_pages)));
    row.set("metrics", stats_metrics(st, seconds, records)
                           .set("pool_hit_rate_gauge", gauge));
  };

  {
    const obs::ScopedRegistry install(reg);

    // Phase 1: construct -> store (insert the sheet-stress tree's leaves).
    double seconds = 0.0;
    {
      octree::EtreeStore store(path, sizeof(double), pool_pages,
                               /*create=*/true);
      t.reset();
      for (std::size_t i = 0; i < stress.size(); ++i) {
        const double v = static_cast<double>(i);
        store.put(stress[i], std::as_bytes(std::span<const double, 1>(&v, 1)));
      }
      store.flush();
      seconds = t.seconds();
      emit_phase("construct", store.stats(), seconds, stress.size());
    }

    // Phase 2: scan back (fresh store handle: cold pool) and balance.
    std::vector<octree::Octant> leaves;
    {
      octree::EtreeStore store(path, sizeof(double), pool_pages,
                               /*create=*/false);
      t.reset();
      store.scan([&leaves](const octree::Octant& o,
                           std::span<const std::byte>) { leaves.push_back(o); });
      const octree::LinearOctree rebalanced =
          octree::balance(octree::LinearOctree(std::move(leaves)),
                          octree::BalanceScope::kAll);
      seconds = t.seconds();
      emit_phase("scan_balance", store.stats(), seconds, rebalanced.size());

      // Phase 3: re-persist the balanced tree into a second store.
      {
        octree::EtreeStore out(path + ".balanced", sizeof(double), pool_pages,
                               /*create=*/true);
        t.reset();
        for (std::size_t i = 0; i < rebalanced.size(); ++i) {
          const double v = static_cast<double>(i);
          out.put(rebalanced[i],
                  std::as_bytes(std::span<const double, 1>(&v, 1)));
        }
        out.flush();
        seconds = t.seconds();
        emit_phase("repersist", out.stats(), seconds, rebalanced.size());
      }
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".balanced").c_str());

  sink.write_json(json_path);
  if (!csv_path.empty()) sink.write_csv(csv_path);
  std::printf("report: %s\n", json_path.c_str());
  return identical ? 0 : 1;
}
