// Fig 3.3 — source inversion: recover the delay time T(z), dislocation
// amplitude u0(z), and rise time t0(z) along the fault, reporting the
// initial guess, the 5th iteration, and the converged solution against the
// target (the paper's three columns).

#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/inverse/source_inversion.hpp"
#include "quake/util/io.hpp"
#include "quake/util/stats.hpp"

int main() {
  using namespace quake;
  const double rho = 2200.0;
  const wave2d::ShGrid grid{48, 28, 250.0};  // 12 km x 7 km section

  // Depth-stiffening material (known in this experiment).
  std::vector<double> mu(static_cast<std::size_t>(grid.n_elems()));
  for (int e = 0; e < grid.n_elems(); ++e) {
    const double vs = 900.0 + 80.0 * (e / grid.nx);
    mu[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  const wave2d::ShModel model(grid, std::vector<double>(mu), rho);

  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 6, 20};
  setup.source = wave2d::make_rupture_params(grid, setup.fault, 1.0, 0.8,
                                             /*hypo_k=*/13, /*vr=*/2500.0);
  const int np = setup.fault.n_points();
  for (int j = 0; j < np; ++j) {
    // Slip bulge mid-fault, as in extended-source models.
    const double s = static_cast<double>(j) / (np - 1);
    setup.source.u0[static_cast<std::size_t>(j)] =
        1.0 + 0.2 * std::sin(3.14159265 * s);
  }
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  setup.dt = model.stable_dt(0.4);
  setup.nt = 420;
  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(model, setup.source, false).march.records;
  }

  const inverse::InversionProblem prob(setup);
  inverse::SourceInversionOptions so;
  so.max_newton = 20;
  so.cg = {15, 1e-1};
  so.beta_u0 = so.beta_t0 = so.beta_T = 1e-3;
  so.u0_init = 0.7;
  so.t0_init = 1.2;
  so.T_init = 0.4;
  so.grad_tol = 1e-5;

  const auto res = inverse::invert_source(prob, model, so);
  std::printf("Fig 3.3 analogue: source inversion (%d fault nodes, %zu "
              "receivers)\n",
              np, setup.receiver_nodes.size());
  std::printf("misfit: initial %.3e, 5th iteration %.3e, converged %.3e "
              "(%d Newton / %d CG iterations)\n",
              res.iterates.front().misfit,
              res.iterates[std::min<std::size_t>(5, res.iterates.size() - 1)]
                  .misfit,
              res.misfit_final, res.newton_iters, res.cg_iters);

  auto field_err = [&](const std::vector<double>& a,
                       const std::vector<double>& b) {
    return util::rel_l2(a, b);
  };
  const auto& init = res.iterates.front().params;
  const auto& it5 =
      res.iterates[std::min<std::size_t>(5, res.iterates.size() - 1)].params;
  std::printf("%6s | %8s %8s %8s   (relative L2 error vs target)\n", "field",
              "initial", "5th it", "final");
  std::printf("%6s | %8.3f %8.3f %8.3f\n", "T",
              field_err(init.T, setup.source.T),
              field_err(it5.T, setup.source.T),
              field_err(res.params.T, setup.source.T));
  std::printf("%6s | %8.3f %8.3f %8.3f\n", "u0",
              field_err(init.u0, setup.source.u0),
              field_err(it5.u0, setup.source.u0),
              field_err(res.params.u0, setup.source.u0));
  std::printf("%6s | %8.3f %8.3f %8.3f\n", "t0",
              field_err(init.t0, setup.source.t0),
              field_err(it5.t0, setup.source.t0),
              field_err(res.params.t0, setup.source.t0));

  // CSV of the three fields for plotting, paper-style.
  std::vector<std::string> names = {"z_km"};
  std::vector<std::vector<double>> cols(1);
  for (int j = 0; j < np; ++j) {
    cols[0].push_back((setup.fault.k_top + j) * grid.h / 1000.0);
  }
  using Field = std::tuple<const char*, const std::vector<double>*,
                           const std::vector<double>*,
                           const std::vector<double>*,
                           const std::vector<double>*>;
  const Field fields[] = {
      {"T", &setup.source.T, &init.T, &it5.T, &res.params.T},
      {"u0", &setup.source.u0, &init.u0, &it5.u0, &res.params.u0},
      {"t0", &setup.source.t0, &init.t0, &it5.t0, &res.params.t0}};
  for (const auto& [tag, tgt, i0, i5, fin] : fields) {
    const std::pair<const char*, const std::vector<double>*> variants[] = {
        {"_target", tgt}, {"_init", i0}, {"_5th", i5}, {"_final", fin}};
    for (const auto& [suffix, vec] : variants) {
      names.push_back(std::string(tag) + suffix);
      cols.emplace_back(vec->begin(), vec->end());
    }
  }
  util::write_csv("/tmp/fig3_3_source_fields.csv", names, cols);
  std::printf("wrote /tmp/fig3_3_source_fields.csv\n");
  std::printf("(paper: the converged solution essentially coincides with the "
              "target source)\n");
  return 0;
}
