// Microbenchmarks (google-benchmark) for the performance claims of §2:
//  * element-local dense stiffness application vs assembled-sparse CSR
//    matvec — the cache-friendliness argument behind the hexahedral design
//    (and the ~10x memory gap);
//  * the blocked element kernel vs the straight-line reference
//    (hex_apply / hex_apply_batch A/B rows — run these interleaved and
//    repeated, they are the evidence for the SIMD restructuring);
//  * Morton encode/decode;
//  * 2-to-1 balancing algorithms;
//  * etree store point operations.

#include <benchmark/benchmark.h>

#include <vector>

#include "quake/fem/hex_element.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/octree/etree_store.hpp"
#include "quake/octree/morton.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/sparse_engine.hpp"
#include "quake/util/rng.hpp"

namespace {

using namespace quake;

const mesh::HexMesh& bench_mesh() {
  static const mesh::HexMesh mesh = [] {
    const vel::BasinModel model = vel::BasinModel::demo(12800.0);
    mesh::MeshOptions opt;
    opt.domain_size = 12800.0;
    opt.f_max = 0.4;
    opt.n_lambda = 8.0;
    opt.min_level = 3;
    opt.max_level = 6;
    return mesh::generate_mesh(model, opt);
  }();
  return mesh;
}

void BM_ElementStiffnessApply(benchmark::State& state) {
  const auto& mesh = bench_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const solver::ElasticOperator op(mesh, oo);
  util::Rng rng(1);
  std::vector<double> u(op.n_dofs()), y(op.n_dofs(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0.0);
    op.apply_stiffness(u, y, {});
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflop/s"] = benchmark::Counter(
      static_cast<double>(op.flops_per_apply()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["elements"] = static_cast<double>(mesh.n_elements());
}
BENCHMARK(BM_ElementStiffnessApply)->Unit(benchmark::kMillisecond);

void BM_SparseStiffnessApply(benchmark::State& state) {
  const auto& mesh = bench_mesh();
  const solver::SparseStiffness sparse(mesh);
  util::Rng rng(1);
  std::vector<double> u(3 * mesh.n_nodes()), y(3 * mesh.n_nodes(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0.0);
    sparse.apply(u, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflop/s"] = benchmark::Counter(
      static_cast<double>(sparse.flops_per_apply()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["matrix_MB"] =
      static_cast<double>(sparse.memory_bytes()) / 1e6;
}
BENCHMARK(BM_SparseStiffnessApply)->Unit(benchmark::kMillisecond);

// --- Element-kernel A/B: blocked (production) vs straight-line reference.
// Both sides stream the same 4096-element pool through a runtime function
// pointer, so call overhead is identical and the delta isolates the kernel
// body. arg 0 = damping accumulator on/off. Interpret only interleaved
// repeated runs (see docs/EXPERIMENTS.md); the kernels are bitwise
// identical, so the Mflop/s spread is the whole story.

using HexKernel = void (*)(const fem::HexReference&, const double*, double,
                           double, double*, double, double*);

void hex_apply_ab(benchmark::State& state, HexKernel kernel) {
  const fem::HexReference& ref = fem::HexReference::get();
  const bool damp = state.range(0) != 0;
  constexpr int kElems = 4096;
  util::Rng rng(7);
  std::vector<double> u(static_cast<std::size_t>(kElems) * fem::kHexDofs);
  std::vector<double> y(u.size(), 0.0), d(u.size(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    for (int e = 0; e < kElems; ++e) {
      const std::size_t off = static_cast<std::size_t>(e) * fem::kHexDofs;
      kernel(ref, &u[off], 1.1, 0.9, &y[off], 0.02,
             damp ? &d[off] : nullptr);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflop/s"] = benchmark::Counter(
      static_cast<double>(kElems) *
          static_cast<double>(fem::hex_apply_flops(damp)) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_HexApplyBlocked(benchmark::State& state) {
  hex_apply_ab(state, &fem::hex_apply);
}
BENCHMARK(BM_HexApplyBlocked)->Arg(0)->Arg(1);

void BM_HexApplyRef(benchmark::State& state) {
  hex_apply_ab(state, &fem::hex_apply_ref);
}
BENCHMARK(BM_HexApplyRef)->Arg(0)->Arg(1);

// Batched (scenario-lane) kernel A/B at the lane widths the dispatcher
// specializes. arg 0 = lane count; damping always on (the solver's batch
// path runs with Rayleigh damping in every Table 2-1 configuration).
using HexBatchKernel = void (*)(const fem::HexReference&, const double*, int,
                                double, double, double*, double, double*);

void hex_apply_batch_ab(benchmark::State& state, HexBatchKernel kernel) {
  const fem::HexReference& ref = fem::HexReference::get();
  const int lanes = static_cast<int>(state.range(0));
  constexpr int kElems = 1024;
  util::Rng rng(11);
  std::vector<double> u(static_cast<std::size_t>(kElems) * fem::kHexDofs *
                        static_cast<std::size_t>(lanes));
  std::vector<double> y(u.size(), 0.0), d(u.size(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  const std::size_t stride =
      static_cast<std::size_t>(fem::kHexDofs) * static_cast<std::size_t>(lanes);
  for (auto _ : state) {
    for (int e = 0; e < kElems; ++e) {
      const std::size_t off = static_cast<std::size_t>(e) * stride;
      kernel(ref, &u[off], lanes, 1.1, 0.9, &y[off], 0.02, &d[off]);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflop/s"] = benchmark::Counter(
      static_cast<double>(kElems) * static_cast<double>(lanes) *
          static_cast<double>(fem::hex_apply_flops(true)) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_HexApplyBatchBlocked(benchmark::State& state) {
  hex_apply_batch_ab(state, &fem::hex_apply_batch);
}
BENCHMARK(BM_HexApplyBatchBlocked)->Arg(4)->Arg(8)->Arg(16);

void BM_HexApplyBatchRef(benchmark::State& state) {
  hex_apply_batch_ab(state, &fem::hex_apply_batch_ref);
}
BENCHMARK(BM_HexApplyBatchRef)->Arg(4)->Arg(8)->Arg(16);

void BM_MortonEncodeDecode(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<std::uint32_t> xs(4096);
  for (auto& v : xs) v = static_cast<std::uint32_t>(rng.next_u64() & 0x1fffff);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i + 2 < xs.size(); i += 3) {
      const auto code = octree::morton_encode(xs[i], xs[i + 1], xs[i + 2]);
      acc ^= octree::morton_decode(code).x;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MortonEncodeDecode);

void BM_BalanceQueue(benchmark::State& state) {
  const std::uint32_t mid = octree::kTicks / 2;
  const auto stress = octree::build_octree(
      [&](const octree::Octant& o) {
        if (o.level < 2) return true;
        return o.z <= mid && mid < o.z + o.size() && o.level < 6;
      },
      6);
  for (auto _ : state) {
    auto b = octree::balance(stress, octree::BalanceScope::kAll);
    benchmark::DoNotOptimize(b.size());
  }
}
BENCHMARK(BM_BalanceQueue)->Unit(benchmark::kMillisecond);

void BM_BalanceGlobalSweeps(benchmark::State& state) {
  const std::uint32_t mid = octree::kTicks / 2;
  const auto stress = octree::build_octree(
      [&](const octree::Octant& o) {
        if (o.level < 2) return true;
        return o.z <= mid && mid < o.z + o.size() && o.level < 6;
      },
      6);
  for (auto _ : state) {
    auto b = octree::balance_global_sweeps(stress, octree::BalanceScope::kAll);
    benchmark::DoNotOptimize(b.size());
  }
}
BENCHMARK(BM_BalanceGlobalSweeps)->Unit(benchmark::kMillisecond);

void BM_EtreeStorePut(benchmark::State& state) {
  const auto tree =
      octree::build_octree([](const octree::Octant& o) { return o.level < 4; },
                           4);
  for (auto _ : state) {
    octree::EtreeStore store("/tmp/bench_micro.etree", sizeof(double), 64,
                             /*create=*/true);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const double v = static_cast<double>(i);
      store.put(tree[i], std::as_bytes(std::span<const double, 1>(&v, 1)));
    }
    benchmark::DoNotOptimize(store.count());
  }
  state.counters["records"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_EtreeStorePut)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
