// Microbenchmarks (google-benchmark) for the performance claims of §2:
//  * element-local dense stiffness application vs assembled-sparse CSR
//    matvec — the cache-friendliness argument behind the hexahedral design
//    (and the ~10x memory gap);
//  * Morton encode/decode;
//  * 2-to-1 balancing algorithms;
//  * etree store point operations.

#include <benchmark/benchmark.h>

#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/octree/etree_store.hpp"
#include "quake/octree/morton.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/sparse_engine.hpp"
#include "quake/util/rng.hpp"

namespace {

using namespace quake;

const mesh::HexMesh& bench_mesh() {
  static const mesh::HexMesh mesh = [] {
    const vel::BasinModel model = vel::BasinModel::demo(12800.0);
    mesh::MeshOptions opt;
    opt.domain_size = 12800.0;
    opt.f_max = 0.4;
    opt.n_lambda = 8.0;
    opt.min_level = 3;
    opt.max_level = 6;
    return mesh::generate_mesh(model, opt);
  }();
  return mesh;
}

void BM_ElementStiffnessApply(benchmark::State& state) {
  const auto& mesh = bench_mesh();
  solver::OperatorOptions oo;
  oo.abc = fem::AbcType::kNone;
  const solver::ElasticOperator op(mesh, oo);
  util::Rng rng(1);
  std::vector<double> u(op.n_dofs()), y(op.n_dofs(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0.0);
    op.apply_stiffness(u, y, {});
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflop/s"] = benchmark::Counter(
      static_cast<double>(op.flops_per_apply()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["elements"] = static_cast<double>(mesh.n_elements());
}
BENCHMARK(BM_ElementStiffnessApply)->Unit(benchmark::kMillisecond);

void BM_SparseStiffnessApply(benchmark::State& state) {
  const auto& mesh = bench_mesh();
  const solver::SparseStiffness sparse(mesh);
  util::Rng rng(1);
  std::vector<double> u(3 * mesh.n_nodes()), y(3 * mesh.n_nodes(), 0.0);
  for (double& v : u) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0.0);
    sparse.apply(u, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Mflop/s"] = benchmark::Counter(
      static_cast<double>(sparse.flops_per_apply()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["matrix_MB"] =
      static_cast<double>(sparse.memory_bytes()) / 1e6;
}
BENCHMARK(BM_SparseStiffnessApply)->Unit(benchmark::kMillisecond);

void BM_MortonEncodeDecode(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<std::uint32_t> xs(4096);
  for (auto& v : xs) v = static_cast<std::uint32_t>(rng.next_u64() & 0x1fffff);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i + 2 < xs.size(); i += 3) {
      const auto code = octree::morton_encode(xs[i], xs[i + 1], xs[i + 2]);
      acc ^= octree::morton_decode(code).x;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MortonEncodeDecode);

void BM_BalanceQueue(benchmark::State& state) {
  const std::uint32_t mid = octree::kTicks / 2;
  const auto stress = octree::build_octree(
      [&](const octree::Octant& o) {
        if (o.level < 2) return true;
        return o.z <= mid && mid < o.z + o.size() && o.level < 6;
      },
      6);
  for (auto _ : state) {
    auto b = octree::balance(stress, octree::BalanceScope::kAll);
    benchmark::DoNotOptimize(b.size());
  }
}
BENCHMARK(BM_BalanceQueue)->Unit(benchmark::kMillisecond);

void BM_BalanceGlobalSweeps(benchmark::State& state) {
  const std::uint32_t mid = octree::kTicks / 2;
  const auto stress = octree::build_octree(
      [&](const octree::Octant& o) {
        if (o.level < 2) return true;
        return o.z <= mid && mid < o.z + o.size() && o.level < 6;
      },
      6);
  for (auto _ : state) {
    auto b = octree::balance_global_sweeps(stress, octree::BalanceScope::kAll);
    benchmark::DoNotOptimize(b.size());
  }
}
BENCHMARK(BM_BalanceGlobalSweeps)->Unit(benchmark::kMillisecond);

void BM_EtreeStorePut(benchmark::State& state) {
  const auto tree =
      octree::build_octree([](const octree::Octant& o) { return o.level < 4; },
                           4);
  for (auto _ : state) {
    octree::EtreeStore store("/tmp/bench_micro.etree", sizeof(double), 64,
                             /*create=*/true);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const double v = static_cast<double>(i);
      store.put(tree[i], std::as_bytes(std::span<const double, 1>(&v, 1)));
    }
    benchmark::DoNotOptimize(store.count());
  }
  state.counters["records"] = static_cast<double>(tree.size());
}
BENCHMARK(BM_EtreeStorePut)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
