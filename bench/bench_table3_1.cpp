// Table 3.1 — algorithmic scalability of the inversion algorithm.
//
// The paper fixes the wave-propagation grid and grows the material
// (inversion) grid from 125 to 2.1M parameters, showing that the number of
// nonlinear (Gauss-Newton) iterations and of linear (CG) iterations per
// Newton step is essentially mesh-independent. We reproduce the experiment
// at laptop scale on the 2D antiplane problem (see DESIGN.md): same wave
// grid and data for every row, inversion grid ladder, identical tolerances.
//
// Besides the printed tables, the bench emits a "quake.bench/1" report
// (see docs/OBSERVABILITY.md). Each row carries the per-outer-iteration
// convergence series recorded by the Gauss-Newton driver (gn/misfit,
// gn/grad_norm, gn/cg_iters, gn/ls_evals) plus the per-phase scope times,
// wrapped as a 1-rank merged report so the row shape matches table 2.1.
//
//   bench_table3_1 [--quick] [--json PATH] [--csv PATH]

#include <cstdio>
#include <cstring>
#include <vector>

#include "quake/inverse/material_inversion.hpp"
#include "quake/obs/obs.hpp"
#include "quake/obs/sink.hpp"
#include "quake/vel/model.hpp"
#include "quake/wave3d/inversion3d.hpp"

namespace {

// Wraps one thread's registry as a 1-rank merged report and appends a row
// (params/metrics filled by the caller afterwards).
quake::obs::Json series_json(const quake::obs::Registry& reg) {
  quake::obs::Json s = quake::obs::Json::object();
  for (const auto& [name, values] : reg.series) {
    quake::obs::Json arr = quake::obs::Json::array();
    for (double v : values) arr.push_back(v);
    s.set(name, std::move(arr));
  }
  return s;
}

quake::obs::Json one_rank_summary(const quake::obs::Registry& reg) {
  const quake::obs::RankReport rr{0, reg};
  return quake::obs::to_json(quake::obs::merge_reports({&rr, 1}));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace quake;

  bool quick = false;
  std::string json_path = "BENCH_table3_1.json";
  std::string csv_path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (std::strcmp(argv[a], "--csv") == 0 && a + 1 < argc) {
      csv_path = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--csv PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::set_enabled(true);
  obs::MetricsSink sink("table3_1");

  const double rho = 2200.0;
  const wave2d::ShGrid grid{48, 28, 625.0};

  // Target: basin cross-section.
  const vel::BasinModel basin = vel::BasinModel::demo(grid.width());
  std::vector<double> mu_true(static_cast<std::size_t>(grid.n_elems()));
  for (int e = 0; e < grid.n_elems(); ++e) {
    const int i = e % grid.nx, k = e / grid.nx;
    const double vs = std::clamp(
        basin.at((i + 0.5) * grid.h, 0.55 * grid.width(), (k + 0.5) * grid.h)
            .vs(),
        800.0, 3200.0);
    mu_true[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  const wave2d::ShModel truth(grid, std::vector<double>(mu_true), rho);

  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 6, 20};
  setup.source =
      wave2d::make_rupture_params(grid, setup.fault, 1.5, 1.5, 13, 2800.0);
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  setup.dt = truth.stable_dt(0.4);
  setup.nt = 320;
  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(truth, setup.source, false).march.records;
  }
  const inverse::InversionProblem prob(setup);

  std::printf("Table 3.1 analogue: inversion iterations vs number of "
              "inversion parameters (fixed %d-node wave grid)\n",
              grid.n_nodes());
  std::printf("%14s %14s %16s %18s %14s\n", "material grid",
              "nonlinear iter", "total linear iter", "avg linear/newton",
              "|g|/|g0|");

  const std::vector<std::pair<int, int>> ladder =
      quick ? std::vector<std::pair<int, int>>{{2, 1}, {3, 2}, {6, 4}}
            : std::vector<std::pair<int, int>>{
                  {2, 1}, {3, 2}, {6, 4}, {12, 7}, {24, 14}, {48, 28}};
  for (const auto& [gx, gz] : ladder) {
    inverse::MaterialInversionOptions mo;
    mo.stages = {{gx, gz}};  // single stage: one row per parameter count
    mo.max_newton = quick ? 6 : 15;
    // Fixed Newton budget per row; the reported gradient reduction shows
    // all rows converge at the same rate regardless of size.
    mo.cg = {60, 0.5};       // Newton-CG forcing term
    mo.beta_tv = 1e-14;
    mo.tv_eps = 5e7;
    mo.mu_min = 5e8;
    mo.initial_mu = rho * 1800.0 * 1800.0;
    mo.grad_tol = 1e-12;     // run the full budget
    mo.frankel_sweeps = 2;   // L-BFGS preconditioner seeded per the paper

    obs::Registry reg;
    inverse::MaterialInversionResult res = [&] {
      const obs::ScopedRegistry install(reg);
      return inverse::invert_material(prob, mo, mu_true);
    }();
    const auto& s = res.stages[0];
    std::printf("%7d (%2dx%-2d) %14d %16d %18.1f %14.1e\n",
                static_cast<int>(s.n_params), gx, gz, s.newton_iters,
                s.cg_iters,
                s.newton_iters > 0
                    ? static_cast<double>(s.cg_iters) / s.newton_iters
                    : 0.0,
                s.grad_reduction);

    obs::Json& jrow = sink.new_row();
    jrow.set("params", obs::Json::object()
                           .set("problem", "sh2d")
                           .set("gx", gx)
                           .set("gz", gz)
                           .set("n_params", s.n_params)
                           .set("max_newton", mo.max_newton));
    jrow.set("metrics",
             obs::Json::object()
                 .set("newton_iters", s.newton_iters)
                 .set("cg_iters", s.cg_iters)
                 .set("avg_cg_per_newton",
                      s.newton_iters > 0
                          ? static_cast<double>(s.cg_iters) / s.newton_iters
                          : 0.0)
                 .set("grad_reduction", s.grad_reduction)
                 .set("model_error", s.model_error));
    jrow.set("ranks", one_rank_summary(reg));
    jrow.set("series", series_json(reg));
  }
  std::printf("\n(paper: 17..25 nonlinear and ~20 avg linear iterations, "
              "essentially independent of the parameter count)\n");

  // ---- the paper's exact setting: scalar 3D wave equation ----------------
  {
    using namespace quake::wave3d;
    const int n = 12;
    Setup3d s;
    s.grid = ScalarGrid3d{n, n, n, 100.0};
    s.rho = rho;
    s.sources.push_back({s.grid.node(n / 2, n / 2, 2 * n / 3), 1e10, 1.3, 1.0});
    s.sources.push_back({s.grid.node(n / 4, n / 2, n / 2), 6e9, 1.5, 1.2});
    s.sources.push_back({s.grid.node(3 * n / 4, n / 4, n / 3), 8e9, 1.2, 1.4});
    for (int j = 1; j < n; ++j) {
      for (int i = 1; i < n; ++i) {
        s.receiver_nodes.push_back(s.grid.node(i, j, 0));
      }
    }
    // Smooth in-basin anomaly target (inside the Newton basin; see the
    // continuation ablation for what happens outside it).
    std::vector<double> mu_t(static_cast<std::size_t>(s.grid.n_elems()));
    for (int e = 0; e < s.grid.n_elems(); ++e) {
      const int i = e % n, j = (e / n) % n, k = e / (n * n);
      const double dx = (i + 0.5 - 0.5 * n) / n;
      const double dy = (j + 0.5 - 0.5 * n) / n;
      const double dz = (k + 0.5 - 0.25 * n) / n;
      mu_t[static_cast<std::size_t>(e)] =
          1.6e9 * (1.0 - 0.2 * std::exp(-8.0 * (dx * dx + dy * dy + dz * dz)));
    }
    {
      const ScalarModel3d truth3(s.grid, std::vector<double>(mu_t), rho);
      s.dt = truth3.stable_dt(0.4);
      s.nt = quick ? 100 : 170;
      const ScalarInversion3d gen(s);
      s.observations = gen.forward(truth3, false).march.records;
    }
    const ScalarInversion3d prob3(s);

    std::printf("\nScalar 3D wave (the paper's Table 3.1 setting), fixed "
                "%d-node wave grid:\n",
                s.grid.n_nodes());
    std::printf("%14s %14s %16s %18s %14s\n", "material grid",
                "nonlinear iter", "total linear iter", "avg linear/newton",
                "|g|/|g0|");
    const std::vector<std::array<int, 3>> ladder3 =
        quick ? std::vector<std::array<int, 3>>{{1, 1, 1}, {2, 2, 2},
                                                {3, 3, 3}}
              : std::vector<std::array<int, 3>>{
                    {1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {6, 6, 6}, {12, 12, 12}};
    for (const auto& g3 : ladder3) {
      Inversion3dOptions o;
      o.gx = g3[0];
      o.gy = g3[1];
      o.gz = g3[2];
      o.max_newton = quick ? 4 : 10;
      o.cg = {40, 0.1};
      o.mu_min = 1e8;
      o.initial_mu = 1.6e9;
      o.beta_h1_rel = 0.03;
      o.grad_tol = 1e-12;

      obs::Registry reg;
      const Inversion3dReport rep = [&] {
        const obs::ScopedRegistry install(reg);
        return invert_material3d(prob3, o, mu_t);
      }();
      std::printf("%7d (%2d^3 ) %14d %16d %18.1f %14.1e\n",
                  static_cast<int>(rep.n_params), g3[0], rep.newton_iters,
                  rep.cg_iters,
                  rep.newton_iters > 0
                      ? static_cast<double>(rep.cg_iters) / rep.newton_iters
                      : 0.0,
                  rep.grad_reduction);

      obs::Json& jrow = sink.new_row();
      jrow.set("params", obs::Json::object()
                             .set("problem", "scalar3d")
                             .set("gx", g3[0])
                             .set("gy", g3[1])
                             .set("gz", g3[2])
                             .set("n_params", rep.n_params)
                             .set("max_newton", o.max_newton));
      jrow.set("metrics",
               obs::Json::object()
                   .set("newton_iters", rep.newton_iters)
                   .set("cg_iters", rep.cg_iters)
                   .set("avg_cg_per_newton",
                        rep.newton_iters > 0
                            ? static_cast<double>(rep.cg_iters) /
                                  rep.newton_iters
                            : 0.0)
                   .set("grad_reduction", rep.grad_reduction)
                   .set("model_error", rep.model_error));
      jrow.set("ranks", one_rank_summary(reg));
      jrow.set("series", series_json(reg));
    }
    std::printf("(iteration counts flatten once the grid resolves the "
                "anomaly — the paper's mesh-independence)\n");
  }

  sink.write_json(json_path);
  if (!csv_path.empty()) sink.write_csv(csv_path);
  std::printf("report: %s\n", json_path.c_str());
  return 0;
}
