// Table 3.1 — algorithmic scalability of the inversion algorithm.
//
// The paper fixes the wave-propagation grid and grows the material
// (inversion) grid from 125 to 2.1M parameters, showing that the number of
// nonlinear (Gauss-Newton) iterations and of linear (CG) iterations per
// Newton step is essentially mesh-independent. We reproduce the experiment
// at laptop scale on the 2D antiplane problem (see DESIGN.md): same wave
// grid and data for every row, inversion grid ladder, identical tolerances.

#include <cstdio>
#include <vector>

#include "quake/inverse/material_inversion.hpp"
#include "quake/vel/model.hpp"
#include "quake/wave3d/inversion3d.hpp"

int main() {
  using namespace quake;
  const double rho = 2200.0;
  const wave2d::ShGrid grid{48, 28, 625.0};

  // Target: basin cross-section.
  const vel::BasinModel basin = vel::BasinModel::demo(grid.width());
  std::vector<double> mu_true(static_cast<std::size_t>(grid.n_elems()));
  for (int e = 0; e < grid.n_elems(); ++e) {
    const int i = e % grid.nx, k = e / grid.nx;
    const double vs = std::clamp(
        basin.at((i + 0.5) * grid.h, 0.55 * grid.width(), (k + 0.5) * grid.h)
            .vs(),
        800.0, 3200.0);
    mu_true[static_cast<std::size_t>(e)] = rho * vs * vs;
  }
  const wave2d::ShModel truth(grid, std::vector<double>(mu_true), rho);

  inverse::InversionSetup setup;
  setup.grid = grid;
  setup.rho = rho;
  setup.fault = {grid.nx / 2, 6, 20};
  setup.source =
      wave2d::make_rupture_params(grid, setup.fault, 1.5, 1.5, 13, 2800.0);
  for (int i = 1; i < grid.nx; ++i) {
    setup.receiver_nodes.push_back(grid.node(i, 0));
  }
  setup.dt = truth.stable_dt(0.4);
  setup.nt = 320;
  {
    inverse::InversionSetup gen = setup;
    const inverse::InversionProblem p0(gen);
    setup.observations = p0.forward(truth, setup.source, false).march.records;
  }
  const inverse::InversionProblem prob(setup);

  std::printf("Table 3.1 analogue: inversion iterations vs number of "
              "inversion parameters (fixed %d-node wave grid)\n",
              grid.n_nodes());
  std::printf("%14s %14s %16s %18s %14s\n", "material grid",
              "nonlinear iter", "total linear iter", "avg linear/newton",
              "|g|/|g0|");

  const std::vector<std::pair<int, int>> ladder = {
      {2, 1}, {3, 2}, {6, 4}, {12, 7}, {24, 14}, {48, 28}};
  for (const auto& [gx, gz] : ladder) {
    inverse::MaterialInversionOptions mo;
    mo.stages = {{gx, gz}};  // single stage: one row per parameter count
    mo.max_newton = 15;      // fixed Newton budget per row; the reported
                             // gradient reduction shows all rows converge
                             // at the same rate regardless of size
    mo.cg = {60, 0.5};       // Newton-CG forcing term
    mo.beta_tv = 1e-14;
    mo.tv_eps = 5e7;
    mo.mu_min = 5e8;
    mo.initial_mu = rho * 1800.0 * 1800.0;
    mo.grad_tol = 1e-12;     // run the full budget
    mo.frankel_sweeps = 2;   // L-BFGS preconditioner seeded per the paper
    const auto res = inverse::invert_material(prob, mo, mu_true);
    const auto& s = res.stages[0];
    std::printf("%7d (%2dx%-2d) %14d %16d %18.1f %14.1e\n",
                static_cast<int>(s.n_params), gx, gz, s.newton_iters,
                s.cg_iters,
                s.newton_iters > 0
                    ? static_cast<double>(s.cg_iters) / s.newton_iters
                    : 0.0,
                s.grad_reduction);
  }
  std::printf("\n(paper: 17..25 nonlinear and ~20 avg linear iterations, "
              "essentially independent of the parameter count)\n");

  // ---- the paper's exact setting: scalar 3D wave equation ----------------
  {
    using namespace quake::wave3d;
    const int n = 12;
    Setup3d s;
    s.grid = ScalarGrid3d{n, n, n, 100.0};
    s.rho = rho;
    s.sources.push_back({s.grid.node(n / 2, n / 2, 2 * n / 3), 1e10, 1.3, 1.0});
    s.sources.push_back({s.grid.node(n / 4, n / 2, n / 2), 6e9, 1.5, 1.2});
    s.sources.push_back({s.grid.node(3 * n / 4, n / 4, n / 3), 8e9, 1.2, 1.4});
    for (int j = 1; j < n; ++j) {
      for (int i = 1; i < n; ++i) {
        s.receiver_nodes.push_back(s.grid.node(i, j, 0));
      }
    }
    // Smooth in-basin anomaly target (inside the Newton basin; see the
    // continuation ablation for what happens outside it).
    std::vector<double> mu_t(static_cast<std::size_t>(s.grid.n_elems()));
    for (int e = 0; e < s.grid.n_elems(); ++e) {
      const int i = e % n, j = (e / n) % n, k = e / (n * n);
      const double dx = (i + 0.5 - 0.5 * n) / n;
      const double dy = (j + 0.5 - 0.5 * n) / n;
      const double dz = (k + 0.5 - 0.25 * n) / n;
      mu_t[static_cast<std::size_t>(e)] =
          1.6e9 * (1.0 - 0.2 * std::exp(-8.0 * (dx * dx + dy * dy + dz * dz)));
    }
    {
      const ScalarModel3d truth(s.grid, std::vector<double>(mu_t), rho);
      s.dt = truth.stable_dt(0.4);
      s.nt = 170;
      const ScalarInversion3d gen(s);
      s.observations = gen.forward(truth, false).march.records;
    }
    const ScalarInversion3d prob3(s);

    std::printf("\nScalar 3D wave (the paper's Table 3.1 setting), fixed "
                "%d-node wave grid:\n",
                s.grid.n_nodes());
    std::printf("%14s %14s %16s %18s %14s\n", "material grid",
                "nonlinear iter", "total linear iter", "avg linear/newton",
                "|g|/|g0|");
    const int ladder3[][3] = {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {6, 6, 6},
                              {12, 12, 12}};
    for (const auto& g3 : ladder3) {
      Inversion3dOptions o;
      o.gx = g3[0];
      o.gy = g3[1];
      o.gz = g3[2];
      o.max_newton = 10;
      o.cg = {40, 0.1};
      o.mu_min = 1e8;
      o.initial_mu = 1.6e9;
      o.beta_h1_rel = 0.03;
      o.grad_tol = 1e-12;
      const auto rep = invert_material3d(prob3, o, mu_t);
      std::printf("%7d (%2d^3 ) %14d %16d %18.1f %14.1e\n",
                  static_cast<int>(rep.n_params), g3[0], rep.newton_iters,
                  rep.cg_iters,
                  rep.newton_iters > 0
                      ? static_cast<double>(rep.cg_iters) / rep.newton_iters
                      : 0.0,
                  rep.grad_reduction);
    }
    std::printf("(iteration counts flatten once the grid resolves the "
                "anomaly — the paper's mesh-independence)\n");
  }
  return 0;
}
