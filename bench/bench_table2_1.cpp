// Table 2.1 — parallel scalability of the forward earthquake solver.
//
// The paper scales Northridge simulations of growing resolution from 1 to
// 3000 AlphaServer processors and reports grid points, points per
// processor, sustained Gflop/s, Mflop/s per processor, and parallel
// efficiency. This host has one core (see DESIGN.md), so we reproduce the
// table's *shape* with in-process SPMD ranks: per-row we report the real
// partition metrics (points/rank, communication volume, load imbalance)
// and the parallel efficiency of an AlphaServer-class machine model
// evaluated on the measured per-rank work and communication — alongside
// the measured aggregate Mflop/s of the actual run.
//
// Besides the human-readable table, the bench emits a machine-readable
// "quake.bench/1" report (see docs/OBSERVABILITY.md): one row per table
// line with the experiment parameters, the headline metrics, and the
// min/mean/max-across-ranks telemetry summary gathered by quake::obs.
//
//   bench_table2_1 [--quick] [--fault-sweep] [--lts-sweep] [--json PATH]
//                  [--csv PATH]
//
// --quick shrinks the ladder for CI; the default JSON path is
// BENCH_table2_1.json in the working directory.
//
// --lts-sweep appends interleaved local-time-stepping A/B rows (params.lts
// = off | on, params.scheme = serial | par; see docs/LTS.md). The serial
// pair reruns the Fig 2.2 layer-over-halfspace verification with the
// global-dt ExplicitSolver and with LtsSolver on the same two-octree-level
// mesh, reporting the closed-form error of each plus the measured
// updates_saved_ratio; the parallel pair drives ParallelSetup::run_lts
// off/on over the basin mesh and reports the ratio alongside the drift of
// the final field and seismogram from the global-dt run.
//
// --fault-sweep appends a recovery-latency comparison (see DESIGN.md
// "Localized recovery"): the same seeded mid-run rank kill handled by the
// three recovery tiers — message-log replay (zero survivor rollback),
// donation-aware rollback (message log disabled), and the full-restart
// supervisor — against a fault-free
// control, interleaved over several trials. Its report rows carry
// params.mode = clean | recovery | rollback | full_restart plus wall-clock
// metrics and the recover/agree|restore|replay|resume latency breakdown.
//
// The report also carries a delayed-neighbor drain sweep (rows with
// params.drain_mode): an all-to-all ghost exchange where one rank
// oversleeps before sending each round, drained either in strict ascending
// rank order (the pre-arrival-order protocol) or with the solver's
// park-as-they-arrive drain. The others_parked metric — how long the
// receiver takes to bank every NON-straggler payload — is the
// serialization evidence: rank-ordered draining with a low straggler holds
// every later edge hostage for the full delay, arrival-order draining
// banks them immediately.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "quake/par/communicator.hpp"

#include "quake/lts/clustering.hpp"
#include "quake/lts/lts_solver.hpp"
#include "quake/mesh/meshgen.hpp"
#include "quake/obs/obs.hpp"
#include "quake/obs/report.hpp"
#include "quake/obs/sink.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/par/partition.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/sh1d.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/stats.hpp"
#include "quake/util/timer.hpp"

namespace {

using namespace quake;

struct Row {
  int ranks;
  std::string model;
  double f_max;
  int max_level;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool fault_sweep = false;
  bool lts_sweep = false;
  std::string json_path = "BENCH_table2_1.json";
  std::string csv_path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[a], "--fault-sweep") == 0) {
      fault_sweep = true;
    } else if (std::strcmp(argv[a], "--lts-sweep") == 0) {
      lts_sweep = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (std::strcmp(argv[a], "--csv") == 0 && a + 1 < argc) {
      csv_path = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--fault-sweep] [--lts-sweep] "
                   "[--json PATH] [--csv PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::set_enabled(true);
  obs::MetricsSink sink("table2_1");

  const double extent = 25600.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);

  // Resolution ladder mirroring LA10S..LA1H: frequency doubles down the
  // table, the largest model is reused for the biggest rank counts.
  const std::vector<Row> rows =
      quick ? std::vector<Row>{{1, "BAS10S", 0.05, 5},
                               {2, "BAS5S", 0.10, 6},
                               {4, "BAS4S", 0.125, 6}}
            : std::vector<Row>{{1, "BAS10S", 0.05, 5}, {2, "BAS5S", 0.10, 6},
                               {4, "BAS4S", 0.125, 6}, {8, "BAS3S", 0.167, 6},
                               {12, "BAS2S", 0.25, 7}, {16, "BAS2S", 0.25, 7}};
  const double t_end = quick ? 0.2 : 0.6;

  std::printf("Table 2.1 analogue: forward-solver scalability "
              "(machine model: 500 Mflop/s per PE, 200 MB/s links, 5 us)\n");
  std::printf("%5s %8s %10s %10s %9s %9s %10s %9s %11s %10s\n", "PEs",
              "model", "grid pts", "pts/PE", "imbal", "shared%", "kB/step",
              "overlap", "meas Mf/s", "model eff");

  double base_eff = -1.0;
  for (const Row& row : rows) {
    mesh::MeshOptions mopt;
    mopt.domain_size = extent;
    mopt.f_max = row.f_max;
    mopt.n_lambda = 8.0;
    mopt.min_level = 3;
    mopt.max_level = row.max_level;
    const mesh::HexMesh mesh = mesh::generate_mesh(model, mopt);

    solver::FaultSource::Spec fs;
    fs.y = 0.55 * extent;
    fs.x0 = 0.3 * extent;
    fs.x1 = 0.6 * extent;
    fs.z_top = 1000.0;
    fs.z_bot = 5000.0;
    fs.hypocenter = {0.4 * extent, 3000.0};
    fs.rise_time = 2.0;
    fs.slip = 1.0;
    const solver::FaultSource source(mesh, fs);

    solver::OperatorOptions oopt;
    solver::SolverOptions sopt;
    sopt.t_end = t_end;
    sopt.cfl_fraction = 0.4;

    const par::Partition part = par::partition_sfc(mesh, row.ranks);
    const solver::SourceModel* sources[] = {&source};
    const par::ParallelResult pr =
        par::run_parallel(mesh, part, oopt, sopt, sources, {});

    std::uint64_t flops = 0, elem_updates = 0;
    std::size_t shared_doubles = 0, shared_nodes = 0, total_rank_nodes = 0;
    double compute = 0.0, overlap = 0.0;
    for (const auto& s : pr.rank_stats) {
      flops += s.flops;
      elem_updates += s.element_updates;
      shared_doubles += s.doubles_sent_per_step;
      compute = std::max(compute, s.compute_seconds + s.exchange_seconds);
      overlap += s.overlap_fraction;
    }
    overlap /= static_cast<double>(pr.rank_stats.size());
    for (const auto& s : part.stats) {
      shared_nodes += s.n_shared_nodes;
      total_rank_nodes += s.n_nodes;
    }
    const double meas_mflops =
        compute > 0.0 ? static_cast<double>(flops) / compute * 1e-6 : 0.0;
    const double eff_raw = par::modeled_efficiency(pr, par::MachineModel{});
    if (base_eff < 0.0) base_eff = eff_raw;
    // Normalize so the 1-PE row is 1.00, as in the paper.
    const double eff = eff_raw / base_eff;
    const double shared_frac = total_rank_nodes > 0
                                   ? static_cast<double>(shared_nodes) /
                                         static_cast<double>(total_rank_nodes)
                                   : 0.0;
    const double kb_per_step =
        static_cast<double>(shared_doubles) * 8.0 / 1024.0;
    // Global-dt rows do one element-kernel application per element per
    // step, so the updates-saved ratio is identically 1 here; the
    // --lts-sweep rows are where it exceeds 1.
    const std::uint64_t global_updates =
        static_cast<std::uint64_t>(pr.n_steps) * mesh.n_elements();
    const double updates_saved =
        elem_updates > 0 ? static_cast<double>(global_updates) /
                               static_cast<double>(elem_updates)
                         : 1.0;

    std::printf(
        "%5d %8s %10zu %10zu %9.3f %8.1f%% %10.1f %8.1f%% %11.0f %10.3f\n",
        row.ranks, row.model.c_str(), mesh.n_nodes(),
        mesh.n_nodes() / static_cast<std::size_t>(row.ranks),
        part.imbalance(), 100.0 * shared_frac, kb_per_step, 100.0 * overlap,
        meas_mflops, eff);

    obs::Json& jrow = sink.new_row();
    jrow.set("params", obs::Json::object()
                           .set("ranks", row.ranks)
                           .set("model", row.model)
                           .set("f_max", row.f_max)
                           .set("max_level", row.max_level)
                           .set("t_end", t_end));
    jrow.set("metrics",
             obs::Json::object()
                 .set("grid_points", mesh.n_nodes())
                 .set("points_per_rank",
                      mesh.n_nodes() / static_cast<std::size_t>(row.ranks))
                 .set("n_steps", pr.n_steps)
                 .set("imbalance", part.imbalance())
                 .set("shared_node_fraction", shared_frac)
                 .set("kb_per_step", kb_per_step)
                 .set("overlap_fraction", overlap)
                 .set("measured_mflops", meas_mflops)
                 .set("modeled_efficiency", eff_raw)
                 .set("modeled_efficiency_normalized", eff)
                 .set("element_updates", static_cast<double>(elem_updates))
                 .set("updates_saved_ratio", updates_saved));
    jrow.set("ranks", obs::to_json(pr.obs_summary));
  }
  std::printf("\n(paper: efficiency 1.00 -> 0.80 from 1 to 3000 PEs; the "
              "model-efficiency column should decay mildly with rank count "
              "as the shared-surface fraction grows)\n");

  {
    // ---- delayed-neighbor drain sweep (see header comment) ----
    const int R = quick ? 4 : 8;
    const int rounds = quick ? 10 : 30;
    const int kWidth = 2048;  // doubles per edge, ~16 kB — a realistic face
    const auto sleep_len = std::chrono::milliseconds(2);
    struct DrainMode {
      const char* name;
      bool arrival_order;
    };
    const DrainMode dmodes[] = {{"rank_order", false}, {"arrival_order", true}};
    const int stragglers[] = {-1, 0, R - 1};

    std::printf("\nDelayed-neighbor drain sweep: %d ranks all-to-all, %d "
                "rounds, straggler oversleeps %lldms before sending\n",
                R, rounds,
                static_cast<long long>(sleep_len.count()));
    std::printf("%14s %10s %16s %18s\n", "drain", "straggler",
                "drain ms/round", "others parked ms");

    for (const DrainMode& dm : dmodes) {
      for (const int straggler : stragglers) {
        std::vector<obs::RankReport> reports(static_cast<std::size_t>(R));
        // Per-rank, max over rounds: seconds from drain start until every
        // NON-straggler edge had been banked. Each rank writes its own slot.
        std::vector<double> others_parked(static_cast<std::size_t>(R), 0.0);
        par::Communicator comm(R);
        comm.run([&](par::Rank& r) {
          reports[static_cast<std::size_t>(r.id())].rank = r.id();
          obs::ScopedRegistry obs_here(
              reports[static_cast<std::size_t>(r.id())].metrics);
          std::vector<double> payload(kWidth, 0.5 + r.id());
          std::vector<std::vector<double>> parked(
              static_cast<std::size_t>(R), std::vector<double>(kWidth, 0.0));
          std::vector<double> sums(kWidth, 0.0);
          std::vector<std::uint8_t> arrived(static_cast<std::size_t>(R), 0);
          const int n_others =
              straggler < 0 || straggler == r.id() ? R - 1 : R - 2;
          for (int round = 0; round < rounds; ++round) {
            QUAKE_OBS_SCOPE("step");
            QUAKE_OBS_SCOPE("exchange");
            {
              QUAKE_OBS_SCOPE("post");
              if (r.id() == straggler) std::this_thread::sleep_for(sleep_len);
              for (int dst = 0; dst < R; ++dst) {
                if (dst != r.id()) r.send(dst, 0, payload);
              }
            }
            {
              QUAKE_OBS_SCOPE("drain");
              const auto t0 = std::chrono::steady_clock::now();
              double t_others = 0.0;
              int n_banked = 0;
              const auto bank = [&](int s) {
                arrived[static_cast<std::size_t>(s)] = 1;
                if (s != straggler && ++n_banked == n_others) {
                  t_others = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
                }
              };
              {
                QUAKE_OBS_SCOPE("wait");
                std::fill(arrived.begin(), arrived.end(), std::uint8_t{0});
                if (dm.arrival_order) {
                  constexpr int kIdlePassLimit = 64;
                  int n_pending = R - 1;
                  int idle_passes = 0;
                  while (n_pending > 0) {
                    int progressed = 0;
                    int first_pending = -1;
                    for (int s = 0; s < R; ++s) {
                      if (s == r.id() ||
                          arrived[static_cast<std::size_t>(s)] != 0) {
                        continue;
                      }
                      if (r.try_recv_into(
                              s, 0, parked[static_cast<std::size_t>(s)])) {
                        bank(s);
                        --n_pending;
                        ++progressed;
                      } else if (first_pending < 0) {
                        first_pending = s;
                      }
                    }
                    if (n_pending == 0 || progressed > 0) {
                      idle_passes = 0;
                    } else if (++idle_passes < kIdlePassLimit) {
                      std::this_thread::yield();
                    } else {
                      r.recv_into(first_pending, 0,
                                  parked[static_cast<std::size_t>(
                                      first_pending)]);
                      bank(first_pending);
                      --n_pending;
                      idle_passes = 0;
                    }
                  }
                } else {
                  for (int s = 0; s < R; ++s) {
                    if (s == r.id()) continue;
                    r.recv_into(s, 0, parked[static_cast<std::size_t>(s)]);
                    bank(s);
                  }
                }
              }
              others_parked[static_cast<std::size_t>(r.id())] = std::max(
                  others_parked[static_cast<std::size_t>(r.id())], t_others);
              for (int s = 0; s < R; ++s) {
                const std::vector<double>& src =
                    s == r.id() ? payload : parked[static_cast<std::size_t>(s)];
                for (int i = 0; i < kWidth; ++i) sums[i] += src[i];
              }
            }
          }
          // Synthetic harness: there is no compute to hide the exchange
          // behind, so the overlap gauge the exchange-telemetry contract
          // requires is identically zero here.
          obs::gauge_set("par/overlap_fraction", 0.0);
          volatile double keep = sums[0];  // keep the accumulation observable
          (void)keep;
        });

        const obs::MergedReport merged = obs::merge_reports(reports);
        const auto dit = merged.scopes.find("step/exchange/drain");
        const double drain_mean =
            dit == merged.scopes.end() ? 0.0 : dit->second.seconds.mean;
        double parked_worst = 0.0;
        for (int rr = 0; rr < R; ++rr) {
          if (rr != straggler) {
            parked_worst =
                std::max(parked_worst, others_parked[static_cast<std::size_t>(rr)]);
          }
        }
        std::printf("%14s %10d %16.3f %18.3f\n", dm.name, straggler,
                    1e3 * drain_mean / rounds, 1e3 * parked_worst);

        obs::Json& jrow = sink.new_row();
        jrow.set("params", obs::Json::object()
                               .set("drain_mode", dm.name)
                               .set("straggler", straggler)
                               .set("ranks", R)
                               .set("rounds", rounds)
                               .set("payload_doubles", kWidth)
                               .set("straggler_sleep_ms",
                                    static_cast<double>(sleep_len.count())));
        jrow.set("metrics",
                 obs::Json::object()
                     .set("drain_seconds_per_round", drain_mean / rounds)
                     .set("others_parked_seconds_worst", parked_worst)
                     // No compute phase in the synthetic exchange, so
                     // nothing can be hidden behind it.
                     .set("overlap_fraction", 0.0));
        jrow.set("ranks", obs::to_json(merged));
      }
    }
    std::printf("(arrival-order draining should bank the non-straggler "
                "edges in ~0 ms even when rank 0 is the straggler; "
                "rank-ordered draining holds them for the full delay)\n");
  }

  if (lts_sweep) {
    // ---- local time stepping A/B sweep (rows with params.lts) ----
    //
    // Serial pair: the Fig 2.2 verification problem run off/on on one
    // adaptive mesh. The soft layer gets a saturated-sediment P velocity
    // (vp/vs = 4): wavelength refinement sizes h to vs while the CFL bound
    // follows h / vp, so the layer's stable step is genuinely below the
    // halfspace's and the mesh clusters into two rate classes — while the
    // SH physics never reads vp, leaving the closed form untouched.
    const double Lc = 800.0, Hc = 150.0;
    const double vs1 = 800.0, vp1 = 3200.0, rho1 = 2000.0;
    const double vs2 = 1600.0, vp2 = 1.732 * 1600.0, rho2 = 2400.0;
    const vel::LayeredModel lmodel(
        {{Hc, vel::Material::from_velocities(vp1, vs1, rho1)},
         {0.0, vel::Material::from_velocities(vp2, vs2, rho2)}});
    mesh::MeshOptions lopt;
    lopt.domain_size = Lc;
    lopt.f_max = 4.0;
    lopt.n_lambda = 8.0;
    lopt.min_level = 3;
    lopt.max_level = 6;
    const mesh::HexMesh lmesh = mesh::generate_mesh(lmodel, lopt);
    int lv_min = 255, lv_max = 0;
    for (const std::uint8_t lv : lmesh.elem_level) {
      lv_min = std::min<int>(lv_min, lv);
      lv_max = std::max<int>(lv_max, lv);
    }
    const int octree_levels = lv_max - lv_min + 1;

    solver::OperatorOptions labc;
    labc.abc = fem::AbcType::kLysmer;
    labc.absorbing_sides = {false, false, false, false, false, true};
    const solver::ElasticOperator lop(lmesh, labc);
    solver::SolverOptions lsopt;
    lsopt.t_end = quick ? 0.9 : 1.4;
    lsopt.cfl_fraction = 0.35;
    const int kMaxRate = 32;

    // Upgoing displacement pulse in the halfspace (see bench_fig2_2).
    const double zc = 500.0, sigma = 150.0;
    const auto pulse = [&](double z) {
      return std::exp(-std::pow((z - zc) / sigma, 2));
    };
    std::vector<double> u0(lop.n_dofs(), 0.0), v0(lop.n_dofs(), 0.0);
    for (std::size_t n = 0; n < lmesh.n_nodes(); ++n) {
      const double z = lmesh.node_coords[n][2];
      u0[3 * n + 1] = pulse(z);
      v0[3 * n + 1] = vs2 * (-2.0 * (z - zc) / (sigma * sigma)) * pulse(z);
    }
    const solver::ShLayerParams sp{Hc, rho1, vs1, rho2, vs2};
    const auto incident = [&](double t) { return pulse(Hc + vs2 * t); };
    const auto exact_for = [&](std::size_t n_samples, double dt) {
      // The solver records u^{k+1} at t = (k+1) dt; sample the closed form
      // on the same staggered instants.
      std::vector<double> all = sh_layer_surface_response(
          sp, incident, static_cast<int>(n_samples) + 1, dt);
      return std::vector<double>(all.begin() + 1, all.end());
    };

    std::printf("\nLTS sweep: serial Fig 2.2 verification off/on "
                "(%zu elements, octree levels %d..%d)\n",
                lmesh.n_elements(), lv_min, lv_max);
    std::printf("%8s %8s %12s %12s %10s %10s\n", "scheme", "lts",
                "rel L2 err", "correlation", "saved", "classes");

    std::vector<double> rec_off;
    double err_off = 0.0;
    for (int on = 0; on <= 1; ++on) {
      std::vector<double> rec;
      double ratio = 1.0, predicted = 1.0, elem_updates = 0.0;
      int n_classes = 1, n_steps = 0;
      double dt = 0.0;
      if (on == 0) {
        solver::ExplicitSolver s(lop, lsopt);
        s.set_fixed_components({true, false, true});
        s.set_initial_conditions(u0, v0);
        s.add_receiver({Lc / 2, Lc / 2, 0.0});
        s.run();
        rec = s.receiver_component(0, 1);
        dt = s.dt();
        n_steps = static_cast<int>(rec.size());
        elem_updates = static_cast<double>(n_steps) *
                       static_cast<double>(lmesh.n_elements());
      } else {
        lts::LtsOptions lo;
        lo.enabled = true;
        lo.max_rate = kMaxRate;
        lts::LtsSolver s(lop, lsopt, lo);
        s.set_fixed_components({true, false, true});
        s.set_initial_conditions(u0, v0);
        s.add_receiver({Lc / 2, Lc / 2, 0.0});
        s.run();
        rec = s.receiver_component(0, 1);
        dt = s.dt();
        n_steps = s.n_steps();
        ratio = s.updates_saved_ratio();
        predicted = s.clustering().predicted_updates_saved();
        n_classes = s.clustering().n_classes;
        elem_updates = static_cast<double>(s.element_updates());
      }
      const std::vector<double> exact = exact_for(rec.size(), dt);
      const double err = util::rel_l2(rec, exact);
      const double corr = util::correlation(rec, exact);
      std::printf("%8s %8s %12.4f %12.6f %10.4f %10d\n", "serial",
                  on ? "on" : "off", err, corr, ratio, n_classes);

      obs::Json& jrow = sink.new_row();
      jrow.set("params", obs::Json::object()
                             .set("lts", on ? "on" : "off")
                             .set("scheme", "serial")
                             .set("model", "LAY2R")
                             .set("ranks", 1)
                             .set("f_max", lopt.f_max)
                             .set("max_level", lopt.max_level)
                             .set("max_rate", kMaxRate)
                             .set("t_end", lsopt.t_end));
      obs::Json metrics =
          obs::Json::object()
              .set("n_steps", n_steps)
              .set("octree_levels", octree_levels)
              .set("n_classes", n_classes)
              .set("rel_l2_err", err)
              .set("correlation", corr)
              .set("element_updates", elem_updates)
              .set("updates_saved_ratio", ratio)
              .set("predicted_updates_saved", predicted);
      if (on == 0) {
        rec_off = rec;
        err_off = err;
      } else {
        // The equivalence-tier evidence: LTS drifts from the global-dt
        // seismogram only through the coarse nodes' larger step, and the
        // closed-form error stays at the off-row's level.
        metrics.set("seis_rel_diff_vs_global", util::rel_l2(rec, rec_off))
            .set("rel_l2_err_off", err_off);
      }
      jrow.set("metrics", metrics);
    }

    // Parallel pair: the basin demo mesh (three rate classes: the
    // min-level cap leaves deep fast rock coarse, and sediments carry a
    // higher vp/vs than rock) through ParallelSetup::run_lts off/on.
    mesh::MeshOptions bopt;
    bopt.domain_size = extent;
    bopt.f_max = 0.2;
    bopt.n_lambda = 8.0;
    bopt.min_level = 3;
    bopt.max_level = 6;
    const mesh::HexMesh bmesh = mesh::generate_mesh(model, bopt);
    int blv_min = 255, blv_max = 0;
    for (const std::uint8_t lv : bmesh.elem_level) {
      blv_min = std::min<int>(blv_min, lv);
      blv_max = std::max<int>(blv_max, lv);
    }

    solver::FaultSource::Spec fs;
    fs.y = 0.55 * extent;
    fs.x0 = 0.3 * extent;
    fs.x1 = 0.6 * extent;
    fs.z_top = 1000.0;
    fs.z_bot = 5000.0;
    fs.hypocenter = {0.4 * extent, 3000.0};
    fs.rise_time = 2.0;
    fs.slip = 1.0;
    const solver::FaultSource bsource(bmesh, fs);
    const solver::SourceModel* bsources[] = {&bsource};
    const std::array<double, 3> brecv[] = {{0.5 * extent, 0.5 * extent, 0.0}};

    solver::OperatorOptions boopt;
    solver::SolverOptions bsopt;
    bsopt.t_end = quick ? 0.6 : 1.0;
    bsopt.cfl_fraction = 0.4;
    const int kRanks = 4;
    const par::Partition bpart = par::partition_sfc(bmesh, kRanks);
    par::ParallelSetup setup(bmesh, bpart, boopt, bsopt);
    const lts::Clustering bcl = lts::cluster_elements(
        bmesh, setup.dt(), bsopt.cfl_fraction, kMaxRate);

    std::printf("LTS sweep: parallel basin run off/on (%zu elements, %d "
                "ranks, octree levels %d..%d, %d rate classes)\n",
                bmesh.n_elements(), kRanks, blv_min, blv_max, bcl.n_classes);
    std::printf("%8s %8s %12s %14s %10s\n", "scheme", "lts", "saved",
                "u_final drift", "seis drift");

    par::ParallelResult pr_off;
    for (int on = 0; on <= 1; ++on) {
      lts::LtsOptions lo;
      lo.enabled = on != 0;
      lo.max_rate = kMaxRate;
      par::ParallelResult pr =
          setup.run_lts(bsopt.t_end, bsources, brecv, lo);
      std::uint64_t updates = 0;
      for (const auto& s : pr.rank_stats) updates += s.element_updates;
      const std::uint64_t global_updates =
          static_cast<std::uint64_t>(pr.n_steps) * bmesh.n_elements();
      const double ratio = updates > 0 ? static_cast<double>(global_updates) /
                                             static_cast<double>(updates)
                                       : 1.0;
      const auto flat = [](const std::vector<std::array<double, 3>>& h) {
        std::vector<double> v;
        v.reserve(3 * h.size());
        for (const auto& a : h) v.insert(v.end(), a.begin(), a.end());
        return v;
      };
      double u_drift = 0.0, seis_drift = 0.0;
      if (on != 0) {
        u_drift = util::rel_l2(pr.u_final, pr_off.u_final);
        seis_drift = util::rel_l2(flat(pr.receiver_histories[0]),
                                  flat(pr_off.receiver_histories[0]));
      }
      std::printf("%8s %8s %12.4f %14.6f %10.6f\n", "par", on ? "on" : "off",
                  ratio, u_drift, seis_drift);

      obs::Json& jrow = sink.new_row();
      jrow.set("params", obs::Json::object()
                             .set("lts", on ? "on" : "off")
                             .set("scheme", "par")
                             .set("model", "BASLTS")
                             .set("ranks", kRanks)
                             .set("f_max", bopt.f_max)
                             .set("max_level", bopt.max_level)
                             .set("max_rate", kMaxRate)
                             .set("t_end", bsopt.t_end));
      obs::Json metrics =
          obs::Json::object()
              .set("n_steps", pr.n_steps)
              .set("octree_levels", blv_max - blv_min + 1)
              .set("n_classes", on ? bcl.n_classes : 1)
              .set("element_updates", static_cast<double>(updates))
              .set("updates_saved_ratio", ratio)
              .set("predicted_updates_saved",
                   on ? bcl.predicted_updates_saved() : 1.0);
      if (on != 0) {
        metrics.set("u_final_rel_diff_vs_global", u_drift)
            .set("seis_rel_diff_vs_global", seis_drift);
      }
      jrow.set("metrics", metrics);
      jrow.set("ranks", obs::to_json(pr.obs_summary));
      if (on == 0) pr_off = std::move(pr);
    }
    std::printf("(LTS on should save updates — ratio > 1 — while the "
                "closed-form error and the drift from global dt stay at "
                "the discretization level)\n");
  }

  if (fault_sweep) {
    // ---- recovery-latency sweep: the same seeded kill, four policies ----
    const int R = quick ? 4 : 8;
    mesh::MeshOptions mopt;
    mopt.domain_size = extent;
    mopt.f_max = quick ? 0.05 : 0.10;
    mopt.n_lambda = 8.0;
    mopt.min_level = 3;
    mopt.max_level = quick ? 5 : 6;
    const mesh::HexMesh mesh = mesh::generate_mesh(model, mopt);

    solver::FaultSource::Spec fs;
    fs.y = 0.55 * extent;
    fs.x0 = 0.3 * extent;
    fs.x1 = 0.6 * extent;
    fs.z_top = 1000.0;
    fs.z_bot = 5000.0;
    fs.hypocenter = {0.4 * extent, 3000.0};
    fs.rise_time = 2.0;
    fs.slip = 1.0;
    const solver::FaultSource source(mesh, fs);
    const solver::SourceModel* sources[] = {&source};

    solver::OperatorOptions oopt;
    solver::SolverOptions sopt;
    sopt.t_end = quick ? 0.4 : 0.8;
    sopt.cfl_fraction = 0.4;
    const par::Partition part = par::partition_sfc(mesh, R);

    // Probe once for the step count, then kill just after a checkpoint so
    // the rollback depth (and hence the replay cost) is identical for the
    // in-place and full-restart policies — the difference left is pure
    // recovery overhead: teardown/restore scope vs one revived thread.
    const par::ParallelResult probe =
        par::run_parallel(mesh, part, oopt, sopt, sources, {});
    const int n = probe.n_steps;
    const int every = std::max(1, n / 4);
    const int kill_step = std::min(3 * every + 1, n - 1);
    const std::filesystem::path ckpt_dir =
        std::filesystem::temp_directory_path() / "quake_bench_fault_sweep";

    struct Mode {
      const char* name;
      bool kill;
      int max_revives;
      int log_steps;  // FaultToleranceOptions::message_log_steps
      bool async;     // FaultToleranceOptions::async_donation
      int victims;    // 0 = no kill, 1 = single, 2 = disjoint pair
    };
    // "recovery" is the full tier-1 path (donation + message-log replay);
    // "rollback" disables the message log so the same kill lands on the
    // tier-2 donation-aware rollback (the PR 4 behaviour); "full_restart"
    // spends no revives and falls through to the supervisor. The
    // "donation_sync"/"donation_async" pair are fault-free A/B controls
    // isolating the donation-stream cost at each checkpoint cut: sync
    // blocks on the buddy snapshot before the cut barrier, async posts
    // fire-and-forget and drains opportunistically (recover/donate/wait
    // is the measured difference). "multi_victim" kills a ghost-disjoint
    // victim pair at the same checkpoint-aligned step so both restore
    // from donations and replay concurrently in one recovery epoch.
    const Mode modes[] = {{"clean", false, 0, 0, true, 0},
                          {"recovery", true, 2, -1, true, 1},
                          {"rollback", true, 2, 0, true, 1},
                          {"full_restart", true, 0, 0, true, 1},
                          {"donation_sync", false, 2, -1, false, 0},
                          {"donation_async", false, 2, -1, true, 0},
                          {"multi_victim", true, 2, -1, true, 2}};
    constexpr int kModes = 7;

    // The multi-victim row needs a victim pair that shares no ghost edge
    // (so every victim-victim replay span is survivor-served) and is
    // non-consecutive in the buddy ring (so both donors survive). Small
    // partitions can be too coupled to admit one; escalate the rank count
    // for that row until a pair exists.
    const int kill_mv = 3 * every;  // checkpoint-aligned => simultaneous
    int R_mv = R;
    par::Partition part_mv = part;
    std::vector<int> victims_mv;
    for (const int cand : {R, 12, 16}) {
      if (cand < R) continue;
      par::Partition p =
          cand == R ? part : par::partition_sfc(mesh, cand);
      const auto adj = par::ParallelSetup(mesh, p, oopt, sopt)
                           .neighbor_ranks();
      for (int i = 0; i < cand && victims_mv.empty(); ++i) {
        for (int j = i + 2; j < cand; ++j) {
          if ((j + 1) % cand == i) continue;  // buddy-ring neighbours
          if (std::find(adj[static_cast<std::size_t>(i)].begin(),
                        adj[static_cast<std::size_t>(i)].end(),
                        j) != adj[static_cast<std::size_t>(i)].end()) {
            continue;
          }
          victims_mv = {i, j};
          break;
        }
      }
      if (!victims_mv.empty()) {
        R_mv = cand;
        part_mv = std::move(p);
        break;
      }
    }
    if (victims_mv.empty()) {
      std::fprintf(stderr,
                   "fault sweep: no disjoint victim pair up to 16 ranks; "
                   "multi_victim row falls back to a single victim\n");
      victims_mv = {R - 1};
    }
    struct Acc {
      double sum = 0.0;
      double min = 1e300;
      double recoveries = 0.0;
      double ranks_revived = 0.0;
      double steps_rolled_back = 0.0;
      double steps_replayed = 0.0;
      double rec_agree = 0.0;
      double rec_restore = 0.0;
      double rec_replay = 0.0;
      double rec_resume = 0.0;
      double overlap = 0.0;
      double donate_wait_mean = 0.0;
      double donate_wait_max = 0.0;
      double log_bytes = 0.0;
      double log_raw_bytes = 0.0;
      double donation_restores = 0.0;
      double donations_served = 0.0;
      double multi_victim_replays = 0.0;
      par::ParallelResult last;
    };
    Acc acc[kModes];
    const int trials = quick ? 3 : 5;
    // Interleave trials so clock drift / turbo effects spread evenly over
    // the four policies instead of biasing whichever runs last.
    for (int t = 0; t < trials; ++t) {
      for (int m = 0; m < kModes; ++m) {
        std::filesystem::remove_all(ckpt_dir);
        const bool mv = modes[m].victims >= 2;
        par::FaultPlan plan;
        if (modes[m].kill) {
          if (mv) {
            for (const int v : victims_mv) plan.kills.push_back({v, kill_mv});
          } else {
            plan.kills.push_back({R - 1, kill_step});
          }
        }
        par::FaultToleranceOptions ft;
        ft.checkpoint_dir = ckpt_dir.string();
        ft.checkpoint_every = every;
        ft.max_retries = 2;
        ft.max_revives = modes[m].max_revives;
        ft.message_log_steps = modes[m].log_steps;
        ft.async_donation = modes[m].async;
        ft.fault_plan = modes[m].kill ? &plan : nullptr;
        util::Timer timer;
        par::ParallelResult pr = par::run_parallel(
            mesh, mv ? part_mv : part, oopt, sopt, sources, {}, ft);
        const double secs = timer.seconds();
        acc[m].sum += secs;
        acc[m].min = std::min(acc[m].min, secs);
        acc[m].last = std::move(pr);
        // Counters accumulate across trials: the schema pins assert each
        // recovery path was exercised, and per-trial scheduling skew can
        // legitimately leave a single trial's replay or rollback span
        // empty (everyone caught exactly at the cut). Scope latencies
        // keep the max observed across trials and ranks.
        Acc& a = acc[m];
        const auto& ctr = a.last.obs_summary.counters;
        const auto csum = [&](const char* key) {
          const auto it = ctr.find(key);
          return it == ctr.end() ? 0.0 : it->second.sum;
        };
        const auto& scp = a.last.obs_summary.scopes;
        const auto smax = [&](const char* key) {
          const auto it = scp.find(key);
          return it == scp.end() ? 0.0 : it->second.seconds.max;
        };
        a.recoveries += csum("par/recoveries");
        a.ranks_revived += csum("par/ranks_revived");
        a.steps_rolled_back += csum("par/steps_rolled_back");
        a.steps_replayed += csum("par/steps_replayed");
        a.donation_restores += csum("par/donation_restores");
        a.donations_served += csum("par/donations_served");
        a.multi_victim_replays += csum("par/multi_victim_replays");
        a.rec_agree = std::max(a.rec_agree, smax("recover/agree"));
        a.rec_restore = std::max(a.rec_restore, smax("recover/restore"));
        a.rec_replay = std::max(a.rec_replay, smax("recover/replay"));
        a.rec_resume = std::max(a.rec_resume, smax("recover/resume"));
        const auto dw = scp.find("recover/donate/wait");
        if (dw != scp.end()) {
          a.donate_wait_mean += dw->second.seconds.mean / trials;
          a.donate_wait_max =
              std::max(a.donate_wait_max, dw->second.seconds.max);
        }
      }
    }
    std::filesystem::remove_all(ckpt_dir);

    std::printf(
        "\nFault sweep: rank %d killed at step %d of %d (checkpoint every "
        "%d), %d interleaved trials at %d ranks\n",
        R - 1, kill_step, n, every, trials, R);
    std::printf("multi-victim row: ranks {");
    for (std::size_t v = 0; v < victims_mv.size(); ++v) {
      std::printf("%s%d", v ? ", " : "", victims_mv[v]);
    }
    std::printf("} killed at checkpoint-aligned step %d of %d ranks\n",
                kill_mv, R_mv);
    std::printf("%14s %12s %12s %11s %9s %12s %9s %8s %8s %8s %8s\n", "mode",
                "wall min s", "wall mean s", "recoveries", "revived",
                "rolled back", "replayed", "agree s", "restor s", "replay s",
                "resume s");
    for (int m = 0; m < kModes; ++m) {
      Acc& a = acc[m];
      // Gauges merge by replacement, not addition: total the per-rank
      // reports (last trial) for the ring-memory accounting.
      for (const auto& rep : a.last.obs_reports) {
        const auto s = rep.metrics.gauges.find("par/log_bytes");
        const auto r = rep.metrics.gauges.find("par/log_raw_bytes");
        if (s != rep.metrics.gauges.end()) a.log_bytes += s->second;
        if (r != rep.metrics.gauges.end()) a.log_raw_bytes += r->second;
      }
      for (const auto& s : a.last.rank_stats) a.overlap += s.overlap_fraction;
      a.overlap /= static_cast<double>(a.last.rank_stats.size());
      std::printf(
          "%14s %12.4f %12.4f %11.0f %9.0f %12.0f %9.0f %8.4f %8.4f %8.4f "
          "%8.4f\n",
          modes[m].name, a.min, a.sum / trials, a.recoveries, a.ranks_revived,
          a.steps_rolled_back, a.steps_replayed, a.rec_agree, a.rec_restore,
          a.rec_replay, a.rec_resume);

      const bool mv = modes[m].victims >= 2;
      obs::Json& jrow = sink.new_row();
      jrow.set("params",
               obs::Json::object()
                   .set("mode", modes[m].name)
                   .set("ranks", mv ? R_mv : R)
                   .set("model", "BAS10S")
                   .set("f_max", mopt.f_max)
                   .set("max_level", mopt.max_level)
                   .set("t_end", sopt.t_end)
                   .set("kill_step",
                        !modes[m].kill ? 0 : (mv ? kill_mv : kill_step))
                   .set("victims", modes[m].kill ? modes[m].victims : 0)
                   .set("async_donation", modes[m].async ? 1 : 0)
                   .set("checkpoint_every", every)
                   .set("trials", trials));
      jrow.set("metrics", obs::Json::object()
                              .set("n_steps", n)
                              .set("wall_seconds_min", a.min)
                              .set("wall_seconds_mean", a.sum / trials)
                              // Fault-handling latency: excess wall-clock
                              // over the fault-free control at equal
                              // rollback depth.
                              .set("excess_over_clean_seconds",
                                   std::max(0.0, a.min - acc[0].min))
                              .set("recoveries", a.recoveries)
                              .set("ranks_revived", a.ranks_revived)
                              .set("steps_rolled_back", a.steps_rolled_back)
                              .set("steps_replayed", a.steps_replayed)
                              .set("recover_agree_seconds", a.rec_agree)
                              .set("recover_restore_seconds", a.rec_restore)
                              .set("recover_replay_seconds", a.rec_replay)
                              .set("recover_resume_seconds", a.rec_resume)
                              .set("donate_wait_mean_seconds",
                                   a.donate_wait_mean)
                              .set("donate_wait_max_seconds",
                                   a.donate_wait_max)
                              .set("donation_restores", a.donation_restores)
                              .set("donations_served", a.donations_served)
                              .set("multi_victim_replays",
                                   a.multi_victim_replays)
                              .set("log_bytes", a.log_bytes)
                              .set("log_raw_bytes", a.log_raw_bytes)
                              .set("log_compression_ratio",
                                   a.log_bytes > 0.0
                                       ? a.log_raw_bytes / a.log_bytes
                                       : 1.0)
                              .set("overlap_fraction", a.overlap));
      jrow.set("ranks", obs::to_json(a.last.obs_summary));
    }
    const double rec = acc[1].min, roll = acc[2].min, full = acc[3].min;
    std::printf("(replay recovery %s rollback and full restart: %.4f s vs "
                "%.4f s vs %.4f s min-over-trials)\n",
                rec < roll && rec < full ? "beats" : "does NOT beat", rec,
                roll, full);
    std::printf("(donation wait per cut, sync vs async: %.6f s vs %.6f s "
                "mean; recovery log rings %.0f B stored / %.0f B raw = "
                "%.2fx compression)\n",
                acc[4].donate_wait_mean, acc[5].donate_wait_mean,
                acc[1].log_bytes, acc[1].log_raw_bytes,
                acc[1].log_bytes > 0.0
                    ? acc[1].log_raw_bytes / acc[1].log_bytes
                    : 1.0);
  }

  sink.write_json(json_path);
  if (!csv_path.empty()) sink.write_csv(csv_path);
  std::printf("report: %s\n", json_path.c_str());
  return 0;
}
