// bench_throughput — the serving A/B behind docs/SERVICE.md: N scenario
// requests through one warm SimulationService (shared ParallelSetup,
// per-request solves) against N independent cold runs that each pay the
// full pipeline (velocity model -> octree -> etree store -> balance ->
// re-persist -> transform -> operator -> partition -> ghost plans ->
// solve, i.e. generate_mesh_out_of_core). The paper's cost split
// says setup dominates a short solve, so the warm path should finish in a
// fraction of the cold wall-clock; the bench measures that amortization,
// verifies the warm results are BIT-IDENTICAL to the cold ones, and then
// injects a mid-solve rank kill into one request to show failure isolation:
// the victim fails alone, its neighbors' results stay bit-identical, and
// the same service keeps serving afterwards.
//
// Two scaling sweeps ride on the same scenarios (see docs/BATCHING.md):
// a lane sweep (requests/sec through L worker lanes, each a full
// ParallelSetup replica) and a batch sweep (one lane coalescing S requests
// into a single scenario-batched run_batch solve). Both are checked
// bitwise against the cold baseline — more lanes or a wider batch must
// change throughput only, never a single bit of any seismogram.
//
//   bench_throughput [--quick] [--json PATH] [--csv PATH]
//                    [--requests N] [--lanes L1,L2,...] [--batch-sizes S1,...]
//
// Emits a "quake.bench/1" report (default BENCH_throughput.json) with rows
// params.mode = cold | warm | lanes | batch | kill; tools/check_bench_schema
// pins the throughput contract (requests completed, cold-vs-warm wall
// seconds, zero failed requests in the clean trial, >= 2 lane counts with
// bitwise-checked requests/sec, batch rows bitwise-identical to unbatched,
// bitwise kill isolation).

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/obs/obs.hpp"
#include "quake/obs/sink.hpp"
#include "quake/par/communicator.hpp"
#include "quake/par/parallel_solver.hpp"
#include "quake/par/partition.hpp"
#include "quake/svc/simulation_service.hpp"
#include "quake/util/timer.hpp"

namespace {

using namespace quake;

struct Scenario {
  svc::PointSourceSpec src;
  std::vector<std::array<double, 3>> receivers;
};

// Deterministic per-index scenarios: distinct epicenters, shared stations.
Scenario make_scenario(std::size_t i, double extent) {
  Scenario s;
  s.src.position = {extent * (0.25 + 0.06 * static_cast<double>(i % 8)),
                    extent * (0.40 + 0.03 * static_cast<double>(i % 4)),
                    2000.0 + 500.0 * static_cast<double>(i % 3)};
  s.src.direction = {0.0, 0.0, 1.0};
  s.src.amplitude = 1.0e6;
  s.src.fp = 2.0;
  s.src.tc = 0.2;
  s.receivers = {{extent * 0.5, extent * 0.5, 0.0},
                 {extent * 0.3, extent * 0.6, 0.0}};
  return s;
}

// "1,2,4" -> {1, 2, 4}; exits via the caller's usage message on garbage.
std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string tok = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    out.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

using History = std::vector<std::vector<std::array<double, 3>>>;

bool histories_bitwise_equal(const History& a, const History& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) return false;
    for (std::size_t k = 0; k < a[r].size(); ++k) {
      if (std::memcmp(a[r][k].data(), b[r][k].data(), 3 * sizeof(double)) !=
          0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_throughput.json";
  std::string csv_path;
  int n_requests = 8;                      // requests per batch (--requests)
  std::vector<int> lane_counts = {1, 2};   // lane sweep (--lanes)
  std::vector<int> batch_sizes = {1, 2, 4};  // batch sweep (--batch-sizes)
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (std::strcmp(argv[a], "--csv") == 0 && a + 1 < argc) {
      csv_path = argv[++a];
    } else if (std::strcmp(argv[a], "--requests") == 0 && a + 1 < argc) {
      n_requests = std::stoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--lanes") == 0 && a + 1 < argc) {
      lane_counts = parse_int_list(argv[++a]);
    } else if (std::strcmp(argv[a], "--batch-sizes") == 0 && a + 1 < argc) {
      batch_sizes = parse_int_list(argv[++a]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json PATH] [--csv PATH] "
                   "[--requests N] [--lanes L1,L2,...] [--batch-sizes "
                   "S1,S2,...]\n",
                   argv[0]);
      return 2;
    }
  }

  obs::set_enabled(true);
  obs::MetricsSink sink("throughput");

  const double extent = 20000.0;
  const vel::BasinModel model = vel::BasinModel::demo(extent);
  mesh::MeshOptions mopt;
  mopt.domain_size = extent;
  mopt.f_max = quick ? 0.12 : 0.2;
  mopt.n_lambda = 8.0;
  mopt.min_level = 2;
  mopt.max_level = quick ? 6 : 7;

  const int R = 2;             // ranks (small: the host serializes threads)
  const int N = n_requests;    // requests per batch (the ISSUE's A/B size)
  const int target_steps = quick ? 6 : 16;
  const int trials = quick ? 2 : 3;

  // The mesh pipeline both arms use: the etree-database path (construct ->
  // store -> scan -> balance -> re-persist -> transform), the paper's
  // expensive "load" phase. The service pays it ONCE at startup; each cold
  // run pays it again.
  const std::string store_base = "/tmp/bench_throughput";
  const auto load_mesh = [&](const std::string& tag) {
    const std::string path = store_base + "." + tag + ".etree";
    mesh::HexMesh m = mesh::generate_mesh_out_of_core(model, mopt, path);
    std::remove(path.c_str());
    std::remove((path + ".balanced").c_str());
    return m;
  };

  // The service's shared discretization (built once, like a server at
  // startup). Cold runs below regenerate all of this per request.
  const mesh::HexMesh mesh = load_mesh("svc");
  const par::Partition part = par::partition_sfc(mesh, R);
  solver::OperatorOptions oopt;
  solver::SolverOptions sopt;
  sopt.cfl_fraction = 0.4;
  // Fix the run length in steps (short solves are the serving-relevant
  // regime; both paths derive the identical CFL dt from the same mesh).
  const double dt_probe =
      solver::ElasticOperator(mesh, oopt).stable_dt(sopt.cfl_fraction);
  const double t_end = 0.999 * target_steps * dt_probe;

  std::vector<Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    scenarios.push_back(make_scenario(static_cast<std::size_t>(i), extent));
  }

  std::printf("throughput A/B: %d requests, %d ranks, %zu nodes, %d steps "
              "per solve, %d interleaved trials\n",
              N, R, mesh.n_nodes(), target_steps, trials);

  // ---- cold batch: full pipeline per request ------------------------------
  std::vector<par::ParallelResult> cold_results;
  const auto cold_batch = [&]() {
    util::Timer t;
    std::vector<par::ParallelResult> results;
    results.reserve(static_cast<std::size_t>(N));
    for (int i = 0; i < N; ++i) {
      const Scenario& sc = scenarios[static_cast<std::size_t>(i)];
      const mesh::HexMesh m = load_mesh("cold" + std::to_string(i));
      const par::Partition p = par::partition_sfc(m, R);
      const solver::PointSource src(m, sc.src.position, sc.src.direction,
                                    sc.src.amplitude, sc.src.fp, sc.src.tc);
      const solver::SourceModel* sources[] = {&src};
      solver::SolverOptions so = sopt;
      so.t_end = t_end;
      results.push_back(
          par::run_parallel(m, p, oopt, so, sources, sc.receivers));
    }
    const double wall = t.seconds();
    cold_results = std::move(results);
    return wall;
  };

  // ---- warm batch: N requests through one service -------------------------
  std::vector<svc::ScenarioResult> warm_results;
  double setup_seconds = 0.0;
  obs::Registry warm_metrics;
  const auto warm_batch = [&]() {
    util::Timer ts;
    solver::SolverOptions so = sopt;
    so.t_end = t_end;
    svc::ServiceOptions o;
    o.queue_bound = static_cast<std::size_t>(N) + 4;
    svc::SimulationService service(mesh, part, oopt, so, o);
    setup_seconds = ts.seconds();
    util::Timer t;
    std::vector<svc::SimulationService::Ticket> tickets;
    tickets.reserve(static_cast<std::size_t>(N));
    for (int i = 0; i < N; ++i) {
      const Scenario& sc = scenarios[static_cast<std::size_t>(i)];
      svc::ScenarioRequest req;
      req.point_sources = {sc.src};
      req.receivers = sc.receivers;
      req.t_end = t_end;
      tickets.push_back(service.submit(std::move(req)));
    }
    std::vector<svc::ScenarioResult> results;
    results.reserve(tickets.size());
    for (auto& tk : tickets) results.push_back(tk.result.get());
    const double wall = t.seconds();
    warm_metrics = service.metrics();
    warm_results = std::move(results);
    return wall;
  };

  // Interleaved trials (cold, warm, cold, warm, ...) so host noise spreads
  // over both arms; min-over-trials is the headline (least-disturbed) run.
  double cold_min = 1e300, cold_sum = 0.0;
  double warm_min = 1e300, warm_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    const double c = cold_batch();
    cold_min = std::min(cold_min, c);
    cold_sum += c;
    const double w = warm_batch();
    warm_min = std::min(warm_min, w);
    warm_sum += w;
  }

  int completed = 0;
  for (const auto& r : warm_results) {
    if (r.status == svc::RequestStatus::kCompleted) ++completed;
  }
  bool bitwise = completed == N;
  for (int i = 0; i < N && bitwise; ++i) {
    bitwise = histories_bitwise_equal(
        warm_results[static_cast<std::size_t>(i)].solve.receiver_histories,
        cold_results[static_cast<std::size_t>(i)].receiver_histories);
  }
  const double ratio = cold_min > 0.0 ? warm_min / cold_min : 0.0;
  const auto warm_failed = warm_metrics.counters["svc/requests_failed"];

  std::printf("  cold: %.3f s min / %.3f s mean  (full pipeline x%d)\n",
              cold_min, cold_sum / trials, N);
  std::printf("  warm: %.3f s min / %.3f s mean  (+ %.3f s one-time setup)\n",
              warm_min, warm_sum / trials, setup_seconds);
  std::printf("  warm/cold = %.3f (target <= 0.50); results bit-identical: "
              "%s; failed: %lld\n",
              ratio, bitwise ? "yes" : "NO (bug!)",
              static_cast<long long>(warm_failed));

  obs::Json& cold_row = sink.new_row();
  cold_row.set("params", obs::Json::object()
                             .set("mode", "cold")
                             .set("ranks", R)
                             .set("n_requests", N)
                             .set("f_max", mopt.f_max)
                             .set("max_level", mopt.max_level)
                             .set("t_end", t_end)
                             .set("trials", trials));
  cold_row.set("metrics",
               obs::Json::object()
                   .set("n_steps", target_steps)
                   .set("wall_seconds_min", cold_min)
                   .set("wall_seconds_mean", cold_sum / trials)
                   .set("per_request_seconds", cold_min / N));

  obs::Json series = obs::Json::object();
  for (const char* name :
       {"svc/latency_seconds", "svc/queue_seconds", "svc/solve_seconds"}) {
    const auto it = warm_metrics.series.find(name);
    if (it == warm_metrics.series.end()) continue;
    obs::Json arr = obs::Json::array();
    for (const double v : it->second) arr.push_back(v);
    series.set(name, std::move(arr));
  }
  obs::Json& warm_row = sink.new_row();
  warm_row.set("params", obs::Json::object()
                             .set("mode", "warm")
                             .set("ranks", R)
                             .set("n_requests", N)
                             .set("f_max", mopt.f_max)
                             .set("max_level", mopt.max_level)
                             .set("t_end", t_end)
                             .set("trials", trials));
  warm_row.set(
      "metrics",
      obs::Json::object()
          .set("n_steps", target_steps)
          .set("requests_completed", completed)
          .set("warm_wall_seconds", warm_min)
          .set("wall_seconds_mean", warm_sum / trials)
          .set("cold_wall_seconds", cold_min)
          .set("warm_over_cold", ratio)
          .set("setup_seconds", setup_seconds)
          .set("warm_matches_cold_bitwise", bitwise ? 1 : 0)
          .set("svc_requests_failed", warm_failed));
  warm_row.set("series", std::move(series));
  if (!warm_results.empty()) {
    warm_row.set("ranks",
                 obs::to_json(warm_results.back().solve.obs_summary));
  }

  // ---- lane sweep: requests/sec vs worker lanes ---------------------------
  // Each lane count L gets its own service (L full ParallelSetup replicas,
  // L shards, L workers); the same N requests drain through it and every
  // seismogram must stay bitwise identical to the cold single-lane baseline.
  bool lanes_ok = true;
  for (const int L : lane_counts) {
    double lane_min = 1e300, lane_sum = 0.0;
    std::vector<svc::ScenarioResult> lane_results;
    long long lane_failed = 0;
    for (int t = 0; t < trials; ++t) {
      solver::SolverOptions so = sopt;
      so.t_end = t_end;
      svc::ServiceOptions o;
      o.queue_bound = static_cast<std::size_t>(N) + 4;
      o.lanes = L;
      svc::SimulationService service(mesh, part, oopt, so, o);
      util::Timer timer;
      std::vector<svc::SimulationService::Ticket> tickets;
      tickets.reserve(static_cast<std::size_t>(N));
      for (int i = 0; i < N; ++i) {
        const Scenario& sc = scenarios[static_cast<std::size_t>(i)];
        svc::ScenarioRequest req;
        req.point_sources = {sc.src};
        req.receivers = sc.receivers;
        req.t_end = t_end;
        tickets.push_back(service.submit(std::move(req)));
      }
      std::vector<svc::ScenarioResult> results;
      results.reserve(tickets.size());
      for (auto& tk : tickets) results.push_back(tk.result.get());
      const double wall = timer.seconds();
      lane_min = std::min(lane_min, wall);
      lane_sum += wall;
      lane_failed = service.metrics().counters["svc/requests_failed"];
      lane_results = std::move(results);
    }
    int lane_completed = 0;
    for (const auto& r : lane_results) {
      if (r.status == svc::RequestStatus::kCompleted) ++lane_completed;
    }
    bool lane_bitwise = lane_completed == N;
    for (int i = 0; i < N && lane_bitwise; ++i) {
      lane_bitwise = histories_bitwise_equal(
          lane_results[static_cast<std::size_t>(i)].solve.receiver_histories,
          cold_results[static_cast<std::size_t>(i)].receiver_histories);
    }
    if (!lane_bitwise || lane_failed != 0) lanes_ok = false;
    const double rps = lane_min > 0.0 ? N / lane_min : 0.0;
    std::printf("  lanes=%d: %.3f s min (%.2f req/s); bit-identical to "
                "single-lane: %s\n",
                L, lane_min, rps, lane_bitwise ? "yes" : "NO (bug!)");

    obs::Json& lane_row = sink.new_row();
    lane_row.set("params", obs::Json::object()
                               .set("mode", "lanes")
                               .set("lanes", L)
                               .set("ranks", R)
                               .set("n_requests", N)
                               .set("t_end", t_end)
                               .set("trials", trials));
    lane_row.set("metrics",
                 obs::Json::object()
                     .set("wall_seconds_min", lane_min)
                     .set("wall_seconds_mean", lane_sum / trials)
                     .set("requests_per_second", rps)
                     .set("requests_completed", lane_completed)
                     .set("matches_single_lane_bitwise", lane_bitwise ? 1 : 0)
                     .set("svc_requests_failed", lane_failed));
  }

  // ---- batch sweep: warm wall-clock vs scenario-batch width S -------------
  // One lane, max_batch = S. The service starts paused so the shard fills
  // before the worker wakes: the worker then coalesces deterministic
  // batches of width S (run_batch: one element sweep + one exchange round
  // per step for all S scenarios). Every result must stay bitwise identical
  // to the unbatched cold baseline — that is the batching guarantee.
  bool batch_ok = true;
  for (const int S : batch_sizes) {
    double batch_min = 1e300, batch_sum = 0.0;
    std::vector<svc::ScenarioResult> batch_results;
    long long batches = 0, batched_requests = 0, batch_failed = 0;
    for (int t = 0; t < trials; ++t) {
      solver::SolverOptions so = sopt;
      so.t_end = t_end;
      svc::ServiceOptions o;
      o.queue_bound = static_cast<std::size_t>(N) + 4;
      o.max_batch = S;
      o.start_paused = true;
      svc::SimulationService service(mesh, part, oopt, so, o);
      std::vector<svc::SimulationService::Ticket> tickets;
      tickets.reserve(static_cast<std::size_t>(N));
      for (int i = 0; i < N; ++i) {
        const Scenario& sc = scenarios[static_cast<std::size_t>(i)];
        svc::ScenarioRequest req;
        req.point_sources = {sc.src};
        req.receivers = sc.receivers;
        req.t_end = t_end;
        tickets.push_back(service.submit(std::move(req)));
      }
      util::Timer timer;
      service.resume();
      std::vector<svc::ScenarioResult> results;
      results.reserve(tickets.size());
      for (auto& tk : tickets) results.push_back(tk.result.get());
      const double wall = timer.seconds();
      batch_min = std::min(batch_min, wall);
      batch_sum += wall;
      obs::Registry m = service.metrics();
      batches = m.counters["svc/batches"];
      batched_requests = m.counters["svc/batched_requests"];
      batch_failed = m.counters["svc/requests_failed"];
      batch_results = std::move(results);
    }
    int batch_completed = 0;
    for (const auto& r : batch_results) {
      if (r.status == svc::RequestStatus::kCompleted) ++batch_completed;
    }
    bool batch_bitwise = batch_completed == N;
    for (int i = 0; i < N && batch_bitwise; ++i) {
      batch_bitwise = histories_bitwise_equal(
          batch_results[static_cast<std::size_t>(i)].solve.receiver_histories,
          cold_results[static_cast<std::size_t>(i)].receiver_histories);
    }
    if (!batch_bitwise || batch_failed != 0) batch_ok = false;
    const double rps = batch_min > 0.0 ? N / batch_min : 0.0;
    std::printf("  batch S=%d: %.3f s min (%.2f req/s, %lld batched solves); "
                "bit-identical to unbatched: %s\n",
                S, batch_min, rps, static_cast<long long>(batches),
                batch_bitwise ? "yes" : "NO (bug!)");

    obs::Json& batch_row = sink.new_row();
    batch_row.set("params", obs::Json::object()
                                .set("mode", "batch")
                                .set("batch_size", S)
                                .set("lanes", 1)
                                .set("ranks", R)
                                .set("n_requests", N)
                                .set("t_end", t_end)
                                .set("trials", trials));
    batch_row.set(
        "metrics",
        obs::Json::object()
            .set("wall_seconds_min", batch_min)
            .set("wall_seconds_mean", batch_sum / trials)
            .set("requests_per_second", rps)
            .set("requests_completed", batch_completed)
            .set("batches", batches)
            .set("batched_requests", batched_requests)
            .set("cold_wall_seconds", cold_min)
            .set("warm_over_cold", cold_min > 0.0 ? batch_min / cold_min : 0.0)
            .set("batch_matches_unbatched_bitwise", batch_bitwise ? 1 : 0)
            .set("svc_requests_failed", batch_failed));
  }

  // ---- kill trial: one request dies mid-solve, the rest must not notice --
  // Request 1 carries a FaultPlan that kills rank R-1 mid-step with no
  // recovery budget; it must fail alone. The SAME service then serves a
  // clean batch, whose results are compared bitwise against the victims'
  // neighbors — proving both isolation and that the service survives.
  const int n_kill_batch = 4;
  par::FaultPlan plan;
  plan.kills.push_back({R - 1, target_steps / 2});
  int kill_failed = 0, kill_completed = 0;
  bool isolation = true, service_survived = true;
  {
    solver::SolverOptions so = sopt;
    so.t_end = t_end;
    svc::ServiceOptions o;
    o.queue_bound = static_cast<std::size_t>(2 * n_kill_batch);
    svc::SimulationService service(mesh, part, oopt, so, o);

    const auto run_batch = [&](bool with_kill) {
      std::vector<svc::SimulationService::Ticket> tickets;
      for (int i = 0; i < n_kill_batch; ++i) {
        const Scenario& sc = scenarios[static_cast<std::size_t>(i)];
        svc::ScenarioRequest req;
        req.point_sources = {sc.src};
        req.receivers = sc.receivers;
        req.t_end = t_end;
        if (with_kill && i == 1) req.ft.fault_plan = &plan;
        tickets.push_back(service.submit(std::move(req)));
      }
      std::vector<svc::ScenarioResult> results;
      for (auto& tk : tickets) results.push_back(tk.result.get());
      return results;
    };

    const auto killed = run_batch(/*with_kill=*/true);
    const auto clean = run_batch(/*with_kill=*/false);
    for (int i = 0; i < n_kill_batch; ++i) {
      const auto& k = killed[static_cast<std::size_t>(i)];
      const auto& c = clean[static_cast<std::size_t>(i)];
      if (c.status != svc::RequestStatus::kCompleted) service_survived = false;
      if (i == 1) {
        if (k.status == svc::RequestStatus::kFailed) ++kill_failed;
        continue;
      }
      if (k.status == svc::RequestStatus::kCompleted) ++kill_completed;
      if (k.status != svc::RequestStatus::kCompleted ||
          !histories_bitwise_equal(k.solve.receiver_histories,
                                   c.solve.receiver_histories)) {
        isolation = false;
      }
    }
  }
  const bool kill_ok =
      kill_failed == 1 && kill_completed == n_kill_batch - 1 && isolation;

  std::printf("  kill trial: victim failed: %s; %d/%d neighbors completed "
              "bit-identically: %s; service survived: %s\n",
              kill_failed == 1 ? "yes" : "NO (bug!)", kill_completed,
              n_kill_batch - 1, isolation ? "yes" : "NO (bug!)",
              service_survived ? "yes" : "NO (bug!)");

  obs::Json& kill_row = sink.new_row();
  kill_row.set("params", obs::Json::object()
                             .set("mode", "kill")
                             .set("ranks", R)
                             .set("n_requests", n_kill_batch)
                             .set("kill_step", target_steps / 2)
                             .set("t_end", t_end));
  kill_row.set("metrics",
               obs::Json::object()
                   .set("requests_failed", kill_failed)
                   .set("requests_completed", kill_completed)
                   .set("kill_isolation_bitwise", kill_ok ? 1 : 0)
                   .set("service_survived", service_survived ? 1 : 0));

  sink.write_json(json_path);
  if (!csv_path.empty()) sink.write_csv(csv_path);
  std::printf("report: %s\n", json_path.c_str());

  // Exit nonzero on a correctness violation (wall-clock ratios are noisy on
  // a loaded host, so the <= 0.5 target is reported, not enforced here).
  return (bitwise && lanes_ok && batch_ok && kill_ok && service_survived &&
          warm_failed == 0)
             ? 0
             : 1;
}
