// Fig 2.4 — hexahedral vs baseline seismograms at two band limits.
//
// The paper compares its hexahedral code against the older tetrahedral code
// at 0.5 Hz (where both resolve the wavefield and agree) and at 1.0 Hz
// (where the coarser tetrahedral model cannot represent the motion and the
// hexahedral synthetics carry extra high-frequency content and amplitude).
// Our substitution (see DESIGN.md): the independent-discretization check is
// the assembled-sparse engine run on the same mesh (agreement to round-off),
// and the resolution-limited code is the same solver on a mesh meshed for
// half the target frequency. Seismograms are compared after zero-phase
// low-pass filtering at both band limits, exactly as in the figure.

#include <cmath>
#include <cstdio>
#include <vector>

#include "quake/mesh/meshgen.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/filter.hpp"
#include "quake/util/io.hpp"
#include "quake/util/stats.hpp"

namespace {

using namespace quake;

struct RunOut {
  std::vector<double> u;  // x-component at the receiver
  double dt;
};

RunOut run_scenario(const vel::BasinModel& model, double extent, double f_mesh,
                    int max_level, double f_source) {
  mesh::MeshOptions mopt;
  mopt.domain_size = extent;
  mopt.f_max = f_mesh;
  mopt.n_lambda = 8.0;
  mopt.min_level = 3;
  mopt.max_level = max_level;
  const mesh::HexMesh mesh = mesh::generate_mesh(model, mopt);
  std::printf("  mesh for f_max=%.2f Hz (levels <= %d): %zu elements\n",
              f_mesh, max_level, mesh.n_elements());

  solver::OperatorOptions oopt;
  const solver::ElasticOperator op(mesh, oopt);
  solver::SolverOptions sopt;
  sopt.t_end = 8.0;
  sopt.cfl_fraction = 0.4;
  // Fixed dt across runs so the records share a time axis.
  sopt.dt = 0.003;
  solver::ExplicitSolver solver(op, sopt);
  // Source in the rock below the basin; receiver at the basin-center
  // surface, so the wave reverberates through the soft column.
  const solver::PointSource src(mesh, {0.62 * extent, 0.58 * extent, 3000.0},
                                {1.0, 0.3, 0.2}, 1e15, f_source, 2.0);
  solver.add_source(&src);
  solver.add_receiver({0.62 * extent, 0.58 * extent, 0.0});
  solver.run();
  return {solver.receiver_component(0, 0), solver.dt()};
}

}  // namespace

int main() {
  const double extent = 6400.0;
  // A stiffer basin variant (vs floor 400 m/s) so the frequency bands of
  // interest sit inside what the mesh ladder can resolve.
  vel::BasinModel::Params bp = vel::BasinModel::demo(extent).params();
  bp.vs_surface = 300.0;
  bp.depressions[1].depth = 0.15 * extent;  // deepen the main basin so the
                                            // soft column reverberates
  const vel::BasinModel model(bp);
  const double f_hi = 0.7, f_lo = 0.2;

  std::printf("Fig 2.4 analogue: band-limited seismogram comparison\n");

  // High-resolution hexahedral run ("1 Hz code") and its independent
  // cross-check with the assembled-sparse engine is covered by unit tests;
  // here we produce the figure's content: fine vs coarse synthetics.
  const RunOut fine = run_scenario(model, extent, 0.7, 7, 0.5);
  const RunOut coarse = run_scenario(model, extent, 0.25, 5, 0.5);
  const double fs = 1.0 / fine.dt;

  const auto fine_lo = util::lowpass_zero_phase(fine.u, f_lo, fs);
  const auto coarse_lo = util::lowpass_zero_phase(coarse.u, f_lo, fs);
  const auto fine_hi = util::lowpass_zero_phase(fine.u, f_hi, fs);
  const auto coarse_hi = util::lowpass_zero_phase(coarse.u, f_hi, fs);

  const double corr_lo = util::correlation(fine_lo, coarse_lo);
  const double corr_hi = util::correlation(fine_hi, coarse_hi);
  const double amp_lo =
      util::norm_max(coarse_lo) / util::norm_max(fine_lo);
  const double amp_hi =
      util::norm_max(coarse_hi) / util::norm_max(fine_hi);
  std::printf("  low band  (%.2f Hz): correlation %.3f, coarse/fine peak "
              "ratio %.2f  (paper: \"very good agreement\")\n",
              f_lo, corr_lo, amp_lo);
  std::printf("  high band (%.2f Hz): correlation %.3f, coarse/fine peak "
              "ratio %.2f  (paper: \"significant differences ... higher "
              "amplitude at the full band\")\n",
              f_hi, corr_hi, amp_hi);
  // Waveform misfit per band: the coarse model reproduces the low band but
  // not the high band (the figure's message).
  std::printf("  waveform rel. L2 misfit, coarse vs fine: low band %.3f, "
              "high band %.3f\n",
              util::rel_l2(coarse_lo, fine_lo),
              util::rel_l2(coarse_hi, fine_hi));

  std::vector<std::string> names = {"t", "fine_lo", "coarse_lo", "fine_hi",
                                    "coarse_hi"};
  std::vector<std::vector<double>> cols(5);
  for (std::size_t k = 0; k < fine.u.size(); ++k) {
    cols[0].push_back((static_cast<double>(k) + 1.0) * fine.dt);
    cols[1].push_back(fine_lo[k]);
    cols[2].push_back(k < coarse_lo.size() ? coarse_lo[k] : 0.0);
    cols[3].push_back(fine_hi[k]);
    cols[4].push_back(k < coarse_hi.size() ? coarse_hi[k] : 0.0);
  }
  util::write_csv("/tmp/fig2_4_seismograms.csv", names, cols);
  std::printf("wrote /tmp/fig2_4_seismograms.csv\n");
  return 0;
}
