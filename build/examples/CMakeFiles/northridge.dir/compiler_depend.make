# Empty compiler generated dependencies file for northridge.
# This may be replaced when dependencies are built.
