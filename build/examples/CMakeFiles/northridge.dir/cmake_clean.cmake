file(REMOVE_RECURSE
  "CMakeFiles/northridge.dir/northridge.cpp.o"
  "CMakeFiles/northridge.dir/northridge.cpp.o.d"
  "northridge"
  "northridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/northridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
