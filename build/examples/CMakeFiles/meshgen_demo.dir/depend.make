# Empty dependencies file for meshgen_demo.
# This may be replaced when dependencies are built.
