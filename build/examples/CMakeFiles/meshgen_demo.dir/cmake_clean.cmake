file(REMOVE_RECURSE
  "CMakeFiles/meshgen_demo.dir/meshgen_demo.cpp.o"
  "CMakeFiles/meshgen_demo.dir/meshgen_demo.cpp.o.d"
  "meshgen_demo"
  "meshgen_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshgen_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
