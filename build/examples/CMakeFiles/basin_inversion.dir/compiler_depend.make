# Empty compiler generated dependencies file for basin_inversion.
# This may be replaced when dependencies are built.
