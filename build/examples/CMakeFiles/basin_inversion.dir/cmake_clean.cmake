file(REMOVE_RECURSE
  "CMakeFiles/basin_inversion.dir/basin_inversion.cpp.o"
  "CMakeFiles/basin_inversion.dir/basin_inversion.cpp.o.d"
  "basin_inversion"
  "basin_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basin_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
