# Empty dependencies file for source_inversion_demo.
# This may be replaced when dependencies are built.
