file(REMOVE_RECURSE
  "CMakeFiles/source_inversion_demo.dir/source_inversion.cpp.o"
  "CMakeFiles/source_inversion_demo.dir/source_inversion.cpp.o.d"
  "source_inversion_demo"
  "source_inversion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_inversion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
