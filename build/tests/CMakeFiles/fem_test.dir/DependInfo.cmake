
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fem_test.cpp" "tests/CMakeFiles/fem_test.dir/fem_test.cpp.o" "gcc" "tests/CMakeFiles/fem_test.dir/fem_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fem/CMakeFiles/quake_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/vel/CMakeFiles/quake_vel.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/quake_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
