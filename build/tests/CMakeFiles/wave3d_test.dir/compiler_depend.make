# Empty compiler generated dependencies file for wave3d_test.
# This may be replaced when dependencies are built.
