file(REMOVE_RECURSE
  "CMakeFiles/wave3d_test.dir/wave3d_test.cpp.o"
  "CMakeFiles/wave3d_test.dir/wave3d_test.cpp.o.d"
  "wave3d_test"
  "wave3d_test.pdb"
  "wave3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
