file(REMOVE_RECURSE
  "CMakeFiles/etree_store_test.dir/etree_store_test.cpp.o"
  "CMakeFiles/etree_store_test.dir/etree_store_test.cpp.o.d"
  "etree_store_test"
  "etree_store_test.pdb"
  "etree_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etree_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
