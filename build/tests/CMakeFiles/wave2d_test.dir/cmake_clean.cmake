file(REMOVE_RECURSE
  "CMakeFiles/wave2d_test.dir/wave2d_test.cpp.o"
  "CMakeFiles/wave2d_test.dir/wave2d_test.cpp.o.d"
  "wave2d_test"
  "wave2d_test.pdb"
  "wave2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
