# Empty dependencies file for etree_fuzz_test.
# This may be replaced when dependencies are built.
