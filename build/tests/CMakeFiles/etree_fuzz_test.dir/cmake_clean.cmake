file(REMOVE_RECURSE
  "CMakeFiles/etree_fuzz_test.dir/etree_fuzz_test.cpp.o"
  "CMakeFiles/etree_fuzz_test.dir/etree_fuzz_test.cpp.o.d"
  "etree_fuzz_test"
  "etree_fuzz_test.pdb"
  "etree_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etree_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
