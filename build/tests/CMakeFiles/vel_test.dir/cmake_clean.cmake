file(REMOVE_RECURSE
  "CMakeFiles/vel_test.dir/vel_test.cpp.o"
  "CMakeFiles/vel_test.dir/vel_test.cpp.o.d"
  "vel_test"
  "vel_test.pdb"
  "vel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
