# Empty compiler generated dependencies file for vel_test.
# This may be replaced when dependencies are built.
