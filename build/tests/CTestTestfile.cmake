# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/octree_test[1]_include.cmake")
include("/root/repo/build/tests/etree_store_test[1]_include.cmake")
include("/root/repo/build/tests/vel_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/fem_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/par_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/wave2d_test[1]_include.cmake")
include("/root/repo/build/tests/inverse_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/wave3d_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_io_test[1]_include.cmake")
include("/root/repo/build/tests/etree_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/surface_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
