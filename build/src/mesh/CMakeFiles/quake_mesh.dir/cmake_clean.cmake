file(REMOVE_RECURSE
  "CMakeFiles/quake_mesh.dir/mesh_io.cpp.o"
  "CMakeFiles/quake_mesh.dir/mesh_io.cpp.o.d"
  "CMakeFiles/quake_mesh.dir/meshgen.cpp.o"
  "CMakeFiles/quake_mesh.dir/meshgen.cpp.o.d"
  "libquake_mesh.a"
  "libquake_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
