# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("octree")
subdirs("vel")
subdirs("mesh")
subdirs("fem")
subdirs("solver")
subdirs("par")
subdirs("opt")
subdirs("wave2d")
subdirs("inverse")
subdirs("wave3d")
