file(REMOVE_RECURSE
  "CMakeFiles/quake_inverse.dir/band.cpp.o"
  "CMakeFiles/quake_inverse.dir/band.cpp.o.d"
  "CMakeFiles/quake_inverse.dir/checkpoint.cpp.o"
  "CMakeFiles/quake_inverse.dir/checkpoint.cpp.o.d"
  "CMakeFiles/quake_inverse.dir/joint_inversion.cpp.o"
  "CMakeFiles/quake_inverse.dir/joint_inversion.cpp.o.d"
  "CMakeFiles/quake_inverse.dir/material_inversion.cpp.o"
  "CMakeFiles/quake_inverse.dir/material_inversion.cpp.o.d"
  "CMakeFiles/quake_inverse.dir/material_param.cpp.o"
  "CMakeFiles/quake_inverse.dir/material_param.cpp.o.d"
  "CMakeFiles/quake_inverse.dir/problem.cpp.o"
  "CMakeFiles/quake_inverse.dir/problem.cpp.o.d"
  "CMakeFiles/quake_inverse.dir/regularization.cpp.o"
  "CMakeFiles/quake_inverse.dir/regularization.cpp.o.d"
  "CMakeFiles/quake_inverse.dir/source_inversion.cpp.o"
  "CMakeFiles/quake_inverse.dir/source_inversion.cpp.o.d"
  "libquake_inverse.a"
  "libquake_inverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_inverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
