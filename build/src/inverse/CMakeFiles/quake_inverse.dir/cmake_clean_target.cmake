file(REMOVE_RECURSE
  "libquake_inverse.a"
)
