# Empty compiler generated dependencies file for quake_inverse.
# This may be replaced when dependencies are built.
