
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inverse/band.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/band.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/band.cpp.o.d"
  "/root/repo/src/inverse/checkpoint.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/checkpoint.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/checkpoint.cpp.o.d"
  "/root/repo/src/inverse/joint_inversion.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/joint_inversion.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/joint_inversion.cpp.o.d"
  "/root/repo/src/inverse/material_inversion.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/material_inversion.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/material_inversion.cpp.o.d"
  "/root/repo/src/inverse/material_param.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/material_param.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/material_param.cpp.o.d"
  "/root/repo/src/inverse/problem.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/problem.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/problem.cpp.o.d"
  "/root/repo/src/inverse/regularization.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/regularization.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/regularization.cpp.o.d"
  "/root/repo/src/inverse/source_inversion.cpp" "src/inverse/CMakeFiles/quake_inverse.dir/source_inversion.cpp.o" "gcc" "src/inverse/CMakeFiles/quake_inverse.dir/source_inversion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wave2d/CMakeFiles/quake_wave2d.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/quake_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
