# Empty dependencies file for quake_fem.
# This may be replaced when dependencies are built.
