file(REMOVE_RECURSE
  "CMakeFiles/quake_fem.dir/abc.cpp.o"
  "CMakeFiles/quake_fem.dir/abc.cpp.o.d"
  "CMakeFiles/quake_fem.dir/hex_element.cpp.o"
  "CMakeFiles/quake_fem.dir/hex_element.cpp.o.d"
  "CMakeFiles/quake_fem.dir/rayleigh.cpp.o"
  "CMakeFiles/quake_fem.dir/rayleigh.cpp.o.d"
  "libquake_fem.a"
  "libquake_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
