file(REMOVE_RECURSE
  "libquake_fem.a"
)
