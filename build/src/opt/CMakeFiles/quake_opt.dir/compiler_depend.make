# Empty compiler generated dependencies file for quake_opt.
# This may be replaced when dependencies are built.
