file(REMOVE_RECURSE
  "libquake_opt.a"
)
