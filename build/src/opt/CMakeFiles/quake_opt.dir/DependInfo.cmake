
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cg.cpp" "src/opt/CMakeFiles/quake_opt.dir/cg.cpp.o" "gcc" "src/opt/CMakeFiles/quake_opt.dir/cg.cpp.o.d"
  "/root/repo/src/opt/frankel.cpp" "src/opt/CMakeFiles/quake_opt.dir/frankel.cpp.o" "gcc" "src/opt/CMakeFiles/quake_opt.dir/frankel.cpp.o.d"
  "/root/repo/src/opt/lbfgs.cpp" "src/opt/CMakeFiles/quake_opt.dir/lbfgs.cpp.o" "gcc" "src/opt/CMakeFiles/quake_opt.dir/lbfgs.cpp.o.d"
  "/root/repo/src/opt/linesearch.cpp" "src/opt/CMakeFiles/quake_opt.dir/linesearch.cpp.o" "gcc" "src/opt/CMakeFiles/quake_opt.dir/linesearch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
