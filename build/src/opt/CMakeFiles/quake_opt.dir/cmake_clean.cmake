file(REMOVE_RECURSE
  "CMakeFiles/quake_opt.dir/cg.cpp.o"
  "CMakeFiles/quake_opt.dir/cg.cpp.o.d"
  "CMakeFiles/quake_opt.dir/frankel.cpp.o"
  "CMakeFiles/quake_opt.dir/frankel.cpp.o.d"
  "CMakeFiles/quake_opt.dir/lbfgs.cpp.o"
  "CMakeFiles/quake_opt.dir/lbfgs.cpp.o.d"
  "CMakeFiles/quake_opt.dir/linesearch.cpp.o"
  "CMakeFiles/quake_opt.dir/linesearch.cpp.o.d"
  "libquake_opt.a"
  "libquake_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
