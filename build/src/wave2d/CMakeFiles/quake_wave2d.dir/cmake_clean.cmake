file(REMOVE_RECURSE
  "CMakeFiles/quake_wave2d.dir/fault.cpp.o"
  "CMakeFiles/quake_wave2d.dir/fault.cpp.o.d"
  "CMakeFiles/quake_wave2d.dir/march.cpp.o"
  "CMakeFiles/quake_wave2d.dir/march.cpp.o.d"
  "CMakeFiles/quake_wave2d.dir/sh_model.cpp.o"
  "CMakeFiles/quake_wave2d.dir/sh_model.cpp.o.d"
  "CMakeFiles/quake_wave2d.dir/stf.cpp.o"
  "CMakeFiles/quake_wave2d.dir/stf.cpp.o.d"
  "libquake_wave2d.a"
  "libquake_wave2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_wave2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
