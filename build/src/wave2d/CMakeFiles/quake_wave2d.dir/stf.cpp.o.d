src/wave2d/CMakeFiles/quake_wave2d.dir/stf.cpp.o: \
 /root/repo/src/wave2d/stf.cpp /usr/include/stdc-predef.h \
 /root/repo/src/wave2d/include/quake/wave2d/stf.hpp
