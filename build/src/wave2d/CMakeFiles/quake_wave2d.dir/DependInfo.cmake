
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wave2d/fault.cpp" "src/wave2d/CMakeFiles/quake_wave2d.dir/fault.cpp.o" "gcc" "src/wave2d/CMakeFiles/quake_wave2d.dir/fault.cpp.o.d"
  "/root/repo/src/wave2d/march.cpp" "src/wave2d/CMakeFiles/quake_wave2d.dir/march.cpp.o" "gcc" "src/wave2d/CMakeFiles/quake_wave2d.dir/march.cpp.o.d"
  "/root/repo/src/wave2d/sh_model.cpp" "src/wave2d/CMakeFiles/quake_wave2d.dir/sh_model.cpp.o" "gcc" "src/wave2d/CMakeFiles/quake_wave2d.dir/sh_model.cpp.o.d"
  "/root/repo/src/wave2d/stf.cpp" "src/wave2d/CMakeFiles/quake_wave2d.dir/stf.cpp.o" "gcc" "src/wave2d/CMakeFiles/quake_wave2d.dir/stf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
