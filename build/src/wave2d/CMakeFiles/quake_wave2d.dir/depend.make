# Empty dependencies file for quake_wave2d.
# This may be replaced when dependencies are built.
