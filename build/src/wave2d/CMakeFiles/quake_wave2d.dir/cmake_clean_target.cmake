file(REMOVE_RECURSE
  "libquake_wave2d.a"
)
