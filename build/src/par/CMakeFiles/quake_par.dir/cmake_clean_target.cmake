file(REMOVE_RECURSE
  "libquake_par.a"
)
