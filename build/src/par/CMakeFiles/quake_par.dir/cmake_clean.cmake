file(REMOVE_RECURSE
  "CMakeFiles/quake_par.dir/communicator.cpp.o"
  "CMakeFiles/quake_par.dir/communicator.cpp.o.d"
  "CMakeFiles/quake_par.dir/parallel_solver.cpp.o"
  "CMakeFiles/quake_par.dir/parallel_solver.cpp.o.d"
  "CMakeFiles/quake_par.dir/partition.cpp.o"
  "CMakeFiles/quake_par.dir/partition.cpp.o.d"
  "libquake_par.a"
  "libquake_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
