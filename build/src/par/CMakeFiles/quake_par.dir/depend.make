# Empty dependencies file for quake_par.
# This may be replaced when dependencies are built.
