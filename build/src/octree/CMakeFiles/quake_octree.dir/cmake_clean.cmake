file(REMOVE_RECURSE
  "CMakeFiles/quake_octree.dir/etree_store.cpp.o"
  "CMakeFiles/quake_octree.dir/etree_store.cpp.o.d"
  "CMakeFiles/quake_octree.dir/linear_octree.cpp.o"
  "CMakeFiles/quake_octree.dir/linear_octree.cpp.o.d"
  "libquake_octree.a"
  "libquake_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
