# Empty dependencies file for quake_octree.
# This may be replaced when dependencies are built.
