file(REMOVE_RECURSE
  "libquake_octree.a"
)
