
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/octree/etree_store.cpp" "src/octree/CMakeFiles/quake_octree.dir/etree_store.cpp.o" "gcc" "src/octree/CMakeFiles/quake_octree.dir/etree_store.cpp.o.d"
  "/root/repo/src/octree/linear_octree.cpp" "src/octree/CMakeFiles/quake_octree.dir/linear_octree.cpp.o" "gcc" "src/octree/CMakeFiles/quake_octree.dir/linear_octree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
