file(REMOVE_RECURSE
  "CMakeFiles/quake_util.dir/filter.cpp.o"
  "CMakeFiles/quake_util.dir/filter.cpp.o.d"
  "CMakeFiles/quake_util.dir/io.cpp.o"
  "CMakeFiles/quake_util.dir/io.cpp.o.d"
  "CMakeFiles/quake_util.dir/log.cpp.o"
  "CMakeFiles/quake_util.dir/log.cpp.o.d"
  "CMakeFiles/quake_util.dir/rng.cpp.o"
  "CMakeFiles/quake_util.dir/rng.cpp.o.d"
  "CMakeFiles/quake_util.dir/stats.cpp.o"
  "CMakeFiles/quake_util.dir/stats.cpp.o.d"
  "libquake_util.a"
  "libquake_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
