file(REMOVE_RECURSE
  "libquake_util.a"
)
