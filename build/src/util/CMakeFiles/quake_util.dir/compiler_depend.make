# Empty compiler generated dependencies file for quake_util.
# This may be replaced when dependencies are built.
