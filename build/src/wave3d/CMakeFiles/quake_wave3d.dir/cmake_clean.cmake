file(REMOVE_RECURSE
  "CMakeFiles/quake_wave3d.dir/inversion3d.cpp.o"
  "CMakeFiles/quake_wave3d.dir/inversion3d.cpp.o.d"
  "CMakeFiles/quake_wave3d.dir/scalar_model.cpp.o"
  "CMakeFiles/quake_wave3d.dir/scalar_model.cpp.o.d"
  "libquake_wave3d.a"
  "libquake_wave3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_wave3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
