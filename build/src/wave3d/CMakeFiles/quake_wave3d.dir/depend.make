# Empty dependencies file for quake_wave3d.
# This may be replaced when dependencies are built.
