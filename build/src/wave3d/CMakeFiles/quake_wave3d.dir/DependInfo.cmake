
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wave3d/inversion3d.cpp" "src/wave3d/CMakeFiles/quake_wave3d.dir/inversion3d.cpp.o" "gcc" "src/wave3d/CMakeFiles/quake_wave3d.dir/inversion3d.cpp.o.d"
  "/root/repo/src/wave3d/scalar_model.cpp" "src/wave3d/CMakeFiles/quake_wave3d.dir/scalar_model.cpp.o" "gcc" "src/wave3d/CMakeFiles/quake_wave3d.dir/scalar_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fem/CMakeFiles/quake_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/quake_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/vel/CMakeFiles/quake_vel.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/quake_octree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
