file(REMOVE_RECURSE
  "libquake_wave3d.a"
)
