file(REMOVE_RECURSE
  "libquake_solver.a"
)
