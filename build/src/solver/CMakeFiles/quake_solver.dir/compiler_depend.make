# Empty compiler generated dependencies file for quake_solver.
# This may be replaced when dependencies are built.
