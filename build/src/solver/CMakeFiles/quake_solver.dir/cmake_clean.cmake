file(REMOVE_RECURSE
  "CMakeFiles/quake_solver.dir/elastic_operator.cpp.o"
  "CMakeFiles/quake_solver.dir/elastic_operator.cpp.o.d"
  "CMakeFiles/quake_solver.dir/explicit_solver.cpp.o"
  "CMakeFiles/quake_solver.dir/explicit_solver.cpp.o.d"
  "CMakeFiles/quake_solver.dir/sh1d.cpp.o"
  "CMakeFiles/quake_solver.dir/sh1d.cpp.o.d"
  "CMakeFiles/quake_solver.dir/source.cpp.o"
  "CMakeFiles/quake_solver.dir/source.cpp.o.d"
  "CMakeFiles/quake_solver.dir/sparse_engine.cpp.o"
  "CMakeFiles/quake_solver.dir/sparse_engine.cpp.o.d"
  "CMakeFiles/quake_solver.dir/surface.cpp.o"
  "CMakeFiles/quake_solver.dir/surface.cpp.o.d"
  "libquake_solver.a"
  "libquake_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
