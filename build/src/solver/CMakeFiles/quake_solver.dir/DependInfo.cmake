
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/elastic_operator.cpp" "src/solver/CMakeFiles/quake_solver.dir/elastic_operator.cpp.o" "gcc" "src/solver/CMakeFiles/quake_solver.dir/elastic_operator.cpp.o.d"
  "/root/repo/src/solver/explicit_solver.cpp" "src/solver/CMakeFiles/quake_solver.dir/explicit_solver.cpp.o" "gcc" "src/solver/CMakeFiles/quake_solver.dir/explicit_solver.cpp.o.d"
  "/root/repo/src/solver/sh1d.cpp" "src/solver/CMakeFiles/quake_solver.dir/sh1d.cpp.o" "gcc" "src/solver/CMakeFiles/quake_solver.dir/sh1d.cpp.o.d"
  "/root/repo/src/solver/source.cpp" "src/solver/CMakeFiles/quake_solver.dir/source.cpp.o" "gcc" "src/solver/CMakeFiles/quake_solver.dir/source.cpp.o.d"
  "/root/repo/src/solver/sparse_engine.cpp" "src/solver/CMakeFiles/quake_solver.dir/sparse_engine.cpp.o" "gcc" "src/solver/CMakeFiles/quake_solver.dir/sparse_engine.cpp.o.d"
  "/root/repo/src/solver/surface.cpp" "src/solver/CMakeFiles/quake_solver.dir/surface.cpp.o" "gcc" "src/solver/CMakeFiles/quake_solver.dir/surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fem/CMakeFiles/quake_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vel/CMakeFiles/quake_vel.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/quake_octree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
