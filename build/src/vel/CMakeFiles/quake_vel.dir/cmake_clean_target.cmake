file(REMOVE_RECURSE
  "libquake_vel.a"
)
