file(REMOVE_RECURSE
  "CMakeFiles/quake_vel.dir/etree_model.cpp.o"
  "CMakeFiles/quake_vel.dir/etree_model.cpp.o.d"
  "CMakeFiles/quake_vel.dir/model.cpp.o"
  "CMakeFiles/quake_vel.dir/model.cpp.o.d"
  "libquake_vel.a"
  "libquake_vel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quake_vel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
