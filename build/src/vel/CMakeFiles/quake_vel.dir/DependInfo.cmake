
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vel/etree_model.cpp" "src/vel/CMakeFiles/quake_vel.dir/etree_model.cpp.o" "gcc" "src/vel/CMakeFiles/quake_vel.dir/etree_model.cpp.o.d"
  "/root/repo/src/vel/model.cpp" "src/vel/CMakeFiles/quake_vel.dir/model.cpp.o" "gcc" "src/vel/CMakeFiles/quake_vel.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/octree/CMakeFiles/quake_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
