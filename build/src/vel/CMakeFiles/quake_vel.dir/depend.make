# Empty dependencies file for quake_vel.
# This may be replaced when dependencies are built.
