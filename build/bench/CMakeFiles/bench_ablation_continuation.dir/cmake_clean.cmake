file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_continuation.dir/bench_ablation_continuation.cpp.o"
  "CMakeFiles/bench_ablation_continuation.dir/bench_ablation_continuation.cpp.o.d"
  "bench_ablation_continuation"
  "bench_ablation_continuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_continuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
