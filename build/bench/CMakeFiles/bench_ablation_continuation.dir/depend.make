# Empty dependencies file for bench_ablation_continuation.
# This may be replaced when dependencies are built.
