
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_1.cpp" "bench/CMakeFiles/bench_table3_1.dir/bench_table3_1.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_1.dir/bench_table3_1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/inverse/CMakeFiles/quake_inverse.dir/DependInfo.cmake"
  "/root/repo/build/src/wave3d/CMakeFiles/quake_wave3d.dir/DependInfo.cmake"
  "/root/repo/build/src/vel/CMakeFiles/quake_vel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/quake_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wave2d/CMakeFiles/quake_wave2d.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/quake_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/fem/CMakeFiles/quake_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/quake_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/quake_octree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
