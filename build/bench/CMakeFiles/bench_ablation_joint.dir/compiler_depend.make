# Empty compiler generated dependencies file for bench_ablation_joint.
# This may be replaced when dependencies are built.
