file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_1_etree.dir/bench_fig2_1_etree.cpp.o"
  "CMakeFiles/bench_fig2_1_etree.dir/bench_fig2_1_etree.cpp.o.d"
  "bench_fig2_1_etree"
  "bench_fig2_1_etree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_1_etree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
