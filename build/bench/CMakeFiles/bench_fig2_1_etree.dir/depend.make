# Empty dependencies file for bench_fig2_1_etree.
# This may be replaced when dependencies are built.
