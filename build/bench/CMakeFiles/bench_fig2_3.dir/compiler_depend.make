# Empty compiler generated dependencies file for bench_fig2_3.
# This may be replaced when dependencies are built.
