#include "quake/solver/explicit_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "quake/fem/hex_element.hpp"
#include "quake/obs/obs.hpp"
#include "quake/util/checkpoint.hpp"

namespace quake::solver {

namespace {

// ForceSink writing one lane of a scenario-major batched force vector.
class LaneForceSink final : public ForceSink {
 public:
  LaneForceSink(std::span<double> f, int n_lanes, int lane)
      : f_(f), lanes_(static_cast<std::size_t>(n_lanes)),
        lane_(static_cast<std::size_t>(lane)) {}
  void add(mesh::NodeId node, int comp, double value) override {
    f_[(3 * static_cast<std::size_t>(node) + static_cast<std::size_t>(comp)) *
           lanes_ +
       lane_] += value;
  }

 private:
  std::span<double> f_;
  std::size_t lanes_, lane_;
};

}  // namespace

ExplicitSolver::ExplicitSolver(const ElasticOperator& op,
                               const SolverOptions& opt, int n_lanes)
    : op_(&op), opt_(opt), lanes_(n_lanes) {
  dt_ = opt.dt > 0.0 ? opt.dt : op.stable_dt(opt.cfl_fraction);
  if (!(dt_ > 0.0) || !(opt.t_end > 0.0)) {
    throw std::invalid_argument("ExplicitSolver: bad dt or t_end");
  }
  if (lanes_ < 1 || lanes_ > fem::kMaxBatchLanes) {
    throw std::invalid_argument("ExplicitSolver: bad lane count");
  }
  n_steps_ = static_cast<int>(std::ceil(opt.t_end / dt_));
  sources_.resize(static_cast<std::size_t>(lanes_));

  const std::size_t nd = op.n_dofs();
  const std::size_t nb = nd * static_cast<std::size_t>(lanes_);
  u_.assign(nb, 0.0);
  u_prev_.assign(nb, 0.0);
  u_next_.assign(nb, 0.0);
  f_.assign(nb, 0.0);
  ku_.assign(nb, 0.0);
  dku_.assign(nb, 0.0);
  dku_prev_.assign(nb, 0.0);

  // Diagonal left-hand side of eq. 2.4:
  // (1 + alpha dt/2) M + (beta dt/2) K_diag + (dt/2) C^AB_diag,
  // with elementwise alpha and beta folded into the assembled vectors.
  inv_lhs_.assign(nd, 0.0);
  const auto mass = op.lumped_mass();
  const auto am = op.alpha_mass();
  const auto bk = op.beta_k_diag();
  const auto cab = op.cab_diag();
  for (std::size_t d = 0; d < nd; ++d) {
    const double lhs =
        mass[d] + 0.5 * dt_ * (am[d] + bk[d] + cab[d]);
    inv_lhs_[d] = lhs > 0.0 ? 1.0 / lhs : 0.0;  // hanging dofs have zero mass
  }
}

std::size_t ExplicitSolver::add_receiver(std::array<double, 3> position) {
  Receiver r;
  r.node = nearest_node(op_->mesh(), position);
  r.u_lane.resize(static_cast<std::size_t>(lanes_ - 1));
  receivers_.push_back(std::move(r));
  return receivers_.size() - 1;
}

void ExplicitSolver::set_checkpoint(std::string path, int every, int keep) {
  if (lanes_ > 1) {
    throw std::invalid_argument(
        "ExplicitSolver: checkpointing is not supported in batched mode");
  }
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = every;
  checkpoint_keep_ = keep < 1 ? 1 : keep;
}

void ExplicitSolver::set_initial_conditions(std::span<const double> u0,
                                            std::span<const double> v0) {
  if (lanes_ > 1) {
    throw std::invalid_argument(
        "ExplicitSolver: initial conditions require a 1-lane solver");
  }
  const std::size_t nd = op_->n_dofs();
  if (u0.size() != nd || v0.size() != nd) {
    throw std::invalid_argument("set_initial_conditions: bad sizes");
  }
  std::copy(u0.begin(), u0.end(), u_.begin());
  op_->expand_constraints(u_);
  // Second-order start: u^{-1} = u0 - dt v0 + dt^2/2 a0 with
  // a0 = M^{-1} (b(0) - (K + K^AB) u0); damping omitted from a0 (its effect
  // on the starting error is O(dt^3)).
  std::fill(ku_.begin(), ku_.end(), 0.0);
  op_->apply_stiffness(u_, ku_, {});
  op_->accumulate_constraints(ku_);
  std::fill(f_.begin(), f_.end(), 0.0);
  for (const SourceModel* s : sources_[0]) s->add_forces(0.0, f_);
  op_->accumulate_constraints(f_);
  const auto mass = op_->lumped_mass();
  for (std::size_t d = 0; d < nd; ++d) {
    const double a0 = mass[d] > 0.0 ? (f_[d] - ku_[d]) / mass[d] : 0.0;
    u_prev_[d] = u_[d] - dt_ * v0[d] + 0.5 * dt_ * dt_ * a0;
  }
  op_->expand_constraints(u_prev_);
}

void ExplicitSolver::step(int k) {
  QUAKE_OBS_SCOPE("step");
  const std::size_t nd = op_->n_dofs();
  const double t_k = k * dt_;
  const auto mass = op_->lumped_mass();
  const auto am = op_->alpha_mass();
  const auto bk = op_->beta_k_diag();
  const auto cab = op_->cab_diag();
  const bool rayleigh = op_->options().rayleigh;

  {
    // Source at t_k, projected.
    QUAKE_OBS_SCOPE("source");
    std::fill(f_.begin(), f_.end(), 0.0);
    for (const SourceModel* s : sources_[0]) s->add_forces(t_k, f_);
    op_->accumulate_constraints(f_);
  }

  // Stiffness and Rayleigh-stiffness products at u^k, projected. The
  // element kernel itself reports under step/op/stiffness (see
  // ElasticOperator::apply_stiffness).
  std::fill(ku_.begin(), ku_.end(), 0.0);
  if (rayleigh) std::fill(dku_.begin(), dku_.end(), 0.0);
  op_->apply_stiffness(u_, ku_, rayleigh ? std::span<double>(dku_) : std::span<double>());
  op_->accumulate_constraints(ku_);
  if (rayleigh) op_->accumulate_constraints(dku_);

  QUAKE_OBS_SCOPE("update");  // diagonalized lumped update (eq. 2.4)
  const double dt2 = dt_ * dt_;
  const double hdt = 0.5 * dt_;
  for (std::size_t d = 0; d < nd; ++d) {
    // eq. 2.4: u^k coefficient 2M - dt^2 (K + K^AB) - (beta dt/2) K_off,
    //          u^{k-1} coefficient (alpha dt/2 - 1) M + (beta dt/2) K
    //                              + (dt/2) C^AB,
    // with C^AB lumped (so C^AB_off = 0) and K_off u = (K u) - K_diag u.
    double rhs = 2.0 * mass[d] * u_[d] - dt2 * ku_[d] + dt2 * f_[d] +
                 (hdt * am[d] - mass[d]) * u_prev_[d] +
                 hdt * cab[d] * u_prev_[d];
    if (rayleigh) {
      rhs -= hdt * (dku_[d] - bk[d] * u_[d]);  // off-diagonal part at u^k
      rhs += hdt * dku_prev_[d];               // full beta K at u^{k-1}
    }
    u_next_[d] = rhs * inv_lhs_[d];
  }
  op_->expand_constraints(u_next_);
  if (fixed_[0] || fixed_[1] || fixed_[2]) {
    for (std::size_t n = 0; n < nd / 3; ++n) {
      for (int c = 0; c < 3; ++c) {
        if (fixed_[static_cast<std::size_t>(c)]) {
          u_next_[3 * n + static_cast<std::size_t>(c)] = 0.0;
        }
      }
    }
  }

  std::swap(dku_prev_, dku_);
  std::swap(u_prev_, u_);
  std::swap(u_, u_next_);

  // Update cost per dof: 14 flops for the undamped eq. 2.4 recurrence, plus
  // 6 for the Rayleigh off-diagonal correction when damping is on.
  flops_.add(op_->flops_per_apply() + nd * (rayleigh ? 20ull : 14ull));
}

void ExplicitSolver::step_batched(int k) {
  QUAKE_OBS_SCOPE("step");
  const std::size_t nd = op_->n_dofs();
  const std::size_t S = static_cast<std::size_t>(lanes_);
  const double t_k = k * dt_;
  const auto mass = op_->lumped_mass();
  const auto am = op_->alpha_mass();
  const auto bk = op_->beta_k_diag();
  const auto cab = op_->cab_diag();
  const bool rayleigh = op_->options().rayleigh;

  {
    QUAKE_OBS_SCOPE("source");
    std::fill(f_.begin(), f_.end(), 0.0);
    for (int s = 0; s < lanes_; ++s) {
      LaneForceSink sink(f_, lanes_, s);
      for (const SourceModel* src : sources_[static_cast<std::size_t>(s)]) {
        src->add_forces(t_k, sink);
      }
    }
    op_->accumulate_constraints_batch(f_, lanes_);
  }

  std::fill(ku_.begin(), ku_.end(), 0.0);
  if (rayleigh) std::fill(dku_.begin(), dku_.end(), 0.0);
  op_->apply_stiffness_batch(
      u_, lanes_, ku_,
      rayleigh ? std::span<double>(dku_) : std::span<double>());
  op_->accumulate_constraints_batch(ku_, lanes_);
  if (rayleigh) op_->accumulate_constraints_batch(dku_, lanes_);

  QUAKE_OBS_SCOPE("update");  // eq. 2.4, lane loop innermost (see step())
  const double dt2 = dt_ * dt_;
  const double hdt = 0.5 * dt_;
  for (std::size_t d = 0; d < nd; ++d) {
    const std::size_t b = d * S;
    for (std::size_t s = 0; s < S; ++s) {
      double rhs = 2.0 * mass[d] * u_[b + s] - dt2 * ku_[b + s] +
                   dt2 * f_[b + s] + (hdt * am[d] - mass[d]) * u_prev_[b + s] +
                   hdt * cab[d] * u_prev_[b + s];
      if (rayleigh) {
        rhs -= hdt * (dku_[b + s] - bk[d] * u_[b + s]);
        rhs += hdt * dku_prev_[b + s];
      }
      u_next_[b + s] = rhs * inv_lhs_[d];
    }
  }
  op_->expand_constraints_batch(u_next_, lanes_);
  if (fixed_[0] || fixed_[1] || fixed_[2]) {
    for (std::size_t n = 0; n < nd / 3; ++n) {
      for (int c = 0; c < 3; ++c) {
        if (!fixed_[static_cast<std::size_t>(c)]) continue;
        const std::size_t b = (3 * n + static_cast<std::size_t>(c)) * S;
        for (std::size_t s = 0; s < S; ++s) u_next_[b + s] = 0.0;
      }
    }
  }

  std::swap(dku_prev_, dku_);
  std::swap(u_prev_, u_);
  std::swap(u_, u_next_);

  flops_.add(static_cast<std::uint64_t>(lanes_) *
             (op_->flops_per_apply() + nd * (rayleigh ? 20ull : 14ull)));
}

int ExplicitSolver::restore_checkpoint() {
  // Newest generation first; an older sibling is still a valid resume point
  // when the newest write was torn or skipped under disk pressure.
  util::Snapshot snap;
  bool loaded = false;
  for (int gen = 0; gen < checkpoint_keep_ && !loaded; ++gen) {
    loaded = util::load_snapshot(
        util::snapshot_generation_path(checkpoint_path_, gen), &snap);
  }
  if (!loaded) return 0;
  const std::size_t nd = op_->n_dofs();
  const auto u = snap.field("u");
  const auto u_prev = snap.field("u_prev");
  const auto dku_prev = snap.field("dku_prev");
  if (snap.step <= 0 || snap.step > n_steps_ || u.size() != nd ||
      u_prev.size() != nd || dku_prev.size() != nd) {
    return 0;  // snapshot from an incompatible configuration
  }
  const std::size_t k0 = static_cast<std::size_t>(snap.step);
  std::vector<std::span<const double>> rec(receivers_.size());
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    rec[i] = snap.field("recv" + std::to_string(i));
    if (rec[i].size() != 3 * k0) return 0;
  }
  std::copy(u.begin(), u.end(), u_.begin());
  std::copy(u_prev.begin(), u_prev.end(), u_prev_.begin());
  std::copy(dku_prev.begin(), dku_prev.end(), dku_prev_.begin());
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    receivers_[i].u.assign(k0, {});
    for (std::size_t s = 0; s < k0; ++s) {
      receivers_[i].u[s] = {rec[i][3 * s], rec[i][3 * s + 1],
                            rec[i][3 * s + 2]};
    }
  }
  return static_cast<int>(snap.step);
}

void ExplicitSolver::write_checkpoint(int step) const {
  QUAKE_OBS_SCOPE("checkpoint/write");
  util::Snapshot snap;
  snap.step = step;
  snap.add("u", u_);
  snap.add("u_prev", u_prev_);
  snap.add("dku_prev", dku_prev_);
  std::size_t doubles = u_.size() + u_prev_.size() + dku_prev_.size();
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    std::vector<double> flat;
    flat.reserve(3 * receivers_[i].u.size());
    for (const auto& s : receivers_[i].u) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    doubles += flat.size();
    snap.add("recv" + std::to_string(i), std::move(flat));
  }
  std::string err;
  if (!util::save_snapshot_rotating(checkpoint_path_, snap, checkpoint_keep_,
                                    &err)) {
    // Disk pressure is not fatal: the previous generation chain is intact,
    // so the run keeps going and simply has an older restore target.
    obs::counter_add("checkpoint/write_failures", 1);
    std::fprintf(stderr,
                 "[quake::solver] checkpoint write at step %d failed (%s); "
                 "continuing on previous snapshot\n",
                 step, err.c_str());
    return;
  }
  obs::counter_add("ckpt/writes", 1);
  obs::counter_add("ckpt/bytes_written",
                   static_cast<std::int64_t>(8 * doubles));
}

void ExplicitSolver::run(const SnapshotFn& snapshot, int snapshot_every) {
  QUAKE_OBS_SCOPE("solver/run");
  util::Timer timer;
  std::vector<double> v(snapshot ? op_->n_dofs() : 0);
  const int k0 = checkpoint_path_.empty() ? 0 : restore_checkpoint();
  if (k0 > 0) {
    obs::counter_add("ckpt/restores", 1);
    obs::counter_add("ckpt/restored_steps", k0);
  }
  const std::size_t S = static_cast<std::size_t>(lanes_);
  for (int k = k0; k < n_steps_; ++k) {
    if (lanes_ == 1) {
      step(k);
    } else {
      step_batched(k);
    }
    for (Receiver& r : receivers_) {
      const std::size_t base = 3 * static_cast<std::size_t>(r.node) * S;
      r.u.push_back({u_[base], u_[base + S], u_[base + 2 * S]});
      for (std::size_t s = 1; s < S; ++s) {
        r.u_lane[s - 1].push_back(
            {u_[base + s], u_[base + S + s], u_[base + 2 * S + s]});
      }
    }
    if (snapshot && snapshot_every > 0 && (k + 1) % snapshot_every == 0 &&
        lanes_ == 1) {
      for (std::size_t d = 0; d < v.size(); ++d) {
        v[d] = (u_[d] - u_prev_[d]) / dt_;
      }
      snapshot(k + 1, (k + 1) * dt_, u_, v);
    }
    if (checkpoint_every_ > 0 && !checkpoint_path_.empty() &&
        (k + 1) % checkpoint_every_ == 0 && k + 1 < n_steps_) {
      write_checkpoint(k + 1);
    }
  }
  elapsed_ = timer.seconds();
}

void ExplicitSolver::reset() {
  std::fill(u_.begin(), u_.end(), 0.0);
  std::fill(u_prev_.begin(), u_prev_.end(), 0.0);
  std::fill(u_next_.begin(), u_next_.end(), 0.0);
  std::fill(f_.begin(), f_.end(), 0.0);
  std::fill(ku_.begin(), ku_.end(), 0.0);
  std::fill(dku_.begin(), dku_.end(), 0.0);
  std::fill(dku_prev_.begin(), dku_prev_.end(), 0.0);
  for (Receiver& r : receivers_) {
    r.u.clear();
    for (auto& lane : r.u_lane) lane.clear();
  }
  elapsed_ = 0.0;
  flops_.clear();
}

double ExplicitSolver::energy() const {
  if (lanes_ > 1) {
    throw std::logic_error("ExplicitSolver::energy: requires a 1-lane solver");
  }
  // The discrete energy that undamped central differences conserve exactly:
  //   E = 1/2 v_{k-1/2}^T M v_{k-1/2} + 1/2 u_k^T K u_{k-1},
  // with v_{k-1/2} = (u_k - u_{k-1}) / dt. (The staggered strain term is
  // what makes this invariant; 1/2 u^T K u oscillates at O(dt * omega).)
  const std::size_t nd = op_->n_dofs();
  const auto mass = op_->lumped_mass();
  double ek = 0.0;
  for (std::size_t d = 0; d < nd; ++d) {
    const double v = (u_[d] - u_prev_[d]) / dt_;
    ek += 0.5 * mass[d] * v * v;
  }
  std::vector<double> ku(nd, 0.0);
  op_->apply_stiffness(u_prev_, ku, {});
  double es = 0.0;
  for (std::size_t d = 0; d < nd; ++d) es += 0.5 * u_[d] * ku[d];
  return ek + es;
}

std::vector<double> ExplicitSolver::receiver_component(std::size_t r, int comp,
                                                       int lane) const {
  const Receiver& rec = receivers_.at(r);
  const auto& hist =
      lane == 0 ? rec.u : rec.u_lane.at(static_cast<std::size_t>(lane - 1));
  std::vector<double> out(hist.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = hist[i][static_cast<std::size_t>(comp)];
  }
  return out;
}

std::vector<double> ExplicitSolver::displacement_lane(int lane) const {
  if (lane < 0 || lane >= lanes_) {
    throw std::out_of_range("ExplicitSolver::displacement_lane: bad lane");
  }
  const std::size_t nd = op_->n_dofs();
  const std::size_t S = static_cast<std::size_t>(lanes_);
  std::vector<double> out(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    out[d] = u_[d * S + static_cast<std::size_t>(lane)];
  }
  return out;
}

}  // namespace quake::solver
