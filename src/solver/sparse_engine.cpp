#include "quake/solver/sparse_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "quake/fem/hex_element.hpp"

namespace quake::solver {

SparseStiffness::SparseStiffness(const mesh::HexMesh& mesh) {
  const std::size_t nd = 3 * mesh.n_nodes();
  const fem::HexReference& ref = fem::HexReference::get();

  struct Triplet {
    std::int32_t row, col;
    double v;
  };
  std::vector<Triplet> trips;
  trips.reserve(mesh.n_elements() * fem::kHexDofs * fem::kHexDofs);

  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const double sl = mesh.elem_size[e] * mesh.elem_mat[e].lambda;
    const double sm = mesh.elem_size[e] * mesh.elem_mat[e].mu;
    const auto& conn = mesh.elem_nodes[e];
    for (int r = 0; r < fem::kHexDofs; ++r) {
      const std::int32_t row =
          3 * conn[static_cast<std::size_t>(r / 3)] + r % 3;
      for (int c = 0; c < fem::kHexDofs; ++c) {
        const std::size_t idx =
            static_cast<std::size_t>(r) * fem::kHexDofs + static_cast<std::size_t>(c);
        const double v = sl * ref.k_lambda[idx] + sm * ref.k_mu[idx];
        if (v == 0.0) continue;
        trips.push_back(
            {row, 3 * conn[static_cast<std::size_t>(c / 3)] + c % 3, v});
      }
    }
  }

  std::sort(trips.begin(), trips.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  row_ptr_.assign(nd + 1, 0);
  cols_.reserve(trips.size());
  values_.reserve(trips.size());
  for (std::size_t i = 0; i < trips.size();) {
    std::size_t j = i;
    double v = 0.0;
    while (j < trips.size() && trips[j].row == trips[i].row &&
           trips[j].col == trips[i].col) {
      v += trips[j].v;
      ++j;
    }
    cols_.push_back(trips[i].col);
    values_.push_back(v);
    row_ptr_[static_cast<std::size_t>(trips[i].row) + 1] =
        static_cast<std::int64_t>(values_.size());
    i = j;
  }
  // Fill gaps for empty rows.
  for (std::size_t r = 1; r <= nd; ++r) {
    row_ptr_[r] = std::max(row_ptr_[r], row_ptr_[r - 1]);
  }
}

void SparseStiffness::apply(std::span<const double> u,
                            std::span<double> y) const {
  const std::size_t nd = row_ptr_.size() - 1;
  if (u.size() != nd || y.size() != nd) {
    throw std::invalid_argument("SparseStiffness::apply: size mismatch");
  }
  for (std::size_t r = 0; r < nd; ++r) {
    double s = 0.0;
    for (std::int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[static_cast<std::size_t>(k)] *
           u[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])];
    }
    y[r] += s;
  }
}

}  // namespace quake::solver
