#include "quake/solver/elastic_operator.hpp"

#include <algorithm>
#include <stdexcept>

#include "quake/fem/hex_element.hpp"
#include "quake/obs/obs.hpp"

namespace quake::solver {

ElasticOperator::ElasticOperator(const mesh::HexMesh& mesh,
                                 const OperatorOptions& opt)
    : mesh_(&mesh), opt_(opt) {
  const std::size_t nd = n_dofs();
  mass_.assign(nd, 0.0);
  alpha_mass_.assign(nd, 0.0);
  cab_diag_.assign(nd, 0.0);
  k_diag_.assign(nd, 0.0);
  beta_k_diag_.assign(nd, 0.0);
  elem_damping_.assign(mesh.n_elements(), fem::RayleighCoeffs{});

  const fem::HexReference& ref = fem::HexReference::get();

  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const double h = mesh.elem_size[e];
    const vel::Material& m = mesh.elem_mat[e];
    if (opt_.rayleigh) {
      elem_damping_[e] = fem::fit_rayleigh(
          fem::target_damping_ratio(m.vs()), opt_.damping_f_min,
          opt_.damping_f_max);
    }
    const double node_mass = fem::hex_lumped_mass(m.rho, h);
    std::array<double, fem::kHexDofs> kd;
    fem::hex_diagonal(ref, h * m.lambda, h * m.mu, kd);
    for (int i = 0; i < 8; ++i) {
      const std::size_t base =
          3 * static_cast<std::size_t>(mesh.elem_nodes[e][static_cast<std::size_t>(i)]);
      for (int c = 0; c < 3; ++c) {
        const std::size_t dof = base + static_cast<std::size_t>(c);
        mass_[dof] += node_mass;
        alpha_mass_[dof] += elem_damping_[e].alpha * node_mass;
        k_diag_[dof] += kd[static_cast<std::size_t>(3 * i + c)];
        beta_k_diag_[dof] +=
            elem_damping_[e].beta * kd[static_cast<std::size_t>(3 * i + c)];
      }
    }
  }

  // Lumped boundary dashpots on the configured absorbing sides.
  for (const mesh::BoundaryFace& bf : mesh.boundary_faces) {
    if (opt_.abc == fem::AbcType::kNone) break;
    if (!opt_.absorbing_sides[static_cast<std::size_t>(bf.side)]) continue;
    const std::size_t e = static_cast<std::size_t>(bf.elem);
    const auto coeffs =
        fem::face_dashpot_coeffs(mesh.elem_mat[e], mesh.elem_size[e], bf.side);
    const auto& fn = mesh::kFaceNodes[static_cast<std::size_t>(bf.side)];
    for (int i = 0; i < 4; ++i) {
      const std::size_t base = 3 * static_cast<std::size_t>(
          mesh.elem_nodes[e][static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
      for (int c = 0; c < 3; ++c) {
        cab_diag_[base + static_cast<std::size_t>(c)] +=
            coeffs[static_cast<std::size_t>(c)];
      }
    }
  }

  // Project the diagonal vectors: fold hanging entries into their masters
  // (row-sum lumping, mass-conserving), then zero the hanging entries so
  // the update never divides by a dependent dof's coefficient.
  auto project = [&mesh](std::vector<double>& v) {
    for (const mesh::Constraint& c : mesh.constraints) {
      for (int comp = 0; comp < 3; ++comp) {
        const std::size_t hd =
            3 * static_cast<std::size_t>(c.node) + static_cast<std::size_t>(comp);
        for (int m = 0; m < c.n_masters; ++m) {
          v[3 * static_cast<std::size_t>(c.masters[static_cast<std::size_t>(m)]) +
            static_cast<std::size_t>(comp)] +=
              c.weights[static_cast<std::size_t>(m)] * v[hd];
        }
        v[hd] = 0.0;
      }
    }
  };
  project(mass_);
  project(alpha_mass_);
  project(cab_diag_);
  project(k_diag_);
  project(beta_k_diag_);
}

void ElasticOperator::apply_stiffness(std::span<const double> u,
                                      std::span<double> y,
                                      std::span<double> y_damp) const {
  const mesh::HexMesh& mesh = *mesh_;
  const fem::HexReference& ref = fem::HexReference::get();
  const bool damp = opt_.rayleigh && !y_damp.empty();

  // One scope per apply (not per element) keeps the instrumented-but-
  // disabled overhead to a single atomic load per matvec.
  QUAKE_OBS_SCOPE("op/stiffness");
  obs::counter_add("op/elements_processed",
                   static_cast<std::int64_t>(mesh.n_elements()));
  if (damp) {
    obs::counter_add("op/damped_applies", 1);
  }

  // Elements stream through the kernel in packs: gather a contiguous run of
  // element vectors, one hex_apply_elems call across the pack, scatter back.
  // Per-element arithmetic order is unchanged (elements are independent),
  // so results match the element-at-a-time loop bitwise.
  constexpr std::size_t kElemPack = 8;
  double ue[fem::kHexDofs * kElemPack];
  double ye[fem::kHexDofs * kElemPack];
  double de[fem::kHexDofs * kElemPack];
  double scale_l[kElemPack], scale_m[kElemPack], beta[kElemPack];
  for (std::size_t e0 = 0; e0 < mesh.n_elements(); e0 += kElemPack) {
    const std::size_t np = std::min(kElemPack, mesh.n_elements() - e0);
    for (std::size_t b = 0; b < np; ++b) {
      const std::size_t e = e0 + b;
      const auto& conn = mesh.elem_nodes[e];
      double* up = ue + b * fem::kHexDofs;
      for (int i = 0; i < 8; ++i) {
        const std::size_t base =
            3 * static_cast<std::size_t>(conn[static_cast<std::size_t>(i)]);
        up[3 * i] = u[base];
        up[3 * i + 1] = u[base + 1];
        up[3 * i + 2] = u[base + 2];
      }
      const double h = mesh.elem_size[e];
      const vel::Material& m = mesh.elem_mat[e];
      scale_l[b] = h * m.lambda;
      scale_m[b] = h * m.mu;
      beta[b] = damp ? elem_damping_[e].beta : 0.0;
    }
    std::fill(ye, ye + np * fem::kHexDofs, 0.0);
    if (damp) std::fill(de, de + np * fem::kHexDofs, 0.0);
    fem::hex_apply_elems(ref, ue, static_cast<int>(np), scale_l, scale_m, ye,
                         beta, damp ? de : nullptr);
    for (std::size_t b = 0; b < np; ++b) {
      const std::size_t e = e0 + b;
      const auto& conn = mesh.elem_nodes[e];
      const double* yp = ye + b * fem::kHexDofs;
      const double* dp = de + b * fem::kHexDofs;
      for (int i = 0; i < 8; ++i) {
        const std::size_t base =
            3 * static_cast<std::size_t>(conn[static_cast<std::size_t>(i)]);
        y[base] += yp[3 * i];
        y[base + 1] += yp[3 * i + 1];
        y[base + 2] += yp[3 * i + 2];
        if (damp) {
          y_damp[base] += dp[3 * i];
          y_damp[base + 1] += dp[3 * i + 1];
          y_damp[base + 2] += dp[3 * i + 2];
        }
      }
    }
  }

  if (opt_.abc == fem::AbcType::kStacey) {
    QUAKE_OBS_SCOPE("abc");  // nests: op/stiffness/abc
    obs::counter_add("op/abc_faces_processed",
                     static_cast<std::int64_t>(mesh.boundary_faces.size()));
    double uf[12], yf[12];
    for (const mesh::BoundaryFace& bf : mesh.boundary_faces) {
      if (!opt_.absorbing_sides[static_cast<std::size_t>(bf.side)]) continue;
      const std::size_t e = static_cast<std::size_t>(bf.elem);
      const auto& fn = mesh::kFaceNodes[static_cast<std::size_t>(bf.side)];
      for (int i = 0; i < 4; ++i) {
        const std::size_t base = 3 * static_cast<std::size_t>(
            mesh.elem_nodes[e][static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
        uf[3 * i] = u[base];
        uf[3 * i + 1] = u[base + 1];
        uf[3 * i + 2] = u[base + 2];
      }
      std::fill(yf, yf + 12, 0.0);
      fem::face_stacey_apply(mesh.elem_mat[e], mesh.elem_size[e], bf.side, uf,
                             yf);
      for (int i = 0; i < 4; ++i) {
        const std::size_t base = 3 * static_cast<std::size_t>(
            mesh.elem_nodes[e][static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
        y[base] += yf[3 * i];
        y[base + 1] += yf[3 * i + 1];
        y[base + 2] += yf[3 * i + 2];
      }
    }
  }
}

void ElasticOperator::apply_stiffness_subset(
    std::span<const mesh::ElemId> elems, std::span<const std::int32_t> faces,
    std::span<const double> u, std::span<double> y,
    std::span<double> y_damp) const {
  const mesh::HexMesh& mesh = *mesh_;
  const fem::HexReference& ref = fem::HexReference::get();
  const bool damp = opt_.rayleigh && !y_damp.empty();

  QUAKE_OBS_SCOPE("op/stiffness");
  obs::counter_add("op/elements_processed",
                   static_cast<std::int64_t>(elems.size()));
  if (damp) {
    obs::counter_add("op/damped_applies", 1);
  }

  // Same pack-of-8 streaming as apply_stiffness, over the subset list. Pack
  // boundaries fall at the same list positions for the full ascending list,
  // and per-element arithmetic is order-independent across a pack, so the
  // full-subset call reproduces apply_stiffness bitwise.
  constexpr std::size_t kElemPack = 8;
  double ue[fem::kHexDofs * kElemPack];
  double ye[fem::kHexDofs * kElemPack];
  double de[fem::kHexDofs * kElemPack];
  double scale_l[kElemPack], scale_m[kElemPack], beta[kElemPack];
  for (std::size_t l0 = 0; l0 < elems.size(); l0 += kElemPack) {
    const std::size_t np = std::min(kElemPack, elems.size() - l0);
    for (std::size_t b = 0; b < np; ++b) {
      const std::size_t e = static_cast<std::size_t>(elems[l0 + b]);
      const auto& conn = mesh.elem_nodes[e];
      double* up = ue + b * fem::kHexDofs;
      for (int i = 0; i < 8; ++i) {
        const std::size_t base =
            3 * static_cast<std::size_t>(conn[static_cast<std::size_t>(i)]);
        up[3 * i] = u[base];
        up[3 * i + 1] = u[base + 1];
        up[3 * i + 2] = u[base + 2];
      }
      const double h = mesh.elem_size[e];
      const vel::Material& m = mesh.elem_mat[e];
      scale_l[b] = h * m.lambda;
      scale_m[b] = h * m.mu;
      beta[b] = damp ? elem_damping_[e].beta : 0.0;
    }
    std::fill(ye, ye + np * fem::kHexDofs, 0.0);
    if (damp) std::fill(de, de + np * fem::kHexDofs, 0.0);
    fem::hex_apply_elems(ref, ue, static_cast<int>(np), scale_l, scale_m, ye,
                         beta, damp ? de : nullptr);
    for (std::size_t b = 0; b < np; ++b) {
      const std::size_t e = static_cast<std::size_t>(elems[l0 + b]);
      const auto& conn = mesh.elem_nodes[e];
      const double* yp = ye + b * fem::kHexDofs;
      const double* dp = de + b * fem::kHexDofs;
      for (int i = 0; i < 8; ++i) {
        const std::size_t base =
            3 * static_cast<std::size_t>(conn[static_cast<std::size_t>(i)]);
        y[base] += yp[3 * i];
        y[base + 1] += yp[3 * i + 1];
        y[base + 2] += yp[3 * i + 2];
        if (damp) {
          y_damp[base] += dp[3 * i];
          y_damp[base + 1] += dp[3 * i + 1];
          y_damp[base + 2] += dp[3 * i + 2];
        }
      }
    }
  }

  if (opt_.abc == fem::AbcType::kStacey) {
    QUAKE_OBS_SCOPE("abc");
    obs::counter_add("op/abc_faces_processed",
                     static_cast<std::int64_t>(faces.size()));
    double uf[12], yf[12];
    for (const std::int32_t fi : faces) {
      const mesh::BoundaryFace& bf =
          mesh.boundary_faces[static_cast<std::size_t>(fi)];
      if (!opt_.absorbing_sides[static_cast<std::size_t>(bf.side)]) continue;
      const std::size_t e = static_cast<std::size_t>(bf.elem);
      const auto& fn = mesh::kFaceNodes[static_cast<std::size_t>(bf.side)];
      for (int i = 0; i < 4; ++i) {
        const std::size_t base = 3 * static_cast<std::size_t>(
            mesh.elem_nodes[e][static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
        uf[3 * i] = u[base];
        uf[3 * i + 1] = u[base + 1];
        uf[3 * i + 2] = u[base + 2];
      }
      std::fill(yf, yf + 12, 0.0);
      fem::face_stacey_apply(mesh.elem_mat[e], mesh.elem_size[e], bf.side, uf,
                             yf);
      for (int i = 0; i < 4; ++i) {
        const std::size_t base = 3 * static_cast<std::size_t>(
            mesh.elem_nodes[e][static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
        y[base] += yf[3 * i];
        y[base + 1] += yf[3 * i + 1];
        y[base + 2] += yf[3 * i + 2];
      }
    }
  }
}

void ElasticOperator::apply_stiffness_batch(std::span<const double> u,
                                            int n_lanes, std::span<double> y,
                                            std::span<double> y_damp) const {
  if (n_lanes < 1 || n_lanes > fem::kMaxBatchLanes) {
    throw std::invalid_argument("apply_stiffness_batch: bad lane count");
  }
  const mesh::HexMesh& mesh = *mesh_;
  const fem::HexReference& ref = fem::HexReference::get();
  const bool damp = opt_.rayleigh && !y_damp.empty();
  const std::size_t S = static_cast<std::size_t>(n_lanes);

  QUAKE_OBS_SCOPE("op/stiffness");
  obs::counter_add("op/elements_processed",
                   static_cast<std::int64_t>(mesh.n_elements()));
  if (damp) {
    obs::counter_add("op/damped_applies", 1);
  }

  // Scenario-major element buffers: the 3 components x n_lanes values of a
  // node are contiguous, so gather/scatter moves 3*S-double runs per node.
  double ue[fem::kHexDofs * fem::kMaxBatchLanes];
  double ye[fem::kHexDofs * fem::kMaxBatchLanes];
  double de[fem::kHexDofs * fem::kMaxBatchLanes];
  for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
    const auto& conn = mesh.elem_nodes[e];
    for (int i = 0; i < 8; ++i) {
      const std::size_t base =
          3 * static_cast<std::size_t>(conn[static_cast<std::size_t>(i)]) * S;
      std::copy(u.begin() + static_cast<std::ptrdiff_t>(base),
                u.begin() + static_cast<std::ptrdiff_t>(base + 3 * S),
                ue + static_cast<std::size_t>(3 * i) * S);
    }
    std::fill(ye, ye + fem::kHexDofs * S, 0.0);
    if (damp) std::fill(de, de + fem::kHexDofs * S, 0.0);
    const double h = mesh.elem_size[e];
    const vel::Material& m = mesh.elem_mat[e];
    fem::hex_apply_batch(ref, ue, n_lanes, h * m.lambda, h * m.mu, ye,
                         damp ? elem_damping_[e].beta : 0.0,
                         damp ? de : nullptr);
    for (int i = 0; i < 8; ++i) {
      const std::size_t base =
          3 * static_cast<std::size_t>(conn[static_cast<std::size_t>(i)]) * S;
      const double* yi = ye + static_cast<std::size_t>(3 * i) * S;
      const double* di = de + static_cast<std::size_t>(3 * i) * S;
      for (std::size_t t = 0; t < 3 * S; ++t) {
        y[base + t] += yi[t];
        if (damp) y_damp[base + t] += di[t];
      }
    }
  }

  if (opt_.abc == fem::AbcType::kStacey) {
    QUAKE_OBS_SCOPE("abc");
    obs::counter_add("op/abc_faces_processed",
                     static_cast<std::int64_t>(mesh.boundary_faces.size()));
    // The face dashpot kernel is small; gather each lane's 12-vector and
    // run the scalar kernel per lane — the per-lane operation order is the
    // unbatched one by construction.
    double uf[12], yf[12];
    for (const mesh::BoundaryFace& bf : mesh.boundary_faces) {
      if (!opt_.absorbing_sides[static_cast<std::size_t>(bf.side)]) continue;
      const std::size_t e = static_cast<std::size_t>(bf.elem);
      const auto& fn = mesh::kFaceNodes[static_cast<std::size_t>(bf.side)];
      for (std::size_t s = 0; s < S; ++s) {
        for (int i = 0; i < 4; ++i) {
          const std::size_t base =
              3 *
              static_cast<std::size_t>(
                  mesh.elem_nodes[e][static_cast<std::size_t>(
                      fn[static_cast<std::size_t>(i)])]) *
              S;
          uf[3 * i] = u[base + s];
          uf[3 * i + 1] = u[base + S + s];
          uf[3 * i + 2] = u[base + 2 * S + s];
        }
        std::fill(yf, yf + 12, 0.0);
        fem::face_stacey_apply(mesh.elem_mat[e], mesh.elem_size[e], bf.side,
                               uf, yf);
        for (int i = 0; i < 4; ++i) {
          const std::size_t base =
              3 *
              static_cast<std::size_t>(
                  mesh.elem_nodes[e][static_cast<std::size_t>(
                      fn[static_cast<std::size_t>(i)])]) *
              S;
          y[base + s] += yf[3 * i];
          y[base + S + s] += yf[3 * i + 1];
          y[base + 2 * S + s] += yf[3 * i + 2];
        }
      }
    }
  }
}

void ElasticOperator::expand_constraints(std::span<double> u) const {
  for (const mesh::Constraint& c : mesh_->constraints) {
    for (int comp = 0; comp < 3; ++comp) {
      double v = 0.0;
      for (int m = 0; m < c.n_masters; ++m) {
        v += c.weights[static_cast<std::size_t>(m)] *
             u[3 * static_cast<std::size_t>(c.masters[static_cast<std::size_t>(m)]) +
               static_cast<std::size_t>(comp)];
      }
      u[3 * static_cast<std::size_t>(c.node) + static_cast<std::size_t>(comp)] = v;
    }
  }
}

void ElasticOperator::accumulate_constraints(std::span<double> y) const {
  for (const mesh::Constraint& c : mesh_->constraints) {
    for (int comp = 0; comp < 3; ++comp) {
      const std::size_t hd =
          3 * static_cast<std::size_t>(c.node) + static_cast<std::size_t>(comp);
      for (int m = 0; m < c.n_masters; ++m) {
        y[3 * static_cast<std::size_t>(c.masters[static_cast<std::size_t>(m)]) +
          static_cast<std::size_t>(comp)] +=
            c.weights[static_cast<std::size_t>(m)] * y[hd];
      }
      y[hd] = 0.0;
    }
  }
}

void ElasticOperator::expand_constraints_batch(std::span<double> u,
                                               int n_lanes) const {
  const std::size_t S = static_cast<std::size_t>(n_lanes);
  for (const mesh::Constraint& c : mesh_->constraints) {
    for (int comp = 0; comp < 3; ++comp) {
      for (std::size_t s = 0; s < S; ++s) {
        double v = 0.0;
        for (int m = 0; m < c.n_masters; ++m) {
          v += c.weights[static_cast<std::size_t>(m)] *
               u[(3 * static_cast<std::size_t>(
                      c.masters[static_cast<std::size_t>(m)]) +
                  static_cast<std::size_t>(comp)) *
                     S +
                 s];
        }
        u[(3 * static_cast<std::size_t>(c.node) +
           static_cast<std::size_t>(comp)) *
              S +
          s] = v;
      }
    }
  }
}

void ElasticOperator::accumulate_constraints_batch(std::span<double> y,
                                                   int n_lanes) const {
  const std::size_t S = static_cast<std::size_t>(n_lanes);
  for (const mesh::Constraint& c : mesh_->constraints) {
    for (int comp = 0; comp < 3; ++comp) {
      const std::size_t hd = (3 * static_cast<std::size_t>(c.node) +
                              static_cast<std::size_t>(comp)) *
                             S;
      for (int m = 0; m < c.n_masters; ++m) {
        const std::size_t md =
            (3 * static_cast<std::size_t>(
                   c.masters[static_cast<std::size_t>(m)]) +
             static_cast<std::size_t>(comp)) *
            S;
        const double w = c.weights[static_cast<std::size_t>(m)];
        for (std::size_t s = 0; s < S; ++s) y[md + s] += w * y[hd + s];
      }
      for (std::size_t s = 0; s < S; ++s) y[hd + s] = 0.0;
    }
  }
}

double ElasticOperator::stable_dt(double cfl_fraction) const {
  double dt = std::numeric_limits<double>::max();
  for (std::size_t e = 0; e < mesh_->n_elements(); ++e) {
    dt = std::min(dt, mesh_->elem_size[e] / mesh_->elem_mat[e].vp());
  }
  return cfl_fraction * dt;
}

std::uint64_t ElasticOperator::flops_per_apply() const {
  std::uint64_t f = mesh_->n_elements() * fem::hex_apply_flops(opt_.rayleigh);
  if (opt_.abc == fem::AbcType::kStacey) {
    f += mesh_->boundary_faces.size() * fem::face_stacey_flops();
  }
  f += mesh_->constraints.size() * 3ull * 8ull * 2ull;
  return f;
}

}  // namespace quake::solver
