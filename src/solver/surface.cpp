#include "quake/solver/surface.hpp"

#include <cmath>
#include <stdexcept>

#include "quake/util/io.hpp"

namespace quake::solver {

SurfaceRaster::SurfaceRaster(const mesh::HexMesh& mesh, int img) : img_(img) {
  if (img < 1) throw std::invalid_argument("SurfaceRaster: img >= 1");
  const double extent = mesh.domain.size;
  pixel_node_.assign(static_cast<std::size_t>(img) * img, 0);
  peak_.assign(pixel_node_.size(), 0.0);
  std::vector<double> best(pixel_node_.size(),
                           std::numeric_limits<double>::max());
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    const auto& c = mesh.node_coords[n];
    if (c[2] > 1e-6 * extent) continue;  // surface nodes only
    const int ix = std::min(img - 1, static_cast<int>(c[0] / extent * img));
    const int iy = std::min(img - 1, static_cast<int>(c[1] / extent * img));
    const std::size_t p = static_cast<std::size_t>(iy) * img + ix;
    const double px = (ix + 0.5) * extent / img;
    const double py = (iy + 0.5) * extent / img;
    const double d = std::hypot(c[0] - px, c[1] - py);
    if (d < best[p]) {
      best[p] = d;
      pixel_node_[p] = static_cast<mesh::NodeId>(n);
    }
  }
}

std::vector<double> SurfaceRaster::velocity_magnitude(
    std::span<const double> v) const {
  std::vector<double> mag(pixel_node_.size());
  for (std::size_t p = 0; p < pixel_node_.size(); ++p) {
    const std::size_t b = 3 * static_cast<std::size_t>(pixel_node_[p]);
    mag[p] =
        std::sqrt(v[b] * v[b] + v[b + 1] * v[b + 1] + v[b + 2] * v[b + 2]);
  }
  return mag;
}

std::vector<double> SurfaceRaster::component(std::span<const double> u,
                                             int comp) const {
  std::vector<double> out(pixel_node_.size());
  for (std::size_t p = 0; p < pixel_node_.size(); ++p) {
    out[p] = u[3 * static_cast<std::size_t>(pixel_node_[p]) +
               static_cast<std::size_t>(comp)];
  }
  return out;
}

void SurfaceRaster::update_peak(std::span<const double> magnitudes) {
  for (std::size_t p = 0; p < peak_.size(); ++p) {
    peak_[p] = std::max(peak_[p], magnitudes[p]);
  }
}

void SurfaceRaster::write_pgm(const std::string& path,
                              std::span<const double> values, double lo,
                              double hi) const {
  util::write_pgm(path, values, img_, img_, lo, hi);
}

}  // namespace quake::solver
