#include "quake/solver/sh1d.hpp"

#include <cmath>
#include <stdexcept>

namespace quake::solver {

std::vector<double> sh_layer_surface_response(
    const ShLayerParams& p, const std::function<double(double)>& incident,
    int nt, double dt) {
  if (!(p.thickness > 0.0) || !(p.vs1 > 0.0) || !(p.vs2 > 0.0)) {
    throw std::invalid_argument("sh_layer_surface_response: bad parameters");
  }
  const double z1 = p.rho1 * p.vs1;
  const double z2 = p.rho2 * p.vs2;
  const double trans = 2.0 * z2 / (z1 + z2);     // into the layer
  const double refl = (z1 - z2) / (z1 + z2);     // interface, from above
  const double tau = p.thickness / p.vs1;        // one-way layer travel time

  // Number of reverberations needed for |refl|^n below round-off within the
  // simulated window.
  int n_terms = 1;
  if (std::abs(refl) > 0.0) {
    n_terms = static_cast<int>(std::ceil(
                  std::log(1e-14) / std::log(std::abs(refl)))) +
              1;
  }
  n_terms = std::min(n_terms, static_cast<int>(nt * dt / (2.0 * tau)) + 2);

  std::vector<double> u(static_cast<std::size_t>(nt), 0.0);
  for (int k = 0; k < nt; ++k) {
    const double t = k * dt;
    double s = 0.0;
    double rn = 1.0;
    for (int n = 0; n < n_terms; ++n) {
      s += rn * incident(t - (2 * n + 1) * tau);
      rn *= refl;
    }
    u[static_cast<std::size_t>(k)] = 2.0 * trans * s;
  }
  return u;
}

std::vector<double> sh_halfspace_surface_response(
    const std::function<double(double)>& incident, int nt, double dt) {
  std::vector<double> u(static_cast<std::size_t>(nt));
  for (int k = 0; k < nt; ++k) {
    u[static_cast<std::size_t>(k)] = 2.0 * incident(k * dt);
  }
  return u;
}

}  // namespace quake::solver
