#pragma once

// Surface output extraction: maps free-surface mesh nodes onto a regular
// image raster for the wavefield visualizations of Figs 2.3/2.5 (each pixel
// takes the nearest surface node), and accumulates peak ground velocity.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "quake/mesh/hex_mesh.hpp"

namespace quake::solver {

class SurfaceRaster {
 public:
  // Builds the pixel -> nearest-surface-node map for an img x img raster
  // over the full (x, y) extent of the mesh.
  SurfaceRaster(const mesh::HexMesh& mesh, int img);

  [[nodiscard]] int size() const { return img_; }

  // Velocity magnitude per pixel from a full-length velocity field.
  [[nodiscard]] std::vector<double> velocity_magnitude(
      std::span<const double> v) const;

  // Component (0..2) of a full-length field per pixel.
  [[nodiscard]] std::vector<double> component(std::span<const double> u,
                                              int comp) const;

  // Updates the running per-pixel peak with the given magnitudes.
  void update_peak(std::span<const double> magnitudes);
  [[nodiscard]] std::span<const double> peak() const { return peak_; }

  // Writes a PGM of the given per-pixel values in [lo, hi].
  void write_pgm(const std::string& path, std::span<const double> values,
                 double lo, double hi) const;

 private:
  int img_;
  std::vector<mesh::NodeId> pixel_node_;
  std::vector<double> peak_;
};

}  // namespace quake::solver
