#pragma once

// Baseline stiffness engine: the global assembled sparse (CSR) matrix-vector
// product that node-based codes (the authors' earlier tetrahedral code) use.
// The paper's hexahedral design replaces this with element-local dense
// products specifically because the CSR gather is indirect-addressing-bound;
// the micro benchmark quantifies that gap, and the Fig 2.4 bench uses this
// engine as the independent-discretization cross-check (both engines must
// produce identical fields on the same mesh, to round-off).

#include <cstdint>
#include <span>
#include <vector>

#include "quake/mesh/hex_mesh.hpp"

namespace quake::solver {

class SparseStiffness {
 public:
  // Assembles K = sum_e h_e (lambda_e K_lambda + mu_e K_mu) over all
  // elements (no absorbing-boundary terms), on the full unprojected dof set.
  explicit SparseStiffness(const mesh::HexMesh& mesh);

  // y += K u on full-length interleaved vectors.
  void apply(std::span<const double> u, std::span<double> y) const;

  [[nodiscard]] std::size_t nnz() const { return values_.size(); }
  [[nodiscard]] std::uint64_t flops_per_apply() const { return 2 * nnz(); }
  // Memory footprint in bytes — the paper reports ~10x memory advantage for
  // the matrix-free element engine.
  [[nodiscard]] std::size_t memory_bytes() const {
    return values_.size() * sizeof(double) + cols_.size() * sizeof(std::int32_t) +
           row_ptr_.size() * sizeof(std::int64_t);
  }

 private:
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int32_t> cols_;
  std::vector<double> values_;
};

}  // namespace quake::solver
