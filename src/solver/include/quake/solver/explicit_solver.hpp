#pragma once

// Explicit central-difference time integration of
//   M u'' + (C^AB + alpha M + beta K) u' + (K + K^AB) u = b
// using the paper's diagonalized update (eq. 2.4): the mass matrix and the
// boundary dashpots are lumped, the stiffness-proportional damping is split
// into diagonal and off-diagonal parts so the u^{k+1} coefficient stays
// diagonal, and hanging-node continuity is enforced by the projection
// B^T A B ubar = B^T b (eq. 2.5), which preserves both diagonality and the
// O(N) per-step complexity.

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/source.hpp"
#include "quake/util/flops.hpp"
#include "quake/util/timer.hpp"

namespace quake::solver {

struct SolverOptions {
  double dt = 0.0;            // time step [s]; 0 = choose from the CFL bound
  double cfl_fraction = 0.4;  // safety factor on min(h / vp)
  double t_end = 1.0;         // simulated duration [s]
};

struct Receiver {
  mesh::NodeId node;
  std::vector<std::array<double, 3>> u;  // lane-0 displacement history
  // Histories of lanes 1..n_lanes-1 of a batched solver (empty otherwise);
  // u_lane[s-1] is lane s. Read through receiver_component(r, comp, lane).
  std::vector<std::vector<std::array<double, 3>>> u_lane;
};

class ExplicitSolver {
 public:
  // `n_lanes` > 1 runs a scenario batch: the solver advances n_lanes
  // independent right-hand sides through one element sweep per step, state
  // laid out scenario-major (lane s of dof d at index d * n_lanes + s; see
  // docs/BATCHING.md). Each lane is bitwise identical to a 1-lane solver
  // driven by that lane's sources. Batched mode excludes checkpointing,
  // initial conditions, snapshots, and energy() — the serving path that
  // batches never uses them.
  ExplicitSolver(const ElasticOperator& op, const SolverOptions& opt,
                 int n_lanes = 1);

  // Sources are non-owning; they must outlive run(). `lane` selects which
  // scenario of a batched solver the source drives.
  void add_source(const SourceModel* src, int lane = 0) {
    sources_.at(static_cast<std::size_t>(lane)).push_back(src);
  }

  // Registers a receiver at the node nearest `position`; returns its index.
  std::size_t add_receiver(std::array<double, 3> position);

  // Optional initial state (defaults are quiescent). Both spans are
  // full-length (3 * n_nodes) displacement / velocity fields.
  void set_initial_conditions(std::span<const double> u0,
                              std::span<const double> v0);

  // Forces the given displacement components to zero at every node — the
  // component-mask device that makes 1D column verification problems exact
  // (see tests and the Fig 2.2 bench).
  void set_fixed_components(std::array<bool, 3> fixed) { fixed_ = fixed; }

  // Called every `every` steps when supplied to run().
  using SnapshotFn = std::function<void(int step, double t,
                                        std::span<const double> u,
                                        std::span<const double> v)>;

  void run(const SnapshotFn& snapshot = {}, int snapshot_every = 0);

  // Returns the solver to its just-constructed state so it can be reused
  // for another scenario on the same operator: quiescent state vectors,
  // empty receiver histories (receiver registrations are kept), zeroed
  // timing and flop accounting. Without this, a second run() continues
  // from the final displacement and appends to the first run's histories.
  void reset();

  // Checkpoint/restart: every `every` steps run() writes a CRC32-verified
  // binary snapshot of the integrator state (u, u_prev, dku_prev, receiver
  // histories) to `path` (atomically, via temp file + rename), and resumes
  // from `path` when it holds a valid snapshot. A restarted run is
  // bit-identical to an uninterrupted one. Pass every = 0 to disable
  // periodic writes while still resuming from an existing snapshot.
  // The last `keep` snapshot generations are retained (`path`, `path.1`,
  // ...); a write that fails (e.g. ENOSPC) is logged and counted
  // (`checkpoint/write_failures`) and the run continues with the previous
  // generation intact, and restore falls back through the generations.
  void set_checkpoint(std::string path, int every, int keep = 2);

  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] int n_steps() const { return n_steps_; }
  [[nodiscard]] int n_lanes() const { return lanes_; }
  [[nodiscard]] const std::vector<Receiver>& receivers() const {
    return receivers_;
  }
  // Current displacement field. With n_lanes > 1 this is the scenario-major
  // batch; use displacement_lane to extract one scenario's field.
  [[nodiscard]] std::span<const double> displacement() const { return u_; }
  [[nodiscard]] std::vector<double> displacement_lane(int lane) const;

  // Discrete energy 0.5 v^T M v + 0.5 u^T K u of the current state (v by
  // backward difference); used by the stability/energy-decay tests.
  [[nodiscard]] double energy() const;

  // Performance accounting for the scaling bench.
  [[nodiscard]] double elapsed_seconds() const { return elapsed_; }
  [[nodiscard]] std::uint64_t total_flops() const { return flops_.total(); }

  // One component of a receiver's history as a flat series.
  [[nodiscard]] std::vector<double> receiver_component(std::size_t r, int comp,
                                                       int lane = 0) const;

 private:
  void step(int k);
  void step_batched(int k);
  // Returns the step to resume from (0 when no valid snapshot exists).
  int restore_checkpoint();
  void write_checkpoint(int step) const;

  std::string checkpoint_path_;
  int checkpoint_every_ = 0;
  int checkpoint_keep_ = 2;

  const ElasticOperator* op_;
  SolverOptions opt_;
  double dt_ = 0.0;
  int n_steps_ = 0;
  int lanes_ = 1;
  std::array<bool, 3> fixed_{false, false, false};

  std::vector<std::vector<const SourceModel*>> sources_;  // per lane
  std::vector<Receiver> receivers_;

  // State: u_ = u^k, u_prev_ = u^{k-1}; scratch vectors reused per step.
  // With lanes_ > 1 each is scenario-major (3 * n_nodes * lanes_); the
  // diagonal inv_lhs_ stays per-dof and is shared by every lane.
  std::vector<double> u_, u_prev_, u_next_, f_, ku_, dku_, dku_prev_;
  std::vector<double> inv_lhs_;

  double elapsed_ = 0.0;
  util::FlopCounter flops_;
};

}  // namespace quake::solver
