#pragma once

// The matrix-free elastodynamic operator over a multiresolution hex mesh:
// stiffness (K + K^AB) and Rayleigh stiffness-damping applications as
// element-local dense products, assembled diagonal vectors (lumped mass,
// alpha-mass damping, lumped boundary dashpots, stiffness diagonal), and the
// hanging-node constraint projection u = B ubar (§2.2, eq. 2.5).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "quake/fem/abc.hpp"
#include "quake/fem/rayleigh.hpp"
#include "quake/mesh/hex_mesh.hpp"

namespace quake::solver {

struct OperatorOptions {
  fem::AbcType abc = fem::AbcType::kStacey;
  // Which cube sides absorb, indexed by mesh::BoundarySide. The free
  // surface (kZMin) is traction-free by default; tests and column problems
  // may restrict absorption to selected sides.
  std::array<bool, 6> absorbing_sides = {true, true, true, true, false, true};
  bool rayleigh = false;        // enable material attenuation
  double damping_f_min = 0.05;  // band for the elementwise (alpha, beta) fit
  double damping_f_max = 1.0;
};

class ElasticOperator {
 public:
  ElasticOperator(const mesh::HexMesh& mesh, const OperatorOptions& opt);

  [[nodiscard]] std::size_t n_dofs() const { return 3 * mesh_->n_nodes(); }
  [[nodiscard]] const mesh::HexMesh& mesh() const { return *mesh_; }
  [[nodiscard]] const OperatorOptions& options() const { return opt_; }

  // y += (K + K^AB) u;  y_damp += sum_e beta_e K_e u (when Rayleigh is on
  // and y_damp is non-empty). `u` must already satisfy the hanging
  // constraints (call expand_constraints); results are NOT projected (call
  // accumulate_constraints afterwards). Vectors are full-length (3*n_nodes).
  void apply_stiffness(std::span<const double> u, std::span<double> y,
                       std::span<double> y_damp) const;

  // Stiffness restricted to a subset of elements and boundary faces (face
  // values index into mesh().boundary_faces). The local time stepping
  // scheduler uses this to sweep only the compute classes active at a fine
  // step. Elements stream through the same pack-of-8 kernel as
  // apply_stiffness, so calling it with every element index ascending and
  // every face index is bitwise identical to apply_stiffness.
  void apply_stiffness_subset(std::span<const mesh::ElemId> elems,
                              std::span<const std::int32_t> faces,
                              std::span<const double> u, std::span<double> y,
                              std::span<double> y_damp) const;

  // Scenario-batched apply: `u` / `y` / `y_damp` hold `n_lanes` independent
  // fields in scenario-major layout (lane s of dof d at index
  // d * n_lanes + s; see docs/BATCHING.md), so one element sweep services
  // all lanes through fem::hex_apply_batch. Lane s is bitwise identical to
  // apply_stiffness on that lane alone. n_lanes must not exceed
  // fem::kMaxBatchLanes.
  void apply_stiffness_batch(std::span<const double> u, int n_lanes,
                             std::span<double> y,
                             std::span<double> y_damp) const;

  // Projected diagonal vectors, full-length; hanging entries are zero.
  [[nodiscard]] std::span<const double> lumped_mass() const { return mass_; }
  [[nodiscard]] std::span<const double> alpha_mass() const { return alpha_mass_; }
  [[nodiscard]] std::span<const double> cab_diag() const { return cab_diag_; }
  [[nodiscard]] std::span<const double> k_diag() const { return k_diag_; }
  [[nodiscard]] std::span<const double> beta_k_diag() const {
    return beta_k_diag_;
  }

  // u_hanging = sum_m w_m u_master (the action of B on independent values).
  void expand_constraints(std::span<double> u) const;
  // y_master += w_m * y_hanging, then y_hanging = 0 (the action of B^T).
  void accumulate_constraints(std::span<double> y) const;

  // Scenario-major batched constraint projections (lane-for-lane bitwise
  // identical to the unbatched forms).
  void expand_constraints_batch(std::span<double> u, int n_lanes) const;
  void accumulate_constraints_batch(std::span<double> y, int n_lanes) const;

  // CFL-limited stable time step: min over elements of h / vp, times the
  // given safety fraction.
  [[nodiscard]] double stable_dt(double cfl_fraction) const;

  // Flops of one apply_stiffness sweep (for Mflop/s accounting).
  [[nodiscard]] std::uint64_t flops_per_apply() const;

  [[nodiscard]] std::span<const fem::RayleighCoeffs> element_damping() const {
    return elem_damping_;
  }

 private:
  const mesh::HexMesh* mesh_;
  OperatorOptions opt_;
  std::vector<fem::RayleighCoeffs> elem_damping_;
  std::vector<double> mass_, alpha_mass_, cab_diag_, k_diag_, beta_k_diag_;
};

}  // namespace quake::solver
