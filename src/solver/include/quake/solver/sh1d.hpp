#pragma once

// Closed-form surface response of a soft layer over a halfspace under a
// vertically incident SH displacement pulse — the verification reference
// for Fig 2.2. The exact solution is a ray series: the incident wave
// transmits into the layer (T = 2 Z2 / (Z1 + Z2)), doubles at the free
// surface, and reverberates with interface reflection coefficient
// R = (Z1 - Z2) / (Z1 + Z2), Z = rho * vs.

#include <functional>
#include <vector>

namespace quake::solver {

struct ShLayerParams {
  double thickness;  // layer thickness H [m]
  double rho1, vs1;  // layer
  double rho2, vs2;  // halfspace
};

// `incident(t)` is the displacement history the incident (upgoing) wave
// would produce at the interface depth in the absence of the layer.
// Returns the surface displacement sampled at t = k * dt, k in [0, nt).
std::vector<double> sh_layer_surface_response(
    const ShLayerParams& p, const std::function<double(double)>& incident,
    int nt, double dt);

// Homogeneous halfspace limit: surface displacement = 2 * incident arriving
// at the surface. `incident(t)` gives the incident displacement at the
// surface depth.
std::vector<double> sh_halfspace_surface_response(
    const std::function<double(double)>& incident, int nt, double dt);

}  // namespace quake::solver
