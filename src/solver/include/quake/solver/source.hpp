#pragma once

// Seismic source models. The paper represents earthquake rupture by body
// forces that equilibrate an induced displacement dislocation on the fault
// plane (§2.1); each fault point has a dislocation function g(t) whose time
// derivative is a triangle (Fig 3.1), parameterized by delay time T, rise
// time t0, and dislocation amplitude u0.

#include <array>
#include <span>
#include <vector>

#include "quake/mesh/hex_mesh.hpp"

namespace quake::solver {

// -- source time functions ---------------------------------------------------

// Dislocation ramp g(t; t0): 0 for t < 0, rises to 1 at t = t0 with a
// triangular velocity pulse (isosceles triangle peaking at t0/2). This is
// the paper's slip function, normalized to unit final slip.
double ramp_g(double t, double t0);
// dg/dt: the triangular slip-velocity.
double ramp_g_dot(double t, double t0);

// Ricker wavelet with peak frequency fp, centered at tc (point-source tests
// and the quickstart example).
double ricker(double t, double fp, double tc);

// -- discrete sources ---------------------------------------------------------

// Receives force contributions keyed by (global node, component). The serial
// solver backs this with a full-length vector; the parallel solver's sink
// keeps only rank-local nodes, so sources never materialize a global vector
// on a rank.
class ForceSink {
 public:
  virtual ~ForceSink() = default;
  virtual void add(mesh::NodeId node, int comp, double value) = 0;
};

// ForceSink over a full-length interleaved vector.
class SpanForceSink final : public ForceSink {
 public:
  explicit SpanForceSink(std::span<double> f) : f_(f) {}
  void add(mesh::NodeId node, int comp, double value) override {
    f_[3 * static_cast<std::size_t>(node) + static_cast<std::size_t>(comp)] +=
        value;
  }

 private:
  std::span<double> f_;
};

class SourceModel {
 public:
  virtual ~SourceModel() = default;
  // Emits the body forces at time t into the sink.
  virtual void add_forces(double t, ForceSink& sink) const = 0;

  // Convenience for full-length vectors (length 3 * n_nodes, interleaved).
  void add_forces(double t, std::span<double> f) const {
    SpanForceSink sink(f);
    add_forces(t, sink);
  }
};

// Point force at the node nearest to `position`, along `direction`
// (normalized), with a Ricker time history of peak frequency `fp`.
class PointSource final : public SourceModel {
 public:
  PointSource(const mesh::HexMesh& mesh, std::array<double, 3> position,
              std::array<double, 3> direction, double amplitude, double fp,
              double tc);
  void add_forces(double t, ForceSink& sink) const override;
  using SourceModel::add_forces;
  [[nodiscard]] mesh::NodeId node() const { return node_; }

 private:
  mesh::NodeId node_;
  std::array<double, 3> dir_;
  double amplitude_, fp_, tc_;
};

// Extended vertical strike-slip fault in the plane y = y0, strike along x,
// spanning [x0, x1] x [z_top, z_bot]. Rupture nucleates at the hypocenter
// and spreads at rupture velocity vr; every fault point slips u0 with rise
// time t0 (the paper's idealized Northridge-style source). The dislocation
// is converted to equilibrating body-force couples (a double couple per
// fault patch) injected at the nearest mesh nodes.
class FaultSource final : public SourceModel {
 public:
  struct Spec {
    double y = 0.0;                       // fault plane position [m]
    double x0 = 0.0, x1 = 0.0;            // along-strike extent [m]
    double z_top = 0.0, z_bot = 0.0;      // depth extent [m]
    std::array<double, 2> hypocenter{};   // (x, z) on the plane [m]
    double rupture_velocity = 3000.0;     // [m/s]
    double rise_time = 1.0;               // t0 [s]
    double slip = 1.0;                    // u0 [m]
    double patch_spacing = 0.0;           // [m]; 0 = auto (~2 patches/elem)
  };

  FaultSource(const mesh::HexMesh& mesh, const Spec& spec);
  void add_forces(double t, ForceSink& sink) const override;
  using SourceModel::add_forces;

  [[nodiscard]] std::size_t n_patches() const { return patches_.size(); }

 private:
  struct Patch {
    // Double-couple force items: +/- x-forces offset in y, +/- y-forces
    // offset in x. Four injection nodes, signed directions.
    std::array<mesh::NodeId, 4> nodes;
    std::array<int, 4> component;  // 0 = x, 1 = y
    std::array<double, 4> sign;
    double force_scale;  // mu * A_patch * u0 / arm
    double delay;        // T: hypocentral distance / vr
    double rise_time;
  };
  std::vector<Patch> patches_;
};

// Nearest mesh node to a position (brute force; meshes here are laptop
// scale). Exposed for receiver placement.
mesh::NodeId nearest_node(const mesh::HexMesh& mesh,
                          std::array<double, 3> position);

}  // namespace quake::solver
