#include "quake/solver/source.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace quake::solver {

double ramp_g(double t, double t0) {
  if (t <= 0.0) return 0.0;
  if (t >= t0) return 1.0;
  const double x = t / t0;
  // Integral of the unit-area isosceles triangle of base t0.
  if (x < 0.5) return 2.0 * x * x;
  return 1.0 - 2.0 * (1.0 - x) * (1.0 - x);
}

double ramp_g_dot(double t, double t0) {
  if (t <= 0.0 || t >= t0) return 0.0;
  const double peak = 2.0 / t0;  // unit area
  const double x = t / t0;
  return x < 0.5 ? peak * (2.0 * x) : peak * (2.0 * (1.0 - x));
}

double ricker(double t, double fp, double tc) {
  const double a = std::numbers::pi * fp * (t - tc);
  const double a2 = a * a;
  return (1.0 - 2.0 * a2) * std::exp(-a2);
}

mesh::NodeId nearest_node(const mesh::HexMesh& mesh,
                          std::array<double, 3> position) {
  if (mesh.node_coords.empty()) {
    throw std::invalid_argument("nearest_node: empty mesh");
  }
  mesh::NodeId best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < mesh.node_coords.size(); ++i) {
    // Hanging nodes are dependent; keep sources/receivers on independent
    // grid points.
    if (mesh.node_hanging[i] != 0) continue;
    const auto& c = mesh.node_coords[i];
    const double dx = c[0] - position[0];
    const double dy = c[1] - position[1];
    const double dz = c[2] - position[2];
    const double d = dx * dx + dy * dy + dz * dz;
    if (d < best_d) {
      best_d = d;
      best = static_cast<mesh::NodeId>(i);
    }
  }
  return best;
}

PointSource::PointSource(const mesh::HexMesh& mesh,
                         std::array<double, 3> position,
                         std::array<double, 3> direction, double amplitude,
                         double fp, double tc)
    : node_(nearest_node(mesh, position)),
      dir_(direction),
      amplitude_(amplitude),
      fp_(fp),
      tc_(tc) {
  const double n = std::sqrt(dir_[0] * dir_[0] + dir_[1] * dir_[1] +
                             dir_[2] * dir_[2]);
  if (!(n > 0.0)) throw std::invalid_argument("PointSource: zero direction");
  for (double& d : dir_) d /= n;
}

void PointSource::add_forces(double t, ForceSink& sink) const {
  const double s = amplitude_ * ricker(t, fp_, tc_);
  for (int c = 0; c < 3; ++c) {
    sink.add(node_, c, s * dir_[static_cast<std::size_t>(c)]);
  }
}

FaultSource::FaultSource(const mesh::HexMesh& mesh, const Spec& spec) {
  if (!(spec.x1 > spec.x0) || !(spec.z_bot > spec.z_top)) {
    throw std::invalid_argument("FaultSource: degenerate plane");
  }
  // Patch spacing: default to half the median element size near the fault;
  // approximate with the global median.
  double spacing = spec.patch_spacing;
  if (spacing <= 0.0) {
    std::vector<double> sizes(mesh.elem_size);
    std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2,
                     sizes.end());
    spacing = sizes[sizes.size() / 2];
  }
  const int nx = std::max(1, static_cast<int>((spec.x1 - spec.x0) / spacing));
  const int nz =
      std::max(1, static_cast<int>((spec.z_bot - spec.z_top) / spacing));
  const double dx = (spec.x1 - spec.x0) / nx;
  const double dz = (spec.z_bot - spec.z_top) / nz;
  const double area = dx * dz;

  // Estimate the local shear modulus from the element containing the patch
  // center (via nearest node's touching element material: use a brute scan
  // of elements for the patch center).
  auto mu_at = [&mesh](std::array<double, 3> p) -> double {
    // Find an element whose bounding box contains p (elements are axis-
    // aligned cubes anchored at their minimum corner node, local node 0).
    for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
      const auto& anchor =
          mesh.node_coords[static_cast<std::size_t>(mesh.elem_nodes[e][0])];
      const double h = mesh.elem_size[e];
      if (p[0] >= anchor[0] && p[0] <= anchor[0] + h && p[1] >= anchor[1] &&
          p[1] <= anchor[1] + h && p[2] >= anchor[2] && p[2] <= anchor[2] + h) {
        return mesh.elem_mat[e].mu;
      }
    }
    return 0.0;
  };

  patches_.reserve(static_cast<std::size_t>(nx) * nz);
  for (int i = 0; i < nx; ++i) {
    for (int k = 0; k < nz; ++k) {
      const double x = spec.x0 + (i + 0.5) * dx;
      const double z = spec.z_top + (k + 0.5) * dz;
      const double mu = mu_at({x, spec.y, z});
      if (mu <= 0.0) continue;  // patch outside the mesh
      const double arm = spacing;  // moment arm of the force couples
      Patch p;
      // Couple 1: +/- x-directed forces offset in +/- y (slip direction x,
      // fault normal y). Couple 2: +/- y-directed forces offset in +/- x,
      // completing the (moment-free) double couple.
      p.nodes = {nearest_node(mesh, {x, spec.y + 0.5 * arm, z}),
                 nearest_node(mesh, {x, spec.y - 0.5 * arm, z}),
                 nearest_node(mesh, {x + 0.5 * arm, spec.y, z}),
                 nearest_node(mesh, {x - 0.5 * arm, spec.y, z})};
      p.component = {0, 0, 1, 1};
      p.sign = {+1.0, -1.0, +1.0, -1.0};
      p.force_scale = mu * area * spec.slip / arm;
      const double rx = x - spec.hypocenter[0];
      const double rz = z - spec.hypocenter[1];
      p.delay = std::sqrt(rx * rx + rz * rz) / spec.rupture_velocity;
      p.rise_time = spec.rise_time;
      patches_.push_back(p);
    }
  }
  if (patches_.empty()) {
    throw std::invalid_argument("FaultSource: no patches inside the mesh");
  }
}

void FaultSource::add_forces(double t, ForceSink& sink) const {
  for (const Patch& p : patches_) {
    const double g = ramp_g(t - p.delay, p.rise_time);
    if (g == 0.0) continue;
    const double s = p.force_scale * g;
    for (int j = 0; j < 4; ++j) {
      sink.add(p.nodes[static_cast<std::size_t>(j)],
               p.component[static_cast<std::size_t>(j)],
               s * p.sign[static_cast<std::size_t>(j)]);
    }
  }
}

}  // namespace quake::solver
