#pragma once

// In-process SPMD substrate (see DESIGN.md): rank-per-thread execution with
// typed point-to-point messages, barriers, and reductions — the message-
// passing programming model of the paper's MPI code, runnable on one
// machine. The partitioned data structures and the communication pattern
// are identical to a distributed run; only the transport is shared memory.
//
// Fault tolerance (see DESIGN.md "Fault tolerance & checkpointing"):
//  * Poisoning — when any rank's function throws, every peer blocked in
//    recv/barrier/allreduce wakes and throws RankFailedError instead of
//    hanging forever; run() aggregates all root-cause errors into one
//    report.
//  * Deadlock detection — when every live rank is blocked and no pending
//    message can satisfy any of them, all waiters throw DeadlockError
//    naming each rank's blocked operation (src, tag), so mismatched
//    exchanges are diagnosable rather than eternal.
//  * Deadlines — recv/barrier accept a timeout; expiry throws TimeoutError.
//  * Deterministic fault injection — a seeded FaultPlan installed on the
//    Communicator kills ranks at planned steps and drops / duplicates /
//    corrupts / delays planned messages, so recovery machinery is testable
//    in CI. Each fault fires a planned number of times (default once),
//    surviving across run() retries.
//  * In-place recovery (opt-in via set_recovery) — instead of tearing the
//    whole run down on a rank failure, survivors park in await_recovery()
//    with their thread (and all rank-local state) intact; run()'s monitor
//    joins the dead rank's thread, repairs the communicator with
//    revive(rank, epoch), and respawns only the dead rank. Every message
//    is stamped with the recovery epoch at post time and stale-epoch
//    messages are discarded at receive time, so stragglers from the
//    pre-failure epoch cannot corrupt the restarted exchange.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace quake::par {

class Communicator;

// Base class for all substrate-level failures.
class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown (a) out of blocking calls on surviving ranks once a peer has
// failed, and (b) by Communicator::run() as the aggregated report of every
// root-cause rank failure.
class RankFailedError : public CommError {
 public:
  RankFailedError(const std::string& what, std::vector<int> failed_ranks)
      : CommError(what), failed_(std::move(failed_ranks)) {}
  // Ranks whose function threw (root causes, not poison-wakeup casualties).
  [[nodiscard]] const std::vector<int>& failed_ranks() const {
    return failed_;
  }

 private:
  std::vector<int> failed_;
};

// All live ranks blocked with no satisfiable wait: what() lists each rank's
// blocked operation, e.g. "rank 0: recv(src=1, tag=3)".
class DeadlockError : public CommError {
 public:
  using CommError::CommError;
};

// A recv/barrier deadline expired before the operation completed.
class TimeoutError : public CommError {
 public:
  using CommError::CommError;
};

// Thrown on a rank killed by an installed FaultPlan.
class InjectedFaultError : public CommError {
 public:
  using CommError::CommError;
};

// Thrown by rank code to veto in-place recovery and force a full teardown:
// run()'s recovery monitor never revives after one of these (e.g. the
// recovery restore protocol found no usable common checkpoint, so parking
// and retrying in place could never make progress). The failure is
// aggregated into run()'s RankFailedError like any other, handing control
// back to the outer full-restart supervisor.
class UnrecoverableError : public CommError {
 public:
  using CommError::CommError;
};

// Deterministic, seeded fault schedule. Every fault fires `times` times
// (message faults: exactly once) per install; fired-state survives across
// run() calls, so a supervised retry does not re-hit a consumed fault.
struct FaultPlan {
  std::uint64_t seed = 1;  // drives the corrupted-value perturbation

  // Throw InjectedFaultError on `rank` when it reaches Rank::fault_point(step).
  // Matching is exact, so solvers can expose extra phase-specific fault
  // points under step encodings that cannot collide with real step numbers:
  // run_parallel calls fault_point(k) at the top of step k,
  // fault_point(-(k + 1)) between posting and draining the ghost exchange
  // (so step = -(k + 1) dies mid-exchange at step k), and
  // fault_point(INT_MIN + e) inside the recovery protocol of epoch e >= 1
  // (so step = INT_MIN + 1 dies *during* the first recovery). `times` > 1
  // lets the same planned kill re-fire after an in-place revival replays
  // the step — the same rank can be killed repeatedly across epochs.
  struct Kill {
    int rank = 0;
    int step = 0;
    int times = 1;
  };
  std::vector<Kill> kills;

  enum class MsgAction {
    kDrop,       // message never delivered
    kDuplicate,  // delivered twice
    kCorrupt,    // one element bit-flipped (seeded choice)
    kDelay,      // delivered after the edge's next message (reordering);
                 // flushed if the system would otherwise deadlock
  };
  // Applies `action` to the `occurrence`-th send (0-based) on edge
  // (src, dst, tag).
  struct MsgFault {
    int src = 0;
    int dst = 0;
    int tag = 0;
    int occurrence = 0;
    MsgAction action = MsgAction::kDrop;
  };
  std::vector<MsgFault> msg_faults;
};

// Per-rank handle passed to the SPMD function. Methods may be called
// concurrently from different ranks' threads.
class Rank {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int size() const { return size_; }

  // Blocking tagged point-to-point. Messages between a (src, dst, tag)
  // triple are delivered in order. `timeout_sec` overrides the
  // communicator-wide deadline for this call (0 = use the default;
  // default 0 = wait forever, subject to deadlock detection).
  void send(int dest, int tag, std::span<const double> data);
  std::vector<double> recv(int src, int tag, double timeout_sec = 0.0);

  // Blocking receive into a caller-owned buffer: the message must be
  // exactly `out.size()` doubles (CommError otherwise — a size mismatch on
  // a preplanned exchange is a program error, not a recoverable condition).
  // Drained message storage lands in this rank's buffer pool and the next
  // send draws from it — both without touching the communicator lock — so
  // once every edge has warmed up, a symmetric exchange (every rank
  // receives as many messages per step as it sends) runs with zero heap
  // allocation in steady state.
  void recv_into(int src, int tag, std::span<double> out,
                 double timeout_sec = 0.0);

  // Non-blocking variant of recv_into: returns true and fills `out` if a
  // message is already waiting on (src, tag), false immediately otherwise
  // (never registers in the deadlock detector's blocked table — callers
  // polling several edges must eventually fall back to a blocking
  // recv_into so a genuinely stuck exchange is diagnosed as a deadlock and
  // planned kDelay messages get flushed rather than spun on forever).
  // Same poisoning, stale-epoch, and size-mismatch semantics as recv_into;
  // drained storage is pooled the same way.
  [[nodiscard]] bool try_recv_into(int src, int tag, std::span<double> out);

  // Non-blocking variable-size receive: moves a waiting message on
  // (src, tag) into `out` and returns true, or returns false immediately.
  // For streams whose length the receiver cannot know up front (the
  // buddy-snapshot donation absorb, whose payload grows with the receiver
  // histories it carries). Same poisoning and stale-epoch semantics as
  // try_recv_into; never registers in the deadlock detector.
  [[nodiscard]] bool try_recv(int src, int tag, std::vector<double>& out);

  void barrier(double timeout_sec = 0.0);
  double allreduce_sum(double v);
  double allreduce_max(double v);
  double allreduce_min(double v);

  // All-gather: every rank contributes one double and every rank receives
  // the full vector, indexed by rank id. The recovery agreement uses this
  // to exchange per-rank progress and donation metadata in one collective
  // instead of R point-to-point rounds.
  std::vector<double> allgather(double v);

  // Deterministic fault hook: long-running solvers call this once per time
  // step so an installed FaultPlan can kill this rank at a planned step.
  void fault_point(int step);

  // Total doubles sent by this rank (communication-volume accounting).
  [[nodiscard]] std::size_t doubles_sent() const { return sent_; }

  // In-place recovery rendezvous: call from a RankFailedError handler to
  // park this (surviving) rank's thread while run()'s monitor repairs the
  // communicator. Returns true once the failed ranks have been revived and
  // a new epoch has begun — resume collective work; returns false when
  // recovery is disabled, abandoned, or exhausted — rethrow and let the
  // full-restart supervisor take over.
  [[nodiscard]] bool await_recovery();

  // True on a rank whose thread was respawned by an in-place recovery (its
  // function restarted from the top while the survivors kept their state).
  [[nodiscard]] bool revived() const { return revived_; }

  // Current recovery epoch (0 until the first revival).
  [[nodiscard]] std::uint64_t epoch() const;

 private:
  friend class Communicator;
  Rank(Communicator* comm, int id, int size)
      : comm_(comm), id_(id), size_(size) {}
  Communicator* comm_;
  int id_;
  int size_;
  bool revived_ = false;
  std::size_t sent_ = 0;
  // Rank-local message-storage pool: refilled by recv_into, drawn by send,
  // no locking (only this rank's thread touches it). Storage migrates
  // between ranks' pools with the messages that carry it.
  std::vector<std::vector<double>> pool_;
};

class Communicator {
 public:
  explicit Communicator(int n_ranks);

  // Runs `fn` once per rank, each on its own thread; returns when all
  // complete. If any rank throws, every blocked peer is woken (poisoned
  // communicator) and run() throws RankFailedError aggregating all
  // root-cause errors; a detected deadlock rethrows as DeadlockError.
  // A Communicator is reusable after a failed run.
  void run(const std::function<void(Rank&)>& fn);

  [[nodiscard]] int size() const { return n_ranks_; }

  // Default deadline for blocking operations, in seconds (0 = none).
  void set_timeout(double seconds) { default_timeout_sec_ = seconds; }

  // Installs (replacing any previous) a deterministic fault plan; resets
  // its fired-state.
  void install_fault_plan(const FaultPlan& plan);
  void clear_fault_plan();

  // In-place recovery policy. When enabled, run() keeps a monitor on the
  // calling thread: after a failure it waits for every surviving rank to
  // park in Rank::await_recovery(), joins the failed ranks' threads,
  // revives them (repairing poison and fencing a new epoch), respawns only
  // their threads with Rank::revived() set, and resumes the survivors.
  // Recovery is abandoned (survivors' await_recovery returns false) when
  // the budget is exhausted, any rank already returned normally, or a rank
  // threw UnrecoverableError. Set between runs only.
  struct RecoveryOptions {
    bool enabled = false;
    int max_revives = 1;  // revival rounds per run()
  };
  void set_recovery(const RecoveryOptions& opt) { recovery_ = opt; }

  // Current recovery epoch: 0 at the start of each run(), +1 per revival
  // round. Messages are stamped with the epoch at post time; receives
  // discard stale-epoch messages.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  // Revival rounds consumed by the most recent run() (reset at the start of
  // each run). Read between runs; callers use it to report how much of the
  // ft.max_revives budget a solve actually spent.
  [[nodiscard]] int revives_used() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return revives_used_;
  }

  // Repairs the communicator after `rank` failed: clears its entry from
  // the failure list (poison lifts when no failures remain), flushes every
  // in-flight mailbox to or from it, resets partially-filled barrier /
  // reduction counts (no waiter survives a poisoning, so those counts are
  // pre-failure garbage), and advances the epoch to `new_epoch` so
  // surviving in-flight messages from older epochs are fenced off.
  // run()'s recovery monitor drives this; it is public for substrate tests
  // and does NOT respawn threads or fix live-rank accounting by itself.
  void revive(int rank, std::uint64_t new_epoch);

 private:
  friend class Rank;

  enum class ReduceMode { kSum, kMax, kMin };

  // A posted message plus the recovery epoch it belongs to; receives drop
  // messages whose epoch is not current (pre-failure stragglers).
  struct Msg {
    std::vector<double> data;
    std::uint64_t epoch = 0;
  };

  struct Mailbox {
    std::queue<Msg> messages;
  };

  // What a rank is currently blocked on (for deadlock diagnosis).
  struct Blocked {
    enum class Kind { kNone, kRecv, kBarrier, kReduce, kGather };
    Kind kind = Kind::kNone;
    int src = 0;
    int tag = 0;
    std::size_t gen = 0;  // barrier/reduce/gather generation at block time
  };

  void post(int src, int dst, int tag, std::vector<double> msg);
  std::vector<double> take(int src, int dst, int tag, double timeout_sec);
  // Copies the next message into `out` and returns its spent storage for
  // the caller to recycle (Rank::recv_into feeds it to the rank's pool).
  std::vector<double> take_into(int src, int dst, int tag,
                                std::span<double> out, double timeout_sec);
  // Non-blocking sibling of take_into: pops and copies a waiting message
  // (returning its spent storage through `spent`) or returns false without
  // blocking. Checks poison/deadlock state and drops stale-epoch messages
  // exactly like the blocking path, but never calls block_locked.
  // Variable-size non-blocking pop: moves the waiting message into `out`.
  bool try_take(int src, int dst, int tag, std::vector<double>& out);
  bool try_take_into(int src, int dst, int tag, std::span<double> out,
                     std::vector<double>& spent);
  // Waits until a message on (src, dst, tag) is available (or the run is
  // down / the deadline expires). Shared blocking logic of take/take_into;
  // requires `lock` held, returns with it held.
  void wait_for_message(std::unique_lock<std::mutex>& lock, int src, int dst,
                        int tag, double timeout_sec);
  void barrier_wait(int rank, double timeout_sec);
  double reduce(int rank, double v, ReduceMode mode);
  std::vector<double> gather_all(int rank, double v);
  void fault_point(int rank, int step);
  bool await_recovery(int rank);
  void revive_locked(int rank, std::uint64_t new_epoch);
  // Drops stale-epoch messages from the front of `box`; returns the number
  // dropped (mu_ held).
  std::size_t drop_stale_locked(Mailbox& box);

  // Marks `rank` as failed with `what` and wakes all blocked peers.
  // Requires mu_ NOT held.
  void poison(int rank, const std::string& what);
  // Throws DeadlockError / RankFailedError if the run is down (mu_ held).
  void throw_if_down_locked();
  // Registers/deregisters a blocked wait and re-evaluates the all-ranks-
  // blocked condition (mu_ held).
  void block_locked(int rank, Blocked b);
  void unblock_locked(int rank);
  void check_deadlock_locked();
  void rank_done(int rank);  // live-count bookkeeping on fn exit

  // Effective timeout: per-call override, else communicator default.
  [[nodiscard]] double effective_timeout(double timeout_sec) const {
    return timeout_sec > 0.0 ? timeout_sec : default_timeout_sec_;
  }

  int n_ranks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::tuple<int, int, int>, Mailbox> boxes_;

  // Poison / deadlock state: set on failure, reset by the next run().
  bool poisoned_ = false;
  std::vector<std::pair<int, std::string>> failures_;  // (rank, what)
  bool deadlocked_ = false;
  std::string deadlock_report_;

  // In-place recovery state (monitor in run(); reset by the next run()).
  RecoveryOptions recovery_;
  std::atomic<std::uint64_t> epoch_{0};
  int n_parked_ = 0;     // survivors waiting in await_recovery()
  int n_completed_ = 0;  // ranks whose fn returned normally (cannot rewind)
  int revives_used_ = 0;
  bool recovery_abandoned_ = false;
  bool unrecoverable_ = false;

  // Blocked-rank table for deadlock detection.
  std::vector<Blocked> blocked_;
  int n_blocked_ = 0;
  int n_live_ = 0;

  double default_timeout_sec_ = 0.0;

  // Fault-injection state (persists across run() calls). has_plan_ is
  // atomic so the per-step fault_point hook can bail without touching the
  // contended global mutex when no plan is installed — install/clear happen
  // between runs, never concurrently with rank threads.
  std::atomic<bool> has_plan_{false};
  FaultPlan plan_;
  std::vector<int> kill_fired_;  // fire counts, capped at Kill::times
  std::vector<std::uint8_t> msg_fired_;
  std::map<std::tuple<int, int, int>, int> edge_sends_;  // per-edge counter
  std::map<std::tuple<int, int, int>, Msg> delayed_;

  // Dissemination-free simple barrier / reduction state.
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  int reduce_count_ = 0;
  std::size_t reduce_gen_ = 0;
  double reduce_acc_ = 0.0;
  double reduce_result_ = 0.0;
  int gather_count_ = 0;
  std::size_t gather_gen_ = 0;
  std::vector<double> gather_acc_;
  std::vector<double> gather_result_;
};

}  // namespace quake::par
