#pragma once

// In-process SPMD substrate (see DESIGN.md): rank-per-thread execution with
// typed point-to-point messages, barriers, and reductions — the message-
// passing programming model of the paper's MPI code, runnable on one
// machine. The partitioned data structures and the communication pattern
// are identical to a distributed run; only the transport is shared memory.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <span>
#include <vector>

namespace quake::par {

class Communicator;

// Per-rank handle passed to the SPMD function. Methods may be called
// concurrently from different ranks' threads.
class Rank {
 public:
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int size() const { return size_; }

  // Blocking tagged point-to-point. Messages between a (src, dst, tag)
  // triple are delivered in order.
  void send(int dest, int tag, std::span<const double> data);
  std::vector<double> recv(int src, int tag);

  void barrier();
  double allreduce_sum(double v);
  double allreduce_max(double v);

  // Total doubles sent by this rank (communication-volume accounting).
  [[nodiscard]] std::size_t doubles_sent() const { return sent_; }

 private:
  friend class Communicator;
  Rank(Communicator* comm, int id, int size)
      : comm_(comm), id_(id), size_(size) {}
  Communicator* comm_;
  int id_;
  int size_;
  std::size_t sent_ = 0;
};

class Communicator {
 public:
  explicit Communicator(int n_ranks);

  // Runs `fn` once per rank, each on its own thread; returns when all
  // complete. Exceptions thrown by any rank are rethrown (first one wins).
  void run(const std::function<void(Rank&)>& fn);

  [[nodiscard]] int size() const { return n_ranks_; }

 private:
  friend class Rank;

  struct Mailbox {
    std::queue<std::vector<double>> messages;
  };

  void post(int src, int dst, int tag, std::vector<double> msg);
  std::vector<double> take(int src, int dst, int tag);
  void barrier_wait();
  double reduce(double v, bool max_mode);

  int n_ranks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::tuple<int, int, int>, Mailbox> boxes_;

  // Dissemination-free simple barrier / reduction state.
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  int reduce_count_ = 0;
  std::size_t reduce_gen_ = 0;
  double reduce_acc_ = 0.0;
  double reduce_result_ = 0.0;
};

}  // namespace quake::par
