#pragma once

// Space-filling-curve partitioning of the hexahedral mesh. The transform
// step preserves the octree's Morton (Z-curve) leaf order, so splitting the
// element sequence into contiguous equal-count chunks yields the standard
// SFC partition: compact parts with low surface-to-volume, the quantity
// that drives the parallel efficiency in Table 2.1.
//
// (Substitution note: the paper uses ParMETIS; SFC chunking is the standard
// partitioner for linear octrees and serves the same role — see DESIGN.md.)

#include <vector>

#include "quake/mesh/hex_mesh.hpp"

namespace quake::par {

struct Partition {
  int n_ranks = 1;
  std::vector<int> elem_rank;               // element -> rank
  // node -> owning rank; always a valid rank in [0, n_ranks). Nodes touched
  // by no element ("orphans", possible in hand-built or filtered meshes)
  // are clamped to rank 0 and counted in n_orphan_nodes — they carry no
  // coupled dofs, but a sentinel owner would poison downstream indexing.
  std::vector<int> node_owner;
  std::size_t n_orphan_nodes = 0;
  std::vector<std::vector<mesh::ElemId>> rank_elems;

  // Per-rank statistics used by the scaling bench.
  struct RankStats {
    std::size_t n_elems = 0;
    std::size_t n_nodes = 0;         // nodes touched by local elements
    std::size_t n_shared_nodes = 0;  // nodes also touched by other ranks
  };
  std::vector<RankStats> stats;

  // Load imbalance: max over ranks of (rank elements / mean).
  [[nodiscard]] double imbalance() const;
};

Partition partition_sfc(const mesh::HexMesh& mesh, int n_ranks);

}  // namespace quake::par
