#pragma once

// SPMD explicit wave propagation: the serial update of eq. 2.4 run on a
// partitioned mesh. Each rank owns a contiguous SFC chunk of elements,
// holds copies of every node its elements touch (plus hanging-constraint
// masters as ghosts), computes element-local partial stiffness products,
// and exchanges partial sums on shared nodes each step — the communication
// pattern of the paper's MPI solver.
//
// Communication hiding: each rank's elements are split at setup into a
// boundary set (touching any shared node, directly or through a hanging-
// node constraint) and an interior set. A step computes boundary partials
// first, posts the coalesced per-neighbor messages, computes everything
// interior while those messages are in flight, and only then drains and
// sums — the classic interior/halo overlap of the paper's MPI solver.
//
// Determinism: the full sum at a shared node is accumulated in ascending
// rank order on every copy, so all copies of a node compute bit-identical
// updates, a run at a given rank count is exactly repeatable, and the
// parallel run matches the serial run to rounding (not bitwise: each rank
// pre-folds its own elements' contributions before the exchange, which
// regroups the floating-point sum relative to the serial element order).

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "quake/lts/clustering.hpp"
#include "quake/mesh/hex_mesh.hpp"
#include "quake/obs/report.hpp"
#include "quake/par/partition.hpp"
#include "quake/solver/elastic_operator.hpp"
#include "quake/solver/explicit_solver.hpp"
#include "quake/solver/source.hpp"

namespace quake::par {

struct FaultPlan;  // communicator.hpp

// A buddy-snapshot donation the victim could not use: the stream never
// arrived within the recovery deadline (donor dead or stalled mid-
// donation) or its payload failed the size/step integrity check. Handled
// inside the recovery protocol — the victim votes its restore failed and
// every rank falls back to tier-2 rollback — so a broken donation degrades
// the recovery by one tier instead of aborting it into a full restart.
class DonationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ParallelResult {
  std::vector<double> u_final;  // gathered full-length displacement
  int n_steps = 0;
  double dt = 0.0;

  // Cooperative early stop (see RunControl): true when the run agreed to
  // stop at a step boundary before n_steps; steps_completed is the agreed
  // stop step (== n_steps on a full run). State and receiver histories
  // cover exactly steps_completed steps.
  bool cancelled = false;
  int steps_completed = 0;

  // In-place revival rounds this run consumed, summed across supervised
  // restarts (0 on a clean run). Always populated, independent of the obs
  // enable flag — the service health snapshot reads it.
  int revives_used = 0;

  struct RankStats {
    std::size_t n_elems = 0;
    std::size_t n_boundary_elems = 0;  // touch a shared node (sent early)
    std::size_t n_interior_elems = 0;  // computed while messages fly
    std::size_t n_local_nodes = 0;
    std::size_t n_neighbors = 0;
    std::size_t doubles_sent_per_step = 0;  // communication volume
    std::uint64_t flops = 0;                // total over the run
    // Element-kernel applications over the run (the `par/element_updates`
    // counter's value): steps x elements under global dt, less under LTS
    // where coarse clusters skip steps — summed over ranks and divided
    // into n_steps * total elements it yields the updates-saved ratio.
    std::uint64_t element_updates = 0;
    double compute_seconds = 0.0;
    double exchange_seconds = 0.0;
    // Fraction of the exchange hidden behind interior compute:
    // overlap_window / (overlap_window + drain_wait); 0 with no neighbors.
    double overlap_fraction = 0.0;
  };
  std::vector<RankStats> rank_stats;

  // Telemetry (populated only when quake::obs is enabled): the per-rank
  // metric registries, gathered to rank 0 through the communicator exactly
  // as an MPI code would, plus their min/mean/max-across-ranks merge.
  // Supervised retries accumulate into the same per-rank registries, so a
  // recovered run's report includes the work of its failed attempts.
  std::vector<obs::RankReport> obs_reports;
  obs::MergedReport obs_summary;

  // One history per requested receiver (displacement per step).
  std::vector<std::vector<std::array<double, 3>>> receiver_histories;
};

// Fault-tolerance policy for run_parallel (see DESIGN.md "Fault tolerance
// & checkpointing" and "Localized recovery"). With a checkpoint directory
// set, each rank writes a CRC32-verified snapshot of its state (u, u_prev,
// dku_prev, step counter, owned receiver histories) every
// `checkpoint_every` steps, retaining the last `checkpoint_keep`
// generations per rank; a snapshot that fails to write (e.g. ENOSPC) is
// logged and counted (`checkpoint/write_failures`) and the solve continues
// with the previous generation as the restore target.
//
// Recovery is three-tiered (see DESIGN.md "Localized recovery"). With
// `max_revives` > 0 a rank failure is first repaired IN PLACE — surviving
// rank threads park with their partition, ghost plans, and exchange
// buffers intact; only the dead rank's thread is respawned:
//
//  * Tier 1 (replay, the common path): each revived rank restores the
//    newest donated buddy snapshot (or its newest disk generation) and
//    replays forward using the delta-compressed per-neighbor outbound
//    message logs the survivors kept. Survivors keep their current state,
//    re-serve the log, and roll back ZERO steps. Several simultaneously
//    failed ranks recover concurrently on this tier as long as no two
//    victims share a ghost edge (disjoint victims — survivors serve each
//    victim's log independently; `par/multi_victim_replays` counts these).
//  * Tier 2 (donation + rollback): when the log cannot cover the replay
//    span (ring overflow, overlapping victims, a donation that timed out
//    or failed its integrity check), every rank rolls back to the newest
//    common state — in-memory shadows for survivors, the donated buddy
//    snapshot or a disk generation for the revived rank.
//  * Tier 3 (full restart): when no common state exists or the revival
//    budget is spent, the supervisor rewinds every rank to the last
//    agreed snapshot and re-runs, up to `max_retries` times with
//    exponential backoff. Detected deadlocks are never retried (they are
//    deterministic program errors).
//
// All tiers resume bit-identically to an uninterrupted run.
struct FaultToleranceOptions {
  std::string checkpoint_dir;         // empty = checkpointing off
  int checkpoint_every = 0;           // steps between snapshots (0 = off)
  int checkpoint_keep = 2;            // snapshot generations kept per rank
  int max_retries = 0;                // supervised restarts on rank failure
  int max_revives = 0;                // in-place rank revivals before full
                                      // restart (0 = always full-restart)
  double backoff_base_seconds = 0.0;  // sleep base, doubled per retry
  double timeout_seconds = 0.0;       // per blocking comm op (0 = infinite)
  const FaultPlan* fault_plan = nullptr;  // injected faults (testing)

  // Survivor state donation: at each checkpoint barrier every rank streams
  // its state to buddy rank (r+1)%R, which holds it in (thread-local)
  // memory; on revival the buddy donates it back over the communicator so
  // the revived rank restores the newest checkpoint without touching disk.
  // Only meaningful with in-place recovery armed (max_revives > 0).
  bool state_donation = true;

  // Donation exchange mode. true (default): the snapshot stream is posted
  // fire-and-forget at the checkpoint barrier and absorbed non-blockingly
  // (the barrier bracketing the capture guarantees it is already in the
  // mailbox), so donation adds no synchronous wait to the step loop — the
  // `recover/donate/wait` scope records the (near-zero) absorb time.
  // false: the pre-PR-9 blocking ring exchange, kept for A/B measurement
  // (bench_table2_1's donation_sync/donation_async rows).
  bool async_donation = true;

  // Outbound message log retained per neighbor for tier-1 replay, in steps:
  // -1 = auto (2 * checkpoint_every + 8: two checkpoint intervals plus
  // exchange slack — the delta-compressed rings make the longer span cost
  // about what one uncompressed interval did, and it keeps replay feasible
  // when a donation generation is lost with the thread holding it), 0 =
  // logging off (every in-place recovery falls back to tier-2 rollback),
  // > 0 = explicit ring capacity.
  int message_log_steps = -1;
};

// Cooperative per-run control for service workloads: a cancel flag and a
// wall-clock deadline, both checked at step boundaries. Every
// `check_every` steps each rank evaluates its local stop condition and the
// ranks agree by all-reduce, so all of them leave the step loop at the
// same step and the exchange pattern never tears. With no flag and no
// deadline the step loop carries zero extra synchronization.
struct RunControl {
  const std::atomic<bool>* cancel = nullptr;  // set by another thread
  double deadline_seconds = 0.0;  // wall-clock budget from run start; 0 = none
  int check_every = 1;            // step interval between agreements

  [[nodiscard]] bool active() const {
    return cancel != nullptr || deadline_seconds > 0.0;
  }
};

// One scenario of a batched solve (see ParallelSetup::run_batch and
// docs/BATCHING.md): its sources and receiver positions. Sources are
// non-owning and must outlive the solve.
struct BatchScenario {
  std::vector<const solver::SourceModel*> sources;
  std::vector<std::array<double, 3>> receivers;
};

// The reusable setup phase of the parallel solver — everything run_parallel
// builds before the SPMD launch, amortized across many solves (the paper's
// point: mesh/setup is expensive, each solve is O(N) per step). Holds the
// ElasticOperator, the per-rank ghost plans, the communication-hiding
// element split, the persistent exchange buffers, and the communicator;
// `run` executes one scenario (sources, receivers, duration) on that fixed
// discretization. The referenced mesh and partition must outlive the setup.
//
// dt is part of the shared discretization: it is fixed at construction
// (from `base.dt` or the CFL bound), so every scenario through one setup
// integrates on the same time axis and a warm run is bit-identical to a
// cold run with the same options.
//
// Runs are serialized internally (the exchange buffers are part of the
// shared state); concurrent callers queue on a mutex.
class ParallelSetup {
 public:
  ParallelSetup(const mesh::HexMesh& mesh, const Partition& part,
                const solver::OperatorOptions& op_opt,
                const solver::SolverOptions& base);
  ~ParallelSetup();
  ParallelSetup(const ParallelSetup&) = delete;
  ParallelSetup& operator=(const ParallelSetup&) = delete;

  [[nodiscard]] double dt() const;
  [[nodiscard]] int n_ranks() const;
  [[nodiscard]] const mesh::HexMesh& mesh() const;
  // Steps a scenario of duration `t_end` will take on the shared dt.
  [[nodiscard]] int n_steps(double t_end) const;

  // The ghost-exchange adjacency: neighbor_ranks()[r] lists the ranks rank
  // r exchanges shared-node partials with each step (sorted ascending).
  // This is the edge set the multi-victim recovery agreement calls
  // "disjoint" over — fault-injection tests and the fault-sweep bench use
  // it to pick victim sets that provably do or do not share an edge.
  [[nodiscard]] std::vector<std::vector<int>> neighbor_ranks() const;

  // One forward solve on the shared setup. A failed run (rank failure with
  // retries exhausted) throws exactly as run_parallel does and leaves the
  // setup reusable: the next run starts from clean per-request state.
  ParallelResult run(double t_end,
                     std::span<const solver::SourceModel* const> sources,
                     std::span<const std::array<double, 3>> receiver_positions,
                     const FaultToleranceOptions& ft = {},
                     const RunControl& control = {});

  // S scenarios on the shared setup, advanced in lockstep: one element
  // sweep, one constraint fold, and one ghost-exchange round per step
  // service every scenario, with state scenario-major (lane s of dof d at
  // index d * S + s) and each per-neighbor message carrying all S partial
  // sums. Scenario s's result is bitwise identical to run() with that
  // scenario's sources and receivers — the lane loop is innermost
  // everywhere, so per-lane floating-point order never changes (see
  // docs/BATCHING.md). At most fem::kMaxBatchLanes scenarios per call.
  //
  // Fault tolerance is deliberately unsupported (checkpoint state would be
  // S-entangled); the serving layer only batches requests that carry no FT
  // options. RunControl cancellation/deadline applies to the whole batch:
  // either every scenario runs to completion or all stop at the same step.
  std::vector<ParallelResult> run_batch(
      double t_end, std::span<const BatchScenario> scenarios,
      const RunControl& control = {});

  // One forward solve under clustered local time stepping (see docs/LTS.md
  // and quake::lts). Elements are binned into power-of-two CFL rate
  // clusters against the setup's shared dt; each node advances at its own
  // rate, the boundary/interior split and coalesced exchange become
  // per-(cluster, neighbor) payloads — at fine step k a message carries
  // only the shared nodes whose rate divides k, so a quiet coarse cluster
  // exchanges at its own rate and a step with no active shared nodes on an
  // edge sends nothing at all. `rank_stats[r].element_updates` (and the
  // `par/element_updates` counter) measure the work actually done.
  //
  // With `lts.enabled == false` this forwards to run() (bitwise-identical
  // global-dt path); a mesh that clusters into a single rate is likewise
  // bitwise-identical to run(). Multi-rate runs agree with run() within
  // the tolerance tier documented in docs/LTS.md. Rayleigh damping and
  // fault tolerance are not supported (invalid_argument).
  ParallelResult run_lts(double t_end,
                         std::span<const solver::SourceModel* const> sources,
                         std::span<const std::array<double, 3>> receiver_positions,
                         const lts::LtsOptions& lts,
                         const RunControl& control = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Runs the partitioned simulation with `part.n_ranks` in-process ranks.
ParallelResult run_parallel(
    const mesh::HexMesh& mesh, const Partition& part,
    const solver::OperatorOptions& op_opt, const solver::SolverOptions& so,
    std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions);

// As above, with fault tolerance: supervised retry on rank failure,
// checkpoint/restart, comm deadlines, and deterministic fault injection.
ParallelResult run_parallel(
    const mesh::HexMesh& mesh, const Partition& part,
    const solver::OperatorOptions& op_opt, const solver::SolverOptions& so,
    std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions,
    const FaultToleranceOptions& ft);

// Analytic machine model used to translate measured per-rank work and
// communication volumes into the parallel-efficiency column of Table 2.1
// (this host has one core, so thread wall-clock speedup is not meaningful;
// the model is evaluated with AlphaServer-class parameters — see DESIGN.md).
struct MachineModel {
  double flops_per_sec = 5.0e8;   // ~ Alpha EV68 sustained on this kernel
  double bytes_per_sec = 2.0e8;   // Quadrics-class per-link bandwidth
  double latency_sec = 5.0e-6;    // per message
};

// Modeled parallel efficiency: serial time / (R * slowest rank time).
double modeled_efficiency(const ParallelResult& r, const MachineModel& m);

}  // namespace quake::par
