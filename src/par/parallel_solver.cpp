#include "quake/par/parallel_solver.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "quake/fem/hex_element.hpp"
#include "quake/obs/obs.hpp"
#include "quake/obs/report.hpp"
#include "quake/par/communicator.hpp"
#include "quake/util/checkpoint.hpp"
#include "quake/util/delta_codec.hpp"
#include "quake/util/timer.hpp"

namespace quake::par {
namespace {

struct LocalConstraint {
  int node;
  std::array<int, 8> masters;
  std::array<double, 8> weights;
  int n;
};

struct Neighbor {
  int rank;
  std::vector<int> shared;  // local node indices, ascending global id
};

// Everything a rank needs that depends only on the discretization — built
// serially in ParallelSetup's constructor and shared (immutably, except the
// exchange buffers) by every solve through that setup. Per-scenario state
// (displacement vectors, receiver assignments, histories) lives in
// ParallelSetup::Impl::run so requests are isolated from each other.
struct RankLocal {
  std::vector<mesh::ElemId> elems;
  std::vector<mesh::NodeId> nodes;  // sorted global ids
  std::unordered_map<mesh::NodeId, int> local_of;
  std::vector<std::array<int, 8>> conn;
  struct Face {
    int elem;  // index into `elems`
    mesh::BoundarySide side;
  };
  std::vector<Face> faces;
  std::vector<LocalConstraint> cons;
  std::vector<double> mass, am, bk, cab, inv_lhs;  // per local dof
  std::vector<std::uint8_t> owned;                 // per local node
  std::vector<Neighbor> neighbors;                 // ascending rank
  std::vector<int> all_shared;                     // union of neighbor lists

  // Communication-hiding split (see the step loop): an element/face/
  // constraint is "boundary" iff it can contribute to a shared-node partial
  // — directly, or through the hanging-node fold into a shared master. The
  // boundary pieces are computed before the exchange is posted; everything
  // interior runs while the messages are in flight. Each list preserves the
  // original relative order, so per-rank partials stay bit-identical to an
  // unsplit sweep.
  std::vector<int> boundary_elems, interior_elems;  // indices into `elems`
  std::vector<Face> boundary_faces, interior_faces;
  std::vector<LocalConstraint> cons_boundary, cons_interior;

  // Persistent exchange storage: send/recv buffers per neighbor and the
  // first-occurrence map for re-inserting this rank's own partials, all
  // sized at setup so the step loop performs no heap allocation. These are
  // the one mutable piece of shared state, which is why runs through a
  // setup are serialized.
  std::vector<std::vector<double>> sendbuf, recvbuf;
  std::vector<std::vector<int>> own_first;  // per neighbor: first-occurrence
                                            // indices into its shared list
  std::vector<int> nb_of_rank;              // rank -> neighbor index or -1
  std::size_t doubles_per_step = 0;         // exchange volume, setup-derived

  // Batched-exchange siblings of sendbuf/recvbuf, sized pack * 3 *
  // shared * S on each run_batch call (S varies per batch; resizing
  // happens under run_mutex before the SPMD launch).
  std::vector<std::vector<double>> sendbuf_b, recvbuf_b;

  // Per-neighbor arrival flags for the arrival-order drain, reset each
  // step; lives here (not on the step-loop stack) so the steady-state step
  // performs no allocation.
  std::vector<std::uint8_t> nb_arrived;
};

// ForceSink that keeps only this rank's nodes.
class RankForceSink final : public solver::ForceSink {
 public:
  RankForceSink(const std::unordered_map<mesh::NodeId, int>& local_of,
                std::vector<double>& f)
      : local_of_(&local_of), f_(&f) {}
  void add(mesh::NodeId node, int comp, double value) override {
    auto it = local_of_->find(node);
    if (it == local_of_->end()) return;
    (*f_)[3 * static_cast<std::size_t>(it->second) +
          static_cast<std::size_t>(comp)] += value;
  }

 private:
  const std::unordered_map<mesh::NodeId, int>* local_of_;
  std::vector<double>* f_;
};

// As RankForceSink, writing one lane of a scenario-major batched force
// vector (lane s of local dof d at index d * n_lanes + s).
class RankLaneForceSink final : public solver::ForceSink {
 public:
  RankLaneForceSink(const std::unordered_map<mesh::NodeId, int>& local_of,
                    std::vector<double>& f, int n_lanes, int lane)
      : local_of_(&local_of),
        f_(&f),
        lanes_(static_cast<std::size_t>(n_lanes)),
        lane_(static_cast<std::size_t>(lane)) {}
  void add(mesh::NodeId node, int comp, double value) override {
    auto it = local_of_->find(node);
    if (it == local_of_->end()) return;
    (*f_)[(3 * static_cast<std::size_t>(it->second) +
           static_cast<std::size_t>(comp)) *
              lanes_ +
          lane_] += value;
  }

 private:
  const std::unordered_map<mesh::NodeId, int>* local_of_;
  std::vector<double>* f_;
  std::size_t lanes_, lane_;
};

std::string ckpt_path(const std::string& dir, int rank) {
  return dir + "/rank" + std::to_string(rank) + ".ckpt";
}

// Communicator tag reserved for the end-of-run telemetry gather (the ghost
// exchange uses tag 0; receiving on a distinct tag keeps the two streams
// from interleaving).
constexpr int kObsGatherTag = 9;

// Communicator tag for survivor state donation: the buddy-capture shift
// exchange at each checkpoint barrier and the donation stream during
// recovery. Distinct from the ghost exchange (0) and the obs gather (9).
constexpr int kDonationTag = 10;

// A snapshot is usable by this rank iff its step is inside the run and its
// state arrays match this rank's dof count and owned receiver set.
bool snapshot_usable(const util::Snapshot& s, std::size_t nd, int n_steps,
                     const std::vector<std::pair<int, int>>& receivers) {
  if (s.step < 1 || s.step >= n_steps) return false;
  if (s.field("u").size() != nd || s.field("u_prev").size() != nd ||
      s.field("dku_prev").size() != nd) {
    return false;
  }
  for (const auto& [ri, ln] : receivers) {
    if (s.field("recv" + std::to_string(ri)).size() !=
        3 * static_cast<std::size_t>(s.step)) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// ParallelSetup: the amortizable half of run_parallel. The constructor is
// the old serial setup phase verbatim (operator, ghost sets with constraint
// closure, neighbor lists, boundary/interior split, exchange buffers); run()
// is the old SPMD execution phase with all per-scenario state hoisted into
// run-local variables.
// ---------------------------------------------------------------------------

struct ParallelSetup::Impl {
  const mesh::HexMesh& mesh;
  const Partition& part;
  const solver::OperatorOptions op_opt;
  const solver::ElasticOperator op;
  const int R;
  const bool rayleigh;
  const double dt;
  const double cfl;
  std::vector<RankLocal> locals;
  Communicator comm;
  std::mutex run_mutex;  // exchange buffers are shared: one solve at a time

  Impl(const mesh::HexMesh& mesh_in, const Partition& part_in,
       const solver::OperatorOptions& oo, const solver::SolverOptions& base)
      : mesh(mesh_in),
        part(part_in),
        op_opt(oo),
        op(mesh_in, oo),
        R(part_in.n_ranks),
        rayleigh(oo.rayleigh),
        dt(base.dt > 0.0 ? base.dt : op.stable_dt(base.cfl_fraction)),
        cfl(base.cfl_fraction),
        comm(part_in.n_ranks) {
    // ---- per-rank node sets with constraint closure ------------------------
    std::vector<std::vector<std::uint8_t>> has_node(
        static_cast<std::size_t>(R),
        std::vector<std::uint8_t>(mesh.n_nodes(), 0));
    for (std::size_t e = 0; e < mesh.n_elements(); ++e) {
      auto& flags = has_node[static_cast<std::size_t>(part.elem_rank[e])];
      for (mesh::NodeId n : mesh.elem_nodes[e]) {
        flags[static_cast<std::size_t>(n)] = 1;
      }
    }
    // Ghost the masters of every locally-touched hanging node. Constraint
    // accumulation (B^T) is linear, so each rank applies it to its own partial
    // sums BEFORE the exchange; a rank that holds a master but not the hanging
    // node receives the folded contribution through the master's exchanged
    // partials, and no transitive closure is needed (keeping ghost sets — and
    // hence communication volume — proportional to the partition surface).
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
      auto& flags = has_node[r];
      for (const mesh::Constraint& c : mesh.constraints) {
        if (flags[static_cast<std::size_t>(c.node)] == 0) continue;
        for (int m = 0; m < c.n_masters; ++m) {
          flags[static_cast<std::size_t>(
              c.masters[static_cast<std::size_t>(m)])] = 1;
        }
      }
    }

    locals.resize(static_cast<std::size_t>(R));
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
      RankLocal& L = locals[r];
      L.elems = part.rank_elems[r];
      for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
        if (has_node[r][n] != 0) {
          L.local_of.emplace(static_cast<mesh::NodeId>(n),
                             static_cast<int>(L.nodes.size()));
          L.nodes.push_back(static_cast<mesh::NodeId>(n));
        }
      }
      L.conn.reserve(L.elems.size());
      for (mesh::ElemId e : L.elems) {
        std::array<int, 8> c;
        for (int i = 0; i < 8; ++i) {
          c[static_cast<std::size_t>(i)] = L.local_of.at(
              mesh.elem_nodes[static_cast<std::size_t>(e)]
                             [static_cast<std::size_t>(i)]);
        }
        L.conn.push_back(c);
      }
      for (const mesh::BoundaryFace& bf : mesh.boundary_faces) {
        if (part.elem_rank[static_cast<std::size_t>(bf.elem)] !=
            static_cast<int>(r)) {
          continue;
        }
        const auto it =
            std::lower_bound(L.elems.begin(), L.elems.end(), bf.elem);
        L.faces.push_back({static_cast<int>(it - L.elems.begin()), bf.side});
      }
      for (const mesh::Constraint& c : mesh.constraints) {
        auto it = L.local_of.find(c.node);
        if (it == L.local_of.end()) continue;
        LocalConstraint lc;
        lc.node = it->second;
        lc.n = c.n_masters;
        for (int m = 0; m < c.n_masters; ++m) {
          lc.masters[static_cast<std::size_t>(m)] =
              L.local_of.at(c.masters[static_cast<std::size_t>(m)]);
          lc.weights[static_cast<std::size_t>(m)] =
              c.weights[static_cast<std::size_t>(m)];
        }
        L.cons.push_back(lc);
      }
      const std::size_t nl = L.nodes.size();
      L.mass.resize(3 * nl);
      L.am.resize(3 * nl);
      L.bk.resize(3 * nl);
      L.cab.resize(3 * nl);
      L.inv_lhs.resize(3 * nl);
      L.owned.resize(nl);
      for (std::size_t i = 0; i < nl; ++i) {
        const std::size_t g = static_cast<std::size_t>(L.nodes[i]);
        L.owned[i] = part.node_owner[g] == static_cast<int>(r) ? 1 : 0;
        for (int c = 0; c < 3; ++c) {
          const std::size_t ld = 3 * i + static_cast<std::size_t>(c);
          const std::size_t gd = 3 * g + static_cast<std::size_t>(c);
          L.mass[ld] = op.lumped_mass()[gd];
          L.am[ld] = op.alpha_mass()[gd];
          L.bk[ld] = op.beta_k_diag()[gd];
          L.cab[ld] = op.cab_diag()[gd];
          const double lhs =
              L.mass[ld] + 0.5 * dt * (L.am[ld] + L.bk[ld] + L.cab[ld]);
          L.inv_lhs[ld] = lhs > 0.0 ? 1.0 / lhs : 0.0;
        }
      }
    }

    // Sharing lists -> pairwise neighbor structures, ordered by global id.
    for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
      int count = 0;
      for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
        count += has_node[r][n];
      }
      if (count < 2) continue;
      for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
        if (has_node[r][n] == 0) continue;
        RankLocal& L = locals[r];
        const int li = L.local_of.at(static_cast<mesh::NodeId>(n));
        L.all_shared.push_back(li);
        for (std::size_t s = 0; s < static_cast<std::size_t>(R); ++s) {
          if (s == r || has_node[s][n] == 0) continue;
          // Find or create the neighbor entry (neighbors kept ascending).
          auto it = std::find_if(L.neighbors.begin(), L.neighbors.end(),
                                 [&](const Neighbor& nb) {
                                   return nb.rank == static_cast<int>(s);
                                 });
          if (it == L.neighbors.end()) {
            L.neighbors.push_back({static_cast<int>(s), {}});
            it = L.neighbors.end() - 1;
          }
          it->shared.push_back(li);
        }
      }
    }
    for (auto& L : locals) {
      std::sort(
          L.neighbors.begin(), L.neighbors.end(),
          [](const Neighbor& a, const Neighbor& b) { return a.rank < b.rank; });
    }

    // Boundary/interior split and persistent exchange buffers. A node can
    // contribute to a shared-node partial iff it is shared itself, or it is a
    // hanging node with a contributing master (masters are never hanging —
    // constraint chains are resolved at mesh build — so one pass suffices).
    const std::size_t pack = rayleigh ? 2u : 1u;
    for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
      RankLocal& L = locals[r];
      std::vector<std::uint8_t> affects(L.nodes.size(), 0);
      for (int li : L.all_shared) affects[static_cast<std::size_t>(li)] = 1;
      for (const LocalConstraint& c : L.cons) {
        if (affects[static_cast<std::size_t>(c.node)] != 0) continue;
        for (int m = 0; m < c.n; ++m) {
          if (affects[static_cast<std::size_t>(
                  c.masters[static_cast<std::size_t>(m)])] != 0) {
            affects[static_cast<std::size_t>(c.node)] = 1;
            break;
          }
        }
      }
      std::vector<std::uint8_t> elem_boundary(L.elems.size(), 0);
      for (std::size_t le = 0; le < L.elems.size(); ++le) {
        for (int i = 0; i < 8; ++i) {
          if (affects[static_cast<std::size_t>(
                  L.conn[le][static_cast<std::size_t>(i)])] != 0) {
            elem_boundary[le] = 1;
            break;
          }
        }
        (elem_boundary[le] != 0 ? L.boundary_elems : L.interior_elems)
            .push_back(static_cast<int>(le));
      }
      for (const RankLocal::Face& face : L.faces) {
        (elem_boundary[static_cast<std::size_t>(face.elem)] != 0
             ? L.boundary_faces
             : L.interior_faces)
            .push_back(face);
      }
      for (const LocalConstraint& c : L.cons) {
        (affects[static_cast<std::size_t>(c.node)] != 0 ? L.cons_boundary
                                                        : L.cons_interior)
            .push_back(c);
      }

      L.sendbuf.resize(L.neighbors.size());
      L.recvbuf.resize(L.neighbors.size());
      L.nb_arrived.resize(L.neighbors.size());
      L.own_first.resize(L.neighbors.size());
      L.nb_of_rank.assign(static_cast<std::size_t>(R), -1);
      std::vector<std::uint8_t> seen(L.nodes.size(), 0);
      for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
        const auto& sh = L.neighbors[nb].shared;
        L.sendbuf[nb].resize(pack * 3 * sh.size());
        L.recvbuf[nb].resize(pack * 3 * sh.size());
        L.nb_of_rank[static_cast<std::size_t>(L.neighbors[nb].rank)] =
            static_cast<int>(nb);
        L.doubles_per_step += pack * 3 * sh.size();
        for (std::size_t i = 0; i < sh.size(); ++i) {
          const std::size_t li = static_cast<std::size_t>(sh[i]);
          if (seen[li] != 0) continue;
          seen[li] = 1;
          L.own_first[nb].push_back(static_cast<int>(i));
        }
      }
    }
  }

  ParallelResult run(double t_end,
                     std::span<const solver::SourceModel* const> sources,
                     std::span<const std::array<double, 3>> receiver_positions,
                     const FaultToleranceOptions& ft,
                     const RunControl& control);

  std::vector<ParallelResult> run_batch(double t_end,
                                        std::span<const BatchScenario> scenarios,
                                        const RunControl& control);

  ParallelResult run_lts(double t_end,
                         std::span<const solver::SourceModel* const> sources,
                         std::span<const std::array<double, 3>> receiver_positions,
                         const lts::LtsOptions& lts, const RunControl& control);

  // Lazily-built LTS plan (clustering + per-rank sweep/exchange sublists),
  // cached across run_lts calls with the same max_rate. Guarded by run_mutex.
  struct LtsPlan;
  std::unique_ptr<LtsPlan> lts_plan;
  int lts_plan_max_rate = 0;
  const LtsPlan& get_lts_plan(int max_rate);
};

ParallelResult ParallelSetup::Impl::run(
    double t_end, std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions,
    const FaultToleranceOptions& ft, const RunControl& control) {
  const std::lock_guard<std::mutex> run_lock(run_mutex);
  const int n_steps = static_cast<int>(std::ceil(t_end / dt));

  // Per-scenario receiver assignment: each receiver goes to the owner of its
  // nearest node. Kept outside RankLocal so a request's histories cannot
  // leak into the next solve through the shared setup.
  ParallelResult result;
  result.dt = dt;
  result.n_steps = n_steps;
  result.steps_completed = n_steps;
  result.receiver_histories.assign(receiver_positions.size(), {});
  std::vector<std::vector<std::pair<int, int>>> recv_of(
      static_cast<std::size_t>(R));
  for (std::size_t ri = 0; ri < receiver_positions.size(); ++ri) {
    const mesh::NodeId n = solver::nearest_node(mesh, receiver_positions[ri]);
    const int owner = part.node_owner[static_cast<std::size_t>(n)];
    const auto it = locals[static_cast<std::size_t>(owner)].local_of.find(n);
    if (it == locals[static_cast<std::size_t>(owner)].local_of.end()) {
      // Only reachable when the nearest node is an orphan (touched by no
      // element): it belongs to no rank's local set and has no dynamics.
      throw std::invalid_argument(
          "run_parallel: receiver " + std::to_string(ri) + " snaps to node " +
          std::to_string(n) + ", which no element touches (orphan node)");
    }
    recv_of[static_cast<std::size_t>(owner)].emplace_back(static_cast<int>(ri),
                                                          it->second);
    result.receiver_histories[ri].reserve(static_cast<std::size_t>(n_steps));
  }

  result.u_final.assign(3 * mesh.n_nodes(), 0.0);
  result.rank_stats.assign(static_cast<std::size_t>(R), {});

  const fem::HexReference& ref = fem::HexReference::get();
  const auto elem_damping = op.element_damping();

  // ---- SPMD execution ------------------------------------------------------
  const bool ckpt_on = !ft.checkpoint_dir.empty();
  if (ckpt_on) std::filesystem::create_directories(ft.checkpoint_dir);

  // Per-run fault policy on the shared communicator: install THIS run's plan
  // (or clear a previous run's), reset the timeout, and re-arm recovery —
  // comm.run() itself resets mailbox/barrier/poison state, so a request that
  // died last run leaves nothing behind for this one.
  if (ft.fault_plan != nullptr) {
    comm.install_fault_plan(*ft.fault_plan);
  } else {
    comm.clear_fault_plan();
  }
  comm.set_timeout(ft.timeout_seconds > 0.0 ? ft.timeout_seconds : 0.0);
  // In-place recovery needs snapshots to roll back to; without them every
  // failure goes straight to the full-restart supervisor as before.
  const bool in_place = ckpt_on && ft.max_revives > 0;
  comm.set_recovery({in_place, ft.max_revives});
  const int ckpt_keep = std::max(1, ft.checkpoint_keep);
  // Tier-1 machinery (see FaultToleranceOptions): buddy-shadow donation and
  // the per-neighbor outbound message log. Both only pay their cost when
  // in-place recovery is armed.
  const bool donate_on = in_place && ft.state_donation && R > 1;
  const bool donate_async = donate_on && ft.async_donation;
  // Auto capacity spans TWO checkpoint intervals: delta compression (see
  // util::DeltaRing) keeps the longer ring near the memory cost of one
  // uncompressed interval, and the extra reach keeps tier-1 feasible even
  // when a buddy's held donation generation is one interval stale (its
  // absorb was cut short by the failure itself).
  const int log_cap =
      !in_place ? 0
                : (ft.message_log_steps >= 0
                       ? ft.message_log_steps
                       : 2 * std::max(1, ft.checkpoint_every) + 8);
  const bool log_on = log_cap > 0;

  // Cancellation/deadline agreement cadence (see RunControl).
  const bool ctl_active = control.active();
  const int ctl_every = std::max(1, control.check_every);
  const auto run_start = std::chrono::steady_clock::now();

  // Per-rank telemetry registries, declared outside the supervised-retry
  // loop so a retried run accumulates into the same registries (the report
  // of a recovered run then shows the cost of recovery, not just the final
  // successful attempt). Fresh per run: a request's report describes that
  // request only.
  std::vector<obs::Registry> rank_regs(static_cast<std::size_t>(R));

  const auto spmd_body = [&](Rank& rank) {
    const std::size_t r = static_cast<std::size_t>(rank.id());
    const obs::ScopedRegistry obs_install(rank_regs[r]);
    obs::counter_add("ft/attempts", 1);
    if (rank.revived()) obs::counter_add("par/ranks_revived", 1);
    obs::gauge_set("par/epoch", static_cast<double>(rank.epoch()));
    RankLocal& L = locals[r];
    const auto& RV = recv_of[r];  // this rank's (receiver, local node) pairs
    const std::size_t nd = 3 * L.nodes.size();
    std::vector<double> u(nd, 0.0), u_prev(nd, 0.0), u_next(nd, 0.0);
    std::vector<double> f(nd, 0.0), ku(nd, 0.0), dku(nd, 0.0),
        dku_prev(nd, 0.0);

    // compute: all element/face/update work; exchange: post + drain;
    // overlap: the interior-compute window with messages in flight; drain:
    // the exposed (blocked) tail of the exchange.
    util::StopWatch compute_watch, exchange_watch, overlap_watch, drain_watch;
    std::uint64_t flops = 0;
    std::uint64_t elem_updates = 0;
    obs::gauge_set("par/dt", dt);
    // Seed the comm counters so every rank's registry (and hence every
    // merged report row, including 1-rank runs) carries them explicitly.
    obs::counter_add("comm/msgs_sent", 0);
    obs::counter_add("comm/bytes_sent", 0);

    // In-memory rollback target: a copy of the state vectors taken at each
    // checkpoint barrier. On an in-place recovery, survivors roll back from
    // this shadow without touching disk — only the revived rank (whose
    // thread, and hence shadow, died with it) reads its snapshot back.
    struct Shadow {
      std::int64_t step = -1;  // -1 = nothing captured yet
      std::vector<double> u, u_prev, dku_prev;
    } shadow;
    const std::string path = ckpt_path(ft.checkpoint_dir, rank.id());

    // Buddy-held donation state: at each checkpoint barrier rank r streams
    // [step | u | u_prev | dku_prev | flattened owned histories] to rank
    // (r+1)%R, which holds it HERE — in this thread's frame, so a buddy
    // that dies loses what it held, exactly like remote node memory. On
    // revival the buddy donates it back and the revived rank restores the
    // newest checkpoint without touching disk. With async donation the
    // stream is posted fire-and-forget and absorbed non-blockingly (the
    // barrier bracketing the capture guarantees it has landed); the step
    // header is what lets the absorber date a payload it did not wait for,
    // and the communicator's epoch fence discards any donation posted
    // before a revival, so a stale pre-failure generation can never be
    // absorbed after one (the absorb falls back to the previous absorbed
    // generation, which the two-interval log ring still covers).
    struct BuddyHeld {
      std::int64_t step = -1;  // -1 = holding nothing
      std::vector<double> state;  // headered payload, streamed back as-is
    } held;
    const int buddy = (rank.id() + 1) % R;          // I donate to buddy
    const int pred = (rank.id() + R - 1) % R;       // I hold pred's state
    const auto rv_count = static_cast<std::size_t>(RV.size());

    // Non-blocking absorb of any donation parked on the pred edge; keeps
    // the newest by header step. Returns true if something was absorbed.
    std::vector<double> donation_buf;
    const auto absorb_donations = [&]() -> bool {
      bool got = false;
      try {
        while (rank.try_recv(pred, kDonationTag, donation_buf)) {
          if (donation_buf.empty()) continue;
          const auto step = static_cast<std::int64_t>(donation_buf[0]);
          if (step > held.step) {
            held.step = step;
            held.state = std::move(donation_buf);
            donation_buf.clear();
          }
          got = true;
        }
      } catch (const RankFailedError&) {
        // The absorb is opportunistic, never a failure-detection point:
        // with a peer already down, simultaneous planned kills must still
        // reach their own fault points, and survivors' next REAL comm op
        // sees the poison anyway. Whatever was absorbed stands.
      }
      return got;
    };

    // Tier-1 outbound message log: per neighbor, the last `log_cap` posted
    // coalesced exchange payloads, keyed by step, delta-compressed against
    // the previous step on the same edge (util::DeltaRing — XOR + zero-run
    // coding, bit-exact). During a replay recovery survivors re-serve
    // these so only the revived ranks re-execute steps.
    std::vector<util::DeltaRing> msg_log;
    msg_log.reserve(L.neighbors.size());
    for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
      msg_log.emplace_back(L.sendbuf[nb].size(), log_cap);
    }

    // Per-rank resume points of the last recovery agreement: rank s will
    // re-enter the step loop at start_of[s]; frontier = max(start_of). A
    // rank only posts step k to a neighbor that will consume it (k >=
    // start_of[nb]), and step-loop collectives (cancel agreement,
    // checkpoint barriers) are suppressed below the frontier, where ranks
    // execute different step ranges. On a normal run every entry equals
    // k0, so every post and collective happens as before.
    std::vector<int> start_of(static_cast<std::size_t>(R), 0);
    int frontier = 0;
    int k_done = -1;  // last fully completed step (state + history updated)

    // True once this rank's state vectors describe a definite step (fresh
    // zeros or a completed restore). A freshly respawned victim has no
    // state until recovery gives it some.
    bool has_state = false;

    // Retained disk generations that load and fit this rank, newest first,
    // with the corruption flag the generation-fallback counter needs.
    struct DiskCands {
      std::vector<std::pair<int, util::Snapshot>> snaps;  // (gen, snapshot)
      bool newest_corrupt = false;
    };
    const auto load_disk_candidates = [&]() -> DiskCands {
      DiskCands d;
      for (int gen = 0; gen < ckpt_keep; ++gen) {
        util::Snapshot s;
        const util::SnapshotLoadStatus st = util::load_snapshot_status(
            util::snapshot_generation_path(path, gen), &s);
        if (gen == 0 && st == util::SnapshotLoadStatus::kCorrupt) {
          d.newest_corrupt = true;
        }
        if (st == util::SnapshotLoadStatus::kOk &&
            snapshot_usable(s, nd, n_steps, RV)) {
          d.snaps.emplace_back(gen, std::move(s));
        }
      }
      return d;
    };

    // Restore this rank's vectors and owned histories from a full disk
    // snapshot, seeding the rollback shadow with the restored cut.
    const auto restore_from_snapshot = [&](const util::Snapshot& s) {
      const int k0 = static_cast<int>(s.step);
      const auto su = s.field("u");
      const auto sp = s.field("u_prev");
      const auto sd = s.field("dku_prev");
      std::copy(su.begin(), su.end(), u.begin());
      std::copy(sp.begin(), sp.end(), u_prev.begin());
      std::copy(sd.begin(), sd.end(), dku_prev.begin());
      for (const auto& [ri, ln] : RV) {
        const auto flat = s.field("recv" + std::to_string(ri));
        auto& hist = result.receiver_histories[static_cast<std::size_t>(ri)];
        hist.assign(static_cast<std::size_t>(k0), {});
        for (std::size_t i = 0; i < hist.size(); ++i) {
          hist[i] = {flat[3 * i], flat[3 * i + 1], flat[3 * i + 2]};
        }
      }
      shadow.step = k0;
      shadow.u = u;
      shadow.u_prev = u_prev;
      shadow.dku_prev = dku_prev;
    };

    // Receive the donated buddy snapshot from rank (r+1)%R and restore
    // state + owned histories from it. The payload layout mirrors the
    // capture in the checkpoint block: [step | u | u_prev | dku_prev |
    // flattened owned histories]. The wait is a non-blocking poll with a
    // deadline rather than a blocking recv: a donor that dies mid-stream
    // poisons the communicator and the poll throws RankFailedError, while
    // a donor whose stream silently never arrives (dropped message, donor
    // wedged) runs the poll into the deadline — the victim can no longer
    // hang here. The deadline and any size/step mismatch throw
    // DonationError, which the recovery agreement's confirmation round
    // turns into a collective tier-2 fallback instead of aborting the
    // recovery outright.
    const auto restore_from_donation = [&](int step) {
      constexpr double kDonationWaitSeconds = 2.0;
      constexpr int kDonationYieldPasses = 64;
      std::vector<double> pay;
      const auto t0 = std::chrono::steady_clock::now();
      int passes = 0;
      for (;;) {
        if (rank.try_recv(buddy, kDonationTag, pay)) {
          if (!pay.empty() && static_cast<std::int64_t>(pay[0]) == step) {
            break;
          }
          // A leftover generation on this edge (the epoch fence already
          // dropped anything from before the revival): discard, keep
          // draining — the donor streams the advertised step behind it.
          continue;
        }
        const double waited =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        if (waited > kDonationWaitSeconds) {
          obs::scope_record("recover/donate/wait", waited);
          throw DonationError(
              "state donation to rank " + std::to_string(rank.id()) +
              " from donor " + std::to_string(buddy) + " missed the " +
              std::to_string(kDonationWaitSeconds) + " s recovery deadline");
        }
        if (++passes < kDonationYieldPasses) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      obs::scope_record(
          "recover/donate/wait",
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
      const std::size_t want =
          1 + 3 * nd + 3 * static_cast<std::size_t>(step) * rv_count;
      if (pay.size() != want) {
        throw DonationError(
            "state donation payload mismatch on rank " +
            std::to_string(rank.id()) + ": got " +
            std::to_string(pay.size()) + " doubles, expected " +
            std::to_string(want));
      }
      const auto b = pay.begin() + 1;
      const auto n = static_cast<std::ptrdiff_t>(nd);
      std::copy(b, b + n, u.begin());
      std::copy(b + n, b + 2 * n, u_prev.begin());
      std::copy(b + 2 * n, b + 3 * n, dku_prev.begin());
      std::size_t off = 1 + 3 * nd;
      for (const auto& [ri, ln] : RV) {
        auto& hist = result.receiver_histories[static_cast<std::size_t>(ri)];
        hist.assign(static_cast<std::size_t>(step), {});
        for (std::size_t i = 0; i < hist.size(); ++i) {
          hist[i] = {pay[off], pay[off + 1], pay[off + 2]};
          off += 3;
        }
      }
      shadow.step = step;
      shadow.u = u;
      shadow.u_prev = u_prev;
      shadow.dku_prev = dku_prev;
      obs::counter_add("par/donation_restores", 1);
    };

    // ---- checkpoint restore: agree on a common restart step --------------
    // Each rank proposes its newest usable state — the in-memory shadow if
    // it has one, a donated buddy snapshot offered by the caller, or the
    // newest usable snapshot among its retained generations; the collective
    // restart step is the minimum proposal, and a second round confirms
    // every rank can serve it. On a fresh start a disagreement falls back
    // to from-scratch (always correct, at worst wasteful); during an
    // in-place recovery it throws UnrecoverableError instead, handing the
    // failure to the full-restart supervisor (an in-place from-scratch
    // "resume" would silently discard survivors' progress).
    const auto attempt_restore = [&](bool recovering,
                                     std::int64_t donated) -> int {
      int k0 = 0;
      if (ckpt_on) {
        std::optional<obs::ScopeTimer> agree_scope;
        if (recovering) agree_scope.emplace("agree");
        const DiskCands disk = load_disk_candidates();
        double proposal =
            shadow.step >= 1 ? static_cast<double>(shadow.step) : -1.0;
        if (donated >= 1) {
          proposal = std::max(proposal, static_cast<double>(donated));
        }
        for (const auto& [gen, s] : disk.snaps) {
          proposal = std::max(proposal, static_cast<double>(s.step));
        }
        const double agreed = rank.allreduce_min(proposal);
        const bool from_shadow =
            shadow.step >= 1 && static_cast<double>(shadow.step) == agreed;
        const bool from_donation = !from_shadow && donated >= 1 &&
                                   static_cast<double>(donated) == agreed;
        const util::Snapshot* chosen = nullptr;
        int chosen_gen = 0;
        if (!from_shadow && !from_donation) {
          for (const auto& [gen, s] : disk.snaps) {
            if (static_cast<double>(s.step) == agreed) {
              chosen = &s;
              chosen_gen = gen;
              break;
            }
          }
        }
        const double all_can = rank.allreduce_min(
            agreed >= 1.0 && (from_shadow || from_donation || chosen != nullptr)
                ? 1.0
                : 0.0);
        if (all_can == 1.0 && recovering) {
          // Donors need to know which revived ranks restore by donation:
          // rank (v+1)%R streams what it holds when v asks for it.
          const std::vector<double> wants =
              rank.allgather(from_donation ? 1.0 : 0.0);
          if (donate_on && wants[static_cast<std::size_t>(pred)] == 1.0) {
            rank.send(pred, kDonationTag, held.state);
            obs::counter_add("par/donations_served", 1);
          }
        }
        agree_scope.reset();
        if (all_can == 1.0) {
          std::optional<obs::ScopeTimer> restore_scope;
          if (recovering) restore_scope.emplace("restore");
          k0 = static_cast<int>(agreed);
          if (from_shadow) {
            std::copy(shadow.u.begin(), shadow.u.end(), u.begin());
            std::copy(shadow.u_prev.begin(), shadow.u_prev.end(),
                      u_prev.begin());
            std::copy(shadow.dku_prev.begin(), shadow.dku_prev.end(),
                      dku_prev.begin());
            // Histories are append-only and bit-identical across replays:
            // rolling back is a truncation.
            for (const auto& [ri, ln] : RV) {
              result.receiver_histories[static_cast<std::size_t>(ri)].resize(
                  static_cast<std::size_t>(k0));
            }
          } else if (from_donation) {
            try {
              restore_from_donation(k0);
            } catch (const DonationError& e) {
              // Tier 2 already is the fallback: with the donation agreed on
              // as the only common state, losing it leaves nothing to roll
              // back to — hand the failure to the full-restart supervisor.
              throw UnrecoverableError(std::string("rollback restore: ") +
                                       e.what());
            }
          } else {
            restore_from_snapshot(*chosen);
            if (disk.newest_corrupt && chosen_gen > 0) {
              // The newest generation existed but failed its CRC; the
              // rotation chain carried an older intact cut instead.
              obs::counter_add("checkpoint/generation_fallbacks", 1);
            }
          }
        } else if (recovering) {
          throw UnrecoverableError(
              "in-place recovery: no usable common checkpoint (agreed step " +
              std::to_string(static_cast<long long>(agreed)) +
              "), falling back to full restart");
        }
      } else if (recovering) {
        throw UnrecoverableError(
            "in-place recovery without checkpointing, falling back");
      }
      if (k0 > 0) {
        obs::counter_add("ckpt/restores", 1);
        obs::counter_add("ckpt/restored_steps", k0);
      } else {
        // Fresh (or retried-from-scratch) start: drop any partial histories
        // a failed attempt appended to this rank's owned receivers.
        for (const auto& [ri, ln] : RV) {
          result.receiver_histories[static_cast<std::size_t>(ri)].clear();
        }
      }
      has_state = true;
      return k0;
    };

    // ---- three-tier recovery agreement (see DESIGN.md "Localized
    // recovery"). Tier 1: the victim restores a donated (or disk) snapshot
    // and replays forward on logged messages while survivors keep their
    // state — zero survivor rollback. Tier 2: the log cannot cover the
    // replay span, so everyone rolls back to the newest common state via
    // attempt_restore (the victim's proposal still includes the donated
    // step). Tier 3 is attempt_restore throwing UnrecoverableError into
    // the full-restart supervisor. Returns this rank's resume step and
    // fills start_of / frontier. ----
    const auto attempt_recover = [&]() -> int {
      const bool victim = !has_state;
      // A donation posted before the failure may still sit unabsorbed on
      // the pred edge: absorb it now — try_recv's epoch fence discards
      // anything stamped before the revival, so only a cut donated in this
      // epoch (i.e. by a surviving pred re-streaming) can land here, and
      // the inventory round below advertises whatever newest generation
      // this rank actually holds.
      if (donate_on) absorb_donations();
      std::optional<obs::ScopeTimer> agree_scope(std::in_place, "agree");
      // Round 1: donation inventory. Every rank advertises the step it
      // holds for its predecessor; victim v reads slot (v+1)%R.
      const std::vector<double> held_steps =
          rank.allgather(donate_on ? static_cast<double>(held.step) : -1.0);
      std::int64_t donated = -1;
      if (victim && held_steps[static_cast<std::size_t>(buddy)] >= 1.0) {
        donated = static_cast<std::int64_t>(
            held_steps[static_cast<std::size_t>(buddy)]);
      }

      // Each victim picks its replay source: the donated snapshot if one
      // is held (a victim whose buddy died with it falls to disk — the
      // buddy's fresh thread advertises -1), else its newest full disk
      // generation. Survivors resume where they stopped (k_done + 1)
      // without touching their state.
      std::int64_t my_start = -1;
      bool use_donation = false;
      std::optional<util::Snapshot> disk_pick;
      bool disk_gen_fallback = false;
      if (!victim) {
        my_start = k_done + 1;
      } else if (log_on) {
        use_donation = donated >= 1;
        my_start = donated;
        if (!use_donation) {
          DiskCands disk = load_disk_candidates();
          for (auto& [gen, s] : disk.snaps) {
            if (s.step > my_start) {
              my_start = s.step;
              disk_gen_fallback = disk.newest_corrupt && gen > 0;
              disk_pick = std::move(s);
            }
          }
        }
      }

      // Round 2: roles (0 = survivor, 1 = victim restoring by donation —
      // its buddy must stream — 2 = victim restoring from disk). Round 3:
      // per-rank resume points. With simultaneous multi-rank failures
      // every rank learns the whole victim set here, so survivors serve
      // each victim's replay span independently.
      const std::vector<double> roles =
          rank.allgather(victim ? (use_donation ? 1.0 : 2.0) : 0.0);
      const std::vector<double> starts =
          rank.allgather(static_cast<double>(my_start));
      int n_victims = 0;
      for (const double role : roles) {
        if (role != 0.0) ++n_victims;
      }

      // Tier-1 feasibility: every rank must be able to re-serve, from its
      // outbound log, every step a behind neighbor will re-consume (steps
      // [start_of[neighbor], my resume point) per edge). This is also
      // what gates OVERLAPPING victims: a ghost edge between two victims
      // at the SAME resume step has an empty span on both sides (they
      // regenerate each other's messages live while marching forward
      // together), but victims at different resume steps would need a
      // span no fresh thread's empty log can serve, so those degrade to
      // tier-2 rollback.
      bool ok = log_on && my_start >= 0;
      for (std::size_t s = 0; ok && s < starts.size(); ++s) {
        ok = starts[s] >= 0.0;
      }
      for (std::size_t nb = 0; ok && nb < L.neighbors.size(); ++nb) {
        const int m = L.neighbors[nb].rank;
        const int lo = static_cast<int>(starts[static_cast<std::size_t>(m)]);
        for (int k = lo; ok && k < static_cast<int>(my_start); ++k) {
          ok = msg_log[nb].contains(k);
        }
      }
      const bool all_ok = rank.allreduce_min(ok ? 1.0 : 0.0) == 1.0;

      if (!all_ok) {
        // Tier 2: donation-aware rollback.
        agree_scope.reset();
        obs::counter_add("par/replay_fallbacks", 1);
        const int k0 = attempt_restore(/*recovering=*/true, donated);
        for (auto& ring : msg_log) ring.clear();
        std::fill(start_of.begin(), start_of.end(), k0);
        frontier = k0;
        return k0;
      }

      // Tier 1. Donors stream what they hold; victims restore; survivors
      // keep their current state.
      if (donate_on && roles[static_cast<std::size_t>(pred)] == 1.0) {
        rank.send(pred, kDonationTag, held.state);
        obs::counter_add("par/donations_served", 1);
      }
      agree_scope.reset();
      bool restore_ok = true;
      {
        std::optional<obs::ScopeTimer> restore_scope(std::in_place,
                                                     "restore");
        if (victim) {
          try {
            if (use_donation) {
              restore_from_donation(static_cast<int>(my_start));
            } else {
              restore_from_snapshot(*disk_pick);
              if (disk_gen_fallback) {
                obs::counter_add("checkpoint/generation_fallbacks", 1);
              }
            }
            obs::counter_add("ckpt/restores", 1);
            obs::counter_add("ckpt/restored_steps",
                             static_cast<std::int64_t>(my_start));
            has_state = true;
          } catch (const DonationError& e) {
            // Broken donation (missed deadline, bad size/step): vote the
            // restore down instead of aborting — every rank degrades to
            // tier-2 together in the confirmation round below.
            std::fprintf(stderr, "[quake::par] rank %d: %s\n", rank.id(),
                         e.what());
            restore_ok = false;
          }
        }
      }
      // Confirmation round, BEFORE any log is served: had a victim's
      // restore failed after survivors already re-served their logs, the
      // replayed messages would sit in FIFO order ahead of the tier-2
      // resume's live traffic and corrupt it. Only a unanimous restore
      // lets replay proceed.
      if (rank.allreduce_min(restore_ok ? 1.0 : 0.0) != 1.0) {
        obs::counter_add("par/replay_fallbacks", 1);
        const int k0 = attempt_restore(/*recovering=*/true, /*donated=*/-1);
        for (auto& ring : msg_log) ring.clear();
        std::fill(start_of.begin(), start_of.end(), k0);
        frontier = k0;
        return k0;
      }
      {
        std::optional<obs::ScopeTimer> replay_scope(std::in_place, "replay");
        for (std::size_t s = 0; s < starts.size(); ++s) {
          start_of[s] = static_cast<int>(starts[s]);
        }
        frontier = 0;
        for (const int s : start_of) frontier = std::max(frontier, s);
        // Re-serve the log in ascending step order per edge, before any
        // live post of this epoch: tagged FIFO delivery plus the epoch
        // fence hands each behind rank exactly the message sequence it
        // would have received from an undisturbed peer. With several
        // victims each edge's span is decoded and served independently.
        for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
          const int m = L.neighbors[nb].rank;
          msg_log[nb].for_each(
              start_of[static_cast<std::size_t>(m)],
              static_cast<int>(my_start),
              [&](int /*step*/, std::span<const double> payload) {
                rank.send(m, /*tag=*/0, payload);
              });
        }
        if (victim) {
          obs::counter_add("par/steps_replayed",
                           frontier - static_cast<int>(my_start));
        }
        // Counted once per recovery event (rank 0 speaks for the
        // agreement), not per rank, so the summed counter reads as "how
        // many times did a single tier-1 pass repair several ranks".
        if (n_victims >= 2 && rank.id() == 0) {
          obs::counter_add("par/multi_victim_replays", 1);
        }
      }
      return static_cast<int>(my_start);
    };

    auto expand = [&](std::vector<double>& x) {
      for (const LocalConstraint& c : L.cons) {
        for (int comp = 0; comp < 3; ++comp) {
          double v = 0.0;
          for (int m = 0; m < c.n; ++m) {
            v += c.weights[static_cast<std::size_t>(m)] *
                 x[3 * static_cast<std::size_t>(
                          c.masters[static_cast<std::size_t>(m)]) +
                   static_cast<std::size_t>(comp)];
          }
          x[3 * static_cast<std::size_t>(c.node) +
            static_cast<std::size_t>(comp)] = v;
        }
      }
    };
    auto accumulate = [&](std::vector<double>& x,
                          const std::vector<LocalConstraint>& cons) {
      for (const LocalConstraint& c : cons) {
        for (int comp = 0; comp < 3; ++comp) {
          const std::size_t hd = 3 * static_cast<std::size_t>(c.node) +
                                 static_cast<std::size_t>(comp);
          for (int m = 0; m < c.n; ++m) {
            x[3 * static_cast<std::size_t>(
                     c.masters[static_cast<std::size_t>(m)]) +
              static_cast<std::size_t>(comp)] +=
                c.weights[static_cast<std::size_t>(m)] * x[hd];
          }
          x[hd] = 0.0;
        }
      }
    };

    // One element-kernel application, shared by both phases of the split.
    double ue[fem::kHexDofs], ye[fem::kHexDofs], de[fem::kHexDofs];
    auto apply_elems = [&](const std::vector<int>& list) {
      for (const int le_i : list) {
        const std::size_t le = static_cast<std::size_t>(le_i);
        const std::size_t ge = static_cast<std::size_t>(L.elems[le]);
        const auto& c = L.conn[le];
        for (int i = 0; i < 8; ++i) {
          const std::size_t base =
              3 * static_cast<std::size_t>(c[static_cast<std::size_t>(i)]);
          ue[3 * i] = u[base];
          ue[3 * i + 1] = u[base + 1];
          ue[3 * i + 2] = u[base + 2];
        }
        std::fill(ye, ye + fem::kHexDofs, 0.0);
        if (rayleigh) std::fill(de, de + fem::kHexDofs, 0.0);
        const double h = mesh.elem_size[ge];
        const vel::Material& mat = mesh.elem_mat[ge];
        fem::hex_apply(ref, ue, h * mat.lambda, h * mat.mu, ye,
                       rayleigh ? elem_damping[ge].beta : 0.0,
                       rayleigh ? de : nullptr);
        for (int i = 0; i < 8; ++i) {
          const std::size_t base =
              3 * static_cast<std::size_t>(c[static_cast<std::size_t>(i)]);
          ku[base] += ye[3 * i];
          ku[base + 1] += ye[3 * i + 1];
          ku[base + 2] += ye[3 * i + 2];
          if (rayleigh) {
            dku[base] += de[3 * i];
            dku[base + 1] += de[3 * i + 1];
            dku[base + 2] += de[3 * i + 2];
          }
        }
        flops += fem::hex_apply_flops(rayleigh);
      }
      elem_updates += list.size();
      obs::counter_add("par/elements_processed",
                       static_cast<std::int64_t>(list.size()));
      obs::counter_add("par/element_updates",
                       static_cast<std::int64_t>(list.size()));
    };
    auto apply_faces = [&](const std::vector<RankLocal::Face>& list) {
      if (op_opt.abc != fem::AbcType::kStacey) return;
      double uf[12], yf[12];
      for (const auto& face : list) {
        if (!op_opt.absorbing_sides[static_cast<std::size_t>(face.side)]) {
          continue;
        }
        const std::size_t ge = static_cast<std::size_t>(
            L.elems[static_cast<std::size_t>(face.elem)]);
        const auto& fn = mesh::kFaceNodes[static_cast<std::size_t>(face.side)];
        const auto& c = L.conn[static_cast<std::size_t>(face.elem)];
        for (int i = 0; i < 4; ++i) {
          const std::size_t base = 3 * static_cast<std::size_t>(
              c[static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
          uf[3 * i] = u[base];
          uf[3 * i + 1] = u[base + 1];
          uf[3 * i + 2] = u[base + 2];
        }
        std::fill(yf, yf + 12, 0.0);
        fem::face_stacey_apply(mesh.elem_mat[ge], mesh.elem_size[ge],
                               face.side, uf, yf);
        for (int i = 0; i < 4; ++i) {
          const std::size_t base = 3 * static_cast<std::size_t>(
              c[static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
          ku[base] += yf[3 * i];
          ku[base + 1] += yf[3 * i + 1];
          ku[base + 2] += yf[3 * i + 2];
        }
        flops += fem::face_stacey_flops();
      }
    };

    int k_progress = 0;  // last step this rank started (rollback accounting)
    // Runs the steps [k0, n_steps); returns the first step NOT taken —
    // n_steps on a full run, or the collectively-agreed stop step when the
    // run's RunControl cancelled it (all ranks return the same value).
    const auto step_loop = [&](int k0) -> int {
    for (int k = k0; k < n_steps; ++k) {
      QUAKE_OBS_SCOPE("step");
      k_progress = k;

      // ---- cancellation/deadline agreement (service workloads): each rank
      // evaluates its local stop condition and the max-reduction makes the
      // decision collective, so every rank leaves at the same step. The
      // agreement is suppressed below the replay frontier: during tier-1
      // catch-up ranks execute different step ranges, and the anonymous
      // count-based collective must only be issued at steps all of them
      // reach (frontier == k0 on an undisturbed run, so nothing changes
      // there) ----
      if (ctl_active && k >= frontier && k % ctl_every == 0) {
        double want_stop = 0.0;
        if (control.cancel != nullptr &&
            control.cancel->load(std::memory_order_relaxed)) {
          want_stop = 1.0;
        }
        if (control.deadline_seconds > 0.0 &&
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          run_start)
                    .count() >= control.deadline_seconds) {
          want_stop = 1.0;
        }
        if (rank.allreduce_max(want_stop) > 0.0) {
          obs::counter_add("par/steps_cancelled", n_steps - k);
          return k;
        }
      }

      rank.fault_point(k);
      const double t_k = k * dt;

      {
      QUAKE_OBS_SCOPE("compute");  // boundary elements + boundary ABC faces
      compute_watch.start();
      std::fill(ku.begin(), ku.end(), 0.0);
      if (rayleigh) std::fill(dku.begin(), dku.end(), 0.0);
      apply_elems(L.boundary_elems);
      apply_faces(L.boundary_faces);
      // Fold the hanging-node partials that reach shared masters BEFORE the
      // exchange (B^T is linear, so projecting partials and summing
      // commutes with summing and projecting) — this keeps ghost sets
      // surface-sized. Every element feeding these folds is a boundary
      // element, so the posted partials are complete.
      accumulate(ku, L.cons_boundary);
      if (rayleigh) accumulate(dku, L.cons_boundary);
      compute_watch.stop();
      }

      // ---- post: coalesced (ku [+ dku]) per-neighbor messages go out
      // before any interior work, so they are in flight during it ----
      {
      QUAKE_OBS_SCOPE("exchange");
      exchange_watch.start();
      {
      QUAKE_OBS_SCOPE("post");
      for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
        auto& buf = L.sendbuf[nb];
        const auto& sh = L.neighbors[nb].shared;
        for (std::size_t i = 0; i < sh.size(); ++i) {
          const std::size_t base = 3 * static_cast<std::size_t>(sh[i]);
          buf[3 * i] = ku[base];
          buf[3 * i + 1] = ku[base + 1];
          buf[3 * i + 2] = ku[base + 2];
          if (rayleigh) {
            const std::size_t off = 3 * sh.size();
            buf[off + 3 * i] = dku[base];
            buf[off + 3 * i + 1] = dku[base + 1];
            buf[off + 3 * i + 2] = dku[base + 2];
          }
        }
        // Post only to neighbors that have not already consumed this step
        // (a catching-up rank must not pollute an ahead neighbor's FIFO);
        // log unconditionally so a later recovery can re-serve any span.
        if (k >= start_of[static_cast<std::size_t>(L.neighbors[nb].rank)]) {
          rank.send(L.neighbors[nb].rank, /*tag=*/0, buf);
        }
        if (log_on) msg_log[nb].push(k, buf);
      }
      // Zero the shared entries now; interior work never touches them, and
      // the drain re-accumulates in ascending rank order (sendbuf still
      // holds this rank's own partials).
      for (int li : L.all_shared) {
        const std::size_t base = 3 * static_cast<std::size_t>(li);
        ku[base] = ku[base + 1] = ku[base + 2] = 0.0;
        if (rayleigh) dku[base] = dku[base + 1] = dku[base + 2] = 0.0;
      }
      }
      exchange_watch.stop();
      }

      // ---- overlap window: sources, interior elements, interior ABC
      // faces, and interior hanging-node folds, all while the per-neighbor
      // messages are in flight ----
      {
      QUAKE_OBS_SCOPE("compute");
      compute_watch.start();
      overlap_watch.start();
      std::fill(f.begin(), f.end(), 0.0);
      RankForceSink sink(L.local_of, f);
      for (const solver::SourceModel* s : sources) s->add_forces(t_k, sink);
      accumulate(f, L.cons);
      apply_elems(L.interior_elems);
      apply_faces(L.interior_faces);
      accumulate(ku, L.cons_interior);
      if (rayleigh) accumulate(dku, L.cons_interior);
      overlap_watch.stop();
      compute_watch.stop();
      }

      // ---- drain: park each neighbor's payload as it arrives (any
      // order), then accumulate in ascending rank order once every edge
      // has landed, so every copy of a shared node computes the identical
      // floating-point sum no matter which neighbor was slow; the own
      // partial (recovered from the send buffers) is inserted at this
      // rank's position in the order ----
      {
      QUAKE_OBS_SCOPE("exchange");
      exchange_watch.start();
      drain_watch.start();
      {
        QUAKE_OBS_SCOPE("drain");
        rank.fault_point(-k - 1);  // mid-exchange fault point (see FaultPlan)
        {
          // Wait phase: poll every pending edge and park whatever is
          // already there. A fruitless pass yields and re-polls — blocking
          // right away would commit to the lowest pending neighbor and
          // re-serialize the drain on rank order whenever the scheduler
          // simply hadn't run the senders yet. Only after kIdlePassLimit
          // fruitless passes does the drain fall back to a blocking
          // receive: that wait is then genuinely unavoidable, and the
          // blocking receive is what registers this rank in the deadlock
          // detector (diagnosing a stuck exchange, and letting a planned
          // kDelay message flush instead of spinning forever).
          QUAKE_OBS_SCOPE("wait");
          constexpr int kIdlePassLimit = 64;
          std::fill(L.nb_arrived.begin(), L.nb_arrived.end(), 0);
          std::size_t n_pending = L.neighbors.size();
          int idle_passes = 0;
          while (n_pending > 0) {
            std::size_t progressed = 0;
            std::size_t first_pending = L.neighbors.size();
            for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
              if (L.nb_arrived[nb] != 0) continue;
              if (rank.try_recv_into(L.neighbors[nb].rank, /*tag=*/0,
                                     L.recvbuf[nb])) {
                L.nb_arrived[nb] = 1;
                --n_pending;
                ++progressed;
              } else if (first_pending == L.neighbors.size()) {
                first_pending = nb;
              }
            }
            if (n_pending == 0 || progressed > 0) {
              idle_passes = 0;
            } else if (++idle_passes < kIdlePassLimit) {
              // Idle pass: absorb any in-flight buddy donation instead of
              // pure spinning, so the async stream never backs up behind
              // a slow neighbor.
              if (donate_async) absorb_donations();
              std::this_thread::yield();
            } else {
              rank.recv_into(L.neighbors[first_pending].rank, /*tag=*/0,
                             L.recvbuf[first_pending]);
              L.nb_arrived[first_pending] = 1;
              --n_pending;
              idle_passes = 0;
            }
          }
        }
        for (int s = 0; s < R; ++s) {
          if (s == rank.id()) {
            // Own partials: first occurrence across the neighbor lists,
            // precomputed at setup.
            for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
              const auto& sh = L.neighbors[nb].shared;
              const auto& buf = L.sendbuf[nb];
              for (const int i_first : L.own_first[nb]) {
                const std::size_t i = static_cast<std::size_t>(i_first);
                const std::size_t base = 3 * static_cast<std::size_t>(sh[i]);
                ku[base] += buf[3 * i];
                ku[base + 1] += buf[3 * i + 1];
                ku[base + 2] += buf[3 * i + 2];
                if (rayleigh) {
                  const std::size_t off = 3 * sh.size();
                  dku[base] += buf[off + 3 * i];
                  dku[base + 1] += buf[off + 3 * i + 1];
                  dku[base + 2] += buf[off + 3 * i + 2];
                }
              }
            }
            continue;
          }
          const int nbi = L.nb_of_rank[static_cast<std::size_t>(s)];
          if (nbi < 0) continue;
          const auto& msg = L.recvbuf[static_cast<std::size_t>(nbi)];
          const auto& sh = L.neighbors[static_cast<std::size_t>(nbi)].shared;
          for (std::size_t i = 0; i < sh.size(); ++i) {
            const std::size_t base = 3 * static_cast<std::size_t>(sh[i]);
            ku[base] += msg[3 * i];
            ku[base + 1] += msg[3 * i + 1];
            ku[base + 2] += msg[3 * i + 2];
            if (rayleigh) {
              const std::size_t off = 3 * sh.size();
              dku[base] += msg[off + 3 * i];
              dku[base + 1] += msg[off + 3 * i + 1];
              dku[base + 2] += msg[off + 3 * i + 2];
            }
          }
        }
      }
      drain_watch.stop();
      exchange_watch.stop();
      }

      {
      QUAKE_OBS_SCOPE("compute");  // diagonalized lumped update (eq. 2.4)
      compute_watch.start();
      const double dt2 = dt * dt;
      const double hdt = 0.5 * dt;
      for (std::size_t d = 0; d < nd; ++d) {
        double rhs = 2.0 * L.mass[d] * u[d] - dt2 * ku[d] + dt2 * f[d] +
                     (hdt * L.am[d] - L.mass[d]) * u_prev[d] +
                     hdt * L.cab[d] * u_prev[d];
        if (rayleigh) {
          rhs -= hdt * (dku[d] - L.bk[d] * u[d]);
          rhs += hdt * dku_prev[d];
        }
        u_next[d] = rhs * L.inv_lhs[d];
      }
      expand(u_next);
      // Update arithmetic per dof (counted off the expression above):
      // 14 flops for the undamped eq. 2.4 rhs + divide-by-lhs, 6 more on
      // the Rayleigh branch.
      flops += nd * (rayleigh ? 20ull : 14ull);

      std::swap(dku_prev, dku);
      std::swap(u_prev, u);
      std::swap(u, u_next);

      for (const auto& [ri, ln] : RV) {
        const std::size_t base = 3 * static_cast<std::size_t>(ln);
        result.receiver_histories[static_cast<std::size_t>(ri)].push_back(
            {u[base], u[base + 1], u[base + 2]});
      }
      compute_watch.stop();
      }
      // State and histories now fully describe step k: this is the resume
      // point a survivor advertises in recovery agreement (k_done + 1).
      k_done = k;

      // ---- periodic snapshot, barrier-bracketed so the per-rank files of
      // a checkpoint generation form a consistent cut. Suppressed below the
      // replay frontier: a catching-up rank re-crosses checkpoint steps the
      // ahead ranks already took, and the barriers only match once all
      // ranks reach the step together ----
      if (ckpt_on && ft.checkpoint_every > 0 &&
          (k + 1) % ft.checkpoint_every == 0 && k + 1 < n_steps &&
          k >= frontier) {
        QUAKE_OBS_SCOPE("checkpoint");
        rank.barrier();
        util::Snapshot snap;
        snap.step = k + 1;
        snap.add("u", u);
        snap.add("u_prev", u_prev);
        snap.add("dku_prev", dku_prev);
        std::size_t ckpt_doubles = u.size() + u_prev.size() + dku_prev.size();
        for (const auto& [ri, ln] : RV) {
          const auto& hist =
              result.receiver_histories[static_cast<std::size_t>(ri)];
          std::vector<double> flat;
          flat.reserve(3 * hist.size());
          for (const auto& s : hist) flat.insert(flat.end(), s.begin(), s.end());
          ckpt_doubles += flat.size();
          snap.add("recv" + std::to_string(ri), std::move(flat));
        }
        std::string ckpt_err;
        bool saved = false;
        // Transient disk pressure often clears within milliseconds; retry
        // the write twice with a short backoff before declaring it failed.
        for (int a = 0; a < 3 && !saved; ++a) {
          if (a > 0) {
            obs::counter_add("checkpoint/write_retries", 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1 << (a - 1)));
          }
          saved = util::save_snapshot_rotating(path, snap, ckpt_keep, &ckpt_err);
        }
        if (saved) {
          obs::counter_add("ckpt/writes", 1);
          obs::counter_add("ckpt/bytes_written",
                           static_cast<std::int64_t>(8 * ckpt_doubles));
        } else {
          // Persistent disk pressure (ENOSPC, permissions) is survivable:
          // the rotation left the previous generation intact as the restore
          // target, so count it, say so, and keep solving.
          obs::counter_add("checkpoint/write_failures", 1);
          std::fprintf(stderr,
                       "[quake::par] rank %d: checkpoint write at step %d "
                       "failed (%s); continuing on previous snapshot\n",
                       rank.id(), k + 1, ckpt_err.c_str());
        }
        // The in-memory rollback shadow tracks the snapshot cadence even
        // when the disk write fails — survivors roll back from memory, disk
        // only serves the revived rank.
        shadow.step = k + 1;
        shadow.u = u;
        shadow.u_prev = u_prev;
        shadow.dku_prev = dku_prev;
        // ---- survivor state donation: every rank streams this cut
        // ([step | state | owned histories], self-contained for a restore)
        // to its buddy (r+1)%R and holds its predecessor's in thread-local
        // memory. Sends are mailbox posts, so the ring-shift exchange
        // cannot deadlock; both barriers bracketing this block guarantee
        // the capture either completes on every rank or on none ----
        if (donate_on) {
          std::vector<double> pay;
          pay.reserve(1 + 3 * nd +
                      3 * static_cast<std::size_t>(k + 1) * rv_count);
          pay.push_back(static_cast<double>(k + 1));
          pay.insert(pay.end(), u.begin(), u.end());
          pay.insert(pay.end(), u_prev.begin(), u_prev.end());
          pay.insert(pay.end(), dku_prev.begin(), dku_prev.end());
          for (const auto& [ri, ln] : RV) {
            const auto& hist =
                result.receiver_histories[static_cast<std::size_t>(ri)];
            for (const auto& s : hist) {
              pay.insert(pay.end(), s.begin(), s.end());
            }
          }
          rank.send(buddy, kDonationTag, pay);
          if (donate_async) {
            // Asynchronous absorb: the closing barrier below proves pred's
            // send already landed in this rank's mailbox, so the post-
            // barrier drain is non-blocking and the measured wait is ~0.
            // (Absorbing may also have happened opportunistically in the
            // drain's idle passes.)
            rank.barrier();
            util::StopWatch w;
            w.start();
            absorb_donations();
            w.stop();
            obs::scope_record("recover/donate/wait", w.total_seconds());
          } else {
            // Synchronous baseline (A/B reference): block on the stream
            // before releasing the barrier, charging the full ring-shift
            // latency to the checkpoint.
            util::StopWatch w;
            w.start();
            std::vector<double> got = rank.recv(pred, kDonationTag);
            w.stop();
            obs::scope_record("recover/donate/wait", w.total_seconds());
            if (!got.empty()) {
              held.step = static_cast<std::int64_t>(got[0]);
              held.state = std::move(got);
            }
            rank.barrier();
          }
        } else {
          rank.barrier();
        }
        // Message-log ring reset point: everything before this cut can be
        // restored by donation or disk, so only steps >= k+1 ever need
        // replaying. (The ring capacity already enforces the bound; no
        // explicit trim is needed for correctness.)
      }
    }
    return n_steps;
    };  // step_loop

    const auto finish = [&] {
    // Gather: each rank writes its owned nodes (owners are unique).
    for (std::size_t i = 0; i < L.nodes.size(); ++i) {
      if (L.owned[i] == 0) continue;
      const std::size_t g = 3 * static_cast<std::size_t>(L.nodes[i]);
      result.u_final[g] = u[3 * i];
      result.u_final[g + 1] = u[3 * i + 1];
      result.u_final[g + 2] = u[3 * i + 2];
    }

    // Fraction of the exchange hidden behind interior compute: of the time
    // the messages spend "in flight" plus the time spent waiting for them,
    // how much was spent computing. 0 when there is nothing to overlap.
    const double overlap_s = overlap_watch.total_seconds();
    const double drain_s = drain_watch.total_seconds();
    const double overlap_fraction =
        (L.neighbors.empty() || overlap_s + drain_s <= 0.0)
            ? 0.0
            : overlap_s / (overlap_s + drain_s);

    auto& st = result.rank_stats[r];
    st.n_elems = L.elems.size();
    st.n_boundary_elems = L.boundary_elems.size();
    st.n_interior_elems = L.interior_elems.size();
    st.n_local_nodes = L.nodes.size();
    st.n_neighbors = L.neighbors.size();
    st.doubles_sent_per_step = L.doubles_per_step;
    st.flops = flops;
    st.element_updates = elem_updates;
    st.compute_seconds = compute_watch.total_seconds();
    st.exchange_seconds = exchange_watch.total_seconds();
    st.overlap_fraction = overlap_fraction;

    // Partition-shape gauges; their across-rank min/mean/max in the merged
    // report is the load-imbalance view of Table 2.1.
    obs::gauge_set("par/n_elems", static_cast<double>(L.elems.size()));
    obs::gauge_set("par/n_boundary_elems",
                   static_cast<double>(L.boundary_elems.size()));
    obs::gauge_set("par/n_interior_elems",
                   static_cast<double>(L.interior_elems.size()));
    obs::gauge_set("par/n_local_nodes", static_cast<double>(L.nodes.size()));
    obs::gauge_set("par/n_neighbors", static_cast<double>(L.neighbors.size()));
    obs::gauge_set("par/doubles_sent_per_step",
                   static_cast<double>(L.doubles_per_step));
    obs::gauge_set("par/compute_seconds", compute_watch.total_seconds());
    obs::gauge_set("par/exchange_seconds", exchange_watch.total_seconds());
    obs::gauge_set("par/overlap_fraction", overlap_fraction);
    if (log_on) {
      // Compressed vs raw footprint of the tier-1 message-log rings:
      // stored = delta-encoded bytes actually held, raw = what the same
      // span would cost uncompressed. The ratio is the compression the
      // doubled ring capacity is funded by.
      std::size_t stored = 0, raw = 0;
      for (const auto& ring : msg_log) {
        stored += ring.stored_bytes();
        raw += ring.raw_bytes();
      }
      obs::gauge_set("par/log_bytes", static_cast<double>(stored));
      obs::gauge_set("par/log_raw_bytes", static_cast<double>(raw));
    }

    // ---- telemetry gather: ship every registry to rank 0 and merge ------
    // Registries are snapshotted/encoded BEFORE the gather messages move,
    // so the reports describe the solve, not the gather itself.
    if (obs::enabled()) {
      if (rank.id() == 0) {
        std::vector<obs::RankReport> reports;
        reports.reserve(static_cast<std::size_t>(R));
        reports.push_back(obs::RankReport{0, rank_regs[0]});
        for (int s = 1; s < R; ++s) {
          reports.push_back(obs::decode_report(rank.recv(s, kObsGatherTag)));
        }
        result.obs_summary = obs::merge_reports(reports);
        result.obs_reports = std::move(reports);
      } else {
        rank.send(0, kObsGatherTag,
                  obs::encode_report(obs::RankReport{rank.id(), rank_regs[r]}));
      }
    }
    };  // finish

    // ---- epoch loop: solve; on a rank failure (in-place recovery armed)
    // park until the communicator is repaired, then roll back and replay.
    // Survivors keep their partition, ghost plans, and exchange buffers —
    // nothing above this loop is re-run on a recovery. ----
    int last_fail_step = -1;  // k_progress at the most recent local failure
    bool recovering = rank.revived();  // respawned ranks join mid-recovery
    for (;;) {
      try {
        int k0 = 0;
        if (recovering) {
          QUAKE_OBS_SCOPE("recover");
          obs::gauge_set("par/epoch", static_cast<double>(rank.epoch()));
          // Recovery-phase fault point: a planned Kill with step =
          // INT_MIN + epoch dies during this recovery (see FaultPlan).
          rank.fault_point(std::numeric_limits<int>::min() +
                           static_cast<int>(rank.epoch()));
          k0 = attempt_recover();
          {
            // Rendezvous before re-entering the step loop; this scope's
            // time is the wait for the slowest rank's restore (usually the
            // revived rank taking its donated snapshot off the wire).
            QUAKE_OBS_SCOPE("resume");
            rank.barrier();
          }
          if (last_fail_step >= 0) {
            // Zero on the tier-1 replay path by construction: a survivor
            // resumes at k_done + 1, exactly where it stopped.
            obs::counter_add("par/steps_rolled_back",
                             std::max(0, last_fail_step - k0));
          }
          recovering = false;
        } else {
          k0 = attempt_restore(/*recovering=*/false, /*donated=*/-1);
          std::fill(start_of.begin(), start_of.end(), k0);
          frontier = k0;
        }
        k_done = k0 - 1;
        k_progress = k0;
        const int stop_k = step_loop(k0);
        finish();
        // The cancel agreement guarantees every rank stops at the same
        // step; rank 0 records it (threads are joined before run()
        // returns, so this write is visible to the caller).
        if (rank.id() == 0 && stop_k < n_steps) {
          result.cancelled = true;
          result.steps_completed = stop_k;
        }
        break;
      } catch (const RankFailedError&) {
        // A peer died. With in-place recovery armed, park this thread —
        // state intact — until run()'s monitor revives the dead rank, then
        // take another lap through the restore agreement. Otherwise (or
        // when recovery is abandoned) rethrow into the full-restart
        // supervisor.
        if (!in_place) throw;
        last_fail_step = k_progress;
        if (!rank.await_recovery()) throw;
        obs::counter_add("par/recoveries", 1);
        recovering = true;
      }
    }
  };

  // ---- supervised execution: rewind to the last checkpoint and retry on
  // rank failure, with exponential backoff; deadlocks are deterministic
  // program errors and surface immediately ----
  int attempt = 0;
  int revives_total = 0;
  for (;;) {
    try {
      comm.run(spmd_body);
      revives_total += comm.revives_used();
      break;
    } catch (const DeadlockError&) {
      throw;
    } catch (const RankFailedError&) {
      revives_total += comm.revives_used();
      if (attempt >= ft.max_retries) throw;
      if (ft.backoff_base_seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            ft.backoff_base_seconds * std::ldexp(1.0, attempt)));
      }
      ++attempt;
    }
  }
  result.revives_used = revives_total;
  if (ckpt_on) {
    // The run completed; its snapshots are obsolete (and would otherwise
    // short-circuit an unrelated future run pointed at the same directory).
    for (int rr = 0; rr < R; ++rr) {
      const std::string path = ckpt_path(ft.checkpoint_dir, rr);
      for (int gen = 0; gen <= ckpt_keep; ++gen) {
        std::remove(util::snapshot_generation_path(path, gen).c_str());
      }
      std::remove((path + ".tmp").c_str());
    }
  }

  return result;
}

// ---------------------------------------------------------------------------
// run_batch: S scenarios through one SPMD step loop. The structure is run()
// with every per-dof array widened to S lanes (scenario-major) and all
// fault-tolerance machinery removed — batched requests carry no FT by the
// serving layer's coalescing contract (see docs/BATCHING.md). Lane s of
// every array takes exactly the floating-point operation sequence run()
// would apply to scenario s alone (lane loops are innermost everywhere, and
// the drain keeps its ascending-rank order), which is what makes batch
// results bitwise identical to sequential ones.
// ---------------------------------------------------------------------------

std::vector<ParallelResult> ParallelSetup::Impl::run_batch(
    double t_end, std::span<const BatchScenario> scenarios,
    const RunControl& control) {
  const std::lock_guard<std::mutex> run_lock(run_mutex);
  const int S_i = static_cast<int>(scenarios.size());
  if (S_i < 1 || S_i > fem::kMaxBatchLanes) {
    throw std::invalid_argument("run_batch: scenario count must be in [1, " +
                                std::to_string(fem::kMaxBatchLanes) + "]");
  }
  const std::size_t S = scenarios.size();
  const int n_steps = static_cast<int>(std::ceil(t_end / dt));

  std::vector<ParallelResult> results(S);
  for (std::size_t s = 0; s < S; ++s) {
    results[s].dt = dt;
    results[s].n_steps = n_steps;
    results[s].steps_completed = n_steps;
    results[s].u_final.assign(3 * mesh.n_nodes(), 0.0);
    results[s].rank_stats.assign(static_cast<std::size_t>(R), {});
    results[s].receiver_histories.assign(scenarios[s].receivers.size(), {});
  }

  // Per-rank receiver assignment, now (lane, receiver, local node) triples.
  struct RecvRef {
    int lane;
    int ri;
    int ln;
  };
  std::vector<std::vector<RecvRef>> recv_of(static_cast<std::size_t>(R));
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t ri = 0; ri < scenarios[s].receivers.size(); ++ri) {
      const mesh::NodeId n =
          solver::nearest_node(mesh, scenarios[s].receivers[ri]);
      const int owner = part.node_owner[static_cast<std::size_t>(n)];
      const auto it = locals[static_cast<std::size_t>(owner)].local_of.find(n);
      if (it == locals[static_cast<std::size_t>(owner)].local_of.end()) {
        throw std::invalid_argument(
            "run_batch: scenario " + std::to_string(s) + " receiver " +
            std::to_string(ri) + " snaps to node " + std::to_string(n) +
            ", which no element touches (orphan node)");
      }
      recv_of[static_cast<std::size_t>(owner)].push_back(
          {static_cast<int>(s), static_cast<int>(ri), it->second});
      results[s].receiver_histories[ri].reserve(
          static_cast<std::size_t>(n_steps));
    }
  }

  // Batched exchange buffers: the scalar buffers' layout with every entry
  // widened to S lanes — ku section at [(3*i + c) * S + s], dku (when
  // Rayleigh damping is on) at offset 3 * shared * S.
  const std::size_t pack = rayleigh ? 2u : 1u;
  for (auto& L : locals) {
    L.sendbuf_b.resize(L.neighbors.size());
    L.recvbuf_b.resize(L.neighbors.size());
    for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
      const std::size_t n_sh = L.neighbors[nb].shared.size();
      L.sendbuf_b[nb].assign(pack * 3 * n_sh * S, 0.0);
      L.recvbuf_b[nb].assign(pack * 3 * n_sh * S, 0.0);
    }
  }

  // Plain-communicator policy: no injected faults, no deadline on blocking
  // ops, no in-place recovery. A rank failure surfaces to the caller.
  comm.clear_fault_plan();
  comm.set_timeout(0.0);
  comm.set_recovery({false, 0});

  const bool ctl_active = control.active();
  const int ctl_every = std::max(1, control.check_every);
  const auto run_start = std::chrono::steady_clock::now();

  const fem::HexReference& ref = fem::HexReference::get();
  const auto elem_damping = op.element_damping();
  std::vector<obs::Registry> rank_regs(static_cast<std::size_t>(R));
  int agreed_stop = n_steps;  // written by rank 0, read after join

  const auto spmd_body = [&](Rank& rank) {
    const std::size_t r = static_cast<std::size_t>(rank.id());
    const obs::ScopedRegistry obs_install(rank_regs[r]);
    RankLocal& L = locals[r];
    const auto& RV = recv_of[r];
    const std::size_t nd = 3 * L.nodes.size();
    const std::size_t nb_len = nd * S;
    std::vector<double> u(nb_len, 0.0), u_prev(nb_len, 0.0),
        u_next(nb_len, 0.0);
    std::vector<double> f(nb_len, 0.0), ku(nb_len, 0.0), dku(nb_len, 0.0),
        dku_prev(nb_len, 0.0);

    util::StopWatch compute_watch, exchange_watch, overlap_watch, drain_watch;
    std::uint64_t flops = 0;
    std::uint64_t elem_updates = 0;
    obs::counter_add("comm/msgs_sent", 0);
    obs::counter_add("comm/bytes_sent", 0);
    obs::gauge_set("par/dt", dt);
    obs::gauge_set("par/batch_width", static_cast<double>(S));

    auto expand_b = [&](std::vector<double>& x) {
      for (const LocalConstraint& c : L.cons) {
        for (int comp = 0; comp < 3; ++comp) {
          const std::size_t hd =
              (3 * static_cast<std::size_t>(c.node) +
               static_cast<std::size_t>(comp)) *
              S;
          for (std::size_t s = 0; s < S; ++s) {
            double v = 0.0;
            for (int m = 0; m < c.n; ++m) {
              v += c.weights[static_cast<std::size_t>(m)] *
                   x[(3 * static_cast<std::size_t>(
                            c.masters[static_cast<std::size_t>(m)]) +
                      static_cast<std::size_t>(comp)) *
                         S +
                     s];
            }
            x[hd + s] = v;
          }
        }
      }
    };
    auto accumulate_b = [&](std::vector<double>& x,
                            const std::vector<LocalConstraint>& cons) {
      for (const LocalConstraint& c : cons) {
        for (int comp = 0; comp < 3; ++comp) {
          const std::size_t hd =
              (3 * static_cast<std::size_t>(c.node) +
               static_cast<std::size_t>(comp)) *
              S;
          for (int m = 0; m < c.n; ++m) {
            const std::size_t md =
                (3 * static_cast<std::size_t>(
                         c.masters[static_cast<std::size_t>(m)]) +
                 static_cast<std::size_t>(comp)) *
                S;
            const double w = c.weights[static_cast<std::size_t>(m)];
            for (std::size_t s = 0; s < S; ++s) x[md + s] += w * x[hd + s];
          }
          for (std::size_t s = 0; s < S; ++s) x[hd + s] = 0.0;
        }
      }
    };

    double ue[fem::kHexDofs * fem::kMaxBatchLanes];
    double ye[fem::kHexDofs * fem::kMaxBatchLanes];
    double de[fem::kHexDofs * fem::kMaxBatchLanes];
    auto apply_elems_b = [&](const std::vector<int>& list) {
      for (const int le_i : list) {
        const std::size_t le = static_cast<std::size_t>(le_i);
        const std::size_t ge = static_cast<std::size_t>(L.elems[le]);
        const auto& c = L.conn[le];
        for (int i = 0; i < 8; ++i) {
          // Per node the 3 components x S lanes are one contiguous run.
          const std::size_t base =
              3 * static_cast<std::size_t>(c[static_cast<std::size_t>(i)]) * S;
          std::copy(u.begin() + static_cast<std::ptrdiff_t>(base),
                    u.begin() + static_cast<std::ptrdiff_t>(base + 3 * S),
                    ue + 3 * static_cast<std::size_t>(i) * S);
        }
        std::fill(ye, ye + fem::kHexDofs * S, 0.0);
        if (rayleigh) std::fill(de, de + fem::kHexDofs * S, 0.0);
        const double h = mesh.elem_size[ge];
        const vel::Material& mat = mesh.elem_mat[ge];
        fem::hex_apply_batch(ref, ue, S_i, h * mat.lambda, h * mat.mu, ye,
                             rayleigh ? elem_damping[ge].beta : 0.0,
                             rayleigh ? de : nullptr);
        for (int i = 0; i < 8; ++i) {
          const std::size_t base =
              3 * static_cast<std::size_t>(c[static_cast<std::size_t>(i)]) * S;
          const std::size_t eb = 3 * static_cast<std::size_t>(i) * S;
          for (std::size_t t = 0; t < 3 * S; ++t) ku[base + t] += ye[eb + t];
          if (rayleigh) {
            for (std::size_t t = 0; t < 3 * S; ++t) {
              dku[base + t] += de[eb + t];
            }
          }
        }
        flops += S * fem::hex_apply_flops(rayleigh);
      }
      // One element update per lane per element: S lanes advance together.
      elem_updates += S * list.size();
      obs::counter_add("par/elements_processed",
                       static_cast<std::int64_t>(list.size()));
      obs::counter_add("par/element_updates",
                       static_cast<std::int64_t>(S * list.size()));
    };
    auto apply_faces_b = [&](const std::vector<RankLocal::Face>& list) {
      if (op_opt.abc != fem::AbcType::kStacey) return;
      double uf[12], yf[12];
      for (const auto& face : list) {
        if (!op_opt.absorbing_sides[static_cast<std::size_t>(face.side)]) {
          continue;
        }
        const std::size_t ge = static_cast<std::size_t>(
            L.elems[static_cast<std::size_t>(face.elem)]);
        const auto& fn = mesh::kFaceNodes[static_cast<std::size_t>(face.side)];
        const auto& c = L.conn[static_cast<std::size_t>(face.elem)];
        // The face kernel is tiny (4 nodes); run it per lane with strided
        // gathers instead of widening it. Per-lane op order is the scalar
        // kernel's, trivially.
        for (std::size_t s = 0; s < S; ++s) {
          for (int i = 0; i < 4; ++i) {
            const std::size_t base =
                3 *
                static_cast<std::size_t>(
                    c[static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]) *
                S;
            uf[3 * i] = u[base + s];
            uf[3 * i + 1] = u[base + S + s];
            uf[3 * i + 2] = u[base + 2 * S + s];
          }
          std::fill(yf, yf + 12, 0.0);
          fem::face_stacey_apply(mesh.elem_mat[ge], mesh.elem_size[ge],
                                 face.side, uf, yf);
          for (int i = 0; i < 4; ++i) {
            const std::size_t base =
                3 *
                static_cast<std::size_t>(
                    c[static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]) *
                S;
            ku[base + s] += yf[3 * i];
            ku[base + S + s] += yf[3 * i + 1];
            ku[base + 2 * S + s] += yf[3 * i + 2];
          }
          flops += fem::face_stacey_flops();
        }
      }
    };

    int stop_k = n_steps;
    for (int k = 0; k < n_steps; ++k) {
      QUAKE_OBS_SCOPE("step");

      // Whole-batch cancellation/deadline agreement, as in run().
      if (ctl_active && k % ctl_every == 0) {
        double want_stop = 0.0;
        if (control.cancel != nullptr &&
            control.cancel->load(std::memory_order_relaxed)) {
          want_stop = 1.0;
        }
        if (control.deadline_seconds > 0.0 &&
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          run_start)
                    .count() >= control.deadline_seconds) {
          want_stop = 1.0;
        }
        if (rank.allreduce_max(want_stop) > 0.0) {
          obs::counter_add("par/steps_cancelled", n_steps - k);
          stop_k = k;
          break;
        }
      }

      const double t_k = k * dt;

      {
      QUAKE_OBS_SCOPE("compute");  // boundary elements + boundary ABC faces
      compute_watch.start();
      std::fill(ku.begin(), ku.end(), 0.0);
      if (rayleigh) std::fill(dku.begin(), dku.end(), 0.0);
      apply_elems_b(L.boundary_elems);
      apply_faces_b(L.boundary_faces);
      accumulate_b(ku, L.cons_boundary);
      if (rayleigh) accumulate_b(dku, L.cons_boundary);
      compute_watch.stop();
      }

      // ---- post: one coalesced message per neighbor carries all S lanes --
      {
      QUAKE_OBS_SCOPE("exchange");
      exchange_watch.start();
      {
      QUAKE_OBS_SCOPE("post");
      for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
        auto& buf = L.sendbuf_b[nb];
        const auto& sh = L.neighbors[nb].shared;
        for (std::size_t i = 0; i < sh.size(); ++i) {
          const std::size_t base = 3 * static_cast<std::size_t>(sh[i]) * S;
          std::copy(ku.begin() + static_cast<std::ptrdiff_t>(base),
                    ku.begin() + static_cast<std::ptrdiff_t>(base + 3 * S),
                    buf.begin() + static_cast<std::ptrdiff_t>(3 * i * S));
          if (rayleigh) {
            const std::size_t off = 3 * sh.size() * S;
            std::copy(dku.begin() + static_cast<std::ptrdiff_t>(base),
                      dku.begin() + static_cast<std::ptrdiff_t>(base + 3 * S),
                      buf.begin() +
                          static_cast<std::ptrdiff_t>(off + 3 * i * S));
          }
        }
        rank.send(L.neighbors[nb].rank, /*tag=*/0, buf);
      }
      for (int li : L.all_shared) {
        const std::size_t base = 3 * static_cast<std::size_t>(li) * S;
        for (std::size_t t = 0; t < 3 * S; ++t) ku[base + t] = 0.0;
        if (rayleigh) {
          for (std::size_t t = 0; t < 3 * S; ++t) dku[base + t] = 0.0;
        }
      }
      }
      exchange_watch.stop();
      }

      // ---- overlap window: per-lane sources, interior work ----
      {
      QUAKE_OBS_SCOPE("compute");
      compute_watch.start();
      overlap_watch.start();
      std::fill(f.begin(), f.end(), 0.0);
      for (std::size_t s = 0; s < S; ++s) {
        RankLaneForceSink sink(L.local_of, f, S_i, static_cast<int>(s));
        for (const solver::SourceModel* src : scenarios[s].sources) {
          src->add_forces(t_k, sink);
        }
      }
      accumulate_b(f, L.cons);
      apply_elems_b(L.interior_elems);
      apply_faces_b(L.interior_faces);
      accumulate_b(ku, L.cons_interior);
      if (rayleigh) accumulate_b(dku, L.cons_interior);
      overlap_watch.stop();
      compute_watch.stop();
      }

      // ---- drain: park payloads in arrival order, then accumulate in
      // ascending rank order, 3*S contiguous doubles per shared node, so
      // each lane's shared sum takes the scalar path's order ----
      {
      QUAKE_OBS_SCOPE("exchange");
      exchange_watch.start();
      drain_watch.start();
      {
        QUAKE_OBS_SCOPE("drain");
        {
          // Wait phase: identical protocol to run()'s drain (poll all
          // pending edges, park arrivals, yield and re-poll on a fruitless
          // pass, block on the lowest pending neighbor only after
          // kIdlePassLimit passes in a row made no progress).
          QUAKE_OBS_SCOPE("wait");
          constexpr int kIdlePassLimit = 64;
          std::fill(L.nb_arrived.begin(), L.nb_arrived.end(), 0);
          std::size_t n_pending = L.neighbors.size();
          int idle_passes = 0;
          while (n_pending > 0) {
            std::size_t progressed = 0;
            std::size_t first_pending = L.neighbors.size();
            for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
              if (L.nb_arrived[nb] != 0) continue;
              if (rank.try_recv_into(L.neighbors[nb].rank, /*tag=*/0,
                                     L.recvbuf_b[nb])) {
                L.nb_arrived[nb] = 1;
                --n_pending;
                ++progressed;
              } else if (first_pending == L.neighbors.size()) {
                first_pending = nb;
              }
            }
            if (n_pending == 0 || progressed > 0) {
              idle_passes = 0;
            } else if (++idle_passes < kIdlePassLimit) {
              std::this_thread::yield();
            } else {
              rank.recv_into(L.neighbors[first_pending].rank, /*tag=*/0,
                             L.recvbuf_b[first_pending]);
              L.nb_arrived[first_pending] = 1;
              --n_pending;
              idle_passes = 0;
            }
          }
        }
        for (int s = 0; s < R; ++s) {
          if (s == rank.id()) {
            for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
              const auto& sh = L.neighbors[nb].shared;
              const auto& buf = L.sendbuf_b[nb];
              for (const int i_first : L.own_first[nb]) {
                const std::size_t i = static_cast<std::size_t>(i_first);
                const std::size_t base =
                    3 * static_cast<std::size_t>(sh[i]) * S;
                const std::size_t bb = 3 * i * S;
                for (std::size_t t = 0; t < 3 * S; ++t) {
                  ku[base + t] += buf[bb + t];
                }
                if (rayleigh) {
                  const std::size_t off = 3 * sh.size() * S;
                  for (std::size_t t = 0; t < 3 * S; ++t) {
                    dku[base + t] += buf[off + bb + t];
                  }
                }
              }
            }
            continue;
          }
          const int nbi = L.nb_of_rank[static_cast<std::size_t>(s)];
          if (nbi < 0) continue;
          const auto& msg = L.recvbuf_b[static_cast<std::size_t>(nbi)];
          const auto& sh = L.neighbors[static_cast<std::size_t>(nbi)].shared;
          for (std::size_t i = 0; i < sh.size(); ++i) {
            const std::size_t base = 3 * static_cast<std::size_t>(sh[i]) * S;
            const std::size_t bb = 3 * i * S;
            for (std::size_t t = 0; t < 3 * S; ++t) {
              ku[base + t] += msg[bb + t];
            }
            if (rayleigh) {
              const std::size_t off = 3 * sh.size() * S;
              for (std::size_t t = 0; t < 3 * S; ++t) {
                dku[base + t] += msg[off + bb + t];
              }
            }
          }
        }
      }
      drain_watch.stop();
      exchange_watch.stop();
      }

      {
      QUAKE_OBS_SCOPE("compute");  // eq. 2.4, lane loop innermost
      compute_watch.start();
      const double dt2 = dt * dt;
      const double hdt = 0.5 * dt;
      for (std::size_t d = 0; d < nd; ++d) {
        const std::size_t b = d * S;
        for (std::size_t s = 0; s < S; ++s) {
          double rhs = 2.0 * L.mass[d] * u[b + s] - dt2 * ku[b + s] +
                       dt2 * f[b + s] +
                       (hdt * L.am[d] - L.mass[d]) * u_prev[b + s] +
                       hdt * L.cab[d] * u_prev[b + s];
          if (rayleigh) {
            rhs -= hdt * (dku[b + s] - L.bk[d] * u[b + s]);
            rhs += hdt * dku_prev[b + s];
          }
          u_next[b + s] = rhs * L.inv_lhs[d];
        }
      }
      expand_b(u_next);
      // Same per-dof update count as run(), times the S lanes.
      flops += S * nd * (rayleigh ? 20ull : 14ull);

      std::swap(dku_prev, dku);
      std::swap(u_prev, u);
      std::swap(u, u_next);

      for (const RecvRef& rv : RV) {
        const std::size_t base = 3 * static_cast<std::size_t>(rv.ln) * S;
        const std::size_t s = static_cast<std::size_t>(rv.lane);
        results[s].receiver_histories[static_cast<std::size_t>(rv.ri)]
            .push_back({u[base + s], u[base + S + s], u[base + 2 * S + s]});
      }
      compute_watch.stop();
      }
    }

    // ---- finish: scatter each lane's owned nodes into its result ----
    for (std::size_t i = 0; i < L.nodes.size(); ++i) {
      if (L.owned[i] == 0) continue;
      const std::size_t g = 3 * static_cast<std::size_t>(L.nodes[i]);
      const std::size_t base = 3 * i * S;
      for (std::size_t s = 0; s < S; ++s) {
        results[s].u_final[g] = u[base + s];
        results[s].u_final[g + 1] = u[base + S + s];
        results[s].u_final[g + 2] = u[base + 2 * S + s];
      }
    }

    const double overlap_s = overlap_watch.total_seconds();
    const double drain_s = drain_watch.total_seconds();
    const double overlap_fraction =
        (L.neighbors.empty() || overlap_s + drain_s <= 0.0)
            ? 0.0
            : overlap_s / (overlap_s + drain_s);
    // Every lane shares the one batched execution, so each result carries
    // the same per-rank stats; the exchange volume is the batched message
    // size (S times the scalar volume, for one message round).
    ParallelResult::RankStats st;
    st.n_elems = L.elems.size();
    st.n_boundary_elems = L.boundary_elems.size();
    st.n_interior_elems = L.interior_elems.size();
    st.n_local_nodes = L.nodes.size();
    st.n_neighbors = L.neighbors.size();
    st.doubles_sent_per_step = L.doubles_per_step * S;
    st.flops = flops;
    st.element_updates = elem_updates;
    st.compute_seconds = compute_watch.total_seconds();
    st.exchange_seconds = exchange_watch.total_seconds();
    st.overlap_fraction = overlap_fraction;
    for (std::size_t s = 0; s < S; ++s) results[s].rank_stats[r] = st;

    obs::gauge_set("par/n_elems", static_cast<double>(L.elems.size()));
    obs::gauge_set("par/doubles_sent_per_step",
                   static_cast<double>(L.doubles_per_step * S));
    obs::gauge_set("par/compute_seconds", compute_watch.total_seconds());
    obs::gauge_set("par/exchange_seconds", exchange_watch.total_seconds());
    obs::gauge_set("par/overlap_fraction", overlap_fraction);

    // Telemetry gather to rank 0, attached to the first lane's result (the
    // batch ran once; duplicating reports per lane would double-count).
    if (obs::enabled()) {
      if (rank.id() == 0) {
        std::vector<obs::RankReport> reports;
        reports.reserve(static_cast<std::size_t>(R));
        reports.push_back(obs::RankReport{0, rank_regs[0]});
        for (int s = 1; s < R; ++s) {
          reports.push_back(obs::decode_report(rank.recv(s, kObsGatherTag)));
        }
        results[0].obs_summary = obs::merge_reports(reports);
        results[0].obs_reports = std::move(reports);
      } else {
        rank.send(0, kObsGatherTag,
                  obs::encode_report(obs::RankReport{rank.id(), rank_regs[r]}));
      }
    }
    if (rank.id() == 0) agreed_stop = stop_k;
  };

  comm.run(spmd_body);
  if (agreed_stop < n_steps) {
    for (auto& res : results) {
      res.cancelled = true;
      res.steps_completed = agreed_stop;
    }
  }
  return results;
}

// ---------------------------------------------------------------------------
// run_lts: one solve under clustered local time stepping. The structure is
// run() with the fault-tolerance machinery removed and every sweep list
// replaced by its per-class (element/face) or per-rate (node/constraint/
// exchange) sublists; at fine step k the classes/rates with lg <=
// countr_zero(k) are active, visited in ascending lg order. A mesh that
// clusters into a single class takes every list whole and in the original
// order, so the run is bitwise identical to run() — the anchor lts_test
// pins. See src/lts/include/quake/lts/lts_solver.hpp for the scheme (state
// convention, interpolation bracket, scheduling invariant); docs/LTS.md for
// the correctness argument.
// ---------------------------------------------------------------------------

// The clustering plus everything per-rank that derives from it. Built once
// per max_rate (under run_mutex) and reused across run_lts calls on this
// setup, like RankLocal is across run() calls.
struct ParallelSetup::Impl::LtsPlan {
  lts::Clustering cl;

  struct NbPlan {
    // Positions into the neighbor's `shared` list, grouped by node rate.
    // A step-k message is the rate-major concatenation over active rates
    // (lg ascending) of 3 doubles per listed node — both sides derive the
    // same layout from the same global rates, so lengths and node order
    // agree without any handshake.
    std::vector<std::vector<int>> sh_of_rate;
    // Of own_first (this rank's once-only own-partial positions), the
    // entries of each rate, as {position in shared, slot in the concat}.
    std::vector<std::vector<std::array<int, 2>>> own_of_rate;
    // Shared-node count over rates <= lg: the step-k message holds
    // 3 * count_upto[min(C_k, n-1)] doubles; zero-length edges skip the
    // send and the drain entirely.
    std::vector<std::size_t> count_upto;
  };

  struct RankPlan {
    // Per-class sublists of the boundary/interior split, original order.
    std::vector<std::vector<int>> bnd_elems, int_elems;
    std::vector<std::vector<RankLocal::Face>> bnd_faces, int_faces;
    // Per-rate update lists: local node indices (ascending) and the
    // constraint groups whose nodes carry that rate (a group shares one
    // rate by the clustering fold), in L.cons order.
    std::vector<std::vector<int>> nodes_of_rate;
    std::vector<std::vector<LocalConstraint>> cons_of_rate;
    // all_shared filtered by rate: the entries to re-zero after a post.
    std::vector<std::vector<int>> shared_of_rate;
    std::vector<NbPlan> nbs;
    // Per-local-dof update coefficients for dt_n = 2^lg * dt (ldexp is
    // exact, so lg = 0 dofs reproduce run()'s coefficients bitwise).
    std::vector<double> dt2n, hdtn, inv_lhs;
    std::vector<std::uint8_t> node_lg;  // per local node
  };
  std::vector<RankPlan> ranks;
};

const ParallelSetup::Impl::LtsPlan& ParallelSetup::Impl::get_lts_plan(
    int max_rate) {
  if (lts_plan != nullptr && lts_plan_max_rate == max_rate) return *lts_plan;
  auto plan = std::make_unique<LtsPlan>();
  plan->cl = lts::cluster_elements(mesh, dt, cfl, max_rate);
  const lts::Clustering& cl = plan->cl;
  const std::size_t nc = static_cast<std::size_t>(cl.n_classes);

  plan->ranks.resize(static_cast<std::size_t>(R));
  for (std::size_t r = 0; r < static_cast<std::size_t>(R); ++r) {
    const RankLocal& L = locals[r];
    LtsPlan::RankPlan& rp = plan->ranks[r];

    const auto elem_class = [&](int le) {
      return cl.elem_class_log2[static_cast<std::size_t>(
          L.elems[static_cast<std::size_t>(le)])];
    };
    rp.bnd_elems.resize(nc);
    rp.int_elems.resize(nc);
    rp.bnd_faces.resize(nc);
    rp.int_faces.resize(nc);
    for (const int le : L.boundary_elems) rp.bnd_elems[elem_class(le)].push_back(le);
    for (const int le : L.interior_elems) rp.int_elems[elem_class(le)].push_back(le);
    for (const RankLocal::Face& face : L.boundary_faces) {
      rp.bnd_faces[elem_class(face.elem)].push_back(face);
    }
    for (const RankLocal::Face& face : L.interior_faces) {
      rp.int_faces[elem_class(face.elem)].push_back(face);
    }

    const std::size_t nl = L.nodes.size();
    rp.node_lg.resize(nl);
    rp.nodes_of_rate.resize(nc);
    for (std::size_t i = 0; i < nl; ++i) {
      rp.node_lg[i] =
          cl.node_rate_log2[static_cast<std::size_t>(L.nodes[i])];
      rp.nodes_of_rate[rp.node_lg[i]].push_back(static_cast<int>(i));
    }
    rp.cons_of_rate.resize(nc);
    for (const LocalConstraint& c : L.cons) {
      rp.cons_of_rate[rp.node_lg[static_cast<std::size_t>(c.node)]].push_back(
          c);
    }
    rp.shared_of_rate.resize(nc);
    for (const int li : L.all_shared) {
      rp.shared_of_rate[rp.node_lg[static_cast<std::size_t>(li)]].push_back(li);
    }

    rp.dt2n.resize(3 * nl);
    rp.hdtn.resize(3 * nl);
    rp.inv_lhs.resize(3 * nl);
    for (std::size_t i = 0; i < nl; ++i) {
      const double dtn = std::ldexp(dt, rp.node_lg[i]);
      for (int c = 0; c < 3; ++c) {
        const std::size_t d = 3 * i + static_cast<std::size_t>(c);
        rp.dt2n[d] = dtn * dtn;
        rp.hdtn[d] = 0.5 * dtn;
        const double lhs =
            L.mass[d] + 0.5 * dtn * (L.am[d] + L.bk[d] + L.cab[d]);
        rp.inv_lhs[d] = lhs > 0.0 ? 1.0 / lhs : 0.0;
      }
    }

    rp.nbs.resize(L.neighbors.size());
    for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
      const auto& sh = L.neighbors[nb].shared;
      LtsPlan::NbPlan& np = rp.nbs[nb];
      np.sh_of_rate.resize(nc);
      np.own_of_rate.resize(nc);
      np.count_upto.assign(nc, 0);
      for (std::size_t i = 0; i < sh.size(); ++i) {
        np.sh_of_rate[rp.node_lg[static_cast<std::size_t>(sh[i])]].push_back(
            static_cast<int>(i));
      }
      // Concat slot of each position, rate-major — fixed across steps
      // because active rates always form the prefix lg <= C_k.
      std::vector<int> slot_of(sh.size(), 0);
      int slot = 0;
      for (std::size_t lg = 0; lg < nc; ++lg) {
        for (const int i : np.sh_of_rate[lg]) {
          slot_of[static_cast<std::size_t>(i)] = slot++;
        }
        np.count_upto[lg] =
            static_cast<std::size_t>(slot);
      }
      for (const int i : L.own_first[nb]) {
        const std::uint8_t lg =
            rp.node_lg[static_cast<std::size_t>(sh[static_cast<std::size_t>(i)])];
        np.own_of_rate[lg].push_back(
            {i, slot_of[static_cast<std::size_t>(i)]});
      }
    }
  }

  lts_plan = std::move(plan);
  lts_plan_max_rate = max_rate;
  return *lts_plan;
}

ParallelResult ParallelSetup::Impl::run_lts(
    double t_end, std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions,
    const lts::LtsOptions& lts, const RunControl& control) {
  if (!lts.enabled) {
    // Global-dt path, untouched: same code, same bits as before LTS existed.
    return run(t_end, sources, receiver_positions, FaultToleranceOptions{},
               control);
  }
  if (rayleigh) {
    throw std::invalid_argument(
        "run_lts: Rayleigh damping couples u^{k-1} across rates; use the "
        "global-dt path");
  }
  const std::lock_guard<std::mutex> run_lock(run_mutex);
  const LtsPlan& plan = get_lts_plan(lts.max_rate);
  const lts::Clustering& cl = plan.cl;
  const int n_classes = cl.n_classes;
  const int n_steps = static_cast<int>(std::ceil(t_end / dt));

  ParallelResult result;
  result.dt = dt;
  result.n_steps = n_steps;
  result.steps_completed = n_steps;
  result.u_final.assign(3 * mesh.n_nodes(), 0.0);
  result.rank_stats.assign(static_cast<std::size_t>(R), {});
  result.receiver_histories.assign(receiver_positions.size(), {});

  std::vector<std::vector<std::pair<int, int>>> recv_of(
      static_cast<std::size_t>(R));
  for (std::size_t ri = 0; ri < receiver_positions.size(); ++ri) {
    const mesh::NodeId n = solver::nearest_node(mesh, receiver_positions[ri]);
    const int owner = part.node_owner[static_cast<std::size_t>(n)];
    const auto it = locals[static_cast<std::size_t>(owner)].local_of.find(n);
    if (it == locals[static_cast<std::size_t>(owner)].local_of.end()) {
      throw std::invalid_argument(
          "run_lts: receiver " + std::to_string(ri) + " snaps to node " +
          std::to_string(n) + ", which no element touches (orphan node)");
    }
    recv_of[static_cast<std::size_t>(owner)].push_back(
        {static_cast<int>(ri), it->second});
    result.receiver_histories[ri].reserve(static_cast<std::size_t>(n_steps));
  }

  // Plain-communicator policy, as in run_batch: no injected faults, no
  // deadline on blocking ops, no in-place recovery.
  comm.clear_fault_plan();
  comm.set_timeout(0.0);
  comm.set_recovery({false, 0});

  const bool ctl_active = control.active();
  const int ctl_every = std::max(1, control.check_every);
  const auto run_start = std::chrono::steady_clock::now();

  const fem::HexReference& ref = fem::HexReference::get();
  std::vector<obs::Registry> rank_regs(static_cast<std::size_t>(R));
  int agreed_stop = n_steps;  // written by rank 0, read after join

  const auto spmd_body = [&](Rank& rank) {
    const std::size_t r = static_cast<std::size_t>(rank.id());
    const obs::ScopedRegistry obs_install(rank_regs[r]);
    RankLocal& L = locals[r];
    const LtsPlan::RankPlan& rp = plan.ranks[r];
    const auto& RV = recv_of[r];
    const std::size_t nd = 3 * L.nodes.size();
    // un is the time-k field the kernels read: the interpolation bracket
    // (u_prev, u) of every node evaluated at the current fine step.
    std::vector<double> u(nd, 0.0), u_prev(nd, 0.0), un(nd, 0.0);
    std::vector<double> f(nd, 0.0), ku(nd, 0.0);

    util::StopWatch compute_watch, exchange_watch, overlap_watch, drain_watch;
    std::uint64_t flops = 0;
    std::uint64_t elem_updates = 0;
    std::uint64_t doubles_sent = 0;
    obs::counter_add("comm/msgs_sent", 0);
    obs::counter_add("comm/bytes_sent", 0);
    obs::gauge_set("par/dt", dt);
    obs::gauge_set("par/lts_n_classes", static_cast<double>(n_classes));

    // Active-cadence cap at fine step k: rates/classes lg <= cap(k) run.
    const auto active_cap = [&](int k) {
      return k == 0 ? n_classes - 1
                    : std::min(n_classes - 1,
                               std::countr_zero(static_cast<unsigned>(k)));
    };

    auto accumulate = [&](std::vector<double>& x,
                          const std::vector<LocalConstraint>& cons) {
      for (const LocalConstraint& c : cons) {
        for (int comp = 0; comp < 3; ++comp) {
          const std::size_t hd = 3 * static_cast<std::size_t>(c.node) +
                                 static_cast<std::size_t>(comp);
          for (int m = 0; m < c.n; ++m) {
            x[3 * static_cast<std::size_t>(
                     c.masters[static_cast<std::size_t>(m)]) +
              static_cast<std::size_t>(comp)] +=
                c.weights[static_cast<std::size_t>(m)] * x[hd];
          }
          x[hd] = 0.0;
        }
      }
    };

    double ue[fem::kHexDofs], ye[fem::kHexDofs];
    auto apply_elems = [&](const std::vector<int>& list) {
      for (const int le_i : list) {
        const std::size_t le = static_cast<std::size_t>(le_i);
        const std::size_t ge = static_cast<std::size_t>(L.elems[le]);
        const auto& c = L.conn[le];
        for (int i = 0; i < 8; ++i) {
          const std::size_t base =
              3 * static_cast<std::size_t>(c[static_cast<std::size_t>(i)]);
          ue[3 * i] = un[base];
          ue[3 * i + 1] = un[base + 1];
          ue[3 * i + 2] = un[base + 2];
        }
        std::fill(ye, ye + fem::kHexDofs, 0.0);
        const double h = mesh.elem_size[ge];
        const vel::Material& mat = mesh.elem_mat[ge];
        fem::hex_apply(ref, ue, h * mat.lambda, h * mat.mu, ye, 0.0, nullptr);
        for (int i = 0; i < 8; ++i) {
          const std::size_t base =
              3 * static_cast<std::size_t>(c[static_cast<std::size_t>(i)]);
          ku[base] += ye[3 * i];
          ku[base + 1] += ye[3 * i + 1];
          ku[base + 2] += ye[3 * i + 2];
        }
        flops += fem::hex_apply_flops(false);
      }
      elem_updates += list.size();
      obs::counter_add("par/elements_processed",
                       static_cast<std::int64_t>(list.size()));
      obs::counter_add("par/element_updates",
                       static_cast<std::int64_t>(list.size()));
    };
    auto apply_faces = [&](const std::vector<RankLocal::Face>& list) {
      if (op_opt.abc != fem::AbcType::kStacey) return;
      double uf[12], yf[12];
      for (const auto& face : list) {
        if (!op_opt.absorbing_sides[static_cast<std::size_t>(face.side)]) {
          continue;
        }
        const std::size_t ge = static_cast<std::size_t>(
            L.elems[static_cast<std::size_t>(face.elem)]);
        const auto& fn = mesh::kFaceNodes[static_cast<std::size_t>(face.side)];
        const auto& c = L.conn[static_cast<std::size_t>(face.elem)];
        for (int i = 0; i < 4; ++i) {
          const std::size_t base = 3 * static_cast<std::size_t>(
              c[static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
          uf[3 * i] = un[base];
          uf[3 * i + 1] = un[base + 1];
          uf[3 * i + 2] = un[base + 2];
        }
        std::fill(yf, yf + 12, 0.0);
        fem::face_stacey_apply(mesh.elem_mat[ge], mesh.elem_size[ge],
                               face.side, uf, yf);
        for (int i = 0; i < 4; ++i) {
          const std::size_t base = 3 * static_cast<std::size_t>(
              c[static_cast<std::size_t>(fn[static_cast<std::size_t>(i)])]);
          ku[base] += yf[3 * i];
          ku[base + 1] += yf[3 * i + 1];
          ku[base + 2] += yf[3 * i + 2];
        }
        flops += fem::face_stacey_flops();
      }
    };

    // The node's bracket (u_prev, u) evaluated at fine step k_target, for
    // one node. A node of rate p active at k_target holds u = u^{k_target}
    // exactly (m == 0 takes u directly — bitwise for rate-1 nodes); a stale
    // node interpolates linearly inside its bracket.
    const auto node_at = [&](std::size_t li, int k_target, double* out) {
      const int lg = rp.node_lg[li];
      const int m = k_target & ((1 << lg) - 1);
      const std::size_t base = 3 * li;
      if (m == 0) {
        out[0] = u[base];
        out[1] = u[base + 1];
        out[2] = u[base + 2];
      } else {
        const double th =
            static_cast<double>(m) / static_cast<double>(1 << lg);
        for (int c = 0; c < 3; ++c) {
          out[c] = u_prev[base + static_cast<std::size_t>(c)] +
                   th * (u[base + static_cast<std::size_t>(c)] -
                         u_prev[base + static_cast<std::size_t>(c)]);
        }
      }
    };

    int stop_k = n_steps;
    for (int k = 0; k < n_steps; ++k) {
      QUAKE_OBS_SCOPE("step");

      if (ctl_active && k % ctl_every == 0) {
        double want_stop = 0.0;
        if (control.cancel != nullptr &&
            control.cancel->load(std::memory_order_relaxed)) {
          want_stop = 1.0;
        }
        if (control.deadline_seconds > 0.0 &&
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          run_start)
                    .count() >= control.deadline_seconds) {
          want_stop = 1.0;
        }
        if (rank.allreduce_max(want_stop) > 0.0) {
          obs::counter_add("par/steps_cancelled", n_steps - k);
          stop_k = k;
          break;
        }
      }

      const double t_k = k * dt;
      const int cap = active_cap(k);

      {
      QUAKE_OBS_SCOPE("compute");  // time-k gather + boundary classes
      compute_watch.start();
      for (std::size_t i = 0; i < L.nodes.size(); ++i) {
        node_at(i, k, un.data() + 3 * i);
      }
      std::fill(ku.begin(), ku.end(), 0.0);
      for (int c = 0; c <= cap; ++c) {
        apply_elems(rp.bnd_elems[static_cast<std::size_t>(c)]);
        apply_faces(rp.bnd_faces[static_cast<std::size_t>(c)]);
      }
      // Full boundary fold, active or not: an inactive constraint group
      // shares one (inactive) cadence, so its garbage partials land only on
      // inactive masters — never sent (compacted out of the message) and
      // never read (the update skips them). Active groups fold complete
      // partials by the scheduling invariant. Keeping the fold whole is
      // what keeps the single-class run on run()'s exact operation order.
      accumulate(ku, L.cons_boundary);
      compute_watch.stop();
      }

      // ---- post: per-neighbor messages carry only active-rate shared
      // nodes, rate-major; a coarse-only edge goes quiet between its
      // updates (zero-length messages are skipped on both sides) ----
      {
      QUAKE_OBS_SCOPE("exchange");
      exchange_watch.start();
      {
      QUAKE_OBS_SCOPE("post");
      for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
        const LtsPlan::NbPlan& np = rp.nbs[nb];
        const std::size_t len =
            3 * np.count_upto[static_cast<std::size_t>(cap)];
        if (len == 0) continue;
        auto& buf = L.sendbuf[nb];
        const auto& sh = L.neighbors[nb].shared;
        std::size_t o = 0;
        for (int lg = 0; lg <= cap; ++lg) {
          for (const int i : np.sh_of_rate[static_cast<std::size_t>(lg)]) {
            const std::size_t base = 3 * static_cast<std::size_t>(
                sh[static_cast<std::size_t>(i)]);
            buf[o] = ku[base];
            buf[o + 1] = ku[base + 1];
            buf[o + 2] = ku[base + 2];
            o += 3;
          }
        }
        rank.send(L.neighbors[nb].rank, /*tag=*/0,
                  std::span<const double>(buf.data(), len));
        doubles_sent += len;
      }
      // Re-zero the active shared entries (the drain rebuilds them in
      // ascending rank order); stale-rate entries keep their garbage, which
      // the next full ku zero clears before anyone could read it.
      for (int lg = 0; lg <= cap; ++lg) {
        for (const int li : rp.shared_of_rate[static_cast<std::size_t>(lg)]) {
          const std::size_t base = 3 * static_cast<std::size_t>(li);
          ku[base] = ku[base + 1] = ku[base + 2] = 0.0;
        }
      }
      }
      exchange_watch.stop();
      }

      // ---- overlap window: sources, interior classes ----
      {
      QUAKE_OBS_SCOPE("compute");
      compute_watch.start();
      overlap_watch.start();
      std::fill(f.begin(), f.end(), 0.0);
      RankForceSink sink(L.local_of, f);
      for (const solver::SourceModel* s : sources) s->add_forces(t_k, sink);
      accumulate(f, L.cons);
      for (int c = 0; c <= cap; ++c) {
        apply_elems(rp.int_elems[static_cast<std::size_t>(c)]);
        apply_faces(rp.int_faces[static_cast<std::size_t>(c)]);
      }
      accumulate(ku, L.cons_interior);
      overlap_watch.stop();
      compute_watch.stop();
      }

      // ---- drain: run()'s protocol over the edges that sent this step ----
      {
      QUAKE_OBS_SCOPE("exchange");
      exchange_watch.start();
      drain_watch.start();
      {
        QUAKE_OBS_SCOPE("drain");
        {
          QUAKE_OBS_SCOPE("wait");
          constexpr int kIdlePassLimit = 64;
          std::size_t n_pending = 0;
          for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
            // Quiet edges (no active shared nodes) are pre-marked arrived.
            const std::size_t len =
                3 * rp.nbs[nb].count_upto[static_cast<std::size_t>(cap)];
            L.nb_arrived[nb] = len == 0 ? 1 : 0;
            n_pending += len == 0 ? 0 : 1;
          }
          int idle_passes = 0;
          while (n_pending > 0) {
            std::size_t progressed = 0;
            std::size_t first_pending = L.neighbors.size();
            for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
              if (L.nb_arrived[nb] != 0) continue;
              const std::size_t len =
                  3 * rp.nbs[nb].count_upto[static_cast<std::size_t>(cap)];
              if (rank.try_recv_into(
                      L.neighbors[nb].rank, /*tag=*/0,
                      std::span<double>(L.recvbuf[nb].data(), len))) {
                L.nb_arrived[nb] = 1;
                --n_pending;
                ++progressed;
              } else if (first_pending == L.neighbors.size()) {
                first_pending = nb;
              }
            }
            if (n_pending == 0 || progressed > 0) {
              idle_passes = 0;
            } else if (++idle_passes < kIdlePassLimit) {
              std::this_thread::yield();
            } else {
              const std::size_t len =
                  3 * rp.nbs[first_pending]
                          .count_upto[static_cast<std::size_t>(cap)];
              rank.recv_into(
                  L.neighbors[first_pending].rank, /*tag=*/0,
                  std::span<double>(L.recvbuf[first_pending].data(), len));
              L.nb_arrived[first_pending] = 1;
              --n_pending;
              idle_passes = 0;
            }
          }
        }
        for (int s = 0; s < R; ++s) {
          if (s == rank.id()) {
            for (std::size_t nb = 0; nb < L.neighbors.size(); ++nb) {
              const auto& sh = L.neighbors[nb].shared;
              const auto& buf = L.sendbuf[nb];
              const LtsPlan::NbPlan& np = rp.nbs[nb];
              for (int lg = 0; lg <= cap; ++lg) {
                for (const auto& [i, slot] :
                     np.own_of_rate[static_cast<std::size_t>(lg)]) {
                  const std::size_t base = 3 * static_cast<std::size_t>(
                      sh[static_cast<std::size_t>(i)]);
                  const std::size_t bb = 3 * static_cast<std::size_t>(slot);
                  ku[base] += buf[bb];
                  ku[base + 1] += buf[bb + 1];
                  ku[base + 2] += buf[bb + 2];
                }
              }
            }
            continue;
          }
          const int nbi = L.nb_of_rank[static_cast<std::size_t>(s)];
          if (nbi < 0) continue;
          const auto& msg = L.recvbuf[static_cast<std::size_t>(nbi)];
          const auto& sh = L.neighbors[static_cast<std::size_t>(nbi)].shared;
          const LtsPlan::NbPlan& np = rp.nbs[static_cast<std::size_t>(nbi)];
          std::size_t o = 0;
          for (int lg = 0; lg <= cap; ++lg) {
            for (const int i : np.sh_of_rate[static_cast<std::size_t>(lg)]) {
              const std::size_t base = 3 * static_cast<std::size_t>(
                  sh[static_cast<std::size_t>(i)]);
              ku[base] += msg[o];
              ku[base + 1] += msg[o + 1];
              ku[base + 2] += msg[o + 2];
              o += 3;
            }
          }
        }
      }
      drain_watch.stop();
      exchange_watch.stop();
      }

      {
      QUAKE_OBS_SCOPE("compute");  // eq. 2.4 over active rates, in place
      compute_watch.start();
      for (int lg = 0; lg <= cap; ++lg) {
        const auto& list = rp.nodes_of_rate[static_cast<std::size_t>(lg)];
        for (const int li : list) {
          const std::size_t base = 3 * static_cast<std::size_t>(li);
          for (int c = 0; c < 3; ++c) {
            const std::size_t d = base + static_cast<std::size_t>(c);
            const double rhs = 2.0 * L.mass[d] * u[d] - rp.dt2n[d] * ku[d] +
                               rp.dt2n[d] * f[d] +
                               (rp.hdtn[d] * L.am[d] - L.mass[d]) * u_prev[d] +
                               rp.hdtn[d] * L.cab[d] * u_prev[d];
            const double u_new = rhs * rp.inv_lhs[d];
            u_prev[d] = u[d];
            u[d] = u_new;
          }
        }
        flops += 3ull * list.size() * 14ull;
        // Per-rate hanging-node expansion: the group shares this cadence,
        // so its masters hold fresh u exactly when the group expands.
        for (const LocalConstraint& c :
             rp.cons_of_rate[static_cast<std::size_t>(lg)]) {
          for (int comp = 0; comp < 3; ++comp) {
            double v = 0.0;
            for (int m = 0; m < c.n; ++m) {
              v += c.weights[static_cast<std::size_t>(m)] *
                   u[3 * static_cast<std::size_t>(
                            c.masters[static_cast<std::size_t>(m)]) +
                     static_cast<std::size_t>(comp)];
            }
            u[3 * static_cast<std::size_t>(c.node) +
              static_cast<std::size_t>(comp)] = v;
          }
        }
      }

      // Receivers read the time-(k+1) field through the same bracket
      // (direct u for rate-1 nodes — bitwise against run()).
      for (const auto& [ri, ln] : RV) {
        double s[3];
        node_at(static_cast<std::size_t>(ln), k + 1, s);
        result.receiver_histories[static_cast<std::size_t>(ri)].push_back(
            {s[0], s[1], s[2]});
      }
      compute_watch.stop();
      }
    }

    // ---- finish: every node's bracket evaluated at the stop step (direct
    // u on a class-1 run or wherever the rate divides stop_k) ----
    for (std::size_t i = 0; i < L.nodes.size(); ++i) {
      if (L.owned[i] == 0) continue;
      double s[3];
      node_at(i, stop_k, s);
      const std::size_t g = 3 * static_cast<std::size_t>(L.nodes[i]);
      result.u_final[g] = s[0];
      result.u_final[g + 1] = s[1];
      result.u_final[g + 2] = s[2];
    }

    const double overlap_s = overlap_watch.total_seconds();
    const double drain_s = drain_watch.total_seconds();
    const double overlap_fraction =
        (L.neighbors.empty() || overlap_s + drain_s <= 0.0)
            ? 0.0
            : overlap_s / (overlap_s + drain_s);

    auto& st = result.rank_stats[r];
    st.n_elems = L.elems.size();
    st.n_boundary_elems = L.boundary_elems.size();
    st.n_interior_elems = L.interior_elems.size();
    st.n_local_nodes = L.nodes.size();
    st.n_neighbors = L.neighbors.size();
    st.doubles_sent_per_step =
        doubles_sent / static_cast<std::size_t>(std::max(1, stop_k));
    st.flops = flops;
    st.element_updates = elem_updates;
    st.compute_seconds = compute_watch.total_seconds();
    st.exchange_seconds = exchange_watch.total_seconds();
    st.overlap_fraction = overlap_fraction;

    const std::uint64_t global_updates =
        static_cast<std::uint64_t>(std::max(0, stop_k)) *
        static_cast<std::uint64_t>(L.elems.size());
    obs::gauge_set("par/n_elems", static_cast<double>(L.elems.size()));
    obs::gauge_set("par/doubles_sent_per_step",
                   static_cast<double>(st.doubles_sent_per_step));
    obs::gauge_set("par/lts_updates_saved_ratio",
                   elem_updates > 0 ? static_cast<double>(global_updates) /
                                          static_cast<double>(elem_updates)
                                    : 1.0);
    obs::gauge_set("par/compute_seconds", compute_watch.total_seconds());
    obs::gauge_set("par/exchange_seconds", exchange_watch.total_seconds());
    obs::gauge_set("par/overlap_fraction", overlap_fraction);

    if (obs::enabled()) {
      if (rank.id() == 0) {
        std::vector<obs::RankReport> reports;
        reports.reserve(static_cast<std::size_t>(R));
        reports.push_back(obs::RankReport{0, rank_regs[0]});
        for (int s = 1; s < R; ++s) {
          reports.push_back(obs::decode_report(rank.recv(s, kObsGatherTag)));
        }
        result.obs_summary = obs::merge_reports(reports);
        result.obs_reports = std::move(reports);
      } else {
        rank.send(0, kObsGatherTag,
                  obs::encode_report(obs::RankReport{rank.id(), rank_regs[r]}));
      }
    }
    if (rank.id() == 0) agreed_stop = stop_k;
  };

  comm.run(spmd_body);
  if (agreed_stop < n_steps) {
    result.cancelled = true;
    result.steps_completed = agreed_stop;
  }
  return result;
}

ParallelSetup::ParallelSetup(const mesh::HexMesh& mesh, const Partition& part,
                             const solver::OperatorOptions& op_opt,
                             const solver::SolverOptions& base)
    : impl_(std::make_unique<Impl>(mesh, part, op_opt, base)) {}

ParallelSetup::~ParallelSetup() = default;

double ParallelSetup::dt() const { return impl_->dt; }

int ParallelSetup::n_ranks() const { return impl_->R; }

const mesh::HexMesh& ParallelSetup::mesh() const { return impl_->mesh; }

std::vector<std::vector<int>> ParallelSetup::neighbor_ranks() const {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(impl_->R));
  for (int r = 0; r < impl_->R; ++r) {
    const auto& nbs = impl_->locals[static_cast<std::size_t>(r)].neighbors;
    adj[static_cast<std::size_t>(r)].reserve(nbs.size());
    for (const auto& nb : nbs) {
      adj[static_cast<std::size_t>(r)].push_back(nb.rank);
    }
    std::sort(adj[static_cast<std::size_t>(r)].begin(),
              adj[static_cast<std::size_t>(r)].end());
  }
  return adj;
}

int ParallelSetup::n_steps(double t_end) const {
  return static_cast<int>(std::ceil(t_end / impl_->dt));
}

ParallelResult ParallelSetup::run(
    double t_end, std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions,
    const FaultToleranceOptions& ft, const RunControl& control) {
  return impl_->run(t_end, sources, receiver_positions, ft, control);
}

std::vector<ParallelResult> ParallelSetup::run_batch(
    double t_end, std::span<const BatchScenario> scenarios,
    const RunControl& control) {
  return impl_->run_batch(t_end, scenarios, control);
}

ParallelResult ParallelSetup::run_lts(
    double t_end, std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions,
    const lts::LtsOptions& lts, const RunControl& control) {
  return impl_->run_lts(t_end, sources, receiver_positions, lts, control);
}

ParallelResult run_parallel(
    const mesh::HexMesh& mesh, const Partition& part,
    const solver::OperatorOptions& op_opt, const solver::SolverOptions& so,
    std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions) {
  return run_parallel(mesh, part, op_opt, so, sources, receiver_positions,
                      FaultToleranceOptions{});
}

ParallelResult run_parallel(
    const mesh::HexMesh& mesh, const Partition& part,
    const solver::OperatorOptions& op_opt, const solver::SolverOptions& so,
    std::span<const solver::SourceModel* const> sources,
    std::span<const std::array<double, 3>> receiver_positions,
    const FaultToleranceOptions& ft) {
  ParallelSetup setup(mesh, part, op_opt, so);
  return setup.run(so.t_end, sources, receiver_positions, ft);
}

double modeled_efficiency(const ParallelResult& r, const MachineModel& m) {
  if (r.rank_stats.empty() || r.n_steps == 0) return 1.0;
  double total_flops = 0.0;
  double worst = 0.0;
  for (const auto& s : r.rank_stats) {
    total_flops += static_cast<double>(s.flops);
    const double flops_step =
        static_cast<double>(s.flops) / static_cast<double>(r.n_steps);
    const double t = flops_step / m.flops_per_sec +
                     static_cast<double>(s.n_neighbors) * m.latency_sec +
                     static_cast<double>(s.doubles_sent_per_step) * 8.0 /
                         m.bytes_per_sec;
    worst = std::max(worst, t);
  }
  const double t1 =
      total_flops / static_cast<double>(r.n_steps) / m.flops_per_sec;
  const double denom =
      static_cast<double>(r.rank_stats.size()) * worst;
  return denom > 0.0 ? t1 / denom : 1.0;
}

}  // namespace quake::par
