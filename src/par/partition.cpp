#include "quake/par/partition.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace quake::par {

double Partition::imbalance() const {
  if (stats.empty()) return 1.0;
  std::size_t total = 0, worst = 0;
  for (const auto& s : stats) {
    total += s.n_elems;
    worst = std::max(worst, s.n_elems);
  }
  const double mean = static_cast<double>(total) / static_cast<double>(stats.size());
  return mean > 0.0 ? static_cast<double>(worst) / mean : 1.0;
}

Partition partition_sfc(const mesh::HexMesh& mesh, int n_ranks) {
  if (n_ranks < 1) throw std::invalid_argument("partition_sfc: n_ranks >= 1");
  const std::size_t ne = mesh.n_elements();
  Partition p;
  p.n_ranks = n_ranks;
  p.elem_rank.resize(ne);
  p.rank_elems.assign(static_cast<std::size_t>(n_ranks), {});
  // Contiguous chunks along the SFC order with balanced counts.
  for (std::size_t e = 0; e < ne; ++e) {
    const int r = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(n_ranks) - 1,
                              e * static_cast<std::size_t>(n_ranks) / ne));
    p.elem_rank[e] = r;
    p.rank_elems[static_cast<std::size_t>(r)].push_back(
        static_cast<mesh::ElemId>(e));
  }

  // Node ownership: lowest rank whose elements touch the node.
  p.node_owner.assign(mesh.n_nodes(), n_ranks);
  // Ranks touching each node, for shared-node statistics.
  std::vector<std::set<int>> touchers(mesh.n_nodes());
  for (std::size_t e = 0; e < ne; ++e) {
    for (const mesh::NodeId n : mesh.elem_nodes[e]) {
      const std::size_t ni = static_cast<std::size_t>(n);
      p.node_owner[ni] = std::min(p.node_owner[ni], p.elem_rank[e]);
      touchers[ni].insert(p.elem_rank[e]);
    }
  }
  // A node touched by no element keeps the out-of-range sentinel; clamp it
  // to rank 0 so node_owner is always a valid rank index (the sentinel used
  // to escape into locals[owner] / u_final gather indexing downstream).
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    if (p.node_owner[n] == n_ranks) {
      p.node_owner[n] = 0;
      ++p.n_orphan_nodes;
    }
  }

  p.stats.assign(static_cast<std::size_t>(n_ranks), {});
  for (std::size_t r = 0; r < static_cast<std::size_t>(n_ranks); ++r) {
    p.stats[r].n_elems = p.rank_elems[r].size();
  }
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    for (int r : touchers[n]) {
      ++p.stats[static_cast<std::size_t>(r)].n_nodes;
      if (touchers[n].size() > 1) {
        ++p.stats[static_cast<std::size_t>(r)].n_shared_nodes;
      }
    }
  }
  return p;
}

}  // namespace quake::par
