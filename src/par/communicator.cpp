#include "quake/par/communicator.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

namespace quake::par {

Communicator::Communicator(int n_ranks) : n_ranks_(n_ranks) {
  if (n_ranks < 1) throw std::invalid_argument("Communicator: n_ranks >= 1");
}

void Rank::send(int dest, int tag, std::span<const double> data) {
  sent_ += data.size();
  comm_->post(id_, dest, tag, std::vector<double>(data.begin(), data.end()));
}

std::vector<double> Rank::recv(int src, int tag) {
  return comm_->take(src, id_, tag);
}

void Rank::barrier() { comm_->barrier_wait(); }

double Rank::allreduce_sum(double v) { return comm_->reduce(v, false); }
double Rank::allreduce_max(double v) { return comm_->reduce(v, true); }

void Communicator::post(int src, int dst, int tag, std::vector<double> msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    boxes_[{src, dst, tag}].messages.push(std::move(msg));
  }
  cv_.notify_all();
}

std::vector<double> Communicator::take(int src, int dst, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  auto key = std::tuple<int, int, int>{src, dst, tag};
  cv_.wait(lock, [&] {
    auto it = boxes_.find(key);
    return it != boxes_.end() && !it->second.messages.empty();
  });
  auto& q = boxes_[key].messages;
  std::vector<double> msg = std::move(q.front());
  q.pop();
  return msg;
}

void Communicator::barrier_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t gen = barrier_gen_;
  if (++barrier_count_ == n_ranks_) {
    barrier_count_ = 0;
    ++barrier_gen_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return barrier_gen_ != gen; });
  }
}

double Communicator::reduce(double v, bool max_mode) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t gen = reduce_gen_;
  if (reduce_count_ == 0) {
    reduce_acc_ = v;
  } else {
    reduce_acc_ = max_mode ? std::max(reduce_acc_, v) : reduce_acc_ + v;
  }
  if (++reduce_count_ == n_ranks_) {
    reduce_result_ = reduce_acc_;
    reduce_count_ = 0;
    ++reduce_gen_;
    cv_.notify_all();
    return reduce_result_;
  }
  cv_.wait(lock, [&] { return reduce_gen_ != gen; });
  return reduce_result_;
}

void Communicator::run(const std::function<void(Rank&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_ranks_));
  threads.reserve(static_cast<std::size_t>(n_ranks_));
  std::vector<Rank> ranks;
  ranks.reserve(static_cast<std::size_t>(n_ranks_));
  for (int r = 0; r < n_ranks_; ++r) {
    ranks.push_back(Rank(this, r, n_ranks_));
  }
  for (int r = 0; r < n_ranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(ranks[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  boxes_.clear();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace quake::par
