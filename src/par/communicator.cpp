#include "quake/par/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

#include "quake/obs/obs.hpp"

namespace quake::par {
namespace {

std::string failure_report(
    const std::vector<std::pair<int, std::string>>& failures) {
  std::string report = std::to_string(failures.size()) + " rank(s) failed:";
  for (const auto& [rank, what] : failures) {
    report += " [rank " + std::to_string(rank) + ": " + what + "]";
  }
  return report;
}

std::vector<int> failed_ids(
    const std::vector<std::pair<int, std::string>>& failures) {
  std::vector<int> ids;
  ids.reserve(failures.size());
  for (const auto& [rank, what] : failures) ids.push_back(rank);
  return ids;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Communicator::Communicator(int n_ranks) : n_ranks_(n_ranks) {
  if (n_ranks < 1) throw std::invalid_argument("Communicator: n_ranks >= 1");
  blocked_.resize(static_cast<std::size_t>(n_ranks));
}

void Communicator::install_fault_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  has_plan_ = true;
  kill_fired_.assign(plan_.kills.size(), 0);
  msg_fired_.assign(plan_.msg_faults.size(), 0);
}

void Communicator::clear_fault_plan() {
  std::lock_guard<std::mutex> lock(mu_);
  has_plan_ = false;
  kill_fired_.clear();
  msg_fired_.clear();
}

void Rank::send(int dest, int tag, std::span<const double> data) {
  sent_ += data.size();
  obs::counter_add("comm/msgs_sent", 1);
  obs::counter_add("comm/bytes_sent",
                   static_cast<std::int64_t>(8 * data.size()));
  // Recycled storage is filled before the post takes the lock, so a large
  // copy never serializes the other ranks' communication.
  std::vector<double> msg;
  if (!pool_.empty()) {
    msg = std::move(pool_.back());
    pool_.pop_back();
  }
  msg.assign(data.begin(), data.end());
  comm_->post(id_, dest, tag, std::move(msg));
}

std::vector<double> Rank::recv(int src, int tag, double timeout_sec) {
  std::vector<double> msg = comm_->take(src, id_, tag, timeout_sec);
  obs::counter_add("comm/msgs_recv", 1);
  obs::counter_add("comm/bytes_recv",
                   static_cast<std::int64_t>(8 * msg.size()));
  return msg;
}

void Rank::recv_into(int src, int tag, std::span<double> out,
                     double timeout_sec) {
  pool_.push_back(comm_->take_into(src, id_, tag, out, timeout_sec));
  obs::counter_add("comm/msgs_recv", 1);
  obs::counter_add("comm/bytes_recv",
                   static_cast<std::int64_t>(8 * out.size()));
}

bool Rank::try_recv(int src, int tag, std::vector<double>& out) {
  if (!comm_->try_take(src, id_, tag, out)) return false;
  obs::counter_add("comm/msgs_recv", 1);
  obs::counter_add("comm/bytes_recv",
                   static_cast<std::int64_t>(8 * out.size()));
  return true;
}

bool Rank::try_recv_into(int src, int tag, std::span<double> out) {
  std::vector<double> spent;
  if (!comm_->try_take_into(src, id_, tag, out, spent)) return false;
  pool_.push_back(std::move(spent));
  obs::counter_add("comm/msgs_recv", 1);
  obs::counter_add("comm/bytes_recv",
                   static_cast<std::int64_t>(8 * out.size()));
  return true;
}

void Rank::barrier(double timeout_sec) {
  comm_->barrier_wait(id_, timeout_sec);
}

double Rank::allreduce_sum(double v) {
  return comm_->reduce(id_, v, Communicator::ReduceMode::kSum);
}
double Rank::allreduce_max(double v) {
  return comm_->reduce(id_, v, Communicator::ReduceMode::kMax);
}
double Rank::allreduce_min(double v) {
  return comm_->reduce(id_, v, Communicator::ReduceMode::kMin);
}

std::vector<double> Rank::allgather(double v) {
  return comm_->gather_all(id_, v);
}

void Rank::fault_point(int step) { comm_->fault_point(id_, step); }

bool Rank::await_recovery() { return comm_->await_recovery(id_); }

std::uint64_t Rank::epoch() const { return comm_->epoch(); }

void Communicator::fault_point(int rank, int step) {
  // Solvers call this (at least) once per rank per step: skip the global
  // mutex entirely on the common no-plan path.
  if (!has_plan_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < plan_.kills.size(); ++i) {
    if (kill_fired_[i] >= plan_.kills[i].times) continue;
    if (plan_.kills[i].rank != rank || plan_.kills[i].step != step) continue;
    ++kill_fired_[i];
    // fault_point runs on the victim's own thread, so the event lands in
    // the victim rank's registry.
    obs::counter_add("comm/fault_kills", 1);
    throw InjectedFaultError("injected fault: kill rank " +
                             std::to_string(rank) + " at step " +
                             std::to_string(step));
  }
}

void Communicator::throw_if_down_locked() {
  if (deadlocked_) throw DeadlockError(deadlock_report_);
  if (poisoned_) {
    throw RankFailedError("communicator poisoned: " +
                              failure_report(failures_),
                          failed_ids(failures_));
  }
}

void Communicator::poison(int rank, const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    failures_.emplace_back(rank, what);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void Communicator::block_locked(int rank, Blocked b) {
  blocked_[static_cast<std::size_t>(rank)] = b;
  ++n_blocked_;
  check_deadlock_locked();
}

void Communicator::unblock_locked(int rank) {
  blocked_[static_cast<std::size_t>(rank)].kind = Blocked::Kind::kNone;
  --n_blocked_;
}

void Communicator::rank_done(int rank) {
  (void)rank;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --n_live_;
    check_deadlock_locked();
  }
  cv_.notify_all();
}

void Communicator::revive_locked(int rank, std::uint64_t new_epoch) {
  failures_.erase(
      std::remove_if(failures_.begin(), failures_.end(),
                     [rank](const std::pair<int, std::string>& f) {
                       return f.first == rank;
                     }),
      failures_.end());
  if (failures_.empty()) poisoned_ = false;
  // Flush every in-flight mailbox touching the failed rank: messages it
  // sent are from a state being rolled back, messages to it would be
  // consumed out of order by its restarted function. Stragglers between
  // survivors are left in place — the epoch fence discards them at
  // receive time.
  for (auto it = boxes_.begin(); it != boxes_.end();) {
    const auto& [src, dst, tag] = it->first;
    if (src == rank || dst == rank) {
      it = boxes_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    const auto& [src, dst, tag] = it->first;
    if (src == rank || dst == rank) {
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
  // No waiter survives a poisoning (they all woke and threw), so partially
  // filled barrier / reduction / gather counts are pre-failure garbage.
  // Generations are kept: a bumped generation would falsely release the
  // next wait.
  barrier_count_ = 0;
  reduce_count_ = 0;
  gather_count_ = 0;
  if (new_epoch > epoch_.load(std::memory_order_relaxed)) {
    epoch_.store(new_epoch, std::memory_order_relaxed);
  }
}

void Communicator::revive(int rank, std::uint64_t new_epoch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    revive_locked(rank, new_epoch);
  }
  cv_.notify_all();
}

bool Communicator::await_recovery(int rank) {
  (void)rank;
  std::unique_lock<std::mutex> lock(mu_);
  if (!recovery_.enabled || recovery_abandoned_ || deadlocked_) return false;
  const std::uint64_t parked_at = epoch_.load(std::memory_order_relaxed);
  ++n_parked_;
  cv_.notify_all();  // the monitor waits for every survivor to park
  cv_.wait(lock, [&] {
    return recovery_abandoned_ ||
           epoch_.load(std::memory_order_relaxed) != parked_at;
  });
  if (recovery_abandoned_) {
    --n_parked_;
    cv_.notify_all();
    return false;
  }
  return true;  // revived peers are live again; resume on the new epoch
}

// Deadlock iff every live rank is blocked and none of their waits can be
// satisfied by current state. Only live ranks can change that state, and
// all of them are blocked, so the condition is stable once observed (the
// check runs whenever a rank blocks or exits, under the lock).
void Communicator::check_deadlock_locked() {
  if (deadlocked_ || poisoned_) return;
  if (n_live_ == 0 || n_blocked_ != n_live_) return;
  for (int r = 0; r < n_ranks_; ++r) {
    const Blocked& b = blocked_[static_cast<std::size_t>(r)];
    switch (b.kind) {
      case Blocked::Kind::kNone:
        break;  // finished rank
      case Blocked::Kind::kRecv: {
        // Stale-epoch stragglers cannot satisfy a waiter: drop them here so
        // they do not mask a genuine deadlock.
        const auto it = boxes_.find({b.src, r, b.tag});
        if (it != boxes_.end()) {
          drop_stale_locked(it->second);
          if (!it->second.messages.empty()) return;
        }
        break;
      }
      case Blocked::Kind::kBarrier:
        if (barrier_gen_ != b.gen) return;  // release pending, will wake
        break;
      case Blocked::Kind::kReduce:
        if (reduce_gen_ != b.gen) return;
        break;
      case Blocked::Kind::kGather:
        if (gather_gen_ != b.gen) return;
        break;
    }
  }
  // A fault-delayed message still in flight counts as progress: flush it
  // instead of declaring deadlock.
  if (!delayed_.empty()) {
    for (auto& [key, msg] : delayed_) {
      boxes_[key].messages.push(std::move(msg));
    }
    delayed_.clear();
    cv_.notify_all();
    check_deadlock_locked();  // flushed edges may still satisfy no waiter
    return;
  }
  deadlock_report_ = "deadlock detected, all live ranks blocked:";
  for (int r = 0; r < n_ranks_; ++r) {
    const Blocked& b = blocked_[static_cast<std::size_t>(r)];
    switch (b.kind) {
      case Blocked::Kind::kNone:
        break;
      case Blocked::Kind::kRecv:
        deadlock_report_ += " [rank " + std::to_string(r) + ": recv(src=" +
                            std::to_string(b.src) +
                            ", tag=" + std::to_string(b.tag) + ")]";
        break;
      case Blocked::Kind::kBarrier:
        deadlock_report_ += " [rank " + std::to_string(r) + ": barrier]";
        break;
      case Blocked::Kind::kReduce:
        deadlock_report_ += " [rank " + std::to_string(r) + ": allreduce]";
        break;
      case Blocked::Kind::kGather:
        deadlock_report_ += " [rank " + std::to_string(r) + ": allgather]";
        break;
    }
  }
  deadlocked_ = true;
  cv_.notify_all();
}

void Communicator::post(int src, int dst, int tag, std::vector<double> msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    throw_if_down_locked();
    const auto key = std::tuple<int, int, int>{src, dst, tag};
    const int occurrence = edge_sends_[key]++;
    FaultPlan::MsgAction action = FaultPlan::MsgAction::kDrop;
    bool faulted = false;
    std::uint64_t fault_seed = 0;
    if (has_plan_) {
      for (std::size_t i = 0; i < plan_.msg_faults.size(); ++i) {
        const auto& f = plan_.msg_faults[i];
        if (msg_fired_[i] != 0 || f.src != src || f.dst != dst ||
            f.tag != tag || f.occurrence != occurrence) {
          continue;
        }
        msg_fired_[i] = 1;
        faulted = true;
        action = f.action;
        fault_seed = plan_.seed ^ splitmix64(i + 1);
        break;
      }
    }
    // Stamp the current recovery epoch at post time: if a failure and
    // revival happen while this message sits in the mailbox, the receive
    // side sees a stale epoch and discards it.
    const std::uint64_t ep = epoch_.load(std::memory_order_relaxed);
    auto deliver = [&](std::vector<double> m) {
      boxes_[key].messages.push(Msg{std::move(m), ep});
      // A previously delayed message on this edge rides after this one.
      auto d = delayed_.find(key);
      if (d != delayed_.end()) {
        boxes_[key].messages.push(std::move(d->second));
        delayed_.erase(d);
      }
    };
    if (!faulted) {
      deliver(std::move(msg));
    } else {
      // post() runs on the sender's thread: message-fault events are
      // charged to the rank whose send was tampered with.
      switch (action) {
        case FaultPlan::MsgAction::kDrop:
          obs::counter_add("comm/fault_drops", 1);
          break;
        case FaultPlan::MsgAction::kDuplicate:
          obs::counter_add("comm/fault_dups", 1);
          deliver(msg);
          deliver(std::move(msg));
          break;
        case FaultPlan::MsgAction::kCorrupt:
          obs::counter_add("comm/fault_corruptions", 1);
          if (!msg.empty()) {
            const std::size_t idx = static_cast<std::size_t>(
                splitmix64(fault_seed) % msg.size());
            std::uint64_t bits;
            std::memcpy(&bits, &msg[idx], sizeof(bits));
            bits ^= 1ULL << 51;  // flip a high mantissa bit
            std::memcpy(&msg[idx], &bits, sizeof(bits));
          }
          deliver(std::move(msg));
          break;
        case FaultPlan::MsgAction::kDelay:
          // Hold until the edge's next message (reordering); flushed by the
          // deadlock checker if the system would otherwise stall.
          obs::counter_add("comm/fault_delays", 1);
          delayed_[key] = Msg{std::move(msg), ep};
          break;
      }
    }
  }
  cv_.notify_all();
}

std::size_t Communicator::drop_stale_locked(Mailbox& box) {
  const std::uint64_t ep = epoch_.load(std::memory_order_relaxed);
  std::size_t dropped = 0;
  while (!box.messages.empty() && box.messages.front().epoch != ep) {
    box.messages.pop();
    ++dropped;
  }
  return dropped;
}

void Communicator::wait_for_message(std::unique_lock<std::mutex>& lock,
                                    int src, int dst, int tag,
                                    double timeout_sec) {
  throw_if_down_locked();
  const auto key = std::tuple<int, int, int>{src, dst, tag};
  std::size_t stale = 0;
  const auto ready = [&] {
    if (poisoned_ || deadlocked_) return true;
    auto it = boxes_.find(key);
    if (it == boxes_.end()) return false;
    stale += drop_stale_locked(it->second);
    return !it->second.messages.empty();
  };
  if (!ready()) {
    block_locked(dst, {Blocked::Kind::kRecv, src, tag, 0});
    const double t = effective_timeout(timeout_sec);
    if (t <= 0.0) {
      cv_.wait(lock, ready);
    } else if (!cv_.wait_for(lock, std::chrono::duration<double>(t), ready)) {
      unblock_locked(dst);
      throw TimeoutError("recv timeout on rank " + std::to_string(dst) +
                         ": recv(src=" + std::to_string(src) +
                         ", tag=" + std::to_string(tag) + ") after " +
                         std::to_string(t) + " s");
    }
    unblock_locked(dst);
  }
  if (stale != 0) {
    // Charged to the receiving rank's thread-local registry (we run on it).
    obs::counter_add("comm/stale_msgs_discarded",
                     static_cast<std::int64_t>(stale));
  }
  throw_if_down_locked();
}

std::vector<double> Communicator::take(int src, int dst, int tag,
                                       double timeout_sec) {
  std::unique_lock<std::mutex> lock(mu_);
  wait_for_message(lock, src, dst, tag, timeout_sec);
  auto& q = boxes_[std::tuple<int, int, int>{src, dst, tag}].messages;
  std::vector<double> msg = std::move(q.front().data);
  q.pop();
  return msg;
}

std::vector<double> Communicator::take_into(int src, int dst, int tag,
                                            std::span<double> out,
                                            double timeout_sec) {
  std::vector<double> msg;
  {
    std::unique_lock<std::mutex> lock(mu_);
    wait_for_message(lock, src, dst, tag, timeout_sec);
    auto& q = boxes_[std::tuple<int, int, int>{src, dst, tag}].messages;
    msg = std::move(q.front().data);
    q.pop();
  }
  if (msg.size() != out.size()) {
    throw CommError("recv_into size mismatch on rank " + std::to_string(dst) +
                    ": recv(src=" + std::to_string(src) +
                    ", tag=" + std::to_string(tag) + ") got " +
                    std::to_string(msg.size()) + " doubles, caller buffer " +
                    std::to_string(out.size()));
  }
  std::copy(msg.begin(), msg.end(), out.begin());
  return msg;  // spent storage, for the caller's pool
}

bool Communicator::try_take(int src, int dst, int tag,
                            std::vector<double>& out) {
  std::unique_lock<std::mutex> lock(mu_);
  // Deliberately no poison check: a parked message is complete and valid
  // even if its sender has since died (the epoch fence already discards
  // stale generations).  Donation absorbs must be able to drain a buddy
  // snapshot that landed just before the donor's death; aborting here
  // would let the revival flush wipe the freshest generation.
  const auto it = boxes_.find(std::tuple<int, int, int>{src, dst, tag});
  if (it == boxes_.end()) return false;
  const std::size_t stale = drop_stale_locked(it->second);
  if (stale != 0) {
    obs::counter_add("comm/stale_msgs_discarded",
                     static_cast<std::int64_t>(stale));
  }
  if (it->second.messages.empty()) return false;
  out = std::move(it->second.messages.front().data);
  it->second.messages.pop();
  return true;
}

bool Communicator::try_take_into(int src, int dst, int tag,
                                 std::span<double> out,
                                 std::vector<double>& spent) {
  std::vector<double> msg;
  {
    std::unique_lock<std::mutex> lock(mu_);
    throw_if_down_locked();
    const auto it = boxes_.find(std::tuple<int, int, int>{src, dst, tag});
    if (it == boxes_.end()) return false;
    const std::size_t stale = drop_stale_locked(it->second);
    if (stale != 0) {
      obs::counter_add("comm/stale_msgs_discarded",
                       static_cast<std::int64_t>(stale));
    }
    if (it->second.messages.empty()) return false;
    msg = std::move(it->second.messages.front().data);
    it->second.messages.pop();
  }
  if (msg.size() != out.size()) {
    throw CommError("try_recv_into size mismatch on rank " +
                    std::to_string(dst) +
                    ": recv(src=" + std::to_string(src) +
                    ", tag=" + std::to_string(tag) + ") got " +
                    std::to_string(msg.size()) + " doubles, caller buffer " +
                    std::to_string(out.size()));
  }
  std::copy(msg.begin(), msg.end(), out.begin());
  spent = std::move(msg);
  return true;
}

void Communicator::barrier_wait(int rank, double timeout_sec) {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_down_locked();
  const std::size_t gen = barrier_gen_;
  if (++barrier_count_ == n_ranks_) {
    barrier_count_ = 0;
    ++barrier_gen_;
    cv_.notify_all();
    return;
  }
  const auto released = [&] {
    return poisoned_ || deadlocked_ || barrier_gen_ != gen;
  };
  block_locked(rank, {Blocked::Kind::kBarrier, 0, 0, gen});
  const double t = effective_timeout(timeout_sec);
  if (t <= 0.0) {
    cv_.wait(lock, released);
  } else if (!cv_.wait_for(lock, std::chrono::duration<double>(t), released)) {
    unblock_locked(rank);
    // Withdraw from the barrier so a later retry is not double-counted.
    if (barrier_gen_ == gen) --barrier_count_;
    throw TimeoutError("barrier timeout on rank " + std::to_string(rank) +
                       " after " + std::to_string(t) + " s");
  }
  unblock_locked(rank);
  // The barrier completed iff the generation advanced; a poison landing
  // after the last arrival must not retroactively fail waiters that were
  // merely slow to wake. Otherwise two planned kills just downstream of
  // the same barrier would be split across two recovery epochs: the first
  // victim's poison would knock the second out of the completed barrier
  // before it could reach its own fault point.
  if (barrier_gen_ == gen) throw_if_down_locked();
}

double Communicator::reduce(int rank, double v, ReduceMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_down_locked();
  const std::size_t gen = reduce_gen_;
  if (reduce_count_ == 0) {
    reduce_acc_ = v;
  } else {
    switch (mode) {
      case ReduceMode::kSum: reduce_acc_ += v; break;
      case ReduceMode::kMax: reduce_acc_ = std::max(reduce_acc_, v); break;
      case ReduceMode::kMin: reduce_acc_ = std::min(reduce_acc_, v); break;
    }
  }
  if (++reduce_count_ == n_ranks_) {
    reduce_result_ = reduce_acc_;
    reduce_count_ = 0;
    ++reduce_gen_;
    cv_.notify_all();
    return reduce_result_;
  }
  block_locked(rank, {Blocked::Kind::kReduce, 0, 0, gen});
  cv_.wait(lock, [&] {
    return poisoned_ || deadlocked_ || reduce_gen_ != gen;
  });
  unblock_locked(rank);
  // Completed collective wins over a concurrent poison (see barrier_wait).
  if (reduce_gen_ == gen) throw_if_down_locked();
  return reduce_result_;
}

std::vector<double> Communicator::gather_all(int rank, double v) {
  std::unique_lock<std::mutex> lock(mu_);
  throw_if_down_locked();
  const std::size_t gen = gather_gen_;
  if (gather_count_ == 0) gather_acc_.assign(static_cast<std::size_t>(n_ranks_), 0.0);
  gather_acc_[static_cast<std::size_t>(rank)] = v;
  if (++gather_count_ == n_ranks_) {
    gather_result_ = gather_acc_;
    gather_count_ = 0;
    ++gather_gen_;
    cv_.notify_all();
    return gather_result_;
  }
  block_locked(rank, {Blocked::Kind::kGather, 0, 0, gen});
  cv_.wait(lock, [&] {
    return poisoned_ || deadlocked_ || gather_gen_ != gen;
  });
  unblock_locked(rank);
  // Completed collective wins over a concurrent poison (see barrier_wait).
  if (gather_gen_ == gen) throw_if_down_locked();
  return gather_result_;
}

void Communicator::run(const std::function<void(Rank&)>& fn) {
  {
    // Reset any state left over from a previous (possibly failed) run so
    // the communicator is reusable by supervised retry loops. Fault-plan
    // fired-state is deliberately kept: consumed faults stay consumed.
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = false;
    failures_.clear();
    deadlocked_ = false;
    deadlock_report_.clear();
    boxes_.clear();
    edge_sends_.clear();
    delayed_.clear();
    barrier_count_ = 0;
    reduce_count_ = 0;
    gather_count_ = 0;
    n_blocked_ = 0;
    n_live_ = n_ranks_;
    blocked_.assign(static_cast<std::size_t>(n_ranks_), {});
    epoch_.store(0, std::memory_order_relaxed);
    n_parked_ = 0;
    n_completed_ = 0;
    revives_used_ = 0;
    recovery_abandoned_ = false;
    unrecoverable_ = false;
  }
  // One slot per rank so a revived rank's thread can be respawned in place.
  std::vector<std::thread> threads(static_cast<std::size_t>(n_ranks_));
  std::exception_ptr deadlock_error;
  std::mutex deadlock_mu;
  const auto spawn = [&](int r, bool revived) {
    threads[static_cast<std::size_t>(r)] = std::thread([&, r, revived] {
      // The Rank handle lives on its own thread: a respawn gets a fresh one
      // (fresh message pool, revived() set) without touching survivors'.
      Rank rank(this, r, n_ranks_);
      rank.revived_ = revived;
      try {
        fn(rank);
        std::lock_guard<std::mutex> lock(mu_);
        ++n_completed_;  // finished ranks cannot rewind: no more revivals
      } catch (const DeadlockError&) {
        std::lock_guard<std::mutex> lock(deadlock_mu);
        if (!deadlock_error) deadlock_error = std::current_exception();
      } catch (const UnrecoverableError& e) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          unrecoverable_ = true;
        }
        poison(r, e.what());
      } catch (const RankFailedError& e) {
        // Poison-wakeup casualty of a peer failure: not a root cause, do
        // not re-report. A RankFailedError thrown by user code before any
        // poisoning is a genuine failure and is recorded.
        std::lock_guard<std::mutex> lock(mu_);
        if (!poisoned_) {
          failures_.emplace_back(r, e.what());
          poisoned_ = true;
          cv_.notify_all();
        }
      } catch (const std::exception& e) {
        poison(r, e.what());
      } catch (...) {
        poison(r, "unknown exception");
      }
      rank_done(r);
    });
  };
  for (int r = 0; r < n_ranks_; ++r) spawn(r, /*revived=*/false);

  if (recovery_.enabled) {
    // Recovery monitor (runs on the calling thread): when a failure has
    // poisoned the communicator and every surviving rank has parked in
    // await_recovery(), join the dead ranks' threads, repair the
    // communicator, and respawn only them. Everything else tears down as
    // before (n_live_ drains to zero).
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] {
        return n_live_ == 0 ||
               (poisoned_ && !recovery_abandoned_ && n_live_ > 0 &&
                n_parked_ == n_live_);
      });
      if (n_live_ == 0) break;
      if (unrecoverable_ || deadlocked_ || n_completed_ > 0 ||
          revives_used_ >= recovery_.max_revives) {
        // Parked survivors wake, see the abandonment, and rethrow — the
        // run drains into the aggregated-failure path below.
        recovery_abandoned_ = true;
        cv_.notify_all();
        continue;
      }
      const std::vector<int> failed = failed_ids(failures_);
      ++revives_used_;
      const std::uint64_t next_epoch =
          epoch_.load(std::memory_order_relaxed) + 1;
      lock.unlock();
      // The failed ranks' threads have exited (a failure only poisons once
      // the function has thrown); join so their slots can be respawned.
      for (int r : failed) {
        auto& t = threads[static_cast<std::size_t>(r)];
        if (t.joinable()) t.join();
      }
      lock.lock();
      for (int r : failed) revive_locked(r, next_epoch);
      // Count the respawned ranks as live BEFORE any survivor can resume
      // and block on them, or the deadlock detector would see every live
      // rank blocked on a rank it does not yet know about.
      n_live_ += static_cast<int>(failed.size());
      n_parked_ = 0;
      lock.unlock();
      for (int r : failed) spawn(r, /*revived=*/true);
      cv_.notify_all();  // release parked survivors into the new epoch
      lock.lock();
    }
  }

  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  boxes_.clear();
  if (deadlock_error) std::rethrow_exception(deadlock_error);
  if (!failures_.empty()) {
    throw RankFailedError(failure_report(failures_), failed_ids(failures_));
  }
}

}  // namespace quake::par
