#include "quake/inverse/source_inversion.hpp"

#include <algorithm>
#include <cmath>

#include "quake/inverse/regularization.hpp"
#include "quake/opt/linesearch.hpp"
#include "quake/util/log.hpp"
#include "quake/util/stats.hpp"

namespace quake::inverse {

SourceInversionResult invert_source(const InversionProblem& prob,
                                    const wave2d::ShModel& model,
                                    const SourceInversionOptions& opt) {
  const auto& setup = prob.setup();
  const std::size_t np = static_cast<std::size_t>(setup.fault.n_points());
  const double h = setup.grid.h;
  const Tikhonov1d reg_u0(opt.beta_u0, h), reg_t0(opt.beta_t0, h),
      reg_T(opt.beta_T, h);

  wave2d::SourceParams2d p;
  p.u0.assign(np, opt.u0_init);
  p.t0.assign(np, opt.t0_init);
  p.T.assign(np, opt.T_init);

  SourceInversionResult result;

  auto regularization = [&](const wave2d::SourceParams2d& q) {
    return reg_u0.value(q.u0) + reg_t0.value(q.t0) + reg_T.value(q.T);
  };
  auto objective = [&](const wave2d::SourceParams2d& q) {
    const auto fwd = prob.forward(model, q, /*history=*/false);
    return fwd.misfit + regularization(q);
  };

  double g0_norm = -1.0;
  for (int newton = 0; newton < opt.max_newton; ++newton) {
    const auto fwd = prob.forward(model, p, /*history=*/false);
    const double j = fwd.misfit + regularization(p);
    result.iterates.push_back({p, fwd.misfit});
    result.misfit_final = fwd.misfit;

    // Gradient: adjoint from residuals, then the parameter forms.
    const History nu = prob.adjoint(model, fwd.residuals);
    std::vector<double> g(3 * np, 0.0);
    prob.assemble_source_gradient(model, p, nu, {g.data(), np},
                                  {g.data() + np, np},
                                  {g.data() + 2 * np, np});
    reg_u0.add_gradient(p.u0, {g.data(), np});
    reg_t0.add_gradient(p.t0, {g.data() + np, np});
    reg_T.add_gradient(p.T, {g.data() + 2 * np, np});

    const double gnorm = util::norm_l2(g);
    if (g0_norm < 0.0) g0_norm = gnorm;
    QUAKE_LOG_DEBUG("source newton %d: J=%.6e misfit=%.6e |g|=%.3e", newton, j,
                    fwd.misfit, gnorm);
    if (gnorm <= opt.grad_tol * g0_norm ||
        (opt.misfit_tol > 0.0 && fwd.misfit < opt.misfit_tol)) {
      break;
    }

    opt::LinOp hvp = [&](std::span<const double> v, std::span<double> hv) {
      prob.gauss_newton_source(model, p, v, hv);
      reg_u0.add_hessian_vec({v.data(), np}, {hv.data(), np});
      reg_t0.add_hessian_vec({v.data() + np, np}, {hv.data() + np, np});
      reg_T.add_hessian_vec({v.data() + 2 * np, np}, {hv.data() + 2 * np, np});
    };

    std::vector<double> b(3 * np), d(3 * np, 0.0);
    for (std::size_t i = 0; i < 3 * np; ++i) b[i] = -g[i];
    const auto cgres = opt::conjugate_gradient(hvp, b, d, opt.cg);
    result.cg_iters += cgres.iterations;
    if (util::norm_l2(d) == 0.0) break;

    double dphi0 = util::dot(g, d);
    if (dphi0 >= 0.0) {
      for (std::size_t i = 0; i < 3 * np; ++i) d[i] = -g[i];
      dphi0 = -gnorm * gnorm;
    }

    // Projected step: bounds (t0 >= t0_min, T >= T_min) are enforced by
    // projection inside the line search, so an active bound on one fault
    // node never blocks progress on the others (gradient projection).
    auto projected = [&](double alpha) {
      wave2d::SourceParams2d trial = p;
      for (std::size_t i = 0; i < np; ++i) {
        trial.u0[i] += alpha * d[i];
        trial.t0[i] = std::max(opt.t0_min, trial.t0[i] + alpha * d[np + i]);
        trial.T[i] = std::max(opt.T_min, trial.T[i] + alpha * d[2 * np + i]);
      }
      return trial;
    };

    opt::ArmijoOptions ao;
    const auto ls = opt::armijo_backtracking(
        [&](double alpha) { return objective(projected(alpha)); }, j, dphi0,
        ao);
    ++result.newton_iters;
    if (!ls.success) break;
    p = projected(ls.alpha);
  }

  result.params = p;
  return result;
}

}  // namespace quake::inverse
