#include "quake/inverse/problem.hpp"

#include "quake/inverse/checkpoint.hpp"

#include <cmath>
#include <stdexcept>

namespace quake::inverse {

using wave2d::MarchOptions;
using wave2d::MarchResult;

InversionProblem::InversionProblem(InversionSetup setup)
    : setup_(std::move(setup)), src_(setup_.grid, setup_.fault) {
  setup_.grid.validate();
  if (!(setup_.dt > 0.0) || setup_.nt < 1) {
    throw std::invalid_argument("InversionProblem: bad dt/nt");
  }
  if (!setup_.observations.empty() &&
      setup_.observations.size() != setup_.receiver_nodes.size()) {
    throw std::invalid_argument("InversionProblem: observations mismatch");
  }
}

double InversionProblem::misfit_of(const Records& records) const {
  double j = 0.0;
  for (std::size_t r = 0; r < records.size(); ++r) {
    for (std::size_t k = 0; k < records[r].size(); ++k) {
      const double res = records[r][k] - setup_.observations[r][k];
      j += res * res;
    }
  }
  return 0.5 * setup_.dt * j;
}

InversionProblem::ForwardOut InversionProblem::forward(
    const wave2d::ShModel& model, const wave2d::SourceParams2d& p,
    bool store_history) const {
  MarchOptions mo{setup_.dt, setup_.nt};
  ForwardOut out;
  out.march = time_march(
      model, mo,
      [&](int, double t, std::span<double> f) { src_.add_forces(model, p, t, f); },
      setup_.receiver_nodes, store_history);
  if (!setup_.observations.empty()) {
    out.residuals.resize(out.march.records.size());
    for (std::size_t r = 0; r < out.march.records.size(); ++r) {
      out.residuals[r].resize(out.march.records[r].size());
      for (std::size_t k = 0; k < out.march.records[r].size(); ++k) {
        out.residuals[r][k] =
            out.march.records[r][k] - setup_.observations[r][k];
      }
    }
    out.misfit = misfit_of(out.march.records);
  }
  return out;
}

History InversionProblem::adjoint(const wave2d::ShModel& model,
                                  const Records& driver) const {
  MarchOptions mo{setup_.dt, setup_.nt};
  const int nt = setup_.nt;
  const double inv_dt = 1.0 / setup_.dt;
  MarchResult res = time_march(
      model, mo,
      [&](int k, double, std::span<double> f) {
        // Reversed-time source: f~^k = -R^{nt-k} / dt, where R^j carries the
        // driver at observation index j-1.
        const int obs = nt - k - 1;
        for (std::size_t r = 0; r < setup_.receiver_nodes.size(); ++r) {
          f[static_cast<std::size_t>(setup_.receiver_nodes[r])] -=
              driver[r][static_cast<std::size_t>(obs)] * inv_dt;
        }
      },
      {}, /*store_history=*/true);
  return std::move(res.history);
}

namespace {

// u^k from the stored history (history[k] = u^{k+1}); k <= 0 is quiescent.
const std::vector<double>* state_at(const History& u, int k) {
  if (k <= 0) return nullptr;
  return &u[static_cast<std::size_t>(k - 1)];
}

}  // namespace

void InversionProblem::assemble_material_gradient(
    const wave2d::ShModel& model, const wave2d::SourceParams2d& p,
    const History& u, const History& nu, std::span<double> ge) const {
  const int nt = setup_.nt;
  for (int k = 0; k < nt; ++k) {
    // lambda^{k+1} = nu^{nt-k} = nu-history[nt-k-1].
    const std::vector<double>& lambda = nu[static_cast<std::size_t>(nt - k - 1)];
    accumulate_material_step(model, src_, p, k, setup_.dt, lambda,
                             state_at(u, k), state_at(u, k + 1),
                             state_at(u, k - 1), ge);
  }
}

Records InversionProblem::incremental_forward_material(
    const wave2d::ShModel& model, const wave2d::SourceParams2d& p,
    const History& u, std::span<const double> dmu) const {
  MarchOptions mo{setup_.dt, setup_.nt};
  const double dt = setup_.dt;
  const std::size_t n = static_cast<std::size_t>(setup_.grid.n_nodes());
  std::vector<double> diff(n);
  MarchResult res = time_march(
      model, mo,
      [&](int k, double t, std::span<double> f) {
        src_.add_forces_delta_mu(model, p, dmu, t, f);
        if (const auto* uk = state_at(u, k)) {
          // f -= K'[dmu] u^k.
          std::vector<double> tmp(n, 0.0);
          model.apply_k_delta(dmu, *uk, tmp);
          for (std::size_t i = 0; i < n; ++i) f[i] -= tmp[i];
        }
        const auto* up = state_at(u, k + 1);
        const auto* um = state_at(u, k - 1);
        if (up != nullptr || um != nullptr) {
          for (std::size_t i = 0; i < n; ++i) {
            diff[i] = (up ? (*up)[i] : 0.0) - (um ? (*um)[i] : 0.0);
          }
          std::vector<double> tmp(n, 0.0);
          model.apply_c_delta(dmu, diff, tmp);
          const double s = 1.0 / (2.0 * dt);
          for (std::size_t i = 0; i < n; ++i) f[i] -= s * tmp[i];
        }
      },
      setup_.receiver_nodes, /*store_history=*/false);
  return std::move(res.records);
}

void InversionProblem::gauss_newton_material(
    const wave2d::ShModel& model, const wave2d::SourceParams2d& p,
    const History& u, std::span<const double> dmu,
    std::span<double> h_dmu) const {
  const Records du = incremental_forward_material(model, p, u, dmu);
  const History nu = adjoint(model, du);
  assemble_material_gradient(model, p, u, nu, h_dmu);
}

void InversionProblem::assemble_source_gradient(
    const wave2d::ShModel& model, const wave2d::SourceParams2d& p,
    const History& nu, std::span<double> g_u0, std::span<double> g_t0,
    std::span<double> g_T) const {
  const int nt = setup_.nt;
  const double dt = setup_.dt;
  const double dt2 = dt * dt;
  const std::size_t n = static_cast<std::size_t>(setup_.grid.n_nodes());
  std::vector<double> neg_lambda(n);
  for (int k = 0; k < nt; ++k) {
    const std::vector<double>& lambda = nu[static_cast<std::size_t>(nt - k - 1)];
    for (std::size_t i = 0; i < n; ++i) neg_lambda[i] = -dt2 * lambda[i];
    src_.accumulate_param_forms(model, p, k * dt, neg_lambda, g_u0, g_t0, g_T);
  }
}

Records InversionProblem::incremental_forward_source(
    const wave2d::ShModel& model, const wave2d::SourceParams2d& p,
    std::span<const double> du0, std::span<const double> dt0,
    std::span<const double> dT) const {
  MarchOptions mo{setup_.dt, setup_.nt};
  MarchResult res = time_march(
      model, mo,
      [&](int, double t, std::span<double> f) {
        src_.add_forces_delta_params(model, p, du0, dt0, dT, t, f);
      },
      setup_.receiver_nodes, /*store_history=*/false);
  return std::move(res.records);
}

void InversionProblem::gauss_newton_source(const wave2d::ShModel& model,
                                           const wave2d::SourceParams2d& p,
                                           std::span<const double> d_stacked,
                                           std::span<double> h_stacked) const {
  const std::size_t np = p.u0.size();
  const Records du = incremental_forward_source(
      model, p, d_stacked.subspan(0, np), d_stacked.subspan(np, np),
      d_stacked.subspan(2 * np, np));
  const History nu = adjoint(model, du);
  assemble_source_gradient(model, p, nu, h_stacked.subspan(0, np),
                           h_stacked.subspan(np, np),
                           h_stacked.subspan(2 * np, np));
}

}  // namespace quake::inverse
