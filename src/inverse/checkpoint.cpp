#include "quake/inverse/checkpoint.hpp"

#include <cmath>
#include <stdexcept>

#include "quake/wave2d/march.hpp"

namespace quake::inverse {

void accumulate_material_step(const wave2d::ShModel& model,
                              const wave2d::FaultSource2d& src,
                              const wave2d::SourceParams2d& p, int k, double dt,
                              std::span<const double> lambda,
                              const std::vector<double>* u_k,
                              const std::vector<double>* u_kp1,
                              const std::vector<double>* u_km1,
                              std::span<double> ge) {
  const std::size_t n = lambda.size();
  const double dt2 = dt * dt;
  std::vector<double> scaled(n), diff(n);
  // dt^2 * lambda^T K'_e u^k.
  if (u_k != nullptr) {
    for (std::size_t i = 0; i < n; ++i) scaled[i] = dt2 * lambda[i];
    model.accumulate_k_form(scaled, *u_k, ge);
  }
  // (dt/2) * lambda^T C'_e (u^{k+1} - u^{k-1}).
  if (u_kp1 != nullptr || u_km1 != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      diff[i] = (u_kp1 ? (*u_kp1)[i] : 0.0) - (u_km1 ? (*u_km1)[i] : 0.0);
    }
    for (std::size_t i = 0; i < n; ++i) scaled[i] = 0.5 * dt * lambda[i];
    model.accumulate_c_form(scaled, diff, ge);
  }
  // -dt^2 * lambda^T df^k/dmu_e.
  for (std::size_t i = 0; i < n; ++i) scaled[i] = -dt2 * lambda[i];
  src.accumulate_material_form(model, p, k * dt, scaled, ge);
}

CheckpointStats checkpointed_material_gradient(
    const InversionProblem& prob, const wave2d::ShModel& model,
    const wave2d::SourceParams2d& p, const Records& residuals, int stride,
    std::span<double> ge) {
  const auto& setup = prob.setup();
  const int nt = setup.nt;
  const double dt = setup.dt;
  if (stride <= 0) {
    stride = std::max(1, static_cast<int>(std::lround(std::sqrt(nt))));
  }
  const wave2d::FaultSource2d& src = prob.source_op();
  CheckpointStats stats;

  const wave2d::RhsFn fwd_rhs = [&](int, double t, std::span<double> f) {
    src.add_forces(model, p, t, f);
  };

  // Forward sweep: store (u^c, u^{c-1}) at every segment start.
  std::vector<std::pair<std::vector<double>, std::vector<double>>> cps;
  cps.reserve(static_cast<std::size_t>(nt / stride + 1));
  {
    wave2d::ShStepper fwd(model, dt);
    for (int k = 0; k < nt; ++k) {
      if (k % stride == 0) {
        cps.emplace_back(fwd.u(), fwd.u_prev());
        ++stats.checkpoints_stored;
      }
      fwd.step(k, fwd_rhs);
    }
  }

  // Adjoint sweep with segment recomputation.
  const double inv_dt = 1.0 / dt;
  const wave2d::RhsFn adj_rhs = [&](int tau, double, std::span<double> f) {
    const int obs = nt - tau - 1;
    for (std::size_t r = 0; r < setup.receiver_nodes.size(); ++r) {
      f[static_cast<std::size_t>(setup.receiver_nodes[r])] -=
          residuals[r][static_cast<std::size_t>(obs)] * inv_dt;
    }
  };

  wave2d::ShStepper adj(model, dt);
  wave2d::ShStepper recompute(model, dt);
  std::vector<std::vector<double>> seg;  // seg[j] = u^{c+j}
  std::vector<double> u_cm1;             // u^{c-1}
  int c = -1;

  auto load_segment = [&](int c_new) {
    c = c_new;
    const auto& cp = cps[static_cast<std::size_t>(c / stride)];
    recompute.set_state(cp.first, cp.second);
    u_cm1 = cp.second;
    const int seg_end = std::min(c + stride, nt);
    seg.assign(static_cast<std::size_t>(seg_end - c + 1), {});
    seg[0] = cp.first;  // u^c
    for (int k = c; k < seg_end; ++k) {
      recompute.step(k, fwd_rhs);
      seg[static_cast<std::size_t>(k - c + 1)] = recompute.u();
      ++stats.states_recomputed;
    }
    stats.peak_states_held =
        std::max(stats.peak_states_held, seg.size() + cps.size() * 2 + 1);
  };

  for (int tau = 0; tau < nt; ++tau) {
    adj.step(tau, adj_rhs);  // adj.u() = nu^{tau+1} = lambda^{k+1}
    const int k = nt - 1 - tau;
    if (c < 0 || k < c) load_segment((k / stride) * stride);
    const std::vector<double>* u_k =
        k == 0 ? nullptr : &seg[static_cast<std::size_t>(k - c)];
    const std::vector<double>* u_kp1 = &seg[static_cast<std::size_t>(k + 1 - c)];
    const std::vector<double>* u_km1 = nullptr;
    if (k >= 1) {
      u_km1 = (k - 1 >= c) ? &seg[static_cast<std::size_t>(k - 1 - c)] : &u_cm1;
    }
    accumulate_material_step(model, src, p, k, dt, adj.u(), u_k, u_kp1, u_km1,
                             ge);
  }
  return stats;
}

}  // namespace quake::inverse
