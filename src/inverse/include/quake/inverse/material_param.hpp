#pragma once

// Bilinear material-grid parameterization and multiscale prolongation
// (§3.1-3.2). The inversion unknown m lives on a coarse (gx+1) x (gz+1)
// node grid over the section; element shear moduli are bilinear
// interpolations of m at element centers (mu = P m). The multiscale
// continuation prolongs m from each grid to the next finer one.

#include <span>
#include <vector>

#include "quake/wave2d/grid.hpp"

namespace quake::inverse {

class MaterialGrid {
 public:
  // gx, gz: cells per side of the inversion grid covering the same physical
  // section as `wave_grid`.
  MaterialGrid(const wave2d::ShGrid& wave_grid, int gx, int gz);

  [[nodiscard]] int gx() const { return gx_; }
  [[nodiscard]] int gz() const { return gz_; }
  [[nodiscard]] std::size_t n_params() const {
    return static_cast<std::size_t>((gx_ + 1) * (gz_ + 1));
  }
  [[nodiscard]] int node(int i, int k) const { return k * (gx_ + 1) + i; }

  // mu_e = sum_j P[e][j] m[j] (4 entries per element).
  void apply(std::span<const double> m, std::span<double> mu_elem) const;
  // g_m += P^T g_e.
  void apply_transpose(std::span<const double> g_elem,
                       std::span<double> g_m) const;

  // Bilinear prolongation of a field from this grid to a finer `target`.
  std::vector<double> prolongate(std::span<const double> m,
                                 const MaterialGrid& target) const;

  // Samples an element-wise field onto this grid's nodes (nearest element
  // value) — used to build target fields for error reporting.
  std::vector<double> sample_elem_field(std::span<const double> mu_elem) const;

  [[nodiscard]] double cell_dx() const { return dx_; }
  [[nodiscard]] double cell_dz() const { return dz_; }

 private:
  struct Interp {
    int idx[4];
    double w[4];
  };
  // Bilinear interpolation weights of point (x, z) on this grid.
  [[nodiscard]] Interp interp_at(double x, double z) const;

  wave2d::ShGrid wave_;
  int gx_, gz_;
  double dx_, dz_;
  std::vector<Interp> elem_interp_;  // one per wave-grid element
};

}  // namespace quake::inverse
