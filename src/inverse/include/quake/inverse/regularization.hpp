#pragma once

// Regularization operators of the inverse problem (§3.1):
//  * smoothed total variation on the material grid — penalizes oscillation
//    but preserves sharp layer interfaces (Acar & Vogel);
//  * Tikhonov (H1 seminorm) on the 1D source-parameter fields along the
//    fault — penalizes oscillation of u0(z), t0(z), T(z).
// Each provides value, gradient, and a Gauss-Newton (lagged-diffusivity)
// Hessian-vector product.

#include <span>
#include <vector>

#include "quake/inverse/material_param.hpp"

namespace quake::inverse {

class TotalVariation {
 public:
  // eps smooths |grad m| ~ sqrt(|grad m|^2 + eps^2); beta scales the term.
  TotalVariation(const MaterialGrid& grid, double beta, double eps);

  [[nodiscard]] double value(std::span<const double> m) const;
  void add_gradient(std::span<const double> m, std::span<double> g) const;

  // Lagged diffusivity: freezes the weights 1/|grad m|_eps at `m_ref`, then
  // applies the resulting SPD operator to v.
  void add_hessian_vec(std::span<const double> m_ref,
                       std::span<const double> v, std::span<double> hv) const;

 private:
  struct CellGrad {
    double gx, gz;  // cell-centered gradient of m
  };
  [[nodiscard]] CellGrad cell_gradient(std::span<const double> m, int ci,
                                       int ck) const;

  const MaterialGrid* grid_;
  double beta_, eps_;
};

// beta/2 * sum over fault segments of ((p_{j+1} - p_j)/h)^2 * h.
class Tikhonov1d {
 public:
  Tikhonov1d(double beta, double h) : beta_(beta), h_(h) {}
  [[nodiscard]] double value(std::span<const double> p) const;
  void add_gradient(std::span<const double> p, std::span<double> g) const;
  void add_hessian_vec(std::span<const double> v, std::span<double> hv) const;

 private:
  double beta_, h_;
};

// Logarithmic barrier keeping a field above `lo` (the paper's safeguard
// against the Newton step straying into negative moduli).
class LogBarrier {
 public:
  LogBarrier(double kappa, double lo) : kappa_(kappa), lo_(lo) {}
  [[nodiscard]] double value(std::span<const double> m) const;
  void add_gradient(std::span<const double> m, std::span<double> g) const;
  void add_hessian_vec(std::span<const double> m, std::span<const double> v,
                       std::span<double> hv) const;
  [[nodiscard]] double lo() const { return lo_; }

 private:
  double kappa_, lo_;
};

}  // namespace quake::inverse
