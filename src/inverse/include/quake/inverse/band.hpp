#pragma once

// Frequency-continuation machinery (§3.1: "multiscale grid and frequency
// continuation ... keeps successively finer scale inversion estimates
// within the radius of the ball of convergence").
//
// The band-limited misfit is J = 1/2 dt sum_r ||B r||^2, where B is the
// causal Butterworth low-pass. Because the zero-phase (filtfilt) operator
// factors exactly as R(B(R(B(x)))) = B^T B (time reversal R conjugates a
// causal filter into its transpose), the data-weighting operator W = B^T B
// is symmetric positive semidefinite, dJ/dr = dt * W r is exact, and the
// adjoint/Gauss-Newton drivers are simply the filtfilt of the residual /
// incremental records.

#include <span>
#include <vector>

#include "quake/util/filter.hpp"

namespace quake::inverse {

class ResidualFilter {
 public:
  // Low-pass at fc [Hz] for records sampled at fs [Hz].
  ResidualFilter(double fc, double fs);

  // y = B x (causal second-order Butterworth).
  [[nodiscard]] std::vector<double> causal(std::span<const double> x) const;

  // y = B^T B x — the zero-phase filtfilt, symmetric PSD.
  [[nodiscard]] std::vector<double> symmetric(std::span<const double> x) const;

  // sum_r ||B r||^2 over a set of records.
  [[nodiscard]] double filtered_norm2(
      const std::vector<std::vector<double>>& records) const;

  // filtfilt applied record-wise (the adjoint / GN driver).
  [[nodiscard]] std::vector<std::vector<double>> apply_symmetric(
      const std::vector<std::vector<double>>& records) const;

 private:
  util::Biquad bq_;
};

}  // namespace quake::inverse
