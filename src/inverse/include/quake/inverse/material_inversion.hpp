#pragma once

// Multiscale Gauss-Newton-CG material inversion (§3.1-3.2): the shear
// modulus field is inverted through a ladder of successively finer material
// grids (grid continuation keeps each stage's iterate inside the Newton
// basin of the next), each stage solving a TV-regularized, log-barrier-
// safeguarded nonlinear least squares problem by Gauss-Newton with
// matrix-free CG inner solves, an Armijo line search, and an L-BFGS
// preconditioner seeded with Frankel two-step sweeps and refreshed with CG
// curvature pairs.

#include <span>
#include <utility>
#include <vector>

#include "quake/inverse/problem.hpp"
#include "quake/opt/cg.hpp"

namespace quake::inverse {

struct MaterialInversionOptions {
  // Ladder of (gx, gz) inversion grids, coarse to fine.
  std::vector<std::pair<int, int>> stages;
  // Frequency continuation (§3.1): per-stage low-pass cutoff [Hz] applied to
  // the misfit (J = 1/2 dt sum ||B r||^2, exact adjoint via B^T B). Empty:
  // no filtering; an entry <= 0 leaves that stage unfiltered. Shorter than
  // `stages`: trailing stages unfiltered.
  std::vector<double> stage_f_cut;
  int max_newton = 12;
  opt::CgOptions cg{30, 1e-2};
  double beta_tv = 1e3;
  double tv_eps = 1e5;          // in mu units [Pa]
  double mu_min = 1e6;          // barrier floor [Pa]
  double barrier_kappa = 0.0;   // 0: rely on the fraction-to-boundary cap
  double grad_tol = 1e-2;       // relative gradient reduction per stage
  double misfit_tol = 0.0;      // absolute misfit stop (0: disabled)
  double initial_mu = 0.0;      // homogeneous first-stage guess [Pa]
  bool precondition = true;
  int frankel_sweeps = 0;       // L-BFGS seeding sweeps per stage
};

struct StageReport {
  int gx = 0, gz = 0;
  std::size_t n_params = 0;
  int newton_iters = 0;
  int cg_iters = 0;
  double misfit_initial = 0.0;
  double misfit_final = 0.0;
  double grad_reduction = 1.0;  // |g_final| / |g_initial| within the stage
  double model_error = 0.0;  // rel. L2 of mu vs target (when target given)
};

struct MaterialInversionResult {
  std::vector<double> mu;  // final element shear moduli
  std::vector<double> m;   // final material-grid field
  std::vector<StageReport> stages;
  int total_newton = 0;
  int total_cg = 0;
};

// `mu_target` (element field) is used only for error reporting; pass {} when
// unknown.
MaterialInversionResult invert_material(const InversionProblem& prob,
                                        const MaterialInversionOptions& opt,
                                        std::span<const double> mu_target = {});

}  // namespace quake::inverse
