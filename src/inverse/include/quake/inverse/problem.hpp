#pragma once

// The discrete PDE-constrained inverse problem of §3.1: forward antiplane
// wave propagation, the (exactly discrete) adjoint wave equation solved
// backward in time, first-order gradient assembly for the material field
// and the source parameter fields, and the incremental (tangent) solves
// that realize matrix-free Gauss-Newton Hessian-vector products. Every
// derivative here is the exact transpose of the discrete forward recurrence
// — verified against finite differences in the tests.

#include <span>
#include <vector>

#include "quake/wave2d/fault.hpp"
#include "quake/wave2d/march.hpp"
#include "quake/wave2d/sh_model.hpp"

namespace quake::inverse {

using History = std::vector<std::vector<double>>;   // [k][node], u^{k+1}
using Records = std::vector<std::vector<double>>;   // [receiver][k]

struct InversionSetup {
  wave2d::ShGrid grid;
  double rho = 0.0;
  wave2d::Fault2d fault;
  wave2d::SourceParams2d source;   // true source (material inversion) or
                                   // current iterate (source inversion)
  std::vector<int> receiver_nodes;
  double dt = 0.0;
  int nt = 0;
  Records observations;            // d[r][k], matching receiver order
};

class InversionProblem {
 public:
  explicit InversionProblem(InversionSetup setup);

  [[nodiscard]] const InversionSetup& setup() const { return setup_; }
  [[nodiscard]] const wave2d::FaultSource2d& source_op() const { return src_; }

  struct ForwardOut {
    wave2d::MarchResult march;
    Records residuals;  // u_r - d_r per receiver and step
    double misfit = 0.0;  // 1/2 dt sum_k sum_r residual^2
  };

  // Forward solve for a given material (element mu) and source parameters.
  ForwardOut forward(const wave2d::ShModel& model,
                     const wave2d::SourceParams2d& p, bool store_history) const;

  // Adjoint solve driven by per-receiver time series (residuals for the
  // gradient; J*delta records for Gauss-Newton products). Returns the
  // adjoint history in *reversed* time: result[tau] = nu^{tau+1},
  // i.e. lambda^{k+1} = result[nt - k - 1].
  History adjoint(const wave2d::ShModel& model,
                  const Records& driver) const;

  // -- material inversion pieces -------------------------------------------

  // ge[e] += dL/dmu_e for the data term, assembled from the forward and
  // adjoint histories (includes the stiffness, absorbing-boundary, and
  // source mu-sensitivity terms of eq. 3.4's discrete analogue).
  void assemble_material_gradient(const wave2d::ShModel& model,
                                  const wave2d::SourceParams2d& p,
                                  const History& u, const History& nu,
                                  std::span<double> ge) const;

  // Records of the incremental forward solve in material direction dmu
  // (the J*dmu needed by the Gauss-Newton product).
  Records incremental_forward_material(const wave2d::ShModel& model,
                                       const wave2d::SourceParams2d& p,
                                       const History& u,
                                       std::span<const double> dmu) const;

  // Full data-term Gauss-Newton product: H dmu (element space). Costs one
  // incremental forward plus one adjoint solve.
  void gauss_newton_material(const wave2d::ShModel& model,
                             const wave2d::SourceParams2d& p, const History& u,
                             std::span<const double> dmu,
                             std::span<double> h_dmu) const;

  // -- source inversion pieces ----------------------------------------------

  // Gradients with respect to the per-fault-node parameter fields.
  void assemble_source_gradient(const wave2d::ShModel& model,
                                const wave2d::SourceParams2d& p,
                                const History& nu, std::span<double> g_u0,
                                std::span<double> g_t0,
                                std::span<double> g_T) const;

  Records incremental_forward_source(const wave2d::ShModel& model,
                                     const wave2d::SourceParams2d& p,
                                     std::span<const double> du0,
                                     std::span<const double> dt0,
                                     std::span<const double> dT) const;

  // Data-term Gauss-Newton product in source-parameter space; the direction
  // and result stack (u0, t0, T) contiguously.
  void gauss_newton_source(const wave2d::ShModel& model,
                           const wave2d::SourceParams2d& p,
                           std::span<const double> d_stacked,
                           std::span<double> h_stacked) const;

  // Misfit of given records vs the observations.
  [[nodiscard]] double misfit_of(const Records& records) const;

 private:
  InversionSetup setup_;
  wave2d::FaultSource2d src_;
};

}  // namespace quake::inverse
