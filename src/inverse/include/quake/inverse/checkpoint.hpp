#pragma once

// Checkpointed adjoint gradient (§3.1's "optional use of algorithmic
// checkpointing", Griewank): instead of storing the full forward history
// (O(nt) states), store O(nt / stride) checkpoints and recompute each
// segment of forward states while the adjoint marches backward. Memory
// drops to O(stride + nt/stride) states — minimized at stride ~ sqrt(nt) —
// at the cost of one extra forward sweep. The result is bit-identical to
// the stored-history gradient (the tests assert this).

#include <span>

#include "quake/inverse/problem.hpp"

namespace quake::inverse {

// Per-step gradient kernel shared by the stored and checkpointed paths:
// ge += the step-k terms of dL/dmu (stiffness, dashpot, source).
void accumulate_material_step(const wave2d::ShModel& model,
                              const wave2d::FaultSource2d& src,
                              const wave2d::SourceParams2d& p, int k, double dt,
                              std::span<const double> lambda,
                              const std::vector<double>* u_k,
                              const std::vector<double>* u_kp1,
                              const std::vector<double>* u_km1,
                              std::span<double> ge);

struct CheckpointStats {
  int checkpoints_stored = 0;
  int states_recomputed = 0;
  std::size_t peak_states_held = 0;
};

// Computes the material gradient (data term) without storing the forward
// history: `residuals` drive the adjoint exactly as in
// InversionProblem::adjoint. `stride` is the checkpoint spacing; pass 0 for
// the ~sqrt(nt) default.
CheckpointStats checkpointed_material_gradient(
    const InversionProblem& prob, const wave2d::ShModel& model,
    const wave2d::SourceParams2d& p, const Records& residuals, int stride,
    std::span<double> ge);

}  // namespace quake::inverse
