#pragma once

// Joint source + material inversion — the "blind deconvolution" problem the
// paper singles out as "even more challenging" (§3.2, last paragraph):
// neither the basin structure nor the rupture parameters are known, and
// both are recovered from the same records by Gauss-Newton-CG on the
// stacked parameter vector [m; u0; t0; T], with diagonal variable scaling
// (mu is O(1e9) Pa, the source fields O(1)), TV on the material, Tikhonov
// on the source fields, and bound projection.

#include <span>
#include <vector>

#include "quake/inverse/material_param.hpp"
#include "quake/inverse/problem.hpp"
#include "quake/opt/cg.hpp"

namespace quake::inverse {

struct JointInversionOptions {
  int gx = 4, gz = 3;  // material grid
  int max_newton = 20;
  opt::CgOptions cg{25, 1e-1};
  double beta_tv = 1e-14;
  double tv_eps = 1e7;
  double beta_u0 = 1e-3;
  double beta_t0 = 1e-3;
  double beta_T = 1e-3;
  double mu_min = 1e8;
  double t0_min = 0.05;
  double T_min = -0.02;
  double initial_mu = 0.0;
  double u0_init = 1.0;
  double t0_init = 1.0;
  double T_init = 0.5;
  double grad_tol = 1e-3;
};

struct JointInversionResult {
  std::vector<double> mu;            // element shear moduli
  wave2d::SourceParams2d source;
  int newton_iters = 0;
  int cg_iters = 0;
  double misfit_initial = 0.0;
  double misfit_final = 0.0;
  double material_error = 0.0;  // vs targets, when provided
  double source_error = 0.0;    // stacked rel. L2 over (u0, t0, T)
};

// `setup.source` is ignored (it is an unknown here); `mu_target` /
// `source_target` are used only for error reporting.
JointInversionResult invert_joint(const InversionProblem& prob,
                                  const JointInversionOptions& opt,
                                  std::span<const double> mu_target = {},
                                  const wave2d::SourceParams2d* source_target =
                                      nullptr);

}  // namespace quake::inverse
