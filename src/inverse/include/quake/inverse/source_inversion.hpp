#pragma once

// Source inversion (§3.2, Fig 3.3): with the material known, recover the
// per-fault-node delay time T(z), rise time t0(z), and dislocation
// amplitude u0(z) from surface records, by Gauss-Newton-CG with Tikhonov
// regularization of each parameter field along the fault and a
// positivity safeguard on the rise time.

#include <span>
#include <vector>

#include "quake/inverse/problem.hpp"
#include "quake/opt/cg.hpp"

namespace quake::inverse {

struct SourceInversionOptions {
  int max_newton = 20;
  opt::CgOptions cg{25, 1e-2};
  double beta_u0 = 1e-2;
  double beta_t0 = 1e-2;
  double beta_T = 1e-2;
  double t0_min = 0.05;    // rise times stay above this [s]
  double T_min = -0.02;    // delays stay (essentially) causal [s]
  double grad_tol = 1e-3;  // relative gradient reduction
  double misfit_tol = 0.0;
  // Initial guesses (constant along the fault).
  double u0_init = 1.0;
  double t0_init = 1.0;
  double T_init = 1.0;
};

struct SourceIterate {
  wave2d::SourceParams2d params;
  double misfit = 0.0;
};

struct SourceInversionResult {
  wave2d::SourceParams2d params;     // converged fields
  std::vector<SourceIterate> iterates;  // per Newton iteration (0 = initial)
  int newton_iters = 0;
  int cg_iters = 0;
  double misfit_final = 0.0;
};

SourceInversionResult invert_source(const InversionProblem& prob,
                                    const wave2d::ShModel& model,
                                    const SourceInversionOptions& opt);

}  // namespace quake::inverse
