#include "quake/inverse/material_param.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace quake::inverse {

MaterialGrid::MaterialGrid(const wave2d::ShGrid& wave_grid, int gx, int gz)
    : wave_(wave_grid), gx_(gx), gz_(gz) {
  if (gx < 1 || gz < 1) {
    throw std::invalid_argument("MaterialGrid: need at least one cell");
  }
  dx_ = wave_.width() / gx_;
  dz_ = wave_.depth() / gz_;
  elem_interp_.reserve(static_cast<std::size_t>(wave_.n_elems()));
  for (int e = 0; e < wave_.n_elems(); ++e) {
    const int i = e % wave_.nx;
    const int k = e / wave_.nx;
    const double x = (i + 0.5) * wave_.h;
    const double z = (k + 0.5) * wave_.h;
    elem_interp_.push_back(interp_at(x, z));
  }
}

MaterialGrid::Interp MaterialGrid::interp_at(double x, double z) const {
  const double fx = std::clamp(x / dx_, 0.0, static_cast<double>(gx_));
  const double fz = std::clamp(z / dz_, 0.0, static_cast<double>(gz_));
  int ci = std::min(static_cast<int>(fx), gx_ - 1);
  int ck = std::min(static_cast<int>(fz), gz_ - 1);
  const double tx = fx - ci;
  const double tz = fz - ck;
  Interp it;
  it.idx[0] = node(ci, ck);
  it.idx[1] = node(ci + 1, ck);
  it.idx[2] = node(ci, ck + 1);
  it.idx[3] = node(ci + 1, ck + 1);
  it.w[0] = (1.0 - tx) * (1.0 - tz);
  it.w[1] = tx * (1.0 - tz);
  it.w[2] = (1.0 - tx) * tz;
  it.w[3] = tx * tz;
  return it;
}

void MaterialGrid::apply(std::span<const double> m,
                         std::span<double> mu_elem) const {
  for (std::size_t e = 0; e < elem_interp_.size(); ++e) {
    const Interp& it = elem_interp_[e];
    mu_elem[e] = it.w[0] * m[static_cast<std::size_t>(it.idx[0])] +
                 it.w[1] * m[static_cast<std::size_t>(it.idx[1])] +
                 it.w[2] * m[static_cast<std::size_t>(it.idx[2])] +
                 it.w[3] * m[static_cast<std::size_t>(it.idx[3])];
  }
}

void MaterialGrid::apply_transpose(std::span<const double> g_elem,
                                   std::span<double> g_m) const {
  for (std::size_t e = 0; e < elem_interp_.size(); ++e) {
    const Interp& it = elem_interp_[e];
    for (int j = 0; j < 4; ++j) {
      g_m[static_cast<std::size_t>(it.idx[j])] += it.w[j] * g_elem[e];
    }
  }
}

std::vector<double> MaterialGrid::prolongate(std::span<const double> m,
                                             const MaterialGrid& target) const {
  std::vector<double> out(target.n_params());
  for (int k = 0; k <= target.gz_; ++k) {
    for (int i = 0; i <= target.gx_; ++i) {
      const double x = i * target.dx_;
      const double z = k * target.dz_;
      const Interp it = interp_at(x, z);
      out[static_cast<std::size_t>(target.node(i, k))] =
          it.w[0] * m[static_cast<std::size_t>(it.idx[0])] +
          it.w[1] * m[static_cast<std::size_t>(it.idx[1])] +
          it.w[2] * m[static_cast<std::size_t>(it.idx[2])] +
          it.w[3] * m[static_cast<std::size_t>(it.idx[3])];
    }
  }
  return out;
}

std::vector<double> MaterialGrid::sample_elem_field(
    std::span<const double> mu_elem) const {
  std::vector<double> out(n_params());
  for (int k = 0; k <= gz_; ++k) {
    for (int i = 0; i <= gx_; ++i) {
      const double x = std::clamp(i * dx_, 0.5 * wave_.h,
                                  wave_.width() - 0.5 * wave_.h);
      const double z = std::clamp(k * dz_, 0.5 * wave_.h,
                                  wave_.depth() - 0.5 * wave_.h);
      const int ei = std::min(static_cast<int>(x / wave_.h), wave_.nx - 1);
      const int ek = std::min(static_cast<int>(z / wave_.h), wave_.nz - 1);
      out[static_cast<std::size_t>(node(i, k))] =
          mu_elem[static_cast<std::size_t>(wave_.elem(ei, ek))];
    }
  }
  return out;
}

}  // namespace quake::inverse
