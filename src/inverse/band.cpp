#include "quake/inverse/band.hpp"

#include <algorithm>

#include "quake/util/stats.hpp"

namespace quake::inverse {

ResidualFilter::ResidualFilter(double fc, double fs)
    : bq_(util::butterworth_lowpass(fc, fs)) {}

std::vector<double> ResidualFilter::causal(std::span<const double> x) const {
  return util::filter(bq_, x);
}

std::vector<double> ResidualFilter::symmetric(
    std::span<const double> x) const {
  std::vector<double> y = util::filter(bq_, x);
  std::reverse(y.begin(), y.end());
  y = util::filter(bq_, y);
  std::reverse(y.begin(), y.end());
  return y;
}

double ResidualFilter::filtered_norm2(
    const std::vector<std::vector<double>>& records) const {
  double s = 0.0;
  for (const auto& r : records) {
    const std::vector<double> br = causal(r);
    for (double v : br) s += v * v;
  }
  return s;
}

std::vector<std::vector<double>> ResidualFilter::apply_symmetric(
    const std::vector<std::vector<double>>& records) const {
  std::vector<std::vector<double>> out(records.size());
  for (std::size_t r = 0; r < records.size(); ++r) {
    out[r] = symmetric(records[r]);
  }
  return out;
}

}  // namespace quake::inverse
