#include "quake/inverse/joint_inversion.hpp"

#include <algorithm>
#include <cmath>

#include "quake/inverse/regularization.hpp"
#include "quake/opt/linesearch.hpp"
#include "quake/util/log.hpp"
#include "quake/util/stats.hpp"
#include "quake/wave2d/march.hpp"

namespace quake::inverse {
namespace {

const std::vector<double>* state_at(const History& u, int k) {
  if (k <= 0) return nullptr;
  return &u[static_cast<std::size_t>(k - 1)];
}

}  // namespace

JointInversionResult invert_joint(const InversionProblem& prob,
                                  const JointInversionOptions& opt,
                                  std::span<const double> mu_target,
                                  const wave2d::SourceParams2d* source_target) {
  const auto& setup = prob.setup();
  const wave2d::FaultSource2d& src = prob.source_op();
  const std::size_t ne = static_cast<std::size_t>(setup.grid.n_elems());
  const std::size_t nn = static_cast<std::size_t>(setup.grid.n_nodes());
  const std::size_t nps = static_cast<std::size_t>(setup.fault.n_points());

  const MaterialGrid mg(setup.grid, opt.gx, opt.gz);
  const std::size_t npm = mg.n_params();
  const std::size_t n_total = npm + 3 * nps;

  const TotalVariation tv(mg, opt.beta_tv, opt.tv_eps);
  const Tikhonov1d reg_u0(opt.beta_u0, setup.grid.h),
      reg_t0(opt.beta_t0, setup.grid.h), reg_T(opt.beta_T, setup.grid.h);

  // Diagonal variable scaling: the CG operates on x-hat with
  // x = D x-hat, D = diag(mu_scale ... , 1 ...).
  const double mu_scale = opt.initial_mu > 0.0 ? opt.initial_mu : 1e9;

  // Unscaled parameters.
  std::vector<double> m(npm, opt.initial_mu > 0.0 ? opt.initial_mu : 1e9);
  wave2d::SourceParams2d p;
  p.u0.assign(nps, opt.u0_init);
  p.t0.assign(nps, opt.t0_init);
  p.T.assign(nps, opt.T_init);

  auto regularization = [&](std::span<const double> mm,
                            const wave2d::SourceParams2d& q) {
    return tv.value(mm) + reg_u0.value(q.u0) + reg_t0.value(q.t0) +
           reg_T.value(q.T);
  };
  auto objective = [&](std::span<const double> mm,
                       const wave2d::SourceParams2d& q) {
    std::vector<double> mu_try(ne);
    mg.apply(mm, mu_try);
    const wave2d::ShModel model(setup.grid, std::move(mu_try), setup.rho);
    return prob.forward(model, q, false).misfit + regularization(mm, q);
  };

  JointInversionResult result;
  std::vector<double> mu(ne);
  double g0 = -1.0;

  for (int newton = 0; newton < opt.max_newton; ++newton) {
    mg.apply(m, mu);
    const wave2d::ShModel model(setup.grid, std::vector<double>(mu),
                                setup.rho);
    const auto fwd = prob.forward(model, p, /*history=*/true);
    const double j = fwd.misfit + regularization(m, p);
    if (newton == 0) result.misfit_initial = fwd.misfit;
    result.misfit_final = fwd.misfit;

    // One adjoint drives both gradient blocks.
    const History nu = prob.adjoint(model, fwd.residuals);
    std::vector<double> ge(ne, 0.0);
    prob.assemble_material_gradient(model, p, fwd.march.history, nu, ge);
    std::vector<double> g(n_total, 0.0);
    mg.apply_transpose(ge, {g.data(), npm});
    tv.add_gradient(m, {g.data(), npm});
    prob.assemble_source_gradient(model, p, nu, {g.data() + npm, nps},
                                  {g.data() + npm + nps, nps},
                                  {g.data() + npm + 2 * nps, nps});
    reg_u0.add_gradient(p.u0, {g.data() + npm, nps});
    reg_t0.add_gradient(p.t0, {g.data() + npm + nps, nps});
    reg_T.add_gradient(p.T, {g.data() + npm + 2 * nps, nps});

    // Scaled gradient g-hat = D g.
    std::vector<double> gh(n_total);
    for (std::size_t i = 0; i < n_total; ++i) {
      gh[i] = (i < npm ? mu_scale : 1.0) * g[i];
    }
    const double gnorm = util::norm_l2(gh);
    if (g0 < 0.0) g0 = gnorm;
    QUAKE_LOG_DEBUG("joint newton %d: misfit=%.4e |g|=%.3e", newton,
                    fwd.misfit, gnorm);
    if (gnorm <= opt.grad_tol * g0) break;

    // Scaled Gauss-Newton product: H-hat = D H D.
    opt::LinOp hvp = [&](std::span<const double> vh, std::span<double> hv) {
      // Unscale the direction.
      std::vector<double> vm(npm);
      for (std::size_t i = 0; i < npm; ++i) vm[i] = mu_scale * vh[i];
      std::span<const double> du0 = vh.subspan(npm, nps);
      std::span<const double> dt0 = vh.subspan(npm + nps, nps);
      std::span<const double> dT = vh.subspan(npm + 2 * nps, nps);
      std::vector<double> dmu(ne);
      mg.apply(vm, dmu);

      // Combined incremental forward: material terms + source-parameter
      // terms in one rhs.
      std::vector<double> diff(nn), tmp(nn);
      wave2d::MarchOptions mo{setup.dt, setup.nt};
      auto inc = wave2d::time_march(
          model, mo,
          [&](int k, double t, std::span<double> f) {
            src.add_forces_delta_mu(model, p, dmu, t, f);
            src.add_forces_delta_params(model, p, du0, dt0, dT, t, f);
            if (const auto* uk = state_at(fwd.march.history, k)) {
              std::fill(tmp.begin(), tmp.end(), 0.0);
              model.apply_k_delta(dmu, *uk, tmp);
              for (std::size_t i = 0; i < nn; ++i) f[i] -= tmp[i];
            }
            const auto* up = state_at(fwd.march.history, k + 1);
            const auto* um = state_at(fwd.march.history, k - 1);
            if (up != nullptr || um != nullptr) {
              for (std::size_t i = 0; i < nn; ++i) {
                diff[i] = (up ? (*up)[i] : 0.0) - (um ? (*um)[i] : 0.0);
              }
              std::fill(tmp.begin(), tmp.end(), 0.0);
              model.apply_c_delta(dmu, diff, tmp);
              const double s = 1.0 / (2.0 * setup.dt);
              for (std::size_t i = 0; i < nn; ++i) f[i] -= s * tmp[i];
            }
          },
          setup.receiver_nodes, /*store_history=*/false);

      const History nuh = prob.adjoint(model, inc.records);
      std::vector<double> he(ne, 0.0), hraw(n_total, 0.0);
      prob.assemble_material_gradient(model, p, fwd.march.history, nuh, he);
      mg.apply_transpose(he, {hraw.data(), npm});
      prob.assemble_source_gradient(model, p, nuh, {hraw.data() + npm, nps},
                                    {hraw.data() + npm + nps, nps},
                                    {hraw.data() + npm + 2 * nps, nps});
      // Regularization blocks (on unscaled variables).
      tv.add_hessian_vec(m, vm, {hraw.data(), npm});
      reg_u0.add_hessian_vec(du0, {hraw.data() + npm, nps});
      reg_t0.add_hessian_vec(dt0, {hraw.data() + npm + nps, nps});
      reg_T.add_hessian_vec(dT, {hraw.data() + npm + 2 * nps, nps});
      // Rescale.
      for (std::size_t i = 0; i < n_total; ++i) {
        hv[i] += (i < npm ? mu_scale : 1.0) * hraw[i];
      }
    };

    std::vector<double> b(n_total), dh(n_total, 0.0);
    for (std::size_t i = 0; i < n_total; ++i) b[i] = -gh[i];
    const auto cg = opt::conjugate_gradient(hvp, b, dh, opt.cg);
    result.cg_iters += cg.iterations;
    if (util::norm_l2(dh) == 0.0) break;

    // Active-set reduction: zero direction components that push into an
    // active bound (their projected motion is zero, but they would corrupt
    // the directional derivative the Armijo test relies on).
    auto reduce_active = [&](std::vector<double>& dir) {
      const double tiny = 1e-12;
      for (std::size_t i = 0; i < npm; ++i) {
        if (m[i] <= opt.mu_min * 1.0001 * (1.0 + tiny) && dir[i] < 0.0) {
          dir[i] = 0.0;
        }
      }
      for (std::size_t i = 0; i < nps; ++i) {
        if (p.t0[i] <= opt.t0_min + tiny && dir[npm + nps + i] < 0.0) {
          dir[npm + nps + i] = 0.0;
        }
        if (p.T[i] <= opt.T_min + tiny && dir[npm + 2 * nps + i] < 0.0) {
          dir[npm + 2 * nps + i] = 0.0;
        }
      }
    };
    reduce_active(dh);
    double dphi0 = util::dot(gh, dh);
    if (dphi0 >= 0.0) {
      // Projected steepest descent fallback.
      for (std::size_t i = 0; i < n_total; ++i) dh[i] = -gh[i];
      reduce_active(dh);
      dphi0 = util::dot(gh, dh);
      if (dphi0 >= 0.0) break;  // stationary within the feasible set
    }
    // Trust-region-style cap: near-null Hessian directions can make the CG
    // step enormous in the scaled variables (where the whole parameter
    // range is O(1)); cap the step so backtracking starts in a sane range.
    const double dmax = util::norm_max(dh);
    if (dmax > 0.5) {
      const double scale = 0.5 / dmax;
      for (double& v : dh) v *= scale;
      dphi0 *= scale;
    }

    // Projected step in unscaled variables.
    auto projected = [&](double alpha) {
      std::pair<std::vector<double>, wave2d::SourceParams2d> trial{m, p};
      for (std::size_t i = 0; i < npm; ++i) {
        trial.first[i] = std::max(opt.mu_min * 1.0001,
                                  trial.first[i] + alpha * mu_scale * dh[i]);
      }
      for (std::size_t i = 0; i < nps; ++i) {
        trial.second.u0[i] += alpha * dh[npm + i];
        trial.second.t0[i] =
            std::max(opt.t0_min, trial.second.t0[i] + alpha * dh[npm + nps + i]);
        trial.second.T[i] = std::max(
            opt.T_min, trial.second.T[i] + alpha * dh[npm + 2 * nps + i]);
      }
      return trial;
    };
    const auto ls = opt::armijo_backtracking(
        [&](double a) {
          const auto t = projected(a);
          return objective(t.first, t.second);
        },
        j, dphi0, opt::ArmijoOptions{});
    ++result.newton_iters;
    if (!ls.success) {
      QUAKE_LOG_DEBUG("joint: line search failed; dphi0=%.3e phi0=%.6e "
                      "phi(1e-4)=%.6e phi(1e-8)=%.6e",
                      dphi0, j,
                      [&] { auto t = projected(1e-4); return objective(t.first, t.second); }(),
                      [&] { auto t = projected(1e-8); return objective(t.first, t.second); }());
      break;
    }
    auto t = projected(ls.alpha);
    m = std::move(t.first);
    p = std::move(t.second);
  }

  result.mu.resize(ne);
  mg.apply(m, result.mu);
  result.source = p;
  if (!mu_target.empty()) {
    result.material_error = util::rel_l2(result.mu, mu_target);
  }
  if (source_target != nullptr) {
    std::vector<double> a, b2;
    for (auto* f : {&p.u0, &p.t0, &p.T}) {
      a.insert(a.end(), f->begin(), f->end());
    }
    for (auto* f : {&source_target->u0, &source_target->t0,
                    &source_target->T}) {
      b2.insert(b2.end(), f->begin(), f->end());
    }
    result.source_error = util::rel_l2(a, b2);
  }
  return result;
}

}  // namespace quake::inverse
