#include "quake/inverse/regularization.hpp"

#include <cmath>
#include <limits>

namespace quake::inverse {

TotalVariation::TotalVariation(const MaterialGrid& grid, double beta,
                               double eps)
    : grid_(&grid), beta_(beta), eps_(eps) {}

TotalVariation::CellGrad TotalVariation::cell_gradient(
    std::span<const double> m, int ci, int ck) const {
  const double m00 = m[static_cast<std::size_t>(grid_->node(ci, ck))];
  const double m10 = m[static_cast<std::size_t>(grid_->node(ci + 1, ck))];
  const double m01 = m[static_cast<std::size_t>(grid_->node(ci, ck + 1))];
  const double m11 = m[static_cast<std::size_t>(grid_->node(ci + 1, ck + 1))];
  CellGrad g;
  g.gx = 0.5 * ((m10 + m11) - (m00 + m01)) / grid_->cell_dx();
  g.gz = 0.5 * ((m01 + m11) - (m00 + m10)) / grid_->cell_dz();
  return g;
}

double TotalVariation::value(std::span<const double> m) const {
  const double area = grid_->cell_dx() * grid_->cell_dz();
  double v = 0.0;
  for (int ck = 0; ck < grid_->gz(); ++ck) {
    for (int ci = 0; ci < grid_->gx(); ++ci) {
      const CellGrad g = cell_gradient(m, ci, ck);
      v += std::sqrt(g.gx * g.gx + g.gz * g.gz + eps_ * eps_) * area;
    }
  }
  return beta_ * v;
}

void TotalVariation::add_gradient(std::span<const double> m,
                                  std::span<double> grad) const {
  const double area = grid_->cell_dx() * grid_->cell_dz();
  for (int ck = 0; ck < grid_->gz(); ++ck) {
    for (int ci = 0; ci < grid_->gx(); ++ci) {
      const CellGrad g = cell_gradient(m, ci, ck);
      const double norm = std::sqrt(g.gx * g.gx + g.gz * g.gz + eps_ * eps_);
      const double wx = beta_ * area * g.gx / norm;
      const double wz = beta_ * area * g.gz / norm;
      // d(gx)/dm: +-1/2 / dx per corner; d(gz)/dm analogous.
      const double cx = 0.5 * wx / grid_->cell_dx();
      const double cz = 0.5 * wz / grid_->cell_dz();
      grad[static_cast<std::size_t>(grid_->node(ci, ck))] += -cx - cz;
      grad[static_cast<std::size_t>(grid_->node(ci + 1, ck))] += cx - cz;
      grad[static_cast<std::size_t>(grid_->node(ci, ck + 1))] += -cx + cz;
      grad[static_cast<std::size_t>(grid_->node(ci + 1, ck + 1))] += cx + cz;
    }
  }
}

void TotalVariation::add_hessian_vec(std::span<const double> m_ref,
                                     std::span<const double> v,
                                     std::span<double> hv) const {
  const double area = grid_->cell_dx() * grid_->cell_dz();
  for (int ck = 0; ck < grid_->gz(); ++ck) {
    for (int ci = 0; ci < grid_->gx(); ++ci) {
      const CellGrad gr = cell_gradient(m_ref, ci, ck);
      const double norm =
          std::sqrt(gr.gx * gr.gx + gr.gz * gr.gz + eps_ * eps_);
      const double w = beta_ * area / norm;  // lagged diffusivity weight
      const CellGrad gv = cell_gradient(v, ci, ck);
      const double cx = 0.5 * w * gv.gx / grid_->cell_dx();
      const double cz = 0.5 * w * gv.gz / grid_->cell_dz();
      hv[static_cast<std::size_t>(grid_->node(ci, ck))] += -cx - cz;
      hv[static_cast<std::size_t>(grid_->node(ci + 1, ck))] += cx - cz;
      hv[static_cast<std::size_t>(grid_->node(ci, ck + 1))] += -cx + cz;
      hv[static_cast<std::size_t>(grid_->node(ci + 1, ck + 1))] += cx + cz;
    }
  }
}

double Tikhonov1d::value(std::span<const double> p) const {
  double v = 0.0;
  for (std::size_t j = 0; j + 1 < p.size(); ++j) {
    const double d = (p[j + 1] - p[j]) / h_;
    v += d * d * h_;
  }
  return 0.5 * beta_ * v;
}

void Tikhonov1d::add_gradient(std::span<const double> p,
                              std::span<double> g) const {
  for (std::size_t j = 0; j + 1 < p.size(); ++j) {
    const double d = beta_ * (p[j + 1] - p[j]) / h_;
    g[j] -= d;
    g[j + 1] += d;
  }
}

void Tikhonov1d::add_hessian_vec(std::span<const double> v,
                                 std::span<double> hv) const {
  add_gradient(v, hv);  // the operator is linear
}

double LogBarrier::value(std::span<const double> m) const {
  double v = 0.0;
  for (double x : m) {
    if (x <= lo_) return std::numeric_limits<double>::infinity();
    v -= std::log(x - lo_);
  }
  return kappa_ * v;
}

void LogBarrier::add_gradient(std::span<const double> m,
                              std::span<double> g) const {
  for (std::size_t i = 0; i < m.size(); ++i) {
    g[i] -= kappa_ / (m[i] - lo_);
  }
}

void LogBarrier::add_hessian_vec(std::span<const double> m,
                                 std::span<const double> v,
                                 std::span<double> hv) const {
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double d = m[i] - lo_;
    hv[i] += kappa_ * v[i] / (d * d);
  }
}

}  // namespace quake::inverse
