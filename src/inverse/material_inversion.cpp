#include "quake/inverse/material_inversion.hpp"

#include <algorithm>
#include <memory>
#include <cmath>
#include <stdexcept>

#include "quake/inverse/band.hpp"
#include "quake/inverse/regularization.hpp"
#include "quake/obs/obs.hpp"
#include "quake/opt/frankel.hpp"
#include "quake/opt/lbfgs.hpp"
#include "quake/opt/linesearch.hpp"
#include "quake/util/log.hpp"
#include "quake/util/stats.hpp"

namespace quake::inverse {

MaterialInversionResult invert_material(const InversionProblem& prob,
                                        const MaterialInversionOptions& opt,
                                        std::span<const double> mu_target) {
  if (opt.stages.empty()) {
    throw std::invalid_argument("invert_material: no stages");
  }
  const auto& setup = prob.setup();
  const std::size_t ne = static_cast<std::size_t>(setup.grid.n_elems());

  MaterialInversionResult result;
  std::vector<double> m;  // current material-grid iterate
  std::unique_ptr<MaterialGrid> prev_grid;

  std::size_t stage_idx = 0;
  for (const auto& [gx, gz] : opt.stages) {
    // Frequency continuation: band-limit the misfit for this stage.
    std::unique_ptr<ResidualFilter> rf;
    if (stage_idx < opt.stage_f_cut.size() &&
        opt.stage_f_cut[stage_idx] > 0.0) {
      rf = std::make_unique<ResidualFilter>(opt.stage_f_cut[stage_idx],
                                            1.0 / setup.dt);
    }
    ++stage_idx;
    auto mg = std::make_unique<MaterialGrid>(setup.grid, gx, gz);
    const std::size_t np = mg->n_params();
    if (prev_grid == nullptr) {
      const double mu0 = opt.initial_mu > 0.0 ? opt.initial_mu
                                              : std::max(10.0 * opt.mu_min, 1e7);
      m.assign(np, mu0);
    } else {
      m = prev_grid->prolongate(m, *mg);
      for (double& v : m) v = std::max(v, opt.mu_min * 1.01);
    }

    const TotalVariation tv(*mg, opt.beta_tv, opt.tv_eps);
    const LogBarrier barrier(opt.barrier_kappa, opt.mu_min);
    const bool use_barrier = opt.barrier_kappa > 0.0;

    // Morales-Nocedal refresh: precondition each CG with the curvature
    // pairs harvested from the PREVIOUS Newton step's CG (the Hessian
    // changes between steps, so stale pairs are discarded).
    opt::LbfgsOperator lbfgs_prev(np), lbfgs_next(np);
    StageReport report;
    report.gx = gx;
    report.gz = gz;
    report.n_params = np;

    std::vector<double> mu(ne), ge(ne), g(np), d(np);

    auto data_misfit = [&](const InversionProblem::ForwardOut& fwd) {
      if (rf == nullptr) return fwd.misfit;
      return 0.5 * setup.dt * rf->filtered_norm2(fwd.residuals);
    };
    auto objective = [&](std::span<const double> mm) -> double {
      std::vector<double> mu_try(ne);
      mg->apply(mm, mu_try);
      for (double v : mu_try) {
        if (!(v > 0.0)) return std::numeric_limits<double>::infinity();
      }
      const wave2d::ShModel model(setup.grid, std::move(mu_try), setup.rho);
      const auto fwd = prob.forward(model, setup.source, /*history=*/false);
      double j = data_misfit(fwd) + tv.value(mm);
      if (use_barrier) j += barrier.value(mm);
      return j;
    };

    double g0_norm = -1.0;
    for (int newton = 0; newton < opt.max_newton; ++newton) {
      QUAKE_OBS_SCOPE("gn/newton");
      obs::counter_add("gn/newton_total", 1);
      mg->apply(m, mu);
      const wave2d::ShModel model(setup.grid, std::vector<double>(mu),
                                  setup.rho);
      const auto fwd = [&] {
        QUAKE_OBS_SCOPE("forward");
        return prob.forward(model, setup.source, /*history=*/true);
      }();
      const double jd = data_misfit(fwd);
      double j = jd + tv.value(m);
      if (use_barrier) j += barrier.value(m);
      if (newton == 0) report.misfit_initial = jd;
      report.misfit_final = jd;

      // Gradient (band-limited misfit drives the adjoint with B^T B r).
      {
        QUAKE_OBS_SCOPE("adjoint");
        const History nu = prob.adjoint(
            model, rf ? rf->apply_symmetric(fwd.residuals) : fwd.residuals);
        std::fill(ge.begin(), ge.end(), 0.0);
        prob.assemble_material_gradient(model, setup.source, fwd.march.history,
                                        nu, ge);
      }
      std::fill(g.begin(), g.end(), 0.0);
      mg->apply_transpose(ge, g);
      tv.add_gradient(m, g);
      if (use_barrier) barrier.add_gradient(m, g);

      const double gnorm = util::norm_l2(g);
      // Per-outer-iteration convergence trace (Table 3.1 columns).
      obs::series_append("gn/misfit", jd);
      obs::series_append("gn/grad_norm", gnorm);
      if (g0_norm < 0.0) g0_norm = gnorm;
      report.grad_reduction = g0_norm > 0.0 ? gnorm / g0_norm : 1.0;
      QUAKE_LOG_DEBUG("stage %dx%d newton %d: J=%.6e misfit=%.6e |g|=%.3e", gx,
                      gz, newton, j, fwd.misfit, gnorm);
      if (gnorm <= opt.grad_tol * g0_norm ||
          (opt.misfit_tol > 0.0 && fwd.misfit < opt.misfit_tol)) {
        break;
      }

      // Gauss-Newton Hessian-vector product in material-grid space
      // (J^T W J with W = B^T B when band-limited).
      opt::LinOp hvp = [&](std::span<const double> v, std::span<double> hv) {
        QUAKE_OBS_SCOPE("hessvec");
        std::vector<double> dmu(ne), he(ne, 0.0);
        mg->apply(v, dmu);
        if (rf == nullptr) {
          prob.gauss_newton_material(model, setup.source, fwd.march.history,
                                     dmu, he);
        } else {
          Records du = prob.incremental_forward_material(
              model, setup.source, fwd.march.history, dmu);
          const History nu_h = prob.adjoint(model, rf->apply_symmetric(du));
          prob.assemble_material_gradient(model, setup.source,
                                          fwd.march.history, nu_h, he);
        }
        mg->apply_transpose(he, hv);
        tv.add_hessian_vec(m, v, hv);
        if (use_barrier) barrier.add_hessian_vec(m, v, hv);
      };

      if (opt.precondition && opt.frankel_sweeps > 0 && newton == 0) {
        // Seed the L-BFGS preconditioner with Frankel sweeps on H d = -g.
        std::vector<double> b(np), x0(np, 0.0);
        for (std::size_t i = 0; i < np; ++i) b[i] = -g[i];
        opt::FrankelOptions fo;
        fo.sweeps = opt.frankel_sweeps;
        fo.power_iterations = 4;
        opt::frankel_two_step(hvp, b, x0, fo, &lbfgs_prev);
      }

      opt::LinOp precond = [&](std::span<const double> v,
                               std::span<double> out) {
        lbfgs_prev.apply(v, out);
      };
      lbfgs_next.clear();
      opt::PairCollector collect = [&](std::span<const double> s,
                                       std::span<const double> y) {
        lbfgs_next.add_pair(s, y);
      };

      std::vector<double> b(np);
      for (std::size_t i = 0; i < np; ++i) b[i] = -g[i];
      std::fill(d.begin(), d.end(), 0.0);
      const opt::CgResult cgres = [&] {
        QUAKE_OBS_SCOPE("cg");
        return opt::conjugate_gradient(
            hvp, b, d, opt.cg, opt.precondition ? &precond : nullptr,
            &collect);
      }();
      report.cg_iters += cgres.iterations;
      obs::series_append("gn/cg_iters", static_cast<double>(cgres.iterations));
      obs::counter_add("gn/cg_total", cgres.iterations);
      const double dnorm = util::norm_l2(d);
      if (dnorm == 0.0) break;

      double dphi0 = util::dot(g, d);
      if (dphi0 >= 0.0) {
        // Fall back to steepest descent if CG returned a non-descent
        // direction (can happen with an indefinite preconditioner).
        for (std::size_t i = 0; i < np; ++i) d[i] = -g[i];
        dphi0 = -gnorm * gnorm;
      }

      // Projected step: the mu >= mu_min bound is enforced by projection
      // inside the line search (gradient projection), so an active bound on
      // one parameter never stalls the others.
      const double floor = opt.mu_min * 1.0001;
      auto projected = [&](double alpha) {
        std::vector<double> trial(m);
        for (std::size_t i = 0; i < np; ++i) {
          trial[i] = std::max(floor, trial[i] + alpha * d[i]);
        }
        return trial;
      };

      opt::ArmijoOptions ao;
      const auto ls = [&] {
        QUAKE_OBS_SCOPE("linesearch");
        return opt::armijo_backtracking(
            [&](double alpha) { return objective(projected(alpha)); }, j,
            dphi0, ao);
      }();
      obs::series_append("gn/ls_evals", static_cast<double>(ls.evaluations));
      ++report.newton_iters;
      std::swap(lbfgs_prev, lbfgs_next);
      if (!ls.success) break;
      m = projected(ls.alpha);
    }

    if (!mu_target.empty()) {
      mg->apply(m, mu);
      report.model_error = util::rel_l2(mu, mu_target);
    }
    result.total_newton += report.newton_iters;
    result.total_cg += report.cg_iters;
    result.stages.push_back(report);
    prev_grid = std::move(mg);
  }

  result.m = m;
  result.mu.resize(ne);
  prev_grid->apply(m, result.mu);
  return result;
}

}  // namespace quake::inverse
