#include "quake/vel/etree_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "quake/octree/linear_octree.hpp"

namespace quake::vel {
namespace {

// Fixed record: (rho, lambda, mu) of the octant.
struct Record {
  double rho, lambda, mu;
};

octree::Octant octant_at(double x, double y, double z, int level,
                         double domain_size) {
  const double t = static_cast<double>(octree::kTicks) / domain_size;
  auto tick = [&](double v) {
    const double clamped =
        std::clamp(v, 0.0, domain_size * (1.0 - 1e-12));
    return static_cast<std::uint32_t>(clamped * t);
  };
  return octree::Octant{tick(x), tick(y), tick(z), 0}.ancestor_at(
      static_cast<std::uint8_t>(level));
}

}  // namespace

std::size_t build_etree_model(const VelocityModel& model,
                              const EtreeModelOptions& opt,
                              const std::string& path) {
  if (!(opt.domain_size > 0.0) || opt.level < 0 || opt.level > 10) {
    throw std::invalid_argument("build_etree_model: bad options");
  }
  octree::EtreeStore store(path, sizeof(Record), opt.pool_pages,
                           /*create=*/true);
  // Sample in SFC order (build a uniform octree and walk its leaves) so the
  // B-tree fills append-only.
  const octree::LinearOctree tree = octree::build_octree(
      [&](const octree::Octant& o) { return o.level < opt.level; },
      opt.level);
  const double m_per_tick =
      opt.domain_size / static_cast<double>(octree::kTicks);
  std::size_t n = 0;
  for (const octree::Octant& o : tree.leaves()) {
    const double h = o.size() * m_per_tick;
    const Material mat = model.at(o.x * m_per_tick + 0.5 * h,
                                  o.y * m_per_tick + 0.5 * h,
                                  o.z * m_per_tick + 0.5 * h);
    const Record rec{mat.rho, mat.lambda, mat.mu};
    store.put(o, std::as_bytes(std::span<const Record, 1>(&rec, 1)));
    ++n;
  }
  store.flush();
  return n;
}

EtreeVelocityModel::EtreeVelocityModel(const std::string& path,
                                       const EtreeModelOptions& opt)
    : store_(std::make_unique<octree::EtreeStore>(path, sizeof(Record),
                                                  opt.pool_pages,
                                                  /*create=*/false)),
      opt_(opt) {
  if (!(opt_.domain_size > 0.0)) {
    throw std::invalid_argument("EtreeVelocityModel: domain_size required");
  }
  // min_vs scan (one pass; done once at open).
  double vmin = std::numeric_limits<double>::max();
  store_->scan([&](const octree::Octant&, std::span<const std::byte> v) {
    Record rec;
    std::memcpy(&rec, v.data(), sizeof rec);
    vmin = std::min(vmin, std::sqrt(rec.mu / rec.rho));
  });
  min_vs_ = vmin;
}

Material EtreeVelocityModel::at(double x, double y, double z) const {
  const octree::Octant o = octant_at(x, y, z, opt_.level, opt_.domain_size);
  Record rec;
  if (!store_->get(o, std::as_writable_bytes(std::span<Record, 1>(&rec, 1)))) {
    throw std::runtime_error("EtreeVelocityModel: octant missing from store");
  }
  Material m;
  m.rho = rec.rho;
  m.lambda = rec.lambda;
  m.mu = rec.mu;
  return m;
}

}  // namespace quake::vel
