#include "quake/vel/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace quake::vel {

LayeredModel::LayeredModel(std::vector<Layer> layers)
    : layers_(std::move(layers)) {
  if (layers_.empty()) {
    throw std::invalid_argument("LayeredModel: need at least one layer");
  }
  min_vs_ = layers_[0].material.vs();
  for (const Layer& l : layers_) min_vs_ = std::min(min_vs_, l.material.vs());
}

Material LayeredModel::at(double /*x*/, double /*y*/, double z) const {
  double top = 0.0;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    top += layers_[i].thickness;
    if (z < top) return layers_[i].material;
  }
  return layers_.back().material;
}

double BasinModel::basement_depth(double x, double y) const {
  double d = 0.0;
  for (const Depression& dep : p_.depressions) {
    const double dx = (x - dep.cx) / dep.radius;
    const double dy = (y - dep.cy) / dep.radius;
    d = std::max(d, dep.depth * std::exp(-(dx * dx + dy * dy)));
  }
  return d;
}

Material BasinModel::at(double x, double y, double z) const {
  const double basement = basement_depth(x, y);
  double vs;
  double vp_vs;
  if (z < basement && basement > 0.0) {
    // Square-root compaction profile from vs_surface to the rock velocity
    // at the local basement.
    const double t = std::sqrt(std::clamp(z / basement, 0.0, 1.0));
    vs = p_.vs_surface + (p_.vs_rock - p_.vs_surface) * t;
    vp_vs = p_.vp_vs_ratio;
  } else {
    vs = std::min(p_.vs_rock + p_.rock_gradient * z, p_.vs_rock_max);
    vp_vs = 1.732;
  }
  // Density from a smooth velocity-density trend (Gardner-like), clamped to
  // physical soil/rock values.
  const double rho = std::clamp(1500.0 + 0.35 * vs, 1600.0, 2900.0);
  return Material::from_velocities(vp_vs * vs, vs, rho);
}

BasinModel BasinModel::demo(double extent) {
  Params p;
  // Two major overlapping depressions (San Fernando Valley / LA Basin
  // analogue) plus a compact deep pocket.
  p.depressions = {
      {0.35 * extent, 0.40 * extent, 0.28 * extent, 0.055 * extent},
      {0.62 * extent, 0.58 * extent, 0.22 * extent, 0.080 * extent},
      {0.55 * extent, 0.30 * extent, 0.10 * extent, 0.100 * extent},
  };
  return BasinModel(std::move(p));
}

double element_size_for(double vs, double f_max, double n_lambda) {
  if (!(vs > 0.0) || !(f_max > 0.0) || !(n_lambda > 0.0)) {
    throw std::invalid_argument("element_size_for: positive inputs required");
  }
  return vs / (n_lambda * f_max);
}

}  // namespace quake::vel
