#pragma once

// Velocity models: the geological description that drives both meshing
// (element size tailored to the local shear wavelength, §2.2/§2.3) and the
// element material properties.
//
// Substitution note (see DESIGN.md): the paper samples the SCEC Community
// Velocity Model of the LA Basin; we provide a synthetic basin with the same
// governing character — one-to-two orders of magnitude of shear-velocity
// contrast between soft near-surface sediments and basement rock, organized
// as sediment-filled depressions in a hard halfspace.

#include <memory>
#include <vector>

#include "quake/vel/material.hpp"

namespace quake::vel {

// Coordinates are meters; z is depth, positive downward, z = 0 the free
// surface.
class VelocityModel {
 public:
  virtual ~VelocityModel() = default;
  [[nodiscard]] virtual Material at(double x, double y, double z) const = 0;
  // Global lower bound on shear velocity; drives the finest element size.
  [[nodiscard]] virtual double min_vs() const = 0;
};

class HomogeneousModel final : public VelocityModel {
 public:
  explicit HomogeneousModel(Material m) : m_(m) {}
  [[nodiscard]] Material at(double, double, double) const override {
    return m_;
  }
  [[nodiscard]] double min_vs() const override { return m_.vs(); }

 private:
  Material m_;
};

// Horizontal layers over a halfspace; used by the Fig 2.2 verification
// problem (soft layer over stiff halfspace).
class LayeredModel final : public VelocityModel {
 public:
  struct Layer {
    double thickness;  // meters; the last entry is the halfspace (ignored)
    Material material;
  };
  // `layers` ordered from the surface downward; the final layer acts as the
  // halfspace regardless of its thickness.
  explicit LayeredModel(std::vector<Layer> layers);

  [[nodiscard]] Material at(double x, double y, double z) const override;
  [[nodiscard]] double min_vs() const override { return min_vs_; }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

 private:
  std::vector<Layer> layers_;
  double min_vs_;
};

// Synthetic LA-basin-like model: superposed Gaussian sediment-filled
// depressions in a rock halfspace. Inside the basin the shear velocity
// grades from `vs_surface` at z = 0 to the rock velocity at the local
// basement depth (square-root depth profile, typical of compacting
// sediments); outside it is rock with a mild positive gradient.
class BasinModel final : public VelocityModel {
 public:
  struct Depression {
    double cx, cy;    // center [m]
    double radius;    // Gaussian radius [m]
    double depth;     // maximum basement depth [m]
  };
  struct Params {
    std::vector<Depression> depressions;
    double vs_surface = 100.0;    // softest sediments [m/s]
    double vs_rock = 3200.0;      // basement shear velocity at z = 0 [m/s]
    double rock_gradient = 0.05;  // d(vs)/dz in rock [1/s]
    double vs_rock_max = 4500.0;  // cap on rock velocity [m/s]
    double vp_vs_ratio = 2.0;     // sediments are high-Poisson; rock ~1.73
  };

  explicit BasinModel(Params p) : p_(std::move(p)) {}

  // Basement depth below (x, y); zero outside all depressions.
  [[nodiscard]] double basement_depth(double x, double y) const;

  [[nodiscard]] Material at(double x, double y, double z) const override;
  [[nodiscard]] double min_vs() const override { return p_.vs_surface; }
  [[nodiscard]] const Params& params() const { return p_; }

  // A ready-made scaled-down Greater-LA-like instance spanning a square
  // domain of side `extent` meters (two overlapping major depressions plus
  // a small deep pocket, echoing the San Fernando / LA basin pair).
  static BasinModel demo(double extent);

 private:
  Params p_;
};

// Local element-size rule h = vs / (n_lambda * f_max) (§2.2 footnote 5).
[[nodiscard]] double element_size_for(double vs, double f_max, double n_lambda);

}  // namespace quake::vel
