#pragma once

// Material description at a point: density and the Lamé moduli, plus the
// derived wave speeds vp = sqrt((lambda + 2 mu) / rho), vs = sqrt(mu / rho)
// used throughout §2.1 of the paper.

#include <cmath>

namespace quake::vel {

struct Material {
  double rho = 0.0;     // density [kg/m^3]
  double lambda = 0.0;  // first Lamé modulus [Pa]
  double mu = 0.0;      // shear modulus [Pa]

  [[nodiscard]] double vp() const { return std::sqrt((lambda + 2.0 * mu) / rho); }
  [[nodiscard]] double vs() const { return std::sqrt(mu / rho); }

  // Builds a material from seismic velocities and density.
  static Material from_velocities(double vp, double vs, double rho) {
    Material m;
    m.rho = rho;
    m.mu = rho * vs * vs;
    m.lambda = rho * (vp * vp - 2.0 * vs * vs);
    return m;
  }
};

}  // namespace quake::vel
