#pragma once

// Etree-backed velocity model. The paper's toolchain queries the SCEC
// Community Velocity Model through an etree database (the "CVM etree"): the
// ground model is sampled once into an octree keyed by Morton codes and
// stored on disk; meshing and solvers then query the database instead of
// the (slow, shared) model code. This class reproduces that component:
// build_etree_model() samples any VelocityModel into an EtreeStore at a
// given resolution, and EtreeVelocityModel answers at(x, y, z) queries from
// the store through its buffer pool.

#include <memory>
#include <string>

#include "quake/octree/etree_store.hpp"
#include "quake/vel/model.hpp"

namespace quake::vel {

struct EtreeModelOptions {
  double domain_size = 0.0;  // cube edge [m]
  int level = 6;             // uniform sampling level (8^level octants)
  std::size_t pool_pages = 256;
};

// Samples `model` at the centers of all level-`level` octants into a new
// store at `path`. Returns the number of records written.
std::size_t build_etree_model(const VelocityModel& model,
                              const EtreeModelOptions& opt,
                              const std::string& path);

// A VelocityModel view over a material database built by build_etree_model.
// Queries return the material of the octant containing the point (piecewise
// constant at the sampling resolution).
class EtreeVelocityModel final : public VelocityModel {
 public:
  EtreeVelocityModel(const std::string& path, const EtreeModelOptions& opt);

  [[nodiscard]] Material at(double x, double y, double z) const override;
  [[nodiscard]] double min_vs() const override { return min_vs_; }

  // Buffer-pool statistics of the underlying store.
  [[nodiscard]] octree::EtreeStore::Stats stats() const {
    return store_->stats();
  }

 private:
  std::unique_ptr<octree::EtreeStore> store_;
  EtreeModelOptions opt_;
  double min_vs_ = 0.0;
};

}  // namespace quake::vel
