#include "quake/util/io.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace quake::util {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

// Surfaces buffered-write failures (disk full, I/O error) that fprintf /
// fwrite can defer until flush time: checks the stream error flag, then
// closes and checks fclose itself (which flushes). Without this a writer
// can silently truncate its output.
void close_or_throw(FilePtr f, const std::string& path) {
  const bool had_error = std::ferror(f.get()) != 0;
  std::FILE* raw = f.release();
  const bool close_failed = std::fclose(raw) != 0;
  if (had_error || close_failed) {
    throw std::runtime_error("write failed for " + path);
  }
}

}  // namespace

void write_csv(const std::string& path, std::span<const std::string> names,
               std::span<const std::vector<double>> columns) {
  if (names.size() != columns.size()) {
    throw std::invalid_argument("write_csv: names/columns size mismatch");
  }
  const std::size_t rows = columns.empty() ? 0 : columns[0].size();
  for (const auto& c : columns) {
    if (c.size() != rows) {
      throw std::invalid_argument("write_csv: ragged columns");
    }
  }
  FilePtr f = open_or_throw(path, "w");
  for (std::size_t j = 0; j < names.size(); ++j) {
    if (std::fprintf(f.get(), "%s%s", names[j].c_str(),
                     j + 1 < names.size() ? "," : "\n") < 0) {
      throw std::runtime_error("write failed for " + path);
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < columns.size(); ++j) {
      if (std::fprintf(f.get(), "%.9g%s", columns[j][i],
                       j + 1 < columns.size() ? "," : "\n") < 0) {
        throw std::runtime_error("write failed for " + path);
      }
    }
  }
  close_or_throw(std::move(f), path);
}

void write_pgm(const std::string& path, std::span<const double> values,
               int width, int height, double lo, double hi) {
  if (width <= 0 || height <= 0 ||
      values.size() != static_cast<std::size_t>(width) * height) {
    throw std::invalid_argument("write_pgm: bad dimensions");
  }
  FilePtr f = open_or_throw(path, "wb");
  if (std::fprintf(f.get(), "P5\n%d %d\n255\n", width, height) < 0) {
    throw std::runtime_error("write failed for " + path);
  }
  const double scale = hi > lo ? 255.0 / (hi - lo) : 0.0;
  std::vector<unsigned char> row(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double v = (values[static_cast<std::size_t>(y) * width + x] - lo) * scale;
      row[static_cast<std::size_t>(x)] =
          static_cast<unsigned char>(std::clamp(v, 0.0, 255.0));
    }
    if (std::fwrite(row.data(), 1, row.size(), f.get()) != row.size()) {
      throw std::runtime_error("write failed for " + path);
    }
  }
  close_or_throw(std::move(f), path);
}

void write_text_file(const std::string& path, std::string_view content) {
  FilePtr f = open_or_throw(path, "wb");
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), f.get()) !=
          content.size()) {
    throw std::runtime_error("write failed for " + path);
  }
  close_or_throw(std::move(f), path);
}

std::string read_text_file(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f.get());
    out.append(buf, n);
    if (n < sizeof buf) break;
  }
  if (std::ferror(f.get()) != 0) {
    throw std::runtime_error("read failed for " + path);
  }
  return out;
}

}  // namespace quake::util
