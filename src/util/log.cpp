#include "quake/util/log.hpp"

#include <cstdarg>
#include <cstdlib>

namespace quake::util {

LogLevel& log_level() noexcept {
  static LogLevel level = [] {
    // Env override: QUAKE_LOG = error | warn | info | debug.
    const char* env = std::getenv("QUAKE_LOG");
    if (env == nullptr) return LogLevel::kWarn;
    switch (env[0]) {
      case 'e': return LogLevel::kError;
      case 'i': return LogLevel::kInfo;
      case 'd': return LogLevel::kDebug;
      default: return LogLevel::kWarn;
    }
  }();
  return level;
}

void vlog(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  static const char* tags[] = {"ERROR", "WARN ", "INFO ", "DEBUG"};
  std::fprintf(stderr, "[quake %s] ", tags[static_cast<int>(level)]);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace quake::util
