#pragma once

// Wall-clock timing utilities used by the benches and the parallel solver's
// per-rank accounting.

#include <chrono>

namespace quake::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across start/stop intervals (e.g. compute vs exchange
// phases of the explicit solver loop). stop() accumulates only when a
// start() is pending: an unmatched stop() is a no-op rather than adding
// whatever time happened to elapse since construction or the last interval.
class StopWatch {
 public:
  void start() {
    timer_.reset();
    running_ = true;
  }
  void stop() {
    if (!running_) return;
    total_ += timer_.seconds();
    running_ = false;
  }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] double total_seconds() const { return total_; }
  void clear() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace quake::util
