#pragma once

// Norms and waveform-comparison metrics used by the verification benches
// (Fig 2.2, Fig 2.4) and the inversion reporting (Fig 3.2/3.3).

#include <span>

namespace quake::util {

double norm_l2(std::span<const double> x);
double norm_max(std::span<const double> x);
double dot(std::span<const double> x, std::span<const double> y);

// ||x - y||_2 ; sizes must match.
double diff_l2(std::span<const double> x, std::span<const double> y);

// Relative L2 misfit ||x - y|| / ||y||; returns ||x - y|| when ||y|| == 0.
double rel_l2(std::span<const double> x, std::span<const double> y);

// Normalized cross-correlation at zero lag, in [-1, 1]; 1 means identical
// waveform shape. Returns 0 when either input is identically zero.
double correlation(std::span<const double> x, std::span<const double> y);

}  // namespace quake::util
