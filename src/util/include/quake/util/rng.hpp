#pragma once

// Deterministic random number generation (splitmix64-seeded xoshiro256**).
// Used for the 5% observation noise in the inversion experiments (Fig 3.2)
// and for randomized property tests; fully reproducible across platforms,
// unlike std::normal_distribution.

#include <cstdint>

namespace quake::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Standard normal via Marsaglia polar method (deterministic given state).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = sqrt_neg2_log(s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_neg2_log(double s) noexcept;

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace quake::util
