#pragma once

// Minimal leveled logging to stderr. Quiet by default in tests; benches and
// examples raise the level explicitly.

#include <cstdio>
#include <string>

namespace quake::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Process-wide log threshold. Not synchronized: set it once at startup.
LogLevel& log_level() noexcept;

void vlog(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#define QUAKE_LOG_INFO(...) ::quake::util::vlog(::quake::util::LogLevel::kInfo, __VA_ARGS__)
#define QUAKE_LOG_WARN(...) ::quake::util::vlog(::quake::util::LogLevel::kWarn, __VA_ARGS__)
#define QUAKE_LOG_ERROR(...) ::quake::util::vlog(::quake::util::LogLevel::kError, __VA_ARGS__)
#define QUAKE_LOG_DEBUG(...) ::quake::util::vlog(::quake::util::LogLevel::kDebug, __VA_ARGS__)

}  // namespace quake::util
