#pragma once

// Floating-point operation accounting. The paper reports sustained flop
// rates per processor (Table 2.1); since hardware counters are not portable
// we count the flops our kernels perform analytically and divide by wall
// time, exactly the convention used for reporting unstructured FEM codes.

#include <cstdint>

namespace quake::util {

class FlopCounter {
 public:
  void add(std::uint64_t flops) noexcept { flops_ += flops; }
  [[nodiscard]] std::uint64_t total() const noexcept { return flops_; }
  void clear() noexcept { flops_ = 0; }

  // Megaflop/s over an interval; returns 0 for degenerate intervals.
  [[nodiscard]] double mflops(double seconds) const noexcept {
    return seconds > 0 ? static_cast<double>(flops_) / seconds * 1e-6 : 0.0;
  }

 private:
  std::uint64_t flops_ = 0;
};

}  // namespace quake::util
