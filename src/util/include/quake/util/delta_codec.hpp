#pragma once

// Delta compression for step-to-step solver payloads (see DESIGN.md
// "Localized recovery"): consecutive ghost-exchange payloads on one edge
// differ little — regions the wavefront has not reached are exactly zero,
// and where it has, neighboring steps share sign, exponent, and the high
// mantissa bytes. XOR-ing each 64-bit word against the previous step's
// word turns both into runs of zero bytes, which a byte-mask + zero-run
// encoding stores compactly. The transform is exact: decode(prev,
// encode(prev, cur)) == cur bit for bit, which is what lets the tier-1
// message-log replay stay bit-identical while the ring spans several
// checkpoint intervals at the same memory bound.
//
// Wire format (per encoded payload, a sequence of word tokens):
//   0x00, varint(n)     — n consecutive words whose XOR is entirely zero
//   mask (1..0xff), b.. — one word; bit i of mask set = byte i of the
//                         XOR'd word is nonzero and stored next (LSB
//                         first), clear = that byte is zero
// Varints are LEB128. A payload always encodes size(cur) words; sizes must
// match between encode and decode.

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace quake::util {

// Appends the delta encoding of `cur` against `prev` to `out` (the caller
// owns framing). prev.size() must equal cur.size().
void delta_encode(std::span<const double> prev, std::span<const double> cur,
                  std::vector<std::uint8_t>& out);

// Reconstructs the payload encoded against `prev` in place: on entry `buf`
// holds prev, on exit it holds cur. Throws std::runtime_error on a
// malformed or size-mismatched code stream.
void delta_decode_inplace(std::span<double> buf,
                          std::span<const std::uint8_t> code);

// Bounded per-neighbor ring of delta-encoded step payloads, the storage
// behind the tier-1 message log. Entries are keyed by contiguous step
// numbers; each is stored as a delta against the previous entry (the first
// against the all-zero payload, exact for the pre-source quiet steps).
// Popping the oldest entry re-anchors the front by decoding the next entry
// against it, so eviction is O(payload) like insertion.
class DeltaRing {
 public:
  DeltaRing(std::size_t payload_doubles, int capacity)
      : n_(payload_doubles),
        cap_(capacity),
        front_pay_(payload_doubles, 0.0),
        last_pay_(payload_doubles, 0.0) {}

  // Appends the payload for `step`. Steps must arrive in increasing
  // contiguous order (the solver pushes once per step per edge); a
  // non-contiguous step resets the ring to this single entry.
  void push(int step, std::span<const double> payload);

  [[nodiscard]] bool empty() const { return codes_.empty(); }
  [[nodiscard]] bool contains(int step) const {
    return !codes_.empty() && step >= front_step_ &&
           step < front_step_ + static_cast<int>(codes_.size());
  }
  [[nodiscard]] int front_step() const { return front_step_; }
  [[nodiscard]] int size() const { return static_cast<int>(codes_.size()); }

  // Decodes entries with step in [lo, hi) in ascending order and calls
  // f(step, std::span<const double> payload) for each. One cumulative
  // decode pass over the ring, O(entries * payload).
  template <class F>
  void for_each(int lo, int hi, F&& f) const {
    if (codes_.empty() || hi <= front_step_) return;
    std::vector<double> cur = front_pay_;
    int step = front_step_;
    for (std::size_t i = 1; i <= codes_.size(); ++i, ++step) {
      if (step >= hi) return;
      if (step >= lo) f(step, std::span<const double>(cur));
      if (i < codes_.size()) delta_decode_inplace(cur, codes_[i]);
    }
  }

  void clear();

  // Stored (encoded) bytes across all entries, the `par/log_bytes` gauge.
  [[nodiscard]] std::size_t stored_bytes() const { return stored_; }
  // Logical payload bytes the same entries would occupy uncompressed, the
  // `par/log_raw_bytes` gauge; ratio raw/stored is the compression factor.
  [[nodiscard]] std::size_t raw_bytes() const {
    return codes_.size() * n_ * sizeof(double);
  }

 private:
  std::size_t n_;
  int cap_;
  std::deque<std::vector<std::uint8_t>> codes_;  // codes_[i]: step front+i
  int front_step_ = 0;
  std::vector<double> front_pay_;  // decoded payload of codes_.front()
  std::vector<double> last_pay_;   // decoded payload of codes_.back()
  std::size_t stored_ = 0;
};

}  // namespace quake::util
