#pragma once

// Plain-text artifact writers used by the benches: CSV time series and
// grayscale PGM rasters (used for the Fig 2.3/2.5 velocity-field and
// snapshot images).

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace quake::util {

// Writes one column per series, with a header row. All series must have the
// same length. Throws std::runtime_error on I/O failure.
void write_csv(const std::string& path, std::span<const std::string> names,
               std::span<const std::vector<double>> columns);

// Writes an 8-bit PGM image. `values` is row-major, `width * height` long,
// linearly mapped from [lo, hi] to [0, 255] (clamped). Throws
// std::runtime_error on I/O failure (open, short write, close).
void write_pgm(const std::string& path, std::span<const double> values,
               int width, int height, double lo, double hi);

// Writes `content` verbatim with the same hardening as the writers above
// (open, short-write, and deferred-flush errors all throw). Used by the
// quake::obs metrics sink for its JSON/CSV reports.
void write_text_file(const std::string& path, std::string_view content);

// Reads a whole file into a string; throws std::runtime_error on open or
// read failure. Counterpart of write_text_file (tools/check_bench_schema).
[[nodiscard]] std::string read_text_file(const std::string& path);

}  // namespace quake::util
