#pragma once

// CRC32-verified binary snapshots for checkpoint/restart of long-running
// solvers (see DESIGN.md "Fault tolerance & checkpointing"). A Snapshot is
// a step counter plus named double arrays ("u", "u_prev", receiver
// histories, ...). Files are written atomically (temp file + rename) with a
// trailing CRC32 of the whole payload, so a crash mid-write never yields a
// snapshot that loads: load_snapshot treats missing, truncated, or
// corrupted files as "no checkpoint" and returns false.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quake::util {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `seed` is the
// running value for streaming use; pass the previous return value.
std::uint32_t crc32(std::span<const unsigned char> data,
                    std::uint32_t seed = 0);

struct Snapshot {
  std::int64_t step = 0;
  std::vector<std::pair<std::string, std::vector<double>>> fields;

  void add(std::string name, std::vector<double> data) {
    fields.emplace_back(std::move(name), std::move(data));
  }
  // Empty span if the field is absent.
  [[nodiscard]] std::span<const double> field(std::string_view name) const;
};

// Writes `snap` to `path` via `path + ".tmp"` and rename; throws
// std::runtime_error on any I/O failure (open, short write, close).
void save_snapshot(const std::string& path, const Snapshot& snap);

// Retention-aware save: writes the snapshot to disk first, then rotates
// the generation chain `path` -> `path + ".1"` -> ... -> `path + ".<keep-1>"`
// (the oldest generation is pruned by the rotation's atomic rename) and
// renames the fresh file into `path`. On ANY failure — ENOSPC on the temp
// write, a failed rename — returns false with the previous generation
// chain intact as the restore target, so callers can log and continue the
// solve under disk pressure instead of aborting (see run_parallel's
// `checkpoint/write_failures` counter). `keep` < 1 is treated as 1; when
// `error` is non-null it receives a description of the failure.
bool save_snapshot_rotating(const std::string& path, const Snapshot& snap,
                            int keep, std::string* error = nullptr);

// The on-disk name of retention generation `gen` (0 = newest = `path`).
std::string snapshot_generation_path(const std::string& path, int gen);

// Loads a snapshot; returns false (leaving *out* untouched) if the file is
// missing, truncated, has a wrong magic/version, or fails CRC verification.
bool load_snapshot(const std::string& path, Snapshot* out);

// load_snapshot with the failure cause split out: kMissing (no file at
// `path`) vs kCorrupt (a file exists but is truncated, mis-tagged, or fails
// CRC verification). Restore agreement uses the distinction to count
// generation fallbacks — skipping a corrupt newest generation for an older
// intact one is an event worth surfacing; skipping a file that was never
// written is not.
enum class SnapshotLoadStatus { kOk, kMissing, kCorrupt };
SnapshotLoadStatus load_snapshot_status(const std::string& path,
                                        Snapshot* out);

}  // namespace quake::util
