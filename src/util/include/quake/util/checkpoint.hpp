#pragma once

// CRC32-verified binary snapshots for checkpoint/restart of long-running
// solvers (see DESIGN.md "Fault tolerance & checkpointing"). A Snapshot is
// a step counter plus named double arrays ("u", "u_prev", receiver
// histories, ...). Files are written atomically (temp file + rename) with a
// trailing CRC32 of the whole payload, so a crash mid-write never yields a
// snapshot that loads: load_snapshot treats missing, truncated, or
// corrupted files as "no checkpoint" and returns false.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quake::util {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `seed` is the
// running value for streaming use; pass the previous return value.
std::uint32_t crc32(std::span<const unsigned char> data,
                    std::uint32_t seed = 0);

struct Snapshot {
  std::int64_t step = 0;
  std::vector<std::pair<std::string, std::vector<double>>> fields;

  void add(std::string name, std::vector<double> data) {
    fields.emplace_back(std::move(name), std::move(data));
  }
  // Empty span if the field is absent.
  [[nodiscard]] std::span<const double> field(std::string_view name) const;
};

// Writes `snap` to `path` via `path + ".tmp"` and rename; throws
// std::runtime_error on any I/O failure (open, short write, close).
void save_snapshot(const std::string& path, const Snapshot& snap);

// Loads a snapshot; returns false (leaving *out* untouched) if the file is
// missing, truncated, has a wrong magic/version, or fails CRC verification.
bool load_snapshot(const std::string& path, Snapshot* out);

}  // namespace quake::util
