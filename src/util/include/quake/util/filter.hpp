#pragma once

// Zero-phase Butterworth low-pass filtering of seismograms. Fig 2.4 of the
// paper compares hexahedral and tetrahedral synthetics after low-pass
// filtering to 0.5 Hz and 1.0 Hz; we reproduce that post-processing here.

#include <span>
#include <vector>

namespace quake::util {

// Coefficients of a single biquad section: y[n] = b0 x[n] + b1 x[n-1] +
// b2 x[n-2] - a1 y[n-1] - a2 y[n-2] (a0 normalized to 1).
struct Biquad {
  double b0, b1, b2, a1, a2;
};

// Second-order Butterworth low-pass biquad for cutoff `fc` (Hz) at sample
// rate `fs` (Hz), via the bilinear transform. Requires 0 < fc < fs/2.
Biquad butterworth_lowpass(double fc, double fs);

// Causal filtering with a single biquad (zero initial conditions).
std::vector<double> filter(const Biquad& bq, std::span<const double> x);

// Zero-phase (forward-backward) low-pass: 4th-order magnitude response,
// no phase distortion. Matches the standard filtfilt post-processing of
// synthetic seismograms.
std::vector<double> lowpass_zero_phase(std::span<const double> x, double fc,
                                       double fs);

}  // namespace quake::util
