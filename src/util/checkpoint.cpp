#include "quake/util/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace quake::util {
namespace {

constexpr std::uint32_t kMagic = 0x50'4B'43'51;  // "QCKP" little-endian
constexpr std::uint32_t kVersion = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Little-endian append of a trivially copyable value / raw buffer.
template <typename T>
void put(std::vector<unsigned char>& buf, const T& v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

void put_bytes(std::vector<unsigned char>& buf, const void* data,
               std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf.insert(buf.end(), p, p + n);
}

// Bounds-checked little-endian reads from a loaded file image.
template <typename T>
bool get(std::span<const unsigned char> buf, std::size_t& off, T* v) {
  if (off + sizeof(T) > buf.size()) return false;
  std::memcpy(v, buf.data() + off, sizeof(T));
  off += sizeof(T);
  return true;
}

}  // namespace

std::uint32_t crc32(std::span<const unsigned char> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::span<const double> Snapshot::field(std::string_view name) const {
  for (const auto& [n, data] : fields) {
    if (n == name) return data;
  }
  return {};
}

namespace {

// Serializes + writes the snapshot to `tmp`; returns false (with *error
// set) instead of throwing so retention-aware callers can ride out disk
// pressure. A failed write removes the partial temp file.
bool write_snapshot_file(const std::string& tmp, const Snapshot& snap,
                         std::string* error) {
  std::vector<unsigned char> buf;
  put(buf, kMagic);
  put(buf, kVersion);
  put(buf, snap.step);
  put(buf, static_cast<std::uint32_t>(snap.fields.size()));
  for (const auto& [name, data] : snap.fields) {
    put(buf, static_cast<std::uint32_t>(name.size()));
    put_bytes(buf, name.data(), name.size());
    put(buf, static_cast<std::uint64_t>(data.size()));
    put_bytes(buf, data.data(), data.size() * sizeof(double));
  }
  put(buf, crc32(buf));

  FilePtr f(std::fopen(tmp.c_str(), "wb"));
  if (!f) {
    if (error != nullptr) *error = "cannot open " + tmp;
    return false;
  }
  if (std::fwrite(buf.data(), 1, buf.size(), f.get()) != buf.size() ||
      std::ferror(f.get()) != 0) {
    f.reset();
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "short write to " + tmp;
    return false;
  }
  std::FILE* raw = f.release();
  if (std::fclose(raw) != 0) {  // delayed ENOSPC surfaces here
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "close failed for " + tmp;
    return false;
  }
  return true;
}

}  // namespace

void save_snapshot(const std::string& path, const Snapshot& snap) {
  const std::string tmp = path + ".tmp";
  std::string error;
  if (!write_snapshot_file(tmp, snap, &error)) {
    throw std::runtime_error("save_snapshot: " + error);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("save_snapshot: rename to " + path + " failed");
  }
}

std::string snapshot_generation_path(const std::string& path, int gen) {
  return gen <= 0 ? path : path + "." + std::to_string(gen);
}

bool save_snapshot_rotating(const std::string& path, const Snapshot& snap,
                            int keep, std::string* error) {
  if (keep < 1) keep = 1;
  const std::string tmp = path + ".tmp";
  // Write the new data first: until it is safely on disk, the existing
  // generation chain is not touched, so a failure here (ENOSPC, read-only
  // filesystem) leaves every previous restore target intact.
  if (!write_snapshot_file(tmp, snap, error)) return false;
  // Rotate newest -> oldest; the rename onto `path.(keep-1)` atomically
  // replaces (= prunes) the oldest retained generation. A missing link in
  // the chain is fine — rename of a nonexistent source just fails and the
  // younger generations still shift up.
  for (int gen = keep - 1; gen >= 1; --gen) {
    std::rename(snapshot_generation_path(path, gen - 1).c_str(),
                snapshot_generation_path(path, gen).c_str());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "rename to " + path + " failed";
    return false;
  }
  // Prune generations beyond the retention window (e.g. after `keep` was
  // lowered between runs); only after the successful rename above, so a
  // failed save never costs us a usable snapshot.
  std::remove(snapshot_generation_path(path, keep).c_str());
  return true;
}

SnapshotLoadStatus load_snapshot_status(const std::string& path,
                                        Snapshot* out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return SnapshotLoadStatus::kMissing;
  // From here on the file exists: any failure to decode it is kCorrupt.
  std::vector<unsigned char> buf;
  unsigned char chunk[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), f.get());
    buf.insert(buf.end(), chunk, chunk + n);
    if (n < sizeof(chunk)) break;
  }
  if (std::ferror(f.get()) != 0) return SnapshotLoadStatus::kCorrupt;

  if (buf.size() < sizeof(std::uint32_t)) return SnapshotLoadStatus::kCorrupt;
  const std::size_t payload = buf.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + payload, sizeof(stored_crc));
  if (crc32({buf.data(), payload}) != stored_crc) {
    return SnapshotLoadStatus::kCorrupt;
  }

  std::size_t off = 0;
  std::uint32_t magic = 0, version = 0, n_fields = 0;
  Snapshot snap;
  if (!get({buf.data(), payload}, off, &magic) || magic != kMagic) {
    return SnapshotLoadStatus::kCorrupt;
  }
  if (!get({buf.data(), payload}, off, &version) || version != kVersion) {
    return SnapshotLoadStatus::kCorrupt;
  }
  if (!get({buf.data(), payload}, off, &snap.step)) {
    return SnapshotLoadStatus::kCorrupt;
  }
  if (!get({buf.data(), payload}, off, &n_fields)) {
    return SnapshotLoadStatus::kCorrupt;
  }
  for (std::uint32_t i = 0; i < n_fields; ++i) {
    std::uint32_t name_len = 0;
    if (!get({buf.data(), payload}, off, &name_len)) {
      return SnapshotLoadStatus::kCorrupt;
    }
    if (off + name_len > payload) return SnapshotLoadStatus::kCorrupt;
    std::string name(reinterpret_cast<const char*>(buf.data() + off),
                     name_len);
    off += name_len;
    std::uint64_t count = 0;
    if (!get({buf.data(), payload}, off, &count)) {
      return SnapshotLoadStatus::kCorrupt;
    }
    if (off + count * sizeof(double) > payload) {
      return SnapshotLoadStatus::kCorrupt;
    }
    std::vector<double> data(static_cast<std::size_t>(count));
    std::memcpy(data.data(), buf.data() + off, count * sizeof(double));
    off += static_cast<std::size_t>(count) * sizeof(double);
    snap.add(std::move(name), std::move(data));
  }
  *out = std::move(snap);
  return SnapshotLoadStatus::kOk;
}

bool load_snapshot(const std::string& path, Snapshot* out) {
  return load_snapshot_status(path, out) == SnapshotLoadStatus::kOk;
}

}  // namespace quake::util
