#include "quake/util/delta_codec.hpp"

#include <cstring>
#include <stdexcept>

namespace quake::util {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::span<const std::uint8_t> code, std::size_t& i) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (i >= code.size() || shift > 63) {
      throw std::runtime_error("delta_decode: truncated varint");
    }
    const std::uint8_t b = code[i++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::uint64_t word_bits(double d) {
  std::uint64_t w;
  std::memcpy(&w, &d, sizeof(w));
  return w;
}

}  // namespace

void delta_encode(std::span<const double> prev, std::span<const double> cur,
                  std::vector<std::uint8_t>& out) {
  if (prev.size() != cur.size()) {
    throw std::runtime_error("delta_encode: payload size mismatch");
  }
  out.clear();
  const std::size_t n = cur.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = word_bits(prev[i]) ^ word_bits(cur[i]);
    if (x == 0) {
      std::size_t run = 1;
      while (i + run < n &&
             (word_bits(prev[i + run]) ^ word_bits(cur[i + run])) == 0) {
        ++run;
      }
      out.push_back(0x00);
      put_varint(out, run);
      i += run - 1;
      continue;
    }
    std::uint8_t mask = 0;
    std::uint8_t bytes[8];
    int nb = 0;
    for (int b = 0; b < 8; ++b) {
      const auto byte = static_cast<std::uint8_t>(x >> (8 * b));
      if (byte != 0) {
        mask |= static_cast<std::uint8_t>(1u << b);
        bytes[nb++] = byte;
      }
    }
    out.push_back(mask);
    out.insert(out.end(), bytes, bytes + nb);
  }
}

void delta_decode_inplace(std::span<double> buf,
                          std::span<const std::uint8_t> code) {
  const std::size_t n = buf.size();
  std::size_t w = 0;  // next word to fill
  std::size_t i = 0;  // read cursor in code
  while (w < n) {
    if (i >= code.size()) {
      throw std::runtime_error("delta_decode: truncated code stream");
    }
    const std::uint8_t mask = code[i++];
    if (mask == 0x00) {
      const std::uint64_t run = get_varint(code, i);
      if (run == 0 || run > n - w) {
        throw std::runtime_error("delta_decode: bad zero run");
      }
      w += run;  // XOR with zero: words unchanged
      continue;
    }
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      if ((mask & (1u << b)) == 0) continue;
      if (i >= code.size()) {
        throw std::runtime_error("delta_decode: truncated word bytes");
      }
      x |= static_cast<std::uint64_t>(code[i++]) << (8 * b);
    }
    const std::uint64_t word = word_bits(buf[w]) ^ x;
    std::memcpy(&buf[w], &word, sizeof(word));
    ++w;
  }
  if (i != code.size()) {
    throw std::runtime_error("delta_decode: trailing bytes in code stream");
  }
}

void DeltaRing::push(int step, std::span<const double> payload) {
  if (payload.size() != n_) {
    throw std::runtime_error("DeltaRing::push: payload size mismatch");
  }
  if (cap_ <= 0) return;
  if (!codes_.empty() &&
      step != front_step_ + static_cast<int>(codes_.size())) {
    clear();
  }
  std::vector<std::uint8_t> code;
  delta_encode(last_pay_, payload, code);
  stored_ += code.size();
  codes_.push_back(std::move(code));
  last_pay_.assign(payload.begin(), payload.end());
  if (codes_.size() == 1) {
    front_step_ = step;
    front_pay_.assign(payload.begin(), payload.end());
  }
  if (codes_.size() > static_cast<std::size_t>(cap_)) {
    // Re-anchor: the second entry's delta, applied to the evicted front
    // payload, is the new front payload.
    delta_decode_inplace(front_pay_, codes_[1]);
    stored_ -= codes_.front().size();
    codes_.pop_front();
    ++front_step_;
  }
}

void DeltaRing::clear() {
  codes_.clear();
  stored_ = 0;
  front_step_ = 0;
  std::fill(front_pay_.begin(), front_pay_.end(), 0.0);
  std::fill(last_pay_.begin(), last_pay_.end(), 0.0);
}

}  // namespace quake::util
