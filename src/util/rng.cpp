#include "quake/util/rng.hpp"

#include <cmath>

namespace quake::util {

double Rng::sqrt_neg2_log(double s) noexcept {
  return std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace quake::util
