#include "quake/util/filter.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace quake::util {

Biquad butterworth_lowpass(double fc, double fs) {
  if (!(fc > 0.0) || !(fc < 0.5 * fs)) {
    throw std::invalid_argument("butterworth_lowpass: need 0 < fc < fs/2");
  }
  // Bilinear transform of H(s) = 1 / (s^2 + sqrt(2) s + 1), s pre-warped.
  const double k = std::tan(std::numbers::pi * fc / fs);
  const double q = std::numbers::sqrt2;
  const double norm = 1.0 / (1.0 + q * k + k * k);
  Biquad bq;
  bq.b0 = k * k * norm;
  bq.b1 = 2.0 * bq.b0;
  bq.b2 = bq.b0;
  bq.a1 = 2.0 * (k * k - 1.0) * norm;
  bq.a2 = (1.0 - q * k + k * k) * norm;
  return bq;
}

std::vector<double> filter(const Biquad& bq, std::span<const double> x) {
  std::vector<double> y(x.size());
  double x1 = 0.0, x2 = 0.0, y1 = 0.0, y2 = 0.0;
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double yn =
        bq.b0 * x[n] + bq.b1 * x1 + bq.b2 * x2 - bq.a1 * y1 - bq.a2 * y2;
    x2 = x1;
    x1 = x[n];
    y2 = y1;
    y1 = yn;
    y[n] = yn;
  }
  return y;
}

std::vector<double> lowpass_zero_phase(std::span<const double> x, double fc,
                                       double fs) {
  const Biquad bq = butterworth_lowpass(fc, fs);
  std::vector<double> fwd = filter(bq, x);
  std::reverse(fwd.begin(), fwd.end());
  std::vector<double> bwd = filter(bq, fwd);
  std::reverse(bwd.begin(), bwd.end());
  return bwd;
}

}  // namespace quake::util
