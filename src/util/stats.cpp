#include "quake/util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace quake::util {

double norm_l2(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

double norm_max(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double diff_l2(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("diff_l2: size mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double rel_l2(std::span<const double> x, std::span<const double> y) {
  const double den = norm_l2(y);
  const double num = diff_l2(x, y);
  return den > 0.0 ? num / den : num;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  const double nx = norm_l2(x);
  const double ny = norm_l2(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return dot(x, y) / (nx * ny);
}

}  // namespace quake::util
