#pragma once

// Trilinear hexahedral element kernels for linear elastodynamics (§2.1-2.2).
//
// The paper's central data-structure idea: every (cube) hexahedral element
// has the SAME stiffness matrix modulo element size and material properties,
//     K_e = h * (lambda_e * K_lambda + mu_e * K_mu),
// where K_lambda and K_mu are dimensionless 24x24 reference matrices
// computed once. No global (or even per-element) matrix is stored; the
// matrix-vector product is recast as local dense element operations.
//
// DOF ordering: interleaved, dof = 3*node + component; local nodes in tensor
// order (node i at offsets ((i&1), (i>>1)&1, (i>>2)&1)).

#include <array>
#include <cstdint>

namespace quake::fem {

inline constexpr int kHexNodes = 8;
inline constexpr int kHexDofs = 24;

// Upper bound on the scenario-batch width the batched kernels accept (their
// per-row accumulators live on the stack). Callers clamp batch sizes to it.
inline constexpr int kMaxBatchLanes = 16;

using HexMatrix = std::array<double, kHexDofs * kHexDofs>;       // row-major
using ScalarHexMatrix = std::array<double, kHexNodes * kHexNodes>;

// Reference matrices on the unit cube, 2x2x2 Gauss quadrature (exact for
// trilinear). Element matrices scale linearly with edge length h.
struct HexReference {
  HexMatrix k_lambda;  // from the lambda (div u)(div v) term
  HexMatrix k_mu;      // from the mu strain-strain term
  ScalarHexMatrix k_scalar;  // scalar Laplacian (grad u . grad v), for the
                             // SH / scalar-wave solvers

  // Singleton; computed once on first use.
  static const HexReference& get();
};

// y_e += scale_lambda * K_lambda * u_e + scale_mu * K_mu * u_e for one
// element, on interleaved 24-vectors. scale_* = h * lambda_e etc. When
// `y_damp` is non-null it additionally accumulates
// beta_e * (K_e u_e) into it (the element's Rayleigh stiffness damping),
// reusing the same products.
void hex_apply(const HexReference& ref, const double* u_e, double scale_lambda,
               double scale_mu, double* y_e, double beta_e, double* y_damp);

// Batched (scenario-major) variant: u_e / y_e (/ y_damp) carry `n_lanes`
// independent right-hand sides interleaved per dof — lane s of dof d lives
// at index d * n_lanes + s. Lane s undergoes exactly the floating-point
// operation sequence hex_apply would perform on it alone (the lane loop is
// innermost), so batched results are bitwise identical per lane; the layout
// makes the inner loop unit-stride across lanes, which is what lets the
// kernel vectorize across scenarios.
void hex_apply_batch(const HexReference& ref, const double* u_e, int n_lanes,
                     double scale_lambda, double scale_mu, double* y_e,
                     double beta_e, double* y_damp);

// Diagonal of K_e = h (lambda K_lambda + mu K_mu), 24 entries.
void hex_diagonal(const HexReference& ref, double scale_lambda,
                  double scale_mu, std::array<double, kHexDofs>& diag);

// Lumped (row-sum) mass per node of a cube element: rho * h^3 / 8.
[[nodiscard]] constexpr double hex_lumped_mass(double rho, double h) {
  return rho * h * h * h / 8.0;
}

// Scalar variant: y_e += mu_e * h * K_scalar u_e (8-vectors).
void hex_scalar_apply(const HexReference& ref, const double* u_e, double scale,
                      double* y_e);

// Flop counts for the accounting in the scaling bench (multiply-add = 2).
[[nodiscard]] constexpr std::uint64_t hex_apply_flops(bool with_damp) {
  // Two 24x24 matvecs fused into one loop: per entry 2 mults + 2 adds for
  // the k-products, plus scale/accumulate; damping adds one FMA per row.
  const std::uint64_t base = 24ull * 24ull * 4ull + 24ull * 4ull;
  return with_damp ? base + 24ull * 2ull : base;
}

}  // namespace quake::fem
