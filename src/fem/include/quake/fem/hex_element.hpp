#pragma once

// Trilinear hexahedral element kernels for linear elastodynamics (§2.1-2.2).
//
// The paper's central data-structure idea: every (cube) hexahedral element
// has the SAME stiffness matrix modulo element size and material properties,
//     K_e = h * (lambda_e * K_lambda + mu_e * K_mu),
// where K_lambda and K_mu are dimensionless 24x24 reference matrices
// computed once. No global (or even per-element) matrix is stored; the
// matrix-vector product is recast as local dense element operations.
//
// DOF ordering: interleaved, dof = 3*node + component; local nodes in tensor
// order (node i at offsets ((i&1), (i>>1)&1, (i>>2)&1)).

#include <array>
#include <cstdint>

namespace quake::fem {

inline constexpr int kHexNodes = 8;
inline constexpr int kHexDofs = 24;

// Upper bound on the scenario-batch width the batched kernels accept (their
// per-row accumulators live on the stack). Callers clamp batch sizes to it.
inline constexpr int kMaxBatchLanes = 16;

using HexMatrix = std::array<double, kHexDofs * kHexDofs>;       // row-major
using ScalarHexMatrix = std::array<double, kHexNodes * kHexNodes>;

// Reference matrices on the unit cube, 2x2x2 Gauss quadrature (exact for
// trilinear). Element matrices scale linearly with edge length h.
struct HexReference {
  HexMatrix k_lambda;  // from the lambda (div u)(div v) term
  HexMatrix k_mu;      // from the mu strain-strain term
  // Exact transposed copies of k_lambda / k_mu. The blocked hex_apply walks
  // a *column* of the matrix per input dof (so a row-block of output
  // accumulators sees contiguous loads); storing the transpose keeps those
  // loads unit-stride. Entries are bitwise copies of the row-major
  // originals, so the blocked kernel multiplies the identical values.
  HexMatrix k_lambda_t;
  HexMatrix k_mu_t;
  ScalarHexMatrix k_scalar;  // scalar Laplacian (grad u . grad v), for the
                             // SH / scalar-wave solvers

  // Singleton; computed once on first use.
  static const HexReference& get();
};

// y_e += scale_lambda * K_lambda * u_e + scale_mu * K_mu * u_e for one
// element, on interleaved 24-vectors. scale_* = h * lambda_e etc. When
// `y_damp` is non-null it additionally accumulates
// beta_e * (K_e u_e) into it (the element's Rayleigh stiffness damping),
// reusing the same products.
//
// Blocked for SIMD: a block of output rows accumulates side by side, each
// input dof broadcast against a contiguous run of the transposed reference
// matrices. Every accumulator still takes its adds in ascending input-dof
// order — the exact sequence of hex_apply_ref — so results are bitwise
// identical to the reference kernel (asserted in fem_test).
void hex_apply(const HexReference& ref, const double* u_e, double scale_lambda,
               double scale_mu, double* y_e, double beta_e, double* y_damp);

// Straight-line reference implementation (row-major dot products). Kept as
// the floating-point ground truth for the blocked kernel's equivalence
// tests and the bench_micro A/B; not used on the hot path.
void hex_apply_ref(const HexReference& ref, const double* u_e,
                   double scale_lambda, double scale_mu, double* y_e,
                   double beta_e, double* y_damp);

// Element-batch entry point: `n_elems` elements packed back to back
// (element e's 24-vector at u_e + e*24, likewise y_e / y_damp) with
// per-element scale factors. Each element undergoes exactly the hex_apply
// operation sequence — the batch exists so gather/scatter call sites can
// hand the kernel a contiguous run of elements (composing with the
// scenario-major lane layout, which batches *within* an element) and so the
// per-call dispatch cost is amortized over the block. `y_damp` may be
// nullptr when no caller lane wants the damping accumulator.
void hex_apply_elems(const HexReference& ref, const double* u_e, int n_elems,
                     const double* scale_lambda, const double* scale_mu,
                     double* y_e, const double* beta_e, double* y_damp);

// Batched (scenario-major) variant: u_e / y_e (/ y_damp) carry `n_lanes`
// independent right-hand sides interleaved per dof — lane s of dof d lives
// at index d * n_lanes + s. Lane s undergoes exactly the floating-point
// operation sequence hex_apply would perform on it alone (the lane loop is
// innermost), so batched results are bitwise identical per lane; the layout
// makes the inner loop unit-stride across lanes, which is what lets the
// kernel vectorize across scenarios. The lane bound stays a runtime value
// on purpose: fixed-trip-count clones fully unroll the lane loop, need
// 2 * n_lanes live accumulators, and spill — measurably slower than the
// runtime loop (see the bench_micro batch A/B).
//
// Throws std::invalid_argument unless 1 <= n_lanes <= kMaxBatchLanes: the
// per-row accumulators live on the stack, and an unchecked oversized width
// would silently overflow them in release builds.
void hex_apply_batch(const HexReference& ref, const double* u_e, int n_lanes,
                     double scale_lambda, double scale_mu, double* y_e,
                     double beta_e, double* y_damp);

// Reference implementation of hex_apply_batch: deinterleaves each lane,
// applies the straight-line solo reference (hex_apply_ref), reinterleaves.
// Ground truth by definition — lane s literally undergoes the solo
// operation sequence — and the per-lane baseline the bench_micro batch A/B
// measures the interleaved layout against. Same bounds check.
void hex_apply_batch_ref(const HexReference& ref, const double* u_e,
                         int n_lanes, double scale_lambda, double scale_mu,
                         double* y_e, double beta_e, double* y_damp);

// Diagonal of K_e = h (lambda K_lambda + mu K_mu), 24 entries.
void hex_diagonal(const HexReference& ref, double scale_lambda,
                  double scale_mu, std::array<double, kHexDofs>& diag);

// Lumped (row-sum) mass per node of a cube element: rho * h^3 / 8.
[[nodiscard]] constexpr double hex_lumped_mass(double rho, double h) {
  return rho * h * h * h / 8.0;
}

// Scalar variant: y_e += mu_e * h * K_scalar u_e (8-vectors).
void hex_scalar_apply(const HexReference& ref, const double* u_e, double scale,
                      double* y_e);

// Flop counts for the accounting in the scaling bench (multiply-add = 2).
[[nodiscard]] constexpr std::uint64_t hex_apply_flops(bool with_damp) {
  // Two 24x24 matvecs fused into one loop: per entry 2 mults + 2 adds for
  // the k-products, plus scale/accumulate; damping adds one FMA per row.
  const std::uint64_t base = 24ull * 24ull * 4ull + 24ull * 4ull;
  return with_damp ? base + 24ull * 2ull : base;
}

}  // namespace quake::fem
