#pragma once

// Absorbing boundary condition kernels (§2.1). Stacey's formulation on a
// face with outward normal n and tangentials tau1, tau2:
//
//   (S n)_n    = -d1 du_n/dt + c1 (du_tau1/dtau1 + du_tau2/dtau2)
//   (S n)_tau1 = -c1 du_n/dtau1 - d2 du_tau1/dt
//   (S n)_tau2 = -c1 du_n/dtau2 - d2 du_tau2/dt
//
//   c1 = -2 mu + sqrt(mu (lambda + 2 mu)),
//   d1 = sqrt(rho (lambda + 2 mu)) = rho vp,   d2 = sqrt(rho mu) = rho vs.
//
// The time-derivative terms yield the boundary damping matrix C^AB (lumped
// to a diagonal, as the paper permits) and the tangential-derivative terms
// yield the boundary stiffness K^AB, applied matrix-free per face. Dropping
// the c1 terms recovers the classical Lysmer-Kuhlemeyer dashpot boundary,
// available as a fallback.

#include <array>
#include <cstdint>

#include "quake/mesh/hex_mesh.hpp"
#include "quake/vel/material.hpp"

namespace quake::fem {

enum class AbcType {
  kStacey,  // dashpots + c1 tangential coupling (the paper's choice)
  kLysmer,  // dashpots only
  kNone,    // all boundaries traction-free (verification/energy tests)
};

// Face reference matrices on the unit square: D[t][i][j] = integral over the
// face of N_i * dN_j/dxi_t, where t indexes the two in-face axes. Element
// face matrices scale linearly with face edge length h.
struct FaceReference {
  std::array<std::array<double, 16>, 2> d;  // row-major 4x4 per tangential axis
  static const FaceReference& get();
};

// Per-node lumped dashpot coefficients for one face of edge h: the value to
// add to the diagonal C^AB at each of the 4 face nodes, per component.
// coeff[c] applies to displacement component c (c in 0..2 global axes):
// the normal component gets rho*vp*h^2/4, tangentials rho*vs*h^2/4.
std::array<double, 3> face_dashpot_coeffs(const vel::Material& m, double h,
                                          mesh::BoundarySide side);

// Applies the Stacey K^AB term of one face: y += K^AB_face * u, where u and
// y are the full interleaved nodal vectors of the owning element's 4 face
// nodes, passed as 12-vectors in face-node order (matching
// mesh-level kFaces ordering for `side`). `h` is the face edge length.
void face_stacey_apply(const vel::Material& m, double h,
                       mesh::BoundarySide side, const double* u_face,
                       double* y_face);

// Exact flop count of one face_stacey_apply call, for the Mflop/s
// accounting in the solver step loops and ElasticOperator::flops_per_apply
// (replaces an old ~200 placeholder that skewed measured_mflops). Counted
// off the kernel, sqrt = 1 flop:
//   c1   = -2 mu + sqrt(mu (lambda + 2 mu))          ->  6
//   s    = sign * c1 * h                             ->  2
//   per face node i (x4):
//     j loop (x4): acc_n += dxi*u + det*u  (4)
//                  acc_p += dxi*u          (2)
//                  acc_q += det*u          (2)       -> 32
//     three scatter accumulates (+-s * acc)          ->  6
//   total: 8 + 4 * 38 = 160
[[nodiscard]] constexpr std::uint64_t face_stacey_flops() { return 160; }

// Axes bookkeeping for a boundary side: normal axis, outward sign, and the
// two tangential axes (in the order used by the face-node orderings).
struct FaceAxes {
  int normal;          // 0, 1, 2
  double sign;         // +1 for max faces, -1 for min faces
  std::array<int, 2> tangential;
};
FaceAxes face_axes(mesh::BoundarySide side);

}  // namespace quake::fem
