#pragma once

// Rayleigh damping calibration (§2.2): attenuation is modeled at the
// discrete level by alpha*M + beta*K per element, with (alpha, beta) chosen
// elementwise so the frequency-dependent damping ratio
//     xi(omega) = alpha / (2 omega) + beta * omega / 2
// is as close as possible (least squares) to a constant target dictated by
// the local soil type, over the band of resolved frequencies.

namespace quake::fem {

struct RayleighCoeffs {
  double alpha = 0.0;  // mass-proportional [1/s]
  double beta = 0.0;   // stiffness-proportional [s]
};

// Least-squares fit of (alpha, beta) to a constant damping ratio
// `xi_target` over [f_min, f_max] Hz, sampled at log-spaced frequencies.
// Requires 0 < f_min < f_max and xi_target >= 0.
RayleighCoeffs fit_rayleigh(double xi_target, double f_min, double f_max);

// Soil-type rule of thumb used by the basin simulations: Q ~ 0.1 * vs [m/s]
// (softer soils dissipate more), xi = 1 / (2 Q), clamped to [0.1%, 5%].
double target_damping_ratio(double vs);

// xi(f) for given coefficients; exposed for tests and the damping report.
double damping_ratio_at(const RayleighCoeffs& c, double f_hz);

}  // namespace quake::fem
