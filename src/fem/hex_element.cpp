#include "quake/fem/hex_element.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace quake::fem {
namespace {

// Trilinear shape function derivatives on the unit cube at (x, y, z).
// Node i at corner ((i&1), (i>>1)&1, (i>>2)&1).
struct ShapeGrad {
  std::array<std::array<double, 3>, 8> d;  // d[node][axis]
};

ShapeGrad shape_gradients(double x, double y, double z) {
  ShapeGrad g;
  for (int i = 0; i < 8; ++i) {
    const double sx = (i & 1) ? 1.0 : -1.0;
    const double sy = (i & 2) ? 1.0 : -1.0;
    const double sz = (i & 4) ? 1.0 : -1.0;
    const double fx = (i & 1) ? x : 1.0 - x;
    const double fy = (i & 2) ? y : 1.0 - y;
    const double fz = (i & 4) ? z : 1.0 - z;
    g.d[static_cast<std::size_t>(i)] = {sx * fy * fz, fx * sy * fz,
                                        fx * fy * sz};
  }
  return g;
}

HexReference compute_reference() {
  HexReference ref;
  ref.k_lambda.fill(0.0);
  ref.k_mu.fill(0.0);
  ref.k_lambda_t.fill(0.0);
  ref.k_mu_t.fill(0.0);
  ref.k_scalar.fill(0.0);

  // 2x2 Gauss points on [0,1].
  const double gp[2] = {0.5 - 0.5 / std::sqrt(3.0), 0.5 + 0.5 / std::sqrt(3.0)};
  const double w = 0.125;  // (1/2)^3 per point

  for (double x : gp) {
    for (double y : gp) {
      for (double z : gp) {
        const ShapeGrad g = shape_gradients(x, y, z);
        for (int i = 0; i < 8; ++i) {
          const auto& gi = g.d[static_cast<std::size_t>(i)];
          for (int j = 0; j < 8; ++j) {
            const auto& gj = g.d[static_cast<std::size_t>(j)];
            const double dot3 =
                gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2];
            ref.k_scalar[static_cast<std::size_t>(i * 8 + j)] += w * dot3;
            for (int a = 0; a < 3; ++a) {
              for (int b = 0; b < 3; ++b) {
                const std::size_t row = static_cast<std::size_t>(3 * i + a);
                const std::size_t col = static_cast<std::size_t>(3 * j + b);
                // lambda (div u)(div v): dNi/da * dNj/db.
                ref.k_lambda[row * kHexDofs + col] += w * gi[a] * gj[b];
                // mu term: grad u : grad v  +  grad u : (grad v)^T
                //   = delta_ab (grad Ni . grad Nj) + dNi/db * dNj/da.
                double v = gi[b] * gj[a];
                if (a == b) v += dot3;
                ref.k_mu[row * kHexDofs + col] += w * v;
              }
            }
          }
        }
      }
    }
  }
  for (int r = 0; r < kHexDofs; ++r) {
    for (int c = 0; c < kHexDofs; ++c) {
      const std::size_t rc = static_cast<std::size_t>(r) * kHexDofs +
                             static_cast<std::size_t>(c);
      const std::size_t cr = static_cast<std::size_t>(c) * kHexDofs +
                             static_cast<std::size_t>(r);
      ref.k_lambda_t[cr] = ref.k_lambda[rc];
      ref.k_mu_t[cr] = ref.k_mu[rc];
    }
  }
  return ref;
}

void throw_bad_lane_count(int n_lanes) {
  throw std::invalid_argument(
      "hex_apply_batch: n_lanes must be in [1, " +
      std::to_string(kMaxBatchLanes) + "], got " + std::to_string(n_lanes));
}

}  // namespace

const HexReference& HexReference::get() {
  static const HexReference ref = compute_reference();
  return ref;
}

void hex_apply(const HexReference& ref, const double* u_e, double scale_lambda,
               double scale_mu, double* y_e, double beta_e, double* y_damp) {
  // Row-blocked form of the fused dual matvec. A block of kRowBlock output
  // rows accumulates side by side; input dof c contributes to all of them
  // with one broadcast of u_e[c] against contiguous runs of the transposed
  // matrices (k_*_t[c * 24 + r0 ...]). Those entries are bitwise copies of
  // k_*[r * 24 + c], and each accumulator still sums in ascending c — the
  // exact operation sequence of hex_apply_ref per row — so the blocked
  // kernel is bitwise identical to the reference while the compiler gets
  // independent unit-stride accumulators to vectorize.
  constexpr int kRowBlock = 8;
  static_assert(kHexDofs % kRowBlock == 0);
  for (int r0 = 0; r0 < kHexDofs; r0 += kRowBlock) {
    double sl[kRowBlock] = {0.0}, sm[kRowBlock] = {0.0};
    for (int c = 0; c < kHexDofs; ++c) {
      const double uc = u_e[c];
      const double* klc = &ref.k_lambda_t[static_cast<std::size_t>(c) *
                                              kHexDofs +
                                          static_cast<std::size_t>(r0)];
      const double* kmc =
          &ref.k_mu_t[static_cast<std::size_t>(c) * kHexDofs +
                      static_cast<std::size_t>(r0)];
      for (int i = 0; i < kRowBlock; ++i) {
        sl[i] += klc[i] * uc;
        sm[i] += kmc[i] * uc;
      }
    }
    for (int i = 0; i < kRowBlock; ++i) {
      const double v = scale_lambda * sl[i] + scale_mu * sm[i];
      y_e[r0 + i] += v;
      if (y_damp != nullptr) y_damp[r0 + i] += beta_e * v;
    }
  }
}

void hex_apply_ref(const HexReference& ref, const double* u_e,
                   double scale_lambda, double scale_mu, double* y_e,
                   double beta_e, double* y_damp) {
  for (int r = 0; r < kHexDofs; ++r) {
    const double* kl = &ref.k_lambda[static_cast<std::size_t>(r) * kHexDofs];
    const double* km = &ref.k_mu[static_cast<std::size_t>(r) * kHexDofs];
    double sl = 0.0, sm = 0.0;
    for (int c = 0; c < kHexDofs; ++c) {
      sl += kl[c] * u_e[c];
      sm += km[c] * u_e[c];
    }
    const double v = scale_lambda * sl + scale_mu * sm;
    y_e[r] += v;
    if (y_damp != nullptr) y_damp[r] += beta_e * v;
  }
}

void hex_apply_elems(const HexReference& ref, const double* u_e, int n_elems,
                     const double* scale_lambda, const double* scale_mu,
                     double* y_e, const double* beta_e, double* y_damp) {
  for (int e = 0; e < n_elems; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * kHexDofs;
    hex_apply(ref, u_e + off, scale_lambda[e], scale_mu[e], y_e + off,
              beta_e != nullptr ? beta_e[e] : 0.0,
              y_damp != nullptr ? y_damp + off : nullptr);
  }
}

void hex_apply_batch(const HexReference& ref, const double* u_e, int n_lanes,
                     double scale_lambda, double scale_mu, double* y_e,
                     double beta_e, double* y_damp) {
  // Lane s must see the exact operation sequence of hex_apply_ref on its
  // own data: the column loop stays outermost and the lane loop runs
  // innermost, so each lane's accumulators take the same adds in the same
  // order while the inner loop is unit-stride across lanes. The lane loop
  // keeps its runtime bound on purpose: fixed-width clones get fully
  // unrolled, need 2*n_lanes live accumulators, and spill — the runtime
  // vector loop measures at a multiple of their throughput (bench_micro
  // BM_HexApplyBatch* rows). A real bounds check (not an assert): the
  // per-row accumulators are stack arrays of kMaxBatchLanes, and release
  // callers must not be able to overflow them.
  if (n_lanes < 1 || n_lanes > kMaxBatchLanes) throw_bad_lane_count(n_lanes);
  double sl[kMaxBatchLanes], sm[kMaxBatchLanes];
  for (int r = 0; r < kHexDofs; ++r) {
    const double* kl = &ref.k_lambda[static_cast<std::size_t>(r) * kHexDofs];
    const double* km = &ref.k_mu[static_cast<std::size_t>(r) * kHexDofs];
    for (int s = 0; s < n_lanes; ++s) sl[s] = sm[s] = 0.0;
    for (int c = 0; c < kHexDofs; ++c) {
      const double* uc = u_e + static_cast<std::size_t>(c) * n_lanes;
      const double klc = kl[c];
      const double kmc = km[c];
      for (int s = 0; s < n_lanes; ++s) {
        sl[s] += klc * uc[s];
        sm[s] += kmc * uc[s];
      }
    }
    double* yr = y_e + static_cast<std::size_t>(r) * n_lanes;
    double* dr =
        y_damp != nullptr ? y_damp + static_cast<std::size_t>(r) * n_lanes
                          : nullptr;
    for (int s = 0; s < n_lanes; ++s) {
      const double v = scale_lambda * sl[s] + scale_mu * sm[s];
      yr[s] += v;
      if (dr != nullptr) dr[s] += beta_e * v;
    }
  }
}

void hex_apply_batch_ref(const HexReference& ref, const double* u_e,
                         int n_lanes, double scale_lambda, double scale_mu,
                         double* y_e, double beta_e, double* y_damp) {
  // Ground truth by definition: deinterleave each lane, run the solo
  // reference kernel on it, reinterleave. This is what a caller without a
  // batched kernel would do, so the bench_micro batch A/B measures exactly
  // what the scenario-major interleaved layout buys.
  if (n_lanes < 1 || n_lanes > kMaxBatchLanes) throw_bad_lane_count(n_lanes);
  double us[kHexDofs], ys[kHexDofs], ds[kHexDofs];
  for (int s = 0; s < n_lanes; ++s) {
    for (int d = 0; d < kHexDofs; ++d) {
      const std::size_t idx = static_cast<std::size_t>(d) * n_lanes +
                              static_cast<std::size_t>(s);
      us[d] = u_e[idx];
      ys[d] = y_e[idx];
      if (y_damp != nullptr) ds[d] = y_damp[idx];
    }
    hex_apply_ref(ref, us, scale_lambda, scale_mu, ys, beta_e,
                  y_damp != nullptr ? ds : nullptr);
    for (int d = 0; d < kHexDofs; ++d) {
      const std::size_t idx = static_cast<std::size_t>(d) * n_lanes +
                              static_cast<std::size_t>(s);
      y_e[idx] = ys[d];
      if (y_damp != nullptr) y_damp[idx] = ds[d];
    }
  }
}

void hex_diagonal(const HexReference& ref, double scale_lambda,
                  double scale_mu, std::array<double, kHexDofs>& diag) {
  for (int r = 0; r < kHexDofs; ++r) {
    const std::size_t rr = static_cast<std::size_t>(r) * kHexDofs +
                           static_cast<std::size_t>(r);
    diag[static_cast<std::size_t>(r)] =
        scale_lambda * ref.k_lambda[rr] + scale_mu * ref.k_mu[rr];
  }
}

void hex_scalar_apply(const HexReference& ref, const double* u_e, double scale,
                      double* y_e) {
  for (int r = 0; r < kHexNodes; ++r) {
    const double* k = &ref.k_scalar[static_cast<std::size_t>(r) * kHexNodes];
    double s = 0.0;
    for (int c = 0; c < kHexNodes; ++c) s += k[c] * u_e[c];
    y_e[r] += scale * s;
  }
}

}  // namespace quake::fem
