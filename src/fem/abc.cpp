#include "quake/fem/abc.hpp"

#include <cmath>

namespace quake::fem {
namespace {

FaceReference compute_face_reference() {
  FaceReference ref;
  ref.d[0].fill(0.0);
  ref.d[1].fill(0.0);
  const double gp[2] = {0.5 - 0.5 / std::sqrt(3.0), 0.5 + 0.5 / std::sqrt(3.0)};
  const double w = 0.25;
  for (double x : gp) {
    for (double y : gp) {
      // Bilinear face shape functions; node f at ((f&1), (f>>1)&1).
      double n[4], dx[4], dy[4];
      for (int f = 0; f < 4; ++f) {
        const double fx = (f & 1) ? x : 1.0 - x;
        const double fy = (f & 2) ? y : 1.0 - y;
        const double sx = (f & 1) ? 1.0 : -1.0;
        const double sy = (f & 2) ? 1.0 : -1.0;
        n[f] = fx * fy;
        dx[f] = sx * fy;
        dy[f] = fx * sy;
      }
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          ref.d[0][static_cast<std::size_t>(i * 4 + j)] += w * n[i] * dx[j];
          ref.d[1][static_cast<std::size_t>(i * 4 + j)] += w * n[i] * dy[j];
        }
      }
    }
  }
  return ref;
}

double stacey_c1(const vel::Material& m) {
  return -2.0 * m.mu + std::sqrt(m.mu * (m.lambda + 2.0 * m.mu));
}

}  // namespace

const FaceReference& FaceReference::get() {
  static const FaceReference ref = compute_face_reference();
  return ref;
}

FaceAxes face_axes(mesh::BoundarySide side) {
  switch (side) {
    case mesh::BoundarySide::kXMin:
      return {0, -1.0, {1, 2}};
    case mesh::BoundarySide::kXMax:
      return {0, +1.0, {1, 2}};
    case mesh::BoundarySide::kYMin:
      return {1, -1.0, {0, 2}};
    case mesh::BoundarySide::kYMax:
      return {1, +1.0, {0, 2}};
    case mesh::BoundarySide::kZMin:
      return {2, -1.0, {0, 1}};
    case mesh::BoundarySide::kZMax:
      return {2, +1.0, {0, 1}};
  }
  return {0, 1.0, {1, 2}};
}

std::array<double, 3> face_dashpot_coeffs(const vel::Material& m, double h,
                                          mesh::BoundarySide side) {
  const FaceAxes ax = face_axes(side);
  const double area_per_node = h * h / 4.0;
  const double d1 = m.rho * m.vp();  // normal component impedance
  const double d2 = m.rho * m.vs();  // tangential component impedance
  std::array<double, 3> c = {d2 * area_per_node, d2 * area_per_node,
                             d2 * area_per_node};
  c[static_cast<std::size_t>(ax.normal)] = d1 * area_per_node;
  return c;
}

void face_stacey_apply(const vel::Material& m, double h,
                       mesh::BoundarySide side, const double* u_face,
                       double* y_face) {
  const FaceAxes ax = face_axes(side);
  const FaceReference& ref = FaceReference::get();
  const double c1 = stacey_c1(m);
  const double s = ax.sign * c1 * h;
  const int k = ax.normal;
  const int p = ax.tangential[0];
  const int q = ax.tangential[1];
  for (int i = 0; i < 4; ++i) {
    double acc_n = 0.0;   // accumulates into component k of node i
    double acc_p = 0.0;   // into component p
    double acc_q = 0.0;   // into component q
    for (int j = 0; j < 4; ++j) {
      const double dxi = ref.d[0][static_cast<std::size_t>(i * 4 + j)];
      const double det = ref.d[1][static_cast<std::size_t>(i * 4 + j)];
      acc_n += dxi * u_face[3 * j + p] + det * u_face[3 * j + q];
      acc_p += dxi * u_face[3 * j + k];
      acc_q += det * u_face[3 * j + k];
    }
    y_face[3 * i + k] += -s * acc_n;
    y_face[3 * i + p] += s * acc_p;
    y_face[3 * i + q] += s * acc_q;
  }
}

}  // namespace quake::fem
