#include "quake/fem/rayleigh.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace quake::fem {

RayleighCoeffs fit_rayleigh(double xi_target, double f_min, double f_max) {
  if (!(f_min > 0.0) || !(f_max > f_min) || xi_target < 0.0) {
    throw std::invalid_argument("fit_rayleigh: bad band or target");
  }
  // Minimize sum_k (alpha * a_k + beta * b_k - xi)^2 with a_k = 1/(2 w_k),
  // b_k = w_k / 2, over log-spaced sample frequencies. Normal equations.
  constexpr int kSamples = 16;
  double aa = 0.0, ab = 0.0, bb = 0.0, ax = 0.0, bx = 0.0;
  const double lr = std::log(f_max / f_min);
  for (int k = 0; k < kSamples; ++k) {
    const double f = f_min * std::exp(lr * k / (kSamples - 1));
    const double w = 2.0 * std::numbers::pi * f;
    const double a = 1.0 / (2.0 * w);
    const double b = w / 2.0;
    aa += a * a;
    ab += a * b;
    bb += b * b;
    ax += a * xi_target;
    bx += b * xi_target;
  }
  const double det = aa * bb - ab * ab;
  RayleighCoeffs c;
  c.alpha = (bb * ax - ab * bx) / det;
  c.beta = (aa * bx - ab * ax) / det;
  // Negative coefficients would inject energy; clamp (can occur only for
  // degenerate bands).
  c.alpha = std::max(c.alpha, 0.0);
  c.beta = std::max(c.beta, 0.0);
  return c;
}

double target_damping_ratio(double vs) {
  const double q = std::max(0.1 * vs, 10.0);
  return std::clamp(1.0 / (2.0 * q), 0.001, 0.05);
}

double damping_ratio_at(const RayleighCoeffs& c, double f_hz) {
  const double w = 2.0 * std::numbers::pi * f_hz;
  return c.alpha / (2.0 * w) + c.beta * w / 2.0;
}

}  // namespace quake::fem
