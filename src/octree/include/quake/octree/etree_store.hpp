#pragma once

// The etree database (§2.3): a disk-backed B+-tree keyed by linear-octree
// keys (Morton code of the octant anchor, with the level appended), holding
// fixed-size payloads per octant. This is what makes mesh generation
// out-of-core: the tree lives in a file and is accessed through a small LRU
// buffer pool, so the largest mesh is limited by disk, not memory.
//
// Simplifications vs a production storage engine, documented here:
//   * deletion is lazy (no page merging) — etree workloads are
//     insert/scan-heavy and octants removed during construction are
//     re-split immediately;
//   * no concurrency control — the mesher is a single writer.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "quake/octree/octant.hpp"

namespace quake::octree {

class EtreeStore {
 public:
  struct Stats {
    std::uint64_t page_reads = 0;   // pages fetched from disk
    std::uint64_t page_writes = 0;  // pages flushed to disk
    std::uint64_t cache_hits = 0;   // fetches served from the buffer pool
    // Every page (v2 format) carries a trailing CRC32 of its contents,
    // verified on read; a mismatch or a short (truncated) read raises a
    // descriptive error instead of handing the mesher garbage.
    std::uint64_t pages_verified = 0;        // checksum-verified page reads
    std::uint64_t page_verify_failures = 0;  // checksum mismatches seen
  };

  // Opens (or creates, when `create` is true) the store at `path`.
  // `value_size` is the fixed payload size in bytes (must match an existing
  // file); `pool_pages` is the buffer-pool capacity.
  EtreeStore(std::string path, std::uint32_t value_size,
             std::size_t pool_pages, bool create);
  ~EtreeStore();

  EtreeStore(const EtreeStore&) = delete;
  EtreeStore& operator=(const EtreeStore&) = delete;

  // Inserts or overwrites the payload for `o`. `value.size()` must equal
  // value_size().
  void put(const Octant& o, std::span<const std::byte> value);

  // Copies the payload for `o` into `value_out` (same size requirement).
  // Returns false when absent.
  bool get(const Octant& o, std::span<std::byte> value_out) const;

  // Removes `o`; returns false when absent.
  bool erase(const Octant& o);

  // Number of live records.
  [[nodiscard]] std::uint64_t count() const;

  // In-order (space-filling-curve order) scan over all records.
  void scan(const std::function<void(const Octant&, std::span<const std::byte>)>&
                fn) const;

  // Flushes all dirty pages to disk.
  void flush();

  [[nodiscard]] std::uint32_t value_size() const;
  [[nodiscard]] Stats stats() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace quake::octree
