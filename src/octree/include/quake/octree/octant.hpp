#pragma once

// Octant keys and the algebra on them: parent/child, neighbors, containment.
// An octant is identified by its anchor (lower corner, in ticks) and its
// level; the linear-octree key is (Morton(anchor), level), matching the
// paper's "Morton code of the left-lower corner with the level appended".

#include <array>
#include <cstdint>
#include <optional>

#include "quake/octree/morton.hpp"

namespace quake::octree {

struct Octant {
  std::uint32_t x = 0, y = 0, z = 0;  // anchor in ticks
  std::uint8_t level = 0;             // 0 = root (whole domain)

  // Edge length in ticks.
  [[nodiscard]] constexpr std::uint32_t size() const noexcept {
    return 1u << (kMaxLevel - level);
  }

  [[nodiscard]] constexpr std::uint64_t morton() const noexcept {
    return morton_encode(x, y, z);
  }

  // Composite B-tree key: Morton code in the high bits, level in the low 8.
  // Preserves Morton order as primary sort, ancestors before descendants
  // that share an anchor.
  [[nodiscard]] constexpr std::uint64_t anchor_key() const noexcept {
    return morton();
  }

  [[nodiscard]] constexpr Octant parent() const noexcept {
    const std::uint32_t mask = ~((size() << 1) - 1u);
    return Octant{x & mask, y & mask, z & mask,
                  static_cast<std::uint8_t>(level - 1)};
  }

  // Child c in Morton order: bit 0 of c selects +x, bit 1 +y, bit 2 +z.
  [[nodiscard]] constexpr Octant child(int c) const noexcept {
    const std::uint32_t h = size() >> 1;
    return Octant{x + ((c & 1) ? h : 0u), y + ((c & 2) ? h : 0u),
                  z + ((c & 4) ? h : 0u),
                  static_cast<std::uint8_t>(level + 1)};
  }

  // True if `o` lies inside (or equals) this octant.
  [[nodiscard]] constexpr bool contains(const Octant& o) const noexcept {
    if (o.level < level) return false;
    const std::uint32_t s = size();
    return o.x >= x && o.x < x + s && o.y >= y && o.y < y + s && o.z >= z &&
           o.z < z + s;
  }

  // Same-size neighbor displaced by (dx, dy, dz) octant-widths; nullopt if
  // it would leave the root domain. |d*| <= 1 in practice.
  [[nodiscard]] std::optional<Octant> neighbor(int dx, int dy,
                                               int dz) const noexcept {
    const std::int64_t s = size();
    const std::int64_t nx = static_cast<std::int64_t>(x) + dx * s;
    const std::int64_t ny = static_cast<std::int64_t>(y) + dy * s;
    const std::int64_t nz = static_cast<std::int64_t>(z) + dz * s;
    const std::int64_t lim = kTicks;
    if (nx < 0 || ny < 0 || nz < 0 || nx >= lim || ny >= lim || nz >= lim) {
      return std::nullopt;
    }
    return Octant{static_cast<std::uint32_t>(nx),
                  static_cast<std::uint32_t>(ny),
                  static_cast<std::uint32_t>(nz), level};
  }

  // Ancestor at the given (coarser or equal) level.
  [[nodiscard]] constexpr Octant ancestor_at(std::uint8_t lvl) const noexcept {
    const std::uint32_t mask = ~((1u << (kMaxLevel - lvl)) - 1u);
    return Octant{x & mask, y & mask, z & mask, lvl};
  }

  friend constexpr bool operator==(const Octant&, const Octant&) = default;
};

// Linear-octree (space-filling-curve) order: by anchor Morton code, with
// ancestors preceding descendants at the same anchor.
struct OctantLess {
  constexpr bool operator()(const Octant& a, const Octant& b) const noexcept {
    const std::uint64_t ma = a.morton();
    const std::uint64_t mb = b.morton();
    if (ma != mb) return ma < mb;
    return a.level < b.level;
  }
};

// The 26 same-size neighbor direction triples (faces, edges, corners).
inline constexpr std::array<std::array<int, 3>, 26> kNeighborDirs = [] {
  std::array<std::array<int, 3>, 26> dirs{};
  int k = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        dirs[static_cast<std::size_t>(k++)] = {dx, dy, dz};
      }
    }
  }
  return dirs;
}();

// The 6 face directions.
inline constexpr std::array<std::array<int, 3>, 6> kFaceDirs = {{
    {{-1, 0, 0}}, {{1, 0, 0}}, {{0, -1, 0}}, {{0, 1, 0}}, {{0, 0, -1}}, {{0, 0, 1}},
}};

}  // namespace quake::octree
