#pragma once

// In-memory linear octree: the sorted, pairwise-disjoint set of leaf octants
// that covers the domain. This is the in-core working representation; the
// out-of-core representation is the EtreeStore (B-tree on disk), and the two
// round-trip losslessly.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "quake/octree/octant.hpp"

namespace quake::octree {

class LinearOctree {
 public:
  LinearOctree() = default;

  // Takes ownership of `leaves`; sorts them into space-filling-curve order.
  // Pre: leaves are pairwise disjoint (checked in debug via validate()).
  explicit LinearOctree(std::vector<Octant> leaves);

  [[nodiscard]] std::span<const Octant> leaves() const noexcept {
    return leaves_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return leaves_.size(); }
  [[nodiscard]] const Octant& operator[](std::size_t i) const noexcept {
    return leaves_[i];
  }

  // Index of the leaf containing tick point (x, y, z), or nullopt when the
  // point is not covered (possible for partial-domain trees).
  [[nodiscard]] std::optional<std::size_t> find_containing(
      std::uint32_t x, std::uint32_t y, std::uint32_t z) const;

  // Index of the leaf equal to `o`, or nullopt.
  [[nodiscard]] std::optional<std::size_t> find(const Octant& o) const;

  // True iff leaves are sorted, disjoint, and (when `require_cover` is set)
  // cover the whole root domain exactly.
  [[nodiscard]] bool validate(bool require_cover) const;

  // Coarsest and finest leaf levels present; {0, 0} for an empty tree.
  [[nodiscard]] std::pair<int, int> level_range() const;

  // Histogram of leaf counts by level, indexed 0..kMaxLevel.
  [[nodiscard]] std::vector<std::size_t> level_histogram() const;

 private:
  std::vector<Octant> leaves_;
};

// -- Construction (the etree "construct" step) -------------------------------
//
// Auto-navigation: the traversal logic lives here, the application supplies
// only a refinement predicate. The tree is expanded in preorder from the
// root; the resulting leaf sequence is already in space-filling-curve order.

using RefinePolicy = std::function<bool(const Octant&)>;

// Builds leaves by refining from the root wherever `policy` returns true,
// stopping at `max_level`.
LinearOctree build_octree(const RefinePolicy& policy, int max_level);

// -- Balancing (the etree "balance" step) ------------------------------------

// Which neighbor relations the 2-to-1 constraint is enforced across.
enum class BalanceScope { kFaces, kFacesEdges, kAll };

// True iff no two neighboring leaves (per `scope`) differ by more than one
// level.
bool is_balanced(const LinearOctree& tree, BalanceScope scope);

// Work-queue balancing: only octants whose neighborhoods changed are
// re-examined. This is the production algorithm.
LinearOctree balance(const LinearOctree& tree, BalanceScope scope);

// Baseline: repeated full sweeps over all leaves until a fixed point; the
// "naive global balancing" the paper's local balancing is compared against.
LinearOctree balance_global_sweeps(const LinearOctree& tree,
                                   BalanceScope scope);

// The paper's local balancing: partition the domain into 8^block_level
// equal blocks, balance each block internally, then resolve inter-block
// boundaries (§2.3: "internal balancing" + "boundary balancing").
LinearOctree balance_local(const LinearOctree& tree, BalanceScope scope,
                           int block_level);

}  // namespace quake::octree
