#pragma once

// 3D Morton (Z-order) codes. The etree method (§2.3 of the paper) linearizes
// an octree by assigning each octant a key formed from the Morton code of its
// lower-left corner plus its level; the Morton code is computed by
// interleaving the bits of the integer coordinates.
//
// Coordinates are expressed in "ticks": the domain is a cube divided into
// 2^kMaxLevel ticks per dimension, and every octant anchor lies on a tick.

#include <cstdint>

namespace quake::octree {

// Maximum octree depth. 21 bits per dimension interleave into 63 bits,
// fitting a 64-bit Morton code.
inline constexpr int kMaxLevel = 21;
inline constexpr std::uint32_t kTicks = 1u << kMaxLevel;

namespace detail {

// Spreads the low 21 bits of x so that bit i moves to bit 3i.
constexpr std::uint64_t spread3(std::uint64_t x) noexcept {
  x &= 0x1fffff;  // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

// Inverse of spread3: collects every third bit back into the low 21 bits.
constexpr std::uint32_t compact3(std::uint64_t x) noexcept {
  x &= 0x1249249249249249ULL;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x | (x >> 8)) & 0x1f0000ff0000ffULL;
  x = (x | (x >> 16)) & 0x1f00000000ffffULL;
  x = (x | (x >> 32)) & 0x1fffff;
  return static_cast<std::uint32_t>(x);
}

}  // namespace detail

// Interleaves (x, y, z) into a Morton code: bit i of x lands at bit 3i,
// y at 3i+1, z at 3i+2. Inputs must be < 2^21.
constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                                      std::uint32_t z) noexcept {
  return detail::spread3(x) | (detail::spread3(y) << 1) |
         (detail::spread3(z) << 2);
}

struct MortonXyz {
  std::uint32_t x, y, z;
};

constexpr MortonXyz morton_decode(std::uint64_t code) noexcept {
  return MortonXyz{detail::compact3(code), detail::compact3(code >> 1),
                   detail::compact3(code >> 2)};
}

}  // namespace quake::octree
