#include "quake/octree/etree_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "quake/obs/obs.hpp"
#include "quake/util/checkpoint.hpp"  // crc32

namespace quake::octree {
namespace {

constexpr std::size_t kPageSize = 4096;
// Every on-disk page ends with a CRC32 of its first kPageDataSize bytes, so
// torn writes and bit rot surface as descriptive errors instead of garbage
// reads. A page of all zeroes (a hole in the sparse file — allocated but
// never flushed) is accepted as fresh without verification.
constexpr std::size_t kPageDataSize = kPageSize - 4;
constexpr std::uint32_t kMagic = 0x45545245;  // "ETRE"
constexpr std::uint32_t kFormatVersion = 2;   // v2: per-page checksums
constexpr std::uint32_t kInvalidPage = 0xffffffffu;

// 12-byte record key: (morton, level), compared lexicographically. Morton
// order is the space-filling-curve order of the linear octree.
struct Key {
  std::uint64_t morton;
  std::uint32_t level;

  friend bool operator<(const Key& a, const Key& b) {
    return a.morton != b.morton ? a.morton < b.morton : a.level < b.level;
  }
  friend bool operator==(const Key& a, const Key& b) = default;
};

Key key_of(const Octant& o) { return Key{o.morton(), o.level}; }

Octant octant_of(const Key& k) {
  const MortonXyz p = morton_decode(k.morton);
  return Octant{p.x, p.y, p.z, static_cast<std::uint8_t>(k.level)};
}

// On-disk page header (both node kinds). Leaves chain through `next` for
// in-order scans.
struct PageHeader {
  std::uint16_t type;   // 1 = leaf, 2 = internal
  std::uint16_t nkeys;
  std::uint32_t next;   // right-sibling leaf, kInvalidPage otherwise
};
constexpr std::uint16_t kLeaf = 1;
constexpr std::uint16_t kInternal = 2;
constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kKeySize = 12;
constexpr std::size_t kChildSize = 4;

// File header kept in page 0.
struct FileHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t value_size;
  std::uint32_t root_page;
  std::uint32_t page_count;
  std::uint64_t record_count;
};

using Page = std::vector<std::byte>;

void store_key(std::byte* p, const Key& k) {
  std::memcpy(p, &k.morton, 8);
  std::memcpy(p + 8, &k.level, 4);
}

Key load_key(const std::byte* p) {
  Key k;
  std::memcpy(&k.morton, p, 8);
  std::memcpy(&k.level, p + 8, 4);
  return k;
}

}  // namespace

class EtreeStore::Impl {
 public:
  Impl(std::string path, std::uint32_t value_size, std::size_t pool_pages,
       bool create)
      : path_(std::move(path)), pool_capacity_(std::max<std::size_t>(pool_pages, 4)) {
    const int flags = create ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDWR;
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0) throw std::runtime_error("EtreeStore: cannot open " + path_);
    if (create) {
      header_ = FileHeader{kMagic, kFormatVersion, value_size, 1, 2, 0};
      Page root(kPageSize, std::byte{0});
      set_header(root, PageHeader{kLeaf, 0, kInvalidPage});
      put_page(1, root);
      write_file_header();
    } else {
      read_file_header();
      if (header_.magic != kMagic) {
        throw std::runtime_error("EtreeStore: bad magic in " + path_);
      }
      if (header_.version != kFormatVersion) {
        throw std::runtime_error(
            "EtreeStore: unsupported format version " +
            std::to_string(header_.version) + " in " + path_ + " (expected " +
            std::to_string(kFormatVersion) + ")");
      }
      if (header_.value_size != value_size) {
        throw std::runtime_error("EtreeStore: value_size mismatch in " + path_);
      }
    }
    leaf_entry_ = kKeySize + header_.value_size;
    leaf_capacity_ = (kPageDataSize - kHeaderSize) / leaf_entry_;
    // Internal layout: nkeys keys then nkeys+1 children.
    internal_capacity_ =
        (kPageDataSize - kHeaderSize - kChildSize) / (kKeySize + kChildSize);
  }

  ~Impl() {
    try {
      flush();
    } catch (...) {
      // Destructor must not throw; data loss is reported via errno by the
      // explicit flush() callers use in normal operation.
    }
    ::close(fd_);
  }

  void put(const Octant& o, std::span<const std::byte> value) {
    require_value_size(value.size());
    std::vector<std::uint32_t> path;
    const std::uint32_t leaf = descend(key_of(o), &path);
    insert_into_leaf(leaf, key_of(o), value, path);
  }

  bool get(const Octant& o, std::span<std::byte> value_out) {
    require_value_size(value_out.size());
    const Key k = key_of(o);
    const std::uint32_t leaf = descend(k, nullptr);
    Page page = fetch(leaf);
    const PageHeader h = get_header(page);
    const int pos = leaf_lower_bound(page, h, k);
    if (pos >= h.nkeys || !(leaf_key(page, pos) == k)) return false;
    std::memcpy(value_out.data(), leaf_value_ptr(page, pos),
                header_.value_size);
    return true;
  }

  bool erase(const Octant& o) {
    const Key k = key_of(o);
    const std::uint32_t leaf = descend(k, nullptr);
    Page page = fetch(leaf);
    PageHeader h = get_header(page);
    const int pos = leaf_lower_bound(page, h, k);
    if (pos >= h.nkeys || !(leaf_key(page, pos) == k)) return false;
    std::byte* base = page.data() + kHeaderSize;
    std::memmove(base + pos * leaf_entry_, base + (pos + 1) * leaf_entry_,
                 (h.nkeys - pos - 1) * leaf_entry_);
    h.nkeys -= 1;
    set_header(page, h);
    put_page(leaf, page);
    header_.record_count -= 1;
    header_dirty_ = true;
    return true;
  }

  std::uint64_t count() const { return header_.record_count; }
  std::uint32_t value_size() const { return header_.value_size; }
  Stats stats() const { return stats_; }

  void scan(const std::function<void(const Octant&,
                                     std::span<const std::byte>)>& fn) {
    // Leftmost leaf, then follow sibling links.
    std::uint32_t id = header_.root_page;
    for (;;) {
      Page page = fetch(id);
      const PageHeader h = get_header(page);
      if (h.type == kLeaf) break;
      id = internal_child(page, 0);
    }
    while (id != kInvalidPage) {
      Page page = fetch(id);
      const PageHeader h = get_header(page);
      for (int i = 0; i < h.nkeys; ++i) {
        fn(octant_of(leaf_key(page, i)),
           std::span<const std::byte>(leaf_value_ptr(page, i),
                                      header_.value_size));
      }
      id = h.next;
    }
  }

  void flush() {
    for (auto& [id, frame] : pool_) {
      if (frame.dirty) {
        write_page_to_disk(id, frame.data);
        frame.dirty = false;
      }
    }
    if (header_dirty_) write_file_header();
  }

 private:
  struct Frame {
    Page data;
    bool dirty = false;
    std::uint64_t lru = 0;
  };

  void require_value_size(std::size_t n) const {
    if (n != header_.value_size) {
      throw std::invalid_argument("EtreeStore: wrong value size");
    }
  }

  // -- page accessors ---------------------------------------------------

  static PageHeader get_header(const Page& p) {
    PageHeader h;
    std::memcpy(&h, p.data(), sizeof h);
    return h;
  }
  static void set_header(Page& p, const PageHeader& h) {
    std::memcpy(p.data(), &h, sizeof h);
  }

  Key leaf_key(const Page& p, int i) const {
    return load_key(p.data() + kHeaderSize + i * leaf_entry_);
  }
  const std::byte* leaf_value_ptr(const Page& p, int i) const {
    return p.data() + kHeaderSize + i * leaf_entry_ + kKeySize;
  }
  std::byte* leaf_value_ptr(Page& p, int i) const {
    return p.data() + kHeaderSize + i * leaf_entry_ + kKeySize;
  }

  // Internal page: keys at [header, header + nkeys*kKeySize), children after
  // the key area sized for capacity (fixed offset).
  std::size_t children_offset() const {
    return kHeaderSize + internal_capacity_ * kKeySize;
  }
  Key internal_key(const Page& p, int i) const {
    return load_key(p.data() + kHeaderSize + i * kKeySize);
  }
  void set_internal_key(Page& p, int i, const Key& k) const {
    store_key(p.data() + kHeaderSize + i * kKeySize, k);
  }
  std::uint32_t internal_child(const Page& p, int i) const {
    std::uint32_t c;
    std::memcpy(&c, p.data() + children_offset() + i * kChildSize, 4);
    return c;
  }
  void set_internal_child(Page& p, int i, std::uint32_t c) const {
    std::memcpy(p.data() + children_offset() + i * kChildSize, &c, 4);
  }

  int leaf_lower_bound(const Page& p, const PageHeader& h, const Key& k) const {
    int lo = 0, hi = h.nkeys;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (leaf_key(p, mid) < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // -- tree navigation ---------------------------------------------------

  // Returns the leaf page id for `k`; when `path` is non-null, fills it with
  // the internal pages visited (root first).
  std::uint32_t descend(const Key& k, std::vector<std::uint32_t>* path) {
    std::uint32_t id = header_.root_page;
    for (;;) {
      Page page = fetch(id);
      const PageHeader h = get_header(page);
      if (h.type == kLeaf) return id;
      if (path) path->push_back(id);
      // First key strictly greater than k gives the child slot.
      int lo = 0, hi = h.nkeys;
      while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (!(k < internal_key(page, mid))) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      id = internal_child(page, lo);
    }
  }

  void insert_into_leaf(std::uint32_t leaf_id, const Key& k,
                        std::span<const std::byte> value,
                        std::vector<std::uint32_t>& path) {
    Page page = fetch(leaf_id);
    PageHeader h = get_header(page);
    const int pos = leaf_lower_bound(page, h, k);
    if (pos < h.nkeys && leaf_key(page, pos) == k) {
      std::memcpy(leaf_value_ptr(page, pos), value.data(), value.size());
      put_page(leaf_id, page);
      return;
    }
    std::byte* base = page.data() + kHeaderSize;
    if (static_cast<std::size_t>(h.nkeys) < leaf_capacity_) {
      std::memmove(base + (pos + 1) * leaf_entry_, base + pos * leaf_entry_,
                   (h.nkeys - pos) * leaf_entry_);
      store_key(base + pos * leaf_entry_, k);
      std::memcpy(base + pos * leaf_entry_ + kKeySize, value.data(),
                  value.size());
      h.nkeys += 1;
      set_header(page, h);
      put_page(leaf_id, page);
    } else {
      // Split: left keeps the lower half, a new right leaf takes the upper
      // half, then the entry goes to whichever side owns its range.
      const int half = h.nkeys / 2;
      const std::uint32_t right_id = alloc_page();
      Page right(kPageSize, std::byte{0});
      PageHeader rh{kLeaf, static_cast<std::uint16_t>(h.nkeys - half), h.next};
      std::memcpy(right.data() + kHeaderSize, base + half * leaf_entry_,
                  (h.nkeys - half) * leaf_entry_);
      set_header(right, rh);
      h.nkeys = static_cast<std::uint16_t>(half);
      h.next = right_id;
      set_header(page, h);
      const Key sep = load_key(right.data() + kHeaderSize);
      put_page(leaf_id, page);
      put_page(right_id, right);
      insert_separator(path, sep, right_id);
      // Retry on the proper side (both pages now have room).
      std::vector<std::uint32_t> path2;
      const std::uint32_t target = descend(k, &path2);
      insert_into_leaf(target, k, value, path2);
      return;
    }
    header_.record_count += 1;
    header_dirty_ = true;
  }

  // Inserts separator `sep` with right child `right_id` into the parent at
  // the back of `path`, splitting upward as needed.
  void insert_separator(std::vector<std::uint32_t>& path, Key sep,
                        std::uint32_t right_id) {
    while (true) {
      if (path.empty()) {
        // Height grows: new root with one key and two children.
        const std::uint32_t new_root = alloc_page();
        Page root(kPageSize, std::byte{0});
        set_header(root, PageHeader{kInternal, 1, kInvalidPage});
        set_internal_key(root, 0, sep);
        set_internal_child(root, 0, header_.root_page);
        set_internal_child(root, 1, right_id);
        put_page(new_root, root);
        header_.root_page = new_root;
        header_dirty_ = true;
        return;
      }
      const std::uint32_t parent_id = path.back();
      path.pop_back();
      Page parent = fetch(parent_id);
      PageHeader h = get_header(parent);
      // Slot for sep.
      int pos = 0;
      while (pos < h.nkeys && internal_key(parent, pos) < sep) ++pos;
      if (static_cast<std::size_t>(h.nkeys) < internal_capacity_) {
        for (int i = h.nkeys; i > pos; --i) {
          set_internal_key(parent, i, internal_key(parent, i - 1));
        }
        for (int i = h.nkeys + 1; i > pos + 1; --i) {
          set_internal_child(parent, i, internal_child(parent, i - 1));
        }
        set_internal_key(parent, pos, sep);
        set_internal_child(parent, pos + 1, right_id);
        h.nkeys += 1;
        set_header(parent, h);
        put_page(parent_id, parent);
        return;
      }
      // Split the internal node. Gather keys/children with the new entry
      // placed, push up the median.
      const int n = h.nkeys;
      std::vector<Key> keys;
      std::vector<std::uint32_t> kids;
      keys.reserve(n + 1);
      kids.reserve(n + 2);
      for (int i = 0; i < n; ++i) keys.push_back(internal_key(parent, i));
      for (int i = 0; i <= n; ++i) kids.push_back(internal_child(parent, i));
      keys.insert(keys.begin() + pos, sep);
      kids.insert(kids.begin() + pos + 1, right_id);
      const int mid = static_cast<int>(keys.size()) / 2;
      const Key up = keys[mid];

      PageHeader lh{kInternal, static_cast<std::uint16_t>(mid), kInvalidPage};
      Page left(kPageSize, std::byte{0});
      set_header(left, lh);
      for (int i = 0; i < mid; ++i) set_internal_key(left, i, keys[i]);
      for (int i = 0; i <= mid; ++i) set_internal_child(left, i, kids[i]);

      const int rn = static_cast<int>(keys.size()) - mid - 1;
      const std::uint32_t new_right = alloc_page();
      Page right(kPageSize, std::byte{0});
      set_header(right, PageHeader{kInternal, static_cast<std::uint16_t>(rn),
                                   kInvalidPage});
      for (int i = 0; i < rn; ++i) {
        set_internal_key(right, i, keys[mid + 1 + i]);
      }
      for (int i = 0; i <= rn; ++i) {
        set_internal_child(right, i, kids[mid + 1 + i]);
      }
      put_page(parent_id, left);
      put_page(new_right, right);
      sep = up;
      right_id = new_right;
      // Loop continues one level up.
    }
  }

  // -- buffer pool --------------------------------------------------------

  Page fetch(std::uint32_t id) {
    auto it = pool_.find(id);
    if (it != pool_.end()) {
      ++stats_.cache_hits;
      note_pool_access();
      it->second.lru = ++lru_clock_;
      return it->second.data;
    }
    Page page(kPageSize);
    read_page_from_disk(id, page);
    note_pool_access();
    install(id, page, /*dirty=*/false);
    return page;
  }

  // Running buffer-pool hit rate over every page lookup so far (hits over
  // hits-plus-disk-reads); a gauge, so a merged report shows the rate at
  // the end of the phase that produced it.
  void note_pool_access() const {
    const double denom =
        static_cast<double>(stats_.cache_hits + stats_.page_reads);
    if (denom > 0.0) {
      obs::gauge_set("etree/pool_hit_rate",
                     static_cast<double>(stats_.cache_hits) / denom);
    }
  }

  void put_page(std::uint32_t id, const Page& page) {
    auto it = pool_.find(id);
    if (it != pool_.end()) {
      it->second.data = page;
      it->second.dirty = true;
      it->second.lru = ++lru_clock_;
      return;
    }
    install(id, page, /*dirty=*/true);
  }

  void install(std::uint32_t id, const Page& page, bool dirty) {
    if (pool_.size() >= pool_capacity_) evict_one();
    Frame f;
    f.data = page;
    f.dirty = dirty;
    f.lru = ++lru_clock_;
    pool_.emplace(id, std::move(f));
  }

  void evict_one() {
    auto victim = pool_.begin();
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      if (it->second.lru < victim->second.lru) victim = it;
    }
    if (victim->second.dirty) {
      write_page_to_disk(victim->first, victim->second.data);
    }
    pool_.erase(victim);
  }

  std::uint32_t alloc_page() {
    const std::uint32_t id = header_.page_count++;
    header_dirty_ = true;
    return id;
  }

  // -- raw file I/O ---------------------------------------------------------

  void read_page_from_disk(std::uint32_t id, Page& page) {
    ++stats_.page_reads;
    obs::counter_add("etree/page_reads", 1);
    const auto off = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
    const ssize_t n = ::pread(fd_, page.data(), kPageSize, off);
    if (n < 0) throw std::runtime_error("EtreeStore: pread failed");
    if (static_cast<std::size_t>(n) == 0) {
      // Past EOF: a freshly allocated page that was never flushed.
      std::fill(page.begin(), page.end(), std::byte{0});
      return;
    }
    if (static_cast<std::size_t>(n) < kPageSize) {
      throw std::runtime_error("EtreeStore: truncated page " +
                               std::to_string(id) + " in " + path_ + " (" +
                               std::to_string(n) + " of " +
                               std::to_string(kPageSize) + " bytes)");
    }
    verify_page(id, page);
  }

  // Checks the trailing CRC32 of a page read from disk. A page of all
  // zeroes is a hole in the sparse file (allocated, never flushed) and is
  // accepted as fresh — a genuinely written page always carries a nonzero
  // checksum, since CRC32 of the zero data area is nonzero.
  void verify_page(std::uint32_t id, const Page& page) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(page.data());
    std::uint32_t stored = 0;
    std::memcpy(&stored, bytes + kPageDataSize, sizeof stored);
    if (stored == 0) {
      bool all_zero = true;
      for (std::size_t i = 0; i < kPageDataSize; ++i) {
        if (bytes[i] != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) return;
    }
    const std::uint32_t computed = util::crc32({bytes, kPageDataSize});
    if (computed != stored) {
      ++stats_.page_verify_failures;
      obs::counter_add("etree/page_verify_failures", 1);
      throw std::runtime_error(
          "EtreeStore: checksum mismatch on page " + std::to_string(id) +
          " in " + path_ + (id == 0 ? " (corrupt or pre-v2 header)" : "") +
          ": stored " + std::to_string(stored) + ", computed " +
          std::to_string(computed));
    }
    ++stats_.pages_verified;
    obs::counter_add("etree/pages_verified", 1);
  }

  void write_page_to_disk(std::uint32_t id, const Page& page) {
    ++stats_.page_writes;
    obs::counter_add("etree/page_writes", 1);
    Page stamped = page;
    const auto* data = reinterpret_cast<const unsigned char*>(stamped.data());
    const std::uint32_t crc = util::crc32({data, kPageDataSize});
    std::memcpy(stamped.data() + kPageDataSize, &crc, sizeof crc);
    const auto off = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
    if (::pwrite(fd_, stamped.data(), kPageSize, off) !=
        static_cast<ssize_t>(kPageSize)) {
      throw std::runtime_error("EtreeStore: pwrite failed");
    }
  }

  void write_file_header() {
    Page page(kPageSize, std::byte{0});
    std::memcpy(page.data(), &header_, sizeof header_);
    write_page_to_disk(0, page);
    header_dirty_ = false;
  }

  void read_file_header() {
    Page page(kPageSize);
    read_page_from_disk(0, page);
    std::memcpy(&header_, page.data(), sizeof header_);
  }

  std::string path_;
  int fd_ = -1;
  FileHeader header_{};
  bool header_dirty_ = false;
  std::size_t leaf_entry_ = 0;
  std::size_t leaf_capacity_ = 0;
  std::size_t internal_capacity_ = 0;

  std::size_t pool_capacity_;
  std::unordered_map<std::uint32_t, Frame> pool_;
  std::uint64_t lru_clock_ = 0;
  Stats stats_;
};

EtreeStore::EtreeStore(std::string path, std::uint32_t value_size,
                       std::size_t pool_pages, bool create)
    : impl_(std::make_unique<Impl>(std::move(path), value_size, pool_pages,
                                   create)) {}

EtreeStore::~EtreeStore() = default;

void EtreeStore::put(const Octant& o, std::span<const std::byte> value) {
  impl_->put(o, value);
}
bool EtreeStore::get(const Octant& o, std::span<std::byte> value_out) const {
  return impl_->get(o, value_out);
}
bool EtreeStore::erase(const Octant& o) { return impl_->erase(o); }
std::uint64_t EtreeStore::count() const { return impl_->count(); }
void EtreeStore::scan(
    const std::function<void(const Octant&, std::span<const std::byte>)>& fn)
    const {
  impl_->scan(fn);
}
void EtreeStore::flush() { impl_->flush(); }
std::uint32_t EtreeStore::value_size() const { return impl_->value_size(); }
EtreeStore::Stats EtreeStore::stats() const { return impl_->stats(); }

}  // namespace quake::octree
