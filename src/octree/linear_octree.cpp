#include "quake/octree/linear_octree.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <span>
#include <stdexcept>

namespace quake::octree {
namespace {

// Morton-code volume of an octant: number of tick points it covers. The
// codes inside an octant form the contiguous range
// [morton(anchor), morton(anchor) + volume).
std::uint64_t morton_volume(const Octant& o) noexcept {
  const int shift = 3 * (kMaxLevel - o.level);
  return shift >= 64 ? 0 : (std::uint64_t{1} << shift);
}

std::span<const std::array<int, 3>> dirs_for(BalanceScope scope) noexcept {
  switch (scope) {
    case BalanceScope::kFaces:
      return {kFaceDirs.data(), kFaceDirs.size()};
    case BalanceScope::kFacesEdges:
      // kNeighborDirs is ordered with all 26; faces+edges are those with at
      // most two nonzero components. Precompute once.
      {
        static const std::vector<std::array<int, 3>> fe = [] {
          std::vector<std::array<int, 3>> v;
          for (const auto& d : kNeighborDirs) {
            const int nz = (d[0] != 0) + (d[1] != 0) + (d[2] != 0);
            if (nz <= 2) v.push_back(d);
          }
          return v;
        }();
        return {fe.data(), fe.size()};
      }
    case BalanceScope::kAll:
      return {kNeighborDirs.data(), kNeighborDirs.size()};
  }
  return {};
}

// Leaf set keyed by anchor Morton code. Disjoint leaves have distinct
// anchors, so the anchor alone identifies a leaf; the mapped value is its
// level.
using LeafMap = std::unordered_map<std::uint64_t, std::uint8_t>;

LeafMap to_map(std::span<const Octant> leaves) {
  LeafMap map;
  map.reserve(leaves.size() * 2);
  for (const Octant& o : leaves) map.emplace(o.morton(), o.level);
  return map;
}

std::vector<Octant> to_leaves(const LeafMap& map) {
  std::vector<Octant> out;
  out.reserve(map.size());
  for (const auto& [code, level] : map) {
    const MortonXyz p = morton_decode(code);
    out.push_back(Octant{p.x, p.y, p.z, level});
  }
  return out;
}

// Finds the leaf containing tick point (x, y, z) by probing ancestors from
// fine to coarse. Returns false when the point is uncovered.
bool find_leaf_at(const LeafMap& map, std::uint32_t x, std::uint32_t y,
                  std::uint32_t z, int finest_level, Octant& out) {
  for (int lvl = finest_level; lvl >= 0; --lvl) {
    const Octant probe =
        Octant{x, y, z, 0}.ancestor_at(static_cast<std::uint8_t>(lvl));
    auto it = map.find(probe.morton());
    if (it != map.end() && it->second == lvl) {
      out = Octant{probe.x, probe.y, probe.z, it->second};
      return true;
    }
  }
  return false;
}

}  // namespace

LinearOctree::LinearOctree(std::vector<Octant> leaves)
    : leaves_(std::move(leaves)) {
  std::sort(leaves_.begin(), leaves_.end(), OctantLess{});
}

std::optional<std::size_t> LinearOctree::find_containing(
    std::uint32_t x, std::uint32_t y, std::uint32_t z) const {
  if (leaves_.empty()) return std::nullopt;
  const std::uint64_t code = morton_encode(x, y, z);
  // Last leaf whose anchor code is <= code.
  auto it = std::upper_bound(
      leaves_.begin(), leaves_.end(), code,
      [](std::uint64_t c, const Octant& o) { return c < o.morton(); });
  if (it == leaves_.begin()) return std::nullopt;
  --it;
  const Octant probe{x, y, z, kMaxLevel};
  if (!it->contains(probe)) return std::nullopt;
  return static_cast<std::size_t>(it - leaves_.begin());
}

std::optional<std::size_t> LinearOctree::find(const Octant& o) const {
  auto it = std::lower_bound(leaves_.begin(), leaves_.end(), o, OctantLess{});
  if (it == leaves_.end() || !(*it == o)) return std::nullopt;
  return static_cast<std::size_t>(it - leaves_.begin());
}

bool LinearOctree::validate(bool require_cover) const {
  std::uint64_t expected_next = 0;
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const Octant& o = leaves_[i];
    const std::uint64_t code = o.morton();
    if (i > 0 && code < expected_next) return false;  // overlap or disorder
    if (require_cover && code != expected_next) return false;  // gap
    expected_next = code + morton_volume(o);
    covered += morton_volume(o);
  }
  if (require_cover) {
    const std::uint64_t full = std::uint64_t{1} << (3 * kMaxLevel);
    return covered == full;
  }
  return true;
}

std::pair<int, int> LinearOctree::level_range() const {
  if (leaves_.empty()) return {0, 0};
  int lo = kMaxLevel, hi = 0;
  for (const Octant& o : leaves_) {
    lo = std::min<int>(lo, o.level);
    hi = std::max<int>(hi, o.level);
  }
  return {lo, hi};
}

std::vector<std::size_t> LinearOctree::level_histogram() const {
  std::vector<std::size_t> h(kMaxLevel + 1, 0);
  for (const Octant& o : leaves_) ++h[o.level];
  return h;
}

LinearOctree build_octree(const RefinePolicy& policy, int max_level) {
  if (max_level < 0 || max_level > kMaxLevel) {
    throw std::invalid_argument("build_octree: bad max_level");
  }
  std::vector<Octant> leaves;
  // Iterative preorder traversal; children visited in Morton order, so the
  // emitted leaf sequence is already space-filling-curve sorted.
  std::vector<Octant> stack{Octant{}};
  while (!stack.empty()) {
    const Octant o = stack.back();
    stack.pop_back();
    if (o.level < max_level && policy(o)) {
      // Push children in reverse Morton order so they pop in Morton order.
      for (int c = 7; c >= 0; --c) stack.push_back(o.child(c));
    } else {
      leaves.push_back(o);
    }
  }
  return LinearOctree(std::move(leaves));
}

bool is_balanced(const LinearOctree& tree, BalanceScope scope) {
  const auto dirs = dirs_for(scope);
  const LeafMap map = to_map(tree.leaves());
  const int finest = tree.level_range().second;
  for (const Octant& o : tree.leaves()) {
    for (const auto& d : dirs) {
      const auto n = o.neighbor(d[0], d[1], d[2]);
      if (!n) continue;
      Octant leaf;
      if (!find_leaf_at(map, n->x, n->y, n->z, finest, leaf)) continue;
      if (static_cast<int>(o.level) - static_cast<int>(leaf.level) > 1) {
        return false;
      }
    }
  }
  return true;
}

namespace {

// Core work-queue balancing over a LeafMap. `may_split` filters which leaves
// this pass is allowed to refine (used by local balancing to keep internal
// passes inside their block); `check` filters which neighbor probes are
// made. Seeds are the octants initially enqueued.
template <typename MaySplit, typename CheckDir>
void balance_queue(LeafMap& map, int& finest, std::deque<Octant>& queue,
                   std::span<const std::array<int, 3>> dirs,
                   const MaySplit& may_split, const CheckDir& check) {
  while (!queue.empty()) {
    const Octant o = queue.front();
    queue.pop_front();
    auto self = map.find(o.morton());
    if (self == map.end() || self->second != o.level) continue;  // stale
    for (const auto& d : dirs) {
      if (!check(o, d)) continue;
      const auto n = o.neighbor(d[0], d[1], d[2]);
      if (!n) continue;
      Octant leaf;
      if (!find_leaf_at(map, n->x, n->y, n->z, finest, leaf)) continue;
      if (static_cast<int>(o.level) - static_cast<int>(leaf.level) <= 1) {
        continue;
      }
      if (!may_split(leaf)) continue;
      // Forced split: replace the too-coarse leaf by its eight children and
      // re-examine both the children and the instigating octant.
      map.erase(leaf.morton());
      for (int c = 0; c < 8; ++c) {
        const Octant ch = leaf.child(c);
        map.emplace(ch.morton(), ch.level);
        queue.push_back(ch);
      }
      finest = std::max(finest, leaf.level + 1);
      queue.push_back(o);
    }
  }
}

constexpr auto kSplitAny = [](const Octant&) { return true; };
constexpr auto kCheckAny = [](const Octant&, const std::array<int, 3>&) {
  return true;
};

}  // namespace

LinearOctree balance(const LinearOctree& tree, BalanceScope scope) {
  const auto dirs = dirs_for(scope);
  LeafMap map = to_map(tree.leaves());
  int finest = tree.level_range().second;
  std::deque<Octant> queue(tree.leaves().begin(), tree.leaves().end());
  balance_queue(map, finest, queue, dirs, kSplitAny, kCheckAny);
  return LinearOctree(to_leaves(map));
}

LinearOctree balance_global_sweeps(const LinearOctree& tree,
                                   BalanceScope scope) {
  const auto dirs = dirs_for(scope);
  std::vector<Octant> leaves(tree.leaves().begin(), tree.leaves().end());
  bool changed = true;
  while (changed) {
    changed = false;
    LeafMap map = to_map(leaves);
    int finest = 0;
    for (const Octant& o : leaves) finest = std::max<int>(finest, o.level);
    LeafMap to_split;  // anchor -> level of leaves that must refine
    for (const Octant& o : leaves) {
      for (const auto& d : dirs) {
        const auto n = o.neighbor(d[0], d[1], d[2]);
        if (!n) continue;
        Octant leaf;
        if (!find_leaf_at(map, n->x, n->y, n->z, finest, leaf)) continue;
        if (static_cast<int>(o.level) - static_cast<int>(leaf.level) > 1) {
          to_split.emplace(leaf.morton(), leaf.level);
        }
      }
    }
    if (!to_split.empty()) {
      changed = true;
      std::vector<Octant> next;
      next.reserve(leaves.size() + 7 * to_split.size());
      for (const Octant& o : leaves) {
        auto it = to_split.find(o.morton());
        if (it != to_split.end() && it->second == o.level) {
          for (int c = 0; c < 8; ++c) next.push_back(o.child(c));
        } else {
          next.push_back(o);
        }
      }
      leaves = std::move(next);
    }
  }
  return LinearOctree(std::move(leaves));
}

LinearOctree balance_local(const LinearOctree& tree, BalanceScope scope,
                           int block_level) {
  const auto dirs = dirs_for(scope);
  // Blocks coarser than the coarsest leaf would leave leaves spanning
  // several blocks; clamp so every leaf lies in exactly one block.
  const int coarsest = tree.level_range().first;
  const int bl = std::min(block_level, coarsest);

  LeafMap map = to_map(tree.leaves());
  int finest = tree.level_range().second;

  // Internal balancing: one pass per block, splits and probes confined to
  // the block. Group leaves by their level-bl ancestor.
  std::unordered_map<std::uint64_t, std::vector<Octant>> blocks;
  for (const Octant& o : tree.leaves()) {
    blocks[o.ancestor_at(static_cast<std::uint8_t>(bl)).morton()].push_back(o);
  }
  for (auto& [block_code, members] : blocks) {
    const MortonXyz p = morton_decode(block_code);
    const Octant block{p.x, p.y, p.z, static_cast<std::uint8_t>(bl)};
    auto inside = [&block](const Octant& o) { return block.contains(o); };
    auto check_dir = [&](const Octant& o, const std::array<int, 3>& d) {
      const auto n = o.neighbor(d[0], d[1], d[2]);
      return n && block.contains(*n);
    };
    std::deque<Octant> queue(members.begin(), members.end());
    balance_queue(map, finest, queue, dirs, inside, check_dir);
  }

  // Boundary balancing: seed the global queue with every leaf touching a
  // block face; cascades re-enter block interiors as needed.
  std::deque<Octant> queue;
  const std::uint32_t block_size = 1u << (kMaxLevel - bl);
  for (const auto& [code, level] : map) {
    const MortonXyz p = morton_decode(code);
    const Octant o{p.x, p.y, p.z, level};
    const std::uint32_t s = o.size();
    const bool on_boundary =
        (o.x % block_size == 0) || ((o.x + s) % block_size == 0) ||
        (o.y % block_size == 0) || ((o.y + s) % block_size == 0) ||
        (o.z % block_size == 0) || ((o.z + s) % block_size == 0);
    if (on_boundary) queue.push_back(o);
  }
  balance_queue(map, finest, queue, dirs, kSplitAny, kCheckAny);
  return LinearOctree(to_leaves(map));
}

}  // namespace quake::octree
