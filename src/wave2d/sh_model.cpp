#include "quake/wave2d/sh_model.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace quake::wave2d {

const std::array<double, 16>& quad_laplacian_reference() {
  static const std::array<double, 16> k = [] {
    std::array<double, 16> m{};
    const double gp[2] = {0.5 - 0.5 / std::sqrt(3.0),
                          0.5 + 0.5 / std::sqrt(3.0)};
    for (double x : gp) {
      for (double z : gp) {
        double dx[4], dz[4];
        for (int f = 0; f < 4; ++f) {
          const double fx = (f & 1) ? x : 1.0 - x;
          const double fz = (f & 2) ? z : 1.0 - z;
          const double sx = (f & 1) ? 1.0 : -1.0;
          const double sz = (f & 2) ? 1.0 : -1.0;
          dx[f] = sx * fz;
          dz[f] = fx * sz;
        }
        for (int i = 0; i < 4; ++i) {
          for (int j = 0; j < 4; ++j) {
            m[static_cast<std::size_t>(i * 4 + j)] +=
                0.25 * (dx[i] * dx[j] + dz[i] * dz[j]);
          }
        }
      }
    }
    return m;
  }();
  return k;
}

ShModel::ShModel(const ShGrid& grid, std::vector<double> mu, double rho)
    : grid_(grid), mu_(std::move(mu)), rho_(rho) {
  grid_.validate();
  if (mu_.size() != static_cast<std::size_t>(grid_.n_elems())) {
    throw std::invalid_argument("ShModel: mu size mismatch");
  }
  if (!(rho_ > 0.0)) throw std::invalid_argument("ShModel: rho > 0 required");
  for (double m : mu_) {
    if (!(m > 0.0)) throw std::invalid_argument("ShModel: mu > 0 required");
  }

  // Lumped mass: rho h^2 / 4 per element node.
  mass_.assign(static_cast<std::size_t>(grid_.n_nodes()), 0.0);
  const double mnode = rho_ * grid_.h * grid_.h / 4.0;
  int conn[4];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    grid_.elem_nodes(e, conn);
    for (int i = 0; i < 4; ++i) {
      mass_[static_cast<std::size_t>(conn[i])] += mnode;
    }
  }

  // Absorbing boundary edges: x = 0, x = Lx, z = Lz (bottom). The surface
  // row (k = 0, z = 0) is traction-free.
  for (int k = 0; k < grid_.nz; ++k) {
    edges_.push_back({grid_.node(0, k), grid_.node(0, k + 1), grid_.elem(0, k)});
    edges_.push_back({grid_.node(grid_.nx, k), grid_.node(grid_.nx, k + 1),
                      grid_.elem(grid_.nx - 1, k)});
  }
  for (int i = 0; i < grid_.nx; ++i) {
    edges_.push_back({grid_.node(i, grid_.nz), grid_.node(i + 1, grid_.nz),
                      grid_.elem(i, grid_.nz - 1)});
  }

  damping_.assign(static_cast<std::size_t>(grid_.n_nodes()), 0.0);
  for (const BoundaryEdge& ed : edges_) {
    const double c =
        std::sqrt(rho_ * mu_[static_cast<std::size_t>(ed.elem)]) * grid_.h / 2.0;
    damping_[static_cast<std::size_t>(ed.node_a)] += c;
    damping_[static_cast<std::size_t>(ed.node_b)] += c;
  }
}

void ShModel::apply_k(std::span<const double> u, std::span<double> y) const {
  const auto& kr = quad_laplacian_reference();
  int conn[4];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    grid_.elem_nodes(e, conn);
    const double mu_e = mu_[static_cast<std::size_t>(e)];
    double ue[4];
    for (int i = 0; i < 4; ++i) ue[i] = u[static_cast<std::size_t>(conn[i])];
    for (int i = 0; i < 4; ++i) {
      double s = 0.0;
      for (int j = 0; j < 4; ++j) {
        s += kr[static_cast<std::size_t>(i * 4 + j)] * ue[j];
      }
      y[static_cast<std::size_t>(conn[i])] += mu_e * s;
    }
  }
}

void ShModel::apply_k_delta(std::span<const double> dmu,
                            std::span<const double> u,
                            std::span<double> y) const {
  const auto& kr = quad_laplacian_reference();
  int conn[4];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    const double d = dmu[static_cast<std::size_t>(e)];
    if (d == 0.0) continue;
    grid_.elem_nodes(e, conn);
    double ue[4];
    for (int i = 0; i < 4; ++i) ue[i] = u[static_cast<std::size_t>(conn[i])];
    for (int i = 0; i < 4; ++i) {
      double s = 0.0;
      for (int j = 0; j < 4; ++j) {
        s += kr[static_cast<std::size_t>(i * 4 + j)] * ue[j];
      }
      y[static_cast<std::size_t>(conn[i])] += d * s;
    }
  }
}

void ShModel::apply_c_delta(std::span<const double> dmu,
                            std::span<const double> v,
                            std::span<double> y) const {
  // dC/dmu_e = (h/2) * d(sqrt(rho mu_e))/dmu_e = (h/4) sqrt(rho/mu_e) per
  // edge endpoint.
  for (const BoundaryEdge& ed : edges_) {
    const double d = dmu[static_cast<std::size_t>(ed.elem)];
    if (d == 0.0) continue;
    const double mu_e = mu_[static_cast<std::size_t>(ed.elem)];
    const double dc = grid_.h / 4.0 * std::sqrt(rho_ / mu_e) * d;
    y[static_cast<std::size_t>(ed.node_a)] +=
        dc * v[static_cast<std::size_t>(ed.node_a)];
    y[static_cast<std::size_t>(ed.node_b)] +=
        dc * v[static_cast<std::size_t>(ed.node_b)];
  }
}

void ShModel::accumulate_k_form(std::span<const double> lambda,
                                std::span<const double> u,
                                std::span<double> ge) const {
  const auto& kr = quad_laplacian_reference();
  int conn[4];
  for (int e = 0; e < grid_.n_elems(); ++e) {
    grid_.elem_nodes(e, conn);
    double ue[4], le[4];
    for (int i = 0; i < 4; ++i) {
      ue[i] = u[static_cast<std::size_t>(conn[i])];
      le[i] = lambda[static_cast<std::size_t>(conn[i])];
    }
    double s = 0.0;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        s += le[i] * kr[static_cast<std::size_t>(i * 4 + j)] * ue[j];
      }
    }
    ge[static_cast<std::size_t>(e)] += s;
  }
}

void ShModel::accumulate_c_form(std::span<const double> lambda,
                                std::span<const double> v,
                                std::span<double> ge) const {
  for (const BoundaryEdge& ed : edges_) {
    const double mu_e = mu_[static_cast<std::size_t>(ed.elem)];
    const double dc = grid_.h / 4.0 * std::sqrt(rho_ / mu_e);
    ge[static_cast<std::size_t>(ed.elem)] +=
        dc * (lambda[static_cast<std::size_t>(ed.node_a)] *
                  v[static_cast<std::size_t>(ed.node_a)] +
              lambda[static_cast<std::size_t>(ed.node_b)] *
                  v[static_cast<std::size_t>(ed.node_b)]);
  }
}

double ShModel::stable_dt(double cfl_fraction) const {
  double mu_max = 0.0;
  for (double m : mu_) mu_max = std::max(mu_max, m);
  const double vs_max = std::sqrt(mu_max / rho_);
  return cfl_fraction * grid_.h / vs_max;
}

}  // namespace quake::wave2d
